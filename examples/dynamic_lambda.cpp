// Demonstrates Appendix D's dynamic lambda: cheap query instances get a
// looser sub-optimality bound (there is little absolute cost at stake),
// expensive instances get the tight one. Compared with a static bound this
// saves optimizer calls and cached plans at a small TotalCostRatio price.
#include <cstdio>

#include "pqo/scr.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

int main() {
  SchemaScale scale;
  BenchmarkDb ds = BuildDsLike(scale);
  Optimizer optimizer(&ds.db);

  // A DS-like template with enough plan variety that the bound matters.
  TemplateGenOptions topts;
  topts.num_templates = 1;
  topts.seed = 25;  // template naming nod to the paper's Q25 experiment
  std::vector<BenchmarkDb> dbs;
  dbs.push_back(std::move(ds));
  BoundTemplate bt = BuildTemplates(dbs, topts)[0];
  Optimizer opt2(&bt.db->db);

  InstanceGenOptions gen;
  gen.m = 1000;
  auto instances = GenerateInstances(bt, gen);
  Oracle oracle = Oracle::Build(opt2, instances);
  auto perm = MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 1);

  auto run = [&](const char* label, ScrOptions options) {
    Scr scr(options);
    RunSequenceOptions ropts;
    ropts.ordering_name = "random";
    SequenceMetrics m =
        RunSequence(opt2, instances, perm, oracle, &scr, ropts);
    std::printf("%-22s numOpt=%-5lld numPlans=%-4lld TotalCostRatio=%.3f\n",
                label, static_cast<long long>(m.num_opt),
                static_cast<long long>(m.num_plans), m.total_cost_ratio);
  };

  std::printf("template %s (d=%d), %zu instances\n\n",
              bt.tmpl->name().c_str(), bt.tmpl->dimensions(),
              instances.size());
  run("static lambda=1.1", ScrOptions{.lambda = 1.1});
  ScrOptions dyn;
  dyn.lambda = 1.1;
  dyn.dynamic_lambda = true;
  dyn.lambda_min = 1.1;
  dyn.lambda_max = 10.0;
  run("dynamic [1.1, 10]", dyn);
  std::printf(
      "\nAs in the paper's Appendix D sample run, the dynamic bound buys "
      "fewer\noptimizer calls and plans for a small TotalCostRatio "
      "increase.\n");
  return 0;
}

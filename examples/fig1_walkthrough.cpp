// Walk-through of the paper's Section 3 / Figure 1 narrative, showing how
// SCR's three checks interact on a short 2-d workload: which instances pass
// the selectivity check, which need the (cheap) cost check, and which force
// an optimizer call — plus the inference-region arithmetic (G, L, GL) for
// each decision.
#include <cstdio>

#include "common/math_util.h"
#include "pqo/scr.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

int main() {
  SchemaScale scale;
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  Optimizer optimizer(&tpch.db);

  const double lambda = 2.0;
  std::printf("lambda = %.1f: a reused plan may cost at most %.1fx the "
              "optimal plan\n\n", lambda, lambda);

  std::vector<std::pair<double, double>> points = {
      {0.05, 0.10},  // q1: first instance, must optimize
      {0.06, 0.12},  // q2: GL small -> selectivity check passes
      {0.09, 0.05},  // q3: GL moderate -> cost check decides
      {0.70, 0.75},  // q4: far away -> optimize
      {0.65, 0.80},  // q5: near q4 -> selectivity check passes
      {0.10, 0.60},  // q6: mixed -> cost check or optimize
  };

  Scr scr(ScrOptions{.lambda = lambda});
  EngineContext engine(&tpch.db, &optimizer);

  SVector prev_opt;  // sVector of the most recently optimized instance
  int qnum = 0;
  for (auto [s0, s1] : points) {
    ++qnum;
    WorkloadInstance wi;
    wi.id = qnum;
    wi.instance = InstanceForSelectivities(tpch.db, *bt.tmpl, {s0, s1});
    wi.svector = ComputeSelectivityVector(tpch.db, wi.instance);

    // Show the check arithmetic against the last optimized instance.
    if (!prev_opt.empty()) {
      auto ratios = SelectivityRatios(prev_opt, wi.svector);
      double g = ComputeG(ratios), l = ComputeL(ratios);
      std::printf("q%d sv=(%.3f, %.3f): vs last optimized G=%.2f L=%.2f "
                  "GL=%.2f (reusable by sel-check iff GL <= %.1f)\n",
                  qnum, wi.svector[0], wi.svector[1], g, l, g * l, lambda);
    } else {
      std::printf("q%d sv=(%.3f, %.3f): empty cache\n", qnum, wi.svector[0],
                  wi.svector[1]);
    }

    PlanChoice c = scr.OnInstance(wi, &engine);
    if (c.optimized) {
      std::printf("  -> optimizer call (plan cache now holds %lld plans)\n",
                  static_cast<long long>(scr.NumPlansCached()));
      prev_opt = wi.svector;
    } else if (c.recost_calls_in_get_plan > 0) {
      std::printf("  -> reused via cost check (%d Recost call%s)\n",
                  c.recost_calls_in_get_plan,
                  c.recost_calls_in_get_plan == 1 ? "" : "s");
    } else {
      std::printf("  -> reused via selectivity check (no engine call)\n");
    }
  }

  std::printf("\ntotals: %lld optimizer calls, %lld Recost calls, "
              "%lld plans cached for %zu instances\n",
              static_cast<long long>(engine.num_optimizer_calls()),
              static_cast<long long>(engine.num_recost_calls()),
              static_cast<long long>(scr.NumPlansCached()), points.size());
  return 0;
}

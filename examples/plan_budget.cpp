// Demonstrates the hard plan-cache budget (Section 6.3.1): SCR keeps its
// lambda-optimality guarantee under a budget k by evicting the
// least-frequently-used plan together with every instance entry pointing at
// it — eviction costs extra optimizer calls later but never quality.
#include <cstdio>

#include "pqo/scr.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

int main() {
  SchemaScale scale;
  BenchmarkDb rd2 = BuildRd2(scale);
  BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, 4);
  Optimizer optimizer(&rd2.db);

  InstanceGenOptions gen;
  gen.m = 1500;
  auto instances = GenerateInstances(bt, gen);
  Oracle oracle = Oracle::Build(optimizer, instances);
  auto perm = MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 1);

  std::printf("4-d RD2 template, %zu instances, lambda = 2\n\n",
              instances.size());
  std::printf("%-10s %-10s %-10s %-14s %-10s\n", "budget k", "numOpt",
              "numPlans", "TotalCostRatio", "MSO");
  for (int k : {0, 10, 5, 2}) {
    Scr scr(ScrOptions{.lambda = 2.0, .plan_budget = k});
    RunSequenceOptions ropts;
    ropts.lambda_for_violations = 2.0;
    ropts.ordering_name = "random";
    SequenceMetrics m =
        RunSequence(optimizer, instances, perm, oracle, &scr, ropts);
    char kbuf[16];
    std::snprintf(kbuf, sizeof(kbuf), "%s",
                  k == 0 ? "unlimited" : std::to_string(k).c_str());
    std::printf("%-10s %-10lld %-10lld %-14.3f %-10.3f\n", kbuf,
                static_cast<long long>(m.num_opt),
                static_cast<long long>(m.num_plans), m.total_cost_ratio,
                m.mso);
  }
  std::printf(
      "\nTight budgets trade optimizer calls for memory; the bound on MSO "
      "is\npreserved throughout (modulo the rare cost-model BCG "
      "violations).\n");
  return 0;
}

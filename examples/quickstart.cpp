// Quickstart: build a database, define a parameterized query template, and
// process a stream of query instances with SCR, comparing against
// Optimize-Always on all three PQO metrics.
#include <cstdio>

#include "pqo/opt_always.h"
#include "pqo/scr.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

int main() {
  // 1. A skewed TPC-H-like database (statistics only; no rows needed for
  //    optimizer-level experiments).
  SchemaScale scale;
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  std::printf("Built database '%s' with %zu tables\n", tpch.name.c_str(),
              tpch.db.catalog().TableNames().size());

  // 2. A 2-dimensional parameterized template:
  //    SELECT ... FROM lineitem, orders, customer
  //    WHERE l_orderkey = o_key AND o_custkey = c_key
  //      AND l_shipdate <= $0 AND o_totalprice <= $1
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  std::printf("%s\n\n", bt.tmpl->ToString().c_str());

  // 3. Generate 200 query instances spanning the selectivity space.
  InstanceGenOptions gen;
  gen.m = 200;
  std::vector<WorkloadInstance> instances = GenerateInstances(bt, gen);

  // 4. Show one optimized plan.
  Optimizer optimizer(&tpch.db);
  OptimizationResult first = optimizer.Optimize(instances[0].instance);
  std::printf("Optimal plan for %s (cost %.2f):\n%s\n",
              instances[0].instance.ToString().c_str(), first.cost,
              first.plan->ToString().c_str());

  // 5. Run SCR with lambda = 2 and compare with Optimize-Always.
  Oracle oracle = Oracle::Build(optimizer, instances);
  std::vector<int> perm = MakeOrdering(OrderingKind::kRandom,
                                       oracle.OrderingInfo(), 1);

  Scr scr(ScrOptions{.lambda = 2.0});
  RunSequenceOptions ropts;
  ropts.lambda_for_violations = 2.0;
  ropts.ordering_name = "random";
  SequenceMetrics scr_metrics =
      RunSequence(optimizer, instances, perm, oracle, &scr, ropts);

  OptAlways oa;
  SequenceMetrics oa_metrics =
      RunSequence(optimizer, instances, perm, oracle, &oa, ropts);

  std::printf("technique     MSO     TotalCostRatio  numOpt  numPlans\n");
  std::printf("%-12s  %-7.3f %-15.3f %-7ld %ld\n", "SCR2",
              scr_metrics.mso, scr_metrics.total_cost_ratio,
              static_cast<long>(scr_metrics.num_opt),
              static_cast<long>(scr_metrics.num_plans));
  std::printf("%-12s  %-7.3f %-15.3f %-7ld %ld\n", "OptAlways",
              oa_metrics.mso, oa_metrics.total_cost_ratio,
              static_cast<long>(oa_metrics.num_opt),
              static_cast<long>(oa_metrics.num_plans));
  std::printf(
      "\nSCR optimized %.1f%% of instances and stayed within "
      "lambda for %.1f%% of them.\n",
      scr_metrics.NumOptPercent(),
      100.0 * (1.0 - static_cast<double>(scr_metrics.bound_violations) /
                         static_cast<double>(scr_metrics.m)));
  return 0;
}

// Simulates the deployment the paper targets: a database service receiving
// interleaved instances of MANY parameterized queries. PqoManager routes
// each to its template's SCR cache, choosing per-template lambda from a
// short Optimize-Always warm-up (Section 6.2's "Choosing lambda"), and the
// service-wide effect is measured against running Optimize-Always for
// everything.
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "pqo/pqo_manager.h"
#include "workload/instance_gen.h"
#include "workload/named_templates.h"

using namespace scrpqo;

int main() {
  SchemaScale scale;
  std::vector<BenchmarkDb> dbs = BuildAllDatabases(scale);

  // Four concurrent "applications", one per database.
  std::vector<std::string> names = {"TPCH_SHIPPING", "TPCDS_Q18A",
                                    "RD1_FUNNEL", "RD2_FLEET"};
  struct App {
    BoundTemplate bt;
    std::vector<WorkloadInstance> instances;
    std::unique_ptr<Optimizer> optimizer;
    std::unique_ptr<EngineContext> engine;
    size_t next = 0;
  };
  std::vector<App> apps;
  for (size_t i = 0; i < names.size(); ++i) {
    App app;
    app.bt = BuildNamedTemplate(dbs, names[i]);
    InstanceGenOptions gen;
    gen.m = 400;
    gen.seed = 11 + i;
    app.instances = GenerateInstances(app.bt, gen);
    app.optimizer = std::make_unique<Optimizer>(&app.bt.db->db);
    app.engine = std::make_unique<EngineContext>(&app.bt.db->db,
                                                 app.optimizer.get());
    apps.push_back(std::move(app));
  }

  PqoManagerOptions opts;
  opts.warmup_instances = 10;
  opts.lambda_tight = 1.2;
  opts.lambda_loose = 2.0;
  PqoManager manager(opts);

  // Interleave instances across applications, as a service would see them.
  Pcg32 rng(3);
  int64_t served = 0;
  while (true) {
    std::vector<size_t> alive;
    for (size_t i = 0; i < apps.size(); ++i) {
      if (apps[i].next < apps[i].instances.size()) alive.push_back(i);
    }
    if (alive.empty()) break;
    size_t pick = alive[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(alive.size()) - 1))];
    App& app = apps[pick];
    manager.OnInstance(names[pick], app.instances[app.next++],
                       app.engine.get());
    ++served;
  }

  std::printf("served %lld instances across %lld templates\n",
              static_cast<long long>(served),
              static_cast<long long>(manager.NumTemplates()));
  std::printf("total plans cached: %lld\n",
              static_cast<long long>(manager.TotalPlansCached()));
  int64_t total_opt = 0;
  for (size_t i = 0; i < apps.size(); ++i) {
    std::printf(
        "  %-14s lambda=%.1f  optimizer calls %lld / %zu (%.1f%%)\n",
        names[i].c_str(), manager.LambdaFor(names[i]),
        static_cast<long long>(apps[i].engine->num_optimizer_calls()),
        apps[i].instances.size(),
        100.0 *
            static_cast<double>(apps[i].engine->num_optimizer_calls()) /
            static_cast<double>(apps[i].instances.size()));
    total_opt += apps[i].engine->num_optimizer_calls();
  }
  std::printf(
      "\nservice-wide: %.1f%% optimizer calls vs 100%% under "
      "Optimize-Always\n",
      100.0 * static_cast<double>(total_opt) / static_cast<double>(served));
  return 0;
}

// Renders a plan diagram (Reddy & Haritsa, VLDB 2005 — reference [18] of
// the paper): the 2-d selectivity space of a parameterized query colored by
// which plan the optimizer picks. Plan diagrams with many regions are what
// make PQO hard — and what SCR's inference regions carve up safely.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "optimizer/optimizer.h"
#include "optimizer/plan_signature.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

int main() {
  SchemaScale scale;
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  Optimizer optimizer(&tpch.db);

  const int kGrid = 40;
  std::map<uint64_t, char> glyph_of;
  std::map<uint64_t, int> count_of;
  std::map<uint64_t, double> example_cost;
  const char* glyphs =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

  std::vector<std::string> rows;
  for (int yi = kGrid - 1; yi >= 0; --yi) {
    std::string row;
    for (int xi = 0; xi < kGrid; ++xi) {
      // Log-spaced grid over [0.002, 0.95]^2.
      auto coord = [&](int i) {
        double lo = std::log(0.002), hi = std::log(0.95);
        return std::exp(lo + (hi - lo) * (static_cast<double>(i) + 0.5) /
                                 kGrid);
      };
      QueryInstance q = InstanceForSelectivities(
          tpch.db, *bt.tmpl, {coord(xi), coord(yi)});
      OptimizationResult r = optimizer.Optimize(q);
      uint64_t sig = PlanSignatureHash(*r.plan);
      if (glyph_of.find(sig) == glyph_of.end()) {
        size_t next = glyph_of.size();
        glyph_of[sig] = next < 62 ? glyphs[next] : '#';
        example_cost[sig] = r.cost;
      }
      ++count_of[sig];
      row.push_back(glyph_of[sig]);
    }
    rows.push_back(std::move(row));
  }

  std::printf("Plan diagram for %s (%dx%d grid, log-spaced selectivities)\n",
              bt.tmpl->name().c_str(), kGrid, kGrid);
  std::printf("x: selectivity of l_shipdate <= $0 (0.002 .. 0.95, log)\n");
  std::printf("y: selectivity of o_totalprice <= $1 (0.002 .. 0.95, log)\n\n");
  for (const auto& row : rows) std::printf("  %s\n", row.c_str());

  std::printf("\n%zu distinct optimal plans:\n", glyph_of.size());
  std::vector<std::pair<int, uint64_t>> by_count;
  for (const auto& [sig, count] : count_of) by_count.push_back({count, sig});
  std::sort(by_count.rbegin(), by_count.rend());
  for (const auto& [count, sig] : by_count) {
    std::printf("  %c  %5.1f%% of the space   (cost at first sighting: "
                "%.1f)\n",
                glyph_of[sig],
                100.0 * count / static_cast<double>(kGrid * kGrid),
                example_cost[sig]);
  }
  return 0;
}

// End-to-end demo of the execution engine: optimize a query instance, show
// the chosen physical plan, execute it against materialized data, then
// reuse the *same cached plan* for a different instance (parameters bind at
// execution time) and compare against that instance's own optimal plan.
#include <cstdio>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

using namespace scrpqo;

int main() {
  SchemaScale scale;
  scale.factor = 0.5;
  scale.materialize_rows = true;  // executor needs real rows
  BenchmarkDb tpch = BuildTpchSkewed(scale);
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  Optimizer optimizer(&tpch.db);

  QueryInstance qa =
      InstanceForSelectivities(tpch.db, *bt.tmpl, {0.02, 0.30});
  QueryInstance qb =
      InstanceForSelectivities(tpch.db, *bt.tmpl, {0.60, 0.80});

  OptimizationResult ra = optimizer.Optimize(qa);
  std::printf("plan optimized for qa = %s:\n%s\n", qa.ToString().c_str(),
              ra.plan->ToString().c_str());

  ExecutionResult ea = ExecutePlan(tpch.db, qa, *ra.plan);
  std::printf("executing for qa: %lld rows in %.1f ms\n\n",
              static_cast<long long>(ea.rows), 1000 * ea.elapsed_seconds);

  // Reuse qa's plan for qb — legal because parameters bind at run time.
  ExecutionResult eb_reused = ExecutePlan(tpch.db, qb, *ra.plan);
  OptimizationResult rb = optimizer.Optimize(qb);
  ExecutionResult eb_optimal = ExecutePlan(tpch.db, qb, *rb.plan);
  std::printf("qb = %s\n", qb.ToString().c_str());
  std::printf("  qa's plan reused : %lld rows in %.1f ms\n",
              static_cast<long long>(eb_reused.rows),
              1000 * eb_reused.elapsed_seconds);
  std::printf("  qb's own plan    : %lld rows in %.1f ms\n",
              static_cast<long long>(eb_optimal.rows),
              1000 * eb_optimal.elapsed_seconds);
  std::printf("  identical result : %s\n",
              eb_reused.checksum == eb_optimal.checksum ? "yes" : "NO");

  // The optimizer-estimated sub-optimality of the reuse.
  RecostService recost(&optimizer.cost_model());
  CachedPlan cached = MakeCachedPlan(ra);
  double reuse_cost = recost.Recost(cached, rb.svector);
  std::printf("  estimated sub-optimality of reuse: %.2fx\n",
              reuse_cost / rb.cost);
  return 0;
}

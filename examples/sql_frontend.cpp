// SQL front end demo: define the parameterized template as SQL text, parse
// it against the catalog, and run the full PQO loop on it — the workflow a
// downstream application would actually use.
#include <cstdio>

#include "pqo/scr.h"
#include "sql/parser.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"

using namespace scrpqo;

int main() {
  SchemaScale scale;
  BenchmarkDb tpch = BuildTpchSkewed(scale);

  const char* sql =
      "SELECT l.l_extendedprice, o.o_totalprice "
      "FROM lineitem l, orders o, customer c "
      "WHERE l.l_orderkey = o.o_key AND o.o_custkey = c.c_key "
      "  AND l.l_shipdate <= ? AND o.o_totalprice <= ? "
      "  AND c.c_acctbal >= 0";
  std::printf("template SQL:\n%s\n\n", sql);

  auto parsed = ParseQueryTemplate(tpch.db.catalog(), sql, "sql_demo");
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto tmpl = parsed.ValueOrDie();
  std::printf("parsed: %s\n\n", tmpl->ToString().c_str());

  BoundTemplate bt;
  bt.db = &tpch;
  bt.tmpl = tmpl;
  InstanceGenOptions gen;
  gen.m = 300;
  auto instances = GenerateInstances(bt, gen);

  Optimizer optimizer(&tpch.db);
  Oracle oracle = Oracle::Build(optimizer, instances);
  auto perm = MakeOrdering(OrderingKind::kRandom, oracle.OrderingInfo(), 1);

  Scr scr(ScrOptions{.lambda = 1.5});
  RunSequenceOptions ropts;
  ropts.lambda_for_violations = 1.5;
  ropts.ordering_name = "random";
  SequenceMetrics m = RunSequence(optimizer, instances, perm, oracle, &scr,
                                  ropts);
  std::printf("SCR(lambda=1.5) over %lld instances of the SQL template:\n",
              static_cast<long long>(m.m));
  std::printf("  optimizer calls : %lld (%.1f%%)\n",
              static_cast<long long>(m.num_opt), m.NumOptPercent());
  std::printf("  plans cached    : %lld\n",
              static_cast<long long>(m.num_plans));
  std::printf("  MSO             : %.3f\n", m.mso);
  std::printf("  TotalCostRatio  : %.3f\n", m.total_cost_ratio);
  return 0;
}

// trace_summarize — offline analysis of a decision-event JSONL trace
// written by `scrpqo_cli --trace-events`.
//
// Usage:
//   trace_summarize TRACE.jsonl
//
// Prints the per-outcome decision breakdown (decision outcomes sum to the
// number of instances traced), cache-maintenance event counts, getPlan
// latency percentiles, and cost-check effort stats.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "obs/trace.h"

using namespace scrpqo;

namespace {

void PrintLatencyLine(const char* label, std::vector<double> micros) {
  if (micros.empty()) return;
  std::printf("  %-18s p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
              label, Percentile(micros, 50.0), Percentile(micros, 90.0),
              Percentile(micros, 99.0), Max(micros));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_summarize TRACE.jsonl\n");
    return 2;
  }
  auto loaded = ReadJsonlTraceFile(argv[1]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::vector<DecisionEvent> events = loaded.MoveValueOrDie();
  if (events.empty()) {
    std::printf("empty trace\n");
    return 0;
  }

  std::map<DecisionOutcome, int64_t> counts;
  std::map<std::string, int64_t> techniques;
  std::vector<double> decision_micros;
  std::vector<double> candidates;
  std::vector<double> recosts;
  int64_t decisions = 0;
  int64_t cache_events = 0;
  int64_t optimizer_calls = 0;
  for (const DecisionEvent& e : events) {
    ++counts[e.outcome];
    if (!e.technique.empty()) ++techniques[e.technique];
    if (IsDecisionOutcome(e.outcome)) {
      ++decisions;
      decision_micros.push_back(static_cast<double>(e.wall_micros));
      candidates.push_back(static_cast<double>(e.candidates_scanned));
      recosts.push_back(static_cast<double>(e.recost_calls));
      if (e.outcome == DecisionOutcome::kOptimized ||
          e.outcome == DecisionOutcome::kRedundantDiscard) {
        ++optimizer_calls;
      }
    } else {
      ++cache_events;
    }
  }

  std::printf("trace: %zu events", events.size());
  for (const auto& [name, n] : techniques) {
    std::printf("  [%s x%lld]", name.c_str(), static_cast<long long>(n));
  }
  std::printf("\n\ndecisions (%lld instances):\n",
              static_cast<long long>(decisions));
  for (DecisionOutcome outcome :
       {DecisionOutcome::kSelCheckHit, DecisionOutcome::kCostCheckHit,
        DecisionOutcome::kOptimized, DecisionOutcome::kRedundantDiscard}) {
    auto it = counts.find(outcome);
    int64_t n = it == counts.end() ? 0 : it->second;
    std::printf("  %-18s %8lld  (%5.1f%%)\n", DecisionOutcomeName(outcome),
                static_cast<long long>(n),
                decisions > 0 ? 100.0 * static_cast<double>(n) /
                                    static_cast<double>(decisions)
                              : 0.0);
  }
  std::printf("  optimizer calls    %8lld  (%5.1f%%)\n",
              static_cast<long long>(optimizer_calls),
              decisions > 0 ? 100.0 * static_cast<double>(optimizer_calls) /
                                  static_cast<double>(decisions)
                            : 0.0);
  if (cache_events > 0) {
    std::printf("\ncache events:\n  %-18s %8lld\n",
                DecisionOutcomeName(DecisionOutcome::kEvicted),
                static_cast<long long>(
                    counts.count(DecisionOutcome::kEvicted)
                        ? counts[DecisionOutcome::kEvicted]
                        : 0));
  }

  std::printf("\nlatency:\n");
  PrintLatencyLine("getPlan", decision_micros);

  std::printf("\ncost-check effort per getPlan:\n");
  std::printf("  candidates scanned mean=%.2f p99=%.0f max=%.0f\n",
              Mean(candidates), Percentile(candidates, 99.0),
              Max(candidates));
  std::printf("  recost calls       mean=%.2f p99=%.0f max=%.0f\n",
              Mean(recosts), Percentile(recosts, 99.0), Max(recosts));
  return 0;
}

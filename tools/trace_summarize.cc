// trace_summarize — offline analysis of a decision-event JSONL trace
// written by `scrpqo_cli --trace-events`.
//
// Usage:
//   trace_summarize [--stage-attribution] TRACE.jsonl
//
// Prints the per-outcome decision breakdown (decision outcomes sum to the
// number of instances traced), cache-maintenance event counts, capture
// losses (ring-buffer drops recorded in-band by the SPSC tracer),
// per-template event totals, getPlan latency percentiles, and cost-check
// effort stats. With --stage-attribution, also breaks getPlan wall time
// down by pipeline stage (shard-lock wait, index probe, sel check,
// recost, optimize, manageCache) from the per-event span records.
//
// Exits non-zero on a malformed trace: any line that is not a valid
// decision-event JSONL record fails the whole run (a truncated or
// corrupted trace must not silently summarize as a shorter one).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "obs/span.h"
#include "obs/trace.h"

using namespace scrpqo;

namespace {

void PrintLatencyLine(const char* label, std::vector<double> micros) {
  if (micros.empty()) return;
  std::printf("  %-18s p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus\n",
              label, Percentile(micros, 50.0), Percentile(micros, 90.0),
              Percentile(micros, 99.0), Max(micros));
}

int Usage() {
  std::fprintf(stderr,
               "usage: trace_summarize [--stage-attribution] TRACE.jsonl\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool stage_attribution = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stage-attribution") {
      stage_attribution = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path == nullptr) return Usage();
  auto loaded = ReadJsonlTraceFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::vector<DecisionEvent> events = loaded.MoveValueOrDie();
  if (events.empty()) {
    std::printf("empty trace\n");
    return 0;
  }

  std::map<DecisionOutcome, int64_t> counts;
  std::map<std::string, int64_t> techniques;
  std::map<std::string, int64_t> template_totals;
  std::map<std::string, int64_t> fault_fires;  // point name -> fires
  std::vector<double> decision_micros;
  std::vector<double> candidates;
  std::vector<double> recosts;
  std::vector<double> stage_micros[kNumStages];
  int64_t decisions = 0;
  int64_t cache_events = 0;
  int64_t optimizer_calls = 0;
  int64_t drop_events = 0;
  int64_t dropped_total = 0;
  for (const DecisionEvent& e : events) {
    ++counts[e.outcome];
    // Fault meta events overload the technique field with the point name;
    // keep them out of the technique header line.
    if (!e.technique.empty() &&
        e.outcome != DecisionOutcome::kFaultInjected) {
      ++techniques[e.technique];
    }
    ++template_totals[e.template_key];
    if (e.outcome == DecisionOutcome::kRingDropped) {
      ++drop_events;
      dropped_total += e.dropped;
    }
    if (e.outcome == DecisionOutcome::kFaultInjected) {
      // Fault-injection meta events carry the fault point name in the
      // technique field (see obs/trace.h).
      ++fault_fires[e.technique.empty() ? "(unnamed)" : e.technique];
    }
    if (IsDecisionOutcome(e.outcome)) {
      ++decisions;
      decision_micros.push_back(static_cast<double>(e.wall_micros));
      candidates.push_back(static_cast<double>(e.candidates_scanned));
      recosts.push_back(static_cast<double>(e.recost_calls));
      if (e.outcome == DecisionOutcome::kOptimized ||
          e.outcome == DecisionOutcome::kRedundantDiscard) {
        ++optimizer_calls;
      }
      for (int s = 0; s < kNumStages; ++s) {
        int64_t us = e.stages.get(static_cast<Stage>(s));
        if (us >= 0) {
          stage_micros[s].push_back(static_cast<double>(us));
        }
      }
    } else {
      ++cache_events;
    }
  }

  std::printf("trace: %zu events", events.size());
  for (const auto& [name, n] : techniques) {
    std::printf("  [%s x%lld]", name.c_str(), static_cast<long long>(n));
  }
  std::printf("\n\ndecisions (%lld instances):\n",
              static_cast<long long>(decisions));
  for (DecisionOutcome outcome :
       {DecisionOutcome::kSelCheckHit, DecisionOutcome::kCostCheckHit,
        DecisionOutcome::kOptimized, DecisionOutcome::kRedundantDiscard,
        DecisionOutcome::kDegraded}) {
    auto it = counts.find(outcome);
    int64_t n = it == counts.end() ? 0 : it->second;
    std::printf("  %-18s %8lld  (%5.1f%%)\n", DecisionOutcomeName(outcome),
                static_cast<long long>(n),
                decisions > 0 ? 100.0 * static_cast<double>(n) /
                                    static_cast<double>(decisions)
                              : 0.0);
  }
  std::printf("  optimizer calls    %8lld  (%5.1f%%)\n",
              static_cast<long long>(optimizer_calls),
              decisions > 0 ? 100.0 * static_cast<double>(optimizer_calls) /
                                  static_cast<double>(decisions)
                            : 0.0);
  if (cache_events > 0) {
    std::printf("\ncache events:\n  %-18s %8lld\n",
                DecisionOutcomeName(DecisionOutcome::kEvicted),
                static_cast<long long>(
                    counts.count(DecisionOutcome::kEvicted)
                        ? counts[DecisionOutcome::kEvicted]
                        : 0));
  }

  // Capture losses are recorded in-band: the SPSC exporter synthesizes a
  // kRingDropped event whenever a producer ring overflowed, carrying the
  // number of events lost in its `dropped` field.
  if (drop_events > 0) {
    std::printf("\ncapture losses:\n");
    std::printf("  ring-drop records  %8lld\n",
                static_cast<long long>(drop_events));
    std::printf("  events dropped     %8lld\n",
                static_cast<long long>(dropped_total));
  } else {
    std::printf("\ncapture losses: none (no ring-drop records)\n");
  }
  if (counts.count(DecisionOutcome::kAuditAlert)) {
    std::printf("\nAUDIT ALERTS: %lld lambda-guarantee violations flagged "
                "by the online monitor\n",
                static_cast<long long>(
                    counts[DecisionOutcome::kAuditAlert]));
  }

  // Degraded servings and injected faults: a fault-injection run is
  // auditable from the JSONL alone — every fired fault leaves a
  // kFaultInjected meta event, and every serving that had to drop the
  // lambda guarantee leaves a kDegraded decision.
  const int64_t degraded = counts.count(DecisionOutcome::kDegraded)
                               ? counts[DecisionOutcome::kDegraded]
                               : 0;
  if (degraded > 0 || !fault_fires.empty()) {
    std::printf("\ndegraded servings / injected faults:\n");
    std::printf("  degraded decisions %7lld  (%5.1f%% of decisions; served "
                "WITHOUT the lambda guarantee)\n",
                static_cast<long long>(degraded),
                decisions > 0 ? 100.0 * static_cast<double>(degraded) /
                                    static_cast<double>(decisions)
                              : 0.0);
    for (const auto& [point, n] : fault_fires) {
      std::printf("  fault %-24s %8lld fire%s\n", point.c_str(),
                  static_cast<long long>(n), n == 1 ? "" : "s");
    }
  }

  // Per-template totals (multi-template traces from a PqoManager run;
  // single-template traces roll up under one anonymous row).
  if (template_totals.size() > 1 ||
      !template_totals.begin()->first.empty()) {
    std::printf("\nevents by template:\n");
    for (const auto& [key, n] : template_totals) {
      std::printf("  %-32s %8lld\n",
                  key.empty() ? "(no template)" : key.c_str(),
                  static_cast<long long>(n));
    }
  }

  if (stage_attribution) {
    std::printf("\nstage attribution (decisions carrying each stage):\n");
    auto sum = [](const std::vector<double>& v) {
      double total = 0.0;
      for (double x : v) total += x;
      return total;
    };
    double attributed_sum = 0.0;
    for (int s = 0; s < kNumStages; ++s) {
      attributed_sum += sum(stage_micros[s]);
    }
    for (int s = 0; s < kNumStages; ++s) {
      const std::vector<double>& v = stage_micros[s];
      if (v.empty()) continue;
      double total = sum(v);
      std::printf(
          "  %-13s n=%-6zu mean=%7.1fus p99=%7.1fus max=%7.1fus  "
          "share=%5.1f%%\n",
          StageName(static_cast<Stage>(s)), v.size(), Mean(v),
          Percentile(v, 99.0), Max(v),
          attributed_sum > 0.0 ? 100.0 * total / attributed_sum : 0.0);
    }
    if (attributed_sum == 0.0) {
      std::printf("  (no stage records in this trace — was it captured "
                  "with a tracer attached?)\n");
    }
  }

  std::printf("\nlatency:\n");
  PrintLatencyLine("getPlan", decision_micros);

  std::printf("\ncost-check effort per getPlan:\n");
  std::printf("  candidates scanned mean=%.2f p99=%.0f max=%.0f\n",
              Mean(candidates), Percentile(candidates, 99.0),
              Max(candidates));
  std::printf("  recost calls       mean=%.2f p99=%.0f max=%.0f\n",
              Mean(recosts), Percentile(recosts, 99.0), Max(recosts));
  return 0;
}

// scrpqo_cli — run any PQO technique over a SQL-defined parameterized query
// against one of the built-in databases and report the paper's metrics.
//
// Usage:
//   scrpqo_cli [--db tpch|tpcds|rd1|rd2] [--technique NAME] [--lambda X]
//              [--m N] [--ordering random|dec-cost|round-robin|inside-out|
//              outside-in] [--budget K] [--seed S] [--sql "SELECT ..."]
//              [--explain] [--trace]
//
// Techniques: scr (default), async-scr, pcm, ellipse, density, ranges,
// opt-once, opt-always. Without --sql a built-in 2-d template is used.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "obs/admin_server.h"
#include "obs/emit.h"
#include "obs/metrics_registry.h"
#include "obs/ring_tracer.h"
#include "obs/trace.h"
#include "verify/guarantee_audit.h"
#include "verify/online_auditor.h"
#include "pqo/async_scr.h"
#include "pqo/cache_persistence.h"
#include "pqo/density.h"
#include "pqo/ellipse.h"
#include "pqo/opt_always.h"
#include "pqo/opt_once.h"
#include "pqo/pcm.h"
#include "pqo/ranges.h"
#include "pqo/scr.h"
#include "sql/parser.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"
#include "workload/named_templates.h"
#include "workload/trace.h"

using namespace scrpqo;

namespace {

struct CliOptions {
  std::string db = "tpch";
  std::string technique = "scr";
  double lambda = 2.0;
  int m = 500;
  std::string ordering = "random";
  int budget = 0;
  uint64_t seed = 20170514;
  std::string sql;
  std::string template_name;  // named template (see --list-templates)
  bool list_templates = false;
  bool explain = false;
  bool trace = false;
  std::string save_trace;    // write the generated instance set as CSV
  std::string replay_trace;  // load instances from CSV instead of sampling
  std::string save_cache;    // persist the SCR plan cache after the run
  std::string load_cache;    // restore an SCR plan cache before the run
  std::string trace_events;  // write per-decision JSONL events here
  std::string metrics_json;  // write the metrics-registry snapshot here
  bool audit = false;  // re-derive every traced decision after the run
  /// Capture backend for --trace-events/--audit: per-thread SPSC rings
  /// drained by an exporter ("ring", the default) or the legacy mutexed
  /// ring ("mutex").
  std::string tracer_kind = "ring";
  /// Streaming lambda-compliance monitor on the exporter stream.
  bool online_audit = false;
  /// Fault-injection schedule (FaultRegistry::ConfigureFromString syntax);
  /// merged on top of the SCRPQO_FAULTS environment schedule.
  std::string faults;
  /// Fault seed override (empty = SCRPQO_FAULT_SEED / 0).
  std::string fault_seed;
  /// Embedded admin HTTP server port (0 = ephemeral); -1 disables.
  int admin_port = -1;
  /// Keep the admin server up this long after the run so an operator or
  /// the CI smoke step can scrape /metrics and /statusz.
  int admin_linger_ms = 0;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: scrpqo_cli [--db tpch|tpcds|rd1|rd2] [--technique scr|"
      "async-scr|pcm|ellipse|density|ranges|opt-once|opt-always]\n"
      "                  [--lambda X] [--m N] [--ordering random|dec-cost|"
      "round-robin|inside-out|outside-in]\n"
      "                  [--budget K] [--seed S] [--sql \"SELECT ...\"]\n"
      "                  [--template NAME] [--list-templates]\n"
      "                  [--save-trace F] [--replay-trace F]\n"
      "                  [--save-cache F] [--load-cache F]\n"
      "                  [--trace-events F] [--metrics-json F]\n"
      "                  [--tracer ring|mutex] [--online-audit]\n"
      "                  [--faults SPEC] [--fault-seed S]\n"
      "                  [--admin-port P] [--admin-linger-ms MS]\n"
      "                  [--explain] [--trace] [--audit]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--db") {
      const char* v = next();
      if (!v) return false;
      opts->db = v;
    } else if (arg == "--technique") {
      const char* v = next();
      if (!v) return false;
      opts->technique = v;
    } else if (arg == "--lambda") {
      const char* v = next();
      if (!v) return false;
      opts->lambda = std::atof(v);
    } else if (arg == "--m") {
      const char* v = next();
      if (!v) return false;
      opts->m = std::atoi(v);
    } else if (arg == "--ordering") {
      const char* v = next();
      if (!v) return false;
      opts->ordering = v;
    } else if (arg == "--budget") {
      const char* v = next();
      if (!v) return false;
      opts->budget = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opts->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--sql") {
      const char* v = next();
      if (!v) return false;
      opts->sql = v;
    } else if (arg == "--template") {
      const char* v = next();
      if (!v) return false;
      opts->template_name = v;
    } else if (arg == "--list-templates") {
      opts->list_templates = true;
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if (arg == "--trace") {
      opts->trace = true;
    } else if (arg == "--save-trace") {
      const char* v = next();
      if (!v) return false;
      opts->save_trace = v;
    } else if (arg == "--replay-trace") {
      const char* v = next();
      if (!v) return false;
      opts->replay_trace = v;
    } else if (arg == "--save-cache") {
      const char* v = next();
      if (!v) return false;
      opts->save_cache = v;
    } else if (arg == "--load-cache") {
      const char* v = next();
      if (!v) return false;
      opts->load_cache = v;
    } else if (arg == "--trace-events") {
      const char* v = next();
      if (!v) return false;
      opts->trace_events = v;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (!v) return false;
      opts->metrics_json = v;
    } else if (arg == "--audit") {
      opts->audit = true;
    } else if (arg == "--tracer") {
      const char* v = next();
      if (!v) return false;
      opts->tracer_kind = v;
    } else if (arg == "--online-audit") {
      opts->online_audit = true;
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return false;
      opts->faults = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v) return false;
      opts->fault_seed = v;
    } else if (arg == "--admin-port") {
      const char* v = next();
      if (!v) return false;
      opts->admin_port = std::atoi(v);
    } else if (arg == "--admin-linger-ms") {
      const char* v = next();
      if (!v) return false;
      opts->admin_linger_ms = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<PqoTechnique> MakeTechnique(const CliOptions& opts) {
  ScrOptions scr_opts;
  scr_opts.lambda = opts.lambda;
  scr_opts.plan_budget = opts.budget;
  if (opts.technique == "scr") return std::make_unique<Scr>(scr_opts);
  if (opts.technique == "async-scr") {
    return std::make_unique<AsyncScr>(scr_opts);
  }
  if (opts.technique == "pcm") {
    return std::make_unique<Pcm>(PcmOptions{.lambda = opts.lambda});
  }
  if (opts.technique == "ellipse") {
    return std::make_unique<Ellipse>(EllipseOptions{});
  }
  if (opts.technique == "density") {
    return std::make_unique<Density>(DensityOptions{});
  }
  if (opts.technique == "ranges") {
    return std::make_unique<Ranges>(RangesOptions{});
  }
  if (opts.technique == "opt-once") return std::make_unique<OptOnce>();
  if (opts.technique == "opt-always") return std::make_unique<OptAlways>();
  return nullptr;
}

OrderingKind OrderingFromName(const std::string& name) {
  for (OrderingKind kind : AllOrderings()) {
    if (OrderingName(kind) == name) return kind;
  }
  return OrderingKind::kRandom;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return Usage();

  if (opts.list_templates) {
    std::printf("named templates (use with --template NAME):\n");
    for (const auto& nt : ListNamedTemplates()) {
      std::printf("  %-16s [%s] %s\n", nt.name.c_str(),
                  nt.database.c_str(), nt.description.c_str());
    }
    return 0;
  }

  // Fault schedule: environment first (chaos CI arms through SCRPQO_FAULTS
  // so the binary under test needs no special flags), then explicit flags
  // layered on top.
  FaultRegistry& faultreg = FaultRegistry::Global();
  {
    Status st = faultreg.ConfigureFromEnv();
    if (st.ok() && !opts.fault_seed.empty()) {
      faultreg.SetSeed(static_cast<uint64_t>(std::atoll(
          opts.fault_seed.c_str())));
    }
    if (st.ok() && !opts.faults.empty()) {
      st = faultreg.ConfigureFromString(opts.faults);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "fault config error: %s\n",
                   st.ToString().c_str());
      return 2;
    }
  }
  if (faultreg.enabled()) {
    std::printf("fault injection armed:");
    for (const std::string& p : faultreg.ArmedPoints()) {
      std::printf(" %s", p.c_str());
    }
    std::printf("\n");
  }

  SchemaScale scale;
  scale.seed = opts.seed;

  // Named templates know their database; otherwise build the requested one.
  std::vector<BenchmarkDb> all_dbs;  // kept alive for named templates
  BenchmarkDb db;
  BoundTemplate bt;
  if (!opts.template_name.empty()) {
    all_dbs = BuildAllDatabases(scale);
    bt = BuildNamedTemplate(all_dbs, opts.template_name);
  } else {
    if (opts.db == "tpch") {
      db = BuildTpchSkewed(scale);
    } else if (opts.db == "tpcds") {
      db = BuildDsLike(scale);
    } else if (opts.db == "rd1") {
      db = BuildRd1(scale);
    } else if (opts.db == "rd2") {
      db = BuildRd2(scale);
    } else {
      std::fprintf(stderr, "unknown database: %s\n", opts.db.c_str());
      return Usage();
    }
    bt.db = &db;
    if (opts.sql.empty()) {
      if (opts.db == "tpch") {
        bt = BuildExample2dTemplate(db);
      } else if (opts.db == "rd2") {
        bt = BuildRd2TemplateWithDimensions(db, 4);
      } else {
        std::fprintf(stderr,
                     "--sql or --template is required for db %s\n",
                     opts.db.c_str());
        return 2;
      }
    } else {
      auto parsed = ParseQueryTemplate(db.db.catalog(), opts.sql, "cli");
      if (!parsed.ok()) {
        std::fprintf(stderr, "SQL error: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      bt.tmpl = parsed.ValueOrDie();
    }
  }
  std::printf("%s\n", bt.tmpl->ToString().c_str());

  Optimizer optimizer(&bt.db->db);
  std::vector<WorkloadInstance> instances;
  if (!opts.replay_trace.empty()) {
    auto loaded = LoadTrace(bt, opts.replay_trace);
    if (!loaded.ok()) {
      std::fprintf(stderr, "trace error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    instances = loaded.MoveValueOrDie();
    std::printf("replaying %zu instances from %s\n", instances.size(),
                opts.replay_trace.c_str());
  } else {
    InstanceGenOptions gen;
    gen.m = opts.m;
    gen.seed = opts.seed + 1;
    instances = GenerateInstances(bt, gen);
  }
  if (!opts.save_trace.empty()) {
    Status st = SaveTrace(instances, opts.save_trace);
    if (!st.ok()) {
      std::fprintf(stderr, "trace error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved %zu instances to %s\n", instances.size(),
                opts.save_trace.c_str());
  }
  Oracle oracle = Oracle::Build(optimizer, instances);
  auto perm = MakeOrdering(OrderingFromName(opts.ordering),
                           oracle.OrderingInfo(), opts.seed + 2);

  if (opts.explain) {
    std::printf("\noptimal plan for the first instance:\n%s\n",
                oracle.result(perm[0])->plan->ToString().c_str());
  }

  auto technique = MakeTechnique(opts);
  if (technique == nullptr) {
    std::fprintf(stderr, "unknown technique: %s\n", opts.technique.c_str());
    return Usage();
  }

  // Cache persistence is an SCR feature (the cache format is SCR's).
  Scr* scr_ptr =
      opts.technique == "scr" ? static_cast<Scr*>(technique.get()) : nullptr;
  if (!opts.load_cache.empty()) {
    if (scr_ptr == nullptr) {
      std::fprintf(stderr, "--load-cache requires --technique scr\n");
      return 2;
    }
    // Lenient restore: a truncated or bit-flipped snapshot yields its
    // valid prefix (a smaller warm cache) instead of an empty one — a
    // cold start is the worst case, never a crash.
    SnapshotRestoreReport restore;
    Status st = LoadScrCacheFromFileLenient(opts.load_cache, scr_ptr,
                                            &restore);
    if (!st.ok()) {
      std::fprintf(stderr, "cache error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("restored plan cache: %lld plans, %lld instance entries\n",
                static_cast<long long>(scr_ptr->NumPlansCached()),
                static_cast<long long>(scr_ptr->NumInstancesStored()));
    if (restore.records_dropped > 0) {
      std::printf("  snapshot corrupt after valid prefix: dropped %d "
                  "record%s (%s)\n",
                  restore.records_dropped,
                  restore.records_dropped == 1 ? "" : "s",
                  restore.first_error.c_str());
    }
  }

  if (opts.trace) {
    // Per-instance trace with decision + SO.
    EngineContext engine(&bt.db->db, &optimizer);
    engine.SetOracle([&oracle](const WorkloadInstance& wi) {
      return oracle.result(wi.id);
    });
    for (size_t i = 0; i < perm.size() && i < 50; ++i) {
      const WorkloadInstance& wi =
          instances[static_cast<size_t>(perm[i])];
      PlanChoice c = technique->OnInstance(wi, &engine);
      double so = engine.RecostUncharged(*c.plan, wi.svector) /
                  oracle.opt_cost(wi.id);
      std::printf("  #%-4zu %-10s SO=%.3f\n", i + 1,
                  c.optimized ? "OPTIMIZE" : "reuse", std::max(so, 1.0));
    }
    if (perm.size() > 50) std::printf("  ... (trace capped at 50)\n");
    return 0;
  }

  RunSequenceOptions ropts;
  ropts.lambda_for_violations = opts.lambda;
  ropts.ordering_name = opts.ordering;
  std::unique_ptr<Tracer> tracer;
  RingTracer* ring_tracer = nullptr;
  std::unique_ptr<MetricsRegistry> registry;
  const bool want_tracer =
      !opts.trace_events.empty() || opts.audit || opts.online_audit;
  if (want_tracer) {
    // Size the retained window generously so a full run (decisions +
    // cache events) never wraps; the audit must see every decision.
    const size_t cap = static_cast<size_t>(std::max(1024, 4 * opts.m));
    if (opts.tracer_kind == "mutex") {
      tracer = std::make_unique<Tracer>(cap);
    } else if (opts.tracer_kind == "ring") {
      RingTracer::Options ring_opts;
      // Single-threaded CLI run: make the per-thread ring as large as
      // the window so the exporter can never lose a burst to drops.
      ring_opts.ring_capacity = cap;
      ring_opts.window_capacity = cap;
      auto rt = std::make_unique<RingTracer>(ring_opts);
      ring_tracer = rt.get();
      tracer = std::move(rt);
    } else {
      std::fprintf(stderr, "unknown tracer kind: %s (ring|mutex)\n",
                   opts.tracer_kind.c_str());
      return Usage();
    }
    ropts.tracer = tracer.get();
  }
  if (!opts.metrics_json.empty() || opts.admin_port >= 0 ||
      opts.online_audit) {
    registry = std::make_unique<MetricsRegistry>();
    ropts.metrics = registry.get();
  }

  // Every fired fault leaves a kFaultInjected meta event (point name in
  // the technique field) and bumps faults.fired, so chaos runs are
  // auditable from the JSONL/metrics alone.
  if (faultreg.enabled() && (tracer != nullptr || registry != nullptr)) {
    Tracer* fault_tracer = tracer.get();
    Counter* fault_counter =
        registry != nullptr ? registry->counter("faults.fired") : nullptr;
    faultreg.SetOnFire([fault_tracer, fault_counter](std::string_view point,
                                                     double /*param*/) {
      if (fault_counter != nullptr) fault_counter->Increment();
      DecisionEvent e;
      e.outcome = DecisionOutcome::kFaultInjected;
      e.technique = std::string(point);
      EmitDecisionEvent(fault_tracer, std::move(e));
    });
  }

  const bool is_scr_family =
      opts.technique == "scr" || opts.technique == "async-scr";

  std::shared_ptr<OnlineAuditor> online_auditor;
  if (opts.online_audit) {
    if (ring_tracer == nullptr) {
      std::fprintf(stderr,
                   "--online-audit requires --tracer ring (the monitor "
                   "consumes the exporter stream)\n");
      return 2;
    }
    OnlineAuditorOptions aopts;
    aopts.config.lambda = opts.lambda;
    if (is_scr_family) {
      aopts.config.lambda_r = std::sqrt(opts.lambda);  // ScrOptions default
    }
    aopts.alert_tracer = ring_tracer;
    aopts.metrics = registry.get();
    online_auditor = std::make_shared<OnlineAuditor>(aopts);
    ring_tracer->AddSink(online_auditor);
  }

  std::unique_ptr<AdminServer> admin;
  if (opts.admin_port >= 0) {
    AdminServer::Options aopts;
    aopts.port = opts.admin_port;
    aopts.metrics = registry.get();
    Tracer* statusz_tracer = tracer.get();
    std::string statusz_technique = opts.technique;
    double statusz_lambda = opts.lambda;
    aopts.statusz = [statusz_tracer, statusz_technique, statusz_lambda]() {
      std::string out = "{\"technique\":\"" + statusz_technique +
                        "\",\"lambda\":" + std::to_string(statusz_lambda) +
                        ",\"trace_ring_drops\":";
      out += std::to_string(statusz_tracer != nullptr
                                ? statusz_tracer->dropped()
                                : 0);
      out += "}\n";
      return out;
    };
    admin = std::make_unique<AdminServer>(std::move(aopts));
    Status st = admin->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "admin server error: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("admin server listening on 127.0.0.1:%d\n", admin->port());
    std::fflush(stdout);
  }

  SequenceMetrics m = RunSequence(optimizer, instances, perm, oracle,
                                  technique.get(), ropts);
  // Drain the rings before reading the trace back (writes, audits,
  // status) — the exporter runs on its own clock.
  if (ring_tracer != nullptr) {
    Status st = ring_tracer->Flush();
    if (!st.ok()) {
      std::fprintf(stderr, "trace flush error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("\n%s over %lld instances (%s ordering):\n",
              technique->name().c_str(), static_cast<long long>(m.m),
              opts.ordering.c_str());
  std::printf("  optimizer calls   : %lld (%.1f%%)\n",
              static_cast<long long>(m.num_opt), m.NumOptPercent());
  std::printf("  Recost calls      : %lld\n",
              static_cast<long long>(m.num_recost_calls));
  std::printf("  plans cached      : %lld\n",
              static_cast<long long>(m.num_plans));
  std::printf("  MSO               : %.3f\n", m.mso);
  std::printf("  TotalCostRatio    : %.3f\n", m.total_cost_ratio);
  std::printf("  bound violations  : %lld\n",
              static_cast<long long>(m.bound_violations));

  if (tracer != nullptr && !opts.trace_events.empty()) {
    Status st = tracer->WriteJsonlFile(opts.trace_events);
    if (!st.ok()) {
      std::fprintf(stderr, "trace-events error: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %lld decision events to %s\n",
                static_cast<long long>(tracer->total_recorded()),
                opts.trace_events.c_str());
  }
  if (registry != nullptr && !opts.metrics_json.empty()) {
    Status st = registry->WriteJsonFile(opts.metrics_json);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics-json error: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", opts.metrics_json.c_str());
  }

  if (!opts.save_cache.empty()) {
    if (scr_ptr == nullptr) {
      std::fprintf(stderr, "--save-cache requires --technique scr\n");
      return 2;
    }
    Status st = SaveScrCacheToFile(*scr_ptr, opts.save_cache);
    if (!st.ok()) {
      std::fprintf(stderr, "cache error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved plan cache to %s\n", opts.save_cache.c_str());
  }

  if (opts.audit) {
    // Re-derive every traced decision (and, for SCR, the final cache
    // state) from the recorded arithmetic. A violation here means the
    // run broke the paper's lambda guarantee — exit nonzero.
    AuditConfig config;
    config.lambda = opts.lambda;
    if (is_scr_family) {
      config.lambda_r = std::sqrt(opts.lambda);  // ScrOptions default
    }
    AuditReport report = AuditTrace(tracer->Snapshot(), config);
    if (scr_ptr != nullptr) {
      report.Merge(AuditCacheSnapshot(scr_ptr->SnapshotPlans(),
                                      scr_ptr->SnapshotInstances(),
                                      config));
    }
    std::printf("\n%s\n", report.ToString().c_str());
    if (!report.ok()) return 1;
  }

  int rc = 0;
  if (online_auditor != nullptr) {
    std::printf(
        "\nonline audit: %lld decisions checked, %lld violations",
        static_cast<long long>(online_auditor->checked()),
        static_cast<long long>(online_auditor->violations()));
    double margin = online_auditor->worst_margin();
    if (std::isfinite(margin)) {
      std::printf(", worst margin %.6f", margin);
    }
    std::printf("\n");
    if (online_auditor->violations() > 0) rc = 1;
  }

  if (faultreg.enabled()) {
    std::printf("\nfault injection: %lld total fires\n",
                static_cast<long long>(faultreg.TotalFires()));
    for (const std::string& p : faultreg.ArmedPoints()) {
      FaultPointStats s = faultreg.StatsFor(p);
      std::printf("  %-24s evaluations=%lld fires=%lld\n", p.c_str(),
                  static_cast<long long>(s.evaluations),
                  static_cast<long long>(s.fires));
    }
    // The hook captures the tracer/registry, which die with main.
    faultreg.SetOnFire(nullptr);
  }

  if (admin != nullptr && opts.admin_linger_ms > 0) {
    // Leave the operator surface up after the run (CI smoke / manual
    // curls); the run's metrics and status stay scrapeable meanwhile.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts.admin_linger_ms));
  }
  return rc;
}

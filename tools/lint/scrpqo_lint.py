#!/usr/bin/env python3
"""Project-specific concurrency lint for the scrpqo tree.

Five rules, each encoding an invariant the thread-safety annotations
(common/thread_annotations.h) cannot express on their own:

  atomic-order             In the serving layers (src/pqo/, src/obs/) every
                           std::atomic load/store/fetch_*/exchange/CAS must
                           name an explicit std::memory_order. A bare
                           `x.load()` silently buys a seq_cst fence on the
                           getPlan hot path. Use RelaxedCounter (which
                           spells its mutators value()/Store()/Add()) or
                           pass the order explicitly.

  blocking-under-lock      In src/pqo/ no blocking call — engine Optimize,
                           sink fan-out (Consume/Flush), stream/file I/O,
                           sleeps, thread joins — may run while a Mutex /
                           SharedMutex scope is active. A template or shard
                           lock held across an optimizer call serializes
                           every concurrent request on that template.

  tracer-record-outside-obs  Tracer::Record is called directly only inside
                           src/obs/ (the capture layer itself). Everyone
                           else goes through EmitDecisionEvent (obs/emit.h)
                           so capture policy has exactly one funnel.

  nodiscard-status         Every class/struct definition named Status or
                           Result in src/common/ carries [[nodiscard]]: a
                           dropped Status is a swallowed error.

  raw-mutex                std::mutex / std::shared_mutex /
                           std::condition_variable / std::lock_guard /
                           std::unique_lock / std::scoped_lock /
                           std::shared_lock appear nowhere in src/ outside
                           common/thread_annotations.h. Raw primitives are
                           invisible to the thread-safety analysis and
                           silently exempt every field they guard.

  alloc-in-hotpath         In src/pqo/ and the SIMD recost-bundle TUs
                           (src/optimizer/recost_bundle*), regions fenced
                           by `// scrpqo-lint: hot-path begin` ...
                           `// scrpqo-lint: hot-path end` (the
                           getPlan-reachable reuse path, e.g.
                           Scr::TryReuse or RecostBundle::EvalMany) no
                           heap allocation may appear:
                           `new`, std::make_unique / make_shared,
                           std::vector / std::string / std::map
                           construction. Scratch belongs in the thread's
                           ScratchArena (ArenaVec) so the warmed path
                           stays allocation-free — the property the
                           arena-watermark test asserts.

Suppression: append `// scrpqo-lint: allow(<rule>)` to the offending line
(or place it alone on the immediately preceding line). Every suppression
should carry a justification in a nearby comment.

Self-test: fixtures under tools/lint/testdata/ mark each seeded violation
with `// scrpqo-lint: expect(<rule>)`; `--self-test` verifies the engine
reports exactly the expected findings (and honors the allow() fixtures).

Engines: the default engine is lexical (no dependencies beyond the
standard library) so the lint runs in any build environment. When the
libclang Python bindings are importable, `--engine clang` refines
atomic-order and tracer-record-outside-obs with real AST receiver types;
the lexical engine is the one CI gates on.

Usage:
  scrpqo_lint.py --root <repo> [-p build/compile_commands.json]
  scrpqo_lint.py --self-test
Exit status: 0 = clean, 1 = findings, 2 = usage/config error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

RULES = (
    "atomic-order",
    "blocking-under-lock",
    "tracer-record-outside-obs",
    "nodiscard-status",
    "raw-mutex",
    "alloc-in-hotpath",
)

# --------------------------------------------------------------------------
# Source model: comment-stripped lines with allow()/expect() markers.
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(r"//\s*scrpqo-lint:\s*allow\(([a-z0-9-]+)\)")
EXPECT_RE = re.compile(r"//\s*scrpqo-lint:\s*expect\(([a-z0-9-]+)\)")


@dataclass
class SourceFile:
    path: str
    rel: str
    raw_lines: list[str]
    code_lines: list[str]  # comments and string literals blanked
    allows: dict[int, set[str]]  # 1-based line -> allowed rules
    expects: dict[int, set[str]]  # 1-based line -> expected rules


def _strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Keeps column positions stable by replacing stripped characters with
    spaces, so findings can still report accurate lines.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings R"delim(...)delim" need their own scan: they
                # may contain quotes and backslashes.
                if out and out[-1] == "R":
                    m = re.match(r'"([^\s()\\]{0,16})\(', text[i:])
                    if m:
                        closer = ")" + m.group(1) + '"'
                        end = text.find(closer, i + m.end())
                        end = n if end < 0 else end + len(closer)
                        out.append(
                            "".join(
                                ch if ch == "\n" else " "
                                for ch in text[i:end]
                            )
                        )
                        i = end
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
            continue
        if state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        # string / char
        if c == "\\":
            out.append("  ")
            i += 2
            continue
        if (state == "string" and c == '"') or (state == "char" and c == "'"):
            state = "code"
            out.append(" ")
            i += 1
            continue
        out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def load_source(path: str, root: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    code_lines = _strip_comments_and_strings(text).splitlines()
    while len(code_lines) < len(raw_lines):
        code_lines.append("")
    allows: dict[int, set[str]] = {}
    expects: dict[int, set[str]] = {}
    for idx, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            # An allow on its own line covers the next line; inline covers
            # its own line.
            target = idx + 1 if line.split("//", 1)[0].strip() == "" else idx
            allows.setdefault(target, set()).add(m.group(1))
        for m in EXPECT_RE.finditer(line):
            target = idx + 1 if line.split("//", 1)[0].strip() == "" else idx
            expects.setdefault(target, set()).add(m.group(1))
    rel = os.path.relpath(path, root)
    return SourceFile(path, rel, raw_lines, code_lines, allows, expects)


@dataclass
class Finding:
    rule: str
    rel: str
    line: int  # 1-based
    message: str

    def format(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule: atomic-order
# --------------------------------------------------------------------------

ATOMIC_CALL_RE = re.compile(
    r"[\w\)\]>]\s*(?:\.|->)\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\("
)
MEMORY_ORDER_RE = re.compile(r"std::memory_order|memory_order_")


def _span_call(lines: list[str], start_idx: int, open_pos: int) -> tuple[str, int]:
    """Returns the full argument text of a call whose '(' is at
    (start_idx, open_pos) in `lines` (0-based idx), plus the 0-based index
    of the line where it closes. Scans at most 12 lines."""
    depth = 0
    collected = []
    for idx in range(start_idx, min(start_idx + 12, len(lines))):
        line = lines[idx]
        pos = open_pos if idx == start_idx else 0
        for j in range(pos, len(line)):
            ch = line[j]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    collected.append(line[pos : j + 1])
                    return "".join(collected), idx
        collected.append(line[pos:])
    return "".join(collected), min(start_idx + 11, len(lines) - 1)


def check_atomic_order(src: SourceFile) -> list[Finding]:
    if not (src.rel.startswith("src/pqo/") or src.rel.startswith("src/obs/")):
        return []
    findings = []
    for idx, line in enumerate(src.code_lines):
        for m in ATOMIC_CALL_RE.finditer(line):
            method = m.group(1)
            # RelaxedCounter spells its mutators Store/Add/value, so any
            # .store/.load match here is a raw std::atomic (or an atomic
            # wrapper faking the std interface, equally suspect).
            open_pos = m.end() - 1
            args, _ = _span_call(src.code_lines, idx, open_pos)
            if MEMORY_ORDER_RE.search(args):
                continue
            findings.append(
                Finding(
                    "atomic-order",
                    src.rel,
                    idx + 1,
                    f"atomic {method}() without an explicit std::memory_order "
                    "(default seq_cst fences the hot path; say the order or "
                    "use RelaxedCounter)",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Rule: blocking-under-lock
# --------------------------------------------------------------------------

# Scope-guard declarations: `MutexLock l(mu);` and friends.
GUARD_DECL_RE = re.compile(
    r"\b(MutexLock|ReaderMutexLock|WriterMutexLock|ShardLock)\s+\w+\s*\("
)
MANUAL_LOCK_RE = re.compile(r"\b([\w.\->]+?)\s*(?:\.|->)\s*Lock(?:Shared)?\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(
    r"\b([\w.\->]+?)\s*(?:\.|->)\s*Unlock(?:Shared)?\s*\(\s*\)"
)

BLOCKING_CALL_RE = re.compile(
    r"(?:"
    r"\b\w+\s*(?:\.|->)\s*(Optimize|Consume|Flush|ObserveDrop|join)\s*\(|"
    r"\bstd::this_thread::(sleep_for|sleep_until)\b|"
    r"\bstd::(getline|fopen|ifstream|ofstream|fstream)\b|"
    r"\b(printf|fprintf|fwrite|fread|fputs)\s*\("
    r")"
)


def check_blocking_under_lock(src: SourceFile) -> list[Finding]:
    if not src.rel.startswith("src/pqo/"):
        return []
    findings = []
    # Track lock scopes with a brace stack. Each entry records whether the
    # brace opened a namespace scope: when only namespace braces remain
    # open we are between functions, which resets the manual Lock()/
    # Unlock() pairing (a ctor that hands its lock to the dtor, like
    # ShardLock, must not poison the rest of the file). A guard declared
    # at stack depth d is active until a `}` takes the stack below d — a
    # nested sub-scope closing back TO d keeps the lock held.
    brace_stack: list[bool] = []  # True = namespace brace
    guard_depths: list[int] = []
    manual_locks: list[str] = []
    ns_re = re.compile(r"\s*(?:inline\s+)?namespace\b")
    for idx, line in enumerate(src.code_lines):
        line_had_guard = False
        if GUARD_DECL_RE.search(line):
            guard_depths.append(len(brace_stack))
            line_had_guard = True
        for m in MANUAL_LOCK_RE.finditer(line):
            manual_locks.append(m.group(1))
        for m in MANUAL_UNLOCK_RE.finditer(line):
            obj = m.group(1)
            if obj in manual_locks:
                manual_locks.remove(obj)
        locked = bool(guard_depths) or bool(manual_locks)
        if locked and not line_had_guard:
            bm = BLOCKING_CALL_RE.search(line)
            if bm:
                what = next(g for g in bm.groups() if g)
                findings.append(
                    Finding(
                        "blocking-under-lock",
                        src.rel,
                        idx + 1,
                        f"blocking call `{what}` while a lock scope is "
                        "active (move the call outside the critical "
                        "section)",
                    )
                )
        # Apply brace deltas after the check so a guard's own line counts
        # as inside its scope only from the next line on. Only the first
        # `{` of a `namespace ... {` line is the namespace brace.
        ns_brace_pending = bool(ns_re.match(line))
        for ch in line:
            if ch == "{":
                brace_stack.append(ns_brace_pending)
                ns_brace_pending = False
            elif ch == "}":
                if brace_stack:
                    brace_stack.pop()
                while guard_depths and len(brace_stack) < guard_depths[-1]:
                    guard_depths.pop()
        if all(brace_stack):  # only namespace scopes (or nothing) open
            manual_locks.clear()
            guard_depths.clear()
    return findings


# --------------------------------------------------------------------------
# Rule: tracer-record-outside-obs
# --------------------------------------------------------------------------

RECORD_CALL_RE = re.compile(r"([\w.\->]*tracer[\w.\->]*)\s*(?:\.|->)\s*Record\s*\(", re.IGNORECASE)


def check_tracer_record(src: SourceFile) -> list[Finding]:
    if not src.rel.startswith("src/") or src.rel.startswith("src/obs/"):
        return []
    findings = []
    for idx, line in enumerate(src.code_lines):
        m = RECORD_CALL_RE.search(line)
        if m:
            findings.append(
                Finding(
                    "tracer-record-outside-obs",
                    src.rel,
                    idx + 1,
                    f"direct Tracer::Record via `{m.group(1)}` outside "
                    "src/obs/ — route through EmitDecisionEvent "
                    "(obs/emit.h)",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Rule: nodiscard-status
# --------------------------------------------------------------------------

STATUS_DEF_RE = re.compile(r"\b(class|struct)\s+(Status|Result)\b[^;]*$")


def check_nodiscard_status(src: SourceFile) -> list[Finding]:
    if not src.rel.startswith("src/common/"):
        return []
    findings = []
    for idx, line in enumerate(src.code_lines):
        m = STATUS_DEF_RE.search(line)
        if not m:
            continue
        # Skip forward declarations (`class Status;`) — the regex already
        # rejects lines ending in `;`, but re-check after whitespace.
        if re.search(r"\b(class|struct)\s+(Status|Result)\s*(<[^>]*>)?\s*;", line):
            continue
        if "[[nodiscard]]" not in src.raw_lines[idx]:
            findings.append(
                Finding(
                    "nodiscard-status",
                    src.rel,
                    idx + 1,
                    f"{m.group(1)} {m.group(2)} defined without "
                    "[[nodiscard]] — a dropped error object is a "
                    "swallowed failure",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Rule: raw-mutex
# --------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)


def check_raw_mutex(src: SourceFile) -> list[Finding]:
    if not src.rel.startswith("src/"):
        return []
    if src.rel == "src/common/thread_annotations.h":
        return []
    findings = []
    for idx, line in enumerate(src.code_lines):
        m = RAW_MUTEX_RE.search(line)
        if m:
            findings.append(
                Finding(
                    "raw-mutex",
                    src.rel,
                    idx + 1,
                    f"raw std::{m.group(1)} — use the annotated primitives "
                    "in common/thread_annotations.h (raw sync objects are "
                    "invisible to the thread-safety analysis)",
                )
            )
    return findings


# --------------------------------------------------------------------------
# Rule: alloc-in-hotpath
# --------------------------------------------------------------------------

# Path prefixes where the alloc-in-hotpath rule is live. The effect
# analyzer (tools/analyze/scrpqo_effects.py) imports this: a direct
# allocation on a fenced line under these prefixes is OWNED by this lint
# and reported by the analyzer only as "delegated", never double-reported.
ALLOC_HOTPATH_SCOPE = ("src/pqo/", "src/optimizer/recost_bundle")

HOT_BEGIN_RE = re.compile(r"//\s*scrpqo-lint:\s*hot-path\s+begin\b")
HOT_END_RE = re.compile(r"//\s*scrpqo-lint:\s*hot-path\s+end\b")

# Heap-allocating constructs. `\bnew\b` does not match identifiers like
# `new_cost` (underscore continues the word); placement/new-expression
# distinctions don't matter — any `new` in a hot region is wrong.
ALLOC_RE = re.compile(
    r"(?:"
    r"\bnew\b(?!\s*\()\s*[\w:<]|"           # new T / new T[n]
    r"\bstd::make_(?:unique|shared)\b|"
    r"\bstd::(?:vector|deque|list|map|set|unordered_map|"
    r"unordered_set)\s*<[^;]*>\s*\w+\s*[({;=]|"  # container declaration
    r"\bstd::string\s+\w+\s*[({;=]"
    r")"
)


def check_alloc_in_hotpath(src: SourceFile) -> list[Finding]:
    if not src.rel.startswith(ALLOC_HOTPATH_SCOPE):
        return []
    findings = []
    hot = False
    for idx, raw in enumerate(src.raw_lines):
        # Markers live in comments, so scan raw lines for them but match
        # allocation constructs on the comment-stripped text.
        if HOT_BEGIN_RE.search(raw):
            hot = True
            continue
        if HOT_END_RE.search(raw):
            hot = False
            continue
        if not hot:
            continue
        m = ALLOC_RE.search(src.code_lines[idx])
        if m:
            findings.append(
                Finding(
                    "alloc-in-hotpath",
                    src.rel,
                    idx + 1,
                    f"heap allocation `{m.group(0).strip()}` inside a "
                    "hot-path region — use the thread's ScratchArena / "
                    "ArenaVec so the warmed reuse path stays "
                    "allocation-free",
                )
            )
    return findings


CHECKS = {
    "atomic-order": check_atomic_order,
    "blocking-under-lock": check_blocking_under_lock,
    "tracer-record-outside-obs": check_tracer_record,
    "nodiscard-status": check_nodiscard_status,
    "raw-mutex": check_raw_mutex,
    "alloc-in-hotpath": check_alloc_in_hotpath,
}


# --------------------------------------------------------------------------
# Optional libclang refinement.
# --------------------------------------------------------------------------


def try_clang_engine():
    """Returns the clang.cindex module when importable, else None. The
    clang engine is used only to *drop* lexical atomic-order findings whose
    receiver the AST proves is not a std::atomic (RelaxedCounter internals,
    user types with a `load` method)."""
    try:
        import clang.cindex as cindex  # type: ignore

        return cindex
    except Exception:
        return None


def refine_with_clang(cindex, compile_db_dir: str, findings: list[Finding],
                      root: str) -> list[Finding]:
    try:
        db = cindex.CompilationDatabase.fromDirectory(compile_db_dir)
    except Exception as e:  # pragma: no cover - env-dependent
        print(f"note: libclang refinement unavailable ({e}); "
              "keeping lexical findings", file=sys.stderr)
        return findings
    keep = []
    index = cindex.Index.create()
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        if f.rule == "atomic-order":
            by_file.setdefault(f.rel, []).append(f)
        else:
            keep.append(f)
    for rel, file_findings in by_file.items():
        path = os.path.join(root, rel)
        cmds = db.getCompileCommands(path)
        if not cmds:
            keep.extend(file_findings)
            continue
        args = [a for a in list(cmds[0].arguments)[1:] if a != path]
        try:
            tu = index.parse(path, args=args)
        except Exception:
            keep.extend(file_findings)
            continue
        atomic_lines = set()
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind.name != "CALL_EXPR":
                continue
            ref = cursor.referenced
            if ref is None or ref.semantic_parent is None:
                continue
            parent = ref.semantic_parent.spelling
            if parent in ("atomic", "__atomic_base", "atomic_flag"):
                loc = cursor.location
                if loc.file and os.path.samefile(loc.file.name, path):
                    atomic_lines.add(loc.line)
        for f in file_findings:
            if f.line in atomic_lines or not atomic_lines:
                keep.append(f)
    return keep


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

SRC_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")


def collect_files(root: str, compile_db: str | None) -> list[str]:
    """Files to lint: the compilation database's TUs under root/src plus
    every header under src/ (headers never appear in a compilation
    database, and most of the locking surface is in headers). Driving the
    TU set from the database means a source the build no longer compiles
    is no longer linted — and one the build adds is linted without a glob
    edit here. Without a database the scan set falls back to the tree
    walk."""
    if compile_db is not None and not os.path.exists(compile_db):
        print(f"error: compilation database not found: {compile_db}",
              file=sys.stderr)
        sys.exit(2)
    src_root = os.path.realpath(os.path.join(root, "src"))
    files: set[str] = set()
    if compile_db is not None:
        with open(compile_db, encoding="utf-8") as f:
            try:
                entries = json.load(f)
            except json.JSONDecodeError as exc:
                print(f"error: bad compilation database {compile_db}: {exc}",
                      file=sys.stderr)
                sys.exit(2)
        for entry in entries:
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(entry.get("directory", ""), path)
            path = os.path.realpath(path)
            if path.startswith(src_root + os.sep):
                files.add(path)
        if not files:
            print(f"error: {compile_db} contains no TUs under {src_root}",
                  file=sys.stderr)
            sys.exit(2)
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(".h") or                     (compile_db is None and name.endswith(SRC_EXTENSIONS)):
                files.add(os.path.realpath(os.path.join(dirpath, name)))
    return sorted(files)


def run_checks(paths: list[str], root: str,
               fixture_mode: bool = False) -> tuple[list[Finding], list[str]]:
    """Returns (active findings, self-test errors). In fixture mode the
    expects are reconciled: every expect must be found, every finding must
    be expected or allowed."""
    findings: list[Finding] = []
    errors: list[str] = []
    for path in paths:
        src = load_source(path, root)
        if fixture_mode:
            # Fixtures declare their rule paths via their directory names;
            # map testdata/<rule>/file.cc onto the rule's real path gate.
            src = remap_fixture(src)
        file_findings: list[Finding] = []
        for rule, check in CHECKS.items():
            file_findings.extend(check(src))
        suppressed, active = [], []
        for f in file_findings:
            if f.rule in src.allows.get(f.line, set()):
                suppressed.append(f)
            else:
                active.append(f)
        if fixture_mode:
            expected = {
                (line, rule)
                for line, rules in src.expects.items()
                for rule in rules
            }
            got = {(f.line, f.rule) for f in active}
            for line, rule in sorted(expected - got):
                errors.append(
                    f"{src.rel}:{line}: expected [{rule}] finding was NOT "
                    "reported"
                )
            for line, rule in sorted(got - expected):
                errors.append(
                    f"{src.rel}:{line}: unexpected [{rule}] finding "
                    "(fixture drift or engine false positive)"
                )
            # Allow-listed lines must stay silent: any suppressed finding
            # is the allow() mechanism working, which the fixture asserts
            # by containing an allow with no matching expect.
        else:
            findings.extend(active)
    return findings, errors


def remap_fixture(src: SourceFile) -> SourceFile:
    """Fixture files live at tools/lint/testdata/<case>.cc; present them
    to the path-gated checks as if they sat in the directory the rule
    watches (encoded in the first line: `// lint-path: src/pqo/x.cc`)."""
    for line in src.raw_lines[:3]:
        m = re.match(r"//\s*lint-path:\s*(\S+)", line)
        if m:
            src.rel = m.group(1)
            return src
    return src


def run_self_test(root: str) -> int:
    testdata = os.path.join(root, "tools", "lint", "testdata")
    if not os.path.isdir(testdata):
        print(f"error: no fixture directory at {testdata}", file=sys.stderr)
        return 2
    paths = []
    for dirpath, _d, filenames in os.walk(testdata):
        for name in sorted(filenames):
            if name.endswith(SRC_EXTENSIONS):
                paths.append(os.path.join(dirpath, name))
    if not paths:
        print("error: fixture directory is empty", file=sys.stderr)
        return 2
    _findings, errors = run_checks(paths, root, fixture_mode=True)
    covered = set()
    for path in paths:
        src = load_source(path, root)
        for rules in src.expects.values():
            covered |= rules
        for rules in src.allows.values():
            covered |= rules
    missing = [r for r in RULES if r not in covered]
    for r in missing:
        errors.append(f"no fixture exercises rule [{r}]")
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"self-test FAILED ({len(errors)} problem(s))", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(paths)} fixture(s), all {len(RULES)} rules "
          "exercised")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("-p", dest="compile_db", default=None,
                    help="path to compile_commands.json (sanity-checked; "
                         "also enables libclang refinement when available)")
    ap.add_argument("--engine", choices=("lexical", "clang", "auto"),
                    default="auto",
                    help="auto uses libclang refinement when importable")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite under tools/lint/testdata/")
    ap.add_argument("--rule", action="append", choices=RULES,
                    help="restrict to specific rule(s)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)

    if args.rule:
        for r in list(CHECKS):
            if r not in args.rule:
                del CHECKS[r]

    paths = collect_files(root, args.compile_db)
    if not paths:
        print(f"error: no sources found under {root}/src", file=sys.stderr)
        return 2
    findings, _ = run_checks(paths, root)

    if args.engine in ("clang", "auto") and args.compile_db:
        cindex = try_clang_engine()
        if cindex is not None:
            findings = refine_with_clang(
                cindex, os.path.dirname(os.path.abspath(args.compile_db)),
                findings, root)
        elif args.engine == "clang":
            print("error: --engine clang requested but clang.cindex is not "
                  "importable", file=sys.stderr)
            return 2

    findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    for f in findings:
        print(f.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"clean: {len(paths)} file(s), {len(CHECKS)} rule(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

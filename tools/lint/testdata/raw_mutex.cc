// lint-path: src/obs/fixture_raw_mutex.cc
// Fixture for the raw-mutex rule: raw std synchronization primitives are
// invisible to the thread-safety analysis and banned outside
// common/thread_annotations.h.
#include <mutex>
#include <shared_mutex>

namespace scrpqo_fixture {

struct Registry {
  std::mutex mu_;  // scrpqo-lint: expect(raw-mutex)
  std::shared_mutex rw_mu_;  // scrpqo-lint: expect(raw-mutex)

  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);  // scrpqo-lint: expect(raw-mutex)
  }

  // Interop with a third-party API that hands us a std::unique_lock;
  // suppressed at the boundary.
  // scrpqo-lint: allow(raw-mutex)
  void Adopt(std::unique_lock<std::mutex> external);
};

// Mentioning the banned names in comments is fine: std::mutex,
// std::condition_variable. The checker reads comment-stripped code.

}  // namespace scrpqo_fixture

// lint-path: src/common/fixture_nodiscard_status.cc
// Fixture for the nodiscard-status rule: error-carrying types in
// src/common/ must be [[nodiscard]].

namespace scrpqo_fixture {

class Status {  // scrpqo-lint: expect(nodiscard-status)
 public:
  bool ok() const { return true; }
};

template <typename T>
// scrpqo-lint: expect(nodiscard-status)
struct Result {
  T value;
};

class [[nodiscard]] StatusGood {
 public:
  bool ok() const { return true; }
};

// Forward declarations are not definitions: clean.
class StatusFwd;

// A deliberate fire-and-forget status type; suppressed.
// scrpqo-lint: allow(nodiscard-status)
struct Status final {
  int code = 0;
};

}  // namespace scrpqo_fixture

// lint-path: src/optimizer/recost_bundle_fixture.cc
// Fixture for the alloc-in-hotpath rule's recost-bundle scope: the SIMD
// bundle evaluation TUs (src/optimizer/recost_bundle*) carry the same
// fenced no-allocation discipline as src/pqo/. Pack/repack (Add, GrowGroup,
// Compact) stay cold and may allocate; the EvalMany/EvalGroup sweep may
// not.
#include <memory>
#include <vector>

namespace scrpqo_fixture {

struct Group {
  int num_active;
};

// Cold repack path: allocation outside the fences is fine.
std::vector<Group> Repack(int n) {
  std::vector<Group> groups;
  groups.resize(static_cast<size_t>(n));
  return groups;
}

double EvalSweep(const std::vector<Group>& groups) {
  double total = 0.0;
  // scrpqo-lint: hot-path begin
  double* lane_costs = new double[4];  // scrpqo-lint: expect(alloc-in-hotpath)
  std::vector<double> spill;  // scrpqo-lint: expect(alloc-in-hotpath)
  for (const Group& g : groups) {
    total += static_cast<double>(g.num_active);
  }
  // Sticky one-time scratch kept for a documented reason:
  // scrpqo-lint: allow(alloc-in-hotpath)
  auto dbg = std::make_unique<double[]>(4);
  total += dbg[0] + lane_costs[0] + static_cast<double>(spill.size());
  delete[] lane_costs;
  // scrpqo-lint: hot-path end
  return total;
}

}  // namespace scrpqo_fixture

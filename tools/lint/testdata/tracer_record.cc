// lint-path: src/pqo/fixture_tracer_record.cc
// Fixture for the tracer-record-outside-obs rule: only the obs layer may
// call Tracer::Record directly; emitters use EmitDecisionEvent.

namespace scrpqo_fixture {

struct Event {};
struct Tracer {
  void Record(Event);
};
struct Hooks {
  Tracer* tracer = nullptr;
};

void EmitDecisionEvent(Tracer*, Event);

struct Emitter {
  Hooks obs_;
  Tracer* alert_tracer_ = nullptr;

  void DirectMember(Event e) {
    obs_.tracer->Record(e);  // scrpqo-lint: expect(tracer-record-outside-obs)
  }

  void DirectLocal(Event e) {
    Tracer* tracer = alert_tracer_;
    tracer->Record(e);  // scrpqo-lint: expect(tracer-record-outside-obs)
  }

  void ThroughFunnel(Event e) {
    // The sanctioned path: clean.
    EmitDecisionEvent(obs_.tracer, e);
  }

  void TestOnlyShim(Event e) {
    // Fault-injection shim that must bypass the funnel; suppressed.
    // scrpqo-lint: allow(tracer-record-outside-obs)
    obs_.tracer->Record(e);
  }
};

}  // namespace scrpqo_fixture

// lint-path: src/pqo/fixture_atomic_order.cc
// Fixture for the atomic-order rule: default-seq_cst atomic operations in
// the serving layers must name their memory order.
#include <atomic>

namespace scrpqo_fixture {

struct Stats {
  std::atomic<long> hits{0};
  std::atomic<bool> enabled{false};
};

long ReadBare(Stats& s) {
  return s.hits.load();  // scrpqo-lint: expect(atomic-order)
}

void WriteBare(Stats& s) {
  s.enabled.store(true);  // scrpqo-lint: expect(atomic-order)
}

long ReadExplicit(Stats& s) {
  // Explicit order: clean.
  return s.hits.load(std::memory_order_relaxed);
}

void MultiLineExplicit(Stats& s) {
  // The order is on the continuation line; the checker must scan the full
  // argument list before deciding.
  s.hits.store(7,
               std::memory_order_relaxed);
}

long SeqCstOnPurpose(Stats& s) {
  // Deliberate seq_cst as a publication fence; suppressed with a reason.
  // scrpqo-lint: allow(atomic-order)
  return s.hits.fetch_add(1);
}

}  // namespace scrpqo_fixture

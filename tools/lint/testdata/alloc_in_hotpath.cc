// lint-path: src/pqo/fixture_alloc_in_hotpath.cc
// Fixture for the alloc-in-hotpath rule: no heap allocation between
// `hot-path begin` and `hot-path end` markers in src/pqo/.
#include <memory>
#include <string>
#include <vector>

namespace scrpqo_fixture {

struct Plan {
  int id;
};

// Outside any hot region: allocation is fine, the rule must stay silent.
std::vector<int> ColdPath() {
  std::vector<int> out;
  auto p = std::make_unique<Plan>();
  out.push_back(p->id);
  return out;
}

int HotReusePath(int n) {
  // scrpqo-lint: hot-path begin
  int* raw = new int[8];  // scrpqo-lint: expect(alloc-in-hotpath)
  auto owned = std::make_unique<Plan>();  // scrpqo-lint: expect(alloc-in-hotpath)
  auto shared = std::make_shared<Plan>();  // scrpqo-lint: expect(alloc-in-hotpath)
  std::vector<double> costs;  // scrpqo-lint: expect(alloc-in-hotpath)
  std::string label;  // scrpqo-lint: expect(alloc-in-hotpath)

  // Identifiers containing "new" are not the new operator.
  double new_cost = 1.0;
  int renewed = n;

  // A comment mentioning std::vector<int> v; or new Plan is not code.

  // Justified exception (cold sub-branch kept for clarity):
  // scrpqo-lint: allow(alloc-in-hotpath)
  std::vector<int> debug_ids;
  debug_ids.push_back(n);

  (void)raw;
  (void)owned;
  (void)shared;
  (void)costs;
  (void)new_cost;
  (void)renewed;
  return static_cast<int>(debug_ids.size());
  // scrpqo-lint: hot-path end
}

// After the end marker the rule is inactive again.
std::vector<int> ColdAgain() {
  std::vector<int> out;
  out.push_back(1);
  return out;
}

}  // namespace scrpqo_fixture

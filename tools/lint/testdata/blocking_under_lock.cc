// lint-path: src/pqo/fixture_blocking_under_lock.cc
// Fixture for the blocking-under-lock rule: no optimizer / sink / I-O call
// while a Mutex or SharedMutex scope is active.

namespace scrpqo_fixture {

struct Mutex {
  void Lock();
  void Unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex&);
};
struct Engine {
  int* Optimize(int);
};
struct Sink {
  void Consume(int);
};

struct Cache {
  Mutex mu_;
  Engine* engine_;
  Sink* sink_;

  void OptimizeUnderScopedLock(int wi) {
    MutexLock lock(mu_);
    engine_->Optimize(wi);  // scrpqo-lint: expect(blocking-under-lock)
  }

  void FanOutUnderManualLock(int batch) {
    mu_.Lock();
    sink_->Consume(batch);  // scrpqo-lint: expect(blocking-under-lock)
    mu_.Unlock();
  }

  void SurvivesNestedScope(int wi) {
    MutexLock lock(mu_);
    if (wi > 0) {
      // A nested block closing must NOT release the guard...
    }
    engine_->Optimize(wi);  // scrpqo-lint: expect(blocking-under-lock)
  }

  void OptimizeOutsideLock(int wi) {
    {
      MutexLock lock(mu_);
      // bookkeeping only
    }
    engine_->Optimize(wi);  // clean: the scope closed above
  }

  void ColdPathByDesign(int wi) {
    MutexLock lock(mu_);
    // Shutdown path, never concurrent with serving; suppressed.
    // scrpqo-lint: allow(blocking-under-lock)
    engine_->Optimize(wi);
  }
};

}  // namespace scrpqo_fixture

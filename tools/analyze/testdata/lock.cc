// Fixture: SCRPQO_LOCK_BOUNDED — acquiring a capability outside the
// declared bound (even transitively) is a finding; the sanctioned
// escape on the cold-side callee stays silent.

namespace fx {

class Cache {
 public:
  SCRPQO_LOCK_BOUNDED(cache_mu_)
  int Read() {
    ReaderMutexLock lock(cache_mu_);
    return Touch();
  }

  int Touch() {
    MutexLock lock(other_mu_);  // effects-expect(lock)
    return 1;
  }

  SCRPQO_LOCK_BOUNDED(cache_mu_)
  int ReadSanctioned() {
    ReaderMutexLock lock(cache_mu_);
    return TouchAllowed();
  }

  int TouchAllowed()
      SCRPQO_EFFECT_ALLOW(lock, "fixture: maintenance path may take the eviction lock") {
    MutexLock lock(other_mu_);
    return 2;
  }

 private:
  SharedMutex cache_mu_;
  Mutex other_mu_;
};

}  // namespace fx

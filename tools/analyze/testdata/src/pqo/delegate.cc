// Fixture: lint/analyzer dedupe — an allocation on a line inside a
// `// scrpqo-lint: hot-path begin/end` fence in a lint-covered path is
// OWNED BY scrpqo_lint's alloc-in-hotpath rule; the analyzer records it
// under `delegated_to_lint` and stays silent, so every allocation
// finding has exactly one reporting tool.

namespace fx {

struct Probe {
  void Fill() {
    // scrpqo-lint: hot-path begin
    buf_ = new char[16];
    // scrpqo-lint: hot-path end
  }

  char* buf_;
};

SCRPQO_NOALLOC
void HotDelegated(Probe& p) {
  p.Fill();
}

}  // namespace fx

// Fixture: SCRPQO_NONBLOCKING — a sleep reachable through a callee is a
// finding; the sanctioned degraded-path escape stays silent.

namespace fx {

struct Worker {
  void Nap() {
    std::this_thread::sleep_for(backoff_);  // effects-expect(block)
  }

  void NapAllowed()
      SCRPQO_EFFECT_ALLOW(block, "fixture: degraded serving path sleeps by design") {
    std::this_thread::sleep_for(backoff_);
  }

  int backoff_;
};

SCRPQO_NONBLOCKING
void Serve(Worker& w) {
  w.Nap();
}

SCRPQO_NONBLOCKING
void ServeAllowed(Worker& w) {
  w.NapAllowed();
}

}  // namespace fx

// Fixture: SCRPQO_FP_DETERMINISTIC — a raw libm transcendental outside
// src/common/simd.h reachable from the root is a finding; the sanctioned
// escape stays silent.

namespace fx {

double Transcend(double x) {
  return std::exp(x);  // effects-expect(fp)
}

double TranscendAllowed(double x)
    SCRPQO_EFFECT_ALLOW(fp, "fixture: offline report path, never compared across tiers") {
  return std::exp(x);
}

SCRPQO_FP_DETERMINISTIC
double Cost(double x) {
  return Transcend(x);
}

SCRPQO_FP_DETERMINISTIC
double CostAllowed(double x) {
  return TranscendAllowed(x);
}

}  // namespace fx

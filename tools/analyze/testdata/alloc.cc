// Fixture: SCRPQO_NOALLOC — one seeded transitive violation (the root
// never allocates directly; its callee does) and one sanctioned
// function-scope SCRPQO_EFFECT_ALLOW(alloc) that must stay silent.
// Fixtures are parsed, never compiled, so the effect macros are spelled
// bare (the analyzer greps for the tokens, mirroring tools/lint/testdata).

namespace fx {

struct Helper {
  void Grow() {
    data_ = new double[8];  // effects-expect(alloc)
  }

  void Bump()
      SCRPQO_EFFECT_ALLOW(alloc, "fixture: amortized chunk growth, pinned by a watermark test") {
    slots_ = new int[4];
  }

  double* data_;
  int* slots_;
};

SCRPQO_NOALLOC
void HotAlloc(Helper& h) {
  h.Grow();
}

SCRPQO_NOALLOC
void HotAllowed(Helper& h) {
  h.Bump();
}

}  // namespace fx

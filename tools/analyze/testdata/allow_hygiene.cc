// Fixture: escape hygiene — an SCRPQO_EFFECT_ALLOW with an empty
// justification, or naming an unknown rule, is itself a gating finding.

namespace fx {

int* ColdUnjustified()
    SCRPQO_EFFECT_ALLOW(alloc, "") {  // effects-expect(allow)
  return new int;
}

int* ColdTypoRule()
    SCRPQO_EFFECT_ALLOW(allocs, "typo in the rule name") {  // effects-expect(allow)
  return new int;
}

}  // namespace fx

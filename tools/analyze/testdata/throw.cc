// Fixture: SCRPQO_NOTHROW — a throw expression reachable through a
// callee is a finding; the sanctioned escape stays silent.

namespace fx {

int Inner(const char* s) {
  if (!s) throw 1;  // effects-expect(throw)
  return 0;
}

int InnerAllowed(const char* s)
    SCRPQO_EFFECT_ALLOW(throw, "fixture: cold validation path may throw") {
  if (!s) throw 2;
  return 0;
}

SCRPQO_NOTHROW
int Parse(const char* s) {
  return Inner(s);
}

SCRPQO_NOTHROW
int ParseAllowed(const char* s) {
  return InnerAllowed(s);
}

}  // namespace fx

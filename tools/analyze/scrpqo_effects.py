#!/usr/bin/env python3
"""Whole-program effect analyzer for the scrpqo tree.

Where tools/lint/scrpqo_lint.py enforces *per-line lexical* invariants,
this tool proves *transitive* contracts over the real project call graph:
it extracts every function definition under src/, computes a direct
effect lattice per function, propagates effects along call edges, and
verifies the contracts declared with the src/common/effects.h macros —

  SCRPQO_NOALLOC           rule `alloc`  no reachable heap allocation
  SCRPQO_NONBLOCKING       rule `block`  no reachable sleep/IO/condvar wait
  SCRPQO_NOTHROW           rule `throw`  no reachable throw (aborts excluded)
  SCRPQO_FP_DETERMINISTIC  rule `fp`     no reachable fenv/rand/raw-libm
                                         transcendental or raw intrinsic
                                         outside the sanctioned SIMD TUs
  SCRPQO_LOCK_BOUNDED(...) rule `lock`   reachable lock acquisitions limited
                                         to the named capabilities
  SCRPQO_HOT               registry tag: listed in the findings JSON;
                                         warns when carrying no contract

Escapes are `SCRPQO_EFFECT_ALLOW(rule, "justification")` markers. The
justification must be a non-empty string literal — an empty one is itself
a gating finding (rule `allow`), so no escape is ever silent. A marker on
a function's signature sanctions the rule for the whole function and
stops traversal into its callees; a marker on its own line covers the
next non-blank line; trailing a statement it covers that line.

Every violation is reported with a shortest call-chain witness from the
annotated root to the offending effect site, plus machine-readable JSON
(--json) for the CI artifact.

Cross-checks beyond the contracts themselves:
  - every SCRPQO_LOCK_BOUNDED capability must name a declared
    scrpqo::Mutex/SharedMutex member (typo guard against the PR 6 TSA map);
  - the TSA ACQUIRED_BEFORE edges plus the DESIGN.md §4g lock-order DAG
    must be mutually consistent (their union acyclic);
  - compile commands are scanned for -ffast-math / -funsafe-math
    (non-reproducible FP at the flag level).

Division of labour with the lint (dedupe contract): allocation sites on
lines inside `// scrpqo-lint: hot-path begin/end` fences are REPORTED BY
THE LINT ONLY — this tool records them under `delegated_to_lint` in the
JSON and keeps traversing through them, so each allocation finding is
owned by exactly one tool while transitive coverage stays complete.

Engines: the gating engine is pure-lexical (stdlib only) so the check
runs in any build environment. When the libclang Python bindings are
importable, `--engine clang` cross-checks the lexical call graph against
the AST (missing-edge detection); the lexical engine is the one CI
gates on, mirroring the lint's arrangement.

Usage:
  scrpqo_effects.py --root <repo> [-p build/compile_commands.json]
                    [--json out.json] [--engine lexical|clang|auto]
  scrpqo_effects.py --self-test
Exit status: 0 = contracts proven, 1 = findings, 2 = usage/config error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import deque
from dataclasses import dataclass, field

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "lint"))
try:
    from scrpqo_lint import (  # noqa: E402
        ALLOC_HOTPATH_SCOPE,
        HOT_BEGIN_RE,
        HOT_END_RE,
        _strip_comments_and_strings,
    )
except ImportError as exc:  # pragma: no cover - repo layout is fixed
    sys.stderr.write(f"error: cannot import tools/lint/scrpqo_lint.py: {exc}\n")
    sys.exit(2)

RULES = ("alloc", "lock", "block", "throw", "fp")

CONTRACT_FOR_RULE = {
    "alloc": "SCRPQO_NOALLOC",
    "block": "SCRPQO_NONBLOCKING",
    "throw": "SCRPQO_NOTHROW",
    "fp": "SCRPQO_FP_DETERMINISTIC",
    "lock": "SCRPQO_LOCK_BOUNDED",
}

ALLOW_RE = re.compile(r"\bSCRPQO_EFFECT_ALLOW\s*\(\s*([a-z]+)\s*,")
EXPECT_RE = re.compile(r"//\s*effects-expect\(([a-z-]+)\)")

# ---------------------------------------------------------------------------
# Effect models (what the std library / platform does).
# ---------------------------------------------------------------------------

# Owning std types whose growth/mutating methods allocate.
STD_CONTAINERS = {
    "vector", "deque", "list", "map", "set", "multimap", "multiset",
    "unordered_map", "unordered_set", "unordered_multimap", "string",
    "basic_string", "queue", "priority_queue", "stack", "function",
    "ostringstream", "stringstream", "istringstream", "stringbuf",
}
ALLOC_METHODS = {
    "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
    "insert", "insert_or_assign", "try_emplace", "resize", "reserve",
    "assign", "append", "push", "str",
}
STD_ALLOC_FUNCS = {
    "make_unique", "make_shared", "to_string", "stable_sort",
    "inplace_merge", "malloc", "calloc", "realloc", "strdup",
    "aligned_alloc",
}
STD_BLOCK_FUNCS = {
    "sleep_for", "sleep_until", "sleep", "usleep", "nanosleep",
    "fopen", "fread", "fwrite", "fclose", "fflush", "fsync", "fdatasync",
    "open", "read", "write", "pread", "pwrite", "getline",
    "printf", "fprintf", "puts", "fputs", "system", "popen",
    "accept", "recv", "recvfrom", "send", "sendto", "connect", "listen",
    "poll", "select", "epoll_wait",
}
BLOCK_METHODS = {"Wait", "WaitFor", "wait", "wait_for", "wait_until", "join"}
STD_THROW_FUNCS = {
    "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold",
    "at", "value",
}
FP_FENV_FUNCS = {
    "fesetround", "fegetround", "feclearexcept", "feraiseexcept",
    "fetestexcept", "fegetenv", "fesetenv", "feholdexcept", "feupdateenv",
}
FP_RAND_FUNCS = {"rand", "srand", "random", "drand48", "lrand48"}
# Correctly-rounded IEEE ops (sqrt, fabs, fma, ...) are reproducible;
# these are the libm calls whose results may differ between libms /
# vector paths, so they are only allowed inside src/common/simd.h where
# every dispatch tier funnels through one definition.
FP_LIBM_TRANSCENDENTALS = {
    "exp", "exp2", "expm1", "log", "log2", "log10", "log1p", "pow",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "sinh", "cosh", "tanh", "erf", "erfc", "tgamma", "lgamma", "cbrt",
}
INTRINSIC_RE = re.compile(r"\b(?:_mm\d*_\w+|vmulq_\w+|vaddq_\w+|vfmaq_\w+|"
                          r"vld1q_\w+|vst1q_\w+|vmaxq_\w+|vbslq_\w+)\b")
# TUs sanctioned to contain raw intrinsics (runtime dispatch funnels).
FP_INTRINSIC_SANCTIONED = (
    "src/common/simd.h",
    "src/optimizer/recost_bundle_avx2.cc",
    "src/optimizer/recost_bundle_avx512.cc",
)
# Files sanctioned to call raw libm transcendentals (the Vec* wrappers).
FP_LIBM_SANCTIONED = ("src/common/simd.h",)

GUARD_TYPES = {"MutexLock", "ReaderMutexLock", "WriterMutexLock", "ShardLock"}
MUTEX_TYPES = {"Mutex", "SharedMutex"}
LOCK_METHODS = {"Lock", "LockShared"}

# Macro invocations whose argument list is only evaluated on an abort
# path (the check fails -> [[noreturn]] CheckFailed). Effects inside do
# not count against contracts.
ABORT_MACROS = {"SCRPQO_CHECK", "SCRPQO_DCHECK", "assert", "static_assert"}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "else", "do", "case",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
}

# Tokens that may appear inside an explicit template-argument list. The
# angle scan in _skip_template_args rejects anything else, so ordinary
# less-than comparisons (`a < b`) never parse as template arguments.
TEMPLATE_ARG_TOKENS = {"::", ",", "*", "&", "[", "]", "<", ">"}
NOT_A_TYPE = {
    "return", "using", "typedef", "friend", "delete", "goto", "break",
    "continue", "case", "public", "private", "protected", "class",
    "struct", "enum", "if", "else", "throw", "new", "const", "template",
    "typename", "operator", "namespace", "static", "inline", "constexpr",
    "virtual", "explicit", "extern", "auto", "void", "co_return",
}
SIG_QUALIFIERS = {
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "try", "&", "&&",
}

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*|::|->|\d[\w.+-]*"
    r"|[{}()\[\];:,<>=&|*~!+\-/%^?.#\\]"
)
ALLCAPS_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


@dataclass
class Token:
    txt: str
    line: int  # 1-based


@dataclass
class Effect:
    rule: str
    line: int
    detail: str
    cap: str | None = None  # lock rule: acquired capability


@dataclass
class CallSite:
    line: int
    # Resolution inputs:
    name: str
    quals: tuple[str, ...] = ()  # explicit A::B:: path
    recv_type: str | None = None  # resolved receiver class, if any
    bare: bool = False  # unqualified, no receiver


@dataclass
class Func:
    fid: int
    qname: str
    name: str
    cls: str | None
    rel: str
    sig_line: int
    body_open: int
    body_close: int
    sig_text: str
    contracts: set[str] = field(default_factory=set)
    lock_caps: list[str] | None = None
    hot: bool = False
    noreturn: bool = False
    fn_allows: dict[str, int] = field(default_factory=dict)  # rule -> line
    effects: list[Effect] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    edges: list[tuple[int, int]] = field(default_factory=list)  # (fid, line)


@dataclass
class AllowMarker:
    rel: str
    line: int
    rule: str
    justification: str
    scope: str  # "function" | "line"
    target_lines: set[int] = field(default_factory=set)
    owner: int | None = None  # fid for function-scope markers
    used: bool = False


@dataclass
class Finding:
    rule: str
    rel: str
    line: int
    message: str
    root: str | None = None
    function: str | None = None
    witness: list[str] = field(default_factory=list)

    def format(self) -> str:
        out = f"{self.rel}:{self.line}: [{self.rule}] {self.message}"
        for step in self.witness:
            out += f"\n    {step}"
        return out


@dataclass
class SourceFile:
    rel: str
    raw_lines: list[str]
    code_lines: list[str]
    hot_fences: list[tuple[int, int]]  # inclusive 1-based line ranges
    expects: dict[int, set[str]]


# ---------------------------------------------------------------------------
# File loading & collection.
# ---------------------------------------------------------------------------


def load_file(path: str, root: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    code_lines = _strip_comments_and_strings(text).splitlines()
    while len(code_lines) < len(raw_lines):
        code_lines.append("")
    fences: list[tuple[int, int]] = []
    start = None
    for idx, raw in enumerate(raw_lines, start=1):
        if HOT_BEGIN_RE.search(raw):
            start = idx
        elif HOT_END_RE.search(raw) and start is not None:
            fences.append((start, idx))
            start = None
    if start is not None:
        fences.append((start, len(raw_lines)))
    expects: dict[int, set[str]] = {}
    for idx, raw in enumerate(raw_lines, start=1):
        for m in EXPECT_RE.finditer(raw):
            target = idx + 1 if raw.split("//", 1)[0].strip() == "" else idx
            expects.setdefault(target, set()).add(m.group(1))
    return SourceFile(os.path.relpath(path, root), raw_lines, code_lines,
                      fences, expects)


def collect_files(root: str, compile_db: str | None,
                  subdir: str = "src") -> list[str]:
    """File set = compile_commands TUs under root/subdir plus every header
    under root/subdir (headers are not TUs). Falls back to a plain walk
    when no database is available."""
    files: set[str] = set()
    base = os.path.join(root, subdir)
    if compile_db and os.path.exists(compile_db):
        with open(compile_db, encoding="utf-8") as f:
            try:
                entries = json.load(f)
            except json.JSONDecodeError as exc:
                sys.stderr.write(f"error: bad compile db {compile_db}: {exc}\n")
                sys.exit(2)
        for entry in entries:
            p = entry.get("file", "")
            if not os.path.isabs(p):
                p = os.path.normpath(os.path.join(entry.get("directory", ""), p))
            p = os.path.realpath(p)
            if p.startswith(os.path.realpath(base) + os.sep):
                files.add(p)
    for dirpath, _, names in os.walk(base):
        for name in names:
            if name.endswith(".h"):
                files.add(os.path.realpath(os.path.join(dirpath, name)))
            elif name.endswith(".cc") and not (compile_db and files):
                files.add(os.path.realpath(os.path.join(dirpath, name)))
    # A db that exists but matched nothing under src/ would silently
    # analyze headers only; treat as a config error.
    if compile_db and os.path.exists(compile_db):
        if not any(p.endswith(".cc") for p in files):
            sys.stderr.write(
                f"error: {compile_db} contains no TUs under {base}\n")
            sys.exit(2)
    return sorted(files)


def scan_fast_math(compile_db: str | None) -> list[str]:
    if not compile_db or not os.path.exists(compile_db):
        return []
    with open(compile_db, encoding="utf-8") as f:
        try:
            entries = json.load(f)
        except json.JSONDecodeError:
            return []
    bad = []
    for entry in entries:
        cmd = entry.get("command") or " ".join(entry.get("arguments", []))
        if "-ffast-math" in cmd or "-funsafe-math-optimizations" in cmd:
            bad.append(entry.get("file", "?"))
    return bad


# ---------------------------------------------------------------------------
# Tokenizing + function extraction (the lexical call-graph engine).
# ---------------------------------------------------------------------------


def tokenize(code_lines: list[str]) -> list[Token]:
    toks: list[Token] = []
    for lineno, line in enumerate(code_lines, start=1):
        for m in TOKEN_RE.finditer(line):
            toks.append(Token(m.group(0), lineno))
    return toks


def _match_back(toks: list[Token], close: int) -> int:
    """Index of the '(' matching the ')' at `close` (same-token-list)."""
    depth = 0
    for j in range(close, -1, -1):
        t = toks[j].txt
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                return j
    return -1


def _match_fwd(toks: list[Token], open_: int, op: str = "{",
               cl: str = "}") -> int:
    depth = 0
    for j in range(open_, len(toks)):
        t = toks[j].txt
        if t == op:
            depth += 1
        elif t == cl:
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1


def _skip_template_args(toks: list[Token], open_: int, end: int) -> int | None:
    """Balanced scan over `<...>` starting at the '<' at `open_`. Returns
    the index of a '(' immediately after the matching '>' — i.e. the token
    where an explicit-template-argument call's argument list begins — or
    None when the brackets don't close within a short window, a non-type
    token appears inside, or no call parenthesis follows. Conservative on
    purpose: a false negative only loses one call edge, while a false
    positive would invent one from a `<` comparison."""
    depth = 0
    limit = min(end, open_ + 64)
    for k in range(open_, limit):
        t = toks[k].txt
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                if k + 1 < end and toks[k + 1].txt == "(":
                    return k + 1
                return None
        elif t in TEMPLATE_ARG_TOKENS:
            continue
        elif not re.match(r"[A-Za-z_]\w*$|\d[\w.+-]*$", t):
            return None
    return None


def _stmt_start(toks: list[Token], brace: int) -> int:
    """First token index of the statement owning the '{' at `brace`.
    Walks back to the previous ';' / '{' / '}' at paren depth 0."""
    depth = 0
    j = brace - 1
    while j >= 0:
        t = toks[j].txt
        if t in (")", "]"):
            depth += 1
        elif t in ("(", "["):
            depth -= 1
            if depth < 0:
                return j + 1
        elif depth == 0 and t in (";", "{", "}"):
            return j + 1
        j -= 1
    return 0


def _classify_function(toks: list[Token], stmt: int,
                       brace: int) -> tuple[str, tuple[str, ...], int] | None:
    """If tokens[stmt:brace] look like a function definition signature,
    return (name, explicit_qual_path, param_open_index); else None."""
    k = brace - 1
    while k >= stmt:
        t = toks[k].txt
        if t in SIG_QUALIFIERS or ALLCAPS_RE.match(t) or t in (":", ","):
            k -= 1
            continue
        if t == ">":  # e.g. `-> ArenaVec<T>` trailing return; skip group
            k -= 1
            continue
        if t == ")":
            m = _match_back(toks, k)
            if m <= stmt:
                return None
            w = toks[m - 1].txt
            if w == "noexcept" or ALLCAPS_RE.match(w):
                k = m - 2  # attribute/noexcept group: skip it + keyword
                continue
            if re.match(r"[A-Za-z_]\w*$", w) or w == "]":
                if w == "]":
                    return None  # lambda introducer
                # Possible ctor-init member `: name(args)` — check left.
                left = toks[m - 2].txt if m >= 2 else ""
                if left in (":", ","):
                    k = m - 3
                    continue
                if left == "~":
                    return None  # destructor: no contracts, skip indexing
                # Found the parameter list; build the qualified name.
                name = w
                quals: list[str] = []
                j = m - 2
                while j >= stmt + 1 and toks[j].txt == "::":
                    prev = toks[j - 1].txt
                    if prev == ">":
                        # Templated qualifier Foo<T>::name — take base id.
                        depth2 = 0
                        jj = j - 1
                        while jj >= stmt:
                            if toks[jj].txt == ">":
                                depth2 += 1
                            elif toks[jj].txt == "<":
                                depth2 -= 1
                                if depth2 == 0:
                                    break
                            jj -= 1
                        prev = toks[jj - 1].txt if jj - 1 >= stmt else ""
                        j = jj - 2
                    else:
                        j -= 2
                    if re.match(r"[A-Za-z_]\w*$", prev):
                        quals.insert(0, prev)
                    else:
                        break
                if name in CONTROL_KEYWORDS or name in NOT_A_TYPE:
                    return None
                # Reject calls used as conditions: `if (...) {` handled by
                # CONTROL check; a genuine definition has type tokens or
                # qualifiers before the name (ctors have the class name).
                return name, tuple(quals), m
            if w == ">":
                # operator> etc or templated call; look for 'operator'.
                return None
            if w == "operator" or (m >= 2 and toks[m - 2].txt == "operator"):
                return None  # operators carry no contracts here
            return None
        # Anything else before '{' that isn't a qualifier: not a function.
        return None
    return None


def _stmt_has(toks: list[Token], stmt: int, brace: int, kws: set[str]) -> str | None:
    for j in range(stmt, brace):
        if toks[j].txt in kws:
            return toks[j].txt
    return None


@dataclass
class ClassScope:
    name: str
    members: dict[str, str] = field(default_factory=dict)


MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+|thread_local\s+)*"
    r"((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*(?:<[^;(){}=]*>)?)"
    r"\s*(?:const\s*)?[*&]*\s*"
    r"([A-Za-z_]\w*)\s*"
    r"(?:[A-Z][A-Z0-9_]*\s*\([^;]*\)\s*)?"  # trailing TSA macro
    r"(?:=[^;]*|\{[^;]*\})?;")

LOCAL_CTOR_RE = re.compile(
    r"^\s*((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*(?:<[^;(){}=]*>)?)"
    r"\s*[*&]*\s*([A-Za-z_]\w*)\s*\(")


def normalize_type(t: str) -> str:
    t = t.strip()
    for wrapper in ("std::unique_ptr", "std::shared_ptr", "std::optional",
                    "std::atomic"):
        if t.startswith(wrapper + "<"):
            t = t[len(wrapper) + 1:].rstrip(">").strip()
    t = t.replace("const ", "").strip(" *&")
    if t.startswith("std::"):
        base = t[5:].split("<", 1)[0]
        return "std::" + base
    return t.split("<", 1)[0]


def parse_decl_types(lines: list[str]) -> dict[str, str]:
    """name -> normalized type for declarations found in `lines`."""
    out: dict[str, str] = {}
    for line in lines:
        m = MEMBER_DECL_RE.match(line) or LOCAL_CTOR_RE.match(line)
        if not m:
            continue
        ty, name = m.group(1), m.group(2)
        if ty in NOT_A_TYPE or ty in CONTROL_KEYWORDS:
            continue
        if name in NOT_A_TYPE:
            continue
        out[name] = normalize_type(ty)
    return out


def parse_param_types(sig: str) -> dict[str, str]:
    """name -> normalized type for a raw signature's parameter list."""
    m = re.search(r"\(", sig)
    if not m:
        return {}
    depth = 0
    start = m.start()
    end = len(sig)
    for j in range(start, len(sig)):
        if sig[j] == "(":
            depth += 1
        elif sig[j] == ")":
            depth -= 1
            if depth == 0:
                end = j
                break
    inner = sig[start + 1:end]
    out: dict[str, str] = {}
    depth = 0
    arg = ""
    args = []
    for ch in inner:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            args.append(arg)
            arg = ""
        else:
            arg += ch
    if arg.strip():
        args.append(arg)
    for a in args:
        a = a.split("=", 1)[0].strip()
        mm = re.match(
            r"(?:const\s+)?((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*(?:<[^()]*>)?)"
            r"\s*(?:const\s*)?[*&]*\s*([A-Za-z_]\w*)\s*$", a)
        if mm and mm.group(1) not in NOT_A_TYPE:
            out[mm.group(2)] = normalize_type(mm.group(1))
    return out


class Model:
    """The extracted whole-program model."""

    def __init__(self) -> None:
        self.funcs: list[Func] = []
        self.files: dict[str, SourceFile] = {}
        self.members: dict[str, dict[str, str]] = {}  # class -> name -> type
        self.mutex_members: set[str] = set()  # declared capability names
        self.order_edges: set[tuple[str, str]] = set()  # ACQUIRED_BEFORE
        self.allows: list[AllowMarker] = []
        self.by_qname: dict[str, int] = {}
        self.by_method: dict[tuple[str, str], int] = {}
        self.by_name: dict[str, list[int]] = {}
        self.unresolved_calls: int = 0
        self.resolved_calls: int = 0
        self.delegated: list[dict] = []
        self.warnings: list[str] = []


ACQ_RE = re.compile(
    r"\b(?:Mutex|SharedMutex)\s+(\w+)\s+ACQUIRED_(BEFORE|AFTER)\(([^)]*)\)")
MUTEX_DECL_RE = re.compile(
    r"\b(?:mutable\s+)?(?:Mutex|SharedMutex)\s+(\w+)\s*[;A-Z]")


def extract_file(model: Model, src: SourceFile) -> None:
    toks = tokenize(src.code_lines)
    model.files[src.rel] = src

    # Mutex capability registry + ACQUIRED_BEFORE edges (whole file).
    for line in src.code_lines:
        for m in MUTEX_DECL_RE.finditer(line):
            model.mutex_members.add(m.group(1))
        for m in ACQ_RE.finditer(line):
            name, kind, targets = m.group(1), m.group(2), m.group(3)
            for target in re.findall(r"[A-Za-z_][\w]*", targets):
                if kind == "BEFORE":
                    model.order_edges.add((name, target))
                else:
                    model.order_edges.add((target, name))

    # Scope walk: classes (member tables) + function definitions.
    scope: list[tuple[str, object]] = []  # (kind, payload)
    i = 0
    n = len(toks)
    func_spans: list[tuple[int, int, Func]] = []  # token spans for pass 2
    while i < n:
        t = toks[i].txt
        if t == "{":
            stmt = _stmt_start(toks, i)
            kw = _stmt_has(toks, stmt, i, {"namespace", "class", "struct",
                                           "union", "enum"})
            fn = _classify_function(toks, stmt, i)
            if fn is not None and kw is None:
                name, quals, _ = fn
                class_path = [p for k, p in
                              ((kk, pp.name if isinstance(pp, ClassScope)
                                else pp) for kk, pp in scope)
                              if k in ("namespace", "class") and p]
                qname = "::".join([*class_path, *quals, name])
                cls = quals[-1] if quals else next(
                    (s[1].name for s in reversed(scope) if s[0] == "class"),
                    None)
                sig_line = toks[stmt].line
                raw_sig = "\n".join(
                    src.raw_lines[sig_line - 1:toks[i].line])
                f = Func(
                    fid=len(model.funcs), qname=qname, name=name, cls=cls,
                    rel=src.rel, sig_line=sig_line, body_open=toks[i].line,
                    body_close=0, sig_text=raw_sig)
                close = _match_fwd(toks, i)
                f.body_close = toks[close].line
                model.funcs.append(f)
                func_spans.append((i + 1, close, f))
                scope.append(("function", f))
            elif kw == "namespace":
                nm = ""
                for j in range(stmt, i):
                    if toks[j].txt == "namespace" and j + 1 < i and \
                            re.match(r"[A-Za-z_]\w*$", toks[j + 1].txt):
                        nm = toks[j + 1].txt
                scope.append(("namespace", nm))
            elif kw in ("class", "struct", "union"):
                nm = ""
                for j in range(stmt, i):
                    if toks[j].txt == kw:
                        jj = j + 1
                        while jj < i and (ALLCAPS_RE.match(toks[jj].txt) or
                                          toks[jj].txt in ("final",)):
                            jj += 1
                        if jj < i and re.match(r"[A-Za-z_]\w*$", toks[jj].txt):
                            nm = toks[jj].txt
                        break
                scope.append(("class", ClassScope(nm)))
            else:
                scope.append(("block", None))
        elif t == "}":
            if scope:
                kind, payload = scope.pop()
                if kind == "class" and isinstance(payload, ClassScope) \
                        and payload.name:
                    model.members.setdefault(payload.name, {}).update(
                        payload.members)
        i += 1

    # Member tables: per class scope, parse decl lines lying directly in
    # the class body (not inside nested function bodies).
    _fill_member_tables(model, src, toks)

    # Contracts + allows per function, then body effects/calls.
    for span_start, span_end, f in func_spans:
        _parse_contracts(model, src, f)
        _extract_body(model, src, toks, span_start, span_end, f)

    # File-scope allows not attached to any function signature: line scope.
    _collect_line_allows(model, src)


def _fill_member_tables(model: Model, src: SourceFile, toks: list[Token]) -> None:
    # Re-walk scopes cheaply: record line ranges of class bodies and of
    # function bodies; member decls = class-body lines minus function-body
    # lines.
    class_ranges: list[tuple[str, int, int]] = []
    func_ranges: list[tuple[int, int]] = []
    scope: list[tuple[str, str, int]] = []
    i = 0
    while i < len(toks):
        t = toks[i].txt
        if t == "{":
            stmt = _stmt_start(toks, i)
            kw = _stmt_has(toks, stmt, i, {"namespace", "class", "struct",
                                           "union", "enum"})
            fn = _classify_function(toks, stmt, i)
            if fn is not None and kw is None:
                scope.append(("function", "", toks[i].line))
            elif kw in ("class", "struct", "union"):
                nm = ""
                for j in range(stmt, i):
                    if toks[j].txt == kw and j + 1 < i and \
                            re.match(r"[A-Za-z_]\w*$", toks[j + 1].txt):
                        nm = toks[j + 1].txt
                        break
                scope.append(("class", nm, toks[i].line))
            else:
                scope.append(("block", "", toks[i].line))
        elif t == "}":
            if scope:
                kind, nm, open_line = scope.pop()
                if kind == "class" and nm:
                    class_ranges.append((nm, open_line, toks[i].line))
                elif kind == "function":
                    func_ranges.append((open_line, toks[i].line))
        i += 1
    for nm, lo, hi in class_ranges:
        lines = []
        for ln in range(lo, hi + 1):
            if any(flo < ln < fhi for flo, fhi in func_ranges):
                continue
            lines.append(src.code_lines[ln - 1] if ln - 1 < len(src.code_lines)
                         else "")
        model.members.setdefault(nm, {}).update(parse_decl_types(lines))


CONTRACT_TOKENS = {
    "SCRPQO_HOT": "hot",
    "SCRPQO_NOALLOC": "alloc",
    "SCRPQO_NONBLOCKING": "block",
    "SCRPQO_NOTHROW": "throw",
    "SCRPQO_FP_DETERMINISTIC": "fp",
}
LOCK_BOUNDED_RE = re.compile(r"\bSCRPQO_LOCK_BOUNDED\(([^)]*)\)")
ALLOW_FULL_RE = re.compile(
    r"\bSCRPQO_EFFECT_ALLOW\s*\(\s*([a-z]+)\s*,\s*(\"(?:[^\"\\]|\\.)*\")?")


def _parse_contracts(model: Model, src: SourceFile, f: Func) -> None:
    sig = f.sig_text
    for token, rule in CONTRACT_TOKENS.items():
        if re.search(r"\b" + token + r"\b", sig):
            if rule == "hot":
                f.hot = True
            else:
                f.contracts.add(rule)
    m = LOCK_BOUNDED_RE.search(sig)
    if m:
        f.contracts.add("lock")
        f.lock_caps = re.findall(r"[A-Za-z_]\w*", m.group(1))
    if "[[noreturn]]" in sig or "noreturn" in sig:
        f.noreturn = True
    # Function-scope allows: markers on the signature lines.
    for off, raw in enumerate(src.raw_lines[f.sig_line - 1:f.body_open]):
        for am in ALLOW_FULL_RE.finditer(raw):
            rule = am.group(1)
            just = (am.group(2) or "").strip('"').strip()
            marker = AllowMarker(src.rel, f.sig_line + off, rule, just,
                                 "function", owner=f.fid)
            model.allows.append(marker)
            if rule in RULES and just:
                f.fn_allows[rule] = marker.line


def _collect_line_allows(model: Model, src: SourceFile) -> None:
    func_sig_lines: set[int] = set()
    for f in model.funcs:
        if f.rel != src.rel:
            continue
        func_sig_lines.update(range(f.sig_line, f.body_open + 1))
    for idx, raw in enumerate(src.raw_lines, start=1):
        if idx in func_sig_lines:
            continue
        if raw.lstrip().startswith("#"):
            continue  # the macro's own #define in effects.h
        for am in ALLOW_FULL_RE.finditer(raw):
            rule = am.group(1)
            just = (am.group(2) or "").strip('"').strip()
            marker = AllowMarker(src.rel, idx, rule, just, "line")
            stripped = src.code_lines[idx - 1] if \
                idx - 1 < len(src.code_lines) else ""
            # A line holding nothing but the marker covers the next line.
            residue = re.sub(r"SCRPQO_EFFECT_ALLOW\s*\([^;{}]*\)", "",
                             stripped).strip()
            alone = residue in ("", ";")
            if alone:
                nxt = idx + 1
                while nxt <= len(src.raw_lines) and \
                        not src.raw_lines[nxt - 1].strip():
                    nxt += 1
                marker.target_lines = {idx, nxt}
            else:
                marker.target_lines = {idx}
            model.allows.append(marker)


def _extract_body(model: Model, src: SourceFile, toks: list[Token],
                  start: int, end: int, f: Func) -> None:
    locals_: dict[str, str] = parse_param_types(f.sig_text)
    body_lines = src.code_lines[f.body_open - 1:f.body_close]
    locals_.update(parse_decl_types([ln.strip() for ln in body_lines]))
    f._local_types = locals_  # type: ignore[attr-defined]

    # Intrinsics: line regex (token stream splits _mm256_mul_pd cleanly as
    # one identifier, but the regex is simpler on lines).
    if src.rel not in FP_INTRINSIC_SANCTIONED:
        for off, line in enumerate(body_lines):
            m = INTRINSIC_RE.search(line)
            if m:
                f.effects.append(Effect(
                    "fp", f.body_open + off,
                    f"raw SIMD intrinsic `{m.group(0)}` outside sanctioned "
                    f"TUs ({', '.join(FP_INTRINSIC_SANCTIONED)})"))

    i = start
    while i < end:
        tok = toks[i]
        t = tok.txt

        if t in ABORT_MACROS and i + 1 < end and toks[i + 1].txt == "(":
            i = _match_fwd(toks, i + 1, "(", ")") + 1
            continue

        if t == "throw":
            f.effects.append(Effect("throw", tok.line, "throw expression"))
            i += 1
            continue

        if t == "new":
            prev = toks[i - 1].txt if i > 0 else ""
            nxt = toks[i + 1].txt if i + 1 < end else ""
            if prev != "operator" and nxt != "(":
                # `new (ptr) T` is placement (arena) — not an allocation.
                f.effects.append(Effect("alloc", tok.line, "operator new"))
            i += 1
            continue

        if t == "operator" and i + 1 < end and toks[i + 1].txt == "new":
            f.effects.append(Effect("alloc", tok.line, "::operator new"))
            i += 2
            continue

        # Guard declarations: MutexLock lock(cap);
        if t in GUARD_TYPES and i + 2 < end and \
                re.match(r"[A-Za-z_]\w*$", toks[i + 1].txt) and \
                toks[i + 2].txt == "(":
            close = _match_fwd(toks, i + 2, "(", ")")
            cap = None
            for j in range(close - 1, i + 2, -1):
                if re.match(r"[A-Za-z_]\w*$", toks[j].txt):
                    cap = toks[j].txt
                    break
            f.effects.append(Effect(
                "lock", tok.line,
                f"{t} acquires `{cap}`", cap=cap))
            i = close + 1
            continue

        # Call site: IDENT '(' — or IDENT '<' targs '>' '(' with explicit
        # template arguments (AllocateArray<uint8_t>(n), make_unique<T>(),
        # EvalGroupNbT<V, 1>(...)). The angle scan accepts only type-like
        # tokens, so an ordinary `a < b` comparison never matches.
        if re.match(r"[A-Za-z_]\w*$", t) and i + 1 < end and \
                t not in CONTROL_KEYWORDS and \
                (toks[i + 1].txt == "(" or
                 (toks[i + 1].txt == "<" and
                  _skip_template_args(toks, i + 1, end) is not None)):
            quals: list[str] = []
            j = i - 1
            while j >= 1 and toks[j].txt == "::" and \
                    re.match(r"[A-Za-z_]\w*$", toks[j - 1].txt):
                quals.insert(0, toks[j - 1].txt)
                j -= 2
            recv = None
            recv_unknown = False
            if j >= 1 and toks[j].txt in (".", "->") and not quals:
                if re.match(r"[A-Za-z_]\w*$", toks[j - 1].txt):
                    recv = toks[j - 1].txt
                else:
                    recv_unknown = True
            _record_call(model, f, tok.line, t, tuple(quals), recv,
                         recv_unknown, locals_)
            i += 1
            continue
        i += 1


def _recv_type(model: Model, f: Func, locals_: dict[str, str],
               recv: str) -> str | None:
    if recv in locals_:
        return locals_[recv]
    if f.cls:
        ty = model.members.get(f.cls, {}).get(recv)
        if ty:
            return ty
    # Fall back: search every class the function's file declared (covers
    # out-of-line definitions whose class table lives in the header).
    for members in model.members.values():
        if recv in members:
            return members[recv]
    return None


def _record_call(model: Model, f: Func, line: int, name: str,
                 quals: tuple[str, ...], recv: str | None,
                 recv_unknown: bool, locals_: dict[str, str]) -> None:
    # std-qualified calls -> std model.
    if quals and quals[0] == "std":
        _std_effect(model, f, line, name, f.rel)
        return
    if ALLCAPS_RE.match(name):
        return  # macro invocation, not a call edge

    recv_ty = None
    if recv is not None:
        recv_ty = _recv_type(model, f, locals_, recv)
        if recv_ty is None and re.match(r".*mu_?$", recv) and \
                name in LOCK_METHODS:
            f.effects.append(Effect("lock", line,
                                    f"{recv}.{name}() acquires `{recv}`",
                                    cap=recv))
            return
    if recv_ty:
        base = recv_ty.split("::")[-1]
        if recv_ty.startswith("std::") or base in STD_CONTAINERS:
            if base in STD_CONTAINERS:
                if name in ALLOC_METHODS:
                    f.effects.append(Effect(
                        "alloc", line,
                        f"std::{base}::{name} may allocate"))
                if name in BLOCK_METHODS:
                    f.effects.append(Effect(
                        "block", line, f"std::{base}::{name} blocks"))
                if name == "at":
                    f.effects.append(Effect(
                        "throw", line, f"std::{base}::at throws"))
            elif name in BLOCK_METHODS:
                f.effects.append(Effect(
                    "block", line, f"std::{base}::{name} blocks"))
            return
        if base in MUTEX_TYPES and name in LOCK_METHODS:
            f.effects.append(Effect(
                "lock", line, f"{recv}.{name}() acquires `{recv}`",
                cap=recv))
            return
        if base == "CondVar" and name in BLOCK_METHODS:
            f.effects.append(Effect(
                "block", line, f"CondVar::{name} waits"))
            return

    if name in BLOCK_METHODS and (recv is not None or recv_unknown):
        f.effects.append(Effect("block", line,
                                f".{name}() waits/joins"))
        return

    # Project resolution.
    f.calls.append(CallSite(line=line, name=name, quals=quals,
                            recv_type=recv_ty,
                            bare=recv is None and not recv_unknown
                            and not quals))
    # Unqualified free-function calls may also be std effects pulled in via
    # ADL/using — cover the bare C names (printf, fopen, rand, fesetround).
    if recv is None and not quals:
        _std_effect(model, f, line, name, f.rel, bare_only=True)


def _std_effect(model: Model, f: Func, line: int, name: str, rel: str,
                bare_only: bool = False) -> None:
    if name in STD_ALLOC_FUNCS:
        f.effects.append(Effect("alloc", line, f"std::{name} allocates"))
    if name in STD_BLOCK_FUNCS:
        f.effects.append(Effect("block", line, f"{name} blocks"))
    if name in STD_THROW_FUNCS and not bare_only:
        f.effects.append(Effect("throw", line, f"std::{name} throws"))
    if name in FP_FENV_FUNCS:
        f.effects.append(Effect("fp", line, f"fenv access `{name}`"))
    if name in FP_RAND_FUNCS:
        f.effects.append(Effect("fp", line, f"randomness `{name}`"))
    if name in FP_LIBM_TRANSCENDENTALS and rel not in FP_LIBM_SANCTIONED:
        f.effects.append(Effect(
            "fp", line,
            f"raw libm transcendental `{name}` outside "
            f"{FP_LIBM_SANCTIONED[0]} (tiers must funnel through the Vec* "
            f"wrappers)"))


# ---------------------------------------------------------------------------
# Call-graph resolution.
# ---------------------------------------------------------------------------


def resolve_calls(model: Model) -> None:
    for idx, f in enumerate(model.funcs):
        model.by_qname[f.qname] = idx
        if f.cls:
            model.by_method.setdefault((f.cls, f.name), idx)
        model.by_name.setdefault(f.name, []).append(idx)

    for f in model.funcs:
        for c in f.calls:
            target = None
            if c.recv_type:
                base = c.recv_type.split("::")[-1]
                target = model.by_method.get((base, c.name))
            elif c.quals:
                qn = "::".join([*c.quals, c.name])
                target = model.by_qname.get(qn)
                if target is None:
                    target = model.by_method.get((c.quals[-1], c.name))
                if target is None:
                    for qname, idx in model.by_qname.items():
                        if qname.endswith("::" + qn):
                            target = idx
                            break
            else:  # bare
                if f.cls:
                    target = model.by_method.get((f.cls, c.name))
                if target is None:
                    cands = model.by_name.get(c.name, [])
                    free = [i for i in cands if model.funcs[i].cls is None]
                    if len(free) == 1:
                        target = free[0]
                    elif len(cands) == 1:
                        target = cands[0]
            if target is None and c.recv_type is None and not c.bare:
                # Unknown receiver: resolve only if the name is unique
                # project-wide (conservative enough to stay useful).
                cands = model.by_name.get(c.name, [])
                if len(cands) == 1:
                    target = cands[0]
            if target is not None:
                f.edges.append((target, c.line))
                model.resolved_calls += 1
            else:
                model.unresolved_calls += 1


# ---------------------------------------------------------------------------
# Contract verification (BFS with witnesses).
# ---------------------------------------------------------------------------


def _line_allowed(model: Model, rel: str, line: int, rule: str) -> bool:
    for marker in model.allows:
        if marker.scope != "line" or marker.rel != rel:
            continue
        if marker.rule == rule and marker.justification and \
                line in marker.target_lines:
            marker.used = True
            return True
    return False


def _fn_allowed(model: Model, f: Func, rule: str) -> bool:
    if rule in f.fn_allows:
        for marker in model.allows:
            if marker.owner == f.fid and marker.rule == rule:
                marker.used = True
        return True
    return False


def _in_fence(src: SourceFile | None, line: int) -> bool:
    if src is None:
        return False
    return any(lo <= line <= hi for lo, hi in src.hot_fences)


# Imported from the lint so the ownership boundary cannot drift: the lint
# owns direct allocations on fenced lines under these prefixes, the
# analyzer owns everything else (including transitive reachability).
LINT_ALLOC_SCOPE = ALLOC_HOTPATH_SCOPE


def verify_contracts(model: Model) -> list[Finding]:
    findings: list[Finding] = []

    for root in model.funcs:
        for rule in RULES:
            if rule not in root.contracts:
                continue
            findings.extend(_check_rule(model, root, rule))

    # HOT functions with no contract at all: warning, not a gate.
    for f in model.funcs:
        if f.hot and not f.contracts:
            model.warnings.append(
                f"{f.rel}:{f.sig_line}: SCRPQO_HOT `{f.qname}` declares no "
                f"effect contract")

    findings.extend(_check_allow_hygiene(model))
    findings.extend(_check_lock_registry(model))
    findings.extend(_check_lock_order(model))
    return findings


def _check_rule(model: Model, root: Func, rule: str) -> list[Finding]:
    findings: list[Finding] = []
    # BFS with parent pointers for shortest witness chains.
    parent: dict[int, tuple[int, int]] = {}  # fid -> (parent fid, call line)
    seen = {root.fid}
    q: deque[int] = deque([root.fid])
    allowed_caps = set(root.lock_caps or []) if rule == "lock" else set()
    reported: set[tuple[str, int]] = set()

    while q:
        fid = q.popleft()
        f = model.funcs[fid]
        src = model.files.get(f.rel)

        for eff in f.effects:
            if eff.rule != rule:
                continue
            if rule == "lock" and eff.cap in allowed_caps:
                continue
            if _line_allowed(model, f.rel, eff.line, rule):
                continue
            if rule == "alloc" and _in_fence(src, eff.line) and \
                    f.rel.startswith(LINT_ALLOC_SCOPE):
                model.delegated.append({
                    "rule": rule, "file": f.rel, "line": eff.line,
                    "detail": eff.detail, "root": root.qname,
                    "owner": "scrpqo_lint.alloc-in-hotpath"})
                continue
            key = (f.rel, eff.line)
            if key in reported:
                continue
            reported.add(key)
            witness = _witness(model, parent, root, fid)
            witness.append(f"-> effect at {f.rel}:{eff.line}: {eff.detail}")
            msg = (f"{CONTRACT_FOR_RULE[rule]} contract of `{root.qname}` "
                   f"violated: {eff.detail} reachable in `{f.qname}`")
            if rule == "lock":
                bound = ", ".join(sorted(allowed_caps)) or "<none>"
                msg += f" (allowed capabilities: {bound})"
            findings.append(Finding(rule, f.rel, eff.line, msg,
                                    root=root.qname, function=f.qname,
                                    witness=witness))

        for callee_fid, call_line in f.edges:
            if callee_fid in seen:
                continue
            callee = model.funcs[callee_fid]
            if callee.noreturn:
                continue  # abort paths don't count
            if _fn_allowed(model, callee, rule):
                continue
            if _line_allowed(model, f.rel, call_line, rule):
                continue
            seen.add(callee_fid)
            parent[callee_fid] = (fid, call_line)
            q.append(callee_fid)
    return findings


def _witness(model: Model, parent: dict[int, tuple[int, int]],
             root: Func, fid: int) -> list[str]:
    chain: list[str] = []
    cur = fid
    while cur != root.fid:
        pfid, line = parent[cur]
        f = model.funcs[cur]
        p = model.funcs[pfid]
        chain.append(f"-> {f.qname} (called at {p.rel}:{line})")
        cur = pfid
    chain.append(f"{root.qname} ({root.rel}:{root.sig_line})")
    return list(reversed(chain))


def _check_allow_hygiene(model: Model) -> list[Finding]:
    findings = []
    for marker in model.allows:
        if marker.rule not in RULES:
            findings.append(Finding(
                "allow", marker.rel, marker.line,
                f"SCRPQO_EFFECT_ALLOW names unknown rule "
                f"`{marker.rule}` (expected one of {', '.join(RULES)})"))
        elif not marker.justification:
            findings.append(Finding(
                "allow", marker.rel, marker.line,
                "SCRPQO_EFFECT_ALLOW must carry a non-empty string-literal "
                "justification — unexplained escapes are findings"))
    return findings


def _check_lock_registry(model: Model) -> list[Finding]:
    findings = []
    for f in model.funcs:
        for cap in f.lock_caps or []:
            if cap not in model.mutex_members and cap != "mu":
                findings.append(Finding(
                    "lock", f.rel, f.sig_line,
                    f"SCRPQO_LOCK_BOUNDED({cap}) on `{f.qname}` names no "
                    f"declared scrpqo::Mutex/SharedMutex member (typo?)",
                    root=f.qname, function=f.qname))
    return findings


def parse_design_dag(root: str) -> set[tuple[str, str]]:
    """Edges from the DESIGN.md §4g lock-order code fence."""
    path = os.path.join(root, "DESIGN.md")
    edges: set[tuple[str, str]] = set()
    if not os.path.exists(path):
        return edges
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    m = re.search(r"\*\*Lock-order DAG\*\*.*?```(.*?)```", text, re.S)
    if not m:
        return edges
    for line in m.group(1).splitlines():
        if "∦" in line or "(" in line or "→" not in line:
            continue
        caps = re.findall(r"[A-Za-z_][\w:]*", line)
        for a, b in zip(caps, caps[1:]):
            if a != b:
                edges.add((a, b))
    return edges


def _check_lock_order(model: Model) -> list[Finding]:
    edges = set(model.order_edges) | model.design_edges  # type: ignore
    graph: dict[str, set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
    state: dict[str, int] = {}
    cycle: list[str] = []

    def dfs(node: str, stack: list[str]) -> bool:
        state[node] = 1
        stack.append(node)
        for nb in graph.get(node, ()):  # pragma: no branch
            if state.get(nb, 0) == 1:
                cycle.extend(stack[stack.index(nb):] + [nb])
                return True
            if state.get(nb, 0) == 0 and dfs(nb, stack):
                return True
        stack.pop()
        state[node] = 2
        return False

    for node in list(graph):
        if state.get(node, 0) == 0 and dfs(node, []):
            return [Finding(
                "lock", "DESIGN.md", 1,
                "lock-order cycle across TSA ACQUIRED_BEFORE annotations "
                "and the DESIGN §4g DAG: " + " -> ".join(cycle))]
    return []


# ---------------------------------------------------------------------------
# Optional libclang refinement (never the gate; mirrors the lint).
# ---------------------------------------------------------------------------


def try_clang_engine(compile_db: str | None) -> str | None:
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        return None
    return "available"


# ---------------------------------------------------------------------------
# Driver: tree analysis, JSON, self-test.
# ---------------------------------------------------------------------------


def build_model(root: str, files: list[str]) -> Model:
    model = Model()
    for path in files:
        extract_file(model, load_file(path, root))
    resolve_calls(model)
    model.design_edges = parse_design_dag(root)  # type: ignore[attr-defined]
    return model


def analyze_tree(root: str, compile_db: str | None,
                 json_out: str | None, engine: str) -> int:
    files = collect_files(root, compile_db)
    if not files:
        sys.stderr.write(f"error: no sources found under {root}/src\n")
        return 2
    model = build_model(root, files)
    findings = verify_contracts(model)
    for tu in scan_fast_math(compile_db):
        findings.append(Finding(
            "fp", os.path.relpath(tu, root) if os.path.isabs(tu) else tu, 1,
            "compiled with -ffast-math/-funsafe-math-optimizations: "
            "FP results are not reproducible across tiers"))

    clang_state = try_clang_engine(compile_db) if engine in ("auto", "clang") \
        else None
    if engine == "clang" and clang_state is None:
        sys.stderr.write("warning: libclang unavailable; lexical engine "
                         "remains the gate\n")

    hot_roots = [f.qname for f in model.funcs if f.hot]
    contracts = {
        f.qname: sorted(f.contracts) +
        ([f"lock_bounded({', '.join(f.lock_caps or [])})"]
         if f.lock_caps is not None else [])
        for f in model.funcs if f.contracts or f.hot
    }
    payload = {
        "tool": "scrpqo_effects",
        "version": 1,
        "engine": "lexical" + ("+clang" if clang_state else ""),
        "root": os.path.abspath(root),
        "stats": {
            "files": len(files),
            "functions": len(model.funcs),
            "call_edges": model.resolved_calls,
            "unresolved_calls": model.unresolved_calls,
            "hot_roots": hot_roots,
            "contracts": contracts,
        },
        "findings": [{
            "rule": fnd.rule, "file": fnd.rel, "line": fnd.line,
            "root_function": fnd.root, "function": fnd.function,
            "message": fnd.message, "witness": fnd.witness,
        } for fnd in findings],
        "delegated_to_lint": model.delegated,
        "allows": [{
            "file": a.rel, "line": a.line, "rule": a.rule,
            "scope": a.scope, "justification": a.justification,
            "used": a.used,
        } for a in model.allows],
        "warnings": model.warnings,
    }
    if json_out:
        os.makedirs(os.path.dirname(os.path.abspath(json_out)), exist_ok=True)
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)

    for w in model.warnings:
        print(f"warning: {w}")
    for fnd in findings:
        print(fnd.format())
    n_contracts = sum(len(f.contracts) for f in model.funcs)
    print(f"scrpqo_effects: {len(files)} files, {len(model.funcs)} functions, "
          f"{model.resolved_calls} call edges "
          f"({model.unresolved_calls} unresolved), "
          f"{len(hot_roots)} hot roots, {n_contracts} contracts, "
          f"{len(model.delegated)} findings delegated to the lint, "
          f"{len(findings)} findings")
    return 1 if findings else 0


def run_self_test(fixture_root: str) -> int:
    files = sorted(
        os.path.join(dp, n)
        for dp, _, ns in os.walk(fixture_root)
        for n in ns if n.endswith((".cc", ".h")))
    if not files:
        sys.stderr.write(f"error: no fixtures under {fixture_root}\n")
        return 2
    model = build_model(fixture_root, files)
    findings = verify_contracts(model)

    expected: set[tuple[str, int, str]] = set()
    for src in model.files.values():
        for line, rules in src.expects.items():
            for rule in rules:
                expected.add((src.rel, line, rule))
    actual = {(f.rel, f.line, f.rule) for f in findings}

    ok = True
    for miss in sorted(expected - actual):
        print(f"SELF-TEST MISS: expected {miss[2]} at {miss[0]}:{miss[1]}")
        ok = False
    for extra in sorted(actual - expected):
        print(f"SELF-TEST EXTRA: unexpected {extra[2]} at "
              f"{extra[0]}:{extra[1]}")
        for f in findings:
            if (f.rel, f.line, f.rule) == extra:
                print("  " + f.format().replace("\n", "\n  "))
        ok = False

    covered = {rule for _, _, rule in expected}
    for rule in (*RULES, "allow"):
        if rule not in covered:
            print(f"SELF-TEST GAP: no fixture seeds a `{rule}` violation")
            ok = False
        sanctioned = [a for a in model.allows
                      if a.rule == rule and a.justification and a.used]
        if rule in RULES and not sanctioned:
            print(f"SELF-TEST GAP: no fixture exercises a sanctioned "
                  f"SCRPQO_EFFECT_ALLOW({rule}) that stays silent")
            ok = False

    # The dedupe contract: at least one fixture allocation inside a lint
    # hot-path fence must be delegated, not reported.
    if not model.delegated:
        print("SELF-TEST GAP: no fixture exercises lint delegation "
              "(alloc inside a hot-path fence)")
        ok = False

    print(f"self-test: {len(files)} fixtures, {len(model.funcs)} functions, "
          f"{len(findings)} findings, {len(expected)} expected, "
          f"{len(model.delegated)} delegated"
          + (" — OK" if ok else " — FAIL"))
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".")
    ap.add_argument("-p", "--compile-db", default=None,
                    help="compile_commands.json (preferred file source)")
    ap.add_argument("--json", default=None, help="findings JSON output path")
    ap.add_argument("--engine", choices=("lexical", "clang", "auto"),
                    default="auto")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--fixture-root",
                    default=os.path.join(_HERE, "testdata"))
    args = ap.parse_args()
    if args.self_test:
        return run_self_test(args.fixture_root)
    return analyze_tree(args.root, args.compile_db, args.json, args.engine)


if __name__ == "__main__":
    sys.exit(main())

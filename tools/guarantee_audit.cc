// guarantee_audit — offline lambda-compliance checker for decision traces
// and persisted plan caches (see verify/guarantee_audit.h for the audited
// inequalities).
//
// Usage:
//   guarantee_audit [--trace events.jsonl] [--cache cache.txt]
//                   [--lambda X] [--lambda-r X] [--dynamic-lambda MIN MAX]
//                   [--tolerance T] [--max-report N] [--per-template]
//
// --per-template appends one summary line per template key found in the
// trace (events checked, violations, effective lambdas) — useful for
// multi-template traces merged by PqoManager.
//
// Exit status: 0 when every decision honors its bound, 1 when violations
// were found (a per-decision report is printed), 2 on usage/file errors.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "verify/guarantee_audit.h"

using namespace scrpqo;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: guarantee_audit [--trace events.jsonl] [--cache cache.txt]\n"
      "                       [--lambda X] [--lambda-r X]\n"
      "                       [--dynamic-lambda MIN MAX] [--tolerance T]\n"
      "                       [--max-report N] [--per-template]\n"
      "at least one of --trace / --cache is required\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string cache_path;
  AuditConfig config;
  int max_report = 50;
  bool per_template = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (!v) return Usage();
      trace_path = v;
    } else if (arg == "--cache") {
      const char* v = next();
      if (!v) return Usage();
      cache_path = v;
    } else if (arg == "--lambda") {
      const char* v = next();
      if (!v) return Usage();
      config.lambda = std::atof(v);
    } else if (arg == "--lambda-r") {
      const char* v = next();
      if (!v) return Usage();
      config.lambda_r = std::atof(v);
    } else if (arg == "--dynamic-lambda") {
      const char* lo = next();
      const char* hi = next();
      if (!lo || !hi) return Usage();
      config.dynamic_lambda = true;
      config.lambda_min = std::atof(lo);
      config.lambda_max = std::atof(hi);
    } else if (arg == "--tolerance") {
      const char* v = next();
      if (!v) return Usage();
      config.rel_tolerance = std::atof(v);
    } else if (arg == "--max-report") {
      const char* v = next();
      if (!v) return Usage();
      max_report = std::atoi(v);
    } else if (arg == "--per-template") {
      per_template = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (trace_path.empty() && cache_path.empty()) return Usage();

  AuditReport report;
  if (!trace_path.empty()) {
    Result<AuditReport> r = AuditTraceFile(trace_path, config);
    if (!r.ok()) {
      std::fprintf(stderr, "trace error: %s\n",
                   r.status().ToString().c_str());
      return 2;
    }
    report.Merge(r.ValueOrDie());
  }
  if (!cache_path.empty()) {
    Result<AuditReport> r = AuditCacheFile(cache_path, config);
    if (!r.ok()) {
      std::fprintf(stderr, "cache error: %s\n",
                   r.status().ToString().c_str());
      return 2;
    }
    report.Merge(r.ValueOrDie());
  }

  std::printf("%s\n", report.ToString(max_report).c_str());
  if (per_template) {
    std::string summary = report.PerTemplateString();
    if (!summary.empty()) std::printf("%s\n", summary.c_str());
  }
  return report.ok() ? 0 : 1;
}

#include <gtest/gtest.h>

#include <set>

#include "optimizer/optimizer.h"
#include "optimizer/plan_signature.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  QueryInstance Instance(double s0, double s1) {
    return InstanceForSelectivities(db_, *tmpl_, {s0, s1});
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(OptimizerTest, ProducesValidPlan) {
  OptimizationResult r = optimizer_.Optimize(Instance(0.1, 0.5));
  ASSERT_NE(r.plan, nullptr);
  EXPECT_GT(r.cost, 0.0);
  EXPECT_EQ(r.svector.size(), 2u);
  EXPECT_GT(r.stats.num_groups, 0);
  EXPECT_GT(r.stats.num_physical_exprs, 0);
  EXPECT_EQ(r.stats.plan_nodes, r.plan->NodeCount());
}

TEST_F(OptimizerTest, Deterministic) {
  QueryInstance q = Instance(0.2, 0.3);
  OptimizationResult a = optimizer_.Optimize(q);
  OptimizationResult b = optimizer_.Optimize(q);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(PlanSignatureString(*a.plan), PlanSignatureString(*b.plan));
}

TEST_F(OptimizerTest, PlanCostMatchesDerivedRoot) {
  OptimizationResult r = optimizer_.Optimize(Instance(0.05, 0.8));
  EXPECT_NEAR(r.cost, r.plan->est_cost, 1e-9);
}

TEST_F(OptimizerTest, PlanChangesAcrossSelectivitySpace) {
  std::set<std::string> signatures;
  for (double s0 : {0.002, 0.05, 0.3, 0.9}) {
    for (double s1 : {0.01, 0.5, 0.95}) {
      OptimizationResult r = optimizer_.Optimize(Instance(s0, s1));
      signatures.insert(PlanSignatureString(*r.plan));
    }
  }
  // A realistic optimizer must pick different plans in different regions.
  EXPECT_GE(signatures.size(), 3u);
}

TEST_F(OptimizerTest, LowSelectivityPrefersIndexAccess) {
  OptimizationResult r = optimizer_.Optimize(Instance(0.001, 0.9));
  // Somewhere in the plan the fact table must be accessed via its index.
  std::function<bool(const PhysicalPlanNode&)> has_seek =
      [&](const PhysicalPlanNode& n) {
        if (n.kind == PhysicalOpKind::kIndexSeek && n.leaf.table == "fact" &&
            n.leaf.index_column == "f_value") {
          return true;
        }
        for (const auto& c : n.children) {
          if (has_seek(*c)) return true;
        }
        return false;
      };
  EXPECT_TRUE(has_seek(*r.plan)) << r.plan->ToString();
}

TEST_F(OptimizerTest, HighSelectivityPrefersScan) {
  OptimizationResult r = optimizer_.Optimize(Instance(0.95, 0.95));
  std::function<bool(const PhysicalPlanNode&)> fact_scanned =
      [&](const PhysicalPlanNode& n) {
        if (n.kind == PhysicalOpKind::kTableScan && n.leaf.table == "fact") {
          return true;
        }
        for (const auto& c : n.children) {
          if (fact_scanned(*c)) return true;
        }
        return false;
      };
  EXPECT_TRUE(fact_scanned(*r.plan)) << r.plan->ToString();
}

TEST_F(OptimizerTest, CostMonotoneInSelectivityMostly) {
  // Optimal cost should (weakly) increase as predicates admit more rows.
  double prev = 0.0;
  for (double s : {0.01, 0.05, 0.2, 0.5, 0.9}) {
    OptimizationResult r = optimizer_.Optimize(Instance(s, 0.5));
    EXPECT_GE(r.cost, prev * 0.98) << "at s=" << s;
    prev = r.cost;
  }
}

TEST_F(OptimizerTest, BeatsOrMatchesEveryAlternative) {
  // The chosen plan's cost must be <= the cost of plans found by optimizers
  // with pruned search spaces (each subset-optimizer explores a subspace).
  QueryInstance q = Instance(0.08, 0.4);
  OptimizationResult full = optimizer_.Optimize(q);
  for (int mask = 1; mask < 8; ++mask) {
    OptimizerOptions opts;
    opts.enable_merge_join = mask & 1;
    opts.enable_indexed_nlj = mask & 2;
    opts.enable_index_seek = mask & 4;
    Optimizer restricted(&db_, opts);
    OptimizationResult r = restricted.Optimize(q);
    EXPECT_LE(full.cost, r.cost * 1.0001) << "mask=" << mask;
  }
}

TEST_F(OptimizerTest, SingleTableTemplate) {
  auto scan_tmpl = testing::MakeScanTemplate();
  QueryInstance q = InstanceForSelectivities(db_, *scan_tmpl, {0.3});
  OptimizationResult r = optimizer_.Optimize(q);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_TRUE(r.plan->is_leaf());
}

TEST_F(OptimizerTest, AggregateTemplateGetsAggRoot) {
  QueryTemplate tmpl("agg_q", {"fact", "dim"});
  JoinEdge e;
  e.left_table = 0;
  e.left_column = "f_dim";
  e.right_table = 1;
  e.right_column = "d_key";
  tmpl.AddJoin(e);
  PredicateTemplate p;
  p.table_index = 0;
  p.column = "f_value";
  p.op = CompareOp::kLe;
  p.param_slot = 0;
  ASSERT_TRUE(tmpl.AddPredicate(std::move(p)).ok());
  AggregateSpec agg;
  agg.enabled = true;
  agg.group_table = 1;
  agg.group_column = "d_attr";
  tmpl.SetAggregate(agg);

  QueryInstance q = InstanceForSelectivities(db_, tmpl, {0.4});
  OptimizationResult r = optimizer_.Optimize(q);
  EXPECT_TRUE(r.plan->kind == PhysicalOpKind::kHashAggregate ||
              r.plan->kind == PhysicalOpKind::kStreamAggregate)
      << r.plan->ToString();
}

TEST(PlanSignatureTest, StableAcrossInstancesOfSamePlan) {
  Database db = testing::MakeSmallDatabase(20000, 500);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  // Two nearby instances that should get the same plan shape.
  auto r1 = optimizer.Optimize(InstanceForSelectivities(db, *tmpl,
                                                        {0.30, 0.50}));
  auto r2 = optimizer.Optimize(InstanceForSelectivities(db, *tmpl,
                                                        {0.31, 0.51}));
  EXPECT_EQ(PlanSignatureString(*r1.plan), PlanSignatureString(*r2.plan));
  EXPECT_EQ(PlanSignatureHash(*r1.plan), PlanSignatureHash(*r2.plan));
}

TEST(PlanSignatureTest, DifferentPlansDiffer) {
  Database db = testing::MakeSmallDatabase(20000, 500);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  auto r1 = optimizer.Optimize(InstanceForSelectivities(db, *tmpl,
                                                        {0.001, 0.1}));
  auto r2 = optimizer.Optimize(InstanceForSelectivities(db, *tmpl,
                                                        {0.95, 0.95}));
  EXPECT_NE(PlanSignatureString(*r1.plan), PlanSignatureString(*r2.plan));
  EXPECT_NE(PlanSignatureHash(*r1.plan), PlanSignatureHash(*r2.plan));
}

TEST(PlanSignatureTest, SignatureMentionsStructure) {
  Database db = testing::MakeSmallDatabase(1000, 100);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  auto r = optimizer.Optimize(InstanceForSelectivities(db, *tmpl, {0.5, 0.5}));
  std::string sig = PlanSignatureString(*r.plan);
  EXPECT_NE(sig.find("fact"), std::string::npos);
  EXPECT_NE(sig.find("dim"), std::string::npos);
}

/// Property: across a grid of instances, optimization is internally
/// consistent — root cost equals the recursive derivation of its own tree.
class OptimizerGridTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(OptimizerGridTest, RootCostConsistent) {
  static Database db = testing::MakeSmallDatabase(20000, 500);
  static auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  auto [s0, s1] = GetParam();
  QueryInstance q = InstanceForSelectivities(db, *tmpl, {s0, s1});
  OptimizationResult r = optimizer.Optimize(q);
  double recost = optimizer.cost_model().RecostTree(*r.plan, r.svector);
  EXPECT_NEAR(recost, r.cost, std::abs(r.cost) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimizerGridTest,
    ::testing::Values(std::make_pair(0.001, 0.001), std::make_pair(0.001, 0.9),
                      std::make_pair(0.05, 0.05), std::make_pair(0.1, 0.6),
                      std::make_pair(0.4, 0.2), std::make_pair(0.9, 0.001),
                      std::make_pair(0.9, 0.9), std::make_pair(0.5, 0.5)));

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/math_util.h"
#include "workload/instance_gen.h"
#include "workload/orderings.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace scrpqo {
namespace {

SchemaScale SmallScale() {
  SchemaScale s;
  s.factor = 0.2;
  return s;
}

TEST(SchemasTest, AllDatabasesBuild) {
  std::vector<BenchmarkDb> dbs = BuildAllDatabases(SmallScale());
  ASSERT_EQ(dbs.size(), 4u);
  EXPECT_EQ(dbs[0].name, "TPCH");
  EXPECT_EQ(dbs[1].name, "TPCDS");
  EXPECT_EQ(dbs[2].name, "RD1");
  EXPECT_EQ(dbs[3].name, "RD2");
  for (const auto& db : dbs) {
    EXPECT_FALSE(db.fks.empty());
    EXPECT_GE(db.db.catalog().TableNames().size(), 4u);
  }
}

TEST(SchemasTest, FkEdgesReferenceRealColumns) {
  for (const auto& db : BuildAllDatabases(SmallScale())) {
    for (const auto& fk : db.fks) {
      const TableDef* child = db.db.catalog().FindTable(fk.child_table);
      const TableDef* parent = db.db.catalog().FindTable(fk.parent_table);
      ASSERT_NE(child, nullptr) << db.name << " " << fk.child_table;
      ASSERT_NE(parent, nullptr) << db.name << " " << fk.parent_table;
      EXPECT_TRUE(child->HasColumn(fk.child_column));
      EXPECT_TRUE(parent->HasColumn(fk.parent_column));
    }
  }
}

TEST(SchemasTest, StatsExistForAllColumns) {
  BenchmarkDb tpch = BuildTpchSkewed(SmallScale());
  for (const auto& table : tpch.db.catalog().TableNames()) {
    for (const auto& col : tpch.db.catalog().GetTable(table).columns) {
      EXPECT_NE(tpch.db.catalog().FindColumnStats(table, col.name), nullptr)
          << table << "." << col.name;
    }
  }
}

TEST(SchemasTest, MaterializationOptional) {
  SchemaScale no_rows = SmallScale();
  no_rows.materialize_rows = false;
  BenchmarkDb db = BuildRd1(no_rows);
  EXPECT_FALSE(db.db.HasTableData("event"));

  SchemaScale with_rows = SmallScale();
  with_rows.materialize_rows = true;
  BenchmarkDb db2 = BuildRd1(with_rows);
  EXPECT_TRUE(db2.db.HasTableData("event"));
}

TEST(TemplatesTest, BuildsRequestedCount) {
  auto dbs = BuildAllDatabases(SmallScale());
  TemplateGenOptions opts;
  opts.num_templates = 90;
  auto templates = BuildTemplates(dbs, opts);
  EXPECT_EQ(templates.size(), 90u);
}

TEST(TemplatesTest, AllTemplatesValid) {
  auto dbs = BuildAllDatabases(SmallScale());
  TemplateGenOptions opts;
  opts.num_templates = 60;
  for (const auto& bt : BuildTemplates(dbs, opts)) {
    EXPECT_GE(bt.tmpl->dimensions(), 1);
    EXPECT_LE(bt.tmpl->dimensions(), 10);
    EXPECT_TRUE(bt.tmpl->IsJoinGraphConnected()) << bt.tmpl->ToString();
    EXPECT_GE(bt.tmpl->num_tables(), 1);
    // Every parameterized predicate targets an existing column.
    for (const auto& p : bt.tmpl->predicates()) {
      const std::string& table =
          bt.tmpl->tables()[static_cast<size_t>(p.table_index)];
      EXPECT_TRUE(bt.db->db.catalog().GetTable(table).HasColumn(p.column));
    }
  }
}

TEST(TemplatesTest, DimensionMixMatchesPaper) {
  auto dbs = BuildAllDatabases(SmallScale());
  TemplateGenOptions opts;
  opts.num_templates = 90;
  int high_d = 0;
  for (const auto& bt : BuildTemplates(dbs, opts)) {
    if (bt.tmpl->dimensions() >= 4) ++high_d;
  }
  // Paper: roughly a third of templates have d >= 4.
  EXPECT_GE(high_d, 90 / 5);
  EXPECT_LE(high_d, 90 / 2);
}

TEST(TemplatesTest, HighDimensionalTemplatesOnRd2) {
  auto dbs = BuildAllDatabases(SmallScale());
  TemplateGenOptions opts;
  opts.num_templates = 90;
  for (const auto& bt : BuildTemplates(dbs, opts)) {
    if (bt.tmpl->dimensions() >= 5) {
      EXPECT_EQ(bt.db->name, "RD2") << bt.tmpl->name();
    }
  }
}

TEST(TemplatesTest, Deterministic) {
  auto dbs = BuildAllDatabases(SmallScale());
  TemplateGenOptions opts;
  opts.num_templates = 20;
  auto a = BuildTemplates(dbs, opts);
  auto b = BuildTemplates(dbs, opts);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tmpl->ToString(), b[i].tmpl->ToString());
  }
}

TEST(TemplatesTest, Rd2SweepTemplates) {
  auto rd2 = BuildRd2(SmallScale());
  for (int d = 1; d <= 10; ++d) {
    BoundTemplate bt = BuildRd2TemplateWithDimensions(rd2, d);
    EXPECT_EQ(bt.tmpl->dimensions(), d);
    EXPECT_TRUE(bt.tmpl->IsJoinGraphConnected());
  }
}

TEST(InstanceGenTest, GeneratesRequestedCount) {
  auto tpch = BuildTpchSkewed(SmallScale());
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  InstanceGenOptions opts;
  opts.m = 120;
  auto instances = GenerateInstances(bt, opts);
  EXPECT_EQ(instances.size(), 120u);
  for (size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(instances[i].id, static_cast<int>(i));
    EXPECT_EQ(instances[i].svector.size(), 2u);
  }
}

TEST(InstanceGenTest, CoversSmallAndLargeRegions) {
  auto tpch = BuildTpchSkewed(SmallScale());
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  InstanceGenOptions opts;
  opts.m = 200;
  auto instances = GenerateInstances(bt, opts);
  int all_small = 0, all_large = 0, mixed = 0;
  for (const auto& wi : instances) {
    bool s0_small = wi.svector[0] < 0.1;
    bool s1_small = wi.svector[1] < 0.1;
    if (s0_small && s1_small) {
      ++all_small;
    } else if (!s0_small && !s1_small) {
      ++all_large;
    } else {
      ++mixed;
    }
  }
  // Region0, Region1 and the per-dimension regions must all be populated.
  EXPECT_GT(all_small, 20);
  EXPECT_GT(all_large, 20);
  EXPECT_GT(mixed, 40);
}

TEST(InstanceGenTest, Deterministic) {
  auto tpch = BuildTpchSkewed(SmallScale());
  BoundTemplate bt = BuildExample2dTemplate(tpch);
  InstanceGenOptions opts;
  opts.m = 50;
  auto a = GenerateInstances(bt, opts);
  auto b = GenerateInstances(bt, opts);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].svector, b[i].svector);
  }
}

class OrderingTest : public ::testing::Test {
 protected:
  std::vector<InstanceOracleInfo> MakeInfo(int n) {
    std::vector<InstanceOracleInfo> info(static_cast<size_t>(n));
    Pcg32 rng(2);
    for (int i = 0; i < n; ++i) {
      info[static_cast<size_t>(i)].opt_cost = rng.UniformDouble(1, 100);
      info[static_cast<size_t>(i)].plan_signature =
          static_cast<uint64_t>(rng.UniformInt(0, 4));
    }
    return info;
  }

  static bool IsPermutation(const std::vector<int>& perm, int n) {
    std::set<int> seen(perm.begin(), perm.end());
    return static_cast<int>(perm.size()) == n &&
           static_cast<int>(seen.size()) == n && *seen.begin() == 0 &&
           *seen.rbegin() == n - 1;
  }
};

TEST_F(OrderingTest, AllKindsArePermutations) {
  auto info = MakeInfo(97);
  for (OrderingKind kind : AllOrderings()) {
    auto perm = MakeOrdering(kind, info, 5);
    EXPECT_TRUE(IsPermutation(perm, 97)) << OrderingName(kind);
  }
}

TEST_F(OrderingTest, DecreasingCostSorted) {
  auto info = MakeInfo(50);
  auto perm = MakeOrdering(OrderingKind::kDecreasingCost, info, 5);
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(info[static_cast<size_t>(perm[i - 1])].opt_cost,
              info[static_cast<size_t>(perm[i])].opt_cost);
  }
}

TEST_F(OrderingTest, RoundRobinAlternatesPlans) {
  auto info = MakeInfo(50);
  auto perm = MakeOrdering(OrderingKind::kRoundRobinByPlan, info, 5);
  // The first few positions must all come from distinct plan groups.
  std::set<uint64_t> first_sigs;
  std::set<uint64_t> all_sigs;
  for (const auto& ii : info) all_sigs.insert(ii.plan_signature);
  for (size_t i = 0; i < all_sigs.size(); ++i) {
    first_sigs.insert(info[static_cast<size_t>(perm[i])].plan_signature);
  }
  EXPECT_EQ(first_sigs.size(), all_sigs.size());
}

TEST_F(OrderingTest, InsideOutStartsNearMedian) {
  auto info = MakeInfo(51);
  std::vector<double> costs;
  for (const auto& ii : info) costs.push_back(ii.opt_cost);
  double median = Percentile(costs, 50.0);
  auto perm = MakeOrdering(OrderingKind::kInsideOut, info, 5);
  double first_dev =
      std::abs(info[static_cast<size_t>(perm.front())].opt_cost - median);
  double last_dev =
      std::abs(info[static_cast<size_t>(perm.back())].opt_cost - median);
  EXPECT_LT(first_dev, last_dev);
}

TEST_F(OrderingTest, OutsideInIsReverseStyle) {
  auto info = MakeInfo(51);
  std::vector<double> costs;
  for (const auto& ii : info) costs.push_back(ii.opt_cost);
  double median = Percentile(costs, 50.0);
  auto perm = MakeOrdering(OrderingKind::kOutsideIn, info, 5);
  double first_dev =
      std::abs(info[static_cast<size_t>(perm.front())].opt_cost - median);
  double last_dev =
      std::abs(info[static_cast<size_t>(perm.back())].opt_cost - median);
  EXPECT_GT(first_dev, last_dev);
}

TEST_F(OrderingTest, RandomDeterministicPerSeed) {
  auto info = MakeInfo(40);
  auto a = MakeOrdering(OrderingKind::kRandom, info, 7);
  auto b = MakeOrdering(OrderingKind::kRandom, info, 7);
  auto c = MakeOrdering(OrderingKind::kRandom, info, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace scrpqo

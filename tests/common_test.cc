#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"

namespace scrpqo {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kInternal, StatusCode::kNotImplemented}) {
    EXPECT_NE(Status::CodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CheckDeathTest, AbortsWithMessageInAnyBuildMode) {
  // SCRPQO_CHECK must stay armed in NDEBUG/Release builds (unlike assert)
  // and print file/line plus the message before aborting.
  EXPECT_DEATH(SCRPQO_CHECK(1 + 1 == 3, "math is broken"),
               "CHECK failed at .*common_test.cc:[0-9]+: math is broken");
}

TEST(CheckTest, MessageIsNotEvaluatedWhenConditionHolds) {
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("never needed");
  };
  for (int i = 0; i < 3; ++i) {
    SCRPQO_CHECK(i >= 0, expensive());
  }
  EXPECT_EQ(evaluations, 0);
}

TEST(Pcg32Test, DeterministicAcrossInstances) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, UniformIntInRange) {
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-7, 13);
    EXPECT_GE(v, -7);
    EXPECT_LE(v, 13);
  }
}

TEST(Pcg32Test, UniformIntSingleton) {
  Pcg32 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(9, 9), 9);
  }
}

TEST(Pcg32Test, UniformIntCoversAllValues) {
  Pcg32 rng(11);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[rng.UniformInt(0, 9)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 700) << "value " << v << " badly underrepresented";
  }
}

TEST(Pcg32Test, UniformDoubleInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32Test, NormalHasRequestedMoments) {
  Pcg32 rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Pcg32Test, ShuffleIsPermutation) {
  Pcg32 rng(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Pcg32 rng(5);
  ZipfSampler zipf(10, 0.0);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 50000.0, 0.1, 0.02) << "rank " << v;
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  Pcg32 rng(5);
  ZipfSampler zipf(1000, 1.2);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 10) ++low;
  }
  // With theta=1.2, the first 10 ranks carry far more than 10/1000 of mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.4);
}

TEST(ZipfTest, SamplesInRange) {
  Pcg32 rng(5);
  ZipfSampler zipf(17, 0.9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
}

TEST(PercentileTest, EndpointsAndMedian) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_EQ(Percentile(v, 100.0), 5.0);
  EXPECT_EQ(Percentile(v, 50.0), 3.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStats) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_NEAR(Percentile(v, 25.0), 2.5, 1e-12);
  EXPECT_NEAR(Percentile(v, 75.0), 7.5, 1e-12);
}

TEST(MeanMaxTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Max({}), 0.0);
  EXPECT_NEAR(Mean({1, 2, 3, 4}), 2.5, 1e-12);
  EXPECT_EQ(Max({1, 7, 3}), 7.0);
}

TEST(GlFactorsTest, GCollectsIncreases) {
  // ratios: dim0 doubled, dim1 halved, dim2 unchanged.
  std::vector<double> ratios{2.0, 0.5, 1.0};
  EXPECT_NEAR(ComputeG(ratios), 2.0, 1e-12);
  EXPECT_NEAR(ComputeL(ratios), 2.0, 1e-12);
}

TEST(GlFactorsTest, IdentityWhenEqual) {
  std::vector<double> ratios{1.0, 1.0};
  EXPECT_EQ(ComputeG(ratios), 1.0);
  EXPECT_EQ(ComputeL(ratios), 1.0);
}

TEST(GlFactorsTest, MultiDimensionalProduct) {
  std::vector<double> ratios{3.0, 2.0, 0.25, 0.5};
  EXPECT_NEAR(ComputeG(ratios), 6.0, 1e-12);
  EXPECT_NEAR(ComputeL(ratios), 8.0, 1e-12);
}

TEST(SelectivityRatiosTest, ComputesComponentwise) {
  std::vector<double> from{0.1, 0.4};
  std::vector<double> to{0.2, 0.1};
  auto r = SelectivityRatios(from, to);
  EXPECT_NEAR(r[0], 2.0, 1e-12);
  EXPECT_NEAR(r[1], 0.25, 1e-12);
}

TEST(SelectivityRatiosTest, FloorsZeroSelectivities) {
  auto r = SelectivityRatios({0.0, 0.5}, {0.1, 0.5});
  EXPECT_TRUE(std::isfinite(r[0]));
  EXPECT_GT(r[0], 1.0);
}

TEST(EuclideanDistanceTest, Basics) {
  EXPECT_NEAR(EuclideanDistance({0, 0}, {3, 4}), 5.0, 1e-12);
  EXPECT_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(EnvTest, FallsBackOnMissing) {
  ::unsetenv("SCRPQO_TEST_ENV_VAR");
  EXPECT_EQ(EnvInt64("SCRPQO_TEST_ENV_VAR", 17), 17);
  EXPECT_EQ(EnvDouble("SCRPQO_TEST_ENV_VAR", 2.5), 2.5);
}

TEST(EnvTest, ParsesValues) {
  ::setenv("SCRPQO_TEST_ENV_VAR", "123", 1);
  EXPECT_EQ(EnvInt64("SCRPQO_TEST_ENV_VAR", 17), 123);
  ::setenv("SCRPQO_TEST_ENV_VAR", "1.75", 1);
  EXPECT_EQ(EnvDouble("SCRPQO_TEST_ENV_VAR", 2.5), 1.75);
  ::setenv("SCRPQO_TEST_ENV_VAR", "junk", 1);
  EXPECT_EQ(EnvInt64("SCRPQO_TEST_ENV_VAR", 17), 17);
  ::unsetenv("SCRPQO_TEST_ENV_VAR");
}

TEST(EnvTest, OutOfRangeFallsBackToDefault) {
  // strtoll saturates at LLONG_MAX on overflow; the default must win over
  // a silently truncated value.
  ::setenv("SCRPQO_TEST_ENV_VAR", "99999999999999999999999", 1);
  EXPECT_EQ(EnvInt64("SCRPQO_TEST_ENV_VAR", 17), 17);
  ::setenv("SCRPQO_TEST_ENV_VAR", "-99999999999999999999999", 1);
  EXPECT_EQ(EnvInt64("SCRPQO_TEST_ENV_VAR", 17), 17);
  ::setenv("SCRPQO_TEST_ENV_VAR", "1e999", 1);
  EXPECT_EQ(EnvDouble("SCRPQO_TEST_ENV_VAR", 2.5), 2.5);
  ::setenv("SCRPQO_TEST_ENV_VAR", "-1e999", 1);
  EXPECT_EQ(EnvDouble("SCRPQO_TEST_ENV_VAR", 2.5), 2.5);
  ::setenv("SCRPQO_TEST_ENV_VAR", "inf", 1);
  EXPECT_EQ(EnvDouble("SCRPQO_TEST_ENV_VAR", 2.5), 2.5);
  ::setenv("SCRPQO_TEST_ENV_VAR", "nan", 1);
  EXPECT_EQ(EnvDouble("SCRPQO_TEST_ENV_VAR", 2.5), 2.5);
  // Denormal underflow also sets ERANGE on glibc; callers get the default
  // rather than a rounded-to-zero knob.
  ::setenv("SCRPQO_TEST_ENV_VAR", "1e-4999", 1);
  EXPECT_EQ(EnvDouble("SCRPQO_TEST_ENV_VAR", 2.5), 2.5);
  ::unsetenv("SCRPQO_TEST_ENV_VAR");
}

/// Property sweep: G * L of the ratio vector from a to b equals the product
/// of max(r, 1/r) over dimensions — both factors capture total "movement".
class GlPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlPropertyTest, GlEqualsTotalMovement) {
  Pcg32 rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    int d = static_cast<int>(rng.UniformInt(1, 8));
    std::vector<double> a(static_cast<size_t>(d)), b(static_cast<size_t>(d));
    for (int i = 0; i < d; ++i) {
      a[static_cast<size_t>(i)] = rng.UniformDouble(0.001, 1.0);
      b[static_cast<size_t>(i)] = rng.UniformDouble(0.001, 1.0);
    }
    auto ratios = SelectivityRatios(a, b);
    double expected = 1.0;
    for (double r : ratios) expected *= std::max(r, 1.0 / r);
    EXPECT_NEAR(ComputeG(ratios) * ComputeL(ratios), expected,
                expected * 1e-9);
    // Symmetry: swapping a and b swaps G and L.
    auto rev = SelectivityRatios(b, a);
    EXPECT_NEAR(ComputeG(ratios), ComputeL(rev), ComputeG(ratios) * 1e-9);
    EXPECT_NEAR(ComputeL(ratios), ComputeG(rev), ComputeL(ratios) * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace scrpqo

// End-to-end estimation accuracy: the optimizer's estimated output
// cardinality must track the executor's actual row counts within histogram
// resolution across the selectivity grid. This pins the whole pipeline
// (histograms -> leaf selectivities -> join cardinality model) to ground
// truth.
#include <gtest/gtest.h>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class CardinalityAccuracyTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CardinalityAccuracyTest, EstimateTracksActual) {
  static Database db = testing::MakeSmallDatabase(20000, 500, 31);
  static auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  auto [s0, s1] = GetParam();
  QueryInstance q = InstanceForSelectivities(db, *tmpl, {s0, s1});
  OptimizationResult r = optimizer.Optimize(q);
  ExecutionResult exec = ExecutePlan(db, q, *r.plan);

  double actual = static_cast<double>(exec.rows);
  double est = r.plan->est_rows;
  if (actual < 50) {
    // Tiny results: absolute tolerance (independence assumption noise).
    EXPECT_NEAR(est, actual, 60.0);
  } else {
    // Sizeable results: within 2.5x either way.
    EXPECT_GT(est, actual / 2.5) << "underestimate";
    EXPECT_LT(est, actual * 2.5) << "overestimate";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CardinalityAccuracyTest,
    ::testing::Values(std::make_pair(0.02, 0.1), std::make_pair(0.05, 0.5),
                      std::make_pair(0.1, 0.9), std::make_pair(0.3, 0.3),
                      std::make_pair(0.5, 0.7), std::make_pair(0.7, 0.2),
                      std::make_pair(0.9, 0.9), std::make_pair(0.95, 0.5)));

TEST(CardinalityAccuracyTest, SingleTableExact) {
  // Without joins the only error source is the histogram itself: estimates
  // must be tight.
  Database db = testing::MakeSmallDatabase(20000, 500, 33);
  auto tmpl = testing::MakeScanTemplate();
  Optimizer optimizer(&db);
  for (double s : {0.05, 0.2, 0.5, 0.8}) {
    QueryInstance q = InstanceForSelectivities(db, *tmpl, {s});
    OptimizationResult r = optimizer.Optimize(q);
    ExecutionResult exec = ExecutePlan(db, q, *r.plan);
    EXPECT_NEAR(r.plan->est_rows, static_cast<double>(exec.rows),
                20000 * 0.02)
        << "s=" << s;
  }
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <cmath>

#include <memory>

#include "pqo/density.h"
#include "pqo/ellipse.h"
#include "pqo/opt_always.h"
#include "pqo/opt_once.h"
#include "pqo/pcm.h"
#include "pqo/ranges.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(BaselinesTest, OptAlwaysOptimizesEverything) {
  OptAlways t;
  EngineContext engine(&db_, &optimizer_);
  for (int i = 0; i < 10; ++i) {
    PlanChoice c = t.OnInstance(MakeWi(i, 0.5, 0.5), &engine);
    EXPECT_TRUE(c.optimized);
  }
  EXPECT_EQ(engine.num_optimizer_calls(), 10);
  EXPECT_EQ(t.NumPlansCached(), 0);
}

TEST_F(BaselinesTest, OptOnceOptimizesExactlyOnce) {
  OptOnce t;
  EngineContext engine(&db_, &optimizer_);
  PlanChoice first = t.OnInstance(MakeWi(0, 0.01, 0.01), &engine);
  EXPECT_TRUE(first.optimized);
  for (int i = 1; i < 10; ++i) {
    PlanChoice c = t.OnInstance(MakeWi(i, 0.9, 0.9), &engine);
    EXPECT_FALSE(c.optimized);
    EXPECT_EQ(c.plan->signature, first.plan->signature);
  }
  EXPECT_EQ(engine.num_optimizer_calls(), 1);
  EXPECT_EQ(t.NumPlansCached(), 1);
}

TEST_F(BaselinesTest, PcmInfersInsideDominatedRectangle) {
  Pcm t(PcmOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  // Two corners whose optimal costs are within lambda of each other.
  t.OnInstance(MakeWi(0, 0.30, 0.30), &engine);
  t.OnInstance(MakeWi(1, 0.40, 0.40), &engine);
  int64_t calls = engine.num_optimizer_calls();
  // qc strictly between the corners: either inference succeeds (no new
  // call) or costs were not within lambda — check the actual cost ratio.
  double c_low =
      optimizer_.Optimize(MakeWi(0, 0.30, 0.30).instance).cost;
  double c_high =
      optimizer_.Optimize(MakeWi(1, 0.40, 0.40).instance).cost;
  PlanChoice c = t.OnInstance(MakeWi(2, 0.35, 0.35), &engine);
  if (c_high <= 2.0 * c_low) {
    EXPECT_FALSE(c.optimized);
    EXPECT_EQ(engine.num_optimizer_calls(), calls);
  } else {
    EXPECT_TRUE(c.optimized);
  }
}

TEST_F(BaselinesTest, PcmDoesNotInferOutsideRectangles) {
  Pcm t(PcmOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  t.OnInstance(MakeWi(0, 0.3, 0.3), &engine);
  t.OnInstance(MakeWi(1, 0.4, 0.4), &engine);
  // Incomparable point (one dim above, one below): no domination pair.
  PlanChoice c = t.OnInstance(MakeWi(2, 0.9, 0.01), &engine);
  EXPECT_TRUE(c.optimized);
}

TEST_F(BaselinesTest, PcmGuaranteeHolds) {
  const double lambda = 2.0;
  Pcm t(PcmOptions{.lambda = lambda});
  EngineContext engine(&db_, &optimizer_);
  Pcg32 rng(4);
  int violations = 0;
  for (int i = 0; i < 200; ++i) {
    WorkloadInstance wi = MakeWi(i, rng.UniformDouble(0.01, 0.9),
                                 rng.UniformDouble(0.01, 0.9));
    PlanChoice c = t.OnInstance(wi, &engine);
    double opt = optimizer_.OptimizeWithSVector(wi.instance, wi.svector).cost;
    if (engine.RecostUncharged(*c.plan, wi.svector) / opt > lambda * 1.001) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 8);  // PCM violations occur when monotonicity breaks
}

TEST_F(BaselinesTest, EllipseNeedsTwoPointsWithSamePlan) {
  Ellipse t(EllipseOptions{.delta = 0.9});
  EngineContext engine(&db_, &optimizer_);
  PlanChoice c0 = t.OnInstance(MakeWi(0, 0.30, 0.30), &engine);
  EXPECT_TRUE(c0.optimized);
  // A single stored point can never form an ellipse.
  PlanChoice c1 = t.OnInstance(MakeWi(1, 0.31, 0.31), &engine);
  EXPECT_TRUE(c1.optimized);
}

TEST_F(BaselinesTest, EllipseInfersBetweenFoci) {
  Ellipse t(EllipseOptions{.delta = 0.9});
  EngineContext engine(&db_, &optimizer_);
  PlanChoice a = t.OnInstance(MakeWi(0, 0.30, 0.30), &engine);
  PlanChoice b = t.OnInstance(MakeWi(1, 0.34, 0.34), &engine);
  if (a.plan->signature == b.plan->signature) {
    // Midpoint lies inside the ellipse (sum of focal distances is minimal
    // on the segment).
    PlanChoice mid = t.OnInstance(MakeWi(2, 0.32, 0.32), &engine);
    EXPECT_FALSE(mid.optimized);
    // A far point is outside.
    PlanChoice far = t.OnInstance(MakeWi(3, 0.9, 0.9), &engine);
    EXPECT_TRUE(far.optimized);
  }
}

TEST_F(BaselinesTest, DensityNeedsQuorum) {
  Density t(DensityOptions{.radius = 0.1, .confidence = 0.5,
                           .min_neighbors = 2});
  EngineContext engine(&db_, &optimizer_);
  EXPECT_TRUE(t.OnInstance(MakeWi(0, 0.50, 0.50), &engine).optimized);
  // One neighbor is below quorum.
  EXPECT_TRUE(t.OnInstance(MakeWi(1, 0.52, 0.52), &engine).optimized);
  // Now two stored points near (0.5, 0.5); if they share a plan, the next
  // nearby instance is inferred.
  PlanChoice c = t.OnInstance(MakeWi(2, 0.51, 0.51), &engine);
  // Whether inference fires depends on plan agreement; if it fired, no
  // optimizer call was charged.
  if (!c.optimized) {
    EXPECT_EQ(engine.num_optimizer_calls(), 2);
  }
}

TEST_F(BaselinesTest, RangesReusesInsideExpandedMbr) {
  Ranges t(RangesOptions{.margin = 0.01});
  EngineContext engine(&db_, &optimizer_);
  PlanChoice a = t.OnInstance(MakeWi(0, 0.40, 0.40), &engine);
  EXPECT_TRUE(a.optimized);
  // Within the margin of the stored point's degenerate MBR.
  PlanChoice b = t.OnInstance(MakeWi(1, 0.405, 0.405), &engine);
  EXPECT_FALSE(b.optimized);
  EXPECT_EQ(b.plan->signature, a.plan->signature);
  // Far outside any rectangle.
  PlanChoice c = t.OnInstance(MakeWi(2, 0.05, 0.9), &engine);
  EXPECT_TRUE(c.optimized);
}

TEST_F(BaselinesTest, RangesMbrGrowsWithOptimizedPoints) {
  Ranges t(RangesOptions{.margin = 0.01});
  EngineContext engine(&db_, &optimizer_);
  PlanChoice a = t.OnInstance(MakeWi(0, 0.40, 0.40), &engine);
  PlanChoice b = t.OnInstance(MakeWi(1, 0.50, 0.50), &engine);
  if (a.plan->signature == b.plan->signature) {
    // The rectangle now spans [0.40, 0.50]^2: an interior point reuses.
    PlanChoice mid = t.OnInstance(MakeWi(2, 0.45, 0.45), &engine);
    EXPECT_FALSE(mid.optimized);
  }
}

TEST_F(BaselinesTest, RecostRedundancyVariantStoresFewerPlans) {
  // Log-uniform sampling touches the index/scan crossover region where many
  // near-equivalent plans appear — the case redundancy rejection targets.
  auto run = [&](double lambda_r) {
    Ellipse t(EllipseOptions{.delta = 0.9,
                             .recost_redundancy_lambda_r = lambda_r});
    EngineContext engine(&db_, &optimizer_);
    Pcg32 rng(9);
    for (int i = 0; i < 200; ++i) {
      double s0 = std::exp(rng.UniformDouble(std::log(0.001), std::log(0.9)));
      double s1 = std::exp(rng.UniformDouble(std::log(0.001), std::log(0.9)));
      t.OnInstance(MakeWi(i, s0, s1), &engine);
    }
    return t.PeakPlansCached();
  };
  int64_t plain = run(-1.0);
  int64_t with_recost = run(2.0);
  EXPECT_LE(with_recost, plain);
  if (plain >= 5) {
    EXPECT_LT(with_recost, plain);
  }
}

TEST_F(BaselinesTest, TechniqueNames) {
  EXPECT_EQ(Pcm(PcmOptions{.lambda = 2.0}).name(), "PCM2");
  EXPECT_EQ(OptAlways().name(), "OptAlways");
  EXPECT_EQ(OptOnce().name(), "OptOnce");
  EXPECT_EQ(Ranges(RangesOptions{}).name(), "Ranges(0.01)");
  Pcm pr(PcmOptions{.lambda = 2.0, .recost_redundancy_lambda_r = 1.4});
  EXPECT_EQ(pr.name(), "PCM2+R");
}

}  // namespace
}  // namespace scrpqo

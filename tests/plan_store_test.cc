#include <gtest/gtest.h>

#include "pqo/plan_store.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class PlanStoreTest : public ::testing::Test {
 protected:
  PlanStoreTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_),
        engine_(&db_, &optimizer_) {}

  struct Optimized {
    CachedPlan plan;
    SVector sv;
    double cost;
  };

  Optimized OptimizeAt(double s0, double s1) {
    QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    OptimizationResult r = optimizer_.Optimize(q);
    return {MakeCachedPlan(r), r.svector, r.cost};
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
  EngineContext engine_;
};

TEST_F(PlanStoreTest, StoresNewPlan) {
  PlanStore store;
  Optimized o = OptimizeAt(0.1, 0.5);
  auto r = store.StoreOrReuse(o.plan, o.sv, o.cost, -1.0, &engine_);
  EXPECT_GE(r.plan_id, 0);
  EXPECT_FALSE(r.already_present);
  EXPECT_FALSE(r.reused_existing);
  EXPECT_EQ(r.subopt, 1.0);
  EXPECT_EQ(store.NumLive(), 1);
  EXPECT_EQ(store.Peak(), 1);
}

TEST_F(PlanStoreTest, DetectsAlreadyPresent) {
  PlanStore store;
  Optimized a = OptimizeAt(0.10, 0.50);
  Optimized b = OptimizeAt(0.11, 0.51);  // same plan shape expected
  auto ra = store.StoreOrReuse(a.plan, a.sv, a.cost, -1.0, &engine_);
  auto rb = store.StoreOrReuse(b.plan, b.sv, b.cost, -1.0, &engine_);
  if (a.plan.signature == b.plan.signature) {
    EXPECT_TRUE(rb.already_present);
    EXPECT_EQ(ra.plan_id, rb.plan_id);
    EXPECT_EQ(store.NumLive(), 1);
  } else {
    EXPECT_EQ(store.NumLive(), 2);
  }
}

TEST_F(PlanStoreTest, RedundancyCheckReusesCloseEnoughPlan) {
  PlanStore store;
  Optimized a = OptimizeAt(0.10, 0.50);
  store.StoreOrReuse(a.plan, a.sv, a.cost, -1.0, &engine_);
  // Find an instance with a different optimal plan.
  for (double s0 : {0.001, 0.3, 0.6, 0.95}) {
    Optimized b = OptimizeAt(s0, 0.9);
    if (b.plan.signature == a.plan.signature) continue;
    // With an absurdly loose threshold the new plan must be rejected.
    auto r = store.StoreOrReuse(b.plan, b.sv, b.cost, 1e9, &engine_);
    EXPECT_TRUE(r.reused_existing);
    EXPECT_GE(r.subopt, 1.0);
    EXPECT_EQ(store.NumLive(), 1);
    return;
  }
  GTEST_SKIP() << "no second plan shape found at this scale";
}

TEST_F(PlanStoreTest, RedundancyCheckChargesRecostCalls) {
  PlanStore store;
  Optimized a = OptimizeAt(0.10, 0.50);
  store.StoreOrReuse(a.plan, a.sv, a.cost, -1.0, &engine_);
  int64_t before = engine_.num_recost_calls();
  Optimized b = OptimizeAt(0.9, 0.01);
  store.StoreOrReuse(b.plan, b.sv, b.cost, 1.5, &engine_);
  EXPECT_GT(engine_.num_recost_calls(), before);
}

TEST_F(PlanStoreTest, DropAndUsageTracking) {
  PlanStore store;
  Optimized a = OptimizeAt(0.01, 0.1);
  Optimized b = OptimizeAt(0.9, 0.9);
  auto ra = store.StoreOrReuse(a.plan, a.sv, a.cost, -1.0, &engine_);
  auto rb = store.StoreOrReuse(b.plan, b.sv, b.cost, -1.0, &engine_);
  if (a.plan.signature == b.plan.signature) {
    GTEST_SKIP() << "need two distinct plans";
  }
  store.AddUsage(ra.plan_id, 5);
  store.AddUsage(rb.plan_id, 2);
  EXPECT_EQ(store.MinUsagePlanId(), rb.plan_id);
  store.Drop(rb.plan_id);
  EXPECT_EQ(store.NumLive(), 1);
  EXPECT_EQ(store.Peak(), 2);  // peak is sticky
  EXPECT_EQ(store.MinUsagePlanId(), ra.plan_id);
  EXPECT_EQ(store.LivePlanIds().size(), 1u);
}

TEST_F(PlanStoreTest, DroppedSignatureCanBeReinserted) {
  PlanStore store;
  Optimized a = OptimizeAt(0.2, 0.2);
  auto r1 = store.StoreOrReuse(a.plan, a.sv, a.cost, -1.0, &engine_);
  store.Drop(r1.plan_id);
  auto r2 = store.StoreOrReuse(a.plan, a.sv, a.cost, -1.0, &engine_);
  EXPECT_FALSE(r2.already_present);
  EXPECT_NE(r2.plan_id, r1.plan_id);
  EXPECT_EQ(store.NumLive(), 1);
}

TEST_F(PlanStoreTest, EntryOutOfRangeDies) {
  PlanStore store;
  Optimized o = OptimizeAt(0.2, 0.6);
  auto r = store.StoreOrReuse(o.plan, o.sv, o.cost, -1.0, &engine_);
  // Ids handed out by StoreOrReuse stay valid (even after Drop — dead
  // entries remain readable); anything else must abort, not index past
  // the entry vector.
  EXPECT_NO_FATAL_FAILURE((void)store.entry(r.plan_id));
  EXPECT_DEATH((void)store.entry(-1), "plan id out of range");
  EXPECT_DEATH((void)store.entry(r.plan_id + 1), "plan id out of range");
  EXPECT_DEATH(store.AddUsage(12345, 1), "plan id out of range");
}

TEST_F(PlanStoreTest, PeakTracksHighWaterMark) {
  PlanStore store;
  int stored = 0;
  for (double s0 : {0.001, 0.05, 0.3, 0.6, 0.95}) {
    Optimized o = OptimizeAt(s0, s0);
    auto r = store.StoreOrReuse(o.plan, o.sv, o.cost, -1.0, &engine_);
    if (!r.already_present) ++stored;
  }
  EXPECT_EQ(store.Peak(), stored);
  EXPECT_EQ(store.NumLive(), stored);
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <set>

#include "optimizer/optimizer.h"
#include "workload/instance_gen.h"
#include "workload/named_templates.h"
#include "workload/runner.h"

namespace scrpqo {
namespace {

class NamedTemplatesTest : public ::testing::Test {
 protected:
  static std::vector<BenchmarkDb>& Dbs() {
    static std::vector<BenchmarkDb>* dbs = [] {
      SchemaScale scale;
      scale.factor = 0.2;
      return new std::vector<BenchmarkDb>(BuildAllDatabases(scale));
    }();
    return *dbs;
  }
};

TEST_F(NamedTemplatesTest, CatalogNonEmptyAndUnique) {
  auto listed = ListNamedTemplates();
  EXPECT_GE(listed.size(), 7u);
  std::set<std::string> names;
  for (const auto& nt : listed) {
    EXPECT_TRUE(names.insert(nt.name).second) << "duplicate " << nt.name;
    EXPECT_FALSE(nt.description.empty());
  }
}

TEST_F(NamedTemplatesTest, AllBuildAndValidate) {
  for (const auto& nt : ListNamedTemplates()) {
    BoundTemplate bt = BuildNamedTemplate(Dbs(), nt.name);
    EXPECT_EQ(bt.tmpl->name(), nt.name);
    EXPECT_EQ(bt.db->name, nt.database);
    EXPECT_TRUE(bt.tmpl->IsJoinGraphConnected()) << nt.name;
    EXPECT_GE(bt.tmpl->dimensions(), 1) << nt.name;
    for (const auto& p : bt.tmpl->predicates()) {
      const std::string& table =
          bt.tmpl->tables()[static_cast<size_t>(p.table_index)];
      EXPECT_TRUE(bt.db->db.catalog().GetTable(table).HasColumn(p.column))
          << nt.name << " " << p.ToString();
    }
  }
}

TEST_F(NamedTemplatesTest, AllOptimizeAcrossSelectivities) {
  for (const auto& nt : ListNamedTemplates()) {
    BoundTemplate bt = BuildNamedTemplate(Dbs(), nt.name);
    Optimizer optimizer(&bt.db->db);
    InstanceGenOptions gen;
    gen.m = 8;
    for (const auto& wi : GenerateInstances(bt, gen)) {
      OptimizationResult r =
          optimizer.OptimizeWithSVector(wi.instance, wi.svector);
      EXPECT_GT(r.cost, 0.0) << nt.name;
      EXPECT_NE(r.plan, nullptr) << nt.name;
    }
  }
}

TEST_F(NamedTemplatesTest, FleetTemplateIsHighDimensional) {
  BoundTemplate bt = BuildNamedTemplate(Dbs(), "RD2_FLEET");
  EXPECT_EQ(bt.tmpl->dimensions(), 6);
}

TEST_F(NamedTemplatesTest, Q18AnalogHasPlanVariety) {
  BoundTemplate bt = BuildNamedTemplate(Dbs(), "TPCDS_Q18A");
  Optimizer optimizer(&bt.db->db);
  InstanceGenOptions gen;
  gen.m = 60;
  std::set<uint64_t> plans;
  for (const auto& wi : GenerateInstances(bt, gen)) {
    OptimizationResult r =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);
    plans.insert(MakeCachedPlan(r).signature);
  }
  // The paper's Q18 workloads feature hundreds of plans at full scale; at
  // laptop scale we still need genuine variety for the experiments to mean
  // anything.
  EXPECT_GE(plans.size(), 4u);
}

}  // namespace
}  // namespace scrpqo

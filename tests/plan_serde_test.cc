#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/plan_serde.h"
#include "optimizer/plan_signature.h"
#include "executor/executor.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class PlanSerdeTest : public ::testing::Test {
 protected:
  PlanSerdeTest()
      : db_(testing::MakeSmallDatabase(5000, 200)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  OptimizationResult OptimizeAt(double s0, double s1) {
    return optimizer_.Optimize(
        InstanceForSelectivities(db_, *tmpl_, {s0, s1}));
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(PlanSerdeTest, RoundTripPreservesSignature) {
  for (auto [s0, s1] : {std::make_pair(0.001, 0.9), std::make_pair(0.3, 0.3),
                        std::make_pair(0.9, 0.05)}) {
    OptimizationResult r = OptimizeAt(s0, s1);
    std::string data = SerializePlan(*r.plan);
    auto restored = DeserializePlan(data);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(PlanSignatureString(*restored.ValueOrDie()),
              PlanSignatureString(*r.plan));
  }
}

TEST_F(PlanSerdeTest, RoundTripPreservesRecost) {
  OptimizationResult r = OptimizeAt(0.2, 0.6);
  auto restored = DeserializePlan(SerializePlan(*r.plan));
  ASSERT_TRUE(restored.ok());
  const CostModel& cm = optimizer_.cost_model();
  // Same cost at the original instance and at a shifted one.
  EXPECT_NEAR(cm.RecostTree(*restored.ValueOrDie(), r.svector), r.cost,
              r.cost * 1e-9);
  SVector moved = r.svector;
  moved[0] *= 1.7;
  EXPECT_NEAR(cm.RecostTree(*restored.ValueOrDie(), moved),
              cm.RecostTree(*r.plan, moved), r.cost * 1e-9);
}

TEST_F(PlanSerdeTest, RoundTripPreservesEstimates) {
  OptimizationResult r = OptimizeAt(0.4, 0.4);
  auto restored = DeserializePlan(SerializePlan(*r.plan));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.ValueOrDie()->est_rows, r.plan->est_rows);
  EXPECT_EQ(restored.ValueOrDie()->est_cost, r.plan->est_cost);
  EXPECT_EQ(restored.ValueOrDie()->NodeCount(), r.plan->NodeCount());
}

TEST_F(PlanSerdeTest, DeserializedPlanExecutes) {
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.3, 0.5});
  OptimizationResult r = optimizer_.Optimize(q);
  auto restored = DeserializePlan(SerializePlan(*r.plan));
  ASSERT_TRUE(restored.ok());
  ExecutionResult orig = ExecutePlan(db_, q, *r.plan);
  ExecutionResult again = ExecutePlan(db_, q, *restored.ValueOrDie());
  EXPECT_EQ(orig.rows, again.rows);
  EXPECT_EQ(orig.checksum, again.checksum);
}

TEST_F(PlanSerdeTest, SerializationIsDeterministic) {
  OptimizationResult r = OptimizeAt(0.25, 0.75);
  EXPECT_EQ(SerializePlan(*r.plan), SerializePlan(*r.plan));
  auto restored = DeserializePlan(SerializePlan(*r.plan));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(SerializePlan(*restored.ValueOrDie()), SerializePlan(*r.plan));
}

TEST_F(PlanSerdeTest, StringValuesEscape) {
  // A predicate literal with quotes/backslashes must survive.
  auto node = std::make_shared<PhysicalPlanNode>();
  node->kind = PhysicalOpKind::kTableScan;
  node->leaf.table_index = 0;
  node->leaf.table = "t";
  node->leaf.base_rows = 10;
  PredSpec p;
  p.column = "c";
  p.op = CompareOp::kEq;
  p.literal = Value(std::string("a\"b\\c"));
  p.literal_sel = 0.5;
  node->leaf.preds.push_back(p);
  auto restored = DeserializePlan(SerializePlan(*node));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.ValueOrDie()->leaf.preds[0].literal.str(), "a\"b\\c");
}

TEST_F(PlanSerdeTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializePlan("").ok());
  EXPECT_FALSE(DeserializePlan("(9999 junk").ok());
  EXPECT_FALSE(DeserializePlan("not a plan at all").ok());
  OptimizationResult r = OptimizeAt(0.5, 0.5);
  std::string data = SerializePlan(*r.plan);
  EXPECT_FALSE(DeserializePlan(data.substr(0, data.size() / 2)).ok());
  EXPECT_FALSE(DeserializePlan(data + " extra").ok());
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <memory>

#include "pqo/engine_context.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class EngineContextTest : public ::testing::Test {
 protected:
  EngineContextTest()
      : db_(testing::MakeSmallDatabase(5000, 200)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(EngineContextTest, CountsOptimizerCalls) {
  EngineContext engine(&db_, &optimizer_);
  EXPECT_EQ(engine.num_optimizer_calls(), 0);
  engine.Optimize(MakeWi(0, 0.3, 0.3));
  engine.Optimize(MakeWi(1, 0.5, 0.5));
  EXPECT_EQ(engine.num_optimizer_calls(), 2);
  engine.ResetCounters();
  EXPECT_EQ(engine.num_optimizer_calls(), 0);
}

TEST_F(EngineContextTest, CountsRecostCalls) {
  EngineContext engine(&db_, &optimizer_);
  auto r = engine.Optimize(MakeWi(0, 0.3, 0.3));
  CachedPlan cached = MakeCachedPlan(*r);
  (void)engine.Recost(cached, r->svector);
  (void)engine.Recost(cached, r->svector);
  EXPECT_EQ(engine.num_recost_calls(), 2);
}

TEST_F(EngineContextTest, UnchargedRecostDoesNotCount) {
  EngineContext engine(&db_, &optimizer_);
  auto r = engine.Optimize(MakeWi(0, 0.3, 0.3));
  CachedPlan cached = MakeCachedPlan(*r);
  double a = engine.RecostUncharged(cached, r->svector);
  EXPECT_EQ(engine.num_recost_calls(), 0);
  double b = engine.Recost(cached, r->svector);
  EXPECT_EQ(a, b);  // same arithmetic either way
}

TEST_F(EngineContextTest, OracleShortCircuitsButStillCharges) {
  EngineContext engine(&db_, &optimizer_);
  WorkloadInstance wi = MakeWi(7, 0.4, 0.6);
  auto canned = std::make_shared<OptimizationResult>(
      optimizer_.OptimizeWithSVector(wi.instance, wi.svector));
  int oracle_hits = 0;
  engine.SetOracle([&](const WorkloadInstance& q)
                       -> std::shared_ptr<const OptimizationResult> {
    ++oracle_hits;
    EXPECT_EQ(q.id, 7);
    return canned;
  });
  auto r = engine.Optimize(wi);
  EXPECT_EQ(oracle_hits, 1);
  EXPECT_EQ(r.get(), canned.get());
  EXPECT_EQ(engine.num_optimizer_calls(), 1);  // charged despite the oracle
}

TEST_F(EngineContextTest, OptimizeWithoutOracleMatchesDirectCall) {
  EngineContext engine(&db_, &optimizer_);
  WorkloadInstance wi = MakeWi(0, 0.25, 0.75);
  auto via_engine = engine.Optimize(wi);
  OptimizationResult direct =
      optimizer_.OptimizeWithSVector(wi.instance, wi.svector);
  EXPECT_EQ(via_engine->cost, direct.cost);
}

}  // namespace
}  // namespace scrpqo

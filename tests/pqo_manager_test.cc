#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/rng.h"
#include "pqo/pqo_manager.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class PqoManagerTest : public ::testing::Test {
 protected:
  PqoManagerTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        join_tmpl_(testing::MakeJoinTemplate()),
        scan_tmpl_(testing::MakeScanTemplate()),
        optimizer_(&db_) {}

  WorkloadInstance JoinWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *join_tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  WorkloadInstance ScanWi(int id, double s0) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *scan_tmpl_, {s0});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  Database db_;
  std::shared_ptr<QueryTemplate> join_tmpl_;
  std::shared_ptr<QueryTemplate> scan_tmpl_;
  Optimizer optimizer_;
};

TEST_F(PqoManagerTest, SeparatesTemplates) {
  PqoManager mgr(PqoManagerOptions{});
  EngineContext engine(&db_, &optimizer_);
  mgr.OnInstance("join", JoinWi(0, 0.3, 0.3), &engine);
  mgr.OnInstance("scan", ScanWi(1, 0.4), &engine);
  EXPECT_EQ(mgr.NumTemplates(), 2);
  EXPECT_GE(mgr.TotalPlansCached(), 2);
}

TEST_F(PqoManagerTest, ReusesWithinTemplate) {
  PqoManager mgr(PqoManagerOptions{});
  EngineContext engine(&db_, &optimizer_);
  PlanChoice a = mgr.OnInstance("join", JoinWi(0, 0.3, 0.3), &engine);
  PlanChoice b = mgr.OnInstance("join", JoinWi(1, 0.31, 0.31), &engine);
  EXPECT_TRUE(a.optimized);
  EXPECT_FALSE(b.optimized);
  EXPECT_EQ(a.plan->signature, b.plan->signature);
}

TEST_F(PqoManagerTest, DefaultLambdaApplied) {
  PqoManagerOptions opts;
  opts.default_lambda = 1.5;
  PqoManager mgr(opts);
  EngineContext engine(&db_, &optimizer_);
  mgr.OnInstance("join", JoinWi(0, 0.3, 0.3), &engine);
  EXPECT_EQ(mgr.LambdaFor("join"), 1.5);
  EXPECT_EQ(mgr.LambdaFor("unknown"), 0.0);
}

TEST_F(PqoManagerTest, WarmupOptimizesFirstInstances) {
  PqoManagerOptions opts;
  opts.warmup_instances = 5;
  PqoManager mgr(opts);
  EngineContext engine(&db_, &optimizer_);
  Pcg32 rng(3);
  for (int i = 0; i < 5; ++i) {
    PlanChoice c = mgr.OnInstance(
        "join",
        JoinWi(i, rng.UniformDouble(0.1, 0.9), rng.UniformDouble(0.1, 0.9)),
        &engine);
    EXPECT_TRUE(c.optimized) << "warm-up instance " << i;
  }
  EXPECT_EQ(engine.num_optimizer_calls(), 5);
  // Post warm-up, a repeat is served from cache... once it is re-learned.
  PlanChoice first_after = mgr.OnInstance("join", JoinWi(5, 0.3, 0.3),
                                          &engine);
  EXPECT_TRUE(first_after.optimized);  // fresh cache starts empty
  PlanChoice reuse = mgr.OnInstance("join", JoinWi(6, 0.3, 0.3), &engine);
  EXPECT_FALSE(reuse.optimized);
  EXPECT_GT(mgr.LambdaFor("join"), 1.0);
}

TEST_F(PqoManagerTest, WarmupPicksLambdaByCost) {
  // The join template's instances are expensive (cost >> threshold) =>
  // tight lambda; a scan over the tiny dimension table is cheap => loose
  // lambda (one optimizer call outweighs any plan-quality gain there).
  auto cheap_tmpl = std::make_shared<QueryTemplate>(
      "cheap", std::vector<std::string>{"dim"});
  PredicateTemplate p;
  p.table_index = 0;
  p.column = "d_attr";
  p.op = CompareOp::kLe;
  p.param_slot = 0;
  ASSERT_TRUE(cheap_tmpl->AddPredicate(std::move(p)).ok());

  PqoManagerOptions opts;
  opts.warmup_instances = 3;
  opts.lambda_tight = 1.1;
  opts.lambda_loose = 2.0;
  PqoManager mgr(opts);
  EngineContext engine(&db_, &optimizer_);
  for (int i = 0; i < 3; ++i) {
    mgr.OnInstance("join", JoinWi(i, 0.5, 0.5), &engine);
    WorkloadInstance cheap;
    cheap.id = 100 + i;
    cheap.instance = InstanceForSelectivities(db_, *cheap_tmpl, {0.5});
    cheap.svector = ComputeSelectivityVector(db_, cheap.instance);
    mgr.OnInstance("cheap", cheap, &engine);
  }
  EXPECT_EQ(mgr.LambdaFor("join"), 1.1);
  EXPECT_EQ(mgr.LambdaFor("cheap"), 2.0);
}

TEST_F(PqoManagerTest, LambdaDuringWarmupIsOne) {
  // Contract (see LambdaFor's header doc): warm-up serves every instance
  // its freshly optimized plan, so the bound in force is exactly 1 — a
  // return of 0.0 is reserved for never-seen templates.
  PqoManagerOptions opts;
  opts.warmup_instances = 5;
  PqoManager mgr(opts);
  EngineContext engine(&db_, &optimizer_);
  EXPECT_EQ(mgr.LambdaFor("join"), 0.0);  // never seen
  mgr.OnInstance("join", JoinWi(0, 0.3, 0.3), &engine);
  EXPECT_EQ(mgr.LambdaFor("join"), 1.0);  // warming up
  for (int i = 1; i < 5; ++i) {
    mgr.OnInstance("join", JoinWi(i, 0.3, 0.3), &engine);
  }
  EXPECT_GT(mgr.LambdaFor("join"), 1.0);  // warm-up done, real bound
}

TEST_F(PqoManagerTest, WarmupWithNoObservedCostFallsBackToDefault) {
  // Every warm-up optimize fails (the oracle produces no usable cost), so
  // there is no average to divide by — FinishWarmup must fall back to
  // default_lambda instead of dividing by zero seen instances.
  PqoManagerOptions opts;
  opts.warmup_instances = 3;
  opts.default_lambda = 1.7;
  PqoManager mgr(opts);
  Tracer tracer(64);
  MetricsRegistry registry;
  mgr.SetObs(ObsHooks{&tracer, &registry});
  EngineContext engine(&db_, &optimizer_);
  engine.SetOracle([](const WorkloadInstance&) {
    auto r = std::make_shared<OptimizationResult>();
    r->cost = std::numeric_limits<double>::quiet_NaN();
    return r;
  });
  for (int i = 0; i < 3; ++i) {
    PlanChoice c = mgr.OnInstance("join", JoinWi(i, 0.3, 0.3), &engine);
    // A failed warm-up optimize yields no plan, so the decision is
    // explicitly degraded (no guarantee claimed) rather than "optimized".
    EXPECT_EQ(c.plan, nullptr);
    EXPECT_TRUE(c.degraded);
    EXPECT_FALSE(c.optimized);
  }
  EXPECT_EQ(mgr.LambdaFor("join"), 1.7);
  EXPECT_EQ(mgr.warmup_fallbacks(), 1);
  EXPECT_EQ(registry.Snapshot().CounterValue("pqo_manager.warmup_fallbacks"),
            1);
  EXPECT_EQ(registry.Snapshot().CounterValue("pqo.degraded_decisions"), 3);
  // The fallback is traced with the template it happened on.
  bool traced = false;
  for (const DecisionEvent& e : tracer.Snapshot()) {
    if (e.template_key == "join" &&
        e.technique.find("warmup-fallback") != std::string::npos) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);

  // The template recovered: with a working optimizer it serves normally.
  engine.SetOracle(nullptr);
  PlanChoice c = mgr.OnInstance("join", JoinWi(10, 0.3, 0.3), &engine);
  EXPECT_TRUE(c.optimized);
  ASSERT_NE(c.plan, nullptr);
}

TEST_F(PqoManagerTest, GlobalBudgetEnforcedAcrossTemplates) {
  PqoManagerOptions opts;
  opts.global_plan_budget = 3;
  PqoManager mgr(opts);
  Tracer tracer(1 << 12);
  MetricsRegistry registry;
  mgr.SetObs(ObsHooks{&tracer, &registry});
  EngineContext engine(&db_, &optimizer_);
  Pcg32 rng(11);
  const std::string keys[3] = {"t0", "t1", "t2"};
  for (int i = 0; i < 120; ++i) {
    mgr.OnInstance(keys[i % 3],
                   JoinWi(i, rng.UniformDouble(0.005, 0.95),
                          rng.UniformDouble(0.005, 0.95)),
                   &engine);
    EXPECT_LE(mgr.TotalPlansCached(), 3) << "after instance " << i;
  }
  EXPECT_EQ(mgr.NumTemplates(), 3);
  EXPECT_GT(mgr.global_evictions(), 0);
  EXPECT_EQ(registry.Snapshot().CounterValue("pqo_manager.global_evictions"),
            mgr.global_evictions());
  // Evictions surface as kEvicted events tagged with their template.
  int64_t evicted_events = 0;
  for (const DecisionEvent& e : tracer.Snapshot()) {
    if (e.outcome == DecisionOutcome::kEvicted) {
      ++evicted_events;
      EXPECT_FALSE(e.template_key.empty());
    }
  }
  EXPECT_GT(evicted_events, 0);
}

TEST_F(PqoManagerTest, GlobalMemoryBudgetBoundsFootprint) {
  PqoManagerOptions opts;
  opts.global_memory_bytes = 64 * 1024;
  PqoManager mgr(opts);
  EngineContext engine(&db_, &optimizer_);
  Pcg32 rng(13);
  const std::string keys[4] = {"t0", "t1", "t2", "t3"};
  for (int i = 0; i < 80; ++i) {
    mgr.OnInstance(keys[i % 4],
                   JoinWi(i, rng.UniformDouble(0.005, 0.95),
                          rng.UniformDouble(0.005, 0.95)),
                   &engine);
  }
  EXPECT_LE(mgr.TotalMemoryBytes(), 64 * 1024);
}

TEST_F(PqoManagerTest, InvalidateDropsCache) {
  PqoManager mgr(PqoManagerOptions{});
  EngineContext engine(&db_, &optimizer_);
  mgr.OnInstance("join", JoinWi(0, 0.3, 0.3), &engine);
  EXPECT_EQ(mgr.NumTemplates(), 1);
  mgr.InvalidateTemplate("join");
  EXPECT_EQ(mgr.NumTemplates(), 0);
  // Next instance re-optimizes.
  PlanChoice c = mgr.OnInstance("join", JoinWi(1, 0.3, 0.3), &engine);
  EXPECT_TRUE(c.optimized);
}

TEST_F(PqoManagerTest, PlanBudgetPropagates) {
  PqoManagerOptions opts;
  opts.plan_budget = 2;
  PqoManager mgr(opts);
  EngineContext engine(&db_, &optimizer_);
  Pcg32 rng(7);
  for (int i = 0; i < 150; ++i) {
    mgr.OnInstance("join",
                   JoinWi(i, rng.UniformDouble(0.005, 0.95),
                          rng.UniformDouble(0.005, 0.95)),
                   &engine);
  }
  EXPECT_LE(mgr.TotalPlansCached(), 2);
}

TEST_F(PqoManagerTest, StatuszJsonReportsTemplatesAndTotals) {
  PqoManagerOptions opts;
  opts.default_lambda = 1.5;
  opts.global_plan_budget = 10;
  PqoManager mgr(opts);
  EngineContext engine(&db_, &optimizer_);
  mgr.OnInstance("join", JoinWi(0, 0.3, 0.3), &engine);
  mgr.OnInstance("scan", ScanWi(1, 0.4), &engine);
  mgr.FlushAll();

  std::string json = mgr.StatuszJson();
  // Per-template rows with the effective lambda in force.
  EXPECT_NE(json.find("\"key\":\"join\""), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"lambda\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"warming_up\":false"), std::string::npos);
  // Totals include the configured budgets and cross-run counters.
  EXPECT_NE(json.find("\"totals\":{\"templates\":2"), std::string::npos);
  EXPECT_NE(json.find("\"global_plan_budget\":10"), std::string::npos);
  EXPECT_NE(json.find("\"trace_ring_drops\":0"), std::string::npos);
  // It round-trips through the strict JSONL-style field scanner the same
  // way /statusz consumers will read it: sanity-check plan totals agree
  // with the manager's own accessors.
  EXPECT_NE(json.find("\"plans\":" + std::to_string(mgr.TotalPlansCached())),
            std::string::npos);
}

TEST_F(PqoManagerTest, StatuszJsonEscapesTemplateKeys) {
  PqoManager mgr(PqoManagerOptions{});
  EngineContext engine(&db_, &optimizer_);
  mgr.OnInstance("select \"x\"\nfrom t", JoinWi(0, 0.3, 0.3), &engine);
  std::string json = mgr.StatuszJson();
  EXPECT_NE(json.find("select \\\"x\\\"\\nfrom t"), std::string::npos);
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // only the trailing one
}

}  // namespace
}  // namespace scrpqo

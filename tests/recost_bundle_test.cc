// RecostBundle property suite: the SIMD-batched bundle must agree with the
// flat program scan and the tree walker at every kernel tier, preserve the
// visitor's early-exit billing exactly, survive incremental store/evict
// patching (including tombstone-compaction rebuilds), and keep the warmed
// getPlan reuse path allocation-free (asserted through the ScratchArena
// watermark plus a global operator-new counter). Any divergence here either
// breaks the paper's lambda guarantee or silently re-introduces the
// per-decision overheads the bundle exists to remove.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/scratch_arena.h"
#include "common/thread_annotations.h"
#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "optimizer/recost_bundle.h"
#include "pqo/scr.h"
#include "tests/test_util.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

// ---------------------------------------------------------------------------
// Global operator-new counter. Replacing the global allocator in one TU
// covers the whole test binary; the override only counts and forwards, so
// every other test is unaffected. The zero-allocation test reads the
// counter around its measured window.
// ---------------------------------------------------------------------------

static std::atomic<int64_t> g_heap_allocs{0};

static void* CountedAlloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace scrpqo {
namespace {

/// Restores auto-detected tier dispatch when a test scope ends.
struct TierGuard {
  ~TierGuard() { RecostBundle::ForceTierForTest(SimdTier::kScalar4, false); }
};

/// Stats-only universe shared across the property instantiations.
struct Universe {
  std::vector<BenchmarkDb> dbs;
  std::vector<BoundTemplate> templates;

  Universe() {
    SchemaScale scale;
    scale.factor = 0.12;
    dbs = BuildAllDatabases(scale);
    TemplateGenOptions topts;
    topts.num_templates = 16;
    topts.max_tables = 4;
    templates = BuildTemplates(dbs, topts);
  }

  static Universe& Get() {
    static Universe* u = new Universe();
    return *u;
  }
};

/// Optimizes a few instances under `mask`'s operator set and returns their
/// cached plans behind stable addresses (the bundle keeps raw program
/// pointers).
std::vector<std::unique_ptr<CachedPlan>> BuildPlans(
    const BoundTemplate& bt, int mask, int per_mask, uint64_t seed,
    std::unique_ptr<Optimizer>* optimizer_out) {
  OptimizerOptions opts;
  opts.enable_merge_join = mask & 1;
  opts.enable_indexed_nlj = mask & 2;
  opts.enable_index_seek = mask & 4;
  auto optimizer = std::make_unique<Optimizer>(&bt.db->db, opts);
  InstanceGenOptions gen;
  gen.m = per_mask;
  gen.seed = seed;
  std::vector<std::unique_ptr<CachedPlan>> plans;
  for (const auto& wi : GenerateInstances(bt, gen)) {
    OptimizationResult r =
        optimizer->OptimizeWithSVector(wi.instance, wi.svector);
    if (r.plan == nullptr) continue;
    plans.push_back(std::make_unique<CachedPlan>(MakeCachedPlan(r)));
  }
  *optimizer_out = std::move(optimizer);
  return plans;
}

class RecostBundlePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const BoundTemplate& Template() {
    return Universe::Get().templates[static_cast<size_t>(GetParam())];
  }
};

TEST_P(RecostBundlePropertyTest, BundleMatchesFlatAndTreeAcrossTiers) {
  const BoundTemplate& bt = Template();
  Pcg32 rng(991 + static_cast<uint64_t>(GetParam()));
  int d = bt.tmpl->dimensions();
  TierGuard restore_tier;
  for (int mask = 0; mask < 8; ++mask) {
    std::unique_ptr<Optimizer> optimizer;
    auto plans = BuildPlans(bt, mask, /*per_mask=*/3,
                            5100 + static_cast<uint64_t>(GetParam() * 8 + mask),
                            &optimizer);
    ASSERT_FALSE(plans.empty());
    const CostParams& params = optimizer->cost_model().params();

    RecostBundle bundle;
    std::vector<int> ids;
    for (size_t i = 0; i < plans.size(); ++i) {
      ASSERT_TRUE(bundle.Add(static_cast<int>(i), &plans[i]->program));
      ids.push_back(static_cast<int>(i));
    }

    // A handful of re-cost points per mask: the optimized neighborhood
    // plus random draws over the whole selectivity cube.
    std::vector<SVector> points;
    for (int k = 0; k < 4; ++k) {
      SVector sv(static_cast<size_t>(d));
      for (int dim = 0; dim < d; ++dim) {
        sv[static_cast<size_t>(dim)] = rng.UniformDouble(0.001, 1.0);
      }
      points.push_back(std::move(sv));
    }
    points.emplace_back(static_cast<size_t>(d), 1e-7);
    points.emplace_back(static_cast<size_t>(d), 1.0);

    for (SimdTier tier : RecostBundle::AvailableTiers()) {
      RecostBundle::ForceTierForTest(tier);
      ASSERT_EQ(RecostBundle::ActiveTier(), tier);
      for (const SVector& sv : points) {
        std::vector<double> costs(ids.size());
        size_t visited = bundle.EvalMany(
            std::span<const int>(ids), sv, params,
            std::span<double>(costs),
            [](size_t, double) { return true; });
        ASSERT_EQ(visited, ids.size());
        for (size_t i = 0; i < ids.size(); ++i) {
          double flat = plans[i]->program.Run(sv, params);
          double tree =
              optimizer->cost_model().RecostTree(*plans[i]->plan, sv);
          EXPECT_NEAR(costs[i], flat, std::abs(flat) * 1e-9)
              << "tier=" << SimdTierName(tier) << " mask=" << mask
              << " plan=" << i;
          EXPECT_NEAR(costs[i], tree, std::abs(tree) * 1e-9)
              << "tier=" << SimdTierName(tier) << " mask=" << mask
              << " plan=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Templates, RecostBundlePropertyTest,
                         ::testing::Range(0, 16));

class RecostBundleTest : public ::testing::Test {
 protected:
  RecostBundleTest() : db_(testing::MakeSmallDatabase(20000, 500)) {}

  /// Join-template plans at spread-out operating points (stable addresses).
  std::vector<std::unique_ptr<CachedPlan>> MakePlans(int m) {
    auto tmpl = testing::MakeJoinTemplate();
    optimizer_ = std::make_unique<Optimizer>(&db_);
    Pcg32 rng(77);
    std::vector<std::unique_ptr<CachedPlan>> plans;
    for (int i = 0; i < m; ++i) {
      QueryInstance q = InstanceForSelectivities(
          db_, *tmpl,
          {rng.UniformDouble(0.001, 1.0), rng.UniformDouble(0.001, 1.0)});
      OptimizationResult r = optimizer_->Optimize(q);
      plans.push_back(std::make_unique<CachedPlan>(MakeCachedPlan(r)));
    }
    return plans;
  }

  Database db_;
  std::unique_ptr<Optimizer> optimizer_;
};

TEST_F(RecostBundleTest, EarlyExitBillsVisitedPlansOnly) {
  auto plans = MakePlans(10);
  const CostParams& params = optimizer_->cost_model().params();
  RecostBundle bundle;
  std::vector<int> ids;
  for (size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(bundle.Add(static_cast<int>(i), &plans[i]->program));
    ids.push_back(static_cast<int>(i));
  }
  SVector sv{0.25, 0.6};
  for (size_t stop_at = 0; stop_at < ids.size(); ++stop_at) {
    std::vector<double> costs(ids.size(), -1.0);
    size_t seen = 0;
    size_t visited = bundle.EvalMany(
        std::span<const int>(ids), sv, params, std::span<double>(costs),
        [&](size_t idx, double) {
          ++seen;
          return idx != stop_at;  // stop after visiting stop_at
        });
    // Billing parity with the legacy one-Run-per-plan loop: exactly the
    // plans the visitor saw, regardless of how many lanes were computed.
    EXPECT_EQ(visited, stop_at + 1);
    EXPECT_EQ(seen, stop_at + 1);
    for (size_t i = 0; i <= stop_at; ++i) {
      double flat = plans[i]->program.Run(sv, params);
      EXPECT_NEAR(costs[i], flat, std::abs(flat) * 1e-9);
    }
  }
}

TEST_F(RecostBundleTest, DuplicateIdsReuseTheGroupPass) {
  auto plans = MakePlans(4);
  const CostParams& params = optimizer_->cost_model().params();
  RecostBundle bundle;
  for (size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(bundle.Add(static_cast<int>(i), &plans[i]->program));
  }
  // The same plan requested several times (distinct instance entries can
  // share one cached plan) must yield identical costs per request.
  std::vector<int> ids = {2, 0, 2, 1, 0, 2};
  SVector sv{0.4, 0.1};
  std::vector<double> costs(ids.size());
  size_t visited =
      bundle.EvalMany(std::span<const int>(ids), sv, params,
                      std::span<double>(costs),
                      [](size_t, double) { return true; });
  EXPECT_EQ(visited, ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    double flat =
        plans[static_cast<size_t>(ids[i])]->program.Run(sv, params);
    EXPECT_NEAR(costs[i], flat, std::abs(flat) * 1e-9);
  }
}

TEST_F(RecostBundleTest, RejectsUnbundleablePrograms) {
  RecostBundle bundle;
  RecostProgram empty;
  EXPECT_FALSE(bundle.Add(0, &empty));
  EXPECT_FALSE(bundle.Contains(0));
  EXPECT_FALSE(bundle.Add(1, nullptr));
  EXPECT_EQ(bundle.num_plans(), 0);
}

TEST_F(RecostBundleTest, IncrementalPatchMatchesFreshBundle) {
  auto plans = MakePlans(12);
  const CostParams& params = optimizer_->cost_model().params();

  // Patched bundle: add everything, evict most of it (forcing the
  // tombstone compaction), then re-admit a few — the StoreOrReuse/evict
  // life cycle in miniature.
  RecostBundle patched;
  for (size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(patched.Add(static_cast<int>(i), &plans[i]->program));
  }
  for (int id : {1, 3, 5, 7, 9, 11, 2, 4}) patched.Remove(id);
  EXPECT_GE(patched.rebuilds(), 1) << "compaction should have triggered";
  for (int id : {3, 9}) {
    ASSERT_TRUE(
        patched.Add(id, &plans[static_cast<size_t>(id)]->program));
  }
  std::vector<int> live = {0, 6, 8, 10, 3, 9};
  for (int id : live) EXPECT_TRUE(patched.Contains(id));
  EXPECT_EQ(patched.num_plans(), static_cast<int>(live.size()));

  // Fresh bundle over the same survivors.
  RecostBundle fresh;
  for (int id : live) {
    ASSERT_TRUE(fresh.Add(id, &plans[static_cast<size_t>(id)]->program));
  }

  Pcg32 rng(55);
  for (int k = 0; k < 8; ++k) {
    SVector sv{rng.UniformDouble(0.001, 1.0), rng.UniformDouble(0.001, 1.0)};
    std::vector<double> got(live.size()), want(live.size());
    patched.EvalMany(std::span<const int>(live), sv, params,
                     std::span<double>(got),
                     [](size_t, double) { return true; });
    fresh.EvalMany(std::span<const int>(live), sv, params,
                   std::span<double>(want),
                   [](size_t, double) { return true; });
    for (size_t i = 0; i < live.size(); ++i) {
      double flat = plans[static_cast<size_t>(live[i])]->program.Run(
          sv, params);
      EXPECT_NEAR(got[i], flat, std::abs(flat) * 1e-9) << "patched, i=" << i;
      EXPECT_NEAR(want[i], flat, std::abs(flat) * 1e-9) << "fresh, i=" << i;
    }
  }
}

TEST_F(RecostBundleTest, RemoveIsTolerantAndClearResets) {
  auto plans = MakePlans(3);
  RecostBundle bundle;
  ASSERT_TRUE(bundle.Add(0, &plans[0]->program));
  bundle.Remove(42);  // never added: no-op
  EXPECT_EQ(bundle.num_plans(), 1);
  bundle.Clear();
  EXPECT_EQ(bundle.num_plans(), 0);
  EXPECT_FALSE(bundle.Contains(0));
  ASSERT_TRUE(bundle.Add(0, &plans[0]->program));
  EXPECT_EQ(bundle.num_plans(), 1);
}

TEST_F(RecostBundleTest, MemoryBytesGrowsWithContent) {
  auto plans = MakePlans(5);
  RecostBundle bundle;
  EXPECT_EQ(bundle.memory_bytes(), 0);
  ASSERT_TRUE(bundle.Add(0, &plans[0]->program));
  int64_t one = bundle.memory_bytes();
  EXPECT_GT(one, 0);
  for (size_t i = 1; i < plans.size(); ++i) {
    ASSERT_TRUE(bundle.Add(static_cast<int>(i), &plans[i]->program));
  }
  EXPECT_GE(bundle.memory_bytes(), one);
}

TEST_F(RecostBundleTest, SameTemplatePlansPackOntoFastPaths) {
  // Plans of one template bind the same sVector slots, so pack-time
  // classification must keep every cell off the general per-lane loop,
  // and a multi-block group of identical bindings must hoist its uniform
  // steps to the step-shared product (the binding-clustered placement
  // guarantee the kernel's fast paths rely on).
  auto tmpl = testing::MakeJoinTemplate();
  optimizer_ = std::make_unique<Optimizer>(&db_);
  std::vector<std::unique_ptr<CachedPlan>> plans;
  RecostBundle bundle;
  // Six copies of one operating point: one shape, identical bindings,
  // spilling past a single 4-lane block.
  QueryInstance q = InstanceForSelectivities(db_, *tmpl, {0.2, 0.3});
  for (int i = 0; i < 6; ++i) {
    OptimizationResult r = optimizer_->Optimize(q);
    plans.push_back(std::make_unique<CachedPlan>(MakeCachedPlan(r)));
    ASSERT_TRUE(bundle.Add(i, &plans.back()->program));
  }
  RecostBundle::PackStats st = bundle.pack_stats();
  EXPECT_EQ(st.cells_general, 0);
  EXPECT_GT(st.steps_total, 0);
  // Every step whose cells are uniform on one slot list must carry the
  // hoist; the join template's leaves bind slots, so at least one does.
  EXPECT_GT(st.steps_shared, 0);
}

// ---------------------------------------------------------------------------
// ComputeGlFast: the 4-lane unrolled selectivity check must agree with the
// scalar ComputeGl to 1e-9 relative (the lanes only reorder multiplies).
// ---------------------------------------------------------------------------

TEST(ComputeGlFastTest, MatchesScalarComputeGl) {
  Pcg32 rng(1234);
  for (int dims = 1; dims <= 19; ++dims) {
    for (int rep = 0; rep < 50; ++rep) {
      std::vector<double> from(static_cast<size_t>(dims));
      std::vector<double> to(static_cast<size_t>(dims));
      for (int i = 0; i < dims; ++i) {
        // Includes sub-floor values so the kSelectivityFloor clamp path is
        // exercised on both sides.
        from[static_cast<size_t>(i)] =
            rng.UniformDouble() < 0.1 ? 1e-12 : rng.UniformDouble(1e-6, 1.0);
        to[static_cast<size_t>(i)] =
            rng.UniformDouble() < 0.1 ? 0.0 : rng.UniformDouble(1e-6, 1.0);
      }
      GlFactors slow = ComputeGl(from, to);
      GlFactors fast = ComputeGlFast(from, to);
      EXPECT_NEAR(fast.g, slow.g, slow.g * 1e-9) << "dims=" << dims;
      EXPECT_NEAR(fast.l, slow.l, slow.l * 1e-9) << "dims=" << dims;
    }
  }
}

// ---------------------------------------------------------------------------
// Warmed getPlan reuse path performs zero heap allocations: the arena
// watermark stays flat AND the global operator-new counter stays flat
// across a window of reuse hits.
// ---------------------------------------------------------------------------

TEST(ScrZeroAllocTest, WarmedReusePathAllocatesNothing) {
  Database db = testing::MakeSmallDatabase(20000, 500);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  EngineContext engine(&db, &optimizer);
  ScrOptions opts;
  opts.lambda = 3.0;
  opts.use_spatial_index = true;
  Scr scr(opts);

  auto make_wi = [&](int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db, *tmpl, {s0, s1});
    wi.svector = ComputeSelectivityVector(db, wi.instance);
    return wi;
  };

  // Warm-up traffic: populate the cache, the kd-tree, and the bundle.
  Pcg32 rng(9);
  for (int i = 0; i < 60; ++i) {
    scr.OnInstance(make_wi(i, rng.UniformDouble(0.01, 0.95),
                           rng.UniformDouble(0.01, 0.95)),
                   &engine);
  }

  // Probes that resolve on the reuse path (hit or miss both stay inside
  // TryReuse — no optimizer call happens there). One priming pass grows
  // the arena to this workload's high-water mark.
  std::vector<WorkloadInstance> probes;
  Pcg32 prng(21);
  for (int i = 0; i < 16; ++i) {
    probes.push_back(make_wi(1000 + i, prng.UniformDouble(0.05, 0.9),
                             prng.UniformDouble(0.05, 0.9)));
  }
  int hits = 0;
  for (const auto& wi : probes) {
    PlanChoice choice;
    if (scr.TryReuse(wi, &engine, &choice)) ++hits;
  }
  ASSERT_GT(hits, 0) << "warm-up produced no reusable coverage";

  // Measured window: watermark and allocation count must not move.
  int64_t watermark_before = ScratchArena::Tls().watermark();
  int64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 20; ++rep) {
    for (const auto& wi : probes) {
      PlanChoice choice;
      (void)scr.TryReuse(wi, &engine, &choice);
    }
  }
  int64_t allocs_after = g_heap_allocs.load(std::memory_order_relaxed);
  int64_t watermark_after = ScratchArena::Tls().watermark();
  EXPECT_EQ(watermark_after, watermark_before)
      << "warmed reuse path grew the scratch arena";
  EXPECT_EQ(allocs_after, allocs_before)
      << "warmed reuse path hit the heap";
}

// ---------------------------------------------------------------------------
// Concurrency: EvalMany readers race a mutating writer under the
// PlanStore locking discipline (shared readers, exclusive rebuilds). Run
// under TSan by the concurrency CI job.
// ---------------------------------------------------------------------------

TEST(RecostBundleConcurrencyTest, RebuildRacesReaders) {
  Database db = testing::MakeSmallDatabase(20000, 500);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  const CostParams& params = optimizer.cost_model().params();
  Pcg32 rng(31);
  std::vector<std::unique_ptr<CachedPlan>> plans;
  for (int i = 0; i < 8; ++i) {
    QueryInstance q = InstanceForSelectivities(
        db, *tmpl,
        {rng.UniformDouble(0.001, 1.0), rng.UniformDouble(0.001, 1.0)});
    plans.push_back(
        std::make_unique<CachedPlan>(MakeCachedPlan(optimizer.Optimize(q))));
  }

  SharedMutex mu;
  RecostBundle bundle;
  std::vector<int> live_ids;
  {
    WriterMutexLock lock(mu);
    for (size_t i = 0; i < plans.size(); ++i) {
      ASSERT_TRUE(bundle.Add(static_cast<int>(i), &plans[i]->program));
      live_ids.push_back(static_cast<int>(i));
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> reads{0};

  auto reader = [&](uint64_t seed) {
    Pcg32 r(seed);
    while (!stop.load(std::memory_order_acquire)) {
      SVector sv{r.UniformDouble(0.001, 1.0), r.UniformDouble(0.001, 1.0)};
      ReaderMutexLock lock(mu);
      if (live_ids.empty()) continue;
      std::vector<double> costs(live_ids.size());
      bundle.EvalMany(std::span<const int>(live_ids), sv, params,
                      std::span<double>(costs),
                      [](size_t, double) { return true; });
      for (size_t i = 0; i < live_ids.size(); ++i) {
        double flat = plans[static_cast<size_t>(live_ids[i])]->program.Run(
            sv, params);
        if (std::abs(costs[i] - flat) > std::abs(flat) * 1e-9) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::thread r1(reader, 101), r2(reader, 202);
  // Writer: evict/re-admit cycles that repeatedly trip the tombstone
  // compaction (a full dense rebuild) while the readers are in flight.
  for (int cycle = 0; cycle < 300; ++cycle) {
    WriterMutexLock lock(mu);
    if (live_ids.size() > 2) {
      for (int k = 0; k < 3 && live_ids.size() > 2; ++k) {
        int victim = live_ids[static_cast<size_t>(cycle + k) %
                              live_ids.size()];
        bundle.Remove(victim);
        live_ids.erase(
            std::find(live_ids.begin(), live_ids.end(), victim));
      }
    } else {
      for (size_t i = 0; i < plans.size(); ++i) {
        int id = static_cast<int>(i);
        if (!bundle.Contains(id)) {
          ASSERT_TRUE(bundle.Add(id, &plans[i]->program));
          live_ids.push_back(id);
        }
      }
    }
  }
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(bundle.rebuilds(), 1);
}

}  // namespace
}  // namespace scrpqo

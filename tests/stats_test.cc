#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/histogram.h"

namespace scrpqo {
namespace {

std::vector<double> Sequential(int64_t n) {
  std::vector<double> v;
  v.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) v.push_back(static_cast<double>(i));
  return v;
}

double TrueSelectivity(const std::vector<double>& values, CompareOp op,
                       double c) {
  int64_t count = 0;
  for (double v : values) {
    switch (op) {
      case CompareOp::kLt:
        count += v < c;
        break;
      case CompareOp::kLe:
        count += v <= c;
        break;
      case CompareOp::kGt:
        count += v > c;
        break;
      case CompareOp::kGe:
        count += v >= c;
        break;
      case CompareOp::kEq:
        count += v == c;
        break;
    }
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

TEST(HistogramTest, EmptyInput) {
  EquiDepthHistogram h = EquiDepthHistogram::Build({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.EstimateSelectivity(CompareOp::kLe, 5.0), 0.0);
}

TEST(HistogramTest, BasicProperties) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(Sequential(1000), 16);
  EXPECT_EQ(h.row_count(), 1000);
  EXPECT_EQ(h.distinct_count(), 1000);
  EXPECT_EQ(h.min_value(), 0.0);
  EXPECT_EQ(h.max_value(), 999.0);
  EXPECT_LE(h.num_buckets(), 16u);
}

TEST(HistogramTest, SelectivityEndpoints) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(Sequential(1000), 16);
  EXPECT_EQ(h.EstimateSelectivity(CompareOp::kLe, -1.0), 0.0);
  EXPECT_EQ(h.EstimateSelectivity(CompareOp::kLe, 999.0), 1.0);
  EXPECT_EQ(h.EstimateSelectivity(CompareOp::kGt, 999.0), 0.0);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kGe, -1.0), 1.0, 1e-12);
}

TEST(HistogramTest, UniformMidpointIsHalf) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(Sequential(10000), 32);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLe, 4999.5), 0.5, 0.02);
}

TEST(HistogramTest, ComplementaryOperators) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(Sequential(1000), 16);
  for (double c : {10.0, 250.0, 777.0}) {
    double le = h.EstimateSelectivity(CompareOp::kLe, c);
    double gt = h.EstimateSelectivity(CompareOp::kGt, c);
    EXPECT_NEAR(le + gt, 1.0, 1e-9);
    double lt = h.EstimateSelectivity(CompareOp::kLt, c);
    double ge = h.EstimateSelectivity(CompareOp::kGe, c);
    EXPECT_NEAR(lt + ge, 1.0, 1e-9);
  }
}

TEST(HistogramTest, EqualitySelectivityUsesDistincts) {
  // 1000 rows, 10 distinct values => eq selectivity ~ 0.1.
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i % 10));
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 8);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kEq, 3.0), 0.1, 0.05);
  EXPECT_EQ(h.EstimateSelectivity(CompareOp::kEq, 55.0), 0.0);
}

TEST(HistogramTest, HeavyDuplicatesDoNotStraddleBuckets) {
  // 90% of rows share one value; bucket boundaries must stay well-defined.
  std::vector<double> values(9000, 42.0);
  for (int i = 0; i < 1000; ++i) values.push_back(100.0 + i);
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 16);
  double le42 = h.EstimateSelectivity(CompareOp::kLe, 42.0);
  EXPECT_NEAR(le42, 0.9, 0.02);
  double lt42 = h.EstimateSelectivity(CompareOp::kLt, 42.0);
  EXPECT_LT(lt42, 0.1);
}

TEST(HistogramTest, MonotoneInConstant) {
  Pcg32 rng(3);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.Normal(100, 25));
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 32);
  double prev = -1.0;
  for (double c = 0; c <= 200; c += 2.5) {
    double s = h.EstimateSelectivity(CompareOp::kLe, c);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(QuantileTest, RoundTripUniform) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(Sequential(10000), 64);
  for (double target : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double c = h.QuantileForSelectivity(CompareOp::kLe, target);
    EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLe, c), target, 0.01)
        << "target " << target;
  }
}

TEST(QuantileTest, RoundTripGreaterEqual) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(Sequential(10000), 64);
  for (double target : {0.05, 0.3, 0.7, 0.95}) {
    double c = h.QuantileForSelectivity(CompareOp::kGe, target);
    EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kGe, c), target, 0.01)
        << "target " << target;
  }
}

TEST(QuantileTest, ExtremeTargets) {
  EquiDepthHistogram h = EquiDepthHistogram::Build(Sequential(100), 8);
  double c0 = h.QuantileForSelectivity(CompareOp::kLe, 0.0);
  EXPECT_LT(h.EstimateSelectivity(CompareOp::kLe, c0), 0.02);
  double c1 = h.QuantileForSelectivity(CompareOp::kLe, 1.0);
  EXPECT_EQ(h.EstimateSelectivity(CompareOp::kLe, c1), 1.0);
}

TEST(ColumnStatsTest, SelectivityDelegatesToHistogram) {
  ColumnStats stats;
  stats.row_count = 100;
  stats.histogram = EquiDepthHistogram::Build(Sequential(100), 8);
  stats.distinct_count = stats.histogram.distinct_count();
  EXPECT_NEAR(stats.Selectivity(CompareOp::kLe, Value(int64_t{49})), 0.5,
              0.05);
  ColumnStats empty;
  EXPECT_EQ(empty.Selectivity(CompareOp::kLe, Value(int64_t{49})), 0.0);
}

/// Property test across distributions: histogram estimates track true
/// selectivities within a few percent, and quantile inversion round-trips.
struct DistCase {
  const char* name;
  int which;  // 0 uniform, 1 zipf, 2 normal, 3 few-distinct
};

class HistogramPropertyTest : public ::testing::TestWithParam<DistCase> {
 protected:
  std::vector<double> MakeValues() {
    Pcg32 rng(17);
    std::vector<double> values;
    const int n = 20000;
    switch (GetParam().which) {
      case 0:
        for (int i = 0; i < n; ++i)
          values.push_back(rng.UniformDouble(0, 1000));
        break;
      case 1: {
        ZipfSampler zipf(500, 1.1);
        for (int i = 0; i < n; ++i)
          values.push_back(static_cast<double>(zipf.Sample(&rng)));
        break;
      }
      case 2:
        for (int i = 0; i < n; ++i) values.push_back(rng.Normal(500, 120));
        break;
      case 3:
        for (int i = 0; i < n; ++i)
          values.push_back(static_cast<double>(rng.UniformInt(0, 12)));
        break;
    }
    return values;
  }
};

TEST_P(HistogramPropertyTest, EstimatesTrackTruth) {
  std::vector<double> values = MakeValues();
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 64);
  Pcg32 rng(5);
  double lo = h.min_value(), hi = h.max_value();
  for (int i = 0; i < 40; ++i) {
    double c = rng.UniformDouble(lo, hi);
    for (CompareOp op : {CompareOp::kLe, CompareOp::kGe}) {
      double est = h.EstimateSelectivity(op, c);
      double truth = TrueSelectivity(values, op, c);
      // Discrete domains concentrate mass on single values; uniform-spread
      // interpolation can miss by up to one value's mass there.
      double tol = GetParam().which == 3 ? 0.12 : 0.05;
      EXPECT_NEAR(est, truth, tol)
          << GetParam().name << " op=" << CompareOpName(op) << " c=" << c;
    }
  }
}

TEST_P(HistogramPropertyTest, QuantileInversionRoundTrips) {
  std::vector<double> values = MakeValues();
  EquiDepthHistogram h = EquiDepthHistogram::Build(values, 64);
  for (double target = 0.05; target <= 0.95; target += 0.09) {
    for (CompareOp op : {CompareOp::kLe, CompareOp::kGe}) {
      double c = h.QuantileForSelectivity(op, target);
      double est = h.EstimateSelectivity(op, c);
      // Skewed and few-distinct domains cannot hit arbitrary targets
      // exactly: a single heavy value can carry >10% of all rows.
      double tol = GetParam().which >= 1 ? 0.16 : 0.02;
      EXPECT_NEAR(est, target, tol)
          << GetParam().name << " op=" << CompareOpName(op);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramPropertyTest,
                         ::testing::Values(DistCase{"uniform", 0},
                                           DistCase{"zipf", 1},
                                           DistCase{"normal", 2},
                                           DistCase{"few_distinct", 3}),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace scrpqo

// Coverage for the remaining support surfaces: suite env configuration,
// report rendering, token rendering, and technique wiring details.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "common/math_util.h"
#include "pqo/opt_once.h"
#include "sql/lexer.h"
#include "workload/report.h"
#include "workload/suite.h"

namespace scrpqo {
namespace {

TEST(SuiteConfigTest, EnvOverrides) {
  ::setenv("SCRPQO_TEMPLATES", "7", 1);
  ::setenv("SCRPQO_M", "123", 1);
  ::setenv("SCRPQO_SCALE", "0.5", 1);
  ::setenv("SCRPQO_SEED", "99", 1);
  SuiteConfig c = SuiteConfig::FromEnv();
  EXPECT_EQ(c.num_templates, 7);
  EXPECT_EQ(c.m, 123);
  EXPECT_EQ(c.scale, 0.5);
  EXPECT_EQ(c.seed, 99u);
  ::unsetenv("SCRPQO_TEMPLATES");
  ::unsetenv("SCRPQO_M");
  ::unsetenv("SCRPQO_SCALE");
  ::unsetenv("SCRPQO_SEED");
  SuiteConfig d = SuiteConfig::FromEnv();
  EXPECT_EQ(d.num_templates, 90);
  EXPECT_EQ(d.m, 400);
}

TEST(ReportTest, SummaryRowRenders) {
  ::testing::internal::CaptureStdout();
  PrintSummaryRow("metric", Summarize({1.0, 2.0, 3.0, 4.0}));
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("metric"), std::string::npos);
  EXPECT_NE(out.find("avg=2.50"), std::string::npos);
  EXPECT_NE(out.find("max=4.00"), std::string::npos);
}

TEST(ReportTest, SortedCurvePrintsDeciles) {
  ::testing::internal::CaptureStdout();
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  PrintSortedCurve("curve", v);
  std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("curve"), std::string::npos);
  EXPECT_NE(out.find("100.00"), std::string::npos);  // the 100% decile
}

TEST(ReportTest, TableAlignsColumns) {
  ::testing::internal::CaptureStdout();
  PrintTableHeader({"first", "second"});
  PrintTableRow({"a", "b"});
  std::string out = ::testing::internal::GetCapturedStdout();
  // First column is 30 wide: "second" starts at offset 30 of line 1.
  size_t second = out.find("second");
  ASSERT_NE(second, std::string::npos);
  EXPECT_EQ(second, 30u);
}

TEST(ReportTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.23456, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(LexerTokenTest, ToStringRendersAllKinds) {
  auto r = Tokenize("abc 1.5 'str' , . * ( ) = < <= > >= ? $2");
  ASSERT_TRUE(r.ok());
  std::string all;
  for (const auto& t : r.ValueOrDie()) all += t.ToString() + " ";
  EXPECT_NE(all.find("abc"), std::string::npos);
  EXPECT_NE(all.find("'str'"), std::string::npos);
  EXPECT_NE(all.find("$2"), std::string::npos);
  EXPECT_NE(all.find("<end>"), std::string::npos);
}

TEST(TechniqueDefaultsTest, PeakDefaultsToCurrent) {
  // The base-class default for PeakPlansCached is NumPlansCached.
  OptOnce t;
  EXPECT_EQ(t.PeakPlansCached(), t.NumPlansCached());
}

TEST(SummarizeTest, SingleValue) {
  DistSummary s = Summarize({7.0});
  EXPECT_EQ(s.avg, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.p95, 7.0);
  EXPECT_EQ(s.max, 7.0);
}

TEST(SummarizeTest, Empty) {
  DistSummary s = Summarize({});
  EXPECT_EQ(s.avg, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

}  // namespace
}  // namespace scrpqo

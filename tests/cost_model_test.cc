#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"

namespace scrpqo {
namespace {

std::shared_ptr<PhysicalPlanNode> Scan(double base_rows,
                                       std::vector<PredSpec> preds = {}) {
  auto n = std::make_shared<PhysicalPlanNode>();
  n->kind = PhysicalOpKind::kTableScan;
  n->leaf.table_index = 0;
  n->leaf.table = "t";
  n->leaf.base_rows = base_rows;
  n->leaf.preds = std::move(preds);
  return n;
}

PredSpec ParamPred(int slot) {
  PredSpec p;
  p.column = "c";
  p.op = CompareOp::kLe;
  p.param_slot = slot;
  return p;
}

PredSpec LiteralPred(double sel) {
  PredSpec p;
  p.column = "c";
  p.op = CompareOp::kLe;
  p.literal_sel = sel;
  return p;
}

TEST(CostModelTest, PredSelectivityReadsSlotOrLiteral) {
  CostModel cm;
  SVector sv{0.3};
  EXPECT_EQ(cm.PredSelectivity(ParamPred(0), sv), 0.3);
  EXPECT_EQ(cm.PredSelectivity(LiteralPred(0.7), sv), 0.7);
}

TEST(CostModelTest, LeafSelectivityIsProduct) {
  CostModel cm;
  LeafInfo leaf;
  leaf.preds = {ParamPred(0), LiteralPred(0.5)};
  SVector sv{0.4};
  EXPECT_NEAR(cm.LeafSelectivity(leaf, sv), 0.2, 1e-12);
}

TEST(CostModelTest, TableScanCostIndependentOfSelectivity) {
  CostModel cm;
  auto scan = Scan(10000, {ParamPred(0)});
  cm.DeriveNode(scan.get(), {0.1});
  double c1 = scan->est_cost;
  double r1 = scan->est_rows;
  cm.DeriveNode(scan.get(), {0.9});
  EXPECT_EQ(scan->est_cost, c1);       // full scan reads everything anyway
  EXPECT_NEAR(scan->est_rows, 9.0 * r1, 1e-6);
}

TEST(CostModelTest, IndexSeekCostScalesLinearly) {
  CostModel cm;
  auto seek = Scan(100000, {ParamPred(0)});
  seek->kind = PhysicalOpKind::kIndexSeek;
  seek->leaf.index_column = "c";
  seek->leaf.seek_pred = 0;
  cm.DeriveNode(seek.get(), {0.01});
  double c_small = seek->est_cost;
  cm.DeriveNode(seek.get(), {0.02});
  double c_double = seek->est_cost;
  // Doubling selectivity must not grow cost by more than 2x (BCG with
  // f(alpha) = alpha), and should grow noticeably.
  EXPECT_LT(c_double, 2.0 * c_small * 1.0001);
  EXPECT_GT(c_double, 1.5 * c_small);
}

TEST(CostModelTest, SeekVsScanCrossover) {
  // At tiny selectivity a seek beats the scan; at high selectivity the
  // RID lookups make it lose. The optimizer needs this crossover to produce
  // distinct plans across the selectivity space.
  CostModel cm;
  auto scan = Scan(100000, {ParamPred(0)});
  auto seek = Scan(100000, {ParamPred(0)});
  seek->kind = PhysicalOpKind::kIndexSeek;
  seek->leaf.index_column = "c";
  seek->leaf.seek_pred = 0;

  cm.DeriveNode(scan.get(), {0.001});
  cm.DeriveNode(seek.get(), {0.001});
  EXPECT_LT(seek->est_cost, scan->est_cost);

  cm.DeriveNode(scan.get(), {0.9});
  cm.DeriveNode(seek.get(), {0.9});
  EXPECT_GT(seek->est_cost, scan->est_cost);
}

TEST(CostModelTest, HashJoinCostAdditiveInInputs) {
  CostModel cm;
  SVector sv{};
  auto mk = [&](double lrows, double rrows) {
    auto l = Scan(lrows);
    auto r = Scan(rrows);
    cm.DeriveNode(l.get(), sv);
    cm.DeriveNode(r.get(), sv);
    auto hj = std::make_shared<PhysicalPlanNode>();
    hj->kind = PhysicalOpKind::kHashJoin;
    hj->children = {l, r};
    hj->join.join_sel = 1e-4;
    cm.DeriveNode(hj.get(), sv);
    return hj->est_local_cost;
  };
  double base = mk(10000, 10000);
  double double_probe = mk(20000, 10000);
  // s1 + s2 shape: doubling one input grows local cost by < 2x.
  EXPECT_LT(double_probe, 2.0 * base);
  EXPECT_GT(double_probe, base);
}

TEST(CostModelTest, NaiveNljCostMultiplicative) {
  CostModel cm;
  SVector sv{};
  auto mk = [&](double lrows, double rrows) {
    auto l = Scan(lrows);
    auto r = Scan(rrows);
    cm.DeriveNode(l.get(), sv);
    cm.DeriveNode(r.get(), sv);
    auto nlj = std::make_shared<PhysicalPlanNode>();
    nlj->kind = PhysicalOpKind::kNaiveNestedLoopsJoin;
    nlj->children = {l, r};
    nlj->join.join_sel = 1e-4;
    cm.DeriveNode(nlj.get(), sv);
    return nlj->est_cost;
  };
  double base = mk(1000, 1000);
  double quad = mk(2000, 2000);
  // s1 * s2 shape: doubling both inputs roughly quadruples cost.
  EXPECT_GT(quad, 3.0 * base);
}

TEST(CostModelTest, SortSpillDiscontinuity) {
  CostModel cm;
  double mem = cm.params().memory_rows;
  auto below = Scan(mem * 0.99);
  auto above = Scan(mem * 1.01);
  SVector sv{};
  cm.DeriveNode(below.get(), sv);
  cm.DeriveNode(above.get(), sv);
  auto mk_sort = [&](std::shared_ptr<PhysicalPlanNode> child) {
    auto s = std::make_shared<PhysicalPlanNode>();
    s->kind = PhysicalOpKind::kSort;
    s->sort_key = SortKey{0, "c"};
    s->children = {child};
    cm.DeriveNode(s.get(), sv);
    return s->est_local_cost;
  };
  double c_below = mk_sort(below);
  double c_above = mk_sort(above);
  // The 2% input growth must produce a much larger cost jump (spill IO) —
  // this is a deliberate BCG-violation source (paper Section 5.4).
  EXPECT_GT(c_above, 1.5 * c_below);
}

TEST(CostModelTest, AggregateOutputCappedByDistinct) {
  CostModel cm;
  auto child = Scan(50000);
  SVector sv{};
  cm.DeriveNode(child.get(), sv);
  auto agg = std::make_shared<PhysicalPlanNode>();
  agg->kind = PhysicalOpKind::kHashAggregate;
  agg->children = {child};
  agg->agg.group_distinct = 20;
  cm.DeriveNode(agg.get(), sv);
  EXPECT_EQ(agg->est_rows, 20.0);
}

TEST(CostModelTest, RecostTreeMatchesDeriveNode) {
  CostModel cm;
  SVector sv{0.2};
  auto l = Scan(10000, {ParamPred(0)});
  auto r = Scan(500);
  cm.DeriveNode(l.get(), sv);
  cm.DeriveNode(r.get(), sv);
  auto hj = std::make_shared<PhysicalPlanNode>();
  hj->kind = PhysicalOpKind::kHashJoin;
  hj->children = {l, r};
  hj->join.join_sel = 1e-3;
  cm.DeriveNode(hj.get(), sv);
  EXPECT_NEAR(cm.RecostTree(*hj, sv), hj->est_cost, 1e-9);
}

/// BCG property sweep (paper Section 5.4): for linear-shaped operators,
/// scaling one selectivity dimension by alpha scales plan cost by at most
/// alpha (f(alpha) = alpha), and cost is monotone (PCM).
class BcgPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(BcgPropertyTest, ScanAndJoinRespectBcg) {
  CostModel cm;
  double alpha = GetParam();
  auto l = Scan(20000, {ParamPred(0)});
  auto r = Scan(3000, {ParamPred(1)});
  auto hj = std::make_shared<PhysicalPlanNode>();
  hj->kind = PhysicalOpKind::kHashJoin;
  hj->children = {l, r};
  hj->join.join_sel = 1e-3;

  SVector base{0.05, 0.1};
  cm.DeriveNode(l.get(), base);
  cm.DeriveNode(r.get(), base);
  cm.DeriveNode(hj.get(), base);
  double c0 = hj->est_cost;

  for (int dim = 0; dim < 2; ++dim) {
    SVector scaled = base;
    scaled[static_cast<size_t>(dim)] *= alpha;
    double c1 = cm.RecostTree(*hj, scaled);
    EXPECT_GE(c1, c0 * 0.999) << "PCM violated in dim " << dim;
    EXPECT_LE(c1, alpha * c0 * 1.001) << "BCG violated in dim " << dim;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, BcgPropertyTest,
                         ::testing::Values(1.5, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace scrpqo

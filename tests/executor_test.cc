#include <gtest/gtest.h>

#include <set>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : db_(testing::MakeSmallDatabase(3000, 150)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  QueryInstance Instance(double s0, double s1) {
    return InstanceForSelectivities(db_, *tmpl_, {s0, s1});
  }

  /// Brute-force reference: row count of the filtered join.
  int64_t ReferenceJoinCount(const QueryInstance& q) {
    const TableData& fact = db_.GetTableData("fact");
    const TableData& dim = db_.GetTableData("dim");
    double p0 = q.param(0).AsDouble();
    double p1 = q.param(1).AsDouble();
    const ColumnData& f_dim = fact.column("f_dim");
    const ColumnData& f_value = fact.column("f_value");
    const ColumnData& d_key = dim.column("d_key");
    const ColumnData& d_attr = dim.column("d_attr");
    int64_t count = 0;
    for (int64_t i = 0; i < fact.row_count(); ++i) {
      if (f_value.GetDouble(i) > p0) continue;
      for (int64_t j = 0; j < dim.row_count(); ++j) {
        if (d_attr.GetDouble(j) > p1) continue;
        if (f_dim.GetDouble(i) == d_key.GetDouble(j)) ++count;
      }
    }
    return count;
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(ExecutorTest, OptimalPlanMatchesBruteForce) {
  for (auto [s0, s1] : {std::make_pair(0.05, 0.5), std::make_pair(0.5, 0.9),
                        std::make_pair(0.9, 0.1)}) {
    QueryInstance q = Instance(s0, s1);
    OptimizationResult r = optimizer_.Optimize(q);
    ExecutionResult exec = ExecutePlan(db_, q, *r.plan);
    EXPECT_EQ(exec.rows, ReferenceJoinCount(q))
        << "s0=" << s0 << " s1=" << s1 << "\n"
        << r.plan->ToString();
  }
}

TEST_F(ExecutorTest, AllJoinAlgorithmsAgree) {
  // Force different physical spaces and check identical results — the
  // classic result-equivalence property for executor operators.
  QueryInstance q = Instance(0.15, 0.6);
  std::set<int64_t> row_counts;
  std::set<uint64_t> checksums;
  for (int mask = 0; mask < 8; ++mask) {
    OptimizerOptions opts;
    opts.enable_merge_join = mask & 1;
    opts.enable_indexed_nlj = mask & 2;
    opts.enable_index_seek = mask & 4;
    Optimizer optimizer(&db_, opts);
    OptimizationResult r = optimizer.Optimize(q);
    ExecutionResult exec = ExecutePlan(db_, q, *r.plan);
    row_counts.insert(exec.rows);
    checksums.insert(exec.checksum);
  }
  EXPECT_EQ(row_counts.size(), 1u);
  EXPECT_EQ(checksums.size(), 1u);
}

TEST_F(ExecutorTest, CachedPlanExecutesForOtherInstances) {
  // A plan optimized for qa, executed for qb, must produce qb's result —
  // parameters bind at execution time (plan-reuse correctness).
  QueryInstance qa = Instance(0.1, 0.5);
  QueryInstance qb = Instance(0.6, 0.2);
  OptimizationResult ra = optimizer_.Optimize(qa);
  ExecutionResult exec = ExecutePlan(db_, qb, *ra.plan);
  EXPECT_EQ(exec.rows, ReferenceJoinCount(qb));
}

TEST_F(ExecutorTest, SingleTableScan) {
  auto scan_tmpl = testing::MakeScanTemplate();
  QueryInstance q = InstanceForSelectivities(db_, *scan_tmpl, {0.25});
  OptimizationResult r = optimizer_.Optimize(q);
  ExecutionResult exec = ExecutePlan(db_, q, *r.plan);

  const ColumnData& f_value = db_.GetTableData("fact").column("f_value");
  double p0 = q.param(0).AsDouble();
  int64_t expected = 0;
  for (int64_t i = 0; i < f_value.size(); ++i) {
    if (f_value.GetDouble(i) <= p0) ++expected;
  }
  EXPECT_EQ(exec.rows, expected);
}

TEST_F(ExecutorTest, EmptyResultHandled) {
  auto scan_tmpl = testing::MakeScanTemplate();
  QueryInstance q(scan_tmpl.get(), {Value(int64_t{-10})});
  OptimizationResult r = optimizer_.Optimize(q);
  ExecutionResult exec = ExecutePlan(db_, q, *r.plan);
  EXPECT_EQ(exec.rows, 0);
  EXPECT_EQ(exec.checksum, 0u);
}

TEST_F(ExecutorTest, AggregatePlanCountsGroups) {
  QueryTemplate tmpl("agg_q", {"fact", "dim"});
  JoinEdge e;
  e.left_table = 0;
  e.left_column = "f_dim";
  e.right_table = 1;
  e.right_column = "d_key";
  tmpl.AddJoin(e);
  PredicateTemplate p;
  p.table_index = 0;
  p.column = "f_value";
  p.op = CompareOp::kLe;
  p.param_slot = 0;
  ASSERT_TRUE(tmpl.AddPredicate(std::move(p)).ok());
  AggregateSpec agg;
  agg.enabled = true;
  agg.group_table = 1;
  agg.group_column = "d_attr";
  tmpl.SetAggregate(agg);

  QueryInstance q = InstanceForSelectivities(db_, tmpl, {0.5});
  OptimizationResult r = optimizer_.Optimize(q);
  ExecutionResult exec = ExecutePlan(db_, q, *r.plan);

  // Reference: distinct d_attr values among joined rows.
  const TableData& fact = db_.GetTableData("fact");
  const TableData& dim = db_.GetTableData("dim");
  double p0 = q.param(0).AsDouble();
  std::set<double> groups;
  for (int64_t i = 0; i < fact.row_count(); ++i) {
    if (fact.column("f_value").GetDouble(i) > p0) continue;
    int64_t d = fact.column("f_dim").GetValue(i).int64();
    groups.insert(dim.column("d_attr").GetDouble(d));
  }
  EXPECT_EQ(exec.rows, static_cast<int64_t>(groups.size()))
      << r.plan->ToString();
}

TEST_F(ExecutorTest, ChecksumOrderIndependent) {
  // Same logical result through different plans yields the same checksum
  // (it is a sum over per-row hashes).
  QueryInstance q = Instance(0.3, 0.7);
  OptimizerOptions hash_only;
  hash_only.enable_merge_join = false;
  hash_only.enable_indexed_nlj = false;
  Optimizer o1(&db_, hash_only);
  OptimizerOptions nlj_only;
  nlj_only.enable_merge_join = false;
  Optimizer o2(&db_, nlj_only);
  ExecutionResult e1 = ExecutePlan(db_, q, *o1.Optimize(q).plan);
  ExecutionResult e2 = ExecutePlan(db_, q, *o2.Optimize(q).plan);
  EXPECT_EQ(e1.rows, e2.rows);
  EXPECT_EQ(e1.checksum, e2.checksum);
}

/// Property sweep over the selectivity grid: optimizer plan output always
/// matches brute force.
class ExecutorGridTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ExecutorGridTest, MatchesBruteForce) {
  static Database db = testing::MakeSmallDatabase(1500, 80, 21);
  static auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  auto [s0, s1] = GetParam();
  QueryInstance q = InstanceForSelectivities(db, *tmpl, {s0, s1});
  OptimizationResult r = optimizer.Optimize(q);
  ExecutionResult exec = ExecutePlan(db, q, *r.plan);

  const TableData& fact = db.GetTableData("fact");
  const TableData& dim = db.GetTableData("dim");
  double p0 = q.param(0).AsDouble();
  double p1 = q.param(1).AsDouble();
  int64_t expected = 0;
  for (int64_t i = 0; i < fact.row_count(); ++i) {
    if (fact.column("f_value").GetDouble(i) > p0) continue;
    int64_t d = fact.column("f_dim").GetValue(i).int64();
    if (dim.column("d_attr").GetDouble(d) <= p1) ++expected;
  }
  EXPECT_EQ(exec.rows, expected) << r.plan->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExecutorGridTest,
    ::testing::Values(std::make_pair(0.01, 0.01), std::make_pair(0.01, 0.95),
                      std::make_pair(0.2, 0.4), std::make_pair(0.5, 0.5),
                      std::make_pair(0.8, 0.1), std::make_pair(0.95, 0.95)));

}  // namespace
}  // namespace scrpqo

// Independent optimality check: a brute-force enumerator generates every
// plan in a reference subspace (all join orders x all access paths x all
// join algorithms, no property machinery beyond explicit sorts) and costs
// them with the same CostModel. The memo optimizer must never be beaten by
// any enumerated plan.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "optimizer/optimizer.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

/// Brute-force enumerator over bushy join trees of the template's tables.
class ExhaustiveEnumerator {
 public:
  ExhaustiveEnumerator(const Database& db, const QueryTemplate& tmpl,
                       const SVector& sv, const CostModel& cm)
      : db_(db), tmpl_(tmpl), sv_(sv), cm_(cm) {}

  /// Minimum cost over the enumerated space.
  double MinCost() {
    uint32_t full = (1u << tmpl_.num_tables()) - 1;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& plan : PlansFor(full)) {
      best = std::min(best, plan->est_cost);
      ++plans_costed_;
    }
    return best;
  }

  int64_t plans_costed() const { return plans_costed_; }

 private:
  using NodePtr = std::shared_ptr<PhysicalPlanNode>;

  LeafInfo MakeLeafInfo(int t) {
    LeafInfo li;
    li.table_index = t;
    li.table = tmpl_.tables()[static_cast<size_t>(t)];
    const TableDef& def = db_.catalog().GetTable(li.table);
    li.base_rows = static_cast<double>(def.row_count);
    for (int pi : tmpl_.PredicatesOnTable(t)) {
      const PredicateTemplate& p = tmpl_.predicates()[static_cast<size_t>(pi)];
      PredSpec spec;
      spec.column = p.column;
      spec.op = p.op;
      spec.param_slot = p.param_slot;
      if (!p.parameterized()) {
        spec.literal = p.literal;
        spec.literal_sel = db_.catalog()
                               .GetColumnStats(li.table, p.column)
                               .Selectivity(p.op, p.literal);
      }
      li.preds.push_back(std::move(spec));
    }
    return li;
  }

  std::vector<NodePtr> LeafPlans(int t) {
    std::vector<NodePtr> out;
    LeafInfo li = MakeLeafInfo(t);
    const TableDef& def = db_.catalog().GetTable(li.table);
    auto scan = std::make_shared<PhysicalPlanNode>();
    scan->kind = PhysicalOpKind::kTableScan;
    scan->leaf = li;
    cm_.DeriveNode(scan.get(), sv_);
    out.push_back(scan);
    for (const auto& idx : def.indexes) {
      for (size_t pi = 0; pi < li.preds.size(); ++pi) {
        if (li.preds[pi].column != idx.column) continue;
        auto seek = std::make_shared<PhysicalPlanNode>();
        seek->kind = PhysicalOpKind::kIndexSeek;
        seek->leaf = li;
        seek->leaf.index_column = idx.column;
        seek->leaf.seek_pred = static_cast<int>(pi);
        seek->output_order = SortKey{t, idx.column};
        cm_.DeriveNode(seek.get(), sv_);
        out.push_back(seek);
      }
    }
    return out;
  }

  std::vector<JoinEdge> ConnectingEdges(uint32_t a, uint32_t b,
                                        double* sel) {
    std::vector<JoinEdge> out;
    *sel = 1.0;
    for (const auto& e : tmpl_.joins()) {
      bool la = (a >> e.left_table) & 1u, ra = (a >> e.right_table) & 1u;
      bool lb = (b >> e.left_table) & 1u, rb = (b >> e.right_table) & 1u;
      JoinEdge normalized = e;
      bool connects = false;
      if (la && rb) {
        connects = true;
      } else if (ra && lb) {
        std::swap(normalized.left_table, normalized.right_table);
        std::swap(normalized.left_column, normalized.right_column);
        connects = true;
      }
      if (connects) {
        const std::string& lt =
            tmpl_.tables()[static_cast<size_t>(e.left_table)];
        const std::string& rt =
            tmpl_.tables()[static_cast<size_t>(e.right_table)];
        double dl = static_cast<double>(
            db_.catalog().GetColumnStats(lt, e.left_column).distinct_count);
        double dr = static_cast<double>(
            db_.catalog().GetColumnStats(rt, e.right_column).distinct_count);
        *sel /= std::max(std::max(dl, dr), 1.0);
        out.push_back(normalized);
      }
    }
    return out;
  }

  NodePtr SortOn(NodePtr child, const SortKey& key) {
    auto s = std::make_shared<PhysicalPlanNode>();
    s->kind = PhysicalOpKind::kSort;
    s->sort_key = key;
    s->output_order = key;
    s->children = {child};
    cm_.DeriveNode(s.get(), sv_);
    return s;
  }

  std::vector<NodePtr> PlansFor(uint32_t set) {
    auto it = memo_.find(set);
    if (it != memo_.end()) return it->second;
    std::vector<NodePtr> out;
    if ((set & (set - 1)) == 0) {
      int t = 0;
      while (!((set >> t) & 1u)) ++t;
      out = LeafPlans(t);
    } else {
      for (uint32_t sub = (set - 1) & set; sub != 0; sub = (sub - 1) & set) {
        uint32_t rest = set & ~sub;
        double sel;
        std::vector<JoinEdge> edges = ConnectingEdges(sub, rest, &sel);
        if (edges.empty()) continue;
        for (const auto& l : PlansFor(sub)) {
          for (const auto& r : PlansFor(rest)) {
            // Hash join.
            auto hj = std::make_shared<PhysicalPlanNode>();
            hj->kind = PhysicalOpKind::kHashJoin;
            hj->children = {l, r};
            hj->join.edges = edges;
            hj->join.join_sel = sel;
            cm_.DeriveNode(hj.get(), sv_);
            out.push_back(hj);
            // Merge join with explicit sorts on the first edge.
            SortKey lk{edges[0].left_table, edges[0].left_column};
            SortKey rk{edges[0].right_table, edges[0].right_column};
            NodePtr ls = (l->output_order.has_value() &&
                          *l->output_order == lk)
                             ? l
                             : SortOn(l, lk);
            NodePtr rs = (r->output_order.has_value() &&
                          *r->output_order == rk)
                             ? r
                             : SortOn(r, rk);
            auto mj = std::make_shared<PhysicalPlanNode>();
            mj->kind = PhysicalOpKind::kMergeJoin;
            mj->children = {ls, rs};
            mj->join.edges = edges;
            mj->join.join_sel = sel;
            mj->output_order = lk;
            cm_.DeriveNode(mj.get(), sv_);
            out.push_back(mj);
          }
        }
      }
    }
    memo_[set] = out;
    return out;
  }

  const Database& db_;
  const QueryTemplate& tmpl_;
  const SVector& sv_;
  const CostModel& cm_;
  std::map<uint32_t, std::vector<NodePtr>> memo_;
  int64_t plans_costed_ = 0;
};

class ExhaustiveTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ExhaustiveTest, OptimizerNeverBeatenByEnumeration) {
  static Database db = testing::MakeSmallDatabase(20000, 500);
  static auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  auto [s0, s1] = GetParam();
  QueryInstance q = InstanceForSelectivities(db, *tmpl, {s0, s1});
  OptimizationResult r = optimizer.Optimize(q);

  ExhaustiveEnumerator enumerator(db, *tmpl, r.svector,
                                  optimizer.cost_model());
  double brute = enumerator.MinCost();
  EXPECT_GT(enumerator.plans_costed(), 4);
  // The optimizer's space is a superset of the enumerated one (it also has
  // indexed NLJ etc.), so its winner must cost no more.
  EXPECT_LE(r.cost, brute * 1.000001)
      << "optimizer " << r.cost << " vs brute force " << brute << "\n"
      << r.plan->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveTest,
    ::testing::Values(std::make_pair(0.002, 0.002),
                      std::make_pair(0.002, 0.8), std::make_pair(0.05, 0.3),
                      std::make_pair(0.3, 0.05), std::make_pair(0.5, 0.5),
                      std::make_pair(0.9, 0.9), std::make_pair(0.8, 0.01),
                      std::make_pair(0.15, 0.95)));

}  // namespace
}  // namespace scrpqo

// Robustness sweeps: random and mutated inputs to the SQL front end and the
// plan deserializer must never crash or corrupt state — they either parse
// or fail with a clean Status.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_serde.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

std::string RandomString(Pcg32* rng, int max_len) {
  // Characters the lexers care about, plus noise.
  static const char kAlphabet[] =
      "abcXYZ019 _.,*()<>=?$'\"\\\n\t;:+-{}[]";
  int len = static_cast<int>(rng->UniformInt(0, max_len));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng->UniformInt(
        0, static_cast<int64_t>(sizeof(kAlphabet)) - 2)]);
  }
  return s;
}

TEST(FuzzTest, LexerNeverCrashes) {
  Pcg32 rng(1);
  for (int i = 0; i < 2000; ++i) {
    auto r = Tokenize(RandomString(&rng, 120));
    if (r.ok()) {
      EXPECT_EQ(r.ValueOrDie().back().type, TokenType::kEnd);
    }
  }
}

TEST(FuzzTest, ParserNeverCrashes) {
  Database db = testing::MakeSmallDatabase(200, 20);
  Pcg32 rng(2);
  for (int i = 0; i < 1000; ++i) {
    auto r = ParseQueryTemplate(db.catalog(), RandomString(&rng, 150));
    // Random garbage should essentially never parse; if it does, the
    // result must still be a valid connected template.
    if (r.ok()) {
      EXPECT_TRUE(r.ValueOrDie()->IsJoinGraphConnected());
    }
  }
}

TEST(FuzzTest, ParserSurvivesMutatedValidSql) {
  Database db = testing::MakeSmallDatabase(200, 20);
  const std::string base =
      "SELECT * FROM fact, dim WHERE fact.f_dim = dim.d_key AND "
      "fact.f_value <= ? AND dim.d_attr >= ?";
  Pcg32 rng(3);
  int parsed = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1, '?');
          break;
        default:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
      }
    }
    auto r = ParseQueryTemplate(db.catalog(), mutated);
    if (r.ok()) ++parsed;
  }
  // Some mutations stay valid; most must not — and none may crash.
  EXPECT_LT(parsed, 1000);
}

TEST(FuzzTest, PlanDeserializerNeverCrashes) {
  Database db = testing::MakeSmallDatabase(2000, 100);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  OptimizationResult r = optimizer.Optimize(
      InstanceForSelectivities(db, *tmpl, {0.3, 0.5}));
  std::string valid = SerializePlan(*r.plan);

  Pcg32 rng(4);
  for (int i = 0; i < 1000; ++i) {
    std::string mutated = valid;
    int edits = 1 + static_cast<int>(rng.UniformInt(0, 5));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          mutated.erase(pos, 1);
          break;
        case 1:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.UniformInt(32, 126)));
          break;
        default:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
      }
    }
    auto parsed = DeserializePlan(mutated);
    // Either a clean failure or a structurally sound plan.
    if (parsed.ok()) {
      EXPECT_GE(parsed.ValueOrDie()->NodeCount(), 1);
    }
  }
}

TEST(FuzzTest, PlanDeserializerRandomGarbage) {
  Pcg32 rng(5);
  for (int i = 0; i < 2000; ++i) {
    auto r = DeserializePlan(RandomString(&rng, 200));
    EXPECT_FALSE(r.ok());  // random text is never a plan
  }
}

}  // namespace
}  // namespace scrpqo

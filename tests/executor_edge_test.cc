// Executor edge cases: empty inputs per operator, duplicate-key runs in
// merge join, ordered output of index access, and iterator re-Open
// behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ExecutorEdgeTest()
      : db_(testing::MakeSmallDatabase(2000, 100)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  /// Builds the plan tree for a specific optimizer subspace.
  PlanPtr PlanWith(const QueryInstance& q, bool merge, bool inlj,
                   bool seek) {
    OptimizerOptions opts;
    opts.enable_merge_join = merge;
    opts.enable_indexed_nlj = inlj;
    opts.enable_index_seek = seek;
    opts.enable_naive_nlj = !merge && !inlj;  // force naive NLJ sometimes
    Optimizer o(&db_, opts);
    return o.Optimize(q).plan;
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(ExecutorEdgeTest, EmptyProbeSideHashJoin) {
  // Parameter below the column minimum: zero fact rows qualify.
  QueryInstance q(tmpl_.get(), {Value(int64_t{-1}), Value(int64_t{100})});
  PlanPtr plan = PlanWith(q, false, false, false);
  ExecutionResult r = ExecutePlan(db_, q, *plan);
  EXPECT_EQ(r.rows, 0);
}

TEST_F(ExecutorEdgeTest, EmptyBuildSideHashJoin) {
  QueryInstance q(tmpl_.get(), {Value(int64_t{20000}), Value(int64_t{-1})});
  PlanPtr plan = PlanWith(q, false, false, false);
  ExecutionResult r = ExecutePlan(db_, q, *plan);
  EXPECT_EQ(r.rows, 0);
}

TEST_F(ExecutorEdgeTest, EmptyInputsMergeJoin) {
  QueryInstance q(tmpl_.get(), {Value(int64_t{-1}), Value(int64_t{-1})});
  PlanPtr plan = PlanWith(q, true, false, false);
  ExecutionResult r = ExecutePlan(db_, q, *plan);
  EXPECT_EQ(r.rows, 0);
}

TEST_F(ExecutorEdgeTest, EmptyOuterIndexedNlj) {
  QueryInstance q(tmpl_.get(), {Value(int64_t{-1}), Value(int64_t{100})});
  PlanPtr plan = PlanWith(q, false, true, true);
  ExecutionResult r = ExecutePlan(db_, q, *plan);
  EXPECT_EQ(r.rows, 0);
}

TEST_F(ExecutorEdgeTest, MergeJoinHandlesDuplicateKeyRuns) {
  // fact.f_dim is a many-to-one FK into dim: duplicate keys on the fact
  // side are the norm. Compare merge-join to hash-join results exactly.
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.8, 0.9});
  ExecutionResult mj = ExecutePlan(db_, q, *PlanWith(q, true, false, false));
  ExecutionResult hj =
      ExecutePlan(db_, q, *PlanWith(q, false, false, false));
  EXPECT_GT(mj.rows, 0);
  EXPECT_EQ(mj.rows, hj.rows);
  EXPECT_EQ(mj.checksum, hj.checksum);
}

TEST_F(ExecutorEdgeTest, IndexAccessProducesKeyOrder) {
  auto scan_tmpl = testing::MakeScanTemplate();
  QueryInstance q = InstanceForSelectivities(db_, *scan_tmpl, {0.4});
  OptimizationResult r = optimizer_.Optimize(q);
  // Find (or construct) an index-seek leaf for fact.f_value.
  auto seek = std::make_shared<PhysicalPlanNode>();
  seek->kind = PhysicalOpKind::kIndexSeek;
  seek->leaf.table_index = 0;
  seek->leaf.table = "fact";
  seek->leaf.base_rows = 2000;
  PredSpec p;
  p.column = "f_value";
  p.op = CompareOp::kLe;
  p.param_slot = 0;
  seek->leaf.preds.push_back(p);
  seek->leaf.index_column = "f_value";
  seek->leaf.seek_pred = 0;

  auto it = BuildIterator(db_, q, *seek);
  it->Open();
  ExecRow row;
  double prev = -1e300;
  const ColumnData& col = db_.GetTableData("fact").column("f_value");
  int count = 0;
  while (it->Next(&row)) {
    double v = col.GetDouble(row.ids[0]);
    EXPECT_GE(v, prev);
    prev = v;
    ++count;
  }
  EXPECT_GT(count, 0);
  (void)r;
}

TEST_F(ExecutorEdgeTest, IteratorReOpenRestarts) {
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.3, 0.5});
  OptimizationResult r = optimizer_.Optimize(q);
  auto it = BuildIterator(db_, q, *r.plan);
  it->Open();
  int64_t first = 0;
  ExecRow row;
  while (it->Next(&row)) ++first;
  it->Open();  // restart
  int64_t second = 0;
  while (it->Next(&row)) ++second;
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0);
}

TEST_F(ExecutorEdgeTest, NaiveNljMatchesHashJoin) {
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.2, 0.4});
  OptimizerOptions naive_only;
  naive_only.enable_merge_join = false;
  naive_only.enable_indexed_nlj = false;
  naive_only.enable_index_seek = false;
  // Force naive NLJ by comparing against a manually built one.
  Optimizer o(&db_, naive_only);
  OptimizationResult base = o.Optimize(q);

  auto nlj = std::make_shared<PhysicalPlanNode>();
  nlj->kind = PhysicalOpKind::kNaiveNestedLoopsJoin;
  nlj->children = base.plan->children;
  nlj->join = base.plan->join;
  if (!base.plan->is_join()) GTEST_SKIP() << "unexpected plan shape";

  ExecutionResult a = ExecutePlan(db_, q, *base.plan);
  ExecutionResult b = ExecutePlan(db_, q, *nlj);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST_F(ExecutorEdgeTest, StreamAggMatchesHashAgg) {
  QueryTemplate tmpl("agg_q", {"fact", "dim"});
  JoinEdge e;
  e.left_table = 0;
  e.left_column = "f_dim";
  e.right_table = 1;
  e.right_column = "d_key";
  tmpl.AddJoin(e);
  PredicateTemplate p;
  p.table_index = 0;
  p.column = "f_value";
  p.op = CompareOp::kLe;
  p.param_slot = 0;
  ASSERT_TRUE(tmpl.AddPredicate(std::move(p)).ok());
  AggregateSpec agg;
  agg.enabled = true;
  agg.group_table = 1;
  agg.group_column = "d_attr";
  tmpl.SetAggregate(agg);
  QueryInstance q = InstanceForSelectivities(db_, tmpl, {0.6});

  OptimizationResult r = optimizer_.Optimize(q);
  // Build both aggregate variants over the same child.
  PlanPtr child = r.plan->children[0];
  auto ha = std::make_shared<PhysicalPlanNode>();
  ha->kind = PhysicalOpKind::kHashAggregate;
  ha->children = {child};
  ha->agg = r.plan->agg;
  auto sort = std::make_shared<PhysicalPlanNode>();
  sort->kind = PhysicalOpKind::kSort;
  sort->sort_key = SortKey{1, "d_attr"};
  sort->children = {child};
  auto sa = std::make_shared<PhysicalPlanNode>();
  sa->kind = PhysicalOpKind::kStreamAggregate;
  sa->children = {sort};
  sa->agg = r.plan->agg;

  ExecutionResult a = ExecutePlan(db_, q, *ha);
  ExecutionResult b = ExecutePlan(db_, q, *sa);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_GT(a.rows, 0);
}

}  // namespace
}  // namespace scrpqo

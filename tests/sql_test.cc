#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT * FROM t WHERE a <= 5 AND b = 'x'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& toks = r.ValueOrDie();
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].type, TokenType::kStar);
  EXPECT_EQ(toks.back().type, TokenType::kEnd);
}

TEST(LexerTest, Operators) {
  auto r = Tokenize("< <= > >= = ? $3");
  ASSERT_TRUE(r.ok());
  const auto& t = r.ValueOrDie();
  EXPECT_EQ(t[0].type, TokenType::kLt);
  EXPECT_EQ(t[1].type, TokenType::kLe);
  EXPECT_EQ(t[2].type, TokenType::kGt);
  EXPECT_EQ(t[3].type, TokenType::kGe);
  EXPECT_EQ(t[4].type, TokenType::kEq);
  EXPECT_EQ(t[5].type, TokenType::kQuestion);
  EXPECT_EQ(t[6].type, TokenType::kDollarParam);
  EXPECT_EQ(t[6].param_index, 3);
}

TEST(LexerTest, Numbers) {
  auto r = Tokenize("42 -7 3.25");
  ASSERT_TRUE(r.ok());
  const auto& t = r.ValueOrDie();
  EXPECT_EQ(t[0].number, 42.0);
  EXPECT_TRUE(t[0].number_is_int);
  EXPECT_EQ(t[1].number, -7.0);
  EXPECT_EQ(t[2].number, 3.25);
  EXPECT_FALSE(t[2].number_is_int);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("a ; b").ok());
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("$x").ok());
}

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : db_(testing::MakeSmallDatabase(2000, 100)) {}
  Database db_;
};

TEST_F(SqlParserTest, ParsesJoinTemplate) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact, dim "
      "WHERE fact.f_dim = dim.d_key AND fact.f_value <= ? AND "
      "dim.d_attr <= ?");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& tmpl = *r.ValueOrDie();
  EXPECT_EQ(tmpl.num_tables(), 2);
  EXPECT_EQ(tmpl.joins().size(), 1u);
  EXPECT_EQ(tmpl.dimensions(), 2);
  EXPECT_EQ(tmpl.PredicateForSlot(0).column, "f_value");
  EXPECT_EQ(tmpl.PredicateForSlot(1).column, "d_attr");
}

TEST_F(SqlParserTest, BareColumnsResolveUnambiguously) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact, dim WHERE f_dim = d_key AND f_value <= ?");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie()->joins()[0].left_column, "f_dim");
}

TEST_F(SqlParserTest, AliasesWork) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT f.f_value FROM fact f, dim d "
      "WHERE f.f_dim = d.d_key AND f.f_value >= ?");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie()->dimensions(), 1);
}

TEST_F(SqlParserTest, DollarParamsExplicitSlots) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact, dim WHERE fact.f_dim = dim.d_key "
      "AND dim.d_attr <= $1 AND fact.f_value <= $0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& tmpl = *r.ValueOrDie();
  // $0 names f_value even though it appears second in the text.
  EXPECT_EQ(tmpl.PredicateForSlot(0).column, "f_value");
  EXPECT_EQ(tmpl.PredicateForSlot(1).column, "d_attr");
}

TEST_F(SqlParserTest, LiteralPredicates) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact WHERE f_value <= 5000 AND f_weight >= 1.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& tmpl = *r.ValueOrDie();
  EXPECT_EQ(tmpl.dimensions(), 0);
  EXPECT_EQ(tmpl.predicates().size(), 2u);
  EXPECT_TRUE(tmpl.predicates()[0].literal.is_int64());
  EXPECT_TRUE(tmpl.predicates()[1].literal.is_double());
}

TEST_F(SqlParserTest, GroupBy) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT COUNT(*) FROM fact, dim WHERE fact.f_dim = dim.d_key "
      "AND fact.f_value <= ? GROUP BY dim.d_attr");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& tmpl = *r.ValueOrDie();
  EXPECT_TRUE(tmpl.aggregate().enabled);
  EXPECT_EQ(tmpl.aggregate().group_column, "d_attr");
  EXPECT_EQ(tmpl.aggregate().group_table, 1);
}

TEST_F(SqlParserTest, ParsedTemplateOptimizes) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact, dim "
      "WHERE fact.f_dim = dim.d_key AND fact.f_value <= ? AND "
      "dim.d_attr <= ?");
  ASSERT_TRUE(r.ok());
  auto tmpl = r.ValueOrDie();
  QueryInstance q = InstanceForSelectivities(db_, *tmpl, {0.2, 0.5});
  Optimizer optimizer(&db_);
  OptimizationResult result = optimizer.Optimize(q);
  EXPECT_GT(result.cost, 0.0);
  EXPECT_NE(result.plan, nullptr);
}

TEST_F(SqlParserTest, RejectsUnknownTable) {
  auto r = ParseQueryTemplate(db_.catalog(), "SELECT * FROM nope");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlParserTest, RejectsUnknownColumn) {
  auto r = ParseQueryTemplate(db_.catalog(),
                              "SELECT * FROM fact WHERE nope <= ?");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlParserTest, RejectsAmbiguousBareColumn) {
  // Both tables would need a shared column name; our fixture has none, so
  // craft ambiguity via duplicate self-ish aliases instead.
  auto r = ParseQueryTemplate(
      db_.catalog(), "SELECT * FROM fact a, fact a WHERE a.f_value <= ?");
  EXPECT_FALSE(r.ok());  // duplicate alias
}

TEST_F(SqlParserTest, RejectsDisconnectedJoinGraph) {
  auto r = ParseQueryTemplate(db_.catalog(),
                              "SELECT * FROM fact, dim WHERE f_value <= ?");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("connected"), std::string::npos);
}

TEST_F(SqlParserTest, RejectsMixedParamStyles) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact WHERE f_value <= ? AND f_weight <= $0");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlParserTest, RejectsSparseDollarSlots) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact WHERE f_value <= $0 AND f_weight <= $2");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlParserTest, RejectsNonEqJoin) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "SELECT * FROM fact, dim WHERE fact.f_dim <= dim.d_key");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlParserTest, RejectsTrailingGarbage) {
  auto r = ParseQueryTemplate(db_.catalog(),
                              "SELECT * FROM fact WHERE f_value <= ? foo bar");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlParserTest, KeywordsCaseInsensitive) {
  auto r = ParseQueryTemplate(
      db_.catalog(),
      "select * from fact where f_value <= ? and f_weight >= ?");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie()->dimensions(), 2);
}

}  // namespace
}  // namespace scrpqo

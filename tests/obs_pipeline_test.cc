// Tests for the always-on observability pipeline: SPSC event rings, the
// RingTracer exporter (loss accounting, wire-format parity with the
// mutexed Tracer), getPlan stage spans, Prometheus rendering, the
// embedded admin server, and the streaming lambda-compliance monitor.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/admin_server.h"
#include "obs/event_ring.h"
#include "obs/metrics_registry.h"
#include "obs/prometheus.h"
#include "obs/ring_tracer.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "verify/online_auditor.h"

namespace scrpqo {
namespace {

DecisionEvent Ev(int instance_id,
                 DecisionOutcome outcome = DecisionOutcome::kOptimized) {
  DecisionEvent e;
  e.instance_id = instance_id;
  e.outcome = outcome;
  e.technique = "T";
  return e;
}

// ---------------------------------------------------------------- rings

TEST(SpscEventRingTest, PushDrainPreservesOrder) {
  SpscEventRing ring(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.TryPush(Ev(i)));
  std::vector<DecisionEvent> out;
  ring.DrainInto(&out);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i].instance_id, i);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0);
}

TEST(SpscEventRingTest, DropsNotOverwritesWhenFull) {
  SpscEventRing ring(8);
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (ring.TryPush(Ev(i))) ++accepted;
  }
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(ring.dropped(), 12);
  std::vector<DecisionEvent> out;
  ring.DrainInto(&out);
  ASSERT_EQ(out.size(), 8u);
  // The retained events are the OLDEST (drop-new policy): a burst cannot
  // rewrite history the exporter has not yet drained.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i].instance_id, i);
}

TEST(SpscEventRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscEventRing ring(5);  // rounds to 8
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(Ev(i)));
  EXPECT_FALSE(ring.TryPush(Ev(8)));
}

TEST(SpscEventRingTest, DrainWhileProducing) {
  // One producer, one drainer, interleaved: every pushed event comes out
  // exactly once, in order.
  SpscEventRing ring(1 << 10);
  constexpr int kEvents = 20000;
  std::vector<DecisionEvent> out;
  std::thread producer([&ring] {
    for (int i = 0; i < kEvents; ++i) {
      while (!ring.TryPush(Ev(i))) std::this_thread::yield();
    }
  });
  while (out.size() < kEvents) {
    ring.DrainInto(&out);
  }
  producer.join();
  ASSERT_EQ(out.size(), static_cast<size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(out[i].instance_id, i);
  // (rejected TryPush attempts during full windows count as drops by
  // design; completeness above is the property under test)
}

// ----------------------------------------------------------- RingTracer

TEST(RingTracerTest, ConcurrentProducersLoseNothingBelowCapacity) {
  RingTracer::Options opts;
  opts.ring_capacity = 1 << 12;
  opts.window_capacity = 1 << 15;
  opts.drain_interval_micros = 100;
  RingTracer tracer(opts);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Record(Ev(t * kPerThread + i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_TRUE(tracer.Flush().ok());
  EXPECT_EQ(tracer.dropped(), 0);
  EXPECT_EQ(tracer.total_recorded(), kThreads * kPerThread);
  std::vector<DecisionEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<int64_t> seqs;
  std::set<int32_t> instances;
  for (const DecisionEvent& e : events) {
    seqs.insert(e.seq);
    instances.insert(e.instance_id);
  }
  // Sequence numbers are dense and unique; every emitted instance id is
  // present exactly once.
  EXPECT_EQ(seqs.size(), events.size());
  EXPECT_EQ(*seqs.begin(), 0);
  EXPECT_EQ(*seqs.rbegin(), kThreads * kPerThread - 1);
  EXPECT_EQ(instances.size(), events.size());
}

TEST(RingTracerTest, SinkRegistrationRacesExporterAndFlush) {
  // Exporter-side state (sinks_, next_seq_, scratch buffers) is guarded by
  // export_mu_: late AddSink and explicit Flush race the background
  // exporter loop while producers keep recording. TSan certifies the
  // guard; functionally, a sink added mid-stream sees a suffix of the
  // stream with strictly increasing sequence numbers.
  RingTracer::Options opts;
  opts.ring_capacity = 1 << 12;
  opts.window_capacity = 1 << 14;
  opts.drain_interval_micros = 50;  // keep the exporter loop hot
  RingTracer tracer(opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  std::atomic<int> produced{0};
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&tracer, &stop, &produced, t] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        tracer.Record(Ev(t * 1000000 + i++));
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread flusher([&tracer, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(tracer.Flush().ok());
      std::this_thread::yield();
    }
  });

  // Register sinks while the exporter loop and flusher are both draining.
  std::vector<std::shared_ptr<InMemorySink>> late_sinks;
  for (int s = 0; s < 4; ++s) {
    while (produced.load(std::memory_order_relaxed) < (s + 1) * 200) {
      std::this_thread::yield();
    }
    auto sink = std::make_shared<InMemorySink>(1 << 14);
    tracer.AddSink(sink);
    late_sinks.push_back(std::move(sink));
  }

  stop.store(true);
  for (std::thread& th : producers) th.join();
  flusher.join();
  ASSERT_TRUE(tracer.Flush().ok());

  for (const auto& sink : late_sinks) {
    std::vector<DecisionEvent> events = sink->Snapshot();
    ASSERT_FALSE(events.empty());
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_GT(events[i].seq, events[i - 1].seq);
    }
  }
}

TEST(RingTracerTest, AccountsDropsAboveCapacityInBand) {
  RingTracer::Options opts;
  opts.ring_capacity = 8;
  opts.window_capacity = 64;
  // Effectively disable the periodic exporter so the overflow is
  // deterministic; the explicit Flush below does the only drain.
  opts.drain_interval_micros = 60'000'000;
  RingTracer tracer(opts);
  constexpr int kAttempted = 100;
  for (int i = 0; i < kAttempted; ++i) tracer.Record(Ev(i));
  ASSERT_TRUE(tracer.Flush().ok());
  EXPECT_EQ(tracer.dropped(), kAttempted - 8);
  std::vector<DecisionEvent> events = tracer.Snapshot();
  int64_t dropped_in_band = 0;
  int64_t survivors = 0;
  for (const DecisionEvent& e : events) {
    if (e.outcome == DecisionOutcome::kRingDropped) {
      dropped_in_band += e.dropped;
    } else {
      ++survivors;
    }
  }
  // Survivors + in-band drop records account for every Record attempt.
  EXPECT_EQ(dropped_in_band, kAttempted - 8);
  EXPECT_EQ(survivors, 8);
  EXPECT_EQ(survivors + dropped_in_band, kAttempted);
}

TEST(RingTracerTest, JsonlByteIdenticalToMutexedTracer) {
  // The SPSC pipeline must preserve today's wire format byte for byte:
  // identical pre-built events recorded single-threaded through both
  // capture paths serialize to identical JSONL documents.
  std::vector<DecisionEvent> events;
  for (int i = 0; i < 50; ++i) {
    DecisionEvent e = Ev(i, static_cast<DecisionOutcome>(i % 4));
    e.template_key = i % 3 == 0 ? "tpl_a" : "";
    e.matched_entry = i;
    e.g = 1.0 + 0.01 * i;
    e.l = 1.5;
    e.r = 1.25;
    e.subopt = 1.1;
    e.lambda = 2.0;
    e.candidates_scanned = i;
    e.recost_calls = i % 5;
    e.wall_micros = 10 * i;
    if (i % 7 == 0) {
      e.stages.Add(Stage::kSelCheck, i);
      e.stages.Add(Stage::kOptimize, 2 * i);
    }
    events.push_back(std::move(e));
  }

  Tracer mutexed(128);
  for (const DecisionEvent& e : events) mutexed.Record(e);

  RingTracer::Options opts;
  opts.ring_capacity = 128;
  opts.window_capacity = 128;
  RingTracer ring(opts);
  for (const DecisionEvent& e : events) ring.Record(e);
  ASSERT_TRUE(ring.Flush().ok());

  std::ostringstream via_mutex, via_ring;
  mutexed.WriteJsonl(via_mutex);
  ring.WriteJsonl(via_ring);
  EXPECT_EQ(via_mutex.str(), via_ring.str());
  EXPECT_FALSE(via_ring.str().empty());
}

TEST(RingTracerTest, AddedSinkReceivesTheStream) {
  RingTracer tracer;
  auto sink = std::make_shared<InMemorySink>(64);
  tracer.AddSink(sink);
  for (int i = 0; i < 10; ++i) tracer.Record(Ev(i));
  ASSERT_TRUE(tracer.Flush().ok());
  EXPECT_EQ(sink->Snapshot().size(), 10u);
}

TEST(RingTracerTest, JsonlFileSinkStreamsWireFormat) {
  std::string path = ::testing::TempDir() + "/ring_stream.jsonl";
  {
    RingTracer tracer;
    tracer.AddSink(std::make_shared<JsonlFileSink>(path));
    for (int i = 0; i < 7; ++i) tracer.Record(Ev(i));
    ASSERT_TRUE(tracer.Flush().ok());
  }
  auto loaded = ReadJsonlTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().size(), 7u);
}

// ----------------------------------------------------------------- spans

TEST(GetPlanSpanTest, TimersAccumulateIntoAmbientBreakdown) {
  GetPlanSpan span(/*enabled=*/true);
  ASSERT_NE(SpanContext::Current(), nullptr);
  {
    StageTimer t(Stage::kSelCheck, nullptr);
    t.Stop();
    t.Stop();  // idempotent
  }
  { StageTimer t(Stage::kSelCheck, nullptr); }  // second run accumulates
  EXPECT_GE(span.breakdown().get(Stage::kSelCheck), 0);
  EXPECT_EQ(span.breakdown().get(Stage::kOptimize), -1);
  EXPECT_TRUE(span.breakdown().any());
}

TEST(GetPlanSpanTest, DisabledSpanLeavesNoAmbientContext) {
  GetPlanSpan span(/*enabled=*/false);
  EXPECT_EQ(SpanContext::Current(), nullptr);
  StageTimer t(Stage::kRecost, nullptr);  // unarmed: no-op
  t.Stop();
  EXPECT_FALSE(span.breakdown().any());
}

TEST(GetPlanSpanTest, NestedSpanIsNoopOuterOwnsBreakdown) {
  GetPlanSpan outer(/*enabled=*/true);
  StageBreakdown* ambient = SpanContext::Current();
  {
    GetPlanSpan inner(/*enabled=*/true);
    EXPECT_EQ(SpanContext::Current(), ambient);
    StageTimer t(Stage::kManageCache, nullptr);
  }
  // Inner span's destruction must not tear down the outer context.
  EXPECT_EQ(SpanContext::Current(), ambient);
  EXPECT_GE(outer.breakdown().get(Stage::kManageCache), 0);
}

TEST(GetPlanSpanTest, SeedMergesForwardedStages) {
  StageBreakdown forwarded;
  forwarded.Add(Stage::kOptimize, 120);
  forwarded.Add(Stage::kSelCheck, 7);
  GetPlanSpan span(/*enabled=*/true);
  span.Seed(forwarded);
  EXPECT_EQ(span.breakdown().get(Stage::kOptimize), 120);
  EXPECT_EQ(span.breakdown().get(Stage::kSelCheck), 7);
  span.Seed(forwarded);  // seeding accumulates like timers do
  EXPECT_EQ(span.breakdown().get(Stage::kOptimize), 240);
}

TEST(DecisionEventStagesTest, StagesAndDroppedRoundTripThroughJsonl) {
  DecisionEvent e = Ev(3, DecisionOutcome::kRingDropped);
  e.dropped = 42;
  e.stages.Add(Stage::kShardWait, 5);
  e.stages.Add(Stage::kRecost, 17);
  std::string line = DecisionEventToJsonl(e);
  EXPECT_NE(line.find("\"dropped\":42"), std::string::npos);
  EXPECT_NE(line.find("\"stages\":{"), std::string::npos);
  auto parsed = DecisionEventFromJsonl(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const DecisionEvent& p = parsed.ValueOrDie();
  EXPECT_EQ(p.dropped, 42);
  EXPECT_EQ(p.stages.get(Stage::kShardWait), 5);
  EXPECT_EQ(p.stages.get(Stage::kRecost), 17);
  EXPECT_EQ(p.stages.get(Stage::kOptimize), -1);
}

TEST(DecisionEventStagesTest, BatchRecostStageIsNamedAndRoundTrips) {
  // The bundled-sweep stage added for SIMD recost batching must be a
  // first-class taxonomy member: stable wire name, serde round-trip, and
  // distinct from the scalar recost slot (trace_summarize attributes the
  // two separately).
  EXPECT_STREQ(StageName(Stage::kBatchRecost), "batch_recost");
  DecisionEvent e = Ev(4, DecisionOutcome::kCostCheckHit);
  e.stages.Add(Stage::kBatchRecost, 23);
  e.stages.Add(Stage::kRecost, 11);
  std::string line = DecisionEventToJsonl(e);
  EXPECT_NE(line.find("\"batch_recost\":23"), std::string::npos);
  auto parsed = DecisionEventFromJsonl(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.ValueOrDie().stages.get(Stage::kBatchRecost), 23);
  EXPECT_EQ(parsed.ValueOrDie().stages.get(Stage::kRecost), 11);
}

TEST(DecisionEventStagesTest, LegacyWireFormatUnchangedWithoutStages) {
  DecisionEvent e = Ev(1);
  std::string line = DecisionEventToJsonl(e);
  // Span-free emitters produce the pre-pipeline wire format: no optional
  // keys leak into the line.
  EXPECT_EQ(line.find("\"stages\""), std::string::npos);
  EXPECT_EQ(line.find("\"dropped\""), std::string::npos);
}

// ------------------------------------------------------------ prometheus

TEST(PrometheusTest, RendersCountersGaugesAndSummaries) {
  MetricsRegistry registry;
  registry.counter("decision.optimized")->Increment(9);
  registry.gauge("verify.online.worst_margin")->Set(0.25);
  registry.histogram("scr.get_plan_micros")->Record(100.0);
  std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE decision_optimized counter"),
            std::string::npos);
  EXPECT_NE(text.find("decision_optimized 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE verify_online_worst_margin gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE scr_get_plan_micros summary"),
            std::string::npos);
  EXPECT_NE(text.find("scr_get_plan_micros{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scr_get_plan_micros_count 1"), std::string::npos);
}

TEST(PrometheusTest, SanitizesMetricNames) {
  EXPECT_EQ(PrometheusMetricName("scr.get_plan-micros"),
            "scr_get_plan_micros");
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusMetricName("ok_name:sub"), "ok_name:sub");
}

// ---------------------------------------------------------- admin server

TEST(AdminServerTest, HandleRoutesEndpoints) {
  MetricsRegistry registry;
  registry.counter("decision.optimized")->Increment(2);
  AdminServer::Options opts;
  opts.metrics = &registry;
  opts.statusz = [] { return std::string("{\"templates\":[]}\n"); };
  AdminServer server(std::move(opts));

  std::string content_type;
  int status = 0;
  std::string body = server.Handle("/metrics", &content_type, &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(body.find("decision_optimized 2"), std::string::npos);

  body = server.Handle("/healthz", &content_type, &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  body = server.Handle("/statusz", &content_type, &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(content_type, "application/json; charset=utf-8");
  EXPECT_EQ(body, "{\"templates\":[]}\n");

  body = server.Handle("/nope", &content_type, &status);
  EXPECT_EQ(status, 404);
}

TEST(AdminServerTest, StatuszWithoutProviderServesEmptyObject) {
  AdminServer server(AdminServer::Options{});
  std::string content_type;
  int status = 0;
  EXPECT_EQ(server.Handle("/statusz", &content_type, &status), "{}\n");
  EXPECT_EQ(status, 200);
}

TEST(AdminServerTest, ServesOverRealSocket) {
  MetricsRegistry registry;
  registry.counter("c")->Increment(1);
  AdminServer::Options opts;
  opts.port = 0;  // ephemeral
  opts.metrics = &registry;
  AdminServer server(std::move(opts));
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "GET /healthz HTTP/1.1\r\nHost: l\r\n\r\n";
  ASSERT_GT(::send(fd, request, sizeof(request) - 1, 0), 0);
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);

  server.Stop();
  server.Stop();  // idempotent
}

// -------------------------------------------------------- online auditor

DecisionEvent SelCheckHit(int64_t seq, double g, double l, double s,
                          double lambda, const std::string& tpl = "") {
  DecisionEvent e = Ev(static_cast<int>(seq), DecisionOutcome::kSelCheckHit);
  e.seq = seq;
  e.template_key = tpl;
  e.g = g;
  e.l = l;
  e.subopt = s;
  e.lambda = lambda;
  return e;
}

TEST(OnlineAuditorTest, CleanStreamReportsMarginNoViolations) {
  MetricsRegistry registry;
  OnlineAuditorOptions opts;
  opts.config.lambda = 2.0;
  opts.metrics = &registry;
  OnlineAuditor auditor(opts);
  // G*L = 1.21 <= lambda/S = 2/1.1: holds with margin.
  auditor.Consume({SelCheckHit(0, 1.1, 1.1, 1.1, 2.0)});
  EXPECT_EQ(auditor.checked(), 1);
  EXPECT_EQ(auditor.violations(), 0);
  EXPECT_GT(auditor.worst_margin(), 0.0);
  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("verify.online.checked"), 1);
  EXPECT_EQ(snap.CounterValue("verify.online.violations"), 0);
  EXPECT_GT(snap.GaugeValue("verify.online.worst_margin", -1.0), 0.0);
}

TEST(OnlineAuditorTest, DetectsInjectedViolationAndEmitsAlert) {
  // End-to-end through the ring pipeline: a violating decision streams
  // through the exporter, the monitor flags it at runtime, bumps the
  // violation metric, and emits a kAuditAlert trace event.
  RingTracer::Options topts;
  topts.drain_interval_micros = 100;
  RingTracer tracer(topts);
  MetricsRegistry registry;
  OnlineAuditorOptions opts;
  opts.config.lambda = 2.0;
  opts.alert_tracer = &tracer;
  opts.metrics = &registry;
  auto auditor = std::make_shared<OnlineAuditor>(opts);
  tracer.AddSink(auditor);

  // Injected bug: G*L = 4 > lambda/S = 2/1.2 — the sel check should
  // never have reused this plan.
  tracer.Record(SelCheckHit(0, 2.0, 2.0, 1.2, 2.0, "tpl_bad"));
  tracer.Record(SelCheckHit(0, 1.1, 1.1, 1.1, 2.0, "tpl_ok"));
  ASSERT_TRUE(tracer.Flush().ok());

  EXPECT_EQ(auditor->checked(), 2);
  EXPECT_EQ(auditor->violations(), 1);
  EXPECT_LT(auditor->worst_margin(), 0.0);
  EXPECT_EQ(registry.Snapshot().CounterValue("verify.online.violations"), 1);

  auto per_template = auditor->PerTemplate();
  EXPECT_EQ(per_template["tpl_bad"].violations, 1);
  EXPECT_EQ(per_template["tpl_ok"].violations, 0);

  // The alert was recorded back through the tracer; drain it.
  ASSERT_TRUE(tracer.Flush().ok());
  int alerts = 0;
  for (const DecisionEvent& e : tracer.Snapshot()) {
    if (e.outcome == DecisionOutcome::kAuditAlert) {
      ++alerts;
      EXPECT_EQ(e.template_key, "tpl_bad");
      EXPECT_EQ(e.technique, "online-auditor");
    }
  }
  EXPECT_EQ(alerts, 1);

  // Feedback safety: consuming its own alert must not re-alert.
  ASSERT_TRUE(tracer.Flush().ok());
  EXPECT_EQ(auditor->violations(), 1);
  EXPECT_EQ(auditor->checked(), 2);
}

TEST(OnlineAuditorTest, MetaEventsAreNeverAudited) {
  OnlineAuditorOptions opts;
  opts.config.lambda = 2.0;
  OnlineAuditor auditor(opts);
  DecisionEvent drop = Ev(0, DecisionOutcome::kRingDropped);
  drop.dropped = 5;
  DecisionEvent evict = Ev(1, DecisionOutcome::kEvicted);
  auditor.Consume({drop, evict});
  EXPECT_EQ(auditor.checked(), 0);
  EXPECT_EQ(auditor.violations(), 0);
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "pqo/cache_persistence.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class CachePersistenceTest : public ::testing::Test {
 protected:
  CachePersistenceTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  /// Warms an SCR cache with a deterministic stream.
  void Warm(Scr* scr, EngineContext* engine, int m = 150) {
    Pcg32 rng(5);
    for (int i = 0; i < m; ++i) {
      scr->OnInstance(MakeWi(i, rng.UniformDouble(0.005, 0.95),
                             rng.UniformDouble(0.005, 0.95)),
                      engine);
    }
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(CachePersistenceTest, RoundTripPreservesCacheShape) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine);

  std::string snapshot = SaveScrCache(scr);
  Scr restored(ScrOptions{.lambda = 1.5});
  Status st = LoadScrCache(snapshot, &restored);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(restored.NumPlansCached(), scr.NumPlansCached());
  EXPECT_EQ(restored.NumInstancesStored(), scr.NumInstancesStored());
}

TEST_F(CachePersistenceTest, RestoredCacheMakesSameDecisions) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine);

  Scr restored(ScrOptions{.lambda = 1.5});
  ASSERT_TRUE(LoadScrCache(SaveScrCache(scr), &restored).ok());

  // A fresh probe stream must get identical reuse decisions and plans.
  EngineContext e1(&db_, &optimizer_);
  EngineContext e2(&db_, &optimizer_);
  Pcg32 rng(9);
  for (int i = 0; i < 80; ++i) {
    WorkloadInstance wi = MakeWi(1000 + i, rng.UniformDouble(0.005, 0.95),
                                 rng.UniformDouble(0.005, 0.95));
    PlanChoice a = scr.OnInstance(wi, &e1);
    PlanChoice b = restored.OnInstance(wi, &e2);
    EXPECT_EQ(a.optimized, b.optimized) << "instance " << i;
    EXPECT_EQ(a.plan->signature, b.plan->signature) << "instance " << i;
  }
  EXPECT_EQ(e1.num_optimizer_calls(), e2.num_optimizer_calls());
}

TEST_F(CachePersistenceTest, RestoreRequiresEmptyCache) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 30);
  std::string snapshot = SaveScrCache(scr);
  // Restoring into a non-empty cache is rejected.
  Status st = LoadScrCache(snapshot, &scr);
  EXPECT_FALSE(st.ok());
}

TEST_F(CachePersistenceTest, RejectsMalformedSnapshots) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EXPECT_FALSE(LoadScrCache("", &scr).ok());
  EXPECT_FALSE(LoadScrCache("wrong-header\n", &scr).ok());
  EXPECT_FALSE(LoadScrCache("scrpqo-cache-v1\nX junk\n", &scr).ok());
  EXPECT_FALSE(
      LoadScrCache("scrpqo-cache-v1\nI 0 1.0 1.0 1 0 2 0.5\n", &scr).ok());
  // Instance referencing a plan ordinal that does not exist.
  EXPECT_FALSE(
      LoadScrCache("scrpqo-cache-v1\nI 3 1.0 1.0 1 0 1 0.5\n", &scr).ok());
}

TEST_F(CachePersistenceTest, FileRoundTrip) {
  Scr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 60);
  std::string path = ::testing::TempDir() + "/scrpqo_cache_test.txt";
  ASSERT_TRUE(SaveScrCacheToFile(scr, path).ok());
  Scr restored(ScrOptions{.lambda = 2.0});
  Status st = LoadScrCacheFromFile(path, &restored);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(restored.NumPlansCached(), scr.NumPlansCached());
  std::remove(path.c_str());
}

TEST_F(CachePersistenceTest, SpatialIndexRebuiltOnRestore) {
  ScrOptions opts{.lambda = 1.5};
  opts.use_spatial_index = true;
  Scr scr(opts);
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 100);

  Scr restored(opts);
  ASSERT_TRUE(LoadScrCache(SaveScrCache(scr), &restored).ok());
  // Reuse must work through the index immediately.
  EngineContext e2(&db_, &optimizer_);
  PlanChoice c = restored.OnInstance(MakeWi(5000, 0.3, 0.3), &e2);
  EXPECT_NE(c.plan, nullptr);
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pqo/cache_persistence.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class CachePersistenceTest : public ::testing::Test {
 protected:
  CachePersistenceTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  /// Warms an SCR cache with a deterministic stream.
  void Warm(Scr* scr, EngineContext* engine, int m = 150) {
    Pcg32 rng(5);
    for (int i = 0; i < m; ++i) {
      scr->OnInstance(MakeWi(i, rng.UniformDouble(0.005, 0.95),
                             rng.UniformDouble(0.005, 0.95)),
                      engine);
    }
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(CachePersistenceTest, RoundTripPreservesCacheShape) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine);

  std::string snapshot = SaveScrCache(scr);
  Scr restored(ScrOptions{.lambda = 1.5});
  Status st = LoadScrCache(snapshot, &restored);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(restored.NumPlansCached(), scr.NumPlansCached());
  EXPECT_EQ(restored.NumInstancesStored(), scr.NumInstancesStored());
}

TEST_F(CachePersistenceTest, RestoredCacheMakesSameDecisions) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine);

  Scr restored(ScrOptions{.lambda = 1.5});
  ASSERT_TRUE(LoadScrCache(SaveScrCache(scr), &restored).ok());

  // A fresh probe stream must get identical reuse decisions and plans.
  EngineContext e1(&db_, &optimizer_);
  EngineContext e2(&db_, &optimizer_);
  Pcg32 rng(9);
  for (int i = 0; i < 80; ++i) {
    WorkloadInstance wi = MakeWi(1000 + i, rng.UniformDouble(0.005, 0.95),
                                 rng.UniformDouble(0.005, 0.95));
    PlanChoice a = scr.OnInstance(wi, &e1);
    PlanChoice b = restored.OnInstance(wi, &e2);
    EXPECT_EQ(a.optimized, b.optimized) << "instance " << i;
    EXPECT_EQ(a.plan->signature, b.plan->signature) << "instance " << i;
  }
  EXPECT_EQ(e1.num_optimizer_calls(), e2.num_optimizer_calls());
}

TEST_F(CachePersistenceTest, RestoreRequiresEmptyCache) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 30);
  std::string snapshot = SaveScrCache(scr);
  // Restoring into a non-empty cache is rejected.
  Status st = LoadScrCache(snapshot, &scr);
  EXPECT_FALSE(st.ok());
}

TEST_F(CachePersistenceTest, RejectsMalformedSnapshots) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EXPECT_FALSE(LoadScrCache("", &scr).ok());
  EXPECT_FALSE(LoadScrCache("wrong-header\n", &scr).ok());
  EXPECT_FALSE(LoadScrCache("scrpqo-cache-v1\nX junk\n", &scr).ok());
  EXPECT_FALSE(
      LoadScrCache("scrpqo-cache-v1\nI 0 1.0 1.0 1 0 2 0.5\n", &scr).ok());
  // Instance referencing a plan ordinal that does not exist.
  EXPECT_FALSE(
      LoadScrCache("scrpqo-cache-v1\nI 3 1.0 1.0 1 0 1 0.5\n", &scr).ok());
}

TEST_F(CachePersistenceTest, FileRoundTrip) {
  Scr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 60);
  std::string path = ::testing::TempDir() + "/scrpqo_cache_test.txt";
  ASSERT_TRUE(SaveScrCacheToFile(scr, path).ok());
  Scr restored(ScrOptions{.lambda = 2.0});
  Status st = LoadScrCacheFromFile(path, &restored);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(restored.NumPlansCached(), scr.NumPlansCached());
  std::remove(path.c_str());
}

TEST_F(CachePersistenceTest, SpatialIndexRebuiltOnRestore) {
  ScrOptions opts{.lambda = 1.5};
  opts.use_spatial_index = true;
  Scr scr(opts);
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 100);

  Scr restored(opts);
  ASSERT_TRUE(LoadScrCache(SaveScrCache(scr), &restored).ok());
  // Reuse must work through the index immediately.
  EngineContext e2(&db_, &optimizer_);
  PlanChoice c = restored.OnInstance(MakeWi(5000, 0.3, 0.3), &e2);
  EXPECT_NE(c.plan, nullptr);
}

// --- restore edge cases and corruption hardening ---

TEST_F(CachePersistenceTest, RejectsEntriesWithUnvalidatedFields) {
  // Every numeric field of an instance record is range-checked before it
  // can size an allocation or enter the cache. Pair each bad record with
  // a plan line so rejection is attributable to the field, not a missing
  // plan reference.
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 10);
  std::string snapshot = SaveScrCache(scr);
  std::string plan_line = snapshot.substr(snapshot.find("P "));
  plan_line = plan_line.substr(0, plan_line.find('\n') + 1);
  const std::string head = "scrpqo-cache-v1\n" + plan_line;

  auto rejects = [&](const std::string& entry) {
    Scr fresh(ScrOptions{.lambda = 1.5});
    return !LoadScrCache(head + entry, &fresh).ok();
  };
  // A dimension count that would size a multi-GB resize.
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 4000000000 0.5\n"));
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 257 0.5\n"));  // > kMaxSnapshotDims
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 -1 0.5\n"));
  // Non-finite or out-of-(0,1] selectivities.
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 2 nan 0.5\n"));
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 2 inf 0.5\n"));
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 2 0.0 0.5\n"));
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 2 1.5 0.5\n"));
  EXPECT_TRUE(rejects("I 0 1.0 1.0 1 0 2 -0.5 0.5\n"));
  // Negative usage, bad opt_cost, bad subopt.
  EXPECT_TRUE(rejects("I 0 1.0 1.0 -3 0 2 0.5 0.5\n"));
  EXPECT_TRUE(rejects("I 0 0.0 1.0 1 0 2 0.5 0.5\n"));
  EXPECT_TRUE(rejects("I 0 -2.0 1.0 1 0 2 0.5 0.5\n"));
  EXPECT_TRUE(rejects("I 0 nan 1.0 1 0 2 0.5 0.5\n"));
  EXPECT_TRUE(rejects("I 0 1.0 0.5 1 0 2 0.5 0.5\n"));
  EXPECT_TRUE(rejects("I 0 1.0 inf 1 0 2 0.5 0.5\n"));
  // The well-formed control passes.
  Scr fresh(ScrOptions{.lambda = 1.5});
  EXPECT_TRUE(
      LoadScrCache(head + "I 0 1.0 1.2 1 0 2 0.5 0.5\n", &fresh).ok());
}

TEST_F(CachePersistenceTest, RejectsDimensionMismatchedEntries) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 10);
  std::string snapshot = SaveScrCache(scr);
  std::string plan_line = snapshot.substr(snapshot.find("P "));
  plan_line = plan_line.substr(0, plan_line.find('\n') + 1);

  // Two internally-valid entries with different selectivity dimensions:
  // corruption a per-line parse cannot see, caught by Restore.
  Scr fresh(ScrOptions{.lambda = 1.5});
  Status st = LoadScrCache("scrpqo-cache-v1\n" + plan_line +
                               "I 0 1.0 1.2 1 0 2 0.5 0.5\n"
                               "I 0 1.0 1.2 1 0 3 0.5 0.5 0.5\n",
                           &fresh);
  EXPECT_FALSE(st.ok());
}

TEST_F(CachePersistenceTest, LenientRestoreRequiresEmptyCacheToo) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 20);
  std::string snapshot = SaveScrCache(scr);
  SnapshotRestoreReport report;
  EXPECT_FALSE(LoadScrCacheLenient(snapshot, &scr, &report).ok());
}

TEST_F(CachePersistenceTest, CostCheckDisabledSurvivesRoundTrip) {
  // Appendix-G quarantine flags must survive persistence: a restored
  // cache that forgot its quarantined entries would resume inferring
  // from instances known to violate the BCG assumption.
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 10);
  std::string snapshot = SaveScrCache(scr);
  std::string plan_line = snapshot.substr(snapshot.find("P "));
  plan_line = plan_line.substr(0, plan_line.find('\n') + 1);

  Scr loaded(ScrOptions{.lambda = 1.5});
  ASSERT_TRUE(LoadScrCache("scrpqo-cache-v1\n" + plan_line +
                               "I 0 1.0 1.2 4 1 2 0.5 0.5\n"
                               "I 0 2.0 1.1 2 0 2 0.25 0.75\n",
                           &loaded)
                  .ok());
  std::vector<Scr::SnapshotEntry> entries = loaded.SnapshotInstances();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].cost_check_disabled);
  EXPECT_EQ(entries[0].usage, 4);
  EXPECT_FALSE(entries[1].cost_check_disabled);

  // And once more through the text format.
  Scr again(ScrOptions{.lambda = 1.5});
  ASSERT_TRUE(LoadScrCache(SaveScrCache(loaded), &again).ok());
  entries = again.SnapshotInstances();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].cost_check_disabled);
  EXPECT_FALSE(entries[1].cost_check_disabled);
}

TEST_F(CachePersistenceTest, LenientRestoreKeepsValidPrefixAndReports) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 10);
  std::string snapshot = SaveScrCache(scr);
  std::string plan_line = snapshot.substr(snapshot.find("P "));
  plan_line = plan_line.substr(0, plan_line.find('\n') + 1);

  // Valid plan + one valid entry, then a rotted line, then a line that
  // would parse fine — everything after the first corruption is dropped
  // (a suffix that follows damage cannot be trusted).
  const std::string corrupt = "scrpqo-cache-v1\n" + plan_line +
                              "I 0 1.0 1.2 1 0 2 0.5 0.5\n"
                              "I 0 1.0 gibberish\n"
                              "I 0 1.0 1.2 1 0 2 0.25 0.25\n";
  Scr fresh(ScrOptions{.lambda = 1.5});
  SnapshotRestoreReport report;
  Status st = LoadScrCacheLenient(corrupt, &fresh, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.plans_restored, 1);
  EXPECT_EQ(report.entries_restored, 1);
  EXPECT_EQ(report.records_dropped, 2);
  EXPECT_FALSE(report.first_error.empty());
  EXPECT_EQ(fresh.NumInstancesStored(), 1);

  // The strict loader refuses the same bytes outright.
  Scr strict(ScrOptions{.lambda = 1.5});
  EXPECT_FALSE(LoadScrCache(corrupt, &strict).ok());

  // A pristine snapshot reports nothing dropped.
  Scr clean(ScrOptions{.lambda = 1.5});
  SnapshotRestoreReport clean_report;
  ASSERT_TRUE(LoadScrCacheLenient(snapshot, &clean, &clean_report).ok());
  EXPECT_EQ(clean_report.records_dropped, 0);
  EXPECT_TRUE(clean_report.first_error.empty());
  EXPECT_EQ(clean.NumInstancesStored(), scr.NumInstancesStored());
}

TEST_F(CachePersistenceTest, LenientRestoreRejectsEntryBeforeItsPlan) {
  // Lenient mode still refuses an instance record that references a plan
  // the (possibly truncated) prefix has not produced.
  const std::string snapshot =
      "scrpqo-cache-v1\nI 0 1.0 1.2 1 0 2 0.5 0.5\n";
  Scr fresh(ScrOptions{.lambda = 1.5});
  SnapshotRestoreReport report;
  ASSERT_TRUE(LoadScrCacheLenient(snapshot, &fresh, &report).ok());
  EXPECT_EQ(report.entries_restored, 0);
  EXPECT_EQ(report.records_dropped, 1);
}

TEST_F(CachePersistenceTest, SaveIsAtomicAndDetectsWriteFailure) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 20);

  // Successful save leaves no temp file behind and overwrites the old
  // snapshot in one step.
  const std::string path = ::testing::TempDir() + "/scrpqo_atomic_save.txt";
  {
    std::ofstream old(path);
    old << "stale contents\n";
  }
  ASSERT_TRUE(SaveScrCacheToFile(scr, path).ok());
  EXPECT_EQ(std::remove((path + ".tmp").c_str()), -1)
      << "temp file must not outlive a successful save";
  Scr restored(ScrOptions{.lambda = 1.5});
  EXPECT_TRUE(LoadScrCacheFromFile(path, &restored).ok());
  EXPECT_EQ(restored.NumPlansCached(), scr.NumPlansCached());
  std::remove(path.c_str());

  // An unwritable destination is reported, not silently dropped.
  const std::string bad =
      ::testing::TempDir() + "/no_such_dir_scrpqo/cache.txt";
  EXPECT_FALSE(SaveScrCacheToFile(scr, bad).ok());
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <chrono>

#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class RecostTest : public ::testing::Test {
 protected:
  RecostTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  QueryInstance Instance(double s0, double s1) {
    return InstanceForSelectivities(db_, *tmpl_, {s0, s1});
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(RecostTest, RecostAtOwnInstanceEqualsOptimizedCost) {
  // The core engine invariant: Recost(Popt(q), q) == Cost(Popt(q), q) as
  // reported by the optimizer. SCR's cost check depends on it.
  for (double s0 : {0.01, 0.2, 0.7}) {
    for (double s1 : {0.05, 0.5, 0.95}) {
      QueryInstance q = Instance(s0, s1);
      OptimizationResult r = optimizer_.Optimize(q);
      CachedPlan cached = MakeCachedPlan(r);
      RecostService recost(&optimizer_.cost_model());
      double c = recost.Recost(cached, r.svector);
      EXPECT_NEAR(c, r.cost, r.cost * 1e-9) << "s0=" << s0 << " s1=" << s1;
    }
  }
}

TEST_F(RecostTest, RecostAtOtherInstanceUpperBoundsOptimal) {
  // Re-costing qa's plan at qb can never beat qb's optimal cost.
  QueryInstance qa = Instance(0.01, 0.9);
  QueryInstance qb = Instance(0.7, 0.1);
  OptimizationResult ra = optimizer_.Optimize(qa);
  OptimizationResult rb = optimizer_.Optimize(qb);
  CachedPlan cached = MakeCachedPlan(ra);
  RecostService recost(&optimizer_.cost_model());
  double c = recost.Recost(cached, rb.svector);
  EXPECT_GE(c, rb.cost * 0.999);
}

TEST_F(RecostTest, CountsCalls) {
  OptimizationResult r = optimizer_.Optimize(Instance(0.3, 0.3));
  CachedPlan cached = MakeCachedPlan(r);
  RecostService recost(&optimizer_.cost_model());
  EXPECT_EQ(recost.num_calls(), 0);
  (void)recost.Recost(cached, r.svector);
  (void)recost.Recost(cached, r.svector);
  EXPECT_EQ(recost.num_calls(), 2);
  recost.ResetCounters();
  EXPECT_EQ(recost.num_calls(), 0);
}

TEST_F(RecostTest, ShrunkenMemoPruningIsSubstantial) {
  // Appendix B reports >= 70% of the memo pruned when caching the final
  // plan; our retained-nodes vs costed-expressions ratio shows the same.
  OptimizationResult r = optimizer_.Optimize(Instance(0.2, 0.4));
  CachedPlan cached = MakeCachedPlan(r);
  EXPECT_GT(cached.memo_physical_exprs, cached.retained_nodes);
  EXPECT_GE(cached.PruningRatio(), 0.5) << "memo=" << cached.memo_physical_exprs
                                        << " plan=" << cached.retained_nodes;
}

TEST_F(RecostTest, RecostMuchFasterThanOptimize) {
  // Section 1/7.3: Recost is up to two orders of magnitude faster than an
  // optimizer call. Require at least 10x here to stay robust under CI noise.
  QueryInstance q = Instance(0.2, 0.4);
  OptimizationResult r = optimizer_.Optimize(q);
  CachedPlan cached = MakeCachedPlan(r);
  RecostService recost(&optimizer_.cost_model());

  const int kIters = 200;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    optimizer_.OptimizeWithSVector(q, r.svector);
  }
  auto t1 = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (int i = 0; i < kIters; ++i) {
    sink += recost.Recost(cached, r.svector);
  }
  auto t2 = std::chrono::steady_clock::now();
  double opt_ns = std::chrono::duration<double>(t1 - t0).count();
  double recost_ns = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_GT(sink, 0.0);
  EXPECT_GT(opt_ns / recost_ns, 10.0)
      << "optimize=" << opt_ns << "s recost=" << recost_ns << "s";
}

TEST_F(RecostTest, ParameterizedLeavesRebind) {
  // Moving only dimension 0 changes recost; untouched dimensions do not.
  OptimizationResult r = optimizer_.Optimize(Instance(0.2, 0.4));
  CachedPlan cached = MakeCachedPlan(r);
  RecostService recost(&optimizer_.cost_model());
  double base = recost.Recost(cached, r.svector);
  SVector moved = r.svector;
  moved[0] *= 2.0;
  EXPECT_GT(recost.Recost(cached, moved), base);
  SVector same = r.svector;
  EXPECT_EQ(recost.Recost(cached, same), base);
}

TEST_F(RecostTest, CachedPlanSignatureMatchesPlan) {
  OptimizationResult r = optimizer_.Optimize(Instance(0.3, 0.3));
  CachedPlan cached = MakeCachedPlan(r);
  EXPECT_EQ(cached.signature, PlanSignatureHash(*r.plan));
}

}  // namespace
}  // namespace scrpqo

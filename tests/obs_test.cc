#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "pqo/async_scr.h"
#include "pqo/pcm.h"
#include "pqo/scr.h"
#include "query/query_instance.h"
#include "tests/test_util.h"
#include "workload/runner.h"

namespace scrpqo {
namespace {

DecisionEvent MakeEvent(int instance_id, DecisionOutcome outcome) {
  DecisionEvent e;
  e.instance_id = instance_id;
  e.technique = "SCR2";
  e.outcome = outcome;
  return e;
}

TEST(TracerTest, RecordsInOrderBelowCapacity) {
  Tracer tracer(8);
  for (int i = 0; i < 5; ++i) {
    tracer.Record(MakeEvent(i, DecisionOutcome::kOptimized));
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].seq, i);
    EXPECT_EQ(events[static_cast<size_t>(i)].instance_id, i);
  }
  EXPECT_EQ(tracer.total_recorded(), 5);
}

TEST(TracerTest, RingWrapsKeepingNewestInOrder) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.Record(MakeEvent(i, DecisionOutcome::kSelCheckHit));
  }
  EXPECT_EQ(tracer.total_recorded(), 10);
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Live window is the newest 4 events (seq 6..9), oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].seq, 6 + i);
    EXPECT_EQ(events[static_cast<size_t>(i)].instance_id, 6 + i);
  }
}

TEST(TracerTest, WrapBoundaryExactCapacity) {
  Tracer tracer(4);
  for (int i = 0; i < 4; ++i) {
    tracer.Record(MakeEvent(i, DecisionOutcome::kOptimized));
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 0);
  EXPECT_EQ(events.back().seq, 3);
  // One more pushes out exactly the oldest.
  tracer.Record(MakeEvent(4, DecisionOutcome::kOptimized));
  events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 1);
  EXPECT_EQ(events.back().seq, 4);
}

TEST(TracerTest, ZeroCapacityIsClampedToOne) {
  Tracer tracer(0);
  EXPECT_EQ(tracer.capacity(), 1u);
  tracer.Record(MakeEvent(1, DecisionOutcome::kOptimized));
  tracer.Record(MakeEvent(2, DecisionOutcome::kOptimized));
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].instance_id, 2);
}

TEST(TracerTest, ConcurrentRecordsAllLand) {
  Tracer tracer(1 << 16);
  constexpr int kPerThread = 5000;
  auto writer = [&tracer](int base) {
    for (int i = 0; i < kPerThread; ++i) {
      tracer.Record(MakeEvent(base + i, DecisionOutcome::kCostCheckHit));
    }
  };
  std::thread a(writer, 0);
  std::thread b(writer, kPerThread);
  a.join();
  b.join();
  EXPECT_EQ(tracer.total_recorded(), 2 * kPerThread);
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(2 * kPerThread));
  // seq must be a permutation-free 0..N-1 in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<int64_t>(i));
  }
}

TEST(DecisionEventJsonlTest, RoundTripsAllFields) {
  DecisionEvent e;
  e.seq = 42;
  e.instance_id = 7;
  e.technique = "SCR2(k=10)\"quoted\\name";
  e.outcome = DecisionOutcome::kCostCheckHit;
  e.matched_entry = 3;
  e.g = 1.5;
  e.l = 2.25;
  e.r = 1.0000001;
  e.subopt = 1.25;
  e.lambda = 2.0;
  e.candidates_scanned = 8;
  e.recost_calls = 5;
  e.wall_micros = 12345;

  std::string line = DecisionEventToJsonl(e);
  auto parsed = DecisionEventFromJsonl(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const DecisionEvent& p = parsed.ValueOrDie();
  EXPECT_EQ(p.seq, e.seq);
  EXPECT_EQ(p.instance_id, e.instance_id);
  EXPECT_EQ(p.technique, e.technique);
  EXPECT_EQ(p.outcome, e.outcome);
  EXPECT_EQ(p.matched_entry, e.matched_entry);
  EXPECT_DOUBLE_EQ(p.g, e.g);
  EXPECT_DOUBLE_EQ(p.l, e.l);
  EXPECT_DOUBLE_EQ(p.r, e.r);
  EXPECT_DOUBLE_EQ(p.subopt, e.subopt);
  EXPECT_DOUBLE_EQ(p.lambda, e.lambda);
  EXPECT_EQ(p.candidates_scanned, e.candidates_scanned);
  EXPECT_EQ(p.recost_calls, e.recost_calls);
  EXPECT_EQ(p.wall_micros, e.wall_micros);
}

TEST(DecisionEventJsonlTest, TemplateFieldRoundTripsWhenPresent) {
  DecisionEvent e;
  e.outcome = DecisionOutcome::kSelCheckHit;
  e.template_key = "rd2_t3_d2 \"quoted\"";
  std::string line = DecisionEventToJsonl(e);
  EXPECT_NE(line.find("\"template\":"), std::string::npos);
  auto parsed = DecisionEventFromJsonl(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.ValueOrDie().template_key, e.template_key);

  // Single-template traces omit the field entirely (and parse back empty),
  // keeping them byte-identical to pre-multi-template traces.
  DecisionEvent plain;
  plain.outcome = DecisionOutcome::kOptimized;
  std::string plain_line = DecisionEventToJsonl(plain);
  EXPECT_EQ(plain_line.find("\"template\":"), std::string::npos);
  auto plain_parsed = DecisionEventFromJsonl(plain_line);
  ASSERT_TRUE(plain_parsed.ok());
  EXPECT_TRUE(plain_parsed.ValueOrDie().template_key.empty());
}

TEST(DecisionEventJsonlTest, RoundTripsDefaults) {
  DecisionEvent e;
  e.outcome = DecisionOutcome::kEvicted;
  std::string line = DecisionEventToJsonl(e);
  auto parsed = DecisionEventFromJsonl(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().outcome, DecisionOutcome::kEvicted);
  EXPECT_EQ(parsed.ValueOrDie().matched_entry, -1);
  EXPECT_DOUBLE_EQ(parsed.ValueOrDie().g, -1.0);
}

TEST(DecisionEventJsonlTest, RejectsGarbage) {
  EXPECT_FALSE(DecisionEventFromJsonl("not json at all").ok());
  EXPECT_FALSE(DecisionEventFromJsonl("{\"seq\":1}").ok());
  EXPECT_FALSE(
      DecisionEventFromJsonl(
          "{\"seq\":1,\"instance\":2,\"outcome\":\"bogus\"}")
          .ok());
}

TEST(DecisionEventJsonlTest, RejectsNonFiniteCostFields) {
  // Same policy as EnvDouble: a trace with NaN/inf factors could make
  // guarantee arithmetic silently pass, so parsing must fail instead.
  const char* base = "{\"seq\": 1, \"instance\": 2, \"technique\": \"t\", "
                     "\"outcome\": \"cost-check-hit\", \"matched\": 0";
  for (const char* bad :
       {"\"r\": nan", "\"r\": inf", "\"r\": -inf", "\"r\": 1e999",
        "\"g\": nan", "\"l\": inf", "\"s\": nan", "\"lambda\": inf",
        "\"wall_us\": nan"}) {
    std::string line = std::string(base) + ", " + bad + "}";
    EXPECT_FALSE(DecisionEventFromJsonl(line).ok()) << line;
  }
  EXPECT_FALSE(DecisionEventFromJsonl(
                   "{\"seq\": inf, \"instance\": 2, \"technique\": \"t\", "
                   "\"outcome\": \"optimized\"}")
                   .ok());
  // Control: the same shape with finite values parses.
  std::string good = std::string(base) + ", \"r\": 1.5}";
  EXPECT_TRUE(DecisionEventFromJsonl(good).ok());
}

TEST(DecisionEventJsonlTest, OutcomeNamesRoundTrip) {
  for (DecisionOutcome o :
       {DecisionOutcome::kSelCheckHit, DecisionOutcome::kCostCheckHit,
        DecisionOutcome::kOptimized, DecisionOutcome::kRedundantDiscard,
        DecisionOutcome::kEvicted, DecisionOutcome::kAuditAlert,
        DecisionOutcome::kRingDropped}) {
    DecisionOutcome back;
    ASSERT_TRUE(ParseDecisionOutcome(DecisionOutcomeName(o), &back));
    EXPECT_EQ(back, o);
  }
  DecisionOutcome ignored;
  EXPECT_FALSE(ParseDecisionOutcome("unknown", &ignored));
}

TEST(TracerTest, JsonlFileRoundTrip) {
  Tracer tracer(16);
  for (int i = 0; i < 6; ++i) {
    DecisionEvent e = MakeEvent(i, i % 2 == 0
                                       ? DecisionOutcome::kSelCheckHit
                                       : DecisionOutcome::kOptimized);
    e.wall_micros = 10 * i;
    tracer.Record(std::move(e));
  }
  std::string path = ::testing::TempDir() + "/obs_trace_roundtrip.jsonl";
  ASSERT_TRUE(tracer.WriteJsonlFile(path).ok());
  auto loaded = ReadJsonlTraceFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& events = loaded.ValueOrDie();
  ASSERT_EQ(events.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].instance_id, i);
    EXPECT_EQ(events[static_cast<size_t>(i)].wall_micros, 10 * i);
  }
  std::remove(path.c_str());
}

TEST(LogHistogramTest, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(100.0), 0.0);
  EXPECT_EQ(h.max_value(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogramTest, SingleValueEveryPercentileIsThatValue) {
  LogHistogram h;
  h.Record(1000.0);
  EXPECT_EQ(h.count(), 1);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    // The bucket midpoint is clamped to the tracked max, so a singleton is
    // reported exactly.
    EXPECT_DOUBLE_EQ(h.Percentile(p), 1000.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 1000.0);
}

TEST(LogHistogramTest, PercentilesWithinBucketResolution) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  // Log-bucketed: ~9% relative resolution.
  EXPECT_NEAR(h.Percentile(50.0), 500.0, 500.0 * 0.10);
  EXPECT_NEAR(h.Percentile(90.0), 900.0, 900.0 * 0.10);
  EXPECT_NEAR(h.Percentile(99.0), 990.0, 990.0 * 0.10);
  EXPECT_DOUBLE_EQ(h.max_value(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-6);
}

TEST(LogHistogramTest, PercentileOrderingAndExtremes) {
  LogHistogram h;
  h.Record(1.0);
  h.Record(100.0);
  h.Record(10000.0);
  EXPECT_LE(h.Percentile(0.0), h.Percentile(50.0));
  EXPECT_LE(h.Percentile(50.0), h.Percentile(100.0));
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 10000.0);  // clamped to true max
}

TEST(LogHistogramTest, SubUnitAndNegativeValuesLandInBucketZero) {
  LogHistogram h;
  h.Record(0.0);
  h.Record(0.3);
  h.Record(-5.0);  // clamped to 0
  EXPECT_EQ(h.count(), 3);
  EXPECT_LT(h.Percentile(50.0), 1.0);
}

TEST(LogHistogramTest, HugeValuesHitOverflowBucketButReportTrueMax) {
  LogHistogram h;
  h.Record(1e300);
  h.Record(1e301);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1e301);
  EXPECT_DOUBLE_EQ(h.max_value(), 1e301);
}

TEST(LogHistogramTest, ConcurrentRecordsCountExactly) {
  MetricsRegistry registry;
  LogHistogram* h = registry.histogram("lat");
  constexpr int kPerThread = 50000;
  auto writer = [h] {
    for (int i = 1; i <= kPerThread; ++i) {
      h->Record(static_cast<double>(i % 1000) + 1.0);
    }
  };
  std::thread a(writer);
  std::thread b(writer);
  a.join();
  b.join();
  EXPECT_EQ(h->count(), 2 * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry registry;
  constexpr int kPerThread = 100000;
  auto writer = [&registry] {
    // Deliberately re-resolve by name: lookup must be thread-safe too.
    Counter* c = registry.counter("hits");
    for (int i = 0; i < kPerThread; ++i) c->Increment();
  };
  std::thread a(writer);
  std::thread b(writer);
  a.join();
  b.join();
  EXPECT_EQ(registry.counter("hits")->value(), 2 * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotAndCounterLookup) {
  MetricsRegistry registry;
  registry.counter("a")->Increment(3);
  registry.counter("b")->Increment(5);
  registry.histogram("lat")->Record(100.0);
  RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.CounterValue("a"), 3);
  EXPECT_EQ(snap.CounterValue("b"), 5);
  EXPECT_EQ(snap.CounterValue("missing", -7), -7);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat");
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 100.0);
  const HistogramSnapshot* h = snap.FindHistogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->max, 100.0);
  EXPECT_EQ(snap.FindHistogram("missing"), nullptr);
}

TEST(MetricsRegistryTest, StablePointersAcrossLookups) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("x");
  registry.counter("y");
  registry.histogram("z");
  EXPECT_EQ(registry.counter("x"), c1);
}

TEST(MetricsRegistryTest, WriteJsonContainsEntries) {
  MetricsRegistry registry;
  registry.counter("decision.optimized")->Increment(9);
  registry.histogram("get_plan_micros")->Record(50.0);
  std::ostringstream os;
  registry.WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"decision.optimized\":9"), std::string::npos);
  EXPECT_NE(json.find("\"get_plan_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(ScopedTimerTest, RecordsOnceIntoHistogram) {
  MetricsRegistry registry;
  LogHistogram* h = registry.histogram("t");
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h->count(), 1);
  {
    ScopedTimer timer(h);
    timer.Stop();
    timer.Stop();  // idempotent
  }
  EXPECT_EQ(h->count(), 2);
}

TEST(ScopedTimerTest, NullHistogramIsNoop) {
  ScopedTimer timer(nullptr);
  timer.Stop();  // must not crash
}

// ---------------------------------------------------------------------------
// End-to-end: run SCR / AsyncScr over a real workload with obs attached.

class ObsIntegrationTest : public ::testing::Test {
 protected:
  ObsIntegrationTest()
      : db_(testing::MakeSmallDatabase(5000, 200)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {
    Pcg32 rng(99);
    for (int i = 0; i < 60; ++i) {
      WorkloadInstance wi;
      wi.id = i;
      wi.instance = InstanceForSelectivities(
          db_, *tmpl_, {rng.UniformDouble(0.05, 0.95),
                        rng.UniformDouble(0.05, 0.95)});
      wi.svector = ComputeSelectivityVector(db_, wi.instance);
      instances_.push_back(std::move(wi));
      permutation_.push_back(i);
    }
    oracle_ = Oracle::Build(optimizer_, instances_);
  }

  SequenceMetrics Run(PqoTechnique* technique, Tracer* tracer,
                      MetricsRegistry* metrics) {
    RunSequenceOptions opts;
    opts.lambda_for_violations = 2.0;
    opts.ordering_name = "random";
    opts.tracer = tracer;
    opts.metrics = metrics;
    return RunSequence(optimizer_, instances_, permutation_, oracle_,
                       technique, opts);
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
  std::vector<WorkloadInstance> instances_;
  std::vector<int> permutation_;
  Oracle oracle_;
};

TEST_F(ObsIntegrationTest, ScrEmitsOneDecisionPerInstance) {
  Tracer tracer(1 << 12);
  MetricsRegistry registry;
  Scr scr(ScrOptions{});
  SequenceMetrics m = Run(&scr, &tracer, &registry);

  auto events = tracer.Snapshot();
  int64_t decisions = 0;
  int64_t optimizer_events = 0;
  for (const DecisionEvent& e : events) {
    EXPECT_GE(e.instance_id, 0);
    EXPECT_EQ(e.technique, scr.name());
    if (IsDecisionOutcome(e.outcome)) {
      ++decisions;
      if (e.outcome == DecisionOutcome::kOptimized ||
          e.outcome == DecisionOutcome::kRedundantDiscard) {
        ++optimizer_events;
      }
    }
  }
  EXPECT_EQ(decisions, m.m);
  EXPECT_EQ(optimizer_events, m.num_opt);

  // Counters agree with the trace and the classic metrics.
  RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("decision.sel_check_hits") +
                snap.CounterValue("decision.cost_check_hits") +
                snap.CounterValue("decision.optimized") +
                snap.CounterValue("decision.redundant_discards"),
            m.m);
  EXPECT_EQ(snap.CounterValue("engine.optimize_calls"), m.num_opt);
  EXPECT_EQ(snap.CounterValue("engine.recost_calls"), m.num_recost_calls);
  // SequenceMetrics carries the same snapshot, pointer-free.
  EXPECT_EQ(m.obs.CounterValue("engine.optimize_calls"), m.num_opt);
  bool found_hist = false;
  for (const HistogramSnapshot& h : m.obs.histograms) {
    if (h.name == "get_plan_micros") {
      found_hist = true;
      EXPECT_EQ(h.count, m.m);
      EXPECT_GE(h.p99, h.p50);
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST_F(ObsIntegrationTest, ScrCheckHitEventsCarryGlr) {
  Tracer tracer(1 << 12);
  Scr scr(ScrOptions{});
  Run(&scr, &tracer, nullptr);
  int sel_hits = 0;
  for (const DecisionEvent& e : tracer.Snapshot()) {
    if (e.outcome == DecisionOutcome::kSelCheckHit) {
      ++sel_hits;
      EXPECT_GE(e.g, 1.0);
      EXPECT_GE(e.l, 1.0);
      // G*L within the loosest possible bound for a fresh entry.
      EXPECT_LE(e.g * e.l, 2.0 + 1e-9);
    }
    if (e.outcome == DecisionOutcome::kCostCheckHit) {
      EXPECT_GT(e.r, 0.0);
      EXPECT_GE(e.recost_calls, 1);
      EXPECT_GE(e.candidates_scanned, e.recost_calls);
    }
  }
  EXPECT_GT(sel_hits, 0);
}

TEST_F(ObsIntegrationTest, ScrEvictionEventsUnderPlanBudget) {
  Tracer tracer(1 << 12);
  MetricsRegistry registry;
  Scr scr(ScrOptions{.lambda = 1.05, .lambda_r = 1.0, .plan_budget = 1});
  SequenceMetrics m = Run(&scr, &tracer, &registry);
  int64_t evictions = 0;
  int64_t decisions = 0;
  for (const DecisionEvent& e : tracer.Snapshot()) {
    if (e.outcome == DecisionOutcome::kEvicted) {
      ++evictions;
      EXPECT_GE(e.matched_entry, 0);
    } else {
      ++decisions;
    }
  }
  EXPECT_EQ(decisions, m.m);  // cache events never displace decisions
  EXPECT_GT(evictions, 0);
  EXPECT_EQ(registry.Snapshot().CounterValue("cache.evictions"), evictions);
}

TEST_F(ObsIntegrationTest, AsyncScrTraceCompleteAfterRun) {
  Tracer tracer(1 << 12);
  MetricsRegistry registry;
  {
    AsyncScr async(ScrOptions{});
    SequenceMetrics m = Run(&async, &tracer, &registry);
    // RunSequence flushes the worker, so every deferred manageCache event
    // has landed by the time it returns.
    int64_t decisions = 0;
    for (const DecisionEvent& e : tracer.Snapshot()) {
      if (IsDecisionOutcome(e.outcome)) ++decisions;
    }
    EXPECT_EQ(decisions, m.m);
    EXPECT_GT(m.max_recost_per_get_plan, 0);
  }
}

TEST_F(ObsIntegrationTest, PcmReportsRecostAndEvents) {
  Tracer tracer(1 << 12);
  MetricsRegistry registry;
  Pcm pcm(PcmOptions{.lambda = 2.0, .recost_redundancy_lambda_r = 1.4});
  SequenceMetrics m = Run(&pcm, &tracer, &registry);
  int64_t decisions = 0;
  for (const DecisionEvent& e : tracer.Snapshot()) {
    EXPECT_EQ(e.technique, pcm.name());
    if (IsDecisionOutcome(e.outcome)) ++decisions;
  }
  EXPECT_EQ(decisions, m.m);
  // The +R variant recosts inside getPlan; the bounded-recost metric must
  // see it (satellite: PCM used to always report 0).
  EXPECT_GT(m.max_recost_per_get_plan, 0);
  EXPECT_EQ(registry.Snapshot().CounterValue("decision.optimized") +
                registry.Snapshot().CounterValue(
                    "decision.redundant_discards"),
            m.num_opt);
}

TEST_F(ObsIntegrationTest, DisabledObsLeavesChoiceStatsPopulated) {
  Scr scr(ScrOptions{});
  SequenceMetrics m = Run(&scr, nullptr, nullptr);
  EXPECT_TRUE(m.obs.counters.empty());
  EXPECT_TRUE(m.obs.histograms.empty());
  EXPECT_GT(m.num_opt, 0);
}

}  // namespace
}  // namespace scrpqo

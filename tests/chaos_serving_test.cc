// Chaos suite for the hardened serving path: drives Scr / AsyncScr /
// PqoManager traffic while the fault-injection registry
// (common/fault_injection.h) fails optimizer calls, poisons recost
// results, drops async manageCache tasks, corrupts snapshots and fails
// cold-path allocations. Asserts the degradation contract:
//
//   - no crash, and every instance still gets a plan wherever one exists;
//   - decisions that kept the lambda guarantee audit clean (zero
//     violations among non-degraded decisions);
//   - decisions that dropped the guarantee are traced as kDegraded with
//     no lambda claim;
//   - once faults stop, serving converges back to normal.
//
// CI runs this file under ASan and TSan across a fixed seed sweep
// (SCRPQO_FAULT_SEED); the fixture honors that variable so each sweep
// point replays a different deterministic fault schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "pqo/async_scr.h"
#include "pqo/cache_persistence.h"
#include "query/query_instance.h"
#include "tests/test_util.h"
#include "verify/guarantee_audit.h"
#include "workload/multi_template.h"

namespace scrpqo {
namespace {

int64_t CountOutcome(const std::vector<DecisionEvent>& events,
                     DecisionOutcome outcome) {
  int64_t n = 0;
  for (const DecisionEvent& e : events) {
    if (e.outcome == outcome) ++n;
  }
  return n;
}

class ChaosServingTest : public ::testing::Test {
 protected:
  ChaosServingTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetSeed(SweepSeed());
  }

  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetSeed(0);
  }

  /// The chaos CI job sweeps SCRPQO_FAULT_SEED; default is the paper's
  /// publication date so local runs are deterministic too.
  static uint64_t SweepSeed() {
    const char* env = std::getenv("SCRPQO_FAULT_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<uint64_t>(std::atoll(env));
    }
    return 20170514;
  }

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  void Warm(PqoTechnique* t, EngineContext* engine, int m = 60,
            uint64_t stream_seed = 5) {
    Pcg32 rng(stream_seed);
    for (int i = 0; i < m; ++i) {
      PlanChoice c = t->OnInstance(MakeWi(i, rng.UniformDouble(0.005, 0.95),
                                          rng.UniformDouble(0.005, 0.95)),
                                   engine);
      ASSERT_NE(c.plan, nullptr);
    }
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(ChaosServingTest, OptimizerFailureFallsBackToCachedPlanNoGuarantee) {
  Scr scr(ScrOptions{.lambda = 1.5});
  Tracer tracer(1 << 14);
  MetricsRegistry registry;
  scr.SetObs(ObsHooks{&tracer, &registry});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine);

  // From here every optimizer call fails; misses must degrade to the best
  // cached plan instead of crashing or claiming the bound.
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  FaultRegistry::Global().Arm(faults::kOptimizeFail, spec);

  Pcg32 rng(11);
  int64_t degraded = 0;
  for (int i = 0; i < 60; ++i) {
    PlanChoice c = scr.OnInstance(
        MakeWi(1000 + i, rng.UniformDouble(0.005, 0.95),
               rng.UniformDouble(0.005, 0.95)),
        &engine);
    ASSERT_NE(c.plan, nullptr) << "cache had plans to fall back on";
    if (c.degraded) {
      ++degraded;
      EXPECT_FALSE(c.optimized);
    }
  }
  ASSERT_GT(degraded, 0) << "probe stream never missed the warm cache";
  EXPECT_EQ(registry.Snapshot().CounterValue("pqo.degraded_decisions"),
            degraded);

  std::vector<DecisionEvent> events = tracer.Snapshot();
  EXPECT_EQ(CountOutcome(events, DecisionOutcome::kDegraded), degraded);
  for (const DecisionEvent& e : events) {
    if (e.outcome == DecisionOutcome::kDegraded) {
      EXPECT_LT(e.lambda, 0.0)
          << "a degraded serving must not claim a lambda bound";
    }
  }
  // Zero violations among the decisions still claiming the guarantee.
  AuditReport report = AuditTrace(events, AuditConfig{});
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(ChaosServingTest, EmptyCacheOptimizerFailureRetriesWithBackoff) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);

  // Fails the 1st, 3rd, 5th... optimizer call: the initial warm-up
  // Optimize fails, the first bounded-backoff retry succeeds, and the
  // decision recovers to a normal optimized (guaranteed) one.
  FaultSpec spec;
  spec.trigger = FaultTrigger::kEveryNth;
  spec.nth = 2;
  FaultRegistry::Global().Arm(faults::kOptimizeFail, spec);

  PlanChoice c = scr.OnInstance(MakeWi(0, 0.3, 0.3), &engine);
  ASSERT_NE(c.plan, nullptr);
  EXPECT_TRUE(c.optimized);
  EXPECT_FALSE(c.degraded) << "a successful retry keeps the guarantee";
  EXPECT_GE(scr.NumPlansCached(), 1);
  EXPECT_GE(FaultRegistry::Global().StatsFor(faults::kOptimizeFail).fires, 1);
}

TEST_F(ChaosServingTest, EmptyCacheWithAllRetriesFailingServesNothing) {
  Scr scr(ScrOptions{.lambda = 1.5});
  Tracer tracer(1 << 10);
  scr.SetObs(ObsHooks{&tracer, nullptr});
  EngineContext engine(&db_, &optimizer_);

  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  FaultRegistry::Global().Arm(faults::kOptimizeFail, spec);

  // Worst case: cold cache and a dead optimizer. The contract is a clean
  // degraded decision with a null plan — never a crash.
  PlanChoice c = scr.OnInstance(MakeWi(0, 0.3, 0.3), &engine);
  EXPECT_EQ(c.plan, nullptr);
  EXPECT_TRUE(c.degraded);
  EXPECT_FALSE(c.optimized);
  std::vector<DecisionEvent> events = tracer.Snapshot();
  EXPECT_EQ(CountOutcome(events, DecisionOutcome::kDegraded), 1);
  EXPECT_TRUE(AuditTrace(events, AuditConfig{}).ok());

  // Optimizer comes back: the same technique serves normally again.
  FaultRegistry::Global().DisarmAll();
  PlanChoice recovered = scr.OnInstance(MakeWi(1, 0.3, 0.3), &engine);
  ASSERT_NE(recovered.plan, nullptr);
  EXPECT_FALSE(recovered.degraded);
}

TEST_F(ChaosServingTest, NonFiniteRecostQuarantinesInsteadOfBadReuse) {
  // Satellite regression: a reuse decision must never compute R * L <=
  // lambda / S with a non-finite R. With every recost poisoned to NaN the
  // cost check quarantines entries (Appendix G) and falls through to the
  // optimizer; nothing reuses on NaN arithmetic.
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 40);
  const int64_t violations_before = scr.violations_detected();

  // Attach the tracer only now: warm-phase cost-check hits are legitimate
  // and would otherwise be counted against the NaN-era assertion below.
  Tracer tracer(1 << 14);
  scr.SetObs(ObsHooks{&tracer, nullptr});

  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  FaultRegistry::Global().Arm(faults::kRecostNonFinite, spec);

  Pcg32 rng(13);
  for (int i = 0; i < 40; ++i) {
    PlanChoice c = scr.OnInstance(
        MakeWi(2000 + i, rng.UniformDouble(0.005, 0.95),
               rng.UniformDouble(0.005, 0.95)),
        &engine);
    ASSERT_NE(c.plan, nullptr);
  }
  EXPECT_GT(scr.violations_detected(), violations_before)
      << "non-finite recosts must quarantine entries";
  std::vector<DecisionEvent> events = tracer.Snapshot();
  EXPECT_EQ(CountOutcome(events, DecisionOutcome::kCostCheckHit), 0)
      << "no cost-check hit can be justified while every recost is NaN";
  EXPECT_TRUE(AuditTrace(events, AuditConfig{}).ok());
}

TEST_F(ChaosServingTest, PerturbedRecostsStayAuditConsistent) {
  // A mis-costing engine (recosts scaled 10x at 30% rate) makes decisions
  // conservative, not inconsistent: every recorded decision still audits
  // clean because the technique used the same (wrong) R it recorded.
  Scr scr(ScrOptions{.lambda = 1.5});
  Tracer tracer(1 << 14);
  scr.SetObs(ObsHooks{&tracer, nullptr});
  EngineContext engine(&db_, &optimizer_);

  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 0.3;
  spec.param = 10.0;
  FaultRegistry::Global().Arm(faults::kRecostPerturb, spec);

  Pcg32 rng(17);
  for (int i = 0; i < 120; ++i) {
    PlanChoice c = scr.OnInstance(
        MakeWi(i, rng.UniformDouble(0.005, 0.95),
               rng.UniformDouble(0.005, 0.95)),
        &engine);
    ASSERT_NE(c.plan, nullptr);
  }
  AuditReport report = AuditTrace(tracer.Snapshot(), AuditConfig{});
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(ChaosServingTest, AsyncTaskDropsKeepServingWithoutCacheGrowth) {
  AsyncScr async(ScrOptions{.lambda = 1.5});
  Tracer tracer(1 << 14);
  MetricsRegistry registry;
  async.SetObs(ObsHooks{&tracer, &registry});
  EngineContext engine(&db_, &optimizer_);

  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  FaultRegistry::Global().Arm(faults::kAsyncTaskFail, spec);

  Pcg32 rng(19);
  for (int i = 0; i < 30; ++i) {
    PlanChoice c = async.OnInstance(
        MakeWi(i, rng.UniformDouble(0.005, 0.95),
               rng.UniformDouble(0.005, 0.95)),
        &engine);
    ASSERT_NE(c.plan, nullptr)
        << "misses optimize synchronously; dropped manageCache must not "
           "lose the plan the query already has";
    EXPECT_TRUE(c.optimized);
  }
  async.Flush();
  EXPECT_EQ(async.NumPlansCached(), 0)
      << "every deferred manageCache was dropped";
  EXPECT_EQ(registry.Snapshot().CounterValue("async_scr.tasks_dropped"),
            FaultRegistry::Global().StatsFor(faults::kAsyncTaskFail).fires);

  // Worker recovers once the fault stops: the next miss populates the
  // cache again.
  FaultRegistry::Global().DisarmAll();
  (void)async.OnInstance(MakeWi(100, 0.4, 0.4), &engine);
  async.Flush();
  EXPECT_GE(async.NumPlansCached(), 1);
}

TEST_F(ChaosServingTest, ColdPathAllocFailureServesPlanUncached) {
  Scr scr(ScrOptions{.lambda = 1.5});
  Tracer tracer(1 << 12);
  scr.SetObs(ObsHooks{&tracer, nullptr});
  EngineContext engine(&db_, &optimizer_);

  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  FaultRegistry::Global().Arm(faults::kColdAllocFail, spec);

  Pcg32 rng(23);
  for (int i = 0; i < 20; ++i) {
    PlanChoice c = scr.OnInstance(
        MakeWi(i, rng.UniformDouble(0.005, 0.95),
               rng.UniformDouble(0.005, 0.95)),
        &engine);
    ASSERT_NE(c.plan, nullptr);
    EXPECT_TRUE(c.optimized);
  }
  EXPECT_EQ(scr.NumPlansCached(), 0);
  EXPECT_EQ(scr.NumInstancesStored(), 0);
  EXPECT_TRUE(AuditTrace(tracer.Snapshot(), AuditConfig{}).ok());

  // Allocation pressure clears: caching resumes.
  FaultRegistry::Global().DisarmAll();
  (void)scr.OnInstance(MakeWi(100, 0.4, 0.4), &engine);
  EXPECT_GE(scr.NumPlansCached(), 1);
}

TEST_F(ChaosServingTest, OptimizeDeadlineOverrunDegrades) {
  Scr scr(ScrOptions{.lambda = 1.5});
  Tracer tracer(1 << 14);
  scr.SetObs(ObsHooks{&tracer, nullptr});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine);

  // A 2 ms artificial optimizer stall against a 200 us deadline: every
  // miss overruns and must degrade to the warm cache.
  engine.SetOptimizeDeadlineMicros(200);
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  spec.param = 2000.0;  // microseconds of injected latency
  FaultRegistry::Global().Arm(faults::kOptimizeLatency, spec);

  Pcg32 rng(29);
  int64_t degraded = 0;
  for (int i = 0; i < 30; ++i) {
    PlanChoice c = scr.OnInstance(
        MakeWi(3000 + i, rng.UniformDouble(0.005, 0.95),
               rng.UniformDouble(0.005, 0.95)),
        &engine);
    ASSERT_NE(c.plan, nullptr);
    if (c.degraded) ++degraded;
  }
  ASSERT_GT(degraded, 0) << "probe stream never missed the warm cache";
  EXPECT_GT(engine.optimize_deadline_overruns(), 0);
  EXPECT_TRUE(AuditTrace(tracer.Snapshot(), AuditConfig{}).ok());
}

TEST_F(ChaosServingTest, TruncatedSnapshotRestoresValidPrefix) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine);
  const std::string path =
      ::testing::TempDir() + "/scrpqo_chaos_snapshot.txt";
  ASSERT_TRUE(SaveScrCacheToFile(scr, path).ok());

  FaultSpec spec;
  spec.trigger = FaultTrigger::kOneShot;
  spec.param = 0.5;  // load sees only the first half of the file
  FaultRegistry::Global().Arm(faults::kSnapshotTruncate, spec);

  Scr restored(ScrOptions{.lambda = 1.5});
  SnapshotRestoreReport report;
  Status st = LoadScrCacheFromFileLenient(path, &restored, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_LE(restored.NumPlansCached(), scr.NumPlansCached());
  EXPECT_LT(restored.NumInstancesStored(), scr.NumInstancesStored());
  EXPECT_EQ(restored.NumInstancesStored(), report.entries_restored);

  // The partial cache serves immediately — worst case is colder, not
  // broken.
  EngineContext e2(&db_, &optimizer_);
  PlanChoice c = restored.OnInstance(MakeWi(5000, 0.3, 0.3), &e2);
  EXPECT_NE(c.plan, nullptr);
  std::remove(path.c_str());
}

TEST_F(ChaosServingTest, BitFlippedHeaderFailsLoadButServiceColdStarts) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  Warm(&scr, &engine, 30);
  const std::string path =
      ::testing::TempDir() + "/scrpqo_chaos_bitflip.txt";
  ASSERT_TRUE(SaveScrCacheToFile(scr, path).ok());

  // Byte 3 sits inside the header line: even the lenient loader must
  // reject a snapshot whose header is rotted (there is no trusted prefix).
  FaultSpec spec;
  spec.trigger = FaultTrigger::kOneShot;
  spec.param = 3.0;
  FaultRegistry::Global().Arm(faults::kSnapshotBitFlip, spec);

  Scr restored(ScrOptions{.lambda = 1.5});
  SnapshotRestoreReport report;
  EXPECT_FALSE(LoadScrCacheFromFileLenient(path, &restored, &report).ok());

  // The degradation is a cold start, never a crash.
  EngineContext e2(&db_, &optimizer_);
  PlanChoice c = restored.OnInstance(MakeWi(0, 0.3, 0.3), &e2);
  EXPECT_NE(c.plan, nullptr);
  std::remove(path.c_str());
}

// --- acceptance sweep: each fault point alone at 10%, multi-threaded ---

TEST_F(ChaosServingTest, AnySingleFaultPointAtTenPercentAuditsClean) {
  const char* points[] = {
      faults::kOptimizeFail,   faults::kRecostNonFinite,
      faults::kRecostPerturb,  faults::kAsyncTaskFail,
      faults::kColdAllocFail,
  };
  TemplateFleet fleet(4, 6);
  for (const char* point : points) {
    SCOPED_TRACE(point);
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetSeed(SweepSeed());
    FaultSpec spec;
    spec.trigger = FaultTrigger::kProbability;
    spec.probability = 0.1;
    FaultRegistry::Global().Arm(point, spec);

    PqoManagerOptions opts;
    opts.use_async = true;
    opts.warmup_instances = 2;
    opts.num_shards = 2;
    PqoManager mgr(opts);
    Tracer tracer(1 << 15);
    MetricsRegistry registry;
    mgr.SetObs(ObsHooks{&tracer, &registry});

    MultiTemplateRunOptions run;
    run.threads = 4;
    run.rounds = 2;
    MultiTemplateRunResult result =
        RunMultiTemplate(&mgr, fleet.served(), run);
    EXPECT_GT(result.instances_served, 0);
    if (std::string(point) != faults::kOptimizeFail) {
      // Only a dead optimizer on an empty cache can lose an instance.
      EXPECT_EQ(result.lost, 0);
    }

    // Zero lambda-guarantee violations among decisions that still claim
    // the bound; degraded decisions claim nothing and are excluded by
    // construction (the audit flags any that carry a lambda).
    AuditReport report = AuditTrace(tracer.Snapshot(), AuditConfig{});
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST_F(ChaosServingTest, RandomizedFaultMixConvergesAfterDisarm) {
  TemplateFleet fleet(4, 6, /*seed=*/123);
  PqoManagerOptions opts;
  opts.use_async = true;
  opts.warmup_instances = 2;
  opts.num_shards = 2;
  PqoManager mgr(opts);
  Tracer tracer(1 << 15);
  MetricsRegistry registry;
  mgr.SetObs(ObsHooks{&tracer, &registry});

  // Phase 1: everything fails a fifth of the time.
  ASSERT_TRUE(FaultRegistry::Global()
                  .ConfigureFromString(
                      "optimizer.fail=p0.2;recost.nonfinite=p0.2;"
                      "recost.perturb=p0.2@10;async_scr.task_fail=p0.2;"
                      "scr.cold_alloc=p0.2")
                  .ok());
  FaultRegistry::Global().SetSeed(SweepSeed());
  MultiTemplateRunOptions run;
  run.threads = 4;
  run.rounds = 2;
  (void)RunMultiTemplate(&mgr, fleet.served(), run);
  const int64_t degraded_during_chaos =
      CountOutcome(tracer.Snapshot(), DecisionOutcome::kDegraded);

  // Phase 2: faults stop; serving must converge back to normal —
  // no new degraded decisions, caches repopulate, audit stays clean.
  FaultRegistry::Global().DisarmAll();
  MultiTemplateRunResult recovery =
      RunMultiTemplate(&mgr, fleet.served(), run);
  EXPECT_EQ(recovery.lost, 0);
  EXPECT_GT(recovery.plans_cached, 0);
  std::vector<DecisionEvent> events = tracer.Snapshot();
  EXPECT_EQ(CountOutcome(events, DecisionOutcome::kDegraded),
            degraded_during_chaos)
      << "degraded servings after faults stopped";
  AuditReport report = AuditTrace(events, AuditConfig{});
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace scrpqo

// Concurrent multi-template stress tests for PqoManager: many threads over
// many templates, mixed with invalidations and stat reads, asserting the
// three properties the sharded design promises — no instance is ever lost,
// the global budget holds after quiescence, and the merged decision trace
// audits clean per template.
//
// These run under TSan in CI (gtest_filter PqoManager*), so any data race
// in the shard map, warm-up state, or cross-template evictor fails there.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "verify/guarantee_audit.h"
#include "workload/multi_template.h"

namespace scrpqo {
namespace {

TEST(PqoManagerConcurrentTest, StressNoLostInstancesAndBudgetHolds) {
  constexpr int kTemplates = 16;
  constexpr int kInstances = 12;
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  constexpr int64_t kBudget = 8;  // < kTemplates: forces cross-template LFU

  TemplateFleet fleet(kTemplates, kInstances);
  PqoManagerOptions opts;
  opts.use_async = true;
  opts.warmup_instances = 2;
  opts.global_plan_budget = kBudget;
  opts.num_shards = 4;
  PqoManager mgr(opts);
  Tracer tracer(1 << 15);
  MetricsRegistry registry;
  mgr.SetObs(ObsHooks{&tracer, &registry});

  MultiTemplateRunOptions run;
  run.threads = kThreads;
  run.rounds = kRounds;
  MultiTemplateRunResult result =
      RunMultiTemplate(&mgr, fleet.served(), run);

  // Every submitted instance came back with a plan.
  EXPECT_EQ(result.instances_served,
            int64_t{kTemplates} * kInstances * kRounds);
  EXPECT_EQ(result.lost, 0);

  // RunMultiTemplate quiesced via FlushAll, so the budget is a hard bound
  // now (AsyncScr may only overshoot transiently between enforcements).
  EXPECT_LE(result.plans_cached, kBudget);
  EXPECT_LE(mgr.TotalPlansCached(), kBudget);
  EXPECT_GT(result.global_evictions, 0);
  EXPECT_EQ(mgr.NumTemplates(), kTemplates);

  // The merged trace audits clean, and per-template rollups show each
  // template serving under a single lambda.
  AuditConfig config;  // trust each event's recorded lambda
  AuditReport report = AuditTrace(tracer.Snapshot(), config);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_FALSE(report.by_template.empty());
  for (const auto& [key, summary] : report.by_template) {
    EXPECT_LE(summary.lambdas.size(), 1u)
        << "template " << key << " audited under multiple bounds";
  }

  // The sharded map saw real multi-template traffic.
  auto snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("pqo_manager.templates"), kTemplates);
  EXPECT_EQ(snap.CounterValue("pqo_manager.global_evictions"),
            mgr.global_evictions());
}

TEST(PqoManagerConcurrentTest, InvalidationChaosKeepsServing) {
  constexpr int kTemplates = 16;
  constexpr int kInstances = 8;
  constexpr int kServers = 4;
  constexpr int kPerThread = 400;

  TemplateFleet fleet(kTemplates, kInstances);
  PqoManagerOptions opts;
  opts.use_async = true;
  opts.warmup_instances = 1;
  opts.global_plan_budget = 12;
  opts.num_shards = 4;
  PqoManager mgr(opts);
  Tracer tracer(1 << 14);
  MetricsRegistry registry;
  mgr.SetObs(ObsHooks{&tracer, &registry});

  const std::vector<ServedTemplate>& served = fleet.served();
  std::atomic<int64_t> lost{0};
  std::atomic<bool> stop{false};

  // A chaos thread invalidates templates and reads stats while servers
  // hammer OnInstance on the same keys.
  std::thread chaos([&] {
    size_t k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      mgr.InvalidateTemplate(served[k % served.size()].key);
      (void)mgr.LambdaFor(served[(k + 3) % served.size()].key);
      (void)mgr.TotalPlansCached();
      (void)mgr.TotalMemoryBytes();
      (void)mgr.NumTemplates();
      (void)mgr.global_evictions();
      ++k;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> servers;
  for (int t = 0; t < kServers; ++t) {
    servers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const ServedTemplate& st =
            served[static_cast<size_t>(t + i) % served.size()];
        const WorkloadInstance& wi =
            (*st.instances)[static_cast<size_t>(i) % st.instances->size()];
        PlanChoice c = mgr.OnInstance(st.key, wi, st.engine);
        if (c.plan == nullptr) lost.fetch_add(1);
      }
    });
  }
  for (std::thread& th : servers) th.join();
  stop.store(true);
  chaos.join();

  // Invalidation may drop caches mid-flight, but never a served instance:
  // every call either reused a plan or optimized one.
  EXPECT_EQ(lost.load(), 0);

  mgr.FlushAll();
  EXPECT_LE(mgr.TotalPlansCached(), 12);

  // The trace still audits clean despite caches being torn down and
  // rebuilt under load.
  AuditReport report = AuditTrace(tracer.Snapshot(), AuditConfig{});
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(registry.Snapshot().CounterValue("pqo_manager.invalidations"),
            0);
}

TEST(PqoManagerConcurrentTest, WarmupOptimizeRunsOutsideTemplateLock) {
  // All threads pile onto ONE cold template whose warm-up needs several
  // instances. Warm-up Optimize runs outside TemplateState::mu (tracked by
  // warmup_inflight), so optimizations overlap; any arrival in the gap
  // between the last counted attempt and its completion takes an extra
  // Optimize-Always pass — bound exactly 1, nothing lost, and warm-up
  // still terminates. TSan validates the inflight handshake.
  TemplateFleet fleet(1, 8);
  PqoManagerOptions opts;
  opts.warmup_instances = 4;
  PqoManager mgr(opts);
  Tracer tracer(1 << 13);
  MetricsRegistry registry;
  mgr.SetObs(ObsHooks{&tracer, &registry});

  const ServedTemplate& st = fleet.served()[0];
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int64_t> lost{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const WorkloadInstance& wi =
            (*st.instances)[static_cast<size_t>(t + i) % st.instances->size()];
        PlanChoice c = mgr.OnInstance(st.key, wi, st.engine);
        if (c.plan == nullptr) lost.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(lost.load(), 0);
  // Warm-up completed (enough attempts landed and no optimize was left
  // inflight), so the template now serves under a selected lambda >= 1.
  EXPECT_GE(mgr.LambdaFor(st.key), 1.0);
  AuditReport report = AuditTrace(tracer.Snapshot(), AuditConfig{});
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(PqoManagerConcurrentTest, StatuszJsonRacesServingAndInvalidation) {
  // StatuszJson reads each template's const `key` without that template's
  // lock while servers create/serve templates and a chaos thread tears
  // them down. TSan certifies the publication discipline (key set before
  // the shared_ptr is published to the shard map).
  constexpr int kTemplates = 8;
  TemplateFleet fleet(kTemplates, 6);
  PqoManagerOptions opts;
  opts.warmup_instances = 1;
  opts.num_shards = 4;
  PqoManager mgr(opts);

  const std::vector<ServedTemplate>& served = fleet.served();
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::string json = mgr.StatuszJson();
      EXPECT_NE(json.find("\"templates\""), std::string::npos);
      std::this_thread::yield();
    }
  });
  std::thread chaos([&] {
    size_t k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      mgr.InvalidateTemplate(served[k % served.size()].key);
      ++k;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> servers;
  for (int t = 0; t < 4; ++t) {
    servers.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        const ServedTemplate& s =
            served[static_cast<size_t>(t + i) % served.size()];
        const WorkloadInstance& wi =
            (*s.instances)[static_cast<size_t>(i) % s.instances->size()];
        PlanChoice c = mgr.OnInstance(s.key, wi, s.engine);
        EXPECT_NE(c.plan, nullptr);
      }
    });
  }
  for (std::thread& th : servers) th.join();
  stop.store(true);
  reader.join();
  chaos.join();

  // A trailing invalidation may have removed a template for good; serve
  // one instance per template to re-create it, then the snapshot must
  // reflect the full fleet.
  for (const ServedTemplate& s : served) {
    (void)mgr.OnInstance(s.key, (*s.instances)[0], s.engine);
  }
  std::string json = mgr.StatuszJson();
  for (const ServedTemplate& s : served) {
    EXPECT_NE(json.find(s.key), std::string::npos) << s.key;
  }
}

TEST(PqoManagerConcurrentTest, ShardLockWaitHistogramPopulated) {
  TemplateFleet fleet(4, 4);
  PqoManagerOptions opts;
  opts.num_shards = 2;
  PqoManager mgr(opts);
  MetricsRegistry registry;
  mgr.SetObs(ObsHooks{nullptr, &registry});

  MultiTemplateRunOptions run;
  run.threads = 2;
  run.rounds = 2;
  (void)RunMultiTemplate(&mgr, fleet.served(), run);

  auto snap = registry.Snapshot();
  const HistogramSnapshot* h =
      snap.FindHistogram("pqo_manager.shard_lock_wait");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count, 0);
}

}  // namespace
}  // namespace scrpqo

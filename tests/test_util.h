// Shared fixtures for unit and integration tests: a compact two-table
// database with data materialized (for executor tests) and helpers to build
// templates/instances quickly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query_instance.h"
#include "query/query_template.h"
#include "storage/database.h"

namespace scrpqo::testing {

/// A small orders/customers-style database with indexes on keys and one
/// predicate column, materialized rows, deterministic content.
inline Database MakeSmallDatabase(int64_t fact_rows = 2000,
                                  int64_t dim_rows = 200,
                                  uint64_t seed = 7) {
  std::vector<TableDef> defs;
  {
    TableDef t;
    t.name = "dim";
    t.row_count = dim_rows;
    ColumnDef pk;
    pk.name = "d_key";
    pk.type = DataType::kInt64;
    pk.distribution = ColumnDistribution::kSequential;
    ColumnDef attr;
    attr.name = "d_attr";
    attr.type = DataType::kInt64;
    attr.distribution = ColumnDistribution::kUniform;
    attr.min_value = 0;
    attr.max_value = 100;
    t.columns = {pk, attr};
    t.indexes = {IndexDef{"ix_d_key", "d_key", false}};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "fact";
    t.row_count = fact_rows;
    ColumnDef fk;
    fk.name = "f_dim";
    fk.type = DataType::kInt64;
    fk.distribution = ColumnDistribution::kForeignKey;
    fk.ref_table = "dim";
    ColumnDef v1;
    v1.name = "f_value";
    v1.type = DataType::kInt64;
    v1.distribution = ColumnDistribution::kUniform;
    v1.min_value = 0;
    v1.max_value = 10000;
    ColumnDef v2;
    v2.name = "f_weight";
    v2.type = DataType::kDouble;
    v2.distribution = ColumnDistribution::kZipf;
    v2.min_value = 0;
    v2.max_value = 1000;
    v2.zipf_theta = 1.0;
    t.columns = {fk, v1, v2};
    t.indexes = {IndexDef{"ix_f_dim", "f_dim", false},
                 IndexDef{"ix_f_value", "f_value", false}};
    defs.push_back(t);
  }
  GeneratorOptions opts;
  opts.seed = seed;
  opts.materialize_rows = true;
  return GenerateDatabase(std::move(defs), opts);
}

/// fact JOIN dim with two parameterized predicates
/// (fact.f_value <= $0, dim.d_attr <= $1).
inline std::shared_ptr<QueryTemplate> MakeJoinTemplate() {
  auto tmpl = std::make_shared<QueryTemplate>(
      "test_join", std::vector<std::string>{"fact", "dim"});
  JoinEdge e;
  e.left_table = 0;
  e.left_column = "f_dim";
  e.right_table = 1;
  e.right_column = "d_key";
  tmpl->AddJoin(e);
  PredicateTemplate p0;
  p0.table_index = 0;
  p0.column = "f_value";
  p0.op = CompareOp::kLe;
  p0.param_slot = 0;
  SCRPQO_CHECK(tmpl->AddPredicate(std::move(p0)).ok(), "pred0");
  PredicateTemplate p1;
  p1.table_index = 1;
  p1.column = "d_attr";
  p1.op = CompareOp::kLe;
  p1.param_slot = 1;
  SCRPQO_CHECK(tmpl->AddPredicate(std::move(p1)).ok(), "pred1");
  return tmpl;
}

/// Single-table template on fact with one parameterized predicate.
inline std::shared_ptr<QueryTemplate> MakeScanTemplate() {
  auto tmpl = std::make_shared<QueryTemplate>(
      "test_scan", std::vector<std::string>{"fact"});
  PredicateTemplate p0;
  p0.table_index = 0;
  p0.column = "f_value";
  p0.op = CompareOp::kLe;
  p0.param_slot = 0;
  SCRPQO_CHECK(tmpl->AddPredicate(std::move(p0)).ok(), "pred0");
  return tmpl;
}

}  // namespace scrpqo::testing

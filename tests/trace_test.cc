#include <gtest/gtest.h>

#include <cstdio>

#include "workload/instance_gen.h"
#include "workload/trace.h"

namespace scrpqo {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    SchemaScale scale;
    scale.factor = 0.3;
    tpch_ = BuildTpchSkewed(scale);
    bt_ = BuildExample2dTemplate(tpch_);
  }

  BenchmarkDb tpch_;
  BoundTemplate bt_;
};

TEST_F(TraceTest, RoundTripPreservesInstances) {
  InstanceGenOptions gen;
  gen.m = 40;
  auto instances = GenerateInstances(bt_, gen);
  std::string csv = SerializeTrace(instances);
  auto loaded = ParseTrace(bt_, csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& got = loaded.ValueOrDie();
  ASSERT_EQ(got.size(), instances.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, instances[i].id);
    EXPECT_EQ(got[i].instance.params(), instances[i].instance.params());
    EXPECT_EQ(got[i].svector, instances[i].svector);
  }
}

TEST_F(TraceTest, CsvShapeIsStable) {
  InstanceGenOptions gen;
  gen.m = 3;
  auto instances = GenerateInstances(bt_, gen);
  std::string csv = SerializeTrace(instances);
  // Three lines, each with id + 2 params.
  int lines = 0, commas = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
    if (c == ',') ++commas;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(commas, 6);
}

TEST_F(TraceTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTrace(bt_, "1,2").ok());          // missing a param
  EXPECT_FALSE(ParseTrace(bt_, "x,1,2").ok());        // bad id
  EXPECT_FALSE(ParseTrace(bt_, "1,abc,2").ok());      // bad param
  EXPECT_TRUE(ParseTrace(bt_, "").ValueOrDie().empty());
  EXPECT_TRUE(ParseTrace(bt_, "\n\n").ValueOrDie().empty());
}

TEST_F(TraceTest, FileRoundTrip) {
  InstanceGenOptions gen;
  gen.m = 10;
  auto instances = GenerateInstances(bt_, gen);
  std::string path = ::testing::TempDir() + "/scrpqo_trace_test.csv";
  ASSERT_TRUE(SaveTrace(instances, path).ok());
  auto loaded = LoadTrace(bt_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().size(), 10u);
  std::remove(path.c_str());
}

TEST_F(TraceTest, LoadMissingFileFails) {
  auto r = LoadTrace(bt_, "/nonexistent/path/trace.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics_registry.h"
#include "pqo/async_scr.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class AsyncScrTest : public ::testing::Test {
 protected:
  AsyncScrTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(AsyncScrTest, ProcessesAllTasks) {
  AsyncScr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  Pcg32 rng(3);
  int optimized = 0;
  for (int i = 0; i < 100; ++i) {
    PlanChoice c = scr.OnInstance(MakeWi(i, rng.UniformDouble(0.01, 0.9),
                                         rng.UniformDouble(0.01, 0.9)),
                                  &engine);
    ASSERT_NE(c.plan, nullptr);
    if (c.optimized) ++optimized;
  }
  scr.Flush();
  EXPECT_EQ(scr.tasks_processed(), optimized);
  EXPECT_GE(scr.NumPlansCached(), 1);
}

TEST_F(AsyncScrTest, ReturnsFreshOptimalPlanOnMiss) {
  AsyncScr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  WorkloadInstance wi = MakeWi(0, 0.3, 0.3);
  PlanChoice c = scr.OnInstance(wi, &engine);
  EXPECT_TRUE(c.optimized);
  // The returned plan is the instance's own optimum.
  OptimizationResult opt =
      optimizer_.OptimizeWithSVector(wi.instance, wi.svector);
  EXPECT_EQ(c.plan->signature, MakeCachedPlan(opt).signature);
}

TEST_F(AsyncScrTest, ReusesAfterFlush) {
  AsyncScr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  scr.OnInstance(MakeWi(0, 0.3, 0.3), &engine);
  scr.Flush();  // manageCache applied
  PlanChoice c = scr.OnInstance(MakeWi(1, 0.31, 0.31), &engine);
  EXPECT_FALSE(c.optimized);
}

TEST_F(AsyncScrTest, GuaranteeHolds) {
  const double lambda = 2.0;
  AsyncScr scr(ScrOptions{.lambda = lambda});
  EngineContext engine(&db_, &optimizer_);
  Pcg32 rng(7);
  int violations = 0;
  for (int i = 0; i < 200; ++i) {
    WorkloadInstance wi = MakeWi(i, rng.UniformDouble(0.01, 0.9),
                                 rng.UniformDouble(0.01, 0.9));
    PlanChoice c = scr.OnInstance(wi, &engine);
    double opt =
        optimizer_.OptimizeWithSVector(wi.instance, wi.svector).cost;
    if (engine.RecostUncharged(*c.plan, wi.svector) / opt > lambda * 1.001) {
      ++violations;
    }
  }
  scr.Flush();
  EXPECT_LE(violations, 4);
}

TEST_F(AsyncScrTest, ComparableCacheStateToSyncScr) {
  // Async application order matches arrival order here (single worker,
  // FIFO), so after Flush the cache must match the synchronous run.
  ScrOptions opts{.lambda = 1.5};
  AsyncScr async_scr(opts);
  Scr sync_scr(opts);
  EngineContext async_engine(&db_, &optimizer_);
  EngineContext sync_engine(&db_, &optimizer_);
  Pcg32 rng(9);
  for (int i = 0; i < 150; ++i) {
    WorkloadInstance wi = MakeWi(i, rng.UniformDouble(0.01, 0.9),
                                 rng.UniformDouble(0.01, 0.9));
    async_scr.OnInstance(wi, &async_engine);
    async_scr.Flush();  // lockstep: isolate semantics from races
    sync_scr.OnInstance(wi, &sync_engine);
  }
  EXPECT_EQ(async_scr.NumPlansCached(), sync_scr.NumPlansCached());
  EXPECT_EQ(async_engine.num_optimizer_calls(),
            sync_engine.num_optimizer_calls());
}

TEST_F(AsyncScrTest, ConcurrentGetPlanReadersShareTheCache) {
  // The tentpole claim for the read path: TryReuse from many threads runs
  // under the shared lock while the worker applies manageCache under the
  // exclusive one. Warm the cache, then hammer it from several reader
  // threads while one writer thread keeps feeding fresh (miss-prone)
  // instances through the worker.
  AsyncScr scr(ScrOptions{.lambda = 2.0});
  MetricsRegistry registry;
  scr.SetObs(ObsHooks{nullptr, &registry});
  EngineContext engine(&db_, &optimizer_);

  std::vector<WorkloadInstance> warmed;
  Pcg32 warm_rng(21);
  for (int i = 0; i < 20; ++i) {
    warmed.push_back(MakeWi(i, warm_rng.UniformDouble(0.05, 0.9),
                            warm_rng.UniformDouble(0.05, 0.9)));
    scr.OnInstance(warmed.back(), &engine);
    scr.Flush();
  }

  constexpr int kReaders = 3;
  constexpr int kQueriesPerReader = 200;
  std::atomic<int> reader_optimized{0};
  std::atomic<int> null_plans{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      // Re-query the warmed points verbatim: G = L = 1, so every one is a
      // selectivity-check hit exercising the pure shared-lock path.
      for (int i = 0; i < kQueriesPerReader; ++i) {
        const WorkloadInstance& w =
            warmed[static_cast<size_t>((t * 7 + i) % warmed.size())];
        PlanChoice c = scr.OnInstance(w, &engine);
        if (c.plan == nullptr) null_plans.fetch_add(1);
        if (c.optimized) reader_optimized.fetch_add(1);
      }
    });
  }
  threads.emplace_back([&] {
    Pcg32 rng(22);
    for (int i = 0; i < 40; ++i) {
      PlanChoice c = scr.OnInstance(
          MakeWi(1000 + i, rng.UniformDouble(0.01, 0.95),
                 rng.UniformDouble(0.01, 0.95)),
          &engine);
      if (c.plan == nullptr) null_plans.fetch_add(1);
    }
  });
  for (auto& th : threads) th.join();
  scr.Flush();

  EXPECT_EQ(null_plans.load(), 0);
  EXPECT_EQ(reader_optimized.load(), 0)
      << "a warmed exact-repeat instance missed the cache";
  auto snap = registry.Snapshot();
  // One shared acquisition per OnInstance; one exclusive per worker task.
  EXPECT_EQ(snap.CounterValue("async_scr.lock_shared"),
            20 + kReaders * kQueriesPerReader + 40);
  EXPECT_EQ(snap.CounterValue("async_scr.lock_exclusive"),
            scr.tasks_processed());
  EXPECT_GT(snap.CounterValue("async_scr.lock_exclusive"), 0);
}

TEST_F(AsyncScrTest, NameReflectsWrapper) {
  AsyncScr scr(ScrOptions{.lambda = 2.0});
  EXPECT_EQ(scr.name(), "AsyncSCR2");
}

TEST_F(AsyncScrTest, DestructorDrainsCleanly) {
  EngineContext engine(&db_, &optimizer_);
  {
    AsyncScr scr(ScrOptions{.lambda = 1.1});
    Pcg32 rng(11);
    for (int i = 0; i < 50; ++i) {
      scr.OnInstance(MakeWi(i, rng.UniformDouble(0.01, 0.9),
                            rng.UniformDouble(0.01, 0.9)),
                     &engine);
    }
    // No Flush: destructor must join without deadlock or crash.
  }
  SUCCEED();
}

}  // namespace
}  // namespace scrpqo

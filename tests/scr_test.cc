#include <gtest/gtest.h>

#include <memory>

#include "pqo/scr.h"
#include "query/query_instance.h"
#include "tests/test_util.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"

namespace scrpqo {
namespace {

class ScrTest : public ::testing::Test {
 protected:
  ScrTest()
      : db_(testing::MakeSmallDatabase(20000, 500)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  /// A mixed stream of instances covering the selectivity space.
  std::vector<WorkloadInstance> MakeStream(int m, uint64_t seed = 3) {
    Pcg32 rng(seed);
    std::vector<WorkloadInstance> out;
    for (int i = 0; i < m; ++i) {
      double s0 = rng.UniformDouble() < 0.5
                      ? rng.UniformDouble(0.001, 0.05)
                      : rng.UniformDouble(0.15, 0.95);
      double s1 = rng.UniformDouble() < 0.5
                      ? rng.UniformDouble(0.001, 0.05)
                      : rng.UniformDouble(0.15, 0.95);
      out.push_back(MakeWi(i, s0, s1));
    }
    return out;
  }

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(ScrTest, FirstInstanceAlwaysOptimizes) {
  Scr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  PlanChoice c = scr.OnInstance(MakeWi(0, 0.3, 0.3), &engine);
  EXPECT_TRUE(c.optimized);
  EXPECT_EQ(scr.NumPlansCached(), 1);
  EXPECT_EQ(engine.num_optimizer_calls(), 1);
}

TEST_F(ScrTest, IdenticalInstancePassesSelectivityCheck) {
  Scr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  scr.OnInstance(MakeWi(0, 0.3, 0.3), &engine);
  PlanChoice c = scr.OnInstance(MakeWi(1, 0.3, 0.3), &engine);
  EXPECT_FALSE(c.optimized);
  EXPECT_EQ(c.recost_calls_in_get_plan, 0);  // pure selectivity check
  EXPECT_EQ(engine.num_optimizer_calls(), 1);
}

TEST_F(ScrTest, NearbyInstancePassesSelectivityCheck) {
  // GL = 1.1 * 1.1 = 1.21 <= lambda = 2 => no engine call at all.
  Scr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  scr.OnInstance(MakeWi(0, 0.30, 0.30), &engine);
  PlanChoice c = scr.OnInstance(MakeWi(1, 0.33, 0.27), &engine);
  EXPECT_FALSE(c.optimized);
  EXPECT_EQ(c.recost_calls_in_get_plan, 0);
  EXPECT_EQ(engine.num_recost_calls(), 0);
}

TEST_F(ScrTest, FarInstanceTriggersCostCheckOrOptimize) {
  Scr scr(ScrOptions{.lambda = 1.5});
  EngineContext engine(&db_, &optimizer_);
  scr.OnInstance(MakeWi(0, 0.05, 0.05), &engine);
  // GL way beyond lambda: selectivity check must fail.
  PlanChoice c = scr.OnInstance(MakeWi(1, 0.9, 0.9), &engine);
  EXPECT_TRUE(c.optimized || c.recost_calls_in_get_plan > 0);
}

TEST_F(ScrTest, GuaranteeHoldsUnlessViolationDetected) {
  // Core property (Theorem 1): every reused plan is lambda-optimal at the
  // instance it is reused for, whenever BCG holds. We verify SO <= lambda
  // across a long stream, tolerating only instances where the cost model
  // genuinely violates BCG (tracked separately below).
  const double lambda = 2.0;
  Scr scr(ScrOptions{.lambda = lambda});
  EngineContext engine(&db_, &optimizer_);
  auto stream = MakeStream(300);
  int checked = 0, violations = 0;
  for (const auto& wi : stream) {
    PlanChoice c = scr.OnInstance(wi, &engine);
    OptimizationResult opt =
        optimizer_.OptimizeWithSVector(wi.instance, wi.svector);
    double so =
        engine.RecostUncharged(*c.plan, wi.svector) / opt.cost;
    ++checked;
    if (so > lambda * 1.001) ++violations;
  }
  EXPECT_EQ(checked, 300);
  // Violations must be rare (paper Section 7.2 observes the same).
  EXPECT_LE(violations, 6) << "too many bound violations";
}

TEST_F(ScrTest, TighterLambdaMeansMoreOptimizerCalls) {
  auto run = [&](double lambda) {
    Scr scr(ScrOptions{.lambda = lambda});
    EngineContext engine(&db_, &optimizer_);
    for (const auto& wi : MakeStream(200)) scr.OnInstance(wi, &engine);
    return engine.num_optimizer_calls();
  };
  int64_t tight = run(1.1);
  int64_t loose = run(2.0);
  EXPECT_GT(tight, loose);
}

TEST_F(ScrTest, RedundancyCheckLimitsPlans) {
  // lambda_r = sqrt(lambda) (default) stores far fewer plans than
  // lambda_r = 1 (store everything) at equal lambda.
  auto run = [&](double lambda_r) {
    Scr scr(ScrOptions{.lambda = 2.0, .lambda_r = lambda_r});
    EngineContext engine(&db_, &optimizer_);
    for (const auto& wi : MakeStream(300)) scr.OnInstance(wi, &engine);
    return scr.PeakPlansCached();
  };
  int64_t store_all = run(1.0);
  int64_t with_check = run(-1.0);  // default sqrt(lambda)
  EXPECT_LE(with_check, store_all);
}

TEST_F(ScrTest, PlanBudgetEnforced) {
  Scr scr(ScrOptions{.lambda = 1.1, .plan_budget = 3});
  EngineContext engine(&db_, &optimizer_);
  for (const auto& wi : MakeStream(300)) scr.OnInstance(wi, &engine);
  EXPECT_LE(scr.NumPlansCached(), 3);
  EXPECT_LE(scr.PeakPlansCached(), 4);  // transiently k+1 before eviction
}

TEST_F(ScrTest, BudgetEvictionNeverEvictsTheJustStoredPlan) {
  // Regression: EvictForBudget runs before the fresh plan's usage count is
  // credited, so with budget 1 the freshest plan is the LFU victim — an
  // unpinned evictor would drop the plan just chosen for the in-flight
  // instance, leaving its instance entry dangling on a dead plan.
  Scr scr(ScrOptions{.lambda = 1.05, .plan_budget = 1});
  EngineContext engine(&db_, &optimizer_);

  // Make the first plan clearly more-used than any newcomer.
  PlanChoice first = scr.OnInstance(MakeWi(0, 0.01, 0.01), &engine);
  for (int i = 1; i <= 3; ++i) {
    (void)scr.OnInstance(MakeWi(i, 0.01, 0.01), &engine);
  }

  // A far-away instance needs a different plan; storing it overflows the
  // budget while its usage is still 0.
  PlanChoice fresh = scr.OnInstance(MakeWi(10, 0.9, 0.9), &engine);
  ASSERT_TRUE(fresh.optimized);
  ASSERT_NE(fresh.plan->signature, first.plan->signature)
      << "test needs two distinct plans to exercise eviction";

  // The budget held, and the survivor is the freshly stored plan, not the
  // well-used one.
  EXPECT_LE(scr.NumPlansCached(), 1);
  std::vector<PlanPtr> live = scr.SnapshotPlans();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(PlanSignatureHash(*live[0]), fresh.plan->signature);

  // And its instance entry is alive: an identical repeat reuses the cache.
  PlanChoice repeat = scr.OnInstance(MakeWi(11, 0.9, 0.9), &engine);
  EXPECT_FALSE(repeat.optimized);
  EXPECT_EQ(repeat.plan->signature, fresh.plan->signature);
}

TEST_F(ScrTest, EvictLfuPlanHonorsSignaturePin) {
  Scr scr(ScrOptions{.lambda = 1.05});
  EngineContext engine(&db_, &optimizer_);
  PlanChoice a = scr.OnInstance(MakeWi(0, 0.01, 0.01), &engine);
  PlanChoice b = scr.OnInstance(MakeWi(1, 0.9, 0.9), &engine);
  ASSERT_NE(a.plan->signature, b.plan->signature);
  ASSERT_EQ(scr.NumPlansCached(), 2);
  // A reuse bumps a's usage above b's, making b the strict LFU victim.
  (void)scr.OnInstance(MakeWi(2, 0.01, 0.01), &engine);

  // Pinning the victim diverts eviction to the better-used plan.
  EXPECT_TRUE(scr.EvictLfuPlan(/*instance_id=*/99, b.plan->signature));
  std::vector<PlanPtr> live = scr.SnapshotPlans();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(PlanSignatureHash(*live[0]), b.plan->signature);

  // With the only plan pinned, nothing is evictable.
  EXPECT_EQ(scr.MinLivePlanUsage(b.plan->signature), -1);
  EXPECT_FALSE(scr.EvictLfuPlan(/*instance_id=*/99, b.plan->signature));
  EXPECT_EQ(scr.NumPlansCached(), 1);
}

TEST_F(ScrTest, EstimatedMemoryBytesTracksCacheGrowth) {
  // lambda = 1.05 forces the far instance to optimize and store (a looser
  // bound would serve it via the cost check, adding nothing to the cache).
  Scr scr(ScrOptions{.lambda = 1.05});
  EngineContext engine(&db_, &optimizer_);
  EXPECT_EQ(scr.EstimatedMemoryBytes(), 0);
  PlanChoice a = scr.OnInstance(MakeWi(0, 0.01, 0.01), &engine);
  int64_t one = scr.EstimatedMemoryBytes();
  EXPECT_GT(one, 0);
  PlanChoice b = scr.OnInstance(MakeWi(1, 0.9, 0.9), &engine);
  ASSERT_TRUE(b.optimized);
  ASSERT_NE(a.plan->signature, b.plan->signature);
  EXPECT_GT(scr.EstimatedMemoryBytes(), one);
}

TEST_F(ScrTest, BudgetKeepsGuarantee) {
  const double lambda = 2.0;
  Scr scr(ScrOptions{.lambda = lambda, .plan_budget = 2});
  EngineContext engine(&db_, &optimizer_);
  int violations = 0;
  for (const auto& wi : MakeStream(200)) {
    PlanChoice c = scr.OnInstance(wi, &engine);
    OptimizationResult opt =
        optimizer_.OptimizeWithSVector(wi.instance, wi.svector);
    if (engine.RecostUncharged(*c.plan, wi.svector) / opt.cost >
        lambda * 1.001) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 4);
}

TEST_F(ScrTest, MaxCostCheckCandidatesCapsRecosts) {
  Scr scr(ScrOptions{.lambda = 1.05, .max_cost_check_candidates = 3});
  EngineContext engine(&db_, &optimizer_);
  for (const auto& wi : MakeStream(300)) scr.OnInstance(wi, &engine);
  EXPECT_LE(scr.max_recost_calls_per_get_plan(), 3);
}

TEST_F(ScrTest, DynamicLambdaReducesOptimizerCalls) {
  auto run = [&](bool dynamic) {
    ScrOptions o;
    o.lambda = 1.1;
    o.dynamic_lambda = dynamic;
    o.lambda_min = 1.1;
    o.lambda_max = 10.0;
    Scr scr(o);
    EngineContext engine(&db_, &optimizer_);
    for (const auto& wi : MakeStream(300)) scr.OnInstance(wi, &engine);
    return engine.num_optimizer_calls();
  };
  // Appendix D: looser bounds for cheap instances save optimizer calls.
  EXPECT_LE(run(true), run(false));
}

TEST_F(ScrTest, InstanceListTracksOptimizedOnly) {
  Scr scr(ScrOptions{.lambda = 2.0});
  EngineContext engine(&db_, &optimizer_);
  auto stream = MakeStream(100);
  int optimized = 0;
  for (const auto& wi : stream) {
    if (scr.OnInstance(wi, &engine).optimized) ++optimized;
  }
  EXPECT_EQ(scr.NumInstancesStored(), optimized);
  EXPECT_LT(optimized, 100);
}

TEST_F(ScrTest, DropRedundantPlansKeepsGuarantee) {
  const double lambda = 2.0;
  Scr scr(ScrOptions{.lambda = lambda, .lambda_r = 1.0});  // store all
  EngineContext engine(&db_, &optimizer_);
  auto stream = MakeStream(200);
  for (const auto& wi : stream) scr.OnInstance(wi, &engine);
  int64_t before = scr.NumPlansCached();
  int dropped = scr.DropRedundantPlans(&engine);
  EXPECT_EQ(scr.NumPlansCached(), before - dropped);
  // Replaying the stream must still meet the bound (modulo rare BCG noise).
  int violations = 0;
  for (const auto& wi : stream) {
    PlanChoice c = scr.OnInstance(wi, &engine);
    OptimizationResult opt =
        optimizer_.OptimizeWithSVector(wi.instance, wi.svector);
    if (engine.RecostUncharged(*c.plan, wi.svector) / opt.cost >
        lambda * 1.001) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 4);
}

TEST_F(ScrTest, NameReflectsConfiguration) {
  EXPECT_EQ(Scr(ScrOptions{.lambda = 2.0}).name(), "SCR2");
  EXPECT_EQ(Scr(ScrOptions{.lambda = 1.1}).name(), "SCR1.1");
  Scr budget(ScrOptions{.lambda = 2.0, .plan_budget = 5});
  EXPECT_EQ(budget.name(), "SCR2(k=5)");
}

/// Lambda sweep property: the guarantee machinery works at every bound.
class ScrLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScrLambdaSweep, BoundRespected) {
  Database db = testing::MakeSmallDatabase(20000, 500);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  double lambda = GetParam();
  Scr scr(ScrOptions{.lambda = lambda});
  EngineContext engine(&db, &optimizer);
  Pcg32 rng(11);
  int violations = 0;
  const int m = 150;
  for (int i = 0; i < m; ++i) {
    double s0 = rng.UniformDouble(0.005, 0.95);
    double s1 = rng.UniformDouble(0.005, 0.95);
    WorkloadInstance wi;
    wi.id = i;
    wi.instance = InstanceForSelectivities(db, *tmpl, {s0, s1});
    wi.svector = ComputeSelectivityVector(db, wi.instance);
    PlanChoice c = scr.OnInstance(wi, &engine);
    OptimizationResult opt =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);
    if (engine.RecostUncharged(*c.plan, wi.svector) / opt.cost >
        lambda * 1.001) {
      ++violations;
    }
  }
  EXPECT_LE(violations, m / 25) << "lambda=" << lambda;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, ScrLambdaSweep,
                         ::testing::Values(1.05, 1.1, 1.3, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace scrpqo

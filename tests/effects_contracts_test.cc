// Compile-time companion to tools/analyze/scrpqo_effects.py: the analyzer
// PROVES the hot kernels non-throwing over the project call graph, and the
// proof is then encoded in the type system as `noexcept` so callers (and
// std machinery like move-selection) can rely on it. These static_asserts
// pin the specifiers — if someone drops a noexcept, the build breaks here
// before the analyzer even runs. Compiles under both GCC and Clang (the
// two CI toolchains); there is nothing compiler-specific below.
//
// The runtime tests double-check the semantics the specifiers promise:
// a DecisionEvent round-trip through SpscEventRing::TryPush and a
// ComputeGlFast identity, so the annotated functions are also executed,
// not just named, in this TU.

#include <gtest/gtest.h>

#include <type_traits>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "obs/event_ring.h"
#include "optimizer/recost_program.h"

namespace scrpqo {
namespace {

// ---------------------------------------------------------------------------
// RecostProgram evaluation kernels.
// ---------------------------------------------------------------------------

static_assert(noexcept(std::declval<const RecostProgram&>().Run(
                  std::declval<const SVector&>(),
                  std::declval<const CostParams&>())),
              "RecostProgram::Run must stay noexcept: the effect analyzer "
              "proves it non-throwing (SCRPQO_NOTHROW) and RecostService's "
              "hot loop relies on it");

static_assert(noexcept(RunRecostBlock(
                  std::declval<const RecostProgram* const*>(), 4,
                  std::declval<const SVector&>(),
                  std::declval<const CostParams&>(),
                  std::declval<double*>())),
              "RunRecostBlock (the 4-way pipelined block interpreter) must "
              "stay noexcept");

static_assert(noexcept(RecostStepOp(std::declval<const RecostProgram::Op&>(),
                                    1.0, std::declval<const double*>(),
                                    std::declval<const CostParams&>(),
                                    std::declval<double*>(),
                                    std::declval<double*>(),
                                    std::declval<int&>())),
              "RecostStepOp (the shared per-op dispatch) must stay noexcept");

// ---------------------------------------------------------------------------
// SPSC event ring producer path.
// ---------------------------------------------------------------------------

static_assert(noexcept(std::declval<SpscEventRing&>().TryPush(
                  std::declval<DecisionEvent>())),
              "SpscEventRing::TryPush must stay noexcept: it sits on the "
              "getPlan emit path and must never unwind mid-slot");

// TryPush's noexcept is only honest if moving a DecisionEvent into a slot
// cannot throw; pin that prerequisite too.
static_assert(std::is_nothrow_move_assignable_v<DecisionEvent>,
              "DecisionEvent must stay nothrow-move-assignable — "
              "TryPush's noexcept depends on the slot move");

// ---------------------------------------------------------------------------
// G/L kernel.
// ---------------------------------------------------------------------------

static_assert(noexcept(ComputeGlFast(std::declval<const std::vector<double>&>(),
                                     std::declval<const std::vector<double>&>())),
              "ComputeGlFast must stay noexcept: it runs once per candidate "
              "inside Scr::TryReuse");

// ---------------------------------------------------------------------------
// Runtime smoke: the noexcept-pinned functions also behave.
// ---------------------------------------------------------------------------

TEST(EffectsContracts, TryPushRoundTripsEvent) {
  SpscEventRing ring(8);
  DecisionEvent ev;
  ev.technique = "reuse";
  ev.instance_id = 42;
  ASSERT_TRUE(ring.TryPush(std::move(ev)));
  std::vector<DecisionEvent> out;
  ASSERT_EQ(ring.DrainInto(&out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance_id, 42);
  EXPECT_EQ(out[0].technique, "reuse");
}

TEST(EffectsContracts, ComputeGlFastIdentityIsUnit) {
  const std::vector<double> s{0.1, 0.5, 0.9, 0.25, 0.75};
  const GlFactors gl = ComputeGlFast(s, s);
  EXPECT_DOUBLE_EQ(gl.g, 1.0);
  EXPECT_DOUBLE_EQ(gl.l, 1.0);
}

TEST(EffectsContracts, ComputeGlFastSplitsRatios) {
  // One dimension doubles (goes into G), one halves (goes into L).
  const std::vector<double> from{0.2, 0.4};
  const std::vector<double> to{0.4, 0.2};
  const GlFactors gl = ComputeGlFast(from, to);
  EXPECT_DOUBLE_EQ(gl.g, 2.0);
  EXPECT_DOUBLE_EQ(gl.l, 2.0);
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "pqo/instance_index.h"
#include "pqo/scr.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

double TrueLogGl(const SVector& a, const SVector& b) {
  auto ratios = SelectivityRatios(a, b);
  return std::log(ComputeG(ratios) * ComputeL(ratios));
}

SVector RandomSv(Pcg32* rng, int d) {
  SVector sv(static_cast<size_t>(d));
  for (auto& s : sv) s = rng->UniformDouble(0.001, 0.99);
  return sv;
}

TEST(InstanceKdTreeTest, InsertAndSize) {
  InstanceKdTree tree(2);
  EXPECT_EQ(tree.size(), 0);
  tree.Insert(0, {0.1, 0.2});
  tree.Insert(1, {0.5, 0.6});
  EXPECT_EQ(tree.size(), 2);
}

TEST(InstanceKdTreeTest, RangeQueryMatchesBruteForce) {
  Pcg32 rng(7);
  const int d = 3;
  InstanceKdTree tree(d);
  std::vector<SVector> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(RandomSv(&rng, d));
    tree.Insert(i, points.back());
  }
  for (int trial = 0; trial < 30; ++trial) {
    SVector q = RandomSv(&rng, d);
    for (double bound : {1.2, 2.0, 5.0}) {
      auto matches = tree.RangeQuery(q, bound);
      std::vector<int64_t> got;
      for (const auto& m : matches) got.push_back(m.id);
      std::sort(got.begin(), got.end());
      std::vector<int64_t> expected;
      for (size_t i = 0; i < points.size(); ++i) {
        if (TrueLogGl(points[i], q) <= std::log(bound) + 1e-12) {
          expected.push_back(static_cast<int64_t>(i));
        }
      }
      EXPECT_EQ(got, expected) << "bound=" << bound;
    }
  }
}

TEST(InstanceKdTreeTest, RangeQueryReportsCorrectDistance) {
  Pcg32 rng(9);
  InstanceKdTree tree(2);
  std::vector<SVector> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back(RandomSv(&rng, 2));
    tree.Insert(i, points.back());
  }
  SVector q = RandomSv(&rng, 2);
  for (const auto& m : tree.RangeQuery(q, 10.0)) {
    EXPECT_NEAR(m.log_gl, TrueLogGl(points[static_cast<size_t>(m.id)], q),
                1e-9);
  }
}

TEST(InstanceKdTreeTest, NearestMatchesBruteForce) {
  Pcg32 rng(11);
  const int d = 4;
  InstanceKdTree tree(d);
  std::vector<SVector> points;
  for (int i = 0; i < 300; ++i) {
    points.push_back(RandomSv(&rng, d));
    tree.Insert(i, points.back());
  }
  for (int trial = 0; trial < 20; ++trial) {
    SVector q = RandomSv(&rng, d);
    const int k = 7;
    auto got = tree.NearestByGl(q, k);
    ASSERT_EQ(got.size(), static_cast<size_t>(k));
    // Ascending order.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].log_gl, got[i].log_gl + 1e-12);
    }
    // Matches brute-force k smallest distances.
    std::vector<double> dists;
    for (const auto& p : points) dists.push_back(TrueLogGl(p, q));
    std::sort(dists.begin(), dists.end());
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(got[static_cast<size_t>(i)].log_gl,
                  dists[static_cast<size_t>(i)], 1e-9);
    }
  }
}

TEST(InstanceKdTreeTest, RemoveHidesEntry) {
  InstanceKdTree tree(2);
  tree.Insert(0, {0.5, 0.5});
  tree.Insert(1, {0.51, 0.51});
  tree.Remove(0);
  EXPECT_EQ(tree.size(), 1);
  auto matches = tree.RangeQuery({0.5, 0.5}, 100.0);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, 1);
}

TEST(InstanceKdTreeTest, PrunesSearchSpace) {
  Pcg32 rng(13);
  InstanceKdTree tree(2);
  for (int i = 0; i < 2000; ++i) tree.Insert(i, RandomSv(&rng, 2));
  // A tight range query should not visit the entire tree.
  tree.RangeQuery({0.5, 0.5}, 1.05);
  EXPECT_LT(tree.last_query_nodes_visited(), 1200);
}

TEST(InstanceKdTreeTest, EmptyTreeQueries) {
  InstanceKdTree tree(3);
  EXPECT_TRUE(tree.RangeQuery({0.1, 0.1, 0.1}, 2.0).empty());
  EXPECT_TRUE(tree.NearestByGl({0.1, 0.1, 0.1}, 5).empty());
}

/// SCR with the spatial index must make exactly the same optimize/reuse
/// decisions as the scanning implementation (the index is an accelerator,
/// not a semantic change).
TEST(ScrSpatialIndexTest, EquivalentToScan) {
  Database db = testing::MakeSmallDatabase(20000, 500);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);

  ScrOptions scan_opts{.lambda = 1.5};
  ScrOptions index_opts{.lambda = 1.5};
  index_opts.use_spatial_index = true;
  Scr scan_scr(scan_opts);
  Scr index_scr(index_opts);
  EngineContext scan_engine(&db, &optimizer);
  EngineContext index_engine(&db, &optimizer);

  Pcg32 rng(5);
  for (int i = 0; i < 250; ++i) {
    WorkloadInstance wi;
    wi.id = i;
    wi.instance = InstanceForSelectivities(
        db, *tmpl,
        {rng.UniformDouble(0.005, 0.95), rng.UniformDouble(0.005, 0.95)});
    wi.svector = ComputeSelectivityVector(db, wi.instance);
    PlanChoice a = scan_scr.OnInstance(wi, &scan_engine);
    PlanChoice b = index_scr.OnInstance(wi, &index_engine);
    EXPECT_EQ(a.optimized, b.optimized) << "instance " << i;
    EXPECT_EQ(a.plan->signature, b.plan->signature) << "instance " << i;
  }
  EXPECT_EQ(scan_engine.num_optimizer_calls(),
            index_engine.num_optimizer_calls());
  EXPECT_EQ(scan_scr.NumPlansCached(), index_scr.NumPlansCached());
}

TEST(ScrSpatialIndexTest, WorksUnderPlanBudget) {
  Database db = testing::MakeSmallDatabase(20000, 500);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db);
  ScrOptions opts{.lambda = 1.1, .plan_budget = 2};
  opts.use_spatial_index = true;
  Scr scr(opts);
  EngineContext engine(&db, &optimizer);
  Pcg32 rng(6);
  for (int i = 0; i < 200; ++i) {
    WorkloadInstance wi;
    wi.id = i;
    wi.instance = InstanceForSelectivities(
        db, *tmpl,
        {rng.UniformDouble(0.005, 0.95), rng.UniformDouble(0.005, 0.95)});
    wi.svector = ComputeSelectivityVector(db, wi.instance);
    PlanChoice c = scr.OnInstance(wi, &engine);
    EXPECT_NE(c.plan, nullptr);
  }
  EXPECT_LE(scr.NumPlansCached(), 2);
}

}  // namespace
}  // namespace scrpqo

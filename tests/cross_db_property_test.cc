// Cross-database property sweep: for generated templates over ALL four
// evaluation schemas, core engine invariants must hold — the optimizer is
// deterministic and internally consistent, Recost agrees with optimization,
// and different physical plans produce identical query results on real
// data. This is the repository's broadest end-to-end net.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "executor/executor.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_signature.h"
#include "optimizer/plan_validate.h"
#include "optimizer/recost.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace scrpqo {
namespace {

/// One shared small-scale materialized universe (building four databases
/// with rows is the expensive part).
struct Universe {
  std::vector<BenchmarkDb> dbs;
  std::vector<BoundTemplate> templates;

  Universe() {
    SchemaScale scale;
    scale.factor = 0.12;
    scale.materialize_rows = true;
    dbs = BuildAllDatabases(scale);
    TemplateGenOptions topts;
    topts.num_templates = 16;
    topts.max_tables = 4;  // keep brute executions fast
    templates = BuildTemplates(dbs, topts);
  }

  static Universe& Get() {
    static Universe* u = new Universe();
    return *u;
  }
};

class CrossDbTest : public ::testing::TestWithParam<int> {
 protected:
  const BoundTemplate& Template() {
    return Universe::Get().templates[static_cast<size_t>(GetParam())];
  }
};

TEST_P(CrossDbTest, OptimizeRecostInvariant) {
  const BoundTemplate& bt = Template();
  Optimizer optimizer(&bt.db->db);
  RecostService recost(&optimizer.cost_model());
  InstanceGenOptions gen;
  gen.m = 6;
  gen.seed = 500 + static_cast<uint64_t>(GetParam());
  for (const auto& wi : GenerateInstances(bt, gen)) {
    OptimizationResult r =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);
    ASSERT_NE(r.plan, nullptr);
    EXPECT_GT(r.cost, 0.0);
    Status valid = ValidatePlan(*r.plan, *bt.tmpl, bt.db->db.catalog());
    EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n"
                            << r.plan->ToString();
    CachedPlan cached = MakeCachedPlan(r);
    EXPECT_NEAR(recost.Recost(cached, wi.svector), r.cost, r.cost * 1e-9)
        << bt.tmpl->name();
    // Determinism.
    OptimizationResult again =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);
    EXPECT_EQ(PlanSignatureHash(*again.plan), cached.signature);
    EXPECT_EQ(again.cost, r.cost);
  }
}

TEST_P(CrossDbTest, PhysicalAlternativesAgreeOnResults) {
  const BoundTemplate& bt = Template();
  InstanceGenOptions gen;
  gen.m = 3;
  gen.seed = 900 + static_cast<uint64_t>(GetParam());
  for (const auto& wi : GenerateInstances(bt, gen)) {
    std::set<int64_t> row_counts;
    std::set<uint64_t> checksums;
    for (int mask = 0; mask < 4; ++mask) {
      OptimizerOptions opts;
      opts.enable_merge_join = mask & 1;
      opts.enable_indexed_nlj = mask & 2;
      Optimizer optimizer(&bt.db->db, opts);
      OptimizationResult r =
          optimizer.OptimizeWithSVector(wi.instance, wi.svector);
      ExecutionResult exec = ExecutePlan(bt.db->db, wi.instance, *r.plan);
      row_counts.insert(exec.rows);
      checksums.insert(exec.checksum);
    }
    EXPECT_EQ(row_counts.size(), 1u)
        << bt.tmpl->name() << " " << wi.instance.ToString();
    // Aggregates emit one *representative* row per group; which row
    // represents a group legitimately depends on the physical plan, so the
    // checksum comparison only applies to non-aggregate templates.
    if (!bt.tmpl->aggregate().enabled) {
      EXPECT_EQ(checksums.size(), 1u)
          << bt.tmpl->name() << " " << wi.instance.ToString();
    }
  }
}

TEST_P(CrossDbTest, MonotoneCostAlongEachDimension) {
  // PCM sanity for *optimal* costs: admitting more rows should not make the
  // optimal plan cheaper (small tolerance for estimation noise).
  const BoundTemplate& bt = Template();
  Optimizer optimizer(&bt.db->db);
  int d = bt.tmpl->dimensions();
  for (int dim = 0; dim < d; ++dim) {
    double prev = 0.0;
    for (double s : {0.02, 0.2, 0.6, 0.95}) {
      SVector targets(static_cast<size_t>(d), 0.3);
      targets[static_cast<size_t>(dim)] = s;
      QueryInstance q = InstanceForSelectivities(bt.db->db, *bt.tmpl,
                                                 targets);
      OptimizationResult r = optimizer.Optimize(q);
      EXPECT_GE(r.cost, prev * 0.97)
          << bt.tmpl->name() << " dim=" << dim << " s=" << s;
      prev = std::max(prev, r.cost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Templates, CrossDbTest, ::testing::Range(0, 16),
                         [](const auto& param_info) {
                           return Universe::Get()
                               .templates[static_cast<size_t>(
                                   param_info.param)]
                               .tmpl->name();
                         });

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/plan_memory.h"
#include "optimizer/physical_plan.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

TEST(PhysicalOpNameTest, AllKindsNamed) {
  for (PhysicalOpKind kind :
       {PhysicalOpKind::kTableScan, PhysicalOpKind::kIndexSeek,
        PhysicalOpKind::kIndexScanOrdered, PhysicalOpKind::kSort,
        PhysicalOpKind::kHashJoin, PhysicalOpKind::kMergeJoin,
        PhysicalOpKind::kIndexedNestedLoopsJoin,
        PhysicalOpKind::kNaiveNestedLoopsJoin,
        PhysicalOpKind::kHashAggregate, PhysicalOpKind::kStreamAggregate}) {
    EXPECT_NE(PhysicalOpName(kind), "Unknown");
  }
}

TEST(SortKeyTest, EqualityAndOrdering) {
  SortKey a{0, "x"}, b{0, "x"}, c{0, "y"}, d{1, "x"};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(a < d);
  EXPECT_EQ(a.ToString(), "t0.x");
}

TEST(PlanNodeTest, LeafAndJoinClassification) {
  PhysicalPlanNode scan;
  scan.kind = PhysicalOpKind::kTableScan;
  EXPECT_TRUE(scan.is_leaf());
  EXPECT_FALSE(scan.is_join());
  PhysicalPlanNode hj;
  hj.kind = PhysicalOpKind::kHashJoin;
  EXPECT_TRUE(hj.is_join());
  EXPECT_FALSE(hj.is_leaf());
  PhysicalPlanNode sort;
  sort.kind = PhysicalOpKind::kSort;
  EXPECT_FALSE(sort.is_leaf());
  EXPECT_FALSE(sort.is_join());
}

class PlanRenderTest : public ::testing::Test {
 protected:
  PlanRenderTest()
      : db_(testing::MakeSmallDatabase(5000, 200)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(PlanRenderTest, ToStringContainsOperatorsAndTables) {
  OptimizationResult r = optimizer_.Optimize(
      InstanceForSelectivities(db_, *tmpl_, {0.3, 0.5}));
  std::string s = r.plan->ToString();
  EXPECT_NE(s.find("fact"), std::string::npos);
  EXPECT_NE(s.find("dim"), std::string::npos);
  EXPECT_NE(s.find("rows="), std::string::npos);
  EXPECT_NE(s.find("cost="), std::string::npos);
  // Indented children: at least one line starts with two spaces.
  EXPECT_NE(s.find("\n  "), std::string::npos);
}

TEST_F(PlanRenderTest, ParameterizedPredicateShowsSlot) {
  OptimizationResult r = optimizer_.Optimize(
      InstanceForSelectivities(db_, *tmpl_, {0.01, 0.5}));
  std::string s = r.plan->ToString();
  EXPECT_NE(s.find("$0"), std::string::npos);
}

TEST_F(PlanRenderTest, NodeCountMatchesStructure) {
  OptimizationResult r = optimizer_.Optimize(
      InstanceForSelectivities(db_, *tmpl_, {0.3, 0.5}));
  int count = r.plan->NodeCount();
  int manual = 0;
  std::function<void(const PhysicalPlanNode&)> walk =
      [&](const PhysicalPlanNode& n) {
        ++manual;
        for (const auto& c : n.children) walk(*c);
      };
  walk(*r.plan);
  EXPECT_EQ(count, manual);
  EXPECT_GE(count, 3);  // join of two leaves at minimum
}

TEST_F(PlanRenderTest, PlanMemoryBytesScalesWithTree) {
  OptimizationResult r = optimizer_.Optimize(
      InstanceForSelectivities(db_, *tmpl_, {0.3, 0.5}));
  int64_t whole = PlanMemoryBytes(*r.plan);
  int64_t child = PlanMemoryBytes(*r.plan->children[0]);
  EXPECT_GT(whole, child);
  EXPECT_GT(whole,
            static_cast<int64_t>(sizeof(PhysicalPlanNode)) *
                r.plan->NodeCount());
}

TEST(InstanceEntryBytesTest, MatchesPaperOrder) {
  // The paper says ~100 bytes per 5-tuple; our accounting should be in that
  // ballpark for typical dimensionalities.
  EXPECT_GT(InstanceEntryBytes(2), 60);
  EXPECT_LT(InstanceEntryBytes(10), 200);
  EXPECT_GT(InstanceEntryBytes(10), InstanceEntryBytes(2));
}

}  // namespace
}  // namespace scrpqo

// Persistence guarantee sweep: every plan the optimizer produces across a
// diverse template population must serialize, deserialize, validate, and
// re-cost identically. This is the contract the persistent plan cache
// (pqo/cache_persistence.h) stands on.
#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/plan_serde.h"
#include "optimizer/plan_signature.h"
#include "optimizer/plan_validate.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace scrpqo {
namespace {

struct Universe {
  std::vector<BenchmarkDb> dbs;
  std::vector<BoundTemplate> templates;

  Universe() {
    SchemaScale scale;
    scale.factor = 0.15;
    dbs = BuildAllDatabases(scale);
    TemplateGenOptions topts;
    topts.num_templates = 12;
    topts.seed = 404;
    templates = BuildTemplates(dbs, topts);
  }

  static Universe& Get() {
    static Universe* u = new Universe();
    return *u;
  }
};

class SerdeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SerdeSweepTest, SerializeValidateRecostRoundTrip) {
  const BoundTemplate& bt =
      Universe::Get().templates[static_cast<size_t>(GetParam())];
  Optimizer optimizer(&bt.db->db);
  InstanceGenOptions gen;
  gen.m = 8;
  gen.seed = 70 + static_cast<uint64_t>(GetParam());
  for (const auto& wi : GenerateInstances(bt, gen)) {
    OptimizationResult r =
        optimizer.OptimizeWithSVector(wi.instance, wi.svector);

    std::string data = SerializePlan(*r.plan);
    auto restored = DeserializePlan(data);
    ASSERT_TRUE(restored.ok())
        << bt.tmpl->name() << ": " << restored.status().ToString();
    const PhysicalPlanNode& plan = *restored.ValueOrDie();

    // Identity preserved.
    EXPECT_EQ(PlanSignatureHash(plan), PlanSignatureHash(*r.plan));
    // Well-formed against the template and catalog.
    Status valid = ValidatePlan(plan, *bt.tmpl, bt.db->db.catalog());
    EXPECT_TRUE(valid.ok()) << bt.tmpl->name() << ": " << valid.ToString();
    // Recosts identically at the original instance and a perturbed one.
    const CostModel& cm = optimizer.cost_model();
    EXPECT_NEAR(cm.RecostTree(plan, wi.svector), r.cost, r.cost * 1e-9);
    SVector moved = wi.svector;
    moved[0] = std::min(1.0, moved[0] * 1.7 + 1e-4);
    EXPECT_NEAR(cm.RecostTree(plan, moved),
                cm.RecostTree(*r.plan, moved),
                cm.RecostTree(*r.plan, moved) * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Templates, SerdeSweepTest, ::testing::Range(0, 12),
                         [](const auto& param_info) {
                           return Universe::Get()
                               .templates[static_cast<size_t>(
                                   param_info.param)]
                               .tmpl->name();
                         });

}  // namespace
}  // namespace scrpqo

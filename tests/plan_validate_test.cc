#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "optimizer/optimizer.h"
#include "optimizer/plan_validate.h"
#include "query/query_instance.h"
#include "tests/test_util.h"
#include "workload/instance_gen.h"
#include "workload/named_templates.h"

namespace scrpqo {
namespace {

class PlanValidateTest : public ::testing::Test {
 protected:
  PlanValidateTest()
      : db_(testing::MakeSmallDatabase(5000, 200)),
        tmpl_(testing::MakeJoinTemplate()),
        optimizer_(&db_) {}

  Database db_;
  std::shared_ptr<QueryTemplate> tmpl_;
  Optimizer optimizer_;
};

TEST_F(PlanValidateTest, OptimizerOutputValidates) {
  for (auto [s0, s1] : {std::make_pair(0.001, 0.9), std::make_pair(0.3, 0.3),
                        std::make_pair(0.9, 0.05)}) {
    QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    OptimizationResult r = optimizer_.Optimize(q);
    Status st = ValidatePlan(*r.plan, *tmpl_, db_.catalog());
    EXPECT_TRUE(st.ok()) << st.ToString() << "\n" << r.plan->ToString();
  }
}

TEST_F(PlanValidateTest, DetectsSortOnAbsentTable) {
  // Regression shape for the fixed optimizer bug: a Sort keyed on table 0
  // below a subtree that only produces table 1.
  auto leaf = std::make_shared<PhysicalPlanNode>();
  leaf->kind = PhysicalOpKind::kTableScan;
  leaf->leaf.table_index = 1;
  leaf->leaf.table = "dim";
  leaf->leaf.base_rows = 200;
  auto sort = std::make_shared<PhysicalPlanNode>();
  sort->kind = PhysicalOpKind::kSort;
  sort->sort_key = SortKey{0, "f_value"};
  sort->children = {leaf};
  Status st = ValidatePlan(*sort, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("absent"), std::string::npos);
}

TEST_F(PlanValidateTest, DetectsWrongChildCount) {
  auto hj = std::make_shared<PhysicalPlanNode>();
  hj->kind = PhysicalOpKind::kHashJoin;
  Status st = ValidatePlan(*hj, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
}

TEST_F(PlanValidateTest, DetectsUnknownPredicateColumn) {
  auto leaf = std::make_shared<PhysicalPlanNode>();
  leaf->kind = PhysicalOpKind::kTableScan;
  leaf->leaf.table_index = 0;
  leaf->leaf.table = "fact";
  leaf->leaf.base_rows = 5000;
  PredSpec p;
  p.column = "no_such_column";
  leaf->leaf.preds.push_back(p);
  Status st = ValidatePlan(*leaf, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
}

TEST_F(PlanValidateTest, DetectsSeekOnUnindexedColumn) {
  auto seek = std::make_shared<PhysicalPlanNode>();
  seek->kind = PhysicalOpKind::kIndexSeek;
  seek->leaf.table_index = 0;
  seek->leaf.table = "fact";
  seek->leaf.base_rows = 5000;
  seek->leaf.index_column = "f_weight";  // not indexed in the fixture
  Status st = ValidatePlan(*seek, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
}

TEST_F(PlanValidateTest, DetectsMergeJoinWithUnsortedChildren) {
  auto l = std::make_shared<PhysicalPlanNode>();
  l->kind = PhysicalOpKind::kTableScan;
  l->leaf.table_index = 0;
  l->leaf.table = "fact";
  l->leaf.base_rows = 5000;
  auto r = std::make_shared<PhysicalPlanNode>();
  r->kind = PhysicalOpKind::kTableScan;
  r->leaf.table_index = 1;
  r->leaf.table = "dim";
  r->leaf.base_rows = 200;
  auto mj = std::make_shared<PhysicalPlanNode>();
  mj->kind = PhysicalOpKind::kMergeJoin;
  mj->children = {l, r};
  JoinEdge e;
  e.left_table = 0;
  e.left_column = "f_dim";
  e.right_table = 1;
  e.right_column = "d_key";
  mj->join.edges = {e};
  mj->join.join_sel = 0.005;
  Status st = ValidatePlan(*mj, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sorted"), std::string::npos);
}

TEST_F(PlanValidateTest, DetectsBadJoinSelectivity) {
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.3, 0.3});
  OptimizationResult r = optimizer_.Optimize(q);
  auto broken = std::make_shared<PhysicalPlanNode>(*r.plan);
  if (!broken->is_join()) GTEST_SKIP() << "plan has non-join root";
  broken->join.join_sel = 0.0;
  Status st = ValidatePlan(*broken, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
}

TEST_F(PlanValidateTest, DetectsDanglingTableIndex) {
  auto leaf = std::make_shared<PhysicalPlanNode>();
  leaf->kind = PhysicalOpKind::kTableScan;
  leaf->leaf.table_index = 7;  // template only has 2 tables
  leaf->leaf.table = "fact";
  leaf->leaf.base_rows = 5000;
  Status st = ValidatePlan(*leaf, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("table_index"), std::string::npos);
}

TEST_F(PlanValidateTest, DetectsNonMonotoneCostAnnotation) {
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.3, 0.3});
  OptimizationResult r = optimizer_.Optimize(q);
  auto broken = std::make_shared<PhysicalPlanNode>(*r.plan);
  ASSERT_FALSE(broken->children.empty());
  // est_cost is cumulative, so a child more expensive than its parent is
  // a corrupted annotation.
  auto pricey = std::make_shared<PhysicalPlanNode>(*broken->children[0]);
  pricey->est_cost = broken->est_cost * 2.0 + 1.0;
  broken->children[0] = pricey;
  Status st = ValidatePlan(*broken, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-monotone"), std::string::npos)
      << st.ToString();
}

TEST_F(PlanValidateTest, DetectsNonFiniteCostAnnotation) {
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.3, 0.3});
  OptimizationResult r = optimizer_.Optimize(q);
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity()}) {
    auto broken = std::make_shared<PhysicalPlanNode>(*r.plan);
    broken->est_cost = bad;
    Status st = ValidatePlan(*broken, *tmpl_, db_.catalog());
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("non-finite"), std::string::npos)
        << st.ToString();
  }
}

TEST_F(PlanValidateTest, DetectsNegativeCostAnnotation) {
  QueryInstance q = InstanceForSelectivities(db_, *tmpl_, {0.3, 0.3});
  OptimizationResult r = optimizer_.Optimize(q);
  auto broken = std::make_shared<PhysicalPlanNode>(*r.plan);
  broken->est_rows = -5.0;
  Status st = ValidatePlan(*broken, *tmpl_, db_.catalog());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("negative"), std::string::npos);
}

/// Sweep: every optimizer output across all named templates validates.
TEST(PlanValidateSweepTest, NamedTemplatesAllValid) {
  SchemaScale scale;
  scale.factor = 0.2;
  auto dbs = BuildAllDatabases(scale);
  for (const auto& nt : ListNamedTemplates()) {
    BoundTemplate bt = BuildNamedTemplate(dbs, nt.name);
    Optimizer optimizer(&bt.db->db);
    InstanceGenOptions gen;
    gen.m = 12;
    for (const auto& wi : GenerateInstances(bt, gen)) {
      OptimizationResult r =
          optimizer.OptimizeWithSVector(wi.instance, wi.svector);
      Status st = ValidatePlan(*r.plan, *bt.tmpl, bt.db->db.catalog());
      EXPECT_TRUE(st.ok())
          << nt.name << ": " << st.ToString() << "\n" << r.plan->ToString();
    }
  }
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include "query/query_instance.h"
#include "query/query_template.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

TEST(QueryTemplateTest, DimensionsCountParameterizedOnly) {
  auto tmpl = testing::MakeJoinTemplate();
  EXPECT_EQ(tmpl->dimensions(), 2);
  EXPECT_EQ(tmpl->num_tables(), 2);
  EXPECT_EQ(tmpl->predicates().size(), 2u);
}

TEST(QueryTemplateTest, RejectsOutOfOrderSlots) {
  QueryTemplate tmpl("q", {"fact"});
  PredicateTemplate p;
  p.table_index = 0;
  p.column = "x";
  p.param_slot = 1;  // slot 0 was never added
  EXPECT_FALSE(tmpl.AddPredicate(std::move(p)).ok());
}

TEST(QueryTemplateTest, RejectsBadTableIndex) {
  QueryTemplate tmpl("q", {"fact"});
  PredicateTemplate p;
  p.table_index = 3;
  p.column = "x";
  EXPECT_FALSE(tmpl.AddPredicate(std::move(p)).ok());
}

TEST(QueryTemplateTest, PredicateForSlot) {
  auto tmpl = testing::MakeJoinTemplate();
  EXPECT_EQ(tmpl->PredicateForSlot(0).column, "f_value");
  EXPECT_EQ(tmpl->PredicateForSlot(1).column, "d_attr");
}

TEST(QueryTemplateTest, PredicatesOnTable) {
  auto tmpl = testing::MakeJoinTemplate();
  EXPECT_EQ(tmpl->PredicatesOnTable(0).size(), 1u);
  EXPECT_EQ(tmpl->PredicatesOnTable(1).size(), 1u);
}

TEST(QueryTemplateTest, JoinGraphConnectivity) {
  auto connected = testing::MakeJoinTemplate();
  EXPECT_TRUE(connected->IsJoinGraphConnected());

  QueryTemplate disconnected("q", {"fact", "dim"});
  EXPECT_FALSE(disconnected.IsJoinGraphConnected());

  QueryTemplate single("q", {"fact"});
  EXPECT_TRUE(single.IsJoinGraphConnected());
}

TEST(QueryInstanceTest, BindsParameters) {
  Database db = testing::MakeSmallDatabase();
  auto tmpl = testing::MakeJoinTemplate();
  QueryInstance q(tmpl.get(), {Value(int64_t{5000}), Value(int64_t{50})});
  auto fact_preds = q.BoundPredicatesOnTable(0);
  ASSERT_EQ(fact_preds.size(), 1u);
  EXPECT_EQ(fact_preds[0].value.int64(), 5000);
  EXPECT_EQ(fact_preds[0].param_slot, 0);
  auto dim_preds = q.BoundPredicatesOnTable(1);
  ASSERT_EQ(dim_preds.size(), 1u);
  EXPECT_EQ(dim_preds[0].value.int64(), 50);
}

TEST(SVectorTest, MatchesBruteForceCounts) {
  Database db = testing::MakeSmallDatabase(4000, 200);
  auto tmpl = testing::MakeJoinTemplate();
  QueryInstance q(tmpl.get(), {Value(int64_t{2500}), Value(int64_t{30})});
  SVector sv = ComputeSelectivityVector(db, q);
  ASSERT_EQ(sv.size(), 2u);

  const ColumnData& fv = db.GetTableData("fact").column("f_value");
  int64_t m0 = 0;
  for (int64_t i = 0; i < fv.size(); ++i) {
    if (fv.GetDouble(i) <= 2500.0) ++m0;
  }
  EXPECT_NEAR(sv[0], static_cast<double>(m0) / 4000.0, 0.03);

  const ColumnData& da = db.GetTableData("dim").column("d_attr");
  int64_t m1 = 0;
  for (int64_t i = 0; i < da.size(); ++i) {
    if (da.GetDouble(i) <= 30.0) ++m1;
  }
  EXPECT_NEAR(sv[1], static_cast<double>(m1) / 200.0, 0.06);
}

TEST(SVectorTest, MonotoneInParameters) {
  Database db = testing::MakeSmallDatabase();
  auto tmpl = testing::MakeJoinTemplate();
  double prev = -1.0;
  for (int64_t v : {100, 1000, 3000, 7000, 10000}) {
    QueryInstance q(tmpl.get(), {Value(v), Value(int64_t{50})});
    SVector sv = ComputeSelectivityVector(db, q);
    EXPECT_GE(sv[0], prev);
    prev = sv[0];
  }
}

TEST(TableSelectivityTest, MultipliesPredicates) {
  Database db = testing::MakeSmallDatabase();
  auto tmpl = testing::MakeJoinTemplate();
  QueryInstance q(tmpl.get(), {Value(int64_t{5000}), Value(int64_t{50})});
  SVector sv = ComputeSelectivityVector(db, q);
  EXPECT_NEAR(TableSelectivity(db, q, 0), sv[0], 1e-12);
  EXPECT_NEAR(TableSelectivity(db, q, 1), sv[1], 1e-12);
}

TEST(InstanceForSelectivitiesTest, HitsTargets) {
  Database db = testing::MakeSmallDatabase(8000, 400);
  auto tmpl = testing::MakeJoinTemplate();
  for (double t0 : {0.05, 0.3, 0.8}) {
    for (double t1 : {0.1, 0.5, 0.9}) {
      QueryInstance q = InstanceForSelectivities(db, *tmpl, {t0, t1});
      SVector sv = ComputeSelectivityVector(db, q);
      EXPECT_NEAR(sv[0], t0, 0.04) << "t0=" << t0;
      EXPECT_NEAR(sv[1], t1, 0.08) << "t1=" << t1;
    }
  }
}

TEST(InstanceForSelectivitiesTest, IntColumnsGetIntParams) {
  Database db = testing::MakeSmallDatabase();
  auto tmpl = testing::MakeJoinTemplate();
  QueryInstance q = InstanceForSelectivities(db, *tmpl, {0.5, 0.5});
  EXPECT_TRUE(q.param(0).is_int64());
  EXPECT_TRUE(q.param(1).is_int64());
}

/// Property sweep: inversion round-trips across the whole target grid for
/// both template dimensions.
class InversionPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(InversionPropertyTest, RoundTrip) {
  Database db = testing::MakeSmallDatabase(8000, 400);
  auto tmpl = testing::MakeJoinTemplate();
  double target = GetParam();
  QueryInstance q = InstanceForSelectivities(db, *tmpl, {target, target});
  SVector sv = ComputeSelectivityVector(db, q);
  EXPECT_NEAR(sv[0], target, 0.05);
  EXPECT_NEAR(sv[1], target, 0.10);
}

INSTANTIATE_TEST_SUITE_P(Targets, InversionPropertyTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 0.99));

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <memory>

#include "common/math_util.h"
#include "pqo/opt_always.h"
#include "pqo/opt_once.h"
#include "pqo/pcm.h"
#include "pqo/scr.h"
#include "workload/report.h"
#include "workload/suite.h"

namespace scrpqo {
namespace {

/// One shared miniature suite: building databases + oracles is the
/// expensive part, so all integration tests reuse it.
class IntegrationTest : public ::testing::Test {
 protected:
  static EvaluationSuite& Suite() {
    static EvaluationSuite* suite = [] {
      SuiteConfig cfg;
      cfg.num_templates = 8;
      cfg.m = 120;
      cfg.scale = 0.3;
      return new EvaluationSuite(cfg);
    }();
    return *suite;
  }
};

TEST_F(IntegrationTest, SuiteShape) {
  EXPECT_EQ(Suite().workloads().size(), 8u);
  for (const auto& tw : Suite().workloads()) {
    int expected_m = tw.bound.tmpl->dimensions() > 3 ? 240 : 120;
    EXPECT_EQ(static_cast<int>(tw.instances.size()), expected_m);
    EXPECT_EQ(tw.oracle.size(), expected_m);
  }
}

TEST_F(IntegrationTest, OracleCostsPositive) {
  for (const auto& tw : Suite().workloads()) {
    for (int i = 0; i < tw.oracle.size(); ++i) {
      EXPECT_GT(tw.oracle.opt_cost(i), 0.0);
    }
  }
}

TEST_F(IntegrationTest, OptAlwaysIsAlwaysOptimal) {
  auto seqs = Suite().RunAll(
      [] { return std::make_unique<OptAlways>(); });
  for (const auto& s : seqs) {
    EXPECT_NEAR(s.mso, 1.0, 1e-9);
    EXPECT_NEAR(s.total_cost_ratio, 1.0, 1e-9);
    EXPECT_EQ(s.num_opt, s.m);
  }
}

TEST_F(IntegrationTest, OptOnceSingleCall) {
  auto seqs = Suite().RunAll([] { return std::make_unique<OptOnce>(); });
  for (const auto& s : seqs) {
    EXPECT_EQ(s.num_opt, 1);
    EXPECT_EQ(s.num_plans, 1);
    EXPECT_GE(s.mso, 1.0);
  }
}

TEST_F(IntegrationTest, ScrBeatsOptAlwaysOnOverheadAndOptOnceOnQuality) {
  auto scr_seqs = Suite().RunAll(
      [] { return std::make_unique<Scr>(ScrOptions{.lambda = 2.0}); }, 2.0);
  auto once_seqs =
      Suite().RunAll([] { return std::make_unique<OptOnce>(); });

  double scr_numopt = Mean(ExtractNumOptPct(scr_seqs));
  EXPECT_LT(scr_numopt, 50.0);  // far fewer calls than OptAlways' 100%

  double scr_tcr = Mean(ExtractTcr(scr_seqs));
  double once_tcr = Mean(ExtractTcr(once_seqs));
  EXPECT_LT(scr_tcr, once_tcr);  // far better quality than OptOnce
  EXPECT_LT(scr_tcr, 1.6);
}

TEST_F(IntegrationTest, ScrBoundHoldsAlmostEverywhere) {
  auto seqs = Suite().RunAll(
      [] { return std::make_unique<Scr>(ScrOptions{.lambda = 2.0}); }, 2.0);
  int64_t total_instances = 0, violations = 0;
  for (const auto& s : seqs) {
    total_instances += s.m;
    violations += s.bound_violations;
  }
  // Violations stem from genuine BCG breaks and must be rare (< 2%).
  EXPECT_LT(static_cast<double>(violations),
            0.02 * static_cast<double>(total_instances))
      << violations << " of " << total_instances;
}

TEST_F(IntegrationTest, ScrStoresFewerPlansThanPcm) {
  auto scr_seqs = Suite().RunAll(
      [] { return std::make_unique<Scr>(ScrOptions{.lambda = 2.0}); });
  auto pcm_seqs = Suite().RunAll(
      [] { return std::make_unique<Pcm>(PcmOptions{.lambda = 2.0}); });
  EXPECT_LT(Mean(ExtractNumPlans(scr_seqs)),
            Mean(ExtractNumPlans(pcm_seqs)));
}

TEST_F(IntegrationTest, ScrFewerOptCallsThanPcm) {
  auto scr_seqs = Suite().RunAll(
      [] { return std::make_unique<Scr>(ScrOptions{.lambda = 2.0}); });
  auto pcm_seqs = Suite().RunAll(
      [] { return std::make_unique<Pcm>(PcmOptions{.lambda = 2.0}); });
  EXPECT_LT(Mean(ExtractNumOptPct(scr_seqs)),
            Mean(ExtractNumOptPct(pcm_seqs)));
}

TEST_F(IntegrationTest, LambdaTradeoffMonotone) {
  auto run = [&](double lambda) {
    auto seqs = Suite().RunAll([lambda] {
      return std::make_unique<Scr>(ScrOptions{.lambda = lambda});
    });
    return Mean(ExtractNumOptPct(seqs));
  };
  double tight = run(1.1);
  double loose = run(2.0);
  EXPECT_LE(loose, tight);
}

TEST_F(IntegrationTest, ReportHelpers) {
  auto seqs = Suite().RunAll([] { return std::make_unique<OptOnce>(); });
  DistSummary s = Summarize(ExtractTcr(seqs));
  EXPECT_GE(s.max, s.p95);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_GT(s.avg, 0.0);
}

TEST_F(IntegrationTest, MetricsInternallyConsistent) {
  auto seqs = Suite().RunAll(
      [] { return std::make_unique<Scr>(ScrOptions{.lambda = 1.5}); });
  for (const auto& s : seqs) {
    EXPECT_EQ(static_cast<int64_t>(s.so_per_instance.size()), s.m);
    // numPlans <= numOpt <= m (Section 2.1).
    EXPECT_LE(s.num_plans, s.num_opt);
    EXPECT_LE(s.num_opt, s.m);
    EXPECT_GE(s.mso, s.total_cost_ratio * 0.999);
    for (double so : s.so_per_instance) EXPECT_GE(so, 1.0);
  }
}

}  // namespace
}  // namespace scrpqo

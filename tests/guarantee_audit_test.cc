// Tests for verify/guarantee_audit.h: a clean SCR run must audit clean
// (trace and cache snapshot), and every audited inequality must trip when
// an event or cache entry violating it is injected.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "pqo/scr.h"
#include "query/query_instance.h"
#include "tests/test_util.h"
#include "verify/guarantee_audit.h"

namespace scrpqo {
namespace {

class GuaranteeAuditTest : public ::testing::Test {
 protected:
  GuaranteeAuditTest() : db_(testing::MakeSmallDatabase(5000, 200)) {
    optimizer_ = std::make_unique<Optimizer>(&db_);
    tmpl_ = testing::MakeJoinTemplate();
  }

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  /// Runs `m` random instances through `scr` with a tracer attached;
  /// returns the tracer's events. The caller keeps `scr` for cache
  /// snapshots.
  std::vector<DecisionEvent> RunScr(Scr* scr, int m) {
    Tracer tracer(1 << 14);
    ObsHooks hooks;
    hooks.tracer = &tracer;
    scr->SetObs(hooks);
    EngineContext engine(&db_, optimizer_.get());
    Pcg32 rng(11);
    for (int i = 0; i < m; ++i) {
      scr->OnInstance(MakeWi(i, rng.UniformDouble(0.005, 0.95),
                             rng.UniformDouble(0.005, 0.95)),
                      &engine);
    }
    return tracer.Snapshot();
  }

  Database db_;
  std::unique_ptr<Optimizer> optimizer_;
  std::shared_ptr<QueryTemplate> tmpl_;
};

AuditConfig ScrConfig(double lambda) {
  AuditConfig config;
  config.lambda = lambda;
  config.lambda_r = std::sqrt(lambda);
  return config;
}

TEST_F(GuaranteeAuditTest, CleanScrTraceAuditsClean) {
  ScrOptions opts;
  opts.lambda = 2.0;
  Scr scr(opts);
  std::vector<DecisionEvent> events = RunScr(&scr, 300);
  ASSERT_FALSE(events.empty());

  AuditReport report = AuditTrace(events, ScrConfig(2.0));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.events_checked, static_cast<int64_t>(events.size()));
}

TEST_F(GuaranteeAuditTest, CleanScrCacheSnapshotAuditsClean) {
  ScrOptions opts;
  opts.lambda = 2.0;
  Scr scr(opts);
  (void)RunScr(&scr, 300);

  AuditReport report = AuditCacheSnapshot(
      scr.SnapshotPlans(), scr.SnapshotInstances(), ScrConfig(2.0));
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.entries_checked, 0);
  EXPECT_GT(report.plans_checked, 0);
}

TEST_F(GuaranteeAuditTest, DynamicLambdaTraceAuditsClean) {
  ScrOptions opts;
  opts.dynamic_lambda = true;
  opts.lambda_min = 1.1;
  opts.lambda_max = 4.0;
  Scr scr(opts);
  std::vector<DecisionEvent> events = RunScr(&scr, 300);

  AuditConfig config;
  config.dynamic_lambda = true;
  config.lambda_min = 1.1;
  config.lambda_max = 4.0;
  config.lambda_r = std::sqrt(opts.lambda);  // redundancy stays static
  AuditReport report = AuditTrace(events, config);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(GuaranteeAuditTest, SpatialIndexTraceAuditsClean) {
  // The k-d-tree selectivity check must fill the same audit fields as the
  // scan path.
  ScrOptions opts;
  opts.lambda = 2.0;
  opts.use_spatial_index = true;
  Scr scr(opts);
  std::vector<DecisionEvent> events = RunScr(&scr, 300);
  AuditReport report = AuditTrace(events, ScrConfig(2.0));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(GuaranteeAuditTest, SpillyCostModelTraceStillAuditsClean) {
  // Same spilly setup as violation_injection_test: BCG breaks happen at
  // run time and Appendix G quarantines the offending instances, but the
  // *recorded* decision arithmetic must still satisfy the inequalities —
  // a BCG violation is not a license for the checks to mis-add.
  OptimizerOptions oopts;
  oopts.cost_params.memory_rows = 2000.0;
  oopts.cost_params.spill_io_factor = 40.0;
  Optimizer spilly(&db_, oopts);
  ScrOptions opts;
  opts.lambda = 1.2;
  opts.detect_violations = true;
  Scr scr(opts);
  Tracer tracer(1 << 14);
  ObsHooks hooks;
  hooks.tracer = &tracer;
  scr.SetObs(hooks);
  EngineContext engine(&db_, &spilly);
  Pcg32 rng(3);
  for (int i = 0; i < 300; ++i) {
    scr.OnInstance(MakeWi(i, rng.UniformDouble(0.005, 0.95),
                          rng.UniformDouble(0.005, 0.95)),
                   &engine);
  }
  AuditReport report = AuditTrace(tracer.Snapshot(), ScrConfig(1.2));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

/// A minimal well-formed sel-check event; tests then break one field.
DecisionEvent SelHit() {
  DecisionEvent e;
  e.seq = 7;
  e.instance_id = 3;
  e.technique = "SCR2";
  e.outcome = DecisionOutcome::kSelCheckHit;
  e.matched_entry = 0;
  e.g = 1.2;
  e.l = 1.1;
  e.subopt = 1.05;
  e.lambda = 2.0;
  return e;
}

TEST_F(GuaranteeAuditTest, FlagsSelCheckInequalityViolation) {
  DecisionEvent e = SelHit();
  e.g = 3.0;  // 3.0 * 1.1 = 3.3 > 2.0 / 1.05
  AuditReport report = AuditTrace({e}, ScrConfig(2.0));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].seq, 7);
  EXPECT_NE(report.violations[0].detail.find("G*L"), std::string::npos)
      << report.violations[0].detail;
}

TEST_F(GuaranteeAuditTest, FlagsCostCheckInequalityViolation) {
  DecisionEvent e = SelHit();
  e.outcome = DecisionOutcome::kCostCheckHit;
  e.g = -1.0;
  e.r = 2.5;  // 2.5 * 1.1 > 2.0 / 1.05
  AuditReport report = AuditTrace({e}, ScrConfig(2.0));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].detail.find("R*L"), std::string::npos)
      << report.violations[0].detail;
}

TEST_F(GuaranteeAuditTest, FlagsPcmInferenceViolation) {
  // A cost-check event without L and S is a PCM-style inference: r <= lambda.
  DecisionEvent e;
  e.seq = 1;
  e.technique = "PCM";
  e.outcome = DecisionOutcome::kCostCheckHit;
  e.matched_entry = 0;
  e.r = 2.5;
  e.lambda = 2.0;
  AuditConfig config;
  config.lambda = 2.0;
  AuditReport report = AuditTrace({e}, config);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].detail.find("PCM inference"),
            std::string::npos)
      << report.violations[0].detail;
}

TEST_F(GuaranteeAuditTest, FlagsRedundancyThresholdViolation) {
  DecisionEvent e;
  e.seq = 2;
  e.technique = "SCR2";
  e.outcome = DecisionOutcome::kRedundantDiscard;
  e.matched_entry = 0;
  e.r = 1.9;  // Smin must be <= lambda_r = sqrt(2) ~ 1.414
  e.lambda = std::sqrt(2.0);
  AuditReport report = AuditTrace({e}, ScrConfig(2.0));
  ASSERT_EQ(report.violations.size(), 1u);
}

TEST_F(GuaranteeAuditTest, FlagsLambdaMismatchAgainstConfig) {
  DecisionEvent e = SelHit();
  e.lambda = 3.0;  // run claimed lambda=2.0
  AuditReport report = AuditTrace({e}, ScrConfig(2.0));
  ASSERT_FALSE(report.ok());
}

TEST_F(GuaranteeAuditTest, FlagsDynamicLambdaOutsideRange) {
  DecisionEvent e = SelHit();
  e.lambda = 5.0;
  AuditConfig config;
  config.dynamic_lambda = true;
  config.lambda_min = 1.1;
  config.lambda_max = 4.0;
  AuditReport report = AuditTrace({e}, config);
  ASSERT_FALSE(report.ok());
}

TEST_F(GuaranteeAuditTest, FlagsSubUnitLambda) {
  DecisionEvent e = SelHit();
  e.lambda = 0.9;
  AuditConfig config;  // unconfigured: recorded lambda still must be >= 1
  AuditReport report = AuditTrace({e}, config);
  ASSERT_FALSE(report.ok());
}

TEST_F(GuaranteeAuditTest, FlagsMissingAuditFields) {
  DecisionEvent e = SelHit();
  e.subopt = -1.0;  // sel-check hit without S is unverifiable
  AuditReport report = AuditTrace({e}, ScrConfig(2.0));
  ASSERT_FALSE(report.ok());
}

TEST_F(GuaranteeAuditTest, ToleranceAbsorbsSerdeNoise) {
  DecisionEvent e = SelHit();
  // Exactly on the bound, perturbed by double rounding: g*l == lambda/s.
  e.g = (2.0 / 1.05) / 1.1;
  AuditReport report = AuditTrace({e}, ScrConfig(2.0));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(GuaranteeAuditTest, FlagsCacheDanglingOrdinalAndBadSubopt) {
  ScrOptions opts;
  opts.lambda = 2.0;
  Scr scr(opts);
  (void)RunScr(&scr, 100);
  std::vector<PlanPtr> plans = scr.SnapshotPlans();
  std::vector<Scr::SnapshotEntry> entries = scr.SnapshotInstances();
  ASSERT_FALSE(entries.empty());

  std::vector<Scr::SnapshotEntry> bad = entries;
  bad[0].plan_ordinal = static_cast<int>(plans.size()) + 5;  // dangling
  Scr::SnapshotEntry s = entries[0];
  s.subopt = 3.0;  // > lambda_r
  bad.push_back(s);
  Scr::SnapshotEntry c = entries[0];
  c.opt_cost = -1.0;  // non-positive optimal cost
  bad.push_back(c);

  AuditReport report = AuditCacheSnapshot(plans, bad, ScrConfig(2.0));
  EXPECT_GE(report.violations.size(), 3u) << report.ToString();
  // Cache findings carry the entry ordinal, not a trace seq.
  EXPECT_EQ(report.violations[0].seq, -1);
  EXPECT_GE(report.violations[0].entry, 0);
}

TEST_F(GuaranteeAuditTest, ReportMergesAndCapsOutput) {
  AuditReport a;
  a.events_checked = 2;
  for (int i = 0; i < 10; ++i) {
    a.violations.push_back({i, -1, "", "v" + std::to_string(i)});
  }
  AuditReport b;
  b.entries_checked = 3;
  b.violations.push_back({-1, 0, "", "cache"});
  a.Merge(b);
  EXPECT_EQ(a.events_checked, 2);
  EXPECT_EQ(a.entries_checked, 3);
  EXPECT_EQ(a.violations.size(), 11u);
  std::string capped = a.ToString(/*max_lines=*/3);
  EXPECT_NE(capped.find("v0"), std::string::npos);
  EXPECT_EQ(capped.find("v5"), std::string::npos) << capped;
}

TEST_F(GuaranteeAuditTest, TraceFileRoundTripAuditsClean) {
  ScrOptions opts;
  opts.lambda = 2.0;
  Scr scr(opts);
  std::vector<DecisionEvent> events = RunScr(&scr, 200);

  std::string path =
      ::testing::TempDir() + "/guarantee_audit_trace.jsonl";
  Tracer tracer(1 << 14);
  for (DecisionEvent e : events) tracer.Record(std::move(e));
  ASSERT_TRUE(tracer.WriteJsonlFile(path).ok());

  Result<AuditReport> r = AuditTraceFile(path, ScrConfig(2.0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.ValueOrDie().ok()) << r.ValueOrDie().ToString();
  std::remove(path.c_str());
}

TEST_F(GuaranteeAuditTest, TraceFileWithNonFiniteFieldIsRejected) {
  std::string path = ::testing::TempDir() + "/guarantee_audit_nan.jsonl";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("{\"seq\": 0, \"instance\": 1, \"technique\": \"SCR2\", "
        "\"outcome\": \"cost-check-hit\", \"matched\": 0, \"r\": nan, "
        "\"lambda\": 2.0}\n",
        f);
  fclose(f);
  Result<AuditReport> r = AuditTraceFile(path, ScrConfig(2.0));
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST_F(GuaranteeAuditTest, MissingTraceFileIsAnError) {
  Result<AuditReport> r =
      AuditTraceFile("/nonexistent/trace.jsonl", ScrConfig(2.0));
  EXPECT_FALSE(r.ok());
}

TEST_F(GuaranteeAuditTest, PerTemplateRollupSeparatesTemplates) {
  auto sel_hit = [](int64_t seq, const std::string& key, double g) {
    DecisionEvent e;
    e.seq = seq;
    e.instance_id = static_cast<int32_t>(seq);
    e.outcome = DecisionOutcome::kSelCheckHit;
    e.template_key = key;
    e.g = g;
    e.l = 1.1;
    e.subopt = 1.0;
    e.lambda = 2.0;
    return e;
  };
  std::vector<DecisionEvent> events;
  events.push_back(sel_hit(0, "t1", 1.2));   // holds: 1.32 <= 2
  events.push_back(sel_hit(1, "t1", 1.5));   // holds: 1.65 <= 2
  events.push_back(sel_hit(2, "t2", 10.0));  // violates: 11 > 2

  AuditReport report = AuditTrace(events, AuditConfig{});
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.by_template.size(), 2u);
  EXPECT_EQ(report.by_template["t1"].events, 2);
  EXPECT_EQ(report.by_template["t1"].violations, 0);
  EXPECT_EQ(report.by_template["t2"].events, 1);
  EXPECT_EQ(report.by_template["t2"].violations, 1);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].template_key, "t2");
  // Both the violation line and the rollup carry the template.
  std::string text = report.ToString();
  EXPECT_NE(text.find("[t2]"), std::string::npos) << text;
  std::string summary = report.PerTemplateString();
  EXPECT_NE(summary.find("template t1: 2 events, 0 violations"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("template t2: 1 events, 1 violation"),
            std::string::npos)
      << summary;
}

TEST_F(GuaranteeAuditTest, PerTemplateStringEmptyForUnscopedTraces) {
  DecisionEvent e;
  e.outcome = DecisionOutcome::kOptimized;
  e.lambda = 2.0;
  AuditReport report = AuditTrace({e}, AuditConfig{});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.PerTemplateString(), "");
}

TEST_F(GuaranteeAuditTest, PerTemplateLambdaExcludesRedundancyDecisions) {
  // A redundancy decision records lambda_r, not the serving bound; the
  // rollup must not count it as a second lambda on the template.
  DecisionEvent opt;
  opt.seq = 0;
  opt.outcome = DecisionOutcome::kOptimized;
  opt.template_key = "t1";
  opt.lambda = 2.0;
  DecisionEvent red;
  red.seq = 1;
  red.outcome = DecisionOutcome::kRedundantDiscard;
  red.template_key = "t1";
  red.r = 1.2;
  red.lambda = 1.4142135623730951;  // sqrt(2)
  AuditReport report = AuditTrace({opt, red}, AuditConfig{});
  EXPECT_TRUE(report.ok()) << report.ToString();
  ASSERT_EQ(report.by_template.count("t1"), 1u);
  ASSERT_EQ(report.by_template["t1"].lambdas.size(), 1u);
  EXPECT_DOUBLE_EQ(report.by_template["t1"].lambdas[0], 2.0);
}

TEST_F(GuaranteeAuditTest, MergeFoldsTemplateRollups) {
  AuditReport a;
  a.by_template["t1"].events = 2;
  a.by_template["t1"].lambdas = {2.0};
  AuditReport b;
  b.by_template["t1"].events = 3;
  b.by_template["t1"].violations = 1;
  b.by_template["t1"].lambdas = {2.0, 1.5};
  b.by_template["t2"].events = 1;
  a.Merge(b);
  EXPECT_EQ(a.by_template.size(), 2u);
  EXPECT_EQ(a.by_template["t1"].events, 5);
  EXPECT_EQ(a.by_template["t1"].violations, 1);
  EXPECT_EQ(a.by_template["t1"].lambdas.size(), 2u);  // 2.0 deduped
  EXPECT_EQ(a.by_template["t2"].events, 1);
}

}  // namespace
}  // namespace scrpqo

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace scrpqo {
namespace {

/// Every test leaves the process-global registry exactly as it found it
/// (disarmed, seed 0, no hook) — other suites in this binary rely on the
/// disabled fast path.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetSeed(0);
  }
  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetSeed(0);
    unsetenv("SCRPQO_FAULTS");
    unsetenv("SCRPQO_FAULT_SEED");
  }
};

TEST_F(FaultInjectionTest, DisabledRegistryNeverFires) {
  FaultRegistry& reg = FaultRegistry::Global();
  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(FaultShouldFire("anything"));
  EXPECT_FALSE(reg.ShouldFire(faults::kOptimizeFail));
  EXPECT_EQ(reg.TotalFires(), 0);
  EXPECT_EQ(reg.StatsFor(faults::kOptimizeFail).evaluations, 0);
  EXPECT_TRUE(reg.ArmedPoints().empty());
}

TEST_F(FaultInjectionTest, UnarmedPointNeverFiresEvenWhenEnabled) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  reg.Arm("test.other", spec);
  EXPECT_TRUE(reg.enabled());
  EXPECT_FALSE(FaultShouldFire("test.unarmed"));
  EXPECT_TRUE(FaultShouldFire("test.other"));
}

TEST_F(FaultInjectionTest, OneShotFiresExactlyOnce) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kOneShot;
  reg.Arm("test.once", spec);
  EXPECT_TRUE(FaultShouldFire("test.once"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FaultShouldFire("test.once")) << "extra fire at " << i;
  }
  FaultPointStats stats = reg.StatsFor("test.once");
  EXPECT_EQ(stats.evaluations, 11);
  EXPECT_EQ(stats.fires, 1);
  // Re-arming resets the one-shot.
  reg.Arm("test.once", spec);
  EXPECT_TRUE(FaultShouldFire("test.once"));
}

TEST_F(FaultInjectionTest, EveryNthFiresOnSchedule) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kEveryNth;
  spec.nth = 3;
  reg.Arm("test.nth", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(FaultShouldFire("test.nth"));
  // Fires on invocations 1, 4, 7 (index % nth == 0).
  EXPECT_EQ(fired, (std::vector<bool>{true, false, false, true, false,
                                      false, true, false, false}));
  EXPECT_EQ(reg.StatsFor("test.nth").fires, 3);
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicForAGivenSeed) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 0.5;

  auto run = [&](uint64_t seed) {
    reg.Arm("test.prob", spec);
    reg.SetSeed(seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(FaultShouldFire("test.prob"));
    return fired;
  };
  std::vector<bool> a = run(42);
  std::vector<bool> b = run(42);
  std::vector<bool> c = run(43);
  EXPECT_EQ(a, b) << "same seed must replay the exact same fault schedule";
  EXPECT_NE(a, c) << "different seeds should diverge";
}

TEST_F(FaultInjectionTest, ProbabilityFiresAtRoughlyTheConfiguredRate) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 0.3;
  reg.Arm("test.rate", spec);
  int fires = 0;
  for (int i = 0; i < 2000; ++i) {
    if (FaultShouldFire("test.rate")) ++fires;
  }
  EXPECT_GT(fires, 2000 * 0.3 * 0.7);
  EXPECT_LT(fires, 2000 * 0.3 * 1.3);
}

TEST_F(FaultInjectionTest, IndependentPointsGetIndependentStreams) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 0.5;
  reg.Arm("test.stream_a", spec);
  reg.Arm("test.stream_b", spec);
  reg.SetSeed(7);
  std::vector<bool> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(FaultShouldFire("test.stream_a"));
    b.push_back(FaultShouldFire("test.stream_b"));
  }
  EXPECT_NE(a, b) << "points must not share one RNG stream";
}

TEST_F(FaultInjectionTest, ParamIsDeliveredOnFire) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kOneShot;
  spec.param = 20000.0;
  reg.Arm("test.param", spec);
  double param = -1.0;
  EXPECT_TRUE(FaultShouldFire("test.param", &param));
  EXPECT_DOUBLE_EQ(param, 20000.0);
  // No fire: param untouched.
  param = -1.0;
  EXPECT_FALSE(FaultShouldFire("test.param", &param));
  EXPECT_DOUBLE_EQ(param, -1.0);
}

TEST_F(FaultInjectionTest, ConfigureFromStringArmsAllClauses) {
  FaultRegistry& reg = FaultRegistry::Global();
  Status st = reg.ConfigureFromString(
      "optimizer.fail=p0.1;optimizer.latency=n5@20000;snapshot.bitflip=once");
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::vector<std::string> armed = reg.ArmedPoints();
  ASSERT_EQ(armed.size(), 3u);
  EXPECT_EQ(armed[0], "optimizer.fail");
  EXPECT_EQ(armed[1], "optimizer.latency");
  EXPECT_EQ(armed[2], "snapshot.bitflip");
  // The n5@20000 clause delivers its param on the first (fired) call.
  double param = 0.0;
  EXPECT_TRUE(FaultShouldFire("optimizer.latency", &param));
  EXPECT_DOUBLE_EQ(param, 20000.0);
}

TEST_F(FaultInjectionTest, ConfigureFromStringRejectsWholeScheduleOnBadClause) {
  FaultRegistry& reg = FaultRegistry::Global();
  // First clause is fine, second is junk — nothing may be armed.
  EXPECT_FALSE(reg.ConfigureFromString("optimizer.fail=p0.1;bogus").ok());
  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(reg.ConfigureFromString("optimizer.fail=p1.5").ok());
  EXPECT_FALSE(reg.ConfigureFromString("optimizer.fail=n0").ok());
  EXPECT_FALSE(reg.ConfigureFromString("=p0.5").ok());
  EXPECT_FALSE(reg.ConfigureFromString("optimizer.fail=p0.1@nan").ok());
  EXPECT_FALSE(reg.enabled());
}

TEST_F(FaultInjectionTest, ConfigureFromEnvReadsSeedAndSchedule) {
  setenv("SCRPQO_FAULT_SEED", "99", 1);
  setenv("SCRPQO_FAULTS", "test.env=once@7", 1);
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.ConfigureFromEnv().ok());
  double param = 0.0;
  EXPECT_TRUE(FaultShouldFire("test.env", &param));
  EXPECT_DOUBLE_EQ(param, 7.0);
}

TEST_F(FaultInjectionTest, ConfigureFromEnvWithNothingSetIsANoOp) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.ConfigureFromEnv().ok());
  EXPECT_FALSE(reg.enabled());
}

TEST_F(FaultInjectionTest, OnFireHookSeesPointAndParam) {
  FaultRegistry& reg = FaultRegistry::Global();
  std::vector<std::pair<std::string, double>> fired;
  reg.SetOnFire([&fired](std::string_view point, double param) {
    fired.emplace_back(std::string(point), param);
  });
  FaultSpec spec;
  spec.trigger = FaultTrigger::kEveryNth;
  spec.nth = 2;
  spec.param = 3.5;
  reg.Arm("test.hook", spec);
  for (int i = 0; i < 4; ++i) FaultShouldFire("test.hook");
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].first, "test.hook");
  EXPECT_DOUBLE_EQ(fired[0].second, 3.5);
  // DisarmAll clears the hook.
  reg.DisarmAll();
  reg.Arm("test.hook", spec);
  FaultShouldFire("test.hook");
  EXPECT_EQ(fired.size(), 2u);
}

TEST_F(FaultInjectionTest, DisarmStopsOnePointOnly) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kProbability;
  spec.probability = 1.0;
  reg.Arm("test.a", spec);
  reg.Arm("test.b", spec);
  EXPECT_TRUE(reg.Disarm("test.a"));
  EXPECT_FALSE(reg.Disarm("test.a"));
  EXPECT_TRUE(reg.enabled());
  EXPECT_FALSE(FaultShouldFire("test.a"));
  EXPECT_TRUE(FaultShouldFire("test.b"));
  EXPECT_TRUE(reg.Disarm("test.b"));
  EXPECT_FALSE(reg.enabled());
}

TEST_F(FaultInjectionTest, SetSeedResetsCountersAndSchedules) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.trigger = FaultTrigger::kOneShot;
  reg.Arm("test.reseed", spec);
  EXPECT_TRUE(FaultShouldFire("test.reseed"));
  EXPECT_FALSE(FaultShouldFire("test.reseed"));
  reg.SetSeed(5);
  EXPECT_EQ(reg.TotalFires(), 0);
  EXPECT_EQ(reg.StatsFor("test.reseed").evaluations, 0);
  // The one-shot is live again after a reseed.
  EXPECT_TRUE(FaultShouldFire("test.reseed"));
}

}  // namespace
}  // namespace scrpqo

// Flat-program equivalence property: for every plan the optimizer can
// produce — across all four evaluation schemas, randomized templates,
// every physical-operator mask, and randomized re-cost points — the
// compiled RecostProgram must agree with the tree walker
// (CostModel::RecostTree) to 1e-9 relative. The flat path is what every
// cost check and redundancy sweep runs, so any divergence here silently
// breaks the paper's lambda guarantee.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "optimizer/recost.h"
#include "optimizer/recost_program.h"
#include "tests/test_util.h"
#include "workload/instance_gen.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace scrpqo {
namespace {

bool ContainsKind(const PhysicalPlanNode& node, PhysicalOpKind kind) {
  if (node.kind == kind) return true;
  for (const auto& c : node.children) {
    if (c != nullptr && ContainsKind(*c, kind)) return true;
  }
  return false;
}

/// Compares the flat program against the tree walker at `sv`; writes the
/// tree cost to `tree_out` when non-null. Registers a gtest failure on
/// divergence.
void ExpectFlatMatchesTree(const CostModel& model, const CachedPlan& plan,
                           const SVector& sv, const char* what,
                           double* tree_out = nullptr) {
  double tree = model.RecostTree(*plan.plan, sv);
  if (tree_out != nullptr) *tree_out = tree;
  ASSERT_FALSE(plan.program.empty()) << what;
  double flat = plan.program.Run(sv, model.params());
  EXPECT_NEAR(flat, tree, std::abs(tree) * 1e-9)
      << what << "\n"
      << plan.plan->ToString();
}

/// Stats-only universe (no materialized rows — nothing executes here).
struct Universe {
  std::vector<BenchmarkDb> dbs;
  std::vector<BoundTemplate> templates;

  Universe() {
    SchemaScale scale;
    scale.factor = 0.12;
    dbs = BuildAllDatabases(scale);
    TemplateGenOptions topts;
    topts.num_templates = 16;
    topts.max_tables = 4;
    templates = BuildTemplates(dbs, topts);
  }

  static Universe& Get() {
    static Universe* u = new Universe();
    return *u;
  }
};

class RecostProgramPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  const BoundTemplate& Template() {
    return Universe::Get().templates[static_cast<size_t>(GetParam())];
  }
};

TEST_P(RecostProgramPropertyTest, FlatMatchesTreeAcrossMasksAndPoints) {
  const BoundTemplate& bt = Template();
  Pcg32 rng(4242 + static_cast<uint64_t>(GetParam()));
  int d = bt.tmpl->dimensions();
  // Every operator mask, so the sweep compiles HashJoin/MergeJoin/INLJ/
  // NaiveNLJ/IndexSeek/Sort/aggregate shapes, not just the default winner.
  for (int mask = 0; mask < 8; ++mask) {
    OptimizerOptions opts;
    opts.enable_merge_join = mask & 1;
    opts.enable_indexed_nlj = mask & 2;
    opts.enable_index_seek = mask & 4;
    Optimizer optimizer(&bt.db->db, opts);
    InstanceGenOptions gen;
    gen.m = 3;
    gen.seed = 7000 + static_cast<uint64_t>(GetParam() * 8 + mask);
    for (const auto& wi : GenerateInstances(bt, gen)) {
      OptimizationResult r =
          optimizer.OptimizeWithSVector(wi.instance, wi.svector);
      ASSERT_NE(r.plan, nullptr);
      CachedPlan cached = MakeCachedPlan(r);
      // At the optimized point the program must also reproduce the
      // optimizer's own cost (transitively, via the tree invariant).
      double tree = 0.0;
      ExpectFlatMatchesTree(optimizer.cost_model(), cached, wi.svector,
                            "optimized point", &tree);
      EXPECT_NEAR(tree, r.cost, r.cost * 1e-9);
      // Random re-cost points — the case the cache actually exercises.
      for (int k = 0; k < 8; ++k) {
        SVector moved(static_cast<size_t>(d));
        for (int dim = 0; dim < d; ++dim) {
          moved[static_cast<size_t>(dim)] = rng.UniformDouble(0.001, 1.0);
        }
        ExpectFlatMatchesTree(optimizer.cost_model(), cached, moved,
                              "random point");
      }
      // Extreme corners stress the kMinRows clamps and spill thresholds.
      ExpectFlatMatchesTree(optimizer.cost_model(), cached,
                            SVector(static_cast<size_t>(d), 1e-7),
                            "all-tiny corner");
      ExpectFlatMatchesTree(optimizer.cost_model(), cached,
                            SVector(static_cast<size_t>(d), 1.0),
                            "all-one corner");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Templates, RecostProgramPropertyTest,
                         ::testing::Range(0, 16));

class RecostProgramTest : public ::testing::Test {
 protected:
  RecostProgramTest()
      : db_(testing::MakeSmallDatabase(20000, 500)) {}

  Database db_;
};

TEST_F(RecostProgramTest, SingleLeafPlan) {
  // Degenerate one-node program: a single parameterized scan.
  auto tmpl = testing::MakeScanTemplate();
  Optimizer optimizer(&db_);
  QueryInstance q = InstanceForSelectivities(db_, *tmpl, {0.3});
  OptimizationResult r = optimizer.Optimize(q);
  ASSERT_NE(r.plan, nullptr);
  CachedPlan cached = MakeCachedPlan(r);
  ASSERT_FALSE(cached.program.empty());
  EXPECT_EQ(cached.program.num_nodes(), r.plan->NodeCount());
  for (double s : {1e-9, 0.01, 0.3, 0.9999, 1.0}) {
    SVector sv{s};
    double tree = optimizer.cost_model().RecostTree(*r.plan, sv);
    EXPECT_NEAR(cached.program.Run(sv, optimizer.cost_model().params()),
                tree, tree * 1e-9)
        << "s=" << s;
  }
}

TEST_F(RecostProgramTest, InljInnerBindingRebinds) {
  // The INLJ inner leaf never appears as a scanned child (only the outer
  // side is charged), but its parameterized selectivity still scales the
  // join output. Force an INLJ-winning shape — tiny outer, big inner so a
  // hash build is hopeless — and move the inner dimension.
  Database big = testing::MakeSmallDatabase(/*fact_rows=*/2000,
                                            /*dim_rows=*/100000);
  auto tmpl = testing::MakeJoinTemplate();
  OptimizerOptions opts;
  opts.enable_merge_join = false;
  opts.enable_naive_nlj = false;
  Optimizer optimizer(&big, opts);
  OptimizationResult r;
  bool found = false;
  for (double s0 : {0.001, 0.005, 0.02, 0.1}) {
    QueryInstance q = InstanceForSelectivities(big, *tmpl, {s0, 0.4});
    r = optimizer.Optimize(q);
    ASSERT_NE(r.plan, nullptr);
    if (ContainsKind(*r.plan, PhysicalOpKind::kIndexedNestedLoopsJoin)) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no operating point produced an INLJ plan:\n"
                     << r.plan->ToString();
  CachedPlan cached = MakeCachedPlan(r);
  const CostModel& model = optimizer.cost_model();
  double base = cached.program.Run(r.svector, model.params());
  EXPECT_NEAR(base, model.RecostTree(*r.plan, r.svector), base * 1e-9);
  for (double s1 : {0.01, 0.1, 0.4, 0.8, 1.0}) {
    SVector moved = r.svector;
    moved[1] = s1;
    double tree = model.RecostTree(*r.plan, moved);
    EXPECT_NEAR(cached.program.Run(moved, model.params()), tree,
                tree * 1e-9)
        << "s1=" << s1;
  }
}

TEST_F(RecostProgramTest, MemoryBytesIsExactAfterCompile) {
  // Compile shrinks ops_/slots_ to fit, so memory_bytes() must equal the
  // size-based expectation exactly — no growth-policy overshoot inflating
  // PqoManager's global_memory_bytes eviction pressure.
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db_);
  for (double s : {0.01, 0.2, 0.7}) {
    QueryInstance q = InstanceForSelectivities(db_, *tmpl, {s, 0.3});
    OptimizationResult r = optimizer.Optimize(q);
    ASSERT_NE(r.plan, nullptr);
    CachedPlan cached = MakeCachedPlan(r);
    const RecostProgram& p = cached.program;
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.memory_bytes(),
              static_cast<int64_t>(p.num_nodes()) *
                      static_cast<int64_t>(RecostProgram::kOpBytes) +
                  static_cast<int64_t>(p.num_binding_slots()) *
                      static_cast<int64_t>(sizeof(int32_t)))
        << "s=" << s;
  }
}

TEST_F(RecostProgramTest, MaxBindingSlotAndEmpty) {
  RecostProgram fresh;
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(fresh.max_binding_slot(), -1);
  auto tmpl = testing::MakeJoinTemplate();
  Optimizer optimizer(&db_);
  QueryInstance q = InstanceForSelectivities(db_, *tmpl, {0.2, 0.2});
  OptimizationResult r = optimizer.Optimize(q);
  CachedPlan cached = MakeCachedPlan(r);
  EXPECT_EQ(cached.program.max_binding_slot(), 1);
  // A too-short sVector must trip the bounds check, not read garbage.
  EXPECT_DEATH((void)cached.program.Run(SVector{0.5},
                                        optimizer.cost_model().params()),
               "selectivity vector too short");
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include "expr/predicate.h"
#include "expr/value.h"

namespace scrpqo {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  Value d(2.5);
  Value s(std::string("abc"));
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.int64(), 42);
  EXPECT_EQ(d.dbl(), 2.5);
  EXPECT_EQ(s.str(), "abc");
  EXPECT_EQ(i.type(), DataType::kInt64);
  EXPECT_EQ(d.type(), DataType::kDouble);
  EXPECT_EQ(s.type(), DataType::kString);
}

TEST(ValueTest, DefaultIsZeroInt) {
  Value v;
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_TRUE(Value(int64_t{2}) < Value(2.5));
  EXPECT_TRUE(Value(2.5) > Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
}

TEST(ValueTest, Int64ComparisonIsExact) {
  // Values beyond double's 53-bit mantissa must still compare correctly.
  int64_t big = (int64_t{1} << 60) + 1;
  EXPECT_TRUE(Value(big) > Value(big - 1));
  EXPECT_TRUE(Value(big) == Value(big));
}

TEST(ValueTest, StringComparisonLexicographic) {
  EXPECT_TRUE(Value(std::string("apple")) < Value(std::string("banana")));
  EXPECT_TRUE(Value(std::string("b")) > Value(std::string("azzz")));
  EXPECT_TRUE(Value(std::string("x")) == Value(std::string("x")));
}

TEST(ValueTest, AsDoubleOrdersStringPrefixes) {
  EXPECT_LT(Value(std::string("aaa")).AsDouble(),
            Value(std::string("aab")).AsDouble());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "'hi'");
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value(std::string("k")).Hash(), Value(std::string("k")).Hash());
}

TEST(CompareOpTest, Names) {
  EXPECT_EQ(CompareOpName(CompareOp::kLt), "<");
  EXPECT_EQ(CompareOpName(CompareOp::kLe), "<=");
  EXPECT_EQ(CompareOpName(CompareOp::kGt), ">");
  EXPECT_EQ(CompareOpName(CompareOp::kGe), ">=");
  EXPECT_EQ(CompareOpName(CompareOp::kEq), "=");
}

TEST(EvalCompareTest, AllOperators) {
  Value a(int64_t{3}), b(int64_t{5});
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLt, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kGt, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kGe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kEq, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kEq, a));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, a));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kGe, a));
}

TEST(PredicateTemplateTest, ParameterizedFlag) {
  PredicateTemplate p;
  EXPECT_FALSE(p.parameterized());
  p.param_slot = 0;
  EXPECT_TRUE(p.parameterized());
}

TEST(PredicateTemplateTest, ToStringShowsSlotOrLiteral) {
  PredicateTemplate p;
  p.table_index = 1;
  p.column = "price";
  p.op = CompareOp::kLe;
  p.param_slot = 2;
  EXPECT_EQ(p.ToString(), "t1.price <= $2");
  p.param_slot = kNoParamSlot;
  p.literal = Value(int64_t{10});
  EXPECT_EQ(p.ToString(), "t1.price <= 10");
}

TEST(BoundPredicateTest, Matches) {
  BoundPredicate bp;
  bp.column = "x";
  bp.op = CompareOp::kGe;
  bp.value = Value(int64_t{10});
  EXPECT_TRUE(bp.Matches(Value(int64_t{10})));
  EXPECT_TRUE(bp.Matches(Value(int64_t{11})));
  EXPECT_FALSE(bp.Matches(Value(int64_t{9})));
}

}  // namespace
}  // namespace scrpqo

// Appendix G machinery under fire: a cost model configured with a tiny
// memory grant makes sort/hash spills (BCG discontinuities) common, so
// SCR's violation detector must trip, quarantine the offending instances,
// and keep the technique functional.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "pqo/scr.h"
#include "query/query_instance.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

class ViolationInjectionTest : public ::testing::Test {
 protected:
  ViolationInjectionTest()
      : db_(testing::MakeSmallDatabase(60000, 20000)) {
    // A memory grant so small that mid-selectivity scans cross the spill
    // threshold constantly.
    OptimizerOptions opts;
    opts.cost_params.memory_rows = 2000.0;
    opts.cost_params.spill_io_factor = 40.0;
    optimizer_ = std::make_unique<Optimizer>(&db_, opts);
    tmpl_ = testing::MakeJoinTemplate();
  }

  WorkloadInstance MakeWi(int id, double s0, double s1) {
    WorkloadInstance wi;
    wi.id = id;
    wi.instance = InstanceForSelectivities(db_, *tmpl_, {s0, s1});
    wi.svector = ComputeSelectivityVector(db_, wi.instance);
    return wi;
  }

  Database db_;
  std::unique_ptr<Optimizer> optimizer_;
  std::shared_ptr<QueryTemplate> tmpl_;
};

TEST_F(ViolationInjectionTest, DetectorTripsUnderSpillyCostModel) {
  ScrOptions opts;
  opts.lambda = 1.2;
  opts.detect_violations = true;
  Scr scr(opts);
  EngineContext engine(&db_, optimizer_.get());
  Pcg32 rng(3);
  for (int i = 0; i < 400; ++i) {
    scr.OnInstance(MakeWi(i, rng.UniformDouble(0.005, 0.95),
                          rng.UniformDouble(0.005, 0.95)),
                   &engine);
  }
  // With spills this aggressive the cost check must observe at least one
  // BCG break (the probe bench shows ~0.1% even with sane grants).
  EXPECT_GT(scr.violations_detected(), 0);
  // And the technique keeps functioning.
  PlanChoice c = scr.OnInstance(MakeWi(1000, 0.5, 0.5), &engine);
  EXPECT_NE(c.plan, nullptr);
}

TEST_F(ViolationInjectionTest, BoundViolationsStayRareDespiteSpills) {
  // Appendix G quarantines an instance after its first observed violation;
  // it cannot prevent violations by the *optimal* plan at qc (the paper is
  // explicit that those are undetectable without defeating the purpose).
  // The testable property: even under an aggressively spilly cost model,
  // the fraction of bound-violating instances stays small.
  ScrOptions opts;
  opts.lambda = 1.2;
  opts.detect_violations = true;
  Scr scr(opts);
  EngineContext engine(&db_, optimizer_.get());
  Pcg32 rng(5);
  int violations = 0;
  const int m = 300;
  for (int i = 0; i < m; ++i) {
    WorkloadInstance wi = MakeWi(i, rng.UniformDouble(0.005, 0.95),
                                 rng.UniformDouble(0.005, 0.95));
    PlanChoice c = scr.OnInstance(wi, &engine);
    double opt =
        optimizer_->OptimizeWithSVector(wi.instance, wi.svector).cost;
    double so = engine.RecostUncharged(*c.plan, wi.svector) / opt;
    if (so > 1.2 * 1.01) ++violations;
  }
  EXPECT_LT(violations, m / 10);
}

TEST_F(ViolationInjectionTest, DisabledEntriesStillServeSelectivityCheck) {
  // Appendix G removes instances from *cost-check* inference only; exact
  // repeats must still reuse through the selectivity check.
  ScrOptions opts;
  opts.lambda = 1.2;
  Scr scr(opts);
  EngineContext engine(&db_, optimizer_.get());
  WorkloadInstance wi = MakeWi(0, 0.4, 0.4);
  scr.OnInstance(wi, &engine);
  PlanChoice c = scr.OnInstance(MakeWi(1, 0.4, 0.4), &engine);
  EXPECT_FALSE(c.optimized);
  EXPECT_EQ(c.recost_calls_in_get_plan, 0);
}

}  // namespace
}  // namespace scrpqo

#include <gtest/gtest.h>

#include <set>

#include "catalog/catalog.h"
#include "storage/database.h"
#include "storage/table_data.h"
#include "tests/test_util.h"

namespace scrpqo {
namespace {

// gcc's -Wmissing-field-initializers fires on `ColumnDef{.name = ...}`
// even though every other member has a default initializer.
ColumnDef NamedColumn(const std::string& name) {
  ColumnDef c;
  c.name = name;
  return c;
}

TEST(CatalogTest, AddAndFindTable) {
  Catalog cat;
  TableDef def;
  def.name = "t";
  def.row_count = 10;
  def.columns = {NamedColumn("a")};
  ASSERT_TRUE(cat.AddTable(def).ok());
  EXPECT_NE(cat.FindTable("t"), nullptr);
  EXPECT_EQ(cat.FindTable("missing"), nullptr);
  EXPECT_EQ(cat.GetTable("t").row_count, 10);
}

TEST(CatalogTest, RejectsDuplicateTable) {
  Catalog cat;
  TableDef def;
  def.name = "t";
  ASSERT_TRUE(cat.AddTable(def).ok());
  Status st = cat.AddTable(def);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RejectsIndexOnUnknownColumn) {
  Catalog cat;
  TableDef def;
  def.name = "t";
  def.columns = {NamedColumn("a")};
  def.indexes = {IndexDef{"ix", "nope", false}};
  Status st = cat.AddTable(def);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(CatalogTest, ColumnIndexLookup) {
  TableDef def;
  def.columns = {NamedColumn("a"), NamedColumn("b")};
  EXPECT_EQ(def.ColumnIndex("a"), 0);
  EXPECT_EQ(def.ColumnIndex("b"), 1);
  EXPECT_EQ(def.ColumnIndex("c"), -1);
  EXPECT_TRUE(def.HasColumn("b"));
  EXPECT_FALSE(def.HasColumn("c"));
}

TEST(CatalogTest, FindIndexOn) {
  TableDef def;
  def.columns = {NamedColumn("a"), NamedColumn("b")};
  def.indexes = {IndexDef{"ix_a", "a", false}};
  EXPECT_NE(def.FindIndexOn("a"), nullptr);
  EXPECT_EQ(def.FindIndexOn("b"), nullptr);
}

TEST(CatalogTest, ColumnStatsRegistry) {
  Catalog cat;
  ColumnStats stats;
  stats.row_count = 5;
  cat.SetColumnStats("t", "a", stats);
  ASSERT_NE(cat.FindColumnStats("t", "a"), nullptr);
  EXPECT_EQ(cat.GetColumnStats("t", "a").row_count, 5);
  EXPECT_EQ(cat.FindColumnStats("t", "b"), nullptr);
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  Database a = testing::MakeSmallDatabase(500, 50, 99);
  Database b = testing::MakeSmallDatabase(500, 50, 99);
  const ColumnData& ca = a.GetTableData("fact").column("f_value");
  const ColumnData& cb = b.GetTableData("fact").column("f_value");
  ASSERT_EQ(ca.size(), cb.size());
  for (int64_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca.GetDouble(i), cb.GetDouble(i));
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentData) {
  Database a = testing::MakeSmallDatabase(500, 50, 1);
  Database b = testing::MakeSmallDatabase(500, 50, 2);
  const ColumnData& ca = a.GetTableData("fact").column("f_value");
  const ColumnData& cb = b.GetTableData("fact").column("f_value");
  int diff = 0;
  for (int64_t i = 0; i < ca.size(); ++i) {
    if (ca.GetDouble(i) != cb.GetDouble(i)) ++diff;
  }
  EXPECT_GT(diff, 400);
}

TEST(GeneratorTest, RowCountsMatchDefinitions) {
  Database db = testing::MakeSmallDatabase(1234, 77);
  EXPECT_EQ(db.GetTableData("fact").row_count(), 1234);
  EXPECT_EQ(db.GetTableData("dim").row_count(), 77);
}

TEST(GeneratorTest, SequentialColumnIsIdentity) {
  Database db = testing::MakeSmallDatabase(100, 50);
  const ColumnData& pk = db.GetTableData("dim").column("d_key");
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(pk.GetValue(i).int64(), i);
  }
}

TEST(GeneratorTest, ForeignKeysReferenceParentDomain) {
  Database db = testing::MakeSmallDatabase(1000, 40);
  const ColumnData& fk = db.GetTableData("fact").column("f_dim");
  for (int64_t i = 0; i < fk.size(); ++i) {
    int64_t v = fk.GetValue(i).int64();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 40);
  }
}

TEST(GeneratorTest, StatsMatchGeneratedData) {
  Database db = testing::MakeSmallDatabase(2000, 100);
  const ColumnStats& stats = db.catalog().GetColumnStats("fact", "f_value");
  EXPECT_EQ(stats.row_count, 2000);
  const ColumnData& col = db.GetTableData("fact").column("f_value");
  // Brute-force check one selectivity point.
  double c = 5000.0;
  int64_t matches = 0;
  for (int64_t i = 0; i < col.size(); ++i) {
    if (col.GetDouble(i) <= c) ++matches;
  }
  double truth = static_cast<double>(matches) / 2000.0;
  EXPECT_NEAR(stats.Selectivity(CompareOp::kLe, Value(c)), truth, 0.03);
}

TEST(GeneratorTest, StatsOnlyModeSkipsRows) {
  std::vector<TableDef> defs;
  TableDef t;
  t.name = "x";
  t.row_count = 100;
  t.columns = {NamedColumn("a")};
  defs.push_back(t);
  GeneratorOptions opts;
  opts.materialize_rows = false;
  Database db = GenerateDatabase(defs, opts);
  EXPECT_FALSE(db.HasTableData("x"));
  // Statistics are still available.
  EXPECT_EQ(db.catalog().GetColumnStats("x", "a").row_count, 100);
}

TEST(GeneratorTest, ZipfColumnIsSkewed) {
  Database db = testing::MakeSmallDatabase(5000, 50);
  const ColumnStats& stats = db.catalog().GetColumnStats("fact", "f_weight");
  // Zipf(theta=1) over [0,1000]: the bottom 5% of the domain holds far more
  // than 5% of rows.
  EXPECT_GT(stats.Selectivity(CompareOp::kLe, Value(50.0)), 0.3);
}

TEST(ColumnDataTest, TypedAppendAndRead) {
  ColumnData c(DataType::kString);
  c.AppendString("q");
  c.AppendString("r");
  EXPECT_EQ(c.size(), 2);
  EXPECT_EQ(c.GetValue(1).str(), "r");
}

TEST(SortedIndexTest, RangeLookupOperators) {
  ColumnData c(DataType::kInt64);
  for (int64_t v : {5, 1, 9, 3, 7, 3}) c.AppendInt64(v);
  SortedIndex idx = SortedIndex::Build(c);
  EXPECT_EQ(idx.size(), 6);

  auto le3 = idx.RangeLookup(CompareOp::kLe, 3.0);
  EXPECT_EQ(le3.size(), 3u);  // 1, 3, 3
  auto lt3 = idx.RangeLookup(CompareOp::kLt, 3.0);
  EXPECT_EQ(lt3.size(), 1u);
  auto ge7 = idx.RangeLookup(CompareOp::kGe, 7.0);
  EXPECT_EQ(ge7.size(), 2u);  // 7, 9
  auto eq3 = idx.RangeLookup(CompareOp::kEq, 3.0);
  EXPECT_EQ(eq3.size(), 2u);
  auto eq4 = idx.RangeLookup(CompareOp::kEq, 4.0);
  EXPECT_TRUE(eq4.empty());
}

TEST(SortedIndexTest, ReturnsRowsInKeyOrder) {
  ColumnData c(DataType::kInt64);
  for (int64_t v : {50, 10, 90, 30, 70}) c.AppendInt64(v);
  SortedIndex idx = SortedIndex::Build(c);
  auto all = idx.RangeLookup(CompareOp::kGe, -1.0);
  ASSERT_EQ(all.size(), 5u);
  double prev = -1.0;
  for (int64_t row : all) {
    double v = c.GetDouble(row);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(TableDataTest, IndexRegistry) {
  Database db = testing::MakeSmallDatabase(200, 20);
  const TableData& fact = db.GetTableData("fact");
  EXPECT_NE(fact.FindIndex("f_dim"), nullptr);
  EXPECT_NE(fact.FindIndex("f_value"), nullptr);
  EXPECT_EQ(fact.FindIndex("f_weight"), nullptr);
}

}  // namespace
}  // namespace scrpqo

#include "executor/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/status.h"

namespace scrpqo {

namespace {

/// Shared per-execution state.
struct ExecContext {
  const Database* db = nullptr;
  const QueryInstance* instance = nullptr;
  int num_tables = 0;

  const TableData& Data(int table_index) const {
    const QueryTemplate& tmpl = instance->query_template();
    return db->GetTableData(
        tmpl.tables()[static_cast<size_t>(table_index)]);
  }
};

/// A leaf predicate compiled for execution: numeric comparison against the
/// column's double view.
struct CompiledPred {
  const ColumnData* column = nullptr;
  CompareOp op = CompareOp::kLe;
  double value = 0.0;

  bool Matches(int64_t row) const {
    double v = column->GetDouble(row);
    switch (op) {
      case CompareOp::kLt:
        return v < value;
      case CompareOp::kLe:
        return v <= value;
      case CompareOp::kGt:
        return v > value;
      case CompareOp::kGe:
        return v >= value;
      case CompareOp::kEq:
        return v == value;
    }
    return false;
  }
};

std::vector<CompiledPred> CompilePreds(const ExecContext& ctx,
                                       const LeafInfo& leaf,
                                       int skip_pred = -1) {
  std::vector<CompiledPred> out;
  const TableData& data = ctx.Data(leaf.table_index);
  for (size_t i = 0; i < leaf.preds.size(); ++i) {
    if (static_cast<int>(i) == skip_pred) continue;
    const PredSpec& p = leaf.preds[i];
    CompiledPred cp;
    cp.column = &data.column(p.column);
    cp.op = p.op;
    const Value& v =
        p.parameterized() ? ctx.instance->param(p.param_slot) : p.literal;
    cp.value = v.AsDouble();
    out.push_back(cp);
  }
  return out;
}

bool MatchesAll(const std::vector<CompiledPred>& preds, int64_t row) {
  for (const auto& p : preds) {
    if (!p.Matches(row)) return false;
  }
  return true;
}

ExecRow MakeRow(int num_tables) {
  ExecRow r;
  r.ids.assign(static_cast<size_t>(num_tables), -1);
  return r;
}

class TableScanIterator : public RowIterator {
 public:
  TableScanIterator(const ExecContext& ctx, const LeafInfo& leaf)
      : ctx_(ctx), leaf_(leaf) {}

  void Open() override {
    preds_ = CompilePreds(ctx_, leaf_);
    row_count_ = ctx_.Data(leaf_.table_index).row_count();
    next_ = 0;
  }

  bool Next(ExecRow* row) override {
    while (next_ < row_count_) {
      int64_t r = next_++;
      if (MatchesAll(preds_, r)) {
        *row = MakeRow(ctx_.num_tables);
        row->ids[static_cast<size_t>(leaf_.table_index)] = r;
        return true;
      }
    }
    return false;
  }

 private:
  const ExecContext& ctx_;
  const LeafInfo& leaf_;
  std::vector<CompiledPred> preds_;
  int64_t row_count_ = 0;
  int64_t next_ = 0;
};

/// IndexSeek and IndexScanOrdered: range lookup (or full ordered walk) over
/// the sorted index, residual predicates applied on fetch.
class IndexAccessIterator : public RowIterator {
 public:
  IndexAccessIterator(const ExecContext& ctx, const LeafInfo& leaf)
      : ctx_(ctx), leaf_(leaf) {}

  void Open() override {
    const TableData& data = ctx_.Data(leaf_.table_index);
    const SortedIndex* index = data.FindIndex(leaf_.index_column);
    SCRPQO_CHECK(index != nullptr, "plan references a missing index");
    if (leaf_.seek_pred >= 0) {
      const PredSpec& p = leaf_.preds[static_cast<size_t>(leaf_.seek_pred)];
      const Value& v =
          p.parameterized() ? ctx_.instance->param(p.param_slot) : p.literal;
      matches_ = index->RangeLookup(p.op, v.AsDouble());
    } else {
      // Full ordered walk.
      matches_ = index->RangeLookup(
          CompareOp::kGe, -std::numeric_limits<double>::infinity());
    }
    preds_ = CompilePreds(ctx_, leaf_, leaf_.seek_pred);
    next_ = 0;
  }

  bool Next(ExecRow* row) override {
    while (next_ < matches_.size()) {
      int64_t r = matches_[next_++];
      if (MatchesAll(preds_, r)) {
        *row = MakeRow(ctx_.num_tables);
        row->ids[static_cast<size_t>(leaf_.table_index)] = r;
        return true;
      }
    }
    return false;
  }

 private:
  const ExecContext& ctx_;
  const LeafInfo& leaf_;
  std::vector<CompiledPred> preds_;
  std::vector<int64_t> matches_;
  size_t next_ = 0;
};

double KeyOf(const ExecContext& ctx, const ExecRow& row, int table,
             const std::string& column) {
  int64_t id = row.ids[static_cast<size_t>(table)];
  SCRPQO_CHECK(id >= 0, "join key table missing from row");
  return ctx.Data(table).column(column).GetDouble(id);
}

ExecRow MergeRows(const ExecRow& a, const ExecRow& b) {
  ExecRow out = a;
  for (size_t i = 0; i < out.ids.size(); ++i) {
    if (out.ids[i] < 0) out.ids[i] = b.ids[i];
  }
  return out;
}

/// Checks all join edges (beyond any already enforced by the access method).
bool EdgesMatch(const ExecContext& ctx, const std::vector<JoinEdge>& edges,
                size_t first, const ExecRow& row) {
  for (size_t i = first; i < edges.size(); ++i) {
    const JoinEdge& e = edges[i];
    if (KeyOf(ctx, row, e.left_table, e.left_column) !=
        KeyOf(ctx, row, e.right_table, e.right_column)) {
      return false;
    }
  }
  return true;
}

class SortIterator : public RowIterator {
 public:
  SortIterator(const ExecContext& ctx, const SortKey& key,
               std::unique_ptr<RowIterator> child)
      : ctx_(ctx), key_(key), child_(std::move(child)) {}

  void Open() override {
    child_->Open();
    rows_.clear();
    ExecRow r;
    while (child_->Next(&r)) rows_.push_back(r);
    const ColumnData& col = ctx_.Data(key_.table).column(key_.column);
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const ExecRow& a, const ExecRow& b) {
                       int64_t ia = a.ids[static_cast<size_t>(key_.table)];
                       int64_t ib = b.ids[static_cast<size_t>(key_.table)];
                       SCRPQO_CHECK(ia >= 0 && ib >= 0,
                                    "sort key table missing from row");
                       return col.GetDouble(ia) < col.GetDouble(ib);
                     });
    next_ = 0;
  }

  bool Next(ExecRow* row) override {
    if (next_ >= rows_.size()) return false;
    *row = rows_[next_++];
    return true;
  }

 private:
  const ExecContext& ctx_;
  SortKey key_;
  std::unique_ptr<RowIterator> child_;
  std::vector<ExecRow> rows_;
  size_t next_ = 0;
};

class HashJoinIterator : public RowIterator {
 public:
  HashJoinIterator(const ExecContext& ctx, const JoinInfo& join,
                   std::unique_ptr<RowIterator> probe,
                   std::unique_ptr<RowIterator> build)
      : ctx_(ctx),
        join_(join),
        probe_(std::move(probe)),
        build_(std::move(build)) {}

  void Open() override {
    build_->Open();
    probe_->Open();
    table_.clear();
    ExecRow r;
    while (build_->Next(&r)) {
      double key = KeyOf(ctx_, r, join_.edges[0].right_table,
                         join_.edges[0].right_column);
      table_[key].push_back(r);
    }
    pending_.clear();
    pending_pos_ = 0;
  }

  bool Next(ExecRow* row) override {
    for (;;) {
      if (pending_pos_ < pending_.size()) {
        *row = pending_[pending_pos_++];
        return true;
      }
      ExecRow probe_row;
      if (!probe_->Next(&probe_row)) return false;
      pending_.clear();
      pending_pos_ = 0;
      double key = KeyOf(ctx_, probe_row, join_.edges[0].left_table,
                         join_.edges[0].left_column);
      auto it = table_.find(key);
      if (it == table_.end()) continue;
      for (const ExecRow& b : it->second) {
        ExecRow merged = MergeRows(probe_row, b);
        if (EdgesMatch(ctx_, join_.edges, 1, merged)) {
          pending_.push_back(std::move(merged));
        }
      }
    }
  }

 private:
  const ExecContext& ctx_;
  const JoinInfo& join_;
  std::unique_ptr<RowIterator> probe_;
  std::unique_ptr<RowIterator> build_;
  std::unordered_map<double, std::vector<ExecRow>> table_;
  std::vector<ExecRow> pending_;
  size_t pending_pos_ = 0;
};

/// Merge join over sorted inputs; handles duplicate-key runs on both sides.
class MergeJoinIterator : public RowIterator {
 public:
  MergeJoinIterator(const ExecContext& ctx, const JoinInfo& join,
                    std::unique_ptr<RowIterator> left,
                    std::unique_ptr<RowIterator> right)
      : ctx_(ctx),
        join_(join),
        left_(std::move(left)),
        right_(std::move(right)) {}

  void Open() override {
    left_->Open();
    right_->Open();
    // Materialize both sides; inputs are already sorted by the merge key.
    lrows_.clear();
    rrows_.clear();
    ExecRow r;
    while (left_->Next(&r)) lrows_.push_back(r);
    while (right_->Next(&r)) rrows_.push_back(r);
    li_ = rj_ = 0;
    pending_.clear();
    pending_pos_ = 0;
  }

  bool Next(ExecRow* row) override {
    const JoinEdge& e = join_.edges[0];
    for (;;) {
      if (pending_pos_ < pending_.size()) {
        *row = pending_[pending_pos_++];
        return true;
      }
      if (li_ >= lrows_.size() || rj_ >= rrows_.size()) return false;
      double lk = KeyOf(ctx_, lrows_[li_], e.left_table, e.left_column);
      double rk = KeyOf(ctx_, rrows_[rj_], e.right_table, e.right_column);
      if (lk < rk) {
        ++li_;
        continue;
      }
      if (rk < lk) {
        ++rj_;
        continue;
      }
      // Equal-key runs on both sides: cross product of the runs.
      size_t le = li_;
      while (le < lrows_.size() &&
             KeyOf(ctx_, lrows_[le], e.left_table, e.left_column) == lk) {
        ++le;
      }
      size_t re = rj_;
      while (re < rrows_.size() &&
             KeyOf(ctx_, rrows_[re], e.right_table, e.right_column) == rk) {
        ++re;
      }
      pending_.clear();
      pending_pos_ = 0;
      for (size_t i = li_; i < le; ++i) {
        for (size_t j = rj_; j < re; ++j) {
          ExecRow merged = MergeRows(lrows_[i], rrows_[j]);
          if (EdgesMatch(ctx_, join_.edges, 1, merged)) {
            pending_.push_back(std::move(merged));
          }
        }
      }
      li_ = le;
      rj_ = re;
    }
  }

 private:
  const ExecContext& ctx_;
  const JoinInfo& join_;
  std::unique_ptr<RowIterator> left_;
  std::unique_ptr<RowIterator> right_;
  std::vector<ExecRow> lrows_, rrows_;
  size_t li_ = 0, rj_ = 0;
  std::vector<ExecRow> pending_;
  size_t pending_pos_ = 0;
};

/// Indexed nested loops: per outer row, equality seek into the inner index,
/// then inner residual predicates and residual edges.
class IndexedNljIterator : public RowIterator {
 public:
  IndexedNljIterator(const ExecContext& ctx, const JoinInfo& join,
                     const LeafInfo& inner,
                     std::unique_ptr<RowIterator> outer)
      : ctx_(ctx), join_(join), inner_(inner), outer_(std::move(outer)) {}

  void Open() override {
    outer_->Open();
    const TableData& data = ctx_.Data(inner_.table_index);
    index_ = data.FindIndex(inner_.index_column);
    SCRPQO_CHECK(index_ != nullptr, "plan references a missing index");
    inner_preds_ = CompilePreds(ctx_, inner_);
    pending_.clear();
    pending_pos_ = 0;
  }

  bool Next(ExecRow* row) override {
    const JoinEdge& e = join_.edges[0];
    for (;;) {
      if (pending_pos_ < pending_.size()) {
        *row = pending_[pending_pos_++];
        return true;
      }
      ExecRow outer_row;
      if (!outer_->Next(&outer_row)) return false;
      double key = KeyOf(ctx_, outer_row, e.left_table, e.left_column);
      pending_.clear();
      pending_pos_ = 0;
      for (int64_t r : index_->RangeLookup(CompareOp::kEq, key)) {
        if (!MatchesAll(inner_preds_, r)) continue;
        ExecRow merged = outer_row;
        merged.ids[static_cast<size_t>(inner_.table_index)] = r;
        if (EdgesMatch(ctx_, join_.edges, 1, merged)) {
          pending_.push_back(std::move(merged));
        }
      }
    }
  }

 private:
  const ExecContext& ctx_;
  const JoinInfo& join_;
  const LeafInfo& inner_;
  std::unique_ptr<RowIterator> outer_;
  const SortedIndex* index_ = nullptr;
  std::vector<CompiledPred> inner_preds_;
  std::vector<ExecRow> pending_;
  size_t pending_pos_ = 0;
};

/// Naive nested loops: inner side spooled once, rescanned per outer row.
class NaiveNljIterator : public RowIterator {
 public:
  NaiveNljIterator(const ExecContext& ctx, const JoinInfo& join,
                   std::unique_ptr<RowIterator> outer,
                   std::unique_ptr<RowIterator> inner)
      : ctx_(ctx),
        join_(join),
        outer_(std::move(outer)),
        inner_(std::move(inner)) {}

  void Open() override {
    outer_->Open();
    inner_->Open();
    spool_.clear();
    ExecRow r;
    while (inner_->Next(&r)) spool_.push_back(r);
    have_outer_ = false;
    spool_pos_ = 0;
  }

  bool Next(ExecRow* row) override {
    for (;;) {
      if (!have_outer_) {
        if (!outer_->Next(&outer_row_)) return false;
        have_outer_ = true;
        spool_pos_ = 0;
      }
      while (spool_pos_ < spool_.size()) {
        ExecRow merged = MergeRows(outer_row_, spool_[spool_pos_++]);
        if (EdgesMatch(ctx_, join_.edges, 0, merged)) {
          *row = merged;
          return true;
        }
      }
      have_outer_ = false;
    }
  }

 private:
  const ExecContext& ctx_;
  const JoinInfo& join_;
  std::unique_ptr<RowIterator> outer_;
  std::unique_ptr<RowIterator> inner_;
  std::vector<ExecRow> spool_;
  ExecRow outer_row_;
  bool have_outer_ = false;
  size_t spool_pos_ = 0;
};

/// Hash aggregation: emits one representative row per distinct group key.
class HashAggIterator : public RowIterator {
 public:
  HashAggIterator(const ExecContext& ctx, const AggInfo& agg,
                  std::unique_ptr<RowIterator> child)
      : ctx_(ctx), agg_(agg), child_(std::move(child)) {}

  void Open() override {
    child_->Open();
    groups_.clear();
    ExecRow r;
    while (child_->Next(&r)) {
      double key = KeyOf(ctx_, r, agg_.group_table, agg_.group_column);
      auto [it, inserted] = groups_.try_emplace(key, r);
      (void)it;
      (void)inserted;
    }
    it_ = groups_.begin();
  }

  bool Next(ExecRow* row) override {
    if (it_ == groups_.end()) return false;
    *row = it_->second;
    ++it_;
    return true;
  }

 private:
  const ExecContext& ctx_;
  const AggInfo& agg_;
  std::unique_ptr<RowIterator> child_;
  std::unordered_map<double, ExecRow> groups_;
  std::unordered_map<double, ExecRow>::iterator it_;
};

/// Stream aggregation over a sorted child: group boundaries by key change.
class StreamAggIterator : public RowIterator {
 public:
  StreamAggIterator(const ExecContext& ctx, const AggInfo& agg,
                    std::unique_ptr<RowIterator> child)
      : ctx_(ctx), agg_(agg), child_(std::move(child)) {}

  void Open() override {
    child_->Open();
    have_pending_ = child_->Next(&pending_);
  }

  bool Next(ExecRow* row) override {
    if (!have_pending_) return false;
    *row = pending_;
    double key = KeyOf(ctx_, pending_, agg_.group_table, agg_.group_column);
    // Skip the rest of the run.
    while ((have_pending_ = child_->Next(&pending_))) {
      if (KeyOf(ctx_, pending_, agg_.group_table, agg_.group_column) != key) {
        break;
      }
    }
    return true;
  }

 private:
  const ExecContext& ctx_;
  const AggInfo& agg_;
  std::unique_ptr<RowIterator> child_;
  ExecRow pending_;
  bool have_pending_ = false;
};

std::unique_ptr<RowIterator> Build(const ExecContext& ctx,
                                   const PhysicalPlanNode& plan) {
  switch (plan.kind) {
    case PhysicalOpKind::kTableScan:
      return std::make_unique<TableScanIterator>(ctx, plan.leaf);
    case PhysicalOpKind::kIndexSeek:
    case PhysicalOpKind::kIndexScanOrdered:
      return std::make_unique<IndexAccessIterator>(ctx, plan.leaf);
    case PhysicalOpKind::kSort:
      return std::make_unique<SortIterator>(ctx, plan.sort_key,
                                            Build(ctx, *plan.children[0]));
    case PhysicalOpKind::kHashJoin:
      return std::make_unique<HashJoinIterator>(
          ctx, plan.join, Build(ctx, *plan.children[0]),
          Build(ctx, *plan.children[1]));
    case PhysicalOpKind::kMergeJoin:
      return std::make_unique<MergeJoinIterator>(
          ctx, plan.join, Build(ctx, *plan.children[0]),
          Build(ctx, *plan.children[1]));
    case PhysicalOpKind::kIndexedNestedLoopsJoin:
      return std::make_unique<IndexedNljIterator>(
          ctx, plan.join, plan.children[1]->leaf,
          Build(ctx, *plan.children[0]));
    case PhysicalOpKind::kNaiveNestedLoopsJoin:
      return std::make_unique<NaiveNljIterator>(
          ctx, plan.join, Build(ctx, *plan.children[0]),
          Build(ctx, *plan.children[1]));
    case PhysicalOpKind::kHashAggregate:
      return std::make_unique<HashAggIterator>(ctx, plan.agg,
                                               Build(ctx, *plan.children[0]));
    case PhysicalOpKind::kStreamAggregate:
      return std::make_unique<StreamAggIterator>(
          ctx, plan.agg, Build(ctx, *plan.children[0]));
  }
  SCRPQO_CHECK(false, "unknown physical operator");
  return nullptr;
}

}  // namespace

std::unique_ptr<RowIterator> BuildIterator(const Database& db,
                                           const QueryInstance& instance,
                                           const PhysicalPlanNode& plan) {
  // The context must outlive the iterators; wrap both in a holder.
  class Holder : public RowIterator {
   public:
    Holder(const Database& db, const QueryInstance& instance,
           const PhysicalPlanNode& plan) {
      ctx_.db = &db;
      ctx_.instance = &instance;
      ctx_.num_tables = instance.query_template().num_tables();
      root_ = Build(ctx_, plan);
    }
    void Open() override { root_->Open(); }
    bool Next(ExecRow* row) override { return root_->Next(row); }

   private:
    ExecContext ctx_;
    std::unique_ptr<RowIterator> root_;
  };
  return std::make_unique<Holder>(db, instance, plan);
}

ExecutionResult ExecutePlan(const Database& db, const QueryInstance& instance,
                            const PhysicalPlanNode& plan) {
  auto start = std::chrono::steady_clock::now();
  auto it = BuildIterator(db, instance, plan);
  it->Open();
  ExecutionResult result;
  ExecRow row;
  while (it->Next(&row)) {
    ++result.rows;
    uint64_t h = 1469598103934665603ULL;
    for (int64_t id : row.ids) {
      h ^= static_cast<uint64_t>(id + 1);
      h *= 1099511628211ULL;
    }
    result.checksum += h;
  }
  auto end = std::chrono::steady_clock::now();
  result.elapsed_seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace scrpqo

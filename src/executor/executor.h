// Volcano-style execution engine.
//
// Executes a physical plan against in-memory table data for a specific
// query instance. Rows flowing between operators are tuples of base-table
// row ids (one slot per template table), so joins and filters fetch column
// values lazily from columnar storage. Parameter slots are bound at
// execution time from the instance, which is what lets a cached plan be
// executed for instances other than the one it was optimized for.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "optimizer/physical_plan.h"
#include "query/query_instance.h"
#include "storage/database.h"

namespace scrpqo {

/// A row in flight: row id per template table (-1 when the table is not in
/// the subtree). Aggregate outputs reuse the representation with one
/// representative row per group.
struct ExecRow {
  std::vector<int64_t> ids;
};

struct ExecutionResult {
  int64_t rows = 0;
  /// Order-independent checksum of output row ids, for result-equivalence
  /// tests across physical alternatives.
  uint64_t checksum = 0;
  double elapsed_seconds = 0.0;
};

/// \brief Pull-based operator interface.
class RowIterator {
 public:
  virtual ~RowIterator() = default;
  virtual void Open() = 0;
  /// Produces the next row; returns false at end of stream.
  virtual bool Next(ExecRow* row) = 0;
};

/// Builds the iterator tree for `plan` bound to `instance`.
std::unique_ptr<RowIterator> BuildIterator(const Database& db,
                                           const QueryInstance& instance,
                                           const PhysicalPlanNode& plan);

/// Runs the plan to completion and reports row count / checksum / wall time.
ExecutionResult ExecutePlan(const Database& db, const QueryInstance& instance,
                            const PhysicalPlanNode& plan);

}  // namespace scrpqo

// Plan serialization: a compact, human-readable round-trippable encoding of
// PhysicalPlanNode trees.
//
// Two uses:
//  * persisting a PQO plan cache across process restarts (plans are
//    instance-independent, so a reloaded cache is immediately usable), and
//  * the paper's Appendix B observation that Recost implementations can
//    trade memory for time: storing serialized plans instead of live trees
//    shrinks the cache at the cost of a deserialization step per Recost
//    call (measured in bench_micro_recost_serde).
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "optimizer/physical_plan.h"

namespace scrpqo {

/// Serializes the plan tree. The encoding is line-free (single string of
/// parenthesized tokens), stable across versions of this library, and
/// contains everything DeserializePlan needs — including derivation
/// metadata, so a deserialized plan re-costs and executes identically.
std::string SerializePlan(const PhysicalPlanNode& plan);

/// Parses a serialized plan. Fails with InvalidArgument on malformed input.
Result<PlanPtr> DeserializePlan(const std::string& data);

}  // namespace scrpqo

#include "optimizer/optimizer.h"

#include "obs/span.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace scrpqo {

namespace {

using TableSet = uint32_t;

inline bool IsSingleton(TableSet s) { return s != 0 && (s & (s - 1)) == 0; }
inline int SingletonIndex(TableSet s) {
  int i = 0;
  while ((s & 1u) == 0) {
    s >>= 1;
    ++i;
  }
  return i;
}

/// Per-optimization search context: one per Optimize call, holding the memo.
class SearchContext {
 public:
  SearchContext(const Database& db, const OptimizerOptions& options,
                const CostModel& cost_model, const QueryInstance& instance,
                const SVector& sv)
      : db_(db),
        options_(options),
        cost_model_(cost_model),
        tmpl_(instance.query_template()),
        instance_(instance),
        sv_(sv) {
    BuildLeafInfos();
    BuildEdges();
  }

  OptimizationResult Run() {
    int n = tmpl_.num_tables();
    TableSet full = static_cast<TableSet>((1u << n) - 1);
    const Winner& w = BestPlan(full, std::nullopt);
    SCRPQO_CHECK(w.plan != nullptr, "optimizer failed to find a plan");

    PlanPtr root = w.plan;
    double cost = w.cost;
    if (tmpl_.aggregate().enabled) {
      auto agg = BuildAggregate(full);
      root = agg.plan;
      cost = agg.cost;
    }

    OptimizationResult result;
    result.plan = root;
    result.cost = cost;
    result.svector = sv_;
    result.stats = stats_;
    result.stats.num_groups = static_cast<int>(groups_.size());
    result.stats.plan_nodes = root->NodeCount();
    return result;
  }

 private:
  struct Winner {
    PlanPtr plan;
    double cost = std::numeric_limits<double>::infinity();
  };

  using PropKey = std::optional<SortKey>;

  struct Group {
    double card = 0.0;
    bool card_done = false;
    std::map<PropKey, Winner> winners;
  };

  void BuildLeafInfos() {
    int n = tmpl_.num_tables();
    leaf_infos_.resize(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t) {
      LeafInfo& li = leaf_infos_[static_cast<size_t>(t)];
      li.table_index = t;
      li.table = tmpl_.tables()[static_cast<size_t>(t)];
      const TableDef& def = db_.catalog().GetTable(li.table);
      li.base_rows = static_cast<double>(def.row_count);
      for (int pi : tmpl_.PredicatesOnTable(t)) {
        const PredicateTemplate& p =
            tmpl_.predicates()[static_cast<size_t>(pi)];
        PredSpec spec;
        spec.column = p.column;
        spec.op = p.op;
        spec.param_slot = p.param_slot;
        if (!p.parameterized()) {
          spec.literal = p.literal;
          const ColumnStats& stats =
              db_.catalog().GetColumnStats(li.table, p.column);
          spec.literal_sel = stats.Selectivity(p.op, p.literal);
        }
        li.preds.push_back(std::move(spec));
      }
    }
  }

  void BuildEdges() {
    for (const auto& e : tmpl_.joins()) {
      EdgeInfo info;
      info.edge = e;
      const std::string& lt =
          tmpl_.tables()[static_cast<size_t>(e.left_table)];
      const std::string& rt =
          tmpl_.tables()[static_cast<size_t>(e.right_table)];
      double dl = static_cast<double>(std::max<int64_t>(
          db_.catalog().GetColumnStats(lt, e.left_column).distinct_count, 1));
      double dr = static_cast<double>(std::max<int64_t>(
          db_.catalog().GetColumnStats(rt, e.right_column).distinct_count,
          1));
      info.sel = 1.0 / std::max(dl, dr);
      info.left_distinct = dl;
      info.right_distinct = dr;
      edges_.push_back(info);
    }
  }

  double GroupCard(TableSet s) {
    Group& g = groups_[s];
    if (g.card_done) return g.card;
    double card = 1.0;
    for (int t = 0; t < tmpl_.num_tables(); ++t) {
      if ((s >> t) & 1u) {
        const LeafInfo& li = leaf_infos_[static_cast<size_t>(t)];
        card *= li.base_rows * cost_model_.LeafSelectivity(li, sv_);
      }
    }
    for (const auto& e : edges_) {
      if (EdgeInside(e, s)) card *= e.sel;
    }
    g.card = card;
    g.card_done = true;
    return card;
  }

  struct EdgeInfo {
    JoinEdge edge;
    double sel = 1.0;
    double left_distinct = 1.0;
    double right_distinct = 1.0;
  };

  static bool EdgeInside(const EdgeInfo& e, TableSet s) {
    return ((s >> e.edge.left_table) & 1u) && ((s >> e.edge.right_table) & 1u);
  }

  /// Edges with one endpoint in `a` and the other in `b`, normalized so the
  /// left side of the returned edge is in `a`.
  std::vector<EdgeInfo> ConnectingEdges(TableSet a, TableSet b) const {
    std::vector<EdgeInfo> out;
    for (const auto& e : edges_) {
      bool l_in_a = (a >> e.edge.left_table) & 1u;
      bool r_in_a = (a >> e.edge.right_table) & 1u;
      bool l_in_b = (b >> e.edge.left_table) & 1u;
      bool r_in_b = (b >> e.edge.right_table) & 1u;
      if (l_in_a && r_in_b) {
        out.push_back(e);
      } else if (r_in_a && l_in_b) {
        EdgeInfo flipped = e;
        std::swap(flipped.edge.left_table, flipped.edge.right_table);
        std::swap(flipped.edge.left_column, flipped.edge.right_column);
        std::swap(flipped.left_distinct, flipped.right_distinct);
        out.push_back(flipped);
      }
    }
    return out;
  }

  bool IsConnected(TableSet s) const {
    if (s == 0) return false;
    TableSet reached = s & static_cast<TableSet>(-static_cast<int32_t>(s));
    // BFS over join edges restricted to s.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& e : edges_) {
        TableSet l = 1u << e.edge.left_table;
        TableSet r = 1u << e.edge.right_table;
        if ((l & s) && (r & s)) {
          if ((reached & l) && !(reached & r)) {
            reached |= r;
            changed = true;
          } else if ((reached & r) && !(reached & l)) {
            reached |= l;
            changed = true;
          }
        }
      }
    }
    return reached == s;
  }

  /// Whether `order` (if set) is satisfied by a plan whose output order is
  /// `actual`.
  static bool Satisfies(const std::optional<SortKey>& actual,
                        const PropKey& required) {
    if (!required.has_value()) return true;
    return actual.has_value() && *actual == *required;
  }

  std::shared_ptr<PhysicalPlanNode> MakeNode(PhysicalOpKind kind) {
    auto node = std::make_shared<PhysicalPlanNode>();
    node->kind = kind;
    return node;
  }

  /// Derives costs for the candidate and keeps it if it beats the incumbent
  /// for `req` (adding a Sort enforcer when the natural order is wrong).
  void Offer(Group* group, const PropKey& req,
             std::shared_ptr<PhysicalPlanNode> node) {
    ++stats_.num_physical_exprs;
    cost_model_.DeriveNode(node.get(), sv_);
    std::shared_ptr<PhysicalPlanNode> candidate = node;
    if (!Satisfies(node->output_order, req)) {
      auto sort = MakeNode(PhysicalOpKind::kSort);
      sort->sort_key = *req;
      sort->output_order = *req;
      sort->children.push_back(node);
      cost_model_.DeriveNode(sort.get(), sv_);
      candidate = sort;
      ++stats_.num_physical_exprs;
    }
    Winner& w = group->winners[req];
    if (candidate->est_cost < w.cost) {
      w.cost = candidate->est_cost;
      w.plan = candidate;
    }
  }

  /// The set of sort keys that can matter for `s`: join columns of edges
  /// leaving `s` plus the aggregate's group column — "interesting orders".
  std::vector<PropKey> InterestingOrders(TableSet s) const {
    std::vector<PropKey> keys;
    keys.emplace_back(std::nullopt);
    auto add = [&keys](const SortKey& k) {
      for (const auto& existing : keys) {
        if (existing.has_value() && *existing == k) return;
      }
      keys.emplace_back(k);
    };
    for (const auto& e : edges_) {
      if ((s >> e.edge.left_table) & 1u) {
        add(SortKey{e.edge.left_table, e.edge.left_column});
      }
      if ((s >> e.edge.right_table) & 1u) {
        add(SortKey{e.edge.right_table, e.edge.right_column});
      }
    }
    const AggregateSpec& agg = tmpl_.aggregate();
    if (agg.enabled && ((s >> agg.group_table) & 1u)) {
      add(SortKey{agg.group_table, agg.group_column});
    }
    return keys;
  }

  const Winner& BestPlan(TableSet s, const PropKey& req) {
    Group& g = groups_[s];
    auto it = g.winners.find(req);
    if (it != g.winners.end() && it->second.plan != nullptr) {
      return it->second;
    }
    g.winners[req];  // reserve the slot (also breaks accidental cycles)
    if (IsSingleton(s)) {
      ExploreLeaf(s, req);
    } else {
      ExploreJoins(s, req);
    }
    Winner& w = groups_[s].winners[req];
    SCRPQO_CHECK(w.plan != nullptr, "group has no feasible plan");
    return w;
  }

  void ExploreLeaf(TableSet s, const PropKey& req) {
    Group& g = groups_[s];
    int t = SingletonIndex(s);
    const LeafInfo& li = leaf_infos_[static_cast<size_t>(t)];
    const TableDef& def = db_.catalog().GetTable(li.table);
    ++stats_.num_logical_exprs;

    // Alternative 1: full table scan (heap order).
    {
      auto scan = MakeNode(PhysicalOpKind::kTableScan);
      scan->leaf = li;
      Offer(&g, req, scan);
    }

    // Alternative 2: index seek per (index, sargable predicate) pair.
    if (options_.enable_index_seek) {
      for (const auto& idx : def.indexes) {
        for (size_t pi = 0; pi < li.preds.size(); ++pi) {
          if (li.preds[pi].column != idx.column) continue;
          auto seek = MakeNode(PhysicalOpKind::kIndexSeek);
          seek->leaf = li;
          seek->leaf.index_column = idx.column;
          seek->leaf.seek_pred = static_cast<int>(pi);
          seek->output_order = SortKey{t, idx.column};
          Offer(&g, req, seek);
        }
        // Alternative 3: ordered full index scan (delivers order without a
        // predicate; occasionally wins when an order is required).
        auto iscan = MakeNode(PhysicalOpKind::kIndexScanOrdered);
        iscan->leaf = li;
        iscan->leaf.index_column = idx.column;
        iscan->output_order = SortKey{t, idx.column};
        Offer(&g, req, iscan);
      }
    }
  }

  void ExploreJoins(TableSet s, const PropKey& req) {
    Group& g = groups_[s];
    // Enumerate proper subsets; both (sub, rest) and (rest, sub) appear in
    // the iteration, covering both operand orders.
    for (TableSet sub = (s - 1) & s; sub != 0; sub = (sub - 1) & s) {
      TableSet rest = s & ~sub;
      if (!IsConnected(sub) || !IsConnected(rest)) continue;
      std::vector<EdgeInfo> conn = ConnectingEdges(sub, rest);
      if (conn.empty()) continue;  // no cross products
      ++stats_.num_logical_exprs;

      double join_sel = 1.0;
      std::vector<JoinEdge> edge_list;
      for (const auto& e : conn) {
        join_sel *= e.sel;
        edge_list.push_back(e.edge);
      }

      // Hash join: probe = sub side, build = rest side.
      {
        const Winner& probe = BestPlan(sub, std::nullopt);
        const Winner& build = BestPlan(rest, std::nullopt);
        auto hj = MakeNode(PhysicalOpKind::kHashJoin);
        hj->children = {probe.plan, build.plan};
        hj->join.edges = edge_list;
        hj->join.join_sel = join_sel;
        Offer(&g, req, hj);
      }

      // Merge join on each connecting edge.
      if (options_.enable_merge_join) {
        for (const auto& e : conn) {
          SortKey lk{e.edge.left_table, e.edge.left_column};
          SortKey rk{e.edge.right_table, e.edge.right_column};
          const Winner& lw = BestPlan(sub, lk);
          const Winner& rw = BestPlan(rest, rk);
          auto mj = MakeNode(PhysicalOpKind::kMergeJoin);
          mj->children = {lw.plan, rw.plan};
          mj->join.edges = edge_list;
          // Put the merge edge first.
          for (size_t i = 0; i < mj->join.edges.size(); ++i) {
            if (mj->join.edges[i].left_table == e.edge.left_table &&
                mj->join.edges[i].left_column == e.edge.left_column &&
                mj->join.edges[i].right_table == e.edge.right_table &&
                mj->join.edges[i].right_column == e.edge.right_column) {
              std::swap(mj->join.edges[0], mj->join.edges[i]);
              break;
            }
          }
          mj->join.join_sel = join_sel;
          mj->output_order = lk;
          Offer(&g, req, mj);
        }
      }

      // Nested-loops joins preserve outer order, so the required order can
      // be pushed to the outer child — but only when the order's table
      // actually lives in the outer subtree; otherwise the enforcer must go
      // above the join (Offer adds it).
      PropKey outer_req = std::nullopt;
      if (req.has_value() && ((sub >> req->table) & 1u)) outer_req = req;

      // Indexed nested loops: inner must be a single table with an index on
      // its side of some connecting edge.
      if (options_.enable_indexed_nlj && IsSingleton(rest)) {
        int t = SingletonIndex(rest);
        const LeafInfo& inner_li = leaf_infos_[static_cast<size_t>(t)];
        const TableDef& def = db_.catalog().GetTable(inner_li.table);
        for (const auto& e : conn) {
          SCRPQO_CHECK(e.edge.right_table == t,
                       "connecting edge not normalized");
          if (def.FindIndexOn(e.edge.right_column) == nullptr) continue;
          const Winner& outer = BestPlan(sub, outer_req);
          auto inner = MakeNode(PhysicalOpKind::kIndexSeek);
          inner->leaf = inner_li;
          inner->leaf.index_column = e.edge.right_column;
          inner->leaf.seek_pred = -1;  // seek key comes from the join
          cost_model_.DeriveNode(inner.get(), sv_);
          auto nlj = MakeNode(PhysicalOpKind::kIndexedNestedLoopsJoin);
          nlj->children = {outer.plan, inner};
          nlj->join.edges = edge_list;
          // Put the seek edge first.
          for (size_t i = 0; i < nlj->join.edges.size(); ++i) {
            if (nlj->join.edges[i].right_column == e.edge.right_column &&
                nlj->join.edges[i].right_table == t) {
              std::swap(nlj->join.edges[0], nlj->join.edges[i]);
              break;
            }
          }
          nlj->join.join_sel = join_sel;
          nlj->join.per_probe_sel = 1.0 / std::max(e.right_distinct, 1.0);
          nlj->output_order = outer.plan->output_order;
          Offer(&g, req, nlj);
        }
      }

      // Naive nested loops (inner subplan re-evaluated per outer row).
      // Almost always dominated, but part of the space.
      if (options_.enable_naive_nlj) {
        const Winner& outer = BestPlan(sub, outer_req);
        const Winner& inner = BestPlan(rest, std::nullopt);
        auto nlj = MakeNode(PhysicalOpKind::kNaiveNestedLoopsJoin);
        nlj->children = {outer.plan, inner.plan};
        nlj->join.edges = edge_list;
        nlj->join.join_sel = join_sel;
        nlj->output_order = outer.plan->output_order;
        Offer(&g, req, nlj);
      }
    }
  }

  Winner BuildAggregate(TableSet full) {
    const AggregateSpec& spec = tmpl_.aggregate();
    const std::string& table =
        tmpl_.tables()[static_cast<size_t>(spec.group_table)];
    const ColumnStats& stats =
        db_.catalog().GetColumnStats(table, spec.group_column);
    AggInfo info;
    info.group_table = spec.group_table;
    info.group_column = spec.group_column;
    info.group_distinct =
        static_cast<double>(std::max<int64_t>(stats.distinct_count, 1));

    Winner best;
    {
      const Winner& child = BestPlan(full, std::nullopt);
      auto ha = MakeNode(PhysicalOpKind::kHashAggregate);
      ha->children = {child.plan};
      ha->agg = info;
      cost_model_.DeriveNode(ha.get(), sv_);
      ++stats_.num_physical_exprs;
      if (ha->est_cost < best.cost) {
        best = {ha, ha->est_cost};
      }
    }
    {
      SortKey key{spec.group_table, spec.group_column};
      const Winner& child = BestPlan(full, key);
      auto sa = MakeNode(PhysicalOpKind::kStreamAggregate);
      sa->children = {child.plan};
      sa->agg = info;
      sa->output_order = key;
      cost_model_.DeriveNode(sa.get(), sv_);
      ++stats_.num_physical_exprs;
      if (sa->est_cost < best.cost) {
        best = {sa, sa->est_cost};
      }
    }
    return best;
  }

  const Database& db_;
  const OptimizerOptions& options_;
  const CostModel& cost_model_;
  const QueryTemplate& tmpl_;
  const QueryInstance& instance_;
  const SVector& sv_;

  std::vector<LeafInfo> leaf_infos_;
  std::vector<EdgeInfo> edges_;
  std::map<TableSet, Group> groups_;
  MemoStats stats_;
};

}  // namespace

OptimizationResult Optimizer::Optimize(const QueryInstance& instance) const {
  // Attributed to the ambient getPlan span (if one is open): serve-time
  // callers reach this overload when no precomputed sVector exists, and
  // the selectivity derivation is real per-query work worth seeing in
  // the stage breakdown.
  StageTimer svector_timer(Stage::kSVector, nullptr);
  SVector sv = ComputeSelectivityVector(*db_, instance);
  svector_timer.Stop();
  return OptimizeWithSVector(instance, sv);
}

OptimizationResult Optimizer::OptimizeWithSVector(
    const QueryInstance& instance, const SVector& sv) const {
  const QueryTemplate& tmpl = instance.query_template();
  SCRPQO_CHECK(tmpl.num_tables() >= 1, "query must reference a table");
  SCRPQO_CHECK(tmpl.num_tables() <= 20, "too many tables for bitset memo");
  SCRPQO_CHECK(tmpl.IsJoinGraphConnected(),
               "join graph must be connected (no cross products)");
  SearchContext ctx(*db_, options_, cost_model_, instance, sv);
  return ctx.Run();
}

}  // namespace scrpqo

// Structural plan identity. Two plans are "the same plan" for PQO purposes
// when their operator trees match on operator kinds, access paths and join
// keys — parameter values are deliberately excluded, so the same cached plan
// matches across query instances.
#pragma once

#include <cstdint>
#include <string>

#include "optimizer/physical_plan.h"

namespace scrpqo {

/// Canonical single-line rendering of the plan structure, e.g.
/// "HashJoin{e=t0.a=t1.b}(IndexSeek{t=orders,i=o_date,p=2},TableScan{t=line})"
std::string PlanSignatureString(const PhysicalPlanNode& plan);

/// 64-bit FNV-1a hash of the signature string.
uint64_t PlanSignatureHash(const PhysicalPlanNode& plan);

}  // namespace scrpqo

// AVX2+FMA instantiation of the bundle group kernel. This is the ONLY
// translation unit compiled with -mavx2 -mfma (per-source COMPILE_OPTIONS
// in src/optimizer/CMakeLists.txt, x86-64 + GCC/Clang only) — the default
// build carries no -march flags, and RecostBundle::EvalGroup only calls
// EvalGroupAvx2 after __builtin_cpu_supports("avx2")/"fma") passes at
// runtime, so binaries stay runnable on any x86-64.
//
// The function deliberately instantiates nothing but the self-contained
// recost_bundle_kernel.h / cost_formulas_core.h / common/simd.h templates
// (all always_inline): no COMDAT symbol compiled with extended ISA can
// escape this TU and get picked by the linker over a generic copy.
#include "optimizer/recost_bundle_kernel.h"

namespace scrpqo::bundle_kernel {

#if SCRPQO_SIMD_AVX2_TU

bool HaveAvx2Kernel() { return true; }

void EvalGroupAvx2(const GroupView& g, const double* s,
                   const RecostKernelParams& p, double* out_cost) {
  EvalGroupT<Vec4dAvx2>(g, s, p, out_cost);
}

#else  // Non-x86 build, or a toolchain where the flags were not applied.

bool HaveAvx2Kernel() { return false; }

void EvalGroupAvx2(const GroupView&, const double*,
                   const RecostKernelParams&, double*) {
  // Unreachable by construction: dispatch requires HaveAvx2Kernel().
}

#endif

}  // namespace scrpqo::bundle_kernel

#include "optimizer/plan_memory.h"

namespace scrpqo {

namespace {

int64_t StringBytes(const std::string& s) {
  // Small-string optimization holds ~15 chars inline on mainstream ABIs.
  return s.size() > 15 ? static_cast<int64_t>(s.capacity()) : 0;
}

}  // namespace

int64_t PlanMemoryBytes(const PhysicalPlanNode& plan) {
  int64_t bytes = static_cast<int64_t>(sizeof(PhysicalPlanNode));
  bytes += StringBytes(plan.leaf.table);
  bytes += StringBytes(plan.leaf.index_column);
  for (const auto& p : plan.leaf.preds) {
    bytes += static_cast<int64_t>(sizeof(PredSpec));
    bytes += StringBytes(p.column);
  }
  for (const auto& e : plan.join.edges) {
    bytes += static_cast<int64_t>(sizeof(JoinEdge));
    bytes += StringBytes(e.left_column) + StringBytes(e.right_column);
  }
  bytes += StringBytes(plan.agg.group_column);
  for (const auto& c : plan.children) {
    bytes += static_cast<int64_t>(sizeof(PlanPtr));
    bytes += PlanMemoryBytes(*c);
  }
  return bytes;
}

int64_t InstanceEntryBytes(int dimensions) {
  // V (d doubles) + PP (pointer) + C + S (doubles) + U (int64) + flags,
  // plus vector header overhead — the paper's "~100 bytes".
  return static_cast<int64_t>(sizeof(double)) * dimensions + 8 + 8 + 8 + 8 +
         24;
}

}  // namespace scrpqo

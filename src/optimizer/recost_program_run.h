// Inline definition of the RecostProgram evaluation kernel. Included at
// the bottom of recost_program.h — never include this file directly.
//
// The program is postorder, so evaluation is RPN on a tiny value stack:
// leaves push a {rows, cost} pair, unary ops rewrite the top, joins pop
// (except IndexedNLJ, whose elided inner makes it unary).
// The stack top stays in registers for the plan shapes the optimizer
// emits, and the op stream is one dense sequential read.
#pragma once

#include "common/status.h"
#include "optimizer/cost_formulas.h"
#include "optimizer/recost_program.h"

namespace scrpqo {

inline double RecostProgram::RunOps(const SVector& sv,
                                    const CostParams& params,
                                    double* SCRPQO_RESTRICT rows_stk,
                                    double* SCRPQO_RESTRICT cost_stk) const {
  namespace cf = cost_formulas;
  // Hoisted raw pointers: the compiler cannot otherwise prove the stack
  // stores don't alias the program's own buffers and would reload them
  // every op.
  const Op* const ops = ops_.data();
  const size_t n = ops_.size();
  const int32_t* const slots = slots_.data();
  const double* const s = sv.data();
  int sp = 0;
  for (size_t i = 0; i < n; ++i) {
    const Op& op = ops[i];
    // Leaf (and INLJ-inner) selectivity: folded literal product times the
    // bound sVector slots. Non-leaf ops have an empty range.
    double sel = op.sel_lit;
    for (uint32_t k = op.sel_begin; k != op.sel_end; ++k) {
      sel *= s[slots[k]];
    }
    cf::Derived out;
    switch (static_cast<PhysicalOpKind>(op.kind)) {
      case PhysicalOpKind::kTableScan:
        out = cf::TableScan(params, op.a, sel);
        break;
      case PhysicalOpKind::kIndexSeek: {
        double seek_sel = op.seek_slot >= 0 ? s[op.seek_slot] : op.c;
        out = cf::IndexSeek(params, op.a, sel, seek_sel);
        break;
      }
      case PhysicalOpKind::kIndexScanOrdered:
        out = cf::IndexScanOrdered(params, op.a, sel);
        break;
      case PhysicalOpKind::kSort:
        out = cf::Sort(params, {rows_stk[sp - 1], cost_stk[sp - 1]});
        rows_stk[sp - 1] = out.rows;
        cost_stk[sp - 1] = out.cost;
        continue;
      case PhysicalOpKind::kHashJoin:
        --sp;
        out = cf::HashJoin(params, op.a,
                           {rows_stk[sp - 1], cost_stk[sp - 1]},
                           {rows_stk[sp], cost_stk[sp]});
        rows_stk[sp - 1] = out.rows;
        cost_stk[sp - 1] = out.cost;
        continue;
      case PhysicalOpKind::kMergeJoin:
        --sp;
        out = cf::MergeJoin(params, op.a,
                            {rows_stk[sp - 1], cost_stk[sp - 1]},
                            {rows_stk[sp], cost_stk[sp]});
        rows_stk[sp - 1] = out.rows;
        cost_stk[sp - 1] = out.cost;
        continue;
      case PhysicalOpKind::kIndexedNestedLoopsJoin:
        // Unary in the flat form: the inner leaf was elided at compile
        // time (its standalone derivation is ignored by the formula), so
        // this rewrites the outer child's slot in place.
        out = cf::IndexedNlj(params, op.a, op.b, op.c, sel,
                             {rows_stk[sp - 1], cost_stk[sp - 1]});
        rows_stk[sp - 1] = out.rows;
        cost_stk[sp - 1] = out.cost;
        continue;
      case PhysicalOpKind::kNaiveNestedLoopsJoin:
        --sp;
        out = cf::NaiveNlj(params, op.a,
                           {rows_stk[sp - 1], cost_stk[sp - 1]},
                           {rows_stk[sp], cost_stk[sp]});
        rows_stk[sp - 1] = out.rows;
        cost_stk[sp - 1] = out.cost;
        continue;
      case PhysicalOpKind::kHashAggregate:
        out = cf::HashAggregate(params, op.a,
                                {rows_stk[sp - 1], cost_stk[sp - 1]});
        rows_stk[sp - 1] = out.rows;
        cost_stk[sp - 1] = out.cost;
        continue;
      case PhysicalOpKind::kStreamAggregate:
        out = cf::StreamAggregate(params, op.a,
                                  {rows_stk[sp - 1], cost_stk[sp - 1]});
        rows_stk[sp - 1] = out.rows;
        cost_stk[sp - 1] = out.cost;
        continue;
    }
    // Leaf push (the switch falls through here only for leaf kinds).
    rows_stk[sp] = out.rows;
    cost_stk[sp] = out.cost;
    ++sp;
  }
  return cost_stk[0];
}

inline double RecostProgram::Run(const SVector& sv,
                                 const CostParams& params) const {
  SCRPQO_CHECK(!empty(), "Run on an empty (uncompiled) recost program");
  SCRPQO_CHECK(max_slot_ < static_cast<int>(sv.size()),
               "selectivity vector too short for recost program");
  const size_t n = ops_.size();
  // Postorder stack depth never exceeds the op count, so the inline-slot
  // bound that covers the scratch arrays also bounds the value stack.
  if (n <= static_cast<size_t>(kInlineSlots)) {
    double rows_stk[kInlineSlots];
    double cost_stk[kInlineSlots];
    return RunOps(sv, params, rows_stk, cost_stk);
  }
  // Plans this deep are rare; a thread-local spill keeps Run allocation-free
  // in steady state without growing the inline footprint.
  thread_local std::vector<double> rows_buf;
  thread_local std::vector<double> cost_buf;
  if (rows_buf.size() < n) {
    rows_buf.resize(n);
    cost_buf.resize(n);
  }
  return RunOps(sv, params, rows_buf.data(), cost_buf.data());
}

}  // namespace scrpqo

// Inline definition of the RecostProgram evaluation kernels. Included at
// the bottom of recost_program.h — never include this file directly.
//
// The program is postorder, so evaluation is RPN on a tiny value stack:
// leaves push a {rows, cost} pair, unary ops rewrite the top, joins pop
// (except IndexedNLJ, whose elided inner makes it unary).
// The stack top stays in registers for the plan shapes the optimizer
// emits, and the op stream is one dense sequential read.
//
// Two entry points share the per-op switch (RecostStepOp):
//   RecostProgram::Run   one program, one sVector — the scalar path.
//   RunRecostBlock       up to four programs against one sVector in
//                        interleaved lockstep: one op per lane per round,
//                        four independent stack/instruction-pointer sets.
//                        The lanes' dependency chains are disjoint, so the
//                        out-of-order core overlaps them (software
//                        pipelining) — the guaranteed-everywhere batching
//                        tier under RecostService::RecostMany, no SIMD
//                        required.
#pragma once

#include "common/status.h"
#include "optimizer/cost_formulas.h"
#include "optimizer/recost_program.h"

namespace scrpqo {

/// Executes one micro-op against a value-stack pair. `sel` is the already
/// computed leaf selectivity (folded literals times bound slots). Shared
/// by the scalar scan and the pipelined block interpreter so the dispatch
/// logic cannot drift between them.
SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
SCRPQO_NOTHROW SCRPQO_LOCK_BOUNDED()
SCRPQO_VEC_INLINE void RecostStepOp(const RecostProgram::Op& op, double sel,
                                    const double* SCRPQO_RESTRICT s,
                                    const CostParams& params,
                                    double* SCRPQO_RESTRICT rows_stk,
                                    double* SCRPQO_RESTRICT cost_stk,
                                    int& sp) noexcept {
  namespace cf = cost_formulas;
  cf::Derived out{};  // two scalars; DerivedT itself no longer zero-inits
  switch (static_cast<PhysicalOpKind>(op.kind)) {
    case PhysicalOpKind::kTableScan:
      out = cf::TableScan(params, op.a, sel);
      break;
    case PhysicalOpKind::kIndexSeek: {
      double seek_sel = op.seek_slot >= 0 ? s[op.seek_slot] : op.c;
      out = cf::IndexSeek(params, op.a, sel, seek_sel);
      break;
    }
    case PhysicalOpKind::kIndexScanOrdered:
      out = cf::IndexScanOrdered(params, op.a, sel);
      break;
    case PhysicalOpKind::kSort:
      out = cf::Sort(params, {rows_stk[sp - 1], cost_stk[sp - 1]});
      rows_stk[sp - 1] = out.rows;
      cost_stk[sp - 1] = out.cost;
      return;
    case PhysicalOpKind::kHashJoin:
      --sp;
      out = cf::HashJoin(params, op.a,
                         {rows_stk[sp - 1], cost_stk[sp - 1]},
                         {rows_stk[sp], cost_stk[sp]});
      rows_stk[sp - 1] = out.rows;
      cost_stk[sp - 1] = out.cost;
      return;
    case PhysicalOpKind::kMergeJoin:
      --sp;
      out = cf::MergeJoin(params, op.a,
                          {rows_stk[sp - 1], cost_stk[sp - 1]},
                          {rows_stk[sp], cost_stk[sp]});
      rows_stk[sp - 1] = out.rows;
      cost_stk[sp - 1] = out.cost;
      return;
    case PhysicalOpKind::kIndexedNestedLoopsJoin:
      // Unary in the flat form: the inner leaf was elided at compile
      // time (its standalone derivation is ignored by the formula), so
      // this rewrites the outer child's slot in place.
      out = cf::IndexedNlj(params, op.a, op.b, op.c, sel,
                           {rows_stk[sp - 1], cost_stk[sp - 1]});
      rows_stk[sp - 1] = out.rows;
      cost_stk[sp - 1] = out.cost;
      return;
    case PhysicalOpKind::kNaiveNestedLoopsJoin:
      --sp;
      out = cf::NaiveNlj(params, op.a,
                         {rows_stk[sp - 1], cost_stk[sp - 1]},
                         {rows_stk[sp], cost_stk[sp]});
      rows_stk[sp - 1] = out.rows;
      cost_stk[sp - 1] = out.cost;
      return;
    case PhysicalOpKind::kHashAggregate:
      out = cf::HashAggregate(params, op.a,
                              {rows_stk[sp - 1], cost_stk[sp - 1]});
      rows_stk[sp - 1] = out.rows;
      cost_stk[sp - 1] = out.cost;
      return;
    case PhysicalOpKind::kStreamAggregate:
      out = cf::StreamAggregate(params, op.a,
                                {rows_stk[sp - 1], cost_stk[sp - 1]});
      rows_stk[sp - 1] = out.rows;
      cost_stk[sp - 1] = out.cost;
      return;
  }
  // Leaf push (the switch falls through here only for leaf kinds).
  rows_stk[sp] = out.rows;
  cost_stk[sp] = out.cost;
  ++sp;
}

SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
SCRPQO_NOTHROW SCRPQO_LOCK_BOUNDED()
inline double RecostProgram::RunOps(
    const SVector& sv, const CostParams& params,
    double* SCRPQO_RESTRICT rows_stk,
    double* SCRPQO_RESTRICT cost_stk) const noexcept {
  // Hoisted raw pointers: the compiler cannot otherwise prove the stack
  // stores don't alias the program's own buffers and would reload them
  // every op.
  const Op* const ops = ops_.data();
  const size_t n = ops_.size();
  const int32_t* const slots = slots_.data();
  const double* const s = sv.data();
  int sp = 0;
  for (size_t i = 0; i < n; ++i) {
    const Op& op = ops[i];
    // Leaf (and INLJ-inner) selectivity: folded literal product times the
    // bound sVector slots. Non-leaf ops have an empty range.
    double sel = op.sel_lit;
    for (uint32_t k = op.sel_begin; k != op.sel_end; ++k) {
      sel *= s[slots[k]];
    }
    RecostStepOp(op, sel, s, params, rows_stk, cost_stk, sp);
  }
  return cost_stk[0];
}

SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
SCRPQO_NOTHROW SCRPQO_LOCK_BOUNDED()
inline double RecostProgram::Run(const SVector& sv,
                                 const CostParams& params) const noexcept {
  SCRPQO_CHECK(!empty(), "Run on an empty (uncompiled) recost program");
  SCRPQO_CHECK(max_slot_ < static_cast<int>(sv.size()),
               "selectivity vector too short for recost program");
  const size_t n = ops_.size();
  // Postorder stack depth never exceeds the op count, so the inline-slot
  // bound that covers the scratch arrays also bounds the value stack.
  if (n <= static_cast<size_t>(kInlineSlots)) {
    double rows_stk[kInlineSlots];
    double cost_stk[kInlineSlots];
    return RunOps(sv, params, rows_stk, cost_stk);
  }
  // Plans this deep are rare; a thread-local spill keeps Run allocation-free
  // in steady state without growing the inline footprint.
  thread_local std::vector<double> rows_buf;
  thread_local std::vector<double> cost_buf;
  if (rows_buf.size() < n) {
    SCRPQO_EFFECT_ALLOW(alloc, "deep-plan spill: the thread-local scratch grows once to the deepest plan seen, then every later Run is allocation-free");
    rows_buf.resize(n);
    SCRPQO_EFFECT_ALLOW(alloc, "second half of the same sticky thread-local spill");
    cost_buf.resize(n);
  }
  return RunOps(sv, params, rows_buf.data(), cost_buf.data());
}

/// Lane count of the pipelined block interpreter.
inline constexpr int kRecostBlockLanes = 4;

/// True when `p` can run as one lane of RunRecostBlock for an sVector of
/// `sv_size` dimensions: compiled, small enough for stack scratch, and
/// fully bound by the vector.
inline bool RecostBlockEligible(const RecostProgram& p,
                                std::size_t sv_size) {
  return !p.empty() &&
         p.num_nodes() <= RecostProgram::kInlineSlots &&
         p.max_binding_slot() < static_cast<int>(sv_size);
}

/// Runs `n` (1..4) flat programs against one sVector in interleaved
/// lockstep and writes each program's cost into out_costs[0..n). Every
/// program must satisfy RecostBlockEligible. Per-lane results are
/// identical to RecostProgram::Run — only the evaluation order across
/// lanes changes, which is what lets the core overlap the four
/// independent dependency chains.
SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
SCRPQO_NOTHROW SCRPQO_LOCK_BOUNDED()
inline void RunRecostBlock(const RecostProgram* const* progs, int n,
                           const SVector& sv, const CostParams& params,
                           double* out_costs) noexcept {
  double rows_stk[kRecostBlockLanes][RecostProgram::kInlineSlots];
  double cost_stk[kRecostBlockLanes][RecostProgram::kInlineSlots];
  const RecostProgram::Op* ops[kRecostBlockLanes];
  const int32_t* slots[kRecostBlockLanes];
  size_t len[kRecostBlockLanes];
  int sp[kRecostBlockLanes] = {0, 0, 0, 0};
  const double* const s = sv.data();
  size_t max_len = 0;
  for (int l = 0; l < n; ++l) {
    ops[l] = progs[l]->ops();
    slots[l] = progs[l]->slots();
    len[l] = static_cast<size_t>(progs[l]->num_nodes());
    if (len[l] > max_len) max_len = len[l];
  }
  for (size_t i = 0; i < max_len; ++i) {
    for (int l = 0; l < n; ++l) {
      if (i >= len[l]) continue;
      const RecostProgram::Op& op = ops[l][i];
      double sel = op.sel_lit;
      for (uint32_t k = op.sel_begin; k != op.sel_end; ++k) {
        sel *= s[slots[l][k]];
      }
      RecostStepOp(op, sel, s, params, rows_stk[l], cost_stk[l], sp[l]);
    }
  }
  for (int l = 0; l < n; ++l) out_costs[l] = cost_stk[l][0];
}

}  // namespace scrpqo

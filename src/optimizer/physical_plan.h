// Physical execution plans. A plan is a tree of PhysicalPlanNode; nodes
// carry enough instance-independent metadata that the same tree can be
// (a) re-costed for a different query instance (the Recost API) and
// (b) executed for a different query instance (parameter slots are bound at
// execution time). This mirrors the paper's shrunkenMemo design
// (Appendix B): a cacheable plan representation supporting cheap bottom-up
// cardinality and cost re-derivation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "expr/value.h"
#include "query/query_template.h"

namespace scrpqo {

enum class PhysicalOpKind {
  kTableScan,
  kIndexSeek,
  kIndexScanOrdered,
  kSort,
  kHashJoin,          // left = probe, right = build
  kMergeJoin,
  kIndexedNestedLoopsJoin,  // left = outer, right = inner (single table)
  kNaiveNestedLoopsJoin,    // left = outer, right = rescanned inner subplan
  kHashAggregate,
  kStreamAggregate,
};

std::string PhysicalOpName(PhysicalOpKind kind);

/// Output (or required) sort order: a single base-table column. Identified
/// by the template's table index, so the key survives joins.
struct SortKey {
  int table = -1;
  std::string column;

  bool operator==(const SortKey& other) const {
    return table == other.table && column == other.column;
  }
  bool operator<(const SortKey& other) const {
    if (table != other.table) return table < other.table;
    return column < other.column;
  }
  std::string ToString() const {
    return "t" + std::to_string(table) + "." + column;
  }
};

/// \brief One filter predicate attached to a leaf, with everything needed
/// to (re)bind and (re)estimate it per query instance.
struct PredSpec {
  std::string column;
  CompareOp op = CompareOp::kLe;
  /// kNoParamSlot for literal predicates.
  int param_slot = kNoParamSlot;
  /// Fixed value for literal predicates (ignored when parameterized).
  Value literal;
  /// Estimated selectivity of a literal predicate (instance-independent);
  /// parameterized predicates read sVector[param_slot] instead.
  double literal_sel = 1.0;

  bool parameterized() const { return param_slot != kNoParamSlot; }
};

/// Instance-independent metadata for leaf access paths.
struct LeafInfo {
  int table_index = -1;
  std::string table;
  double base_rows = 0.0;
  std::vector<PredSpec> preds;
  /// IndexSeek / IndexScanOrdered: the index column; `seek_pred` indexes
  /// into `preds` for the sargable predicate driving the seek (-1 for a
  /// full ordered index scan).
  std::string index_column;
  int seek_pred = -1;
};

/// Instance-independent metadata for join operators.
struct JoinInfo {
  /// Equi-join edges this operator applies (first edge is the hash/merge/
  /// seek key; the rest are residual filters).
  std::vector<JoinEdge> edges;
  /// Product of edge selectivities (assumed instance-independent, paper
  /// Section 5.2 footnote 4).
  double join_sel = 1.0;
  /// IndexedNestedLoopsJoin: expected fraction of the inner table fetched
  /// per probe ( = 1 / distinct(inner key) ).
  double per_probe_sel = 1.0;
};

struct AggInfo {
  int group_table = -1;
  std::string group_column;
  /// Distinct count of the grouping column (cap for output cardinality).
  double group_distinct = 1.0;
};

struct PhysicalPlanNode;
using PlanPtr = std::shared_ptr<const PhysicalPlanNode>;

struct PhysicalPlanNode {
  PhysicalOpKind kind = PhysicalOpKind::kTableScan;
  std::vector<PlanPtr> children;

  LeafInfo leaf;            // leaf kinds
  JoinInfo join;            // join kinds
  AggInfo agg;              // aggregate kinds
  SortKey sort_key;         // kSort

  /// Sort order of the output, when any (drives merge join / stream agg).
  std::optional<SortKey> output_order;

  // Derived for a specific sVector by CostModel::DerivePlan. For plans
  // returned by the optimizer these reflect the instance that was optimized.
  double est_rows = 0.0;
  double est_cost = 0.0;        // cumulative (includes children)
  double est_local_cost = 0.0;  // this operator only

  bool is_leaf() const {
    return kind == PhysicalOpKind::kTableScan ||
           kind == PhysicalOpKind::kIndexSeek ||
           kind == PhysicalOpKind::kIndexScanOrdered;
  }
  bool is_join() const {
    return kind == PhysicalOpKind::kHashJoin ||
           kind == PhysicalOpKind::kMergeJoin ||
           kind == PhysicalOpKind::kIndexedNestedLoopsJoin ||
           kind == PhysicalOpKind::kNaiveNestedLoopsJoin;
  }

  /// Total number of nodes in the subtree.
  int NodeCount() const;

  /// Multi-line indented rendering (EXPLAIN-style).
  std::string ToString(int indent = 0) const;
};

}  // namespace scrpqo

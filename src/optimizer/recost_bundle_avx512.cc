// AVX-512 instantiation of the bundle group kernel. This is the ONLY
// translation unit compiled with -mavx512f -mavx512dq -mavx512vl (per-source
// COMPILE_OPTIONS in src/optimizer/CMakeLists.txt, x86-64 + GCC/Clang
// only) — the default build carries no -march flags, and
// RecostBundle::EvalGroup only calls EvalGroupAvx512 after
// __builtin_cpu_supports("avx512f"/"avx512dq"/"avx512vl") passes at
// runtime, so binaries stay runnable on any x86-64.
//
// Multi-block groups run the paired kernel: adjacent 4-lane blocks of a
// cell are contiguous in the pack layout, so one 512-bit op covers two
// blocks and the per-step op count halves. An odd trailing block (and a
// one-block group) falls back to the 256-bit kernel — instantiated here
// with Vec4dAvx2, which the AVX-512 flags subsume.
//
// The function deliberately instantiates nothing but the self-contained
// recost_bundle_kernel.h / cost_formulas_core.h / common/simd.h templates
// (all always_inline): no COMDAT symbol compiled with extended ISA can
// escape this TU and get picked by the linker over a generic copy.
#include "optimizer/recost_bundle_kernel.h"

namespace scrpqo::bundle_kernel {

#if SCRPQO_SIMD_AVX512_TU

bool HaveAvx512Kernel() { return true; }

void EvalGroupAvx512(const GroupView& g, const double* s,
                     const RecostKernelParams& p, double* out_cost) {
  static_assert(kMaxBundleBlocks == 4);
  // Size-aware: 512-bit ops only pay off on wide groups. On single-FMA-unit
  // parts (Skylake-SP class) a 512-bit op costs ~2x a 256-bit op, so the
  // paired kernel's halved instruction count only nets out ahead when a
  // pass covers >= 3 blocks; small groups route to the 256-bit entry in
  // the AVX2 TU, which also keeps a mixed-shape sweep's hot code footprint
  // to the few instantiations it actually needs.
  switch (g.num_blocks) {
    case 1:
    case 2:
      EvalGroupAvx2(g, s, p, out_cost);
      return;
    case 3:
      EvalGroupPairedT<Vec8dAvx512, 1, 3>(g, s, p, out_cost);
      EvalGroupNbT<Vec4dAvx2, 1, 3, 2>(g, s, p, out_cost);
      return;
    default:
      EvalGroupPairedT<Vec8dAvx512, 2, 4>(g, s, p, out_cost);
      return;
  }
}

#else  // Non-x86 build, or a toolchain where the flags were not applied.

bool HaveAvx512Kernel() { return false; }

void EvalGroupAvx512(const GroupView&, const double*,
                     const RecostKernelParams&, double*) {
  // Unreachable by construction: dispatch requires HaveAvx512Kernel().
}

#endif

}  // namespace scrpqo::bundle_kernel

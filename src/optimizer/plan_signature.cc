#include "optimizer/plan_signature.h"

#include <sstream>

namespace scrpqo {

namespace {

void AppendSignature(const PhysicalPlanNode& node, std::ostringstream* os) {
  *os << PhysicalOpName(node.kind) << "{";
  if (node.is_leaf()) {
    *os << "t=" << node.leaf.table;
    if (!node.leaf.index_column.empty()) {
      *os << ",i=" << node.leaf.index_column;
    }
    if (node.leaf.seek_pred >= 0) {
      *os << ",p=" << node.leaf.seek_pred;
    }
    // Predicate shapes (not values) are part of the identity.
    for (const auto& p : node.leaf.preds) {
      *os << "," << p.column << CompareOpName(p.op)
          << (p.parameterized() ? "$" + std::to_string(p.param_slot) : "#");
    }
  } else if (node.is_join()) {
    for (size_t i = 0; i < node.join.edges.size(); ++i) {
      if (i > 0) *os << "&";
      *os << "e=" << node.join.edges[i].ToString();
    }
  } else if (node.kind == PhysicalOpKind::kSort) {
    *os << "k=" << node.sort_key.ToString();
  } else if (node.kind == PhysicalOpKind::kHashAggregate ||
             node.kind == PhysicalOpKind::kStreamAggregate) {
    *os << "g=t" << node.agg.group_table << "." << node.agg.group_column;
  }
  *os << "}";
  if (!node.children.empty()) {
    *os << "(";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *os << ",";
      AppendSignature(*node.children[i], os);
    }
    *os << ")";
  }
}

}  // namespace

std::string PlanSignatureString(const PhysicalPlanNode& plan) {
  std::ostringstream os;
  AppendSignature(plan, &os);
  return os.str();
}

uint64_t PlanSignatureHash(const PhysicalPlanNode& plan) {
  std::string s = PlanSignatureString(plan);
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace scrpqo

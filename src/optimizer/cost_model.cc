#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "optimizer/cost_formulas.h"

namespace scrpqo {

double CostModel::PredSelectivity(const PredSpec& pred,
                                  const SVector& sv) const {
  if (pred.parameterized()) {
    SCRPQO_CHECK(pred.param_slot >= 0 &&
                     pred.param_slot < static_cast<int>(sv.size()),
                 "param slot out of range for selectivity vector");
    return sv[static_cast<size_t>(pred.param_slot)];
  }
  return pred.literal_sel;
}

double CostModel::LeafSelectivity(const LeafInfo& leaf,
                                  const SVector& sv) const {
  double sel = 1.0;
  for (const auto& p : leaf.preds) sel *= PredSelectivity(p, sv);
  return sel;
}

// The per-operator arithmetic lives in optimizer/cost_formulas.h, shared
// with RecostProgram's flat kernel; Combine only extracts the node's
// instance-independent metadata and dispatches.
CostModel::Derived CostModel::Combine(const PhysicalPlanNode& node,
                                      const SVector& sv,
                                      const Derived* child0,
                                      const Derived* child1) const {
  namespace cf = cost_formulas;
  auto as_formula = [](const Derived* d) {
    return d != nullptr ? cf::Derived{d->rows, d->cost} : cf::Derived{};
  };
  cf::Derived c0 = as_formula(child0);
  cf::Derived c1 = as_formula(child1);
  cf::Derived out;

  switch (node.kind) {
    case PhysicalOpKind::kTableScan:
      out = cf::TableScan(params_, node.leaf.base_rows,
                          LeafSelectivity(node.leaf, sv));
      break;
    case PhysicalOpKind::kIndexSeek: {
      // seek_pred == -1 means the seek key is supplied by a parent
      // IndexedNLJ per probe; standalone derivation treats it as a full
      // index walk (the parent ignores this cost and uses the per-probe
      // model instead).
      const LeafInfo& leaf = node.leaf;
      double seek_sel =
          leaf.seek_pred >= 0
              ? PredSelectivity(leaf.preds[static_cast<size_t>(leaf.seek_pred)],
                                sv)
              : 1.0;
      out = cf::IndexSeek(params_, leaf.base_rows,
                          LeafSelectivity(leaf, sv), seek_sel);
      break;
    }
    case PhysicalOpKind::kIndexScanOrdered:
      // Full walk of the index in key order plus a RID lookup per row.
      out = cf::IndexScanOrdered(params_, node.leaf.base_rows,
                                 LeafSelectivity(node.leaf, sv));
      break;
    case PhysicalOpKind::kSort:
      SCRPQO_CHECK(child0 != nullptr, "Sort requires a child");
      out = cf::Sort(params_, c0);
      break;
    case PhysicalOpKind::kHashJoin:
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "HashJoin requires two children");
      out = cf::HashJoin(params_, node.join.join_sel, c0, c1);
      break;
    case PhysicalOpKind::kMergeJoin:
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "MergeJoin requires two children");
      out = cf::MergeJoin(params_, node.join.join_sel, c0, c1);
      break;
    case PhysicalOpKind::kIndexedNestedLoopsJoin: {
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "IndexedNLJ requires two children");
      // LeafSelectivity so parameterized inner predicates rebind on
      // Recost; only the outer child's cost counts (the inner leaf is
      // accessed via the index, not via its standalone plan).
      const LeafInfo& inner = node.children[1]->leaf;
      out = cf::IndexedNlj(params_, node.join.join_sel,
                           inner.base_rows * node.join.per_probe_sel,
                           inner.base_rows, LeafSelectivity(inner, sv), c0);
      break;
    }
    case PhysicalOpKind::kNaiveNestedLoopsJoin:
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "NaiveNLJ requires two children");
      out = cf::NaiveNlj(params_, node.join.join_sel, c0, c1);
      break;
    case PhysicalOpKind::kHashAggregate:
      SCRPQO_CHECK(child0 != nullptr, "HashAgg requires a child");
      out = cf::HashAggregate(params_, node.agg.group_distinct, c0);
      break;
    case PhysicalOpKind::kStreamAggregate:
      SCRPQO_CHECK(child0 != nullptr, "StreamAgg requires a child");
      out = cf::StreamAggregate(params_, node.agg.group_distinct, c0);
      break;
  }
  return Derived{out.rows, out.cost};
}

void CostModel::DeriveNode(PhysicalPlanNode* node, const SVector& sv) const {
  Derived c0, c1;
  const Derived* p0 = nullptr;
  const Derived* p1 = nullptr;
  if (!node->children.empty()) {
    c0 = {node->children[0]->est_rows, node->children[0]->est_cost};
    p0 = &c0;
  }
  if (node->children.size() > 1) {
    c1 = {node->children[1]->est_rows, node->children[1]->est_cost};
    p1 = &c1;
  }
  Derived d = Combine(*node, sv, p0, p1);
  node->est_rows = d.rows;
  double child_cost = 0.0;
  for (const auto& c : node->children) child_cost += c->est_cost;
  node->est_cost = d.cost;
  node->est_local_cost = d.cost - child_cost;
}

CostModel::Derived CostModel::DeriveRec(const PhysicalPlanNode& node,
                                        const SVector& sv) const {
  Derived c0, c1;
  const Derived* p0 = nullptr;
  const Derived* p1 = nullptr;
  if (!node.children.empty()) {
    c0 = DeriveRec(*node.children[0], sv);
    p0 = &c0;
  }
  if (node.children.size() > 1) {
    c1 = DeriveRec(*node.children[1], sv);
    p1 = &c1;
  }
  return Combine(node, sv, p0, p1);
}

double CostModel::RecostTree(const PhysicalPlanNode& root,
                             const SVector& sv) const {
  return DeriveRec(root, sv).cost;
}

}  // namespace scrpqo

#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace scrpqo {

namespace {
constexpr double kMinRows = 1.0;
}  // namespace

double CostModel::PredSelectivity(const PredSpec& pred,
                                  const SVector& sv) const {
  if (pred.parameterized()) {
    SCRPQO_CHECK(pred.param_slot >= 0 &&
                     pred.param_slot < static_cast<int>(sv.size()),
                 "param slot out of range for selectivity vector");
    return sv[static_cast<size_t>(pred.param_slot)];
  }
  return pred.literal_sel;
}

double CostModel::LeafSelectivity(const LeafInfo& leaf,
                                  const SVector& sv) const {
  double sel = 1.0;
  for (const auto& p : leaf.preds) sel *= PredSelectivity(p, sv);
  return sel;
}

double CostModel::SortCost(double rows) const {
  rows = std::max(rows, kMinRows);
  double cost = params_.sort_per_row_log * rows * std::log2(rows + 2.0);
  if (rows > params_.memory_rows) {
    double pages = rows / static_cast<double>(params_.rows_per_page);
    cost += params_.spill_io_factor * pages * params_.io_per_page;
  }
  return cost;
}

CostModel::Derived CostModel::Combine(const PhysicalPlanNode& node,
                                      const SVector& sv,
                                      const Derived* child0,
                                      const Derived* child1) const {
  Derived out;
  double child_cost = 0.0;
  if (child0 != nullptr) child_cost += child0->cost;
  if (child1 != nullptr) child_cost += child1->cost;

  switch (node.kind) {
    case PhysicalOpKind::kTableScan: {
      const LeafInfo& leaf = node.leaf;
      double pages = leaf.base_rows / static_cast<double>(params_.rows_per_page);
      out.rows = leaf.base_rows * LeafSelectivity(leaf, sv);
      out.cost = pages * params_.io_per_page +
                 leaf.base_rows * params_.cpu_per_row;
      break;
    }
    case PhysicalOpKind::kIndexSeek: {
      // seek_pred == -1 means the seek key is supplied by a parent
      // IndexedNLJ per probe; standalone derivation treats it as a full
      // index walk (the parent ignores this cost and uses the per-probe
      // model instead).
      const LeafInfo& leaf = node.leaf;
      double seek_sel =
          leaf.seek_pred >= 0
              ? PredSelectivity(leaf.preds[static_cast<size_t>(leaf.seek_pred)],
                                sv)
              : 1.0;
      double matching = std::max(leaf.base_rows * seek_sel, 0.0);
      out.rows = leaf.base_rows * LeafSelectivity(leaf, sv);
      out.cost = params_.seek_base +
                 matching * (params_.index_row_cpu + params_.rid_lookup +
                             params_.cpu_per_row);
      break;
    }
    case PhysicalOpKind::kIndexScanOrdered: {
      // Full walk of the index in key order plus a RID lookup per row.
      const LeafInfo& leaf = node.leaf;
      out.rows = leaf.base_rows * LeafSelectivity(leaf, sv);
      out.cost = params_.seek_base +
                 leaf.base_rows * (params_.index_row_cpu +
                                   params_.rid_lookup + params_.cpu_per_row);
      break;
    }
    case PhysicalOpKind::kSort: {
      SCRPQO_CHECK(child0 != nullptr, "Sort requires a child");
      out.rows = child0->rows;
      out.cost = child_cost + SortCost(child0->rows);
      break;
    }
    case PhysicalOpKind::kHashJoin: {
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "HashJoin requires two children");
      double probe = std::max(child0->rows, 0.0);
      double build = std::max(child1->rows, 0.0);
      out.rows = probe * build * node.join.join_sel;
      double local = build * params_.hash_build_per_row +
                     probe * params_.hash_probe_per_row +
                     out.rows * params_.cpu_per_row;
      if (build > params_.memory_rows) {
        double pages =
            (build + probe) / static_cast<double>(params_.rows_per_page);
        local += params_.spill_io_factor * pages * params_.io_per_page;
      }
      out.cost = child_cost + local;
      break;
    }
    case PhysicalOpKind::kMergeJoin: {
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "MergeJoin requires two children");
      out.rows = child0->rows * child1->rows * node.join.join_sel;
      double local =
          (child0->rows + child1->rows) * params_.merge_per_row +
          out.rows * params_.cpu_per_row;
      out.cost = child_cost + local;
      break;
    }
    case PhysicalOpKind::kIndexedNestedLoopsJoin: {
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "IndexedNLJ requires two children");
      const LeafInfo& inner = node.children[1]->leaf;
      double outer_rows = std::max(child0->rows, 0.0);
      // Each probe descends the inner index and fetches the matching
      // fraction of the inner table, then applies inner residual filters.
      double per_probe_matches = inner.base_rows * node.join.per_probe_sel;
      double probe_cost =
          0.5 * params_.seek_base +
          per_probe_matches * (params_.index_row_cpu + params_.rid_lookup +
                               params_.cpu_per_row);
      // outer * inner_card * join_sel; LeafSelectivity so parameterized
      // inner predicates rebind on Recost.
      out.rows = outer_rows * inner.base_rows * LeafSelectivity(inner, sv) *
                 node.join.join_sel;
      double local =
          outer_rows * probe_cost + out.rows * params_.cpu_per_row;
      // Only the outer child's cost counts: the inner leaf is accessed via
      // the index, not via its standalone plan.
      out.cost = child0->cost + local;
      break;
    }
    case PhysicalOpKind::kNaiveNestedLoopsJoin: {
      SCRPQO_CHECK(child0 != nullptr && child1 != nullptr,
                   "NaiveNLJ requires two children");
      double outer_rows = std::max(child0->rows, kMinRows);
      out.rows = child0->rows * child1->rows * node.join.join_sel;
      double local = outer_rows * child1->cost +
                     out.rows * params_.cpu_per_row;
      out.cost = child0->cost + child1->cost + local;
      break;
    }
    case PhysicalOpKind::kHashAggregate: {
      SCRPQO_CHECK(child0 != nullptr, "HashAgg requires a child");
      out.rows = std::min(node.agg.group_distinct,
                          std::max(child0->rows, kMinRows));
      double local = child0->rows * params_.hash_build_per_row +
                     out.rows * params_.cpu_per_row;
      if (out.rows > params_.memory_rows) {
        double pages = child0->rows / static_cast<double>(params_.rows_per_page);
        local += params_.spill_io_factor * pages * params_.io_per_page;
      }
      out.cost = child_cost + local;
      break;
    }
    case PhysicalOpKind::kStreamAggregate: {
      SCRPQO_CHECK(child0 != nullptr, "StreamAgg requires a child");
      out.rows = std::min(node.agg.group_distinct,
                          std::max(child0->rows, kMinRows));
      double local = child0->rows * params_.cpu_per_row;
      out.cost = child_cost + local;
      break;
    }
  }
  return out;
}

void CostModel::DeriveNode(PhysicalPlanNode* node, const SVector& sv) const {
  Derived c0, c1;
  const Derived* p0 = nullptr;
  const Derived* p1 = nullptr;
  if (!node->children.empty()) {
    c0 = {node->children[0]->est_rows, node->children[0]->est_cost};
    p0 = &c0;
  }
  if (node->children.size() > 1) {
    c1 = {node->children[1]->est_rows, node->children[1]->est_cost};
    p1 = &c1;
  }
  Derived d = Combine(*node, sv, p0, p1);
  node->est_rows = d.rows;
  double child_cost = 0.0;
  for (const auto& c : node->children) child_cost += c->est_cost;
  node->est_cost = d.cost;
  node->est_local_cost = d.cost - child_cost;
}

CostModel::Derived CostModel::DeriveRec(const PhysicalPlanNode& node,
                                        const SVector& sv) const {
  Derived c0, c1;
  const Derived* p0 = nullptr;
  const Derived* p1 = nullptr;
  if (!node.children.empty()) {
    c0 = DeriveRec(*node.children[0], sv);
    p0 = &c0;
  }
  if (node.children.size() > 1) {
    c1 = DeriveRec(*node.children[1], sv);
    p1 = &c1;
  }
  return Combine(node, sv, p0, p1);
}

double CostModel::RecostTree(const PhysicalPlanNode& root,
                             const SVector& sv) const {
  return DeriveRec(root, sv).cost;
}

}  // namespace scrpqo

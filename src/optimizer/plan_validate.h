// Structural plan validation: machine-checkable well-formedness invariants
// for PhysicalPlanNode trees. Used by tests (every optimizer output across
// the evaluation suite is validated) and available to embedders as a debug
// gate before executing a deserialized or hand-built plan.
#pragma once

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/physical_plan.h"
#include "query/query_template.h"

namespace scrpqo {

/// Verifies the invariants the executor relies on:
///  * child counts match the operator kind;
///  * every leaf's table_index names a template table and its predicates
///    reference existing columns of that table;
///  * IndexSeek/IndexScanOrdered name an index column that is actually
///    indexed in the catalog, and seek_pred (when set) indexes into preds;
///  * Sort keys, aggregate group columns and join-edge endpoints reference
///    tables PRESENT in the respective subtree (the bug class where an
///    enforcer lands below the operator that introduces its table);
///  * MergeJoin children's declared output order matches the merge keys;
///  * join metadata (join_sel, per_probe_sel) is sane.
Status ValidatePlan(const PhysicalPlanNode& plan, const QueryTemplate& tmpl,
                    const Catalog& catalog);

}  // namespace scrpqo

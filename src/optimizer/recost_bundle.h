// RecostBundle: SIMD-batched evaluation of many cached plans' flat recost
// programs against one sVector — the engine behind PlanStore's redundancy
// sweep and SCR's ordered cost check.
//
// The flat RecostProgram (recost_program.h) already made a single plan's
// re-cost a linear scan; the remaining cost on the hot path is that the
// sweep runs m of those scans back-to-back, each serializing on its own
// dependency chain. The bundle packs plans with the SAME op-kind sequence
// (identical stack evolution, so one instruction stream drives all of
// them) into per-shape groups of up to 4 four-lane SIMD blocks (16 plans)
// in structure-of-arrays form:
//
//   kinds      kind-major: one byte per step, shared by every block
//   a/b/c/     lane-major doubles per cell (cell = step*nblocks + block),
//   sel_lit    [cell*4 + lane], 64-byte aligned — one aligned vector load
//              feeds a block's step
//   sel ranges per (cell,lane) into one shared slot pool
//
// One pass over a group evaluates all its plans in a single step loop:
// the per-step dispatch is paid once per SHAPE, not once per 4 plans, and
// the blocks' independent dependency chains overlap in the out-of-order
// core (Vec4dScalar everywhere; NEON on aarch64; AVX2+FMA on x86-64,
// runtime-dispatched — see common/simd.h and recost_bundle_kernel.h).
// Dead lanes are padded with a live lane's coefficients: they compute a
// garbage-but-finite cost the caller never reads.
//
// Equivalence: the kernels instantiate the hoisted (HT) forms of the same
// cost_formulas_core.h templates the scalar path uses — identical
// arithmetic up to reassociation of parameter-only products and FMA
// contraction, bounded at 1e-9 relative by the property suite.
//
// Accounting: EvalMany bills exactly the plans its visitor actually saw —
// identical to the legacy one-Run-per-plan loop in every early-exit case —
// while the lanes_active counter separately records lanes computed, so
// the batching win is observable without perturbing recost-call metrics.
//
// Thread safety: mutation (Add/Remove/Clear) must run under the owning
// store's exclusive lock; EvalMany and the other const readers are safe
// under the shared lock (the tombstone-compaction rebuild is a mutation).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/effects.h"
#include "common/scratch_arena.h"
#include "common/simd.h"
#include "common/status.h"
#include "obs/metrics_registry.h"
#include "optimizer/recost_bundle_kernel.h"
#include "optimizer/recost_program.h"
#include "query/query_instance.h"

namespace scrpqo {

struct CostParams;

class RecostBundle {
 public:
  static constexpr int kLanes = bundle_kernel::kBundleLanes;
  static constexpr int kMaxBlocks = bundle_kernel::kMaxBundleBlocks;
  /// Widest group: one shape holds up to this many plans in one pass.
  static constexpr int kMaxLanesPerGroup = kLanes * kMaxBlocks;

  RecostBundle() = default;
  RecostBundle(const RecostBundle&) = delete;
  RecostBundle& operator=(const RecostBundle&) = delete;

  /// Packs `program` (which must stay alive and unmoved until Remove —
  /// PlanStore guarantees this by holding plans behind shared_ptr) into a
  /// lane of a shape-matching group, creating one if needed. Returns false
  /// without mutating when the program is not bundleable (empty /
  /// hand-built plan, or longer than kMaxBundleSteps) — the caller then
  /// routes that plan over the scalar path.
  bool Add(int plan_id, const RecostProgram* program);

  /// Frees the plan's lane (tombstone). No-op when the plan was never
  /// accepted by Add. Compacts — rebuilding every group densely — once
  /// tombstoned lanes outnumber live ones.
  void Remove(int plan_id);

  /// O(1): plan ids are PlanStore entry indices (small dense ints), so the
  /// lane map is a flat vector — EvalMany does one array read per
  /// candidate where a hash find would cost more than the group pass.
  bool Contains(int plan_id) const {
    return plan_id >= 0 && static_cast<size_t>(plan_id) < lane_of_.size() &&
           lane_of_[static_cast<size_t>(plan_id)].group >= 0;
  }

  void Clear();

  /// Live plans currently packed.
  int num_plans() const { return num_plans_; }

  /// Times Remove triggered a full dense rebuild.
  int64_t rebuilds() const { return rebuilds_; }

  /// Heap bytes held by the packed groups (coefficient lanes, slot pools).
  int64_t memory_bytes() const;

  /// Pack-quality introspection (tests, diagnostics): how many cells took
  /// each selectivity fast path, and how many steps carry the step-level
  /// shared-product hoist. Counts cover groups with live plans only.
  struct PackStats {
    int64_t cells_general = 0;
    int64_t cells_one_slot = 0;
    int64_t cells_literal = 0;
    int64_t cells_uniform = 0;
    int64_t steps_total = 0;
    int64_t steps_shared = 0;
  };
  PackStats pack_stats() const;

  /// Wires the batching telemetry: `lanes_active` accumulates lanes
  /// computed per group pass, `bundle_rebuilds` mirrors rebuilds().
  /// Either may be nullptr. Counters are internally atomic, so EvalMany
  /// may bump them from concurrent readers.
  void SetObsCounters(Counter* lanes_active, Counter* bundle_rebuilds) {
    lanes_active_ = lanes_active;
    bundle_rebuilds_ = bundle_rebuilds;
  }

  /// Per-sweep-invariant evaluation state: the kernel parameter mirror
  /// (with its hoisted products), the dispatch tier, and the source
  /// CostParams (for the sparse-group scalar short-circuit). Cost params
  /// and the CPU tier are stable across millions of getPlan calls, so
  /// callers on the hot path Prepare() once and reuse; `src` must outlive
  /// every EvalMany that uses the Prepared.
  struct Prepared {
    bundle_kernel::RecostKernelParams kp;
    SimdTier tier;
    const CostParams* src;
  };

  static Prepared Prepare(const CostParams& params) {
    return Prepared{ToKernelParams(params), ActiveTier(), &params};
  }

  /// Evaluates `plan_ids` (every id must be Contains()) against `sv` in
  /// the given order, writing plan_ids[i]'s cost into out_costs[i] and
  /// calling visit(i, cost) after each — visit returns false to stop
  /// early, exactly the RecostService::RecostMany contract. Each group is
  /// evaluated at most once per call (its other requested lanes reuse the
  /// cached pass — that is the batching win); the return value counts only
  /// plans the visitor saw, matching the scalar loop's billing in every
  /// early-exit case.
  template <typename Visitor>
  SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
  SCRPQO_LOCK_BOUNDED()
  size_t EvalMany(std::span<const int> plan_ids, const SVector& sv,
                  const Prepared& prep, std::span<double> out_costs,
                  Visitor&& visit) const {
    // scrpqo-lint: hot-path begin
    SCRPQO_CHECK(out_costs.size() >= plan_ids.size(),
                 "EvalMany output span too small");
    const size_t n = plan_ids.size();
    if (n == 0) return 0;
    // One bundle-wide bound check instead of one per pass: max_slot_
    // tracks the highest sVector slot any live plan binds.
    SCRPQO_CHECK(max_slot_ < static_cast<int>(sv.size()),
                 "selectivity vector too short for recost bundle");
    // Per-call cache of evaluated groups: a done byte per group, and cost
    // rows indexed DIRECTLY by group id — the per-plan loop then computes
    // the row address from ref.group alone (no dependent slot lookup), so
    // the done-byte load and the cost load issue in parallel. Small
    // bundles (the common case: groups are per-shape, so even a 64-plan
    // store holds ~10) use plain stack scratch; only unusually
    // shape-diverse bundles touch the thread's arena (still
    // allocation-free once warmed).
    const size_t ngroups = groups_.size();
    constexpr size_t kStackGroups = 64;
    uint8_t done_stack[kStackGroups];
    double ec_stack[kStackGroups * kMaxLanesPerGroup];
    uint8_t* done = done_stack;
    double* eval_costs = ec_stack;
    std::optional<ScratchArena::Scope> scope;
    if (ngroups > kStackGroups) {
      ScratchArena& arena = ScratchArena::Tls();
      scope.emplace(arena);
      done = arena.AllocateArray<uint8_t>(ngroups);
      eval_costs = arena.AllocateArray<double>(ngroups * kMaxLanesPerGroup);
    }
    std::fill_n(done, ngroups, uint8_t{0});
    size_t visited = 0;
    int64_t lanes_sum = 0;
    const LaneRef* lane_of = lane_of_.data();
    const size_t lane_of_size = lane_of_.size();
    for (size_t i = 0; i < n; ++i) {
      const int id = plan_ids[i];
      SCRPQO_CHECK(id >= 0 && static_cast<size_t>(id) < lane_of_size,
                   "plan id not in recost bundle");
      const LaneRef ref = lane_of[static_cast<size_t>(id)];
      SCRPQO_CHECK(ref.group >= 0, "plan id not in recost bundle");
      double* row =
          eval_costs + static_cast<size_t>(ref.group) * kMaxLanesPerGroup;
      if (done[ref.group] == 0) {
        done[ref.group] = 1;
        const Group& g = groups_[static_cast<size_t>(ref.group)];
        lanes_sum += g.num_active;
        EvalGroup(g, sv, prep, row);
      }
      const double cost = row[ref.lane];
      out_costs[i] = cost;
      ++visited;
      if (!visit(i, cost)) break;
    }
    // One flush per call: a per-pass atomic bump would put ~20 lock-prefix
    // adds on a 64-plan sweep.
    if (lanes_active_ != nullptr && lanes_sum > 0) {
      lanes_active_->Increment(lanes_sum);
    }
    return visited;
    // scrpqo-lint: hot-path end
  }

  /// Convenience overload: prepares per call. Hot paths that sweep many
  /// sVectors against stable cost params should Prepare() once instead.
  template <typename Visitor>
  size_t EvalMany(std::span<const int> plan_ids, const SVector& sv,
                  const CostParams& params, std::span<double> out_costs,
                  Visitor&& visit) const {
    return EvalMany(plan_ids, sv, Prepare(params), out_costs,
                    std::forward<Visitor>(visit));
  }

  /// The kernel tier EvalGroup dispatches to on this process/CPU (after
  /// any ForceTierForTest override).
  static SimdTier ActiveTier();

  /// Tiers runnable here: kScalar4 always, plus the hardware tier when
  /// both compiled in and CPU-supported.
  static std::vector<SimdTier> AvailableTiers();

  /// Test hook: pins dispatch to `tier` (must be in AvailableTiers());
  /// pass force = false to restore auto-detection. Not for concurrent use
  /// with readers.
  static void ForceTierForTest(SimdTier tier, bool force = true);

 private:
  /// 64-byte-aligned double row, RAII around AlignedAlloc.
  class AlignedRow {
   public:
    AlignedRow() = default;
    explicit AlignedRow(std::size_t n)
        : p_(static_cast<double*>(AlignedAlloc(n * sizeof(double)))),
          n_(n) {}
    AlignedRow(AlignedRow&& o) noexcept : p_(o.p_), n_(o.n_) {
      o.p_ = nullptr;
      o.n_ = 0;
    }
    AlignedRow& operator=(AlignedRow&& o) noexcept {
      if (this != &o) {
        AlignedFree(p_);
        p_ = o.p_;
        n_ = o.n_;
        o.p_ = nullptr;
        o.n_ = 0;
      }
      return *this;
    }
    AlignedRow(const AlignedRow&) = delete;
    AlignedRow& operator=(const AlignedRow&) = delete;
    ~AlignedRow() { AlignedFree(p_); }

    double* data() { return p_; }
    const double* data() const { return p_; }
    std::size_t size() const { return n_; }

   private:
    double* p_ = nullptr;
    std::size_t n_ = 0;
  };

  struct Group {
    /// 4-lane SIMD blocks in this group (1..kMaxBlocks). Lane l lives in
    /// block l/kLanes; cell = step*nblocks + block indexes the per-block
    /// step data below.
    int nblocks = 1;
    std::vector<uint8_t> kinds;       // [step]
    AlignedRow a, b, c, sel_lit;      // [cell*kLanes + lane]
    std::vector<uint32_t> sel_begin;  // [cell*kLanes + lane]
    std::vector<uint32_t> sel_end;
    std::vector<int32_t> seek_slot;
    std::vector<int32_t> slots;       // shared pool
    /// Per-cell selectivity / seek fast-path classes (bundle_kernel::kSel*
    /// / kSeek*) and the pre-resolved slot for kSelOneSlot cells — same-
    /// template lanes usually bind identical slots, so most cells collapse
    /// to a scalar product + broadcast instead of per-lane gathers.
    std::vector<uint8_t> sel_mode;    // [cell]
    std::vector<int32_t> sel_slot1;   // [cell*kLanes + lane]
    std::vector<uint8_t> seek_mode;   // [cell]
    /// Step-level hoist: step_sel_shared[step] == 1 when EVERY cell of the
    /// step is kSelUniform with one identical slot list — the kernel then
    /// computes that list's product once per step (begin/end index into
    /// `slots`; zero for unshared steps).
    std::vector<uint8_t> step_sel_shared;   // [step]
    std::vector<uint32_t> step_sel_begin;   // [step]
    std::vector<uint32_t> step_sel_end;     // [step]
    int plan_ids[kMaxLanesPerGroup];
    const RecostProgram* progs[kMaxLanesPerGroup] = {};
    /// Block clustering key per live lane (see BindingHash) — stale for
    /// dead lanes, which every reader skips.
    uint64_t bind_hash[kMaxLanesPerGroup] = {};
    int num_active = 0;
    /// Highest sVector slot any live lane binds.
    int max_slot = -1;
    uint64_t shape_hash = 0;
    /// Kernel view of this group's rows, refreshed after every repack so a
    /// pass starts with zero setup. Pointers target the heap buffers of
    /// the vectors/rows above, so moving the Group (groups_ reallocation)
    /// leaves the view valid.
    bundle_kernel::GroupView view = {};

    Group() {
      for (int l = 0; l < kMaxLanesPerGroup; ++l) plan_ids[l] = -1;
    }
    /// Lanes currently addressable (live or tombstoned).
    int num_lanes() const { return nblocks * kLanes; }
  };

  struct LaneRef {
    int group;
    int lane;
  };

  static bundle_kernel::RecostKernelParams ToKernelParams(
      const CostParams& p);
  static uint64_t ShapeHash(const RecostProgram& program);
  static uint64_t BindingHash(const RecostProgram& program);
  static bool ShapeMatches(const Group& g, const RecostProgram& program);

  /// Free-lane probe for one group: `clean` is a free lane in a block
  /// whose live lanes all carry binding hash `bh` (-1 if none), `any` the
  /// first free lane overall.
  struct LaneProbe {
    int clean = -1;
    int any = -1;
  };
  static LaneProbe ProbeLanes(const Group& g, uint64_t bh);

  /// Writes `program`'s coefficients into `lane` of `g` and re-pads the
  /// group's dead lanes.
  void PackLane(Group& g, int lane, int plan_id,
                const RecostProgram* program);
  /// Rebuilds group `gi` with one more block (same shape, all live lanes
  /// repacked densely; lane_of_ updated). Requires nblocks < kMaxBlocks.
  void GrowGroup(int gi);
  void PadDeadLanes(Group& g);
  /// Reclassifies per-cell fast-path modes AND refreshes g.view — the
  /// final step of every repack.
  void RecomputeSelModes(Group& g);
  void Compact();

  /// One pass over `g`: every lane's cost into out_cost[0..num_lanes()).
  /// Single-live-lane groups short-circuit to the plan's own scalar Run.
  void EvalGroup(const Group& g, const SVector& sv, const Prepared& prep,
                 double* out_cost) const;

  std::vector<Group> groups_;
  /// Dense plan-id -> lane map ({-1,-1} = absent); plan ids index
  /// PlanStore's entry vector, so this stays small and never sparse.
  std::vector<LaneRef> lane_of_;
  int num_plans_ = 0;
  /// Highest sVector slot bound by ANY live plan — EvalMany's single
  /// bound check. Maintained by Add/Remove/Clear.
  int max_slot_ = -1;
  /// shape_hash -> indices into groups_ (collisions resolved by
  /// ShapeMatches).
  std::unordered_map<uint64_t, std::vector<int>> shape_index_;
  int tombstones_ = 0;
  int64_t rebuilds_ = 0;
  Counter* lanes_active_ = nullptr;
  Counter* bundle_rebuilds_ = nullptr;
};

}  // namespace scrpqo

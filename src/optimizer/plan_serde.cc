#include "optimizer/plan_serde.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace scrpqo {

namespace {

// ---- writing ----

void WriteEscaped(const std::string& s, std::ostringstream* os) {
  *os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *os << '\\';
    *os << c;
  }
  *os << '"';
}

void WriteDouble(double v, std::ostringstream* os) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *os << buf;
}

void WriteValue(const Value& v, std::ostringstream* os) {
  switch (v.type()) {
    case DataType::kInt64:
      *os << "i" << v.int64();
      break;
    case DataType::kDouble:
      *os << "d";
      WriteDouble(v.dbl(), os);
      break;
    case DataType::kString:
      *os << "s";
      WriteEscaped(v.str(), os);
      break;
  }
}

void WriteNode(const PhysicalPlanNode& n, std::ostringstream* os) {
  *os << "(" << static_cast<int>(n.kind);
  // Leaf payload.
  *os << " leaf[" << n.leaf.table_index << " ";
  WriteEscaped(n.leaf.table, os);
  *os << " ";
  WriteDouble(n.leaf.base_rows, os);
  *os << " ";
  WriteEscaped(n.leaf.index_column, os);
  *os << " " << n.leaf.seek_pred << " preds(";
  for (const auto& p : n.leaf.preds) {
    *os << "{";
    WriteEscaped(p.column, os);
    *os << " " << static_cast<int>(p.op) << " " << p.param_slot << " ";
    WriteValue(p.literal, os);
    *os << " ";
    WriteDouble(p.literal_sel, os);
    *os << "}";
  }
  *os << ")]";
  // Join payload.
  *os << " join[";
  WriteDouble(n.join.join_sel, os);
  *os << " ";
  WriteDouble(n.join.per_probe_sel, os);
  *os << " edges(";
  for (const auto& e : n.join.edges) {
    *os << "{" << e.left_table << " ";
    WriteEscaped(e.left_column, os);
    *os << " " << e.right_table << " ";
    WriteEscaped(e.right_column, os);
    *os << "}";
  }
  *os << ")]";
  // Aggregate payload.
  *os << " agg[" << n.agg.group_table << " ";
  WriteEscaped(n.agg.group_column, os);
  *os << " ";
  WriteDouble(n.agg.group_distinct, os);
  *os << "]";
  // Sort key / output order.
  *os << " sort[" << n.sort_key.table << " ";
  WriteEscaped(n.sort_key.column, os);
  *os << "]";
  *os << " order[";
  if (n.output_order.has_value()) {
    *os << n.output_order->table << " ";
    WriteEscaped(n.output_order->column, os);
  }
  *os << "]";
  // Derived estimates (for the instance originally optimized).
  *os << " est[";
  WriteDouble(n.est_rows, os);
  *os << " ";
  WriteDouble(n.est_cost, os);
  *os << " ";
  WriteDouble(n.est_local_cost, os);
  *os << "]";
  *os << " children(";
  for (const auto& c : n.children) WriteNode(*c, os);
  *os << "))";
}

// ---- reading ----

class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("plan parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWs() {
    while (pos_ < data_.size() &&
           std::isspace(static_cast<unsigned char>(data_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < data_.size() && data_[pos_] == c;
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= data_.size() || data_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ExpectTag(const std::string& tag) {
    SkipWs();
    if (data_.compare(pos_, tag.size(), tag) != 0) {
      return Error("expected '" + tag + "'");
    }
    pos_ += tag.size();
    return Status::OK();
  }

  Status ReadInt(int64_t* out) {
    SkipWs();
    size_t start = pos_;
    if (pos_ < data_.size() && (data_[pos_] == '-' || data_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < data_.size() &&
           std::isdigit(static_cast<unsigned char>(data_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected integer");
    *out = std::strtoll(data_.substr(start, pos_ - start).c_str(), nullptr,
                        10);
    return Status::OK();
  }

  Status ReadDouble(double* out) {
    SkipWs();
    const char* begin = data_.c_str() + pos_;
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    if (end == begin) return Error("expected number");
    pos_ += static_cast<size_t>(end - begin);
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    SkipWs();
    if (pos_ >= data_.size() || data_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < data_.size() && data_[pos_] != '"') {
      if (data_[pos_] == '\\' && pos_ + 1 < data_.size()) ++pos_;
      out->push_back(data_[pos_++]);
    }
    if (pos_ >= data_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ReadValue(Value* out) {
    SkipWs();
    if (pos_ >= data_.size()) return Error("expected value");
    char tag = data_[pos_++];
    switch (tag) {
      case 'i': {
        int64_t v;
        SCRPQO_RETURN_NOT_OK(ReadInt(&v));
        *out = Value(v);
        return Status::OK();
      }
      case 'd': {
        double v;
        SCRPQO_RETURN_NOT_OK(ReadDouble(&v));
        *out = Value(v);
        return Status::OK();
      }
      case 's': {
        std::string v;
        SCRPQO_RETURN_NOT_OK(ReadString(&v));
        *out = Value(std::move(v));
        return Status::OK();
      }
      default:
        return Error("unknown value tag");
    }
  }

  Status ReadNode(std::shared_ptr<PhysicalPlanNode>* out) {
    SCRPQO_RETURN_NOT_OK(Expect('('));
    auto node = std::make_shared<PhysicalPlanNode>();
    int64_t kind;
    SCRPQO_RETURN_NOT_OK(ReadInt(&kind));
    if (kind < 0 || kind > static_cast<int>(PhysicalOpKind::kStreamAggregate)) {
      return Error("invalid operator kind");
    }
    node->kind = static_cast<PhysicalOpKind>(kind);

    SCRPQO_RETURN_NOT_OK(ExpectTag("leaf["));
    int64_t ti;
    SCRPQO_RETURN_NOT_OK(ReadInt(&ti));
    node->leaf.table_index = static_cast<int>(ti);
    SCRPQO_RETURN_NOT_OK(ReadString(&node->leaf.table));
    SCRPQO_RETURN_NOT_OK(ReadDouble(&node->leaf.base_rows));
    SCRPQO_RETURN_NOT_OK(ReadString(&node->leaf.index_column));
    int64_t seek;
    SCRPQO_RETURN_NOT_OK(ReadInt(&seek));
    node->leaf.seek_pred = static_cast<int>(seek);
    SCRPQO_RETURN_NOT_OK(ExpectTag("preds("));
    while (Peek('{')) {
      SCRPQO_RETURN_NOT_OK(Expect('{'));
      PredSpec p;
      SCRPQO_RETURN_NOT_OK(ReadString(&p.column));
      int64_t op, slot;
      SCRPQO_RETURN_NOT_OK(ReadInt(&op));
      SCRPQO_RETURN_NOT_OK(ReadInt(&slot));
      p.op = static_cast<CompareOp>(op);
      p.param_slot = static_cast<int>(slot);
      SCRPQO_RETURN_NOT_OK(ReadValue(&p.literal));
      SCRPQO_RETURN_NOT_OK(ReadDouble(&p.literal_sel));
      SCRPQO_RETURN_NOT_OK(Expect('}'));
      node->leaf.preds.push_back(std::move(p));
    }
    SCRPQO_RETURN_NOT_OK(Expect(')'));
    SCRPQO_RETURN_NOT_OK(Expect(']'));

    SCRPQO_RETURN_NOT_OK(ExpectTag("join["));
    SCRPQO_RETURN_NOT_OK(ReadDouble(&node->join.join_sel));
    SCRPQO_RETURN_NOT_OK(ReadDouble(&node->join.per_probe_sel));
    SCRPQO_RETURN_NOT_OK(ExpectTag("edges("));
    while (Peek('{')) {
      SCRPQO_RETURN_NOT_OK(Expect('{'));
      JoinEdge e;
      int64_t lt, rt;
      SCRPQO_RETURN_NOT_OK(ReadInt(&lt));
      SCRPQO_RETURN_NOT_OK(ReadString(&e.left_column));
      SCRPQO_RETURN_NOT_OK(ReadInt(&rt));
      SCRPQO_RETURN_NOT_OK(ReadString(&e.right_column));
      e.left_table = static_cast<int>(lt);
      e.right_table = static_cast<int>(rt);
      SCRPQO_RETURN_NOT_OK(Expect('}'));
      node->join.edges.push_back(std::move(e));
    }
    SCRPQO_RETURN_NOT_OK(Expect(')'));
    SCRPQO_RETURN_NOT_OK(Expect(']'));

    SCRPQO_RETURN_NOT_OK(ExpectTag("agg["));
    int64_t gt;
    SCRPQO_RETURN_NOT_OK(ReadInt(&gt));
    node->agg.group_table = static_cast<int>(gt);
    SCRPQO_RETURN_NOT_OK(ReadString(&node->agg.group_column));
    SCRPQO_RETURN_NOT_OK(ReadDouble(&node->agg.group_distinct));
    SCRPQO_RETURN_NOT_OK(Expect(']'));

    SCRPQO_RETURN_NOT_OK(ExpectTag("sort["));
    int64_t st;
    SCRPQO_RETURN_NOT_OK(ReadInt(&st));
    node->sort_key.table = static_cast<int>(st);
    SCRPQO_RETURN_NOT_OK(ReadString(&node->sort_key.column));
    SCRPQO_RETURN_NOT_OK(Expect(']'));

    SCRPQO_RETURN_NOT_OK(ExpectTag("order["));
    if (!Peek(']')) {
      SortKey key;
      int64_t ot;
      SCRPQO_RETURN_NOT_OK(ReadInt(&ot));
      key.table = static_cast<int>(ot);
      SCRPQO_RETURN_NOT_OK(ReadString(&key.column));
      node->output_order = key;
    }
    SCRPQO_RETURN_NOT_OK(Expect(']'));

    SCRPQO_RETURN_NOT_OK(ExpectTag("est["));
    SCRPQO_RETURN_NOT_OK(ReadDouble(&node->est_rows));
    SCRPQO_RETURN_NOT_OK(ReadDouble(&node->est_cost));
    SCRPQO_RETURN_NOT_OK(ReadDouble(&node->est_local_cost));
    SCRPQO_RETURN_NOT_OK(Expect(']'));

    SCRPQO_RETURN_NOT_OK(ExpectTag("children("));
    while (Peek('(')) {
      std::shared_ptr<PhysicalPlanNode> child;
      SCRPQO_RETURN_NOT_OK(ReadNode(&child));
      node->children.push_back(std::move(child));
    }
    SCRPQO_RETURN_NOT_OK(Expect(')'));
    SCRPQO_RETURN_NOT_OK(Expect(')'));
    *out = std::move(node);
    return Status::OK();
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= data_.size();
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializePlan(const PhysicalPlanNode& plan) {
  std::ostringstream os;
  WriteNode(plan, &os);
  return os.str();
}

Result<PlanPtr> DeserializePlan(const std::string& data) {
  Reader reader(data);
  std::shared_ptr<PhysicalPlanNode> root;
  Status st = reader.ReadNode(&root);
  if (!st.ok()) return st;
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing data after plan");
  }
  return PlanPtr(root);
}

}  // namespace scrpqo

// The Recost API (paper Appendix B).
//
// After optimizing instance qe, the engine extracts the winning plan from
// the Memo and prunes away all groups/expressions not on the final plan —
// the paper's "shrunkenMemo". Here CachedPlan is that cacheable
// representation: the plan tree (which carries instance-independent
// cardinality-derivation metadata) plus its identity and creation-time memo
// statistics. Recost rebinds parameterized leaf selectivities and re-derives
// cardinality and cost bottom-up — arithmetic only, no plan search — which
// is why it is orders of magnitude cheaper than an optimizer call.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/physical_plan.h"
#include "optimizer/plan_signature.h"
#include "query/query_instance.h"

namespace scrpqo {

/// \brief A cached, re-costable execution plan ("shrunkenMemo").
struct CachedPlan {
  PlanPtr plan;
  uint64_t signature = 0;
  /// Memo size when the plan was produced vs. retained nodes — the basis of
  /// the ">= 70% pruning" observation in Appendix B.
  int memo_physical_exprs = 0;
  int retained_nodes = 0;

  double PruningRatio() const {
    if (memo_physical_exprs <= 0) return 0.0;
    return 1.0 - static_cast<double>(retained_nodes) /
                     static_cast<double>(memo_physical_exprs);
  }
};

/// Builds the cacheable representation from an optimizer result.
CachedPlan MakeCachedPlan(const OptimizationResult& result);

/// \brief Engine API #2 (paper Appendix B): Cost(P, q) for an arbitrary
/// already-cached plan P and query instance q, given q's selectivity vector.
class RecostService {
 public:
  explicit RecostService(const CostModel* cost_model)
      : cost_model_(cost_model) {}

  /// Re-derives the plan's cost for `sv`. Thread-compatible and allocation-
  /// free on the hot path.
  [[nodiscard]] double Recost(const CachedPlan& plan,
                              const SVector& sv) const {
    ++num_calls_;
    return cost_model_->RecostTree(*plan.plan, sv);
  }

  int64_t num_calls() const { return num_calls_; }
  void ResetCounters() { num_calls_ = 0; }

 private:
  const CostModel* cost_model_;
  mutable int64_t num_calls_ = 0;
};

}  // namespace scrpqo

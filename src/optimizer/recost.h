// The Recost API (paper Appendix B).
//
// After optimizing instance qe, the engine extracts the winning plan from
// the Memo and prunes away all groups/expressions not on the final plan —
// the paper's "shrunkenMemo". Here CachedPlan is that cacheable
// representation: the plan tree (which carries instance-independent
// cardinality-derivation metadata), its compiled flat recost program, and
// its identity and creation-time memo statistics. Recost rebinds
// parameterized leaf selectivities and re-derives cardinality and cost
// bottom-up — arithmetic only, no plan search — which is why it is orders
// of magnitude cheaper than an optimizer call. The flat program makes the
// arithmetic a single linear scan (see recost_program.h); the tree walker
// remains as the reference path for hand-built CachedPlans.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/effects.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "optimizer/physical_plan.h"
#include "optimizer/plan_signature.h"
#include "optimizer/recost_program.h"
#include "query/query_instance.h"

namespace scrpqo {

/// \brief A cached, re-costable execution plan ("shrunkenMemo").
struct CachedPlan {
  PlanPtr plan;
  /// Flat postorder recost program compiled from `plan` at MakeCachedPlan
  /// time; empty for hand-assembled CachedPlans (Recost then falls back to
  /// the tree walker).
  RecostProgram program;
  uint64_t signature = 0;
  /// Memo size when the plan was produced vs. retained nodes — the basis of
  /// the ">= 70% pruning" observation in Appendix B.
  int memo_physical_exprs = 0;
  int retained_nodes = 0;

  double PruningRatio() const {
    if (memo_physical_exprs <= 0) return 0.0;
    return 1.0 - static_cast<double>(retained_nodes) /
                     static_cast<double>(memo_physical_exprs);
  }
};

/// Builds the cacheable representation from an optimizer result, compiling
/// the flat recost program as part of plan extraction.
CachedPlan MakeCachedPlan(const OptimizationResult& result);

/// \brief Engine API #2 (paper Appendix B): Cost(P, q) for an arbitrary
/// already-cached plan P and query instance q, given q's selectivity vector.
class RecostService {
 public:
  explicit RecostService(const CostModel* cost_model)
      : cost_model_(cost_model) {}

  /// Re-derives the plan's cost for `sv`. Thread-safe and allocation-free
  /// on the hot path.
  [[nodiscard]] SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING
  SCRPQO_FP_DETERMINISTIC SCRPQO_NOTHROW SCRPQO_LOCK_BOUNDED()
  double Recost(const CachedPlan& plan,
                const SVector& sv) const {
    num_calls_.fetch_add(1, std::memory_order_relaxed);
    return RecostNoCount(plan, sv);
  }

  /// \brief Batch Recost: scans `plans` in order, writing plans[i]'s cost
  /// for `sv` into `out_costs[i]`. After each program scan `visit(i, cost)`
  /// decides whether to continue (`true`) or stop early (`false`) — e.g.
  /// the redundancy sweep stops once the running best already beats
  /// lambda_r, and SCR's cost check stops at the first passing candidate.
  /// Returns the number of plans actually re-costed (each is charged as
  /// one Recost call).
  ///
  /// Runs of consecutive block-eligible programs (compiled, small, fully
  /// bound — see RecostBlockEligible) execute through the 4-way pipelined
  /// block interpreter; ineligible plans fall back to one scalar pass.
  /// Visit order, per-plan costs, and — because billing counts only plans
  /// the visitor saw — the charged call count are all identical to the
  /// one-Run-per-plan loop; a mid-block early exit merely discards lane
  /// results that were computed for free.
  template <typename Visitor>
  SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
  SCRPQO_LOCK_BOUNDED()
  size_t RecostMany(std::span<const CachedPlan* const> plans,
                    const SVector& sv, std::span<double> out_costs,
                    Visitor&& visit) const {
    SCRPQO_CHECK(out_costs.size() >= plans.size(),
                 "RecostMany output span too small");
    size_t visited = 0;
    size_t i = 0;
    bool stop = false;
    while (i < plans.size() && !stop) {
      const RecostProgram* progs[kRecostBlockLanes];
      int n = 0;
      while (n < kRecostBlockLanes && i + static_cast<size_t>(n) <
                                          plans.size()) {
        const RecostProgram& prog = plans[i + static_cast<size_t>(n)]->program;
        if (!RecostBlockEligible(prog, sv.size())) break;
        progs[n] = &prog;
        ++n;
      }
      if (n >= 2) {
        double costs[kRecostBlockLanes];
        RunRecostBlock(progs, n, sv, cost_model_->params(), costs);
        for (int l = 0; l < n; ++l) {
          out_costs[i + static_cast<size_t>(l)] = costs[l];
          ++visited;
          if (!visit(i + static_cast<size_t>(l), costs[l])) {
            stop = true;
            break;
          }
        }
        i += static_cast<size_t>(n);
      } else {
        const double c = RecostNoCount(*plans[i], sv);
        out_costs[i] = c;
        ++visited;
        if (!visit(i, c)) stop = true;
        ++i;
      }
    }
    num_calls_.fetch_add(static_cast<int64_t>(visited),
                         std::memory_order_relaxed);
    return visited;
  }

  size_t RecostMany(std::span<const CachedPlan* const> plans,
                    const SVector& sv, std::span<double> out_costs) const {
    return RecostMany(plans, sv, out_costs,
                      [](size_t, double) { return true; });
  }

  int64_t num_calls() const {
    return num_calls_.load(std::memory_order_relaxed);
  }
  void ResetCounters() { num_calls_.store(0, std::memory_order_relaxed); }

  /// Bills `n` Recost-equivalent evaluations performed outside this
  /// service (RecostBundle::EvalMany visits), keeping num_calls() the
  /// single source of recost accounting.
  void ChargeCalls(int64_t n) const {
    num_calls_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  double RecostNoCount(const CachedPlan& plan, const SVector& sv) const {
    if (!plan.program.empty()) {
      return plan.program.Run(sv, cost_model_->params());
    }
    return cost_model_->RecostTree(*plan.plan, sv);
  }

  const CostModel* cost_model_;
  /// Relaxed atomic: bumped from the const hot path by concurrent getPlan
  /// readers (a plain mutable int64_t here would be a data race).
  mutable std::atomic<int64_t> num_calls_{0};
};

}  // namespace scrpqo

// Memo-based top-down query optimizer.
//
// The search space is the space of join orders (all connected bushy trees)
// times physical alternatives per operator (scan vs. index seek; hash,
// merge, indexed and naive nested-loops joins; hash vs. stream aggregation)
// with sort-order physical properties and Sort enforcers — a compact
// Cascades-style optimizer in the spirit of the Microsoft SQL Server engine
// the paper instruments. Groups are memoized by table subset (bitset) and
// winners are memoized per (group, required order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"
#include "query/query_instance.h"
#include "storage/database.h"

namespace scrpqo {

/// Search-space statistics reported per optimizer call (also the basis for
/// the shrunkenMemo pruning figure, Appendix B).
struct MemoStats {
  int num_groups = 0;
  /// Logical alternatives considered (join splits + leaves).
  int num_logical_exprs = 0;
  /// Physical candidates costed.
  int num_physical_exprs = 0;
  /// Nodes in the winning plan.
  int plan_nodes = 0;
};

struct OptimizationResult {
  PlanPtr plan;
  double cost = 0.0;
  SVector svector;
  MemoStats stats;
};

struct OptimizerOptions {
  bool enable_merge_join = true;
  bool enable_indexed_nlj = true;
  bool enable_naive_nlj = true;
  bool enable_index_seek = true;
  CostParams cost_params;
};

class Optimizer {
 public:
  explicit Optimizer(const Database* db,
                     OptimizerOptions options = OptimizerOptions())
      : db_(db), options_(options), cost_model_(options.cost_params) {}

  const CostModel& cost_model() const { return cost_model_; }
  const Database& db() const { return *db_; }

  /// Full optimization: computes the sVector and the cheapest plan.
  OptimizationResult Optimize(const QueryInstance& instance) const;

  /// Optimization with a precomputed sVector (avoids re-estimating when the
  /// caller already ran the sVector API).
  OptimizationResult OptimizeWithSVector(const QueryInstance& instance,
                                         const SVector& sv) const;

 private:
  const Database* db_;
  OptimizerOptions options_;
  CostModel cost_model_;
};

}  // namespace scrpqo

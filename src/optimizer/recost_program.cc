#include "optimizer/recost_program.h"

#include <algorithm>

#include "common/status.h"
#include "optimizer/cost_formulas.h"

namespace scrpqo {

namespace {

/// Appends the leaf's parameterized binding slots to `slots` (in predicate
/// order) and returns the product of its literal-pred selectivities.
/// Splitting literals from parameterized slots lets Run fold all literal
/// factors at compile time; the reordering shifts the product by ~1 ulp
/// relative to LeafSelectivity's interleaved order, which the equivalence
/// tolerance absorbs.
double AppendBinding(const LeafInfo& leaf, std::vector<int32_t>* slots,
                     int* max_slot) {
  double lit = 1.0;
  for (const PredSpec& pred : leaf.preds) {
    if (pred.parameterized()) {
      slots->push_back(pred.param_slot);
      *max_slot = std::max(*max_slot, pred.param_slot);
    } else {
      lit *= pred.literal_sel;
    }
  }
  return lit;
}

}  // namespace

void RecostProgram::Emit(const PhysicalPlanNode& node) {
  SCRPQO_CHECK(node.children.size() <= 2,
               "recost program supports at most binary operators");
  // Postorder: children first, so their {rows, cost} sit on the value
  // stack when the parent op executes. The INLJ inner leaf is elided
  // entirely: its standalone derivation is popped-but-ignored by the tree
  // walker, and the INLJ op below carries every inner quantity the formula
  // needs (base rows, per-probe matches, binding slots) — so skipping it
  // is bitwise identical and drops a whole leaf derivation (including its
  // selectivity product) from the hot scan.
  if (!node.children.empty()) Emit(*node.children[0]);
  if (node.children.size() > 1 &&
      node.kind != PhysicalOpKind::kIndexedNestedLoopsJoin) {
    Emit(*node.children[1]);
  }

  Op op;
  op.kind = static_cast<uint8_t>(node.kind);
  op.sel_begin = static_cast<uint32_t>(slots_.size());

  switch (node.kind) {
    case PhysicalOpKind::kTableScan:
    case PhysicalOpKind::kIndexScanOrdered:
      op.a = node.leaf.base_rows;
      op.sel_lit = AppendBinding(node.leaf, &slots_, &max_slot_);
      break;
    case PhysicalOpKind::kIndexSeek: {
      const LeafInfo& leaf = node.leaf;
      op.a = leaf.base_rows;
      op.sel_lit = AppendBinding(leaf, &slots_, &max_slot_);
      // seek_pred == -1 (parent-driven INLJ inner) derives with the full
      // index walk's seek_sel = 1, matching the tree walker.
      op.c = 1.0;
      if (leaf.seek_pred >= 0) {
        SCRPQO_CHECK(leaf.seek_pred < static_cast<int>(leaf.preds.size()),
                     "seek_pred out of range while compiling recost program");
        const PredSpec& pred =
            leaf.preds[static_cast<size_t>(leaf.seek_pred)];
        if (pred.parameterized()) {
          op.seek_slot = pred.param_slot;
          max_slot_ = std::max(max_slot_, pred.param_slot);
        } else {
          op.c = pred.literal_sel;
        }
      }
      break;
    }
    case PhysicalOpKind::kSort:
      SCRPQO_CHECK(!node.children.empty(), "Sort requires a child");
      break;
    case PhysicalOpKind::kHashJoin:
    case PhysicalOpKind::kMergeJoin:
    case PhysicalOpKind::kNaiveNestedLoopsJoin:
      SCRPQO_CHECK(node.children.size() == 2, "join requires two children");
      op.a = node.join.join_sel;
      break;
    case PhysicalOpKind::kIndexedNestedLoopsJoin: {
      SCRPQO_CHECK(node.children.size() == 2,
                   "IndexedNLJ requires two children");
      SCRPQO_CHECK(node.children[1]->is_leaf(),
                   "IndexedNLJ inner must be a single-table leaf");
      // The inner leaf's binding lives on this op: the INLJ formula needs
      // the inner's full predicate selectivity (to rebind parameterized
      // inner predicates on Recost). The inner leaf itself was never
      // emitted — its standalone derivation is ignored by the formula, so
      // this op executes as a unary rewrite of the outer's stack slot.
      const LeafInfo& inner = node.children[1]->leaf;
      op.a = node.join.join_sel;
      op.b = inner.base_rows * node.join.per_probe_sel;
      op.c = inner.base_rows;
      op.sel_lit = AppendBinding(inner, &slots_, &max_slot_);
      break;
    }
    case PhysicalOpKind::kHashAggregate:
    case PhysicalOpKind::kStreamAggregate:
      SCRPQO_CHECK(!node.children.empty(), "aggregate requires a child");
      op.a = node.agg.group_distinct;
      break;
  }

  op.sel_end = static_cast<uint32_t>(slots_.size());
  ops_.push_back(op);
}

RecostProgram RecostProgram::Compile(const PhysicalPlanNode& root) {
  RecostProgram program;
  program.Emit(root);
  // Emit grows by push_back, so capacity can be up to 2x size. Compiled
  // programs are immutable from here on and live for the cache lifetime of
  // their plan; shrinking makes memory_bytes() exact instead of a
  // growth-policy overshoot (which inflated PqoManager's
  // global_memory_bytes eviction pressure).
  program.ops_.shrink_to_fit();
  program.slots_.shrink_to_fit();
  return program;
}

}  // namespace scrpqo

#include "optimizer/plan_validate.h"

#include <cmath>
#include <cstdint>
#include <string>

namespace scrpqo {

namespace {

std::string Describe(const PhysicalPlanNode& n) {
  return PhysicalOpName(n.kind);
}

/// Relative slack when comparing cumulative cost annotations; absorbs the
/// float reassociation between Combine() and the per-child sums.
constexpr double kCostSlack = 1e-9;

std::string FmtCost(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Cost/cardinality annotations must be finite, non-negative, and
/// monotone: est_cost is cumulative (includes children), so a parent
/// cheaper than one of its children means the annotations were corrupted
/// (e.g. by a bad serde round-trip or a cache tamper) and any Recost or
/// guarantee arithmetic derived from them would be garbage.
Status ValidateEstimates(const PhysicalPlanNode& n) {
  for (double v : {n.est_rows, n.est_cost, n.est_local_cost}) {
    if (!std::isfinite(v)) {
      return Status::Internal(Describe(n) +
                              ": non-finite cost/cardinality annotation");
    }
  }
  if (n.est_rows < 0.0 || n.est_cost < 0.0) {
    return Status::Internal(Describe(n) + ": negative cost annotation");
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    // The INLJ inner leaf is accessed through the index, so its standalone
    // scan cost is deliberately excluded from the parent's cumulative cost
    // (see CostModel::Combine) and may legitimately exceed it.
    if (n.kind == PhysicalOpKind::kIndexedNestedLoopsJoin && i == 1) {
      continue;
    }
    const auto& c = n.children[i];
    if (c->est_cost > n.est_cost * (1.0 + kCostSlack)) {
      return Status::Internal(
          Describe(n) + ": non-monotone cost annotation (parent est_cost " +
          FmtCost(n.est_cost) + " < child est_cost " + FmtCost(c->est_cost) +
          ")");
    }
  }
  return Status::OK();
}

/// Recursive validation; fills `tables` with the bitset of template tables
/// produced by the subtree.
Status ValidateRec(const PhysicalPlanNode& n, const QueryTemplate& tmpl,
                   const Catalog& catalog, uint32_t* tables) {
  *tables = 0;
  SCRPQO_RETURN_NOT_OK(ValidateEstimates(n));

  // Child-count expectations.
  size_t expected_children = 0;
  if (n.is_join()) {
    expected_children = 2;
  } else if (n.kind == PhysicalOpKind::kSort ||
             n.kind == PhysicalOpKind::kHashAggregate ||
             n.kind == PhysicalOpKind::kStreamAggregate) {
    expected_children = 1;
  }
  if (n.children.size() != expected_children) {
    return Status::Internal(Describe(n) + " has " +
                            std::to_string(n.children.size()) +
                            " children, expected " +
                            std::to_string(expected_children));
  }

  // Validate children and collect their table sets.
  uint32_t child_tables[2] = {0, 0};
  for (size_t i = 0; i < n.children.size(); ++i) {
    SCRPQO_RETURN_NOT_OK(
        ValidateRec(*n.children[i], tmpl, catalog, &child_tables[i]));
  }

  if (n.is_leaf()) {
    int t = n.leaf.table_index;
    if (t < 0 || t >= tmpl.num_tables()) {
      return Status::Internal(Describe(n) + ": invalid table_index " +
                              std::to_string(t));
    }
    const std::string& table = tmpl.tables()[static_cast<size_t>(t)];
    if (n.leaf.table != table) {
      return Status::Internal(Describe(n) + ": table name '" + n.leaf.table +
                              "' does not match template table '" + table +
                              "'");
    }
    const TableDef& def = catalog.GetTable(table);
    for (const auto& p : n.leaf.preds) {
      if (!def.HasColumn(p.column)) {
        return Status::Internal(Describe(n) + ": predicate on unknown column " +
                                table + "." + p.column);
      }
    }
    if (n.kind == PhysicalOpKind::kIndexSeek ||
        n.kind == PhysicalOpKind::kIndexScanOrdered) {
      if (def.FindIndexOn(n.leaf.index_column) == nullptr) {
        return Status::Internal(Describe(n) + ": no index on " + table + "." +
                                n.leaf.index_column);
      }
      if (n.leaf.seek_pred >= 0) {
        if (n.leaf.seek_pred >= static_cast<int>(n.leaf.preds.size())) {
          return Status::Internal(Describe(n) + ": seek_pred out of range");
        }
        if (n.leaf.preds[static_cast<size_t>(n.leaf.seek_pred)].column !=
            n.leaf.index_column) {
          return Status::Internal(
              Describe(n) + ": seek predicate is not on the index column");
        }
      }
    }
    *tables = 1u << t;
  } else if (n.is_join()) {
    if (n.join.edges.empty()) {
      return Status::Internal(Describe(n) + ": join without edges");
    }
    if (!(n.join.join_sel > 0.0) || n.join.join_sel > 1.0) {
      return Status::Internal(Describe(n) + ": join_sel out of (0, 1]");
    }
    for (const auto& e : n.join.edges) {
      bool left_ok = (child_tables[0] >> e.left_table) & 1u;
      bool right_ok = (child_tables[1] >> e.right_table) & 1u;
      if (!left_ok || !right_ok) {
        return Status::Internal(Describe(n) + ": edge " + e.ToString() +
                                " references tables outside its children");
      }
    }
    if (n.kind == PhysicalOpKind::kMergeJoin) {
      const JoinEdge& key = n.join.edges[0];
      SortKey lk{key.left_table, key.left_column};
      SortKey rk{key.right_table, key.right_column};
      const auto& lo = n.children[0]->output_order;
      const auto& ro = n.children[1]->output_order;
      if (!lo.has_value() || !(*lo == lk) || !ro.has_value() ||
          !(*ro == rk)) {
        return Status::Internal(
            "MergeJoin children are not sorted on the merge keys");
      }
    }
    if (n.kind == PhysicalOpKind::kIndexedNestedLoopsJoin) {
      if (!n.children[1]->is_leaf()) {
        return Status::Internal("IndexedNLJ inner must be a leaf");
      }
      if (n.children[1]->leaf.index_column !=
          n.join.edges[0].right_column) {
        return Status::Internal(
            "IndexedNLJ inner index does not match the seek edge");
      }
      if (!(n.join.per_probe_sel > 0.0) || n.join.per_probe_sel > 1.0) {
        return Status::Internal("IndexedNLJ per_probe_sel out of (0, 1]");
      }
    }
    *tables = child_tables[0] | child_tables[1];
  } else if (n.kind == PhysicalOpKind::kSort) {
    if (!((child_tables[0] >> n.sort_key.table) & 1u)) {
      return Status::Internal("Sort key " + n.sort_key.ToString() +
                              " references a table absent from its subtree");
    }
    *tables = child_tables[0];
  } else {  // aggregates
    if (!((child_tables[0] >> n.agg.group_table) & 1u)) {
      return Status::Internal(
          Describe(n) + ": group table absent from its subtree");
    }
    if (n.kind == PhysicalOpKind::kStreamAggregate) {
      SortKey key{n.agg.group_table, n.agg.group_column};
      const auto& order = n.children[0]->output_order;
      if (!order.has_value() || !(*order == key)) {
        return Status::Internal(
            "StreamAggregate child is not sorted on the group column");
      }
    }
    *tables = child_tables[0];
  }

  // Declared output order must reference a produced table.
  if (n.output_order.has_value() &&
      !((*tables >> n.output_order->table) & 1u)) {
    return Status::Internal(Describe(n) + ": output order " +
                            n.output_order->ToString() +
                            " references a table it does not produce");
  }
  return Status::OK();
}

}  // namespace

Status ValidatePlan(const PhysicalPlanNode& plan, const QueryTemplate& tmpl,
                    const Catalog& catalog) {
  uint32_t tables = 0;
  return ValidateRec(plan, tmpl, catalog, &tables);
}

}  // namespace scrpqo

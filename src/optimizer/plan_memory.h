// Memory accounting for cached plans (paper Section 6.1): the plan list
// dominates cache memory (each re-costable plan representation runs to
// hundreds of KB in the paper's engine), while instance-list 5-tuples are
// ~100 bytes each. These estimators let the PQO layer report both.
#pragma once

#include <cstdint>

#include "optimizer/physical_plan.h"

namespace scrpqo {

/// Estimated heap bytes held by one plan tree, counting node structs,
/// child vectors, predicate specs and strings.
int64_t PlanMemoryBytes(const PhysicalPlanNode& plan);

/// Estimated bytes of one instance-list entry with dimensionality d
/// (the 5-tuple <V, PP, C, S, U> of Section 6.1).
int64_t InstanceEntryBytes(int dimensions);

}  // namespace scrpqo

#include "optimizer/recost_bundle.h"

#include <algorithm>
#include <atomic>

#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"

namespace scrpqo {

namespace bk = bundle_kernel;

// The kernel header deliberately mirrors (rather than includes) the
// optimizer types so the AVX2 TU never instantiates shared heavy headers.
// This TU sees both sides; pin the mirrors to the real definitions.
static_assert(static_cast<int>(bk::KernelOpKind::kTableScan) ==
              static_cast<int>(PhysicalOpKind::kTableScan));
static_assert(static_cast<int>(bk::KernelOpKind::kIndexSeek) ==
              static_cast<int>(PhysicalOpKind::kIndexSeek));
static_assert(static_cast<int>(bk::KernelOpKind::kIndexScanOrdered) ==
              static_cast<int>(PhysicalOpKind::kIndexScanOrdered));
static_assert(static_cast<int>(bk::KernelOpKind::kSort) ==
              static_cast<int>(PhysicalOpKind::kSort));
static_assert(static_cast<int>(bk::KernelOpKind::kHashJoin) ==
              static_cast<int>(PhysicalOpKind::kHashJoin));
static_assert(static_cast<int>(bk::KernelOpKind::kMergeJoin) ==
              static_cast<int>(PhysicalOpKind::kMergeJoin));
static_assert(static_cast<int>(bk::KernelOpKind::kIndexedNestedLoopsJoin) ==
              static_cast<int>(PhysicalOpKind::kIndexedNestedLoopsJoin));
static_assert(static_cast<int>(bk::KernelOpKind::kNaiveNestedLoopsJoin) ==
              static_cast<int>(PhysicalOpKind::kNaiveNestedLoopsJoin));
static_assert(static_cast<int>(bk::KernelOpKind::kHashAggregate) ==
              static_cast<int>(PhysicalOpKind::kHashAggregate));
static_assert(static_cast<int>(bk::KernelOpKind::kStreamAggregate) ==
              static_cast<int>(PhysicalOpKind::kStreamAggregate));
// A program that fits the flat path's inline scratch also fits a group.
static_assert(bk::kMaxBundleSteps == RecostProgram::kInlineSlots);
static_assert(RecostBundle::kLanes == 4);

namespace {

/// Auto-detect (-1) or a forced SimdTier value, settable by tests.
std::atomic<int> g_forced_tier{-1};

SimdTier DetectTier() {
#if SCRPQO_SIMD_NEON
  return SimdTier::kNeon;
#else
  if (bk::HaveAvx512Kernel() && CpuSupportsAvx512()) return SimdTier::kAvx512;
  if (bk::HaveAvx2Kernel() && CpuSupportsAvx2Fma()) return SimdTier::kAvx2;
  return SimdTier::kScalar4;
#endif
}

}  // namespace

bk::RecostKernelParams RecostBundle::ToKernelParams(const CostParams& p) {
  bk::RecostKernelParams kp;
  kp.cpu_per_row = p.cpu_per_row;
  kp.io_per_page = p.io_per_page;
  kp.rows_per_page = p.rows_per_page;
  kp.seek_base = p.seek_base;
  kp.index_row_cpu = p.index_row_cpu;
  kp.rid_lookup = p.rid_lookup;
  kp.hash_build_per_row = p.hash_build_per_row;
  kp.hash_probe_per_row = p.hash_probe_per_row;
  kp.merge_per_row = p.merge_per_row;
  kp.sort_per_row_log = p.sort_per_row_log;
  kp.memory_rows = p.memory_rows;
  kp.spill_io_factor = p.spill_io_factor;
  // Derived products for the hoisted formula forms (cost_formulas_core.h):
  // folded once per sweep so the kernels broadcast a scalar instead of
  // recomputing these per step per block.
  const double recip = 1.0 / static_cast<double>(p.rows_per_page);
  kp.scan_cost_per_row = recip * p.io_per_page + p.cpu_per_row;
  kp.per_match = p.index_row_cpu + p.rid_lookup + p.cpu_per_row;
  kp.half_seek_base = 0.5 * p.seek_base;
  kp.spill_per_row = p.spill_io_factor * p.io_per_page * recip;
  return kp;
}

uint64_t RecostBundle::ShapeHash(const RecostProgram& program) {
  // FNV-1a over the op-kind sequence: programs hash equal iff they drive
  // the same switch path (collisions resolved by ShapeMatches).
  uint64_t h = 1469598103934665603ull;
  const RecostProgram::Op* ops = program.ops();
  const int n = program.num_nodes();
  for (int i = 0; i < n; ++i) {
    h ^= ops[i].kind;
    h *= 1099511628211ull;
  }
  h ^= static_cast<uint64_t>(n);
  h *= 1099511628211ull;
  return h;
}

uint64_t RecostBundle::BindingHash(const RecostProgram& program) {
  // Shape hash refined by each op's parameter bindings (seek slot + sel
  // slot list). Lanes with EQUAL binding hashes keep their whole block on
  // the uniform broadcast fast paths; one stray lane forces its block's
  // cells onto the per-lane gather/general path. Used as the block
  // clustering key, never for group membership.
  uint64_t h = 1469598103934665603ull;
  const RecostProgram::Op* ops = program.ops();
  const int32_t* slots = program.slots();
  const int n = program.num_nodes();
  for (int i = 0; i < n; ++i) {
    const RecostProgram::Op& op = ops[i];
    h ^= op.kind;
    h *= 1099511628211ull;
    h ^= static_cast<uint64_t>(op.seek_slot + 1);
    h *= 1099511628211ull;
    for (uint32_t k = op.sel_begin; k != op.sel_end; ++k) {
      h ^= static_cast<uint64_t>(slots[k] + 1);
      h *= 1099511628211ull;
    }
    h ^= 0x9e3779b9ull;
    h *= 1099511628211ull;
  }
  return h;
}

RecostBundle::LaneProbe RecostBundle::ProbeLanes(const Group& g, uint64_t bh) {
  LaneProbe p;
  for (int blk = 0; blk < g.nblocks; ++blk) {
    int free_lane = -1;
    bool clean = true;
    for (int l = blk * kLanes; l < (blk + 1) * kLanes; ++l) {
      if (g.plan_ids[l] < 0) {
        if (free_lane < 0) free_lane = l;
      } else if (g.bind_hash[l] != bh) {
        clean = false;
      }
    }
    if (free_lane < 0) continue;
    if (p.any < 0) p.any = free_lane;
    if (clean) {
      p.clean = free_lane;
      return p;
    }
  }
  return p;
}

bool RecostBundle::ShapeMatches(const Group& g, const RecostProgram& program) {
  const int n = program.num_nodes();
  if (n != static_cast<int>(g.kinds.size())) return false;
  const RecostProgram::Op* ops = program.ops();
  for (int i = 0; i < n; ++i) {
    if (ops[i].kind != g.kinds[static_cast<size_t>(i)]) return false;
  }
  return true;
}

bool RecostBundle::Add(int plan_id, const RecostProgram* program) {
  if (program == nullptr || program->empty() ||
      program->num_nodes() > bk::kMaxBundleSteps) {
    return false;
  }
  SCRPQO_CHECK(plan_id >= 0, "negative plan id");
  SCRPQO_CHECK(!Contains(plan_id), "plan id already in recost bundle");
  if (static_cast<size_t>(plan_id) >= lane_of_.size()) {
    lane_of_.resize(static_cast<size_t>(plan_id) + 1, LaneRef{-1, -1});
  }
  const uint64_t h = ShapeHash(*program);
  const uint64_t bh = BindingHash(*program);
  // Placement order: (1) a free lane in a binding-clean block — one whose
  // live lanes all share this plan's binding hash, so the block keeps its
  // uniform broadcast fast paths; (2) widen an existing group by one block
  // (the new block starts empty, hence clean); (3) any free lane — a
  // mixed block degrades to the per-lane gather path but still beats one
  // scalar pass per plan; (4) a fresh group. Wider groups amortize the
  // per-step dispatch across more plans, which is where the batched
  // path's speedup comes from.
  int growable = -1;
  int fb_group = -1;
  int fb_lane = -1;
  for (int gi : shape_index_[h]) {
    Group& g = groups_[static_cast<size_t>(gi)];
    if (!ShapeMatches(g, *program)) continue;
    const LaneProbe p = ProbeLanes(g, bh);
    if (p.clean >= 0) {
      // Free (possibly tombstoned) lane in a binding-clean block: repack
      // in place.
      PackLane(g, p.clean, plan_id, program);
      lane_of_[static_cast<size_t>(plan_id)] = {gi, p.clean};
      ++num_plans_;
      return true;
    }
    if (fb_group < 0 && p.any >= 0) {
      fb_group = gi;
      fb_lane = p.any;
    }
    if (growable < 0 && g.nblocks < kMaxBlocks) growable = gi;
  }
  if (growable >= 0) {
    GrowGroup(growable);
    Group& g = groups_[static_cast<size_t>(growable)];
    // Re-probe the widened group: growth repacks clusters block-aligned
    // when they fit, so a clean lane may now exist even in an old block,
    // and the fresh last block is clean whenever it stayed empty.
    const LaneProbe p = ProbeLanes(g, bh);
    const int lane = p.clean >= 0 ? p.clean : p.any;
    SCRPQO_CHECK(lane >= 0, "grown group must expose a free lane");
    PackLane(g, lane, plan_id, program);
    lane_of_[static_cast<size_t>(plan_id)] = {growable, lane};
    ++num_plans_;
    return true;
  }
  if (fb_group >= 0) {
    Group& g = groups_[static_cast<size_t>(fb_group)];
    PackLane(g, fb_lane, plan_id, program);
    lane_of_[static_cast<size_t>(plan_id)] = {fb_group, fb_lane};
    ++num_plans_;
    return true;
  }
  const int steps = program->num_nodes();
  Group g;
  g.kinds.resize(static_cast<size_t>(steps));
  const RecostProgram::Op* ops = program->ops();
  for (int i = 0; i < steps; ++i) g.kinds[static_cast<size_t>(i)] = ops[i].kind;
  const std::size_t cells = static_cast<std::size_t>(steps) * kLanes;
  g.a = AlignedRow(cells);
  g.b = AlignedRow(cells);
  g.c = AlignedRow(cells);
  g.sel_lit = AlignedRow(cells);
  g.sel_begin.assign(cells, 0);
  g.sel_end.assign(cells, 0);
  g.seek_slot.assign(cells, -1);
  g.shape_hash = h;
  const int gi = static_cast<int>(groups_.size());
  groups_.push_back(std::move(g));
  shape_index_[h].push_back(gi);
  PackLane(groups_.back(), 0, plan_id, program);
  lane_of_[static_cast<size_t>(plan_id)] = {gi, 0};
  ++num_plans_;
  return true;
}

void RecostBundle::PackLane(Group& g, int lane, int plan_id,
                            const RecostProgram* program) {
  const RecostProgram::Op* ops = program->ops();
  const int32_t* slots = program->slots();
  const int steps = static_cast<int>(g.kinds.size());
  const std::size_t blk = static_cast<std::size_t>(lane) / kLanes;
  const std::size_t sub = static_cast<std::size_t>(lane) % kLanes;
  // If this lane was tombstoned, its old slot ranges stay leaked in the
  // pool until Compact or GrowGroup rebuilds the group — bounded by the
  // tombstone threshold in Remove.
  for (int step = 0; step < steps; ++step) {
    const std::size_t idx =
        (static_cast<std::size_t>(step) * static_cast<std::size_t>(g.nblocks) +
         blk) *
            kLanes +
        sub;
    const RecostProgram::Op& op = ops[step];
    g.a.data()[idx] = op.a;
    g.b.data()[idx] = op.b;
    g.c.data()[idx] = op.c;
    g.sel_lit.data()[idx] = op.sel_lit;
    const uint32_t begin = static_cast<uint32_t>(g.slots.size());
    for (uint32_t k = op.sel_begin; k != op.sel_end; ++k) {
      g.slots.push_back(slots[k]);
    }
    g.sel_begin[idx] = begin;
    g.sel_end[idx] = static_cast<uint32_t>(g.slots.size());
    g.seek_slot[idx] = op.seek_slot;
  }
  g.plan_ids[lane] = plan_id;
  g.progs[lane] = program;
  g.bind_hash[lane] = BindingHash(*program);
  ++g.num_active;
  g.max_slot = std::max(g.max_slot, program->max_binding_slot());
  max_slot_ = std::max(max_slot_, g.max_slot);
  PadDeadLanes(g);
  RecomputeSelModes(g);
}

void RecostBundle::GrowGroup(int gi) {
  Group& old = groups_[static_cast<size_t>(gi)];
  SCRPQO_CHECK(old.nblocks < kMaxBlocks, "group already at maximum width");
  Group g;
  g.nblocks = old.nblocks + 1;
  g.kinds = old.kinds;
  g.shape_hash = old.shape_hash;
  const std::size_t elems = g.kinds.size() *
                            static_cast<std::size_t>(g.nblocks) * kLanes;
  g.a = AlignedRow(elems);
  g.b = AlignedRow(elems);
  g.c = AlignedRow(elems);
  g.sel_lit = AlignedRow(elems);
  g.sel_begin.assign(elems, 0);
  g.sel_end.assign(elems, 0);
  g.seek_slot.assign(elems, -1);
  // Repack live lanes into the wider layout, clustered by binding hash so
  // same-binding plans share blocks (stable sort: original lane order
  // breaks ties, keeping the repack deterministic). Tombstoned lanes (and
  // the slot ranges they leaked into the pool) evaporate here: the fresh
  // group starts with an empty pool and only live plans re-enter it.
  struct LiveLane {
    uint64_t bh;
    int plan_id;
    const RecostProgram* prog;
  };
  LiveLane live[kMaxLanesPerGroup];
  int nlive = 0;
  for (int l = 0; l < old.num_lanes(); ++l) {
    if (old.plan_ids[l] < 0) continue;
    live[nlive++] = {old.bind_hash[l], old.plan_ids[l], old.progs[l]};
  }
  std::stable_sort(live, live + nlive, [](const LiveLane& x, const LiveLane& y) {
    return x.bh < y.bh;
  });
  // Block-align the clusters when the wider group has room: each distinct
  // binding starts at a block boundary, so every block stays clean and
  // keeps its uniform broadcast fast paths. When the padded layout would
  // not fit, fall back to dense packing (some boundary blocks go mixed).
  int needed = 0;
  for (int i = 0; i < nlive;) {
    int j = i;
    while (j < nlive && live[j].bh == live[i].bh) ++j;
    needed += (j - i + kLanes - 1) / kLanes;
    i = j;
  }
  const bool aligned = needed <= g.nblocks;
  int lane = 0;
  for (int i = 0; i < nlive; ++i) {
    if (aligned && i > 0 && live[i].bh != live[i - 1].bh &&
        lane % kLanes != 0) {
      lane += kLanes - lane % kLanes;
    }
    PackLane(g, lane, live[i].plan_id, live[i].prog);
    lane_of_[static_cast<size_t>(live[i].plan_id)] = {gi, lane};
    ++lane;
  }
  groups_[static_cast<size_t>(gi)] = std::move(g);
}

void RecostBundle::PadDeadLanes(Group& g) {
  int global_donor = -1;
  for (int l = 0; l < g.num_lanes(); ++l) {
    if (g.plan_ids[l] >= 0) {
      global_donor = l;
      break;
    }
  }
  if (global_donor < 0) return;
  const int steps = static_cast<int>(g.kinds.size());
  const std::size_t nb = static_cast<std::size_t>(g.nblocks);
  for (int lane = 0; lane < g.num_lanes(); ++lane) {
    if (g.plan_ids[lane] >= 0) continue;
    // Prefer a donor in the SAME block: the block's lanes then stay
    // shape-uniform, which keeps its broadcast/one-slot fast paths open.
    const int blk = lane / kLanes;
    int donor = -1;
    for (int l = blk * kLanes; l < (blk + 1) * kLanes; ++l) {
      if (g.plan_ids[l] >= 0) {
        donor = l;
        break;
      }
    }
    if (donor < 0) donor = global_donor;
    const std::size_t dblk = static_cast<std::size_t>(donor) / kLanes;
    const std::size_t dsub = static_cast<std::size_t>(donor) % kLanes;
    const std::size_t sub = static_cast<std::size_t>(lane) % kLanes;
    for (int step = 0; step < steps; ++step) {
      const std::size_t row = static_cast<std::size_t>(step) * nb;
      const std::size_t idx = (row + static_cast<std::size_t>(blk)) * kLanes +
                              sub;
      const std::size_t didx = (row + dblk) * kLanes + dsub;
      // Replicate the donor's full step — coefficients AND sel range (the
      // range indexes the shared pool, so copying it is just two ints).
      // The dead lane then computes exactly the donor's cost: finite,
      // never read, in-bounds, and shape-uniform so the one-slot gather
      // fast path stays available.
      g.a.data()[idx] = g.a.data()[didx];
      g.b.data()[idx] = g.b.data()[didx];
      g.c.data()[idx] = g.c.data()[didx];
      g.sel_lit.data()[idx] = g.sel_lit.data()[didx];
      g.sel_begin[idx] = g.sel_begin[didx];
      g.sel_end[idx] = g.sel_end[didx];
      g.seek_slot[idx] = g.seek_slot[didx];
    }
  }
}

void RecostBundle::RecomputeSelModes(Group& g) {
  // Modes are classified per CELL (one block of one step): blocks of a
  // group can take different fast paths independently.
  const int cells = static_cast<int>(g.kinds.size()) * g.nblocks;
  g.sel_mode.resize(static_cast<size_t>(cells));
  g.sel_slot1.resize(static_cast<size_t>(cells) * kLanes);
  g.seek_mode.resize(static_cast<size_t>(cells));
  for (int step = 0; step < cells; ++step) {
    const std::size_t base = static_cast<std::size_t>(step) * kLanes;
    const uint32_t b0 = g.sel_begin[base];
    const uint32_t len0 = g.sel_end[base] - b0;
    bool all_zero = len0 == 0;
    bool all_one = len0 == 1;
    // Lanes hold plans of one template, so a step's leaf usually binds
    // the identical slot list in every lane — the broadcast fast path.
    bool uniform = len0 >= 1;
    for (int l = 1; l < kLanes; ++l) {
      const std::size_t idx = base + static_cast<size_t>(l);
      const uint32_t bl = g.sel_begin[idx];
      const uint32_t len = g.sel_end[idx] - bl;
      all_zero = all_zero && len == 0;
      all_one = all_one && len == 1;
      uniform = uniform && len == len0;
      for (uint32_t k = 0; uniform && k < len0; ++k) {
        uniform = g.slots[bl + k] == g.slots[b0 + k];
      }
    }
    if (all_zero) {
      g.sel_mode[static_cast<size_t>(step)] = bk::kSelAllLiteral;
    } else if (uniform) {
      g.sel_mode[static_cast<size_t>(step)] = bk::kSelUniform;
    } else if (all_one) {
      g.sel_mode[static_cast<size_t>(step)] = bk::kSelOneSlot;
      for (int l = 0; l < kLanes; ++l) {
        const std::size_t idx = base + static_cast<size_t>(l);
        g.sel_slot1[idx] = g.slots[g.sel_begin[idx]];
      }
    } else {
      g.sel_mode[static_cast<size_t>(step)] = bk::kSelGeneral;
    }
    const int32_t s0 = g.seek_slot[base];
    bool all_const = s0 < 0;
    bool uniform_slot = s0 >= 0;
    for (int l = 1; l < kLanes; ++l) {
      const int32_t sl = g.seek_slot[base + static_cast<size_t>(l)];
      all_const = all_const && sl < 0;
      uniform_slot = uniform_slot && sl == s0;
    }
    if (all_const) {
      g.seek_mode[static_cast<size_t>(step)] = bk::kSeekAllConst;
    } else if (uniform_slot) {
      g.seek_mode[static_cast<size_t>(step)] = bk::kSeekUniformSlot;
    } else {
      g.seek_mode[static_cast<size_t>(step)] = bk::kSeekMixed;
    }
  }
  // Step-level hoist classification: a step is "shared" when every one of
  // its cells is kSelUniform with the identical slot list — binding-
  // clustered placement makes this the dominant multi-block case, and the
  // kernel then forms the slot product once per step instead of per block.
  const int nsteps = static_cast<int>(g.kinds.size());
  g.step_sel_shared.assign(static_cast<size_t>(nsteps), 0);
  g.step_sel_begin.assign(static_cast<size_t>(nsteps), 0);
  g.step_sel_end.assign(static_cast<size_t>(nsteps), 0);
  for (int step = 0; step < nsteps; ++step) {
    const std::size_t cell00 =
        static_cast<std::size_t>(step) * static_cast<std::size_t>(g.nblocks);
    if (g.sel_mode[cell00] != bk::kSelUniform) continue;
    // Block 0 lane 0 is the step's representative list (each kSelUniform
    // cell's lanes already agree internally).
    const uint32_t b0 = g.sel_begin[cell00 * kLanes];
    const uint32_t len0 = g.sel_end[cell00 * kLanes] - b0;
    bool shared = true;
    for (int blk = 1; shared && blk < g.nblocks; ++blk) {
      const std::size_t cell = cell00 + static_cast<std::size_t>(blk);
      if (g.sel_mode[cell] != bk::kSelUniform) {
        shared = false;
        break;
      }
      const uint32_t bb = g.sel_begin[cell * kLanes];
      shared = g.sel_end[cell * kLanes] - bb == len0;
      for (uint32_t k = 0; shared && k < len0; ++k) {
        shared = g.slots[bb + k] == g.slots[b0 + k];
      }
    }
    if (shared) {
      g.step_sel_shared[static_cast<size_t>(step)] = 1;
      g.step_sel_begin[static_cast<size_t>(step)] = b0;
      g.step_sel_end[static_cast<size_t>(step)] = b0 + len0;
    }
  }
  // Refresh the cached kernel view LAST: the resizes above may have moved
  // the mode vectors' buffers. A pass then reads the view as-is instead of
  // assembling fourteen fields per group.
  g.view.num_steps = static_cast<int>(g.kinds.size());
  g.view.num_blocks = g.nblocks;
  g.view.kinds = g.kinds.data();
  g.view.a = g.a.data();
  g.view.b = g.b.data();
  g.view.c = g.c.data();
  g.view.sel_lit = g.sel_lit.data();
  g.view.sel_begin = g.sel_begin.data();
  g.view.sel_end = g.sel_end.data();
  g.view.seek_slot = g.seek_slot.data();
  g.view.slots = g.slots.data();
  g.view.sel_mode = g.sel_mode.data();
  g.view.sel_slot1 = g.sel_slot1.data();
  g.view.seek_mode = g.seek_mode.data();
  g.view.step_sel_shared = g.step_sel_shared.data();
  g.view.step_sel_begin = g.step_sel_begin.data();
  g.view.step_sel_end = g.step_sel_end.data();
}

void RecostBundle::Remove(int plan_id) {
  if (!Contains(plan_id)) return;
  const LaneRef ref = lane_of_[static_cast<size_t>(plan_id)];
  Group& g = groups_[static_cast<size_t>(ref.group)];
  const int lane = ref.lane;
  g.plan_ids[lane] = -1;
  g.progs[lane] = nullptr;
  --g.num_active;
  lane_of_[static_cast<size_t>(plan_id)] = {-1, -1};
  --num_plans_;
  ++tombstones_;
  if (g.num_active > 0) {
    // max_slot only shrinks; recompute so the per-pass sVector bound
    // check stays tight.
    g.max_slot = -1;
    for (int l = 0; l < g.num_lanes(); ++l) {
      if (g.progs[l] != nullptr) {
        g.max_slot = std::max(g.max_slot, g.progs[l]->max_binding_slot());
      }
    }
    PadDeadLanes(g);
    RecomputeSelModes(g);
  }
  // max_slot_ only shrinks on removal; recompute from the per-group maxima
  // so EvalMany's single bound check stays tight.
  max_slot_ = -1;
  for (const Group& other : groups_) {
    if (other.num_active > 0) max_slot_ = std::max(max_slot_, other.max_slot);
  }
  // Empty groups stay as placeholders (erasing would shift group indices
  // under lane_of_); Compact reclaims them once tombstoned lanes outnumber
  // live plans.
  if (tombstones_ > num_plans_) Compact();
}

void RecostBundle::Compact() {
  std::vector<std::pair<int, const RecostProgram*>> live;
  live.reserve(static_cast<size_t>(num_plans_));
  // Ascending plan-id order: deterministic repack.
  for (size_t id = 0; id < lane_of_.size(); ++id) {
    const LaneRef ref = lane_of_[id];
    if (ref.group < 0) continue;
    live.emplace_back(static_cast<int>(id),
                      groups_[static_cast<size_t>(ref.group)].progs[ref.lane]);
  }
  groups_.clear();
  lane_of_.clear();
  num_plans_ = 0;
  max_slot_ = -1;
  shape_index_.clear();
  tombstones_ = 0;
  for (const auto& [plan_id, prog] : live) {
    const bool ok = Add(plan_id, prog);
    SCRPQO_CHECK(ok, "previously bundled plan must rebundle on compaction");
  }
  ++rebuilds_;
  if (bundle_rebuilds_ != nullptr) bundle_rebuilds_->Increment();
}

void RecostBundle::Clear() {
  groups_.clear();
  lane_of_.clear();
  num_plans_ = 0;
  max_slot_ = -1;
  shape_index_.clear();
  tombstones_ = 0;
}

int64_t RecostBundle::memory_bytes() const {
  int64_t bytes = 0;
  for (const Group& g : groups_) {
    bytes += static_cast<int64_t>(g.kinds.capacity());
    bytes += static_cast<int64_t>(
        (g.a.size() + g.b.size() + g.c.size() + g.sel_lit.size()) *
        sizeof(double));
    bytes += static_cast<int64_t>(
        (g.sel_begin.capacity() + g.sel_end.capacity()) * sizeof(uint32_t));
    bytes += static_cast<int64_t>(
        (g.seek_slot.capacity() + g.slots.capacity() +
         g.sel_slot1.capacity()) *
        sizeof(int32_t));
    bytes += static_cast<int64_t>(g.sel_mode.capacity());
    bytes += static_cast<int64_t>(g.seek_mode.capacity());
    bytes += static_cast<int64_t>(g.step_sel_shared.capacity());
    bytes += static_cast<int64_t>(
        (g.step_sel_begin.capacity() + g.step_sel_end.capacity()) *
        sizeof(uint32_t));
  }
  bytes += static_cast<int64_t>(lane_of_.capacity() * sizeof(LaneRef));
  return bytes;
}

RecostBundle::PackStats RecostBundle::pack_stats() const {
  PackStats st;
  for (const Group& g : groups_) {
    if (g.num_active == 0) continue;
    const size_t cells = g.kinds.size() * static_cast<size_t>(g.nblocks);
    for (size_t c = 0; c < cells; ++c) {
      switch (g.sel_mode[c]) {
        case bk::kSelGeneral: ++st.cells_general; break;
        case bk::kSelOneSlot: ++st.cells_one_slot; break;
        case bk::kSelAllLiteral: ++st.cells_literal; break;
        default: ++st.cells_uniform; break;
      }
    }
    st.steps_total += static_cast<int64_t>(g.kinds.size());
    for (uint8_t s : g.step_sel_shared) st.steps_shared += s;
  }
  return st;
}

SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_FP_DETERMINISTIC
SCRPQO_LOCK_BOUNDED()
void RecostBundle::EvalGroup(const Group& g, const SVector& sv,
                             const Prepared& prep, double* out_cost) const {
  // scrpqo-lint: hot-path begin
  if (g.num_active == 1) {
    // Sparse group: one scalar Run beats a vector pass that computes
    // every padded lane for nothing.
    for (int l = 0; l < g.num_lanes(); ++l) {
      if (g.progs[l] != nullptr) {
        out_cost[l] = g.progs[l]->Run(sv, *prep.src);
        return;
      }
    }
  }
  switch (prep.tier) {
#if !SCRPQO_SIMD_NEON
    case SimdTier::kAvx512:
      bk::EvalGroupAvx512(g.view, sv.data(), prep.kp, out_cost);
      return;
    case SimdTier::kAvx2:
      bk::EvalGroupAvx2(g.view, sv.data(), prep.kp, out_cost);
      return;
#else
    case SimdTier::kNeon:
      bk::EvalGroupT<Vec4dNeon>(g.view, sv.data(), prep.kp, out_cost);
      return;
#endif
    default:
      bk::EvalGroupT<Vec4dScalar>(g.view, sv.data(), prep.kp, out_cost);
      return;
  }
  // scrpqo-lint: hot-path end
}

SimdTier RecostBundle::ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTier>(forced);
  static const SimdTier detected = DetectTier();
  return detected;
}

std::vector<SimdTier> RecostBundle::AvailableTiers() {
  std::vector<SimdTier> tiers{SimdTier::kScalar4};
#if SCRPQO_SIMD_NEON
  tiers.push_back(SimdTier::kNeon);
#else
  if (bk::HaveAvx2Kernel() && CpuSupportsAvx2Fma()) {
    tiers.push_back(SimdTier::kAvx2);
  }
  if (bk::HaveAvx512Kernel() && CpuSupportsAvx512()) {
    tiers.push_back(SimdTier::kAvx512);
  }
#endif
  return tiers;
}

void RecostBundle::ForceTierForTest(SimdTier tier, bool force) {
  if (!force) {
    g_forced_tier.store(-1, std::memory_order_relaxed);
    return;
  }
  const std::vector<SimdTier> avail = AvailableTiers();
  SCRPQO_CHECK(std::find(avail.begin(), avail.end(), tier) != avail.end(),
               "forced SIMD tier not available on this host");
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

}  // namespace scrpqo

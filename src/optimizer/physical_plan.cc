#include "optimizer/physical_plan.h"

#include <sstream>

namespace scrpqo {

std::string PhysicalOpName(PhysicalOpKind kind) {
  switch (kind) {
    case PhysicalOpKind::kTableScan:
      return "TableScan";
    case PhysicalOpKind::kIndexSeek:
      return "IndexSeek";
    case PhysicalOpKind::kIndexScanOrdered:
      return "IndexScanOrdered";
    case PhysicalOpKind::kSort:
      return "Sort";
    case PhysicalOpKind::kHashJoin:
      return "HashJoin";
    case PhysicalOpKind::kMergeJoin:
      return "MergeJoin";
    case PhysicalOpKind::kIndexedNestedLoopsJoin:
      return "IndexedNLJ";
    case PhysicalOpKind::kNaiveNestedLoopsJoin:
      return "NaiveNLJ";
    case PhysicalOpKind::kHashAggregate:
      return "HashAgg";
    case PhysicalOpKind::kStreamAggregate:
      return "StreamAgg";
  }
  return "Unknown";
}

int PhysicalPlanNode::NodeCount() const {
  int n = 1;
  for (const auto& c : children) n += c->NodeCount();
  return n;
}

std::string PhysicalPlanNode::ToString(int indent) const {
  std::ostringstream os;
  for (int i = 0; i < indent; ++i) os << "  ";
  os << PhysicalOpName(kind);
  if (is_leaf()) {
    os << " " << leaf.table;
    if (!leaf.index_column.empty()) os << " [idx:" << leaf.index_column << "]";
    if (!leaf.preds.empty()) {
      os << " (";
      for (size_t i = 0; i < leaf.preds.size(); ++i) {
        if (i > 0) os << " AND ";
        const auto& p = leaf.preds[i];
        os << p.column << " " << CompareOpName(p.op) << " ";
        if (p.parameterized()) {
          os << "$" << p.param_slot;
        } else {
          os << p.literal.ToString();
        }
      }
      os << ")";
    }
  } else if (is_join() && !join.edges.empty()) {
    os << " on " << join.edges[0].ToString();
  } else if (kind == PhysicalOpKind::kSort) {
    os << " by " << sort_key.ToString();
  } else if (kind == PhysicalOpKind::kHashAggregate ||
             kind == PhysicalOpKind::kStreamAggregate) {
    os << " group by t" << agg.group_table << "." << agg.group_column;
  }
  os << "  [rows=" << est_rows << " cost=" << est_cost << "]";
  os << "\n";
  for (const auto& c : children) os << c->ToString(indent + 1);
  return os.str();
}

}  // namespace scrpqo

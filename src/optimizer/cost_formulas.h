// Per-operator cost arithmetic shared by every re-costing path:
// CostModel's recursive tree walk (optimization-time derivation and the
// legacy RecostTree), RecostProgram's flat postorder scan, and the
// SIMD-batched RecostBundle kernels. The width-generic formula bodies live
// in cost_formulas_core.h (templated on the value type V); this header
// binds them at V = double under the historical names, so existing scalar
// callers are untouched while the vector kernels instantiate the exact
// same arithmetic — the flat-vs-tree and bundle-vs-flat property tests
// then only have to absorb multiplication-reordering / FMA-contraction
// noise (~1 ulp, bounded at 1e-9 relative), never a formula divergence.
//
// Every function returns output cardinality plus *cumulative* cost (the
// paper's Cost(P, q)); callers pass children as already-derived
// {rows, cost} pairs. Asymptotic shapes follow Section 5.4: scans linear,
// NLJ multiplicative, hash join additive, sort n log n with spill
// discontinuities above the memory grant.
#pragma once

#include "optimizer/cost_formulas_core.h"
#include "optimizer/cost_model.h"

namespace scrpqo::cost_formulas {

using Derived = DerivedT<double>;

inline Derived TableScan(const CostParams& p, double base_rows, double sel) {
  return TableScanT<double>(p, base_rows, sel);
}

/// `seek_sel` is the selectivity of the sargable predicate driving the
/// seek (1.0 for a parent-driven INLJ inner, which ignores this cost).
inline Derived IndexSeek(const CostParams& p, double base_rows, double sel,
                         double seek_sel) {
  return IndexSeekT<double>(p, base_rows, sel, seek_sel);
}

inline Derived IndexScanOrdered(const CostParams& p, double base_rows,
                                double sel) {
  return IndexScanOrderedT<double>(p, base_rows, sel);
}

inline double SortCost(const CostParams& p, double rows) {
  return SortCostT<double>(p, rows);
}

inline Derived Sort(const CostParams& p, const Derived& c0) {
  return SortT<double>(p, c0);
}

inline Derived HashJoin(const CostParams& p, double join_sel,
                        const Derived& c0, const Derived& c1) {
  return HashJoinT<double>(p, join_sel, c0, c1);
}

inline Derived MergeJoin(const CostParams& p, double join_sel,
                         const Derived& c0, const Derived& c1) {
  return MergeJoinT<double>(p, join_sel, c0, c1);
}

/// IndexedNLJ: the inner is a single-table leaf accessed via its index, so
/// only the outer child's cumulative cost is charged; the inner's
/// standalone derivation is ignored. `per_probe_matches` is
/// inner.base_rows * per_probe_sel (instance-independent); `inner_sel` is
/// the inner leaf's full predicate selectivity under the current sVector.
inline Derived IndexedNlj(const CostParams& p, double join_sel,
                          double per_probe_matches, double inner_base_rows,
                          double inner_sel, const Derived& c0) {
  return IndexedNljT<double>(p, join_sel, per_probe_matches,
                             inner_base_rows, inner_sel, c0);
}

inline Derived NaiveNlj(const CostParams& p, double join_sel,
                        const Derived& c0, const Derived& c1) {
  return NaiveNljT<double>(p, join_sel, c0, c1);
}

inline Derived HashAggregate(const CostParams& p, double group_distinct,
                             const Derived& c0) {
  return HashAggregateT<double>(p, group_distinct, c0);
}

inline Derived StreamAggregate(const CostParams& p, double group_distinct,
                               const Derived& c0) {
  return StreamAggregateT<double>(p, group_distinct, c0);
}

}  // namespace scrpqo::cost_formulas

// Per-operator cost arithmetic shared by the two re-costing paths:
// CostModel's recursive tree walk (optimization-time derivation and the
// legacy RecostTree) and RecostProgram's flat postorder scan. Keeping the
// formulas in one place guarantees the flat kernel cannot drift from the
// tree walker — the flat-vs-tree property test then only has to absorb
// multiplication-reordering noise in leaf selectivity products, never a
// formula divergence.
//
// Every function returns output cardinality plus *cumulative* cost (the
// paper's Cost(P, q)); callers pass children as already-derived
// {rows, cost} pairs. Asymptotic shapes follow Section 5.4: scans linear,
// NLJ multiplicative, hash join additive, sort n log n with spill
// discontinuities above the memory grant.
#pragma once

#include <algorithm>
#include <cmath>

#include "optimizer/cost_model.h"

namespace scrpqo::cost_formulas {

/// Minimum cardinality used when clamping intermediate row counts.
constexpr double kMinRows = 1.0;

struct Derived {
  double rows = 0.0;
  double cost = 0.0;  // cumulative
};

inline Derived TableScan(const CostParams& p, double base_rows, double sel) {
  double pages = base_rows / static_cast<double>(p.rows_per_page);
  return {base_rows * sel,
          pages * p.io_per_page + base_rows * p.cpu_per_row};
}

/// `seek_sel` is the selectivity of the sargable predicate driving the
/// seek (1.0 for a parent-driven INLJ inner, which ignores this cost).
inline Derived IndexSeek(const CostParams& p, double base_rows, double sel,
                         double seek_sel) {
  double matching = std::max(base_rows * seek_sel, 0.0);
  return {base_rows * sel,
          p.seek_base + matching * (p.index_row_cpu + p.rid_lookup +
                                    p.cpu_per_row)};
}

inline Derived IndexScanOrdered(const CostParams& p, double base_rows,
                                double sel) {
  return {base_rows * sel,
          p.seek_base + base_rows * (p.index_row_cpu + p.rid_lookup +
                                     p.cpu_per_row)};
}

inline double SortCost(const CostParams& p, double rows) {
  rows = std::max(rows, kMinRows);
  double cost = p.sort_per_row_log * rows * std::log2(rows + 2.0);
  if (rows > p.memory_rows) {
    double pages = rows / static_cast<double>(p.rows_per_page);
    cost += p.spill_io_factor * pages * p.io_per_page;
  }
  return cost;
}

inline Derived Sort(const CostParams& p, const Derived& c0) {
  return {c0.rows, c0.cost + SortCost(p, c0.rows)};
}

inline Derived HashJoin(const CostParams& p, double join_sel,
                        const Derived& c0, const Derived& c1) {
  double probe = std::max(c0.rows, 0.0);
  double build = std::max(c1.rows, 0.0);
  Derived out;
  out.rows = probe * build * join_sel;
  double local = build * p.hash_build_per_row +
                 probe * p.hash_probe_per_row + out.rows * p.cpu_per_row;
  if (build > p.memory_rows) {
    double pages = (build + probe) / static_cast<double>(p.rows_per_page);
    local += p.spill_io_factor * pages * p.io_per_page;
  }
  out.cost = c0.cost + c1.cost + local;
  return out;
}

inline Derived MergeJoin(const CostParams& p, double join_sel,
                         const Derived& c0, const Derived& c1) {
  Derived out;
  out.rows = c0.rows * c1.rows * join_sel;
  double local = (c0.rows + c1.rows) * p.merge_per_row +
                 out.rows * p.cpu_per_row;
  out.cost = c0.cost + c1.cost + local;
  return out;
}

/// IndexedNLJ: the inner is a single-table leaf accessed via its index, so
/// only the outer child's cumulative cost is charged; the inner's
/// standalone derivation is ignored. `per_probe_matches` is
/// inner.base_rows * per_probe_sel (instance-independent); `inner_sel` is
/// the inner leaf's full predicate selectivity under the current sVector.
inline Derived IndexedNlj(const CostParams& p, double join_sel,
                          double per_probe_matches, double inner_base_rows,
                          double inner_sel, const Derived& c0) {
  double outer_rows = std::max(c0.rows, 0.0);
  double probe_cost =
      0.5 * p.seek_base +
      per_probe_matches * (p.index_row_cpu + p.rid_lookup + p.cpu_per_row);
  Derived out;
  out.rows = outer_rows * inner_base_rows * inner_sel * join_sel;
  double local = outer_rows * probe_cost + out.rows * p.cpu_per_row;
  out.cost = c0.cost + local;
  return out;
}

inline Derived NaiveNlj(const CostParams& p, double join_sel,
                        const Derived& c0, const Derived& c1) {
  double outer_rows = std::max(c0.rows, kMinRows);
  Derived out;
  out.rows = c0.rows * c1.rows * join_sel;
  double local = outer_rows * c1.cost + out.rows * p.cpu_per_row;
  out.cost = c0.cost + c1.cost + local;
  return out;
}

inline Derived HashAggregate(const CostParams& p, double group_distinct,
                             const Derived& c0) {
  Derived out;
  out.rows = std::min(group_distinct, std::max(c0.rows, kMinRows));
  double local = c0.rows * p.hash_build_per_row + out.rows * p.cpu_per_row;
  if (out.rows > p.memory_rows) {
    double pages = c0.rows / static_cast<double>(p.rows_per_page);
    local += p.spill_io_factor * pages * p.io_per_page;
  }
  out.cost = c0.cost + local;
  return out;
}

inline Derived StreamAggregate(const CostParams& p, double group_distinct,
                               const Derived& c0) {
  Derived out;
  out.rows = std::min(group_distinct, std::max(c0.rows, kMinRows));
  out.cost = c0.cost + c0.rows * p.cpu_per_row;
  return out;
}

}  // namespace scrpqo::cost_formulas

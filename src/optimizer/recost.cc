#include "optimizer/recost.h"

namespace scrpqo {

CachedPlan MakeCachedPlan(const OptimizationResult& result) {
  CachedPlan cached;
  cached.plan = result.plan;
  cached.program = RecostProgram::Compile(*result.plan);
  cached.signature = PlanSignatureHash(*result.plan);
  cached.memo_physical_exprs = result.stats.num_physical_exprs;
  cached.retained_nodes = result.stats.plan_nodes;
  return cached;
}

}  // namespace scrpqo

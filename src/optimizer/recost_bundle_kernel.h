// Width-generic group-evaluation kernel for RecostBundle: evaluates up to
// kMaxBundleBlocks blocks of four plans (one shared op-kind stream) against
// one sVector in a single pass. The per-step switch is dispatched once per
// step and its body loops over blocks, so independent 4-lane chains overlap
// in the out-of-order core while the dispatch cost is amortized.
//
// Deliberately self-contained — includes only common/simd.h and
// cost_formulas_core.h, never cost_model.h / physical_plan.h /
// recost_program.h. The AVX2 instantiation lives in a translation unit
// compiled with -mavx2 -mfma (recost_bundle_avx2.cc); if that TU
// instantiated inline functions from shared heavy headers, the linker
// could keep ITS COMDAT copies and leak AVX2 code into generic builds.
// So this header mirrors the two structs it needs as PODs:
//
//   KernelOpKind         numeric mirror of PhysicalOpKind (static_asserts
//                        in recost_bundle.cc pin the values).
//   RecostKernelParams   field-name mirror of CostParams, so the shared
//                        cost_formulas_core.h templates instantiate
//                        unchanged (they only name fields).
//
// GroupView is the structure-of-arrays layout a bundle group exposes:
// kind-major steps, coefficient rows cell-major where a cell is one
// (step, block) pair ([(step*num_blocks + block)*4 + lane], 64-byte
// aligned so a 4-lane vector load never splits a cache line),
// per-(cell,lane) selectivity-slot ranges into one shared slot pool.
// Dead lanes are padded with a live lane's data at pack time — they
// compute a garbage-but-finite cost the caller masks off.
#pragma once

#include <cstdint>

#include "common/simd.h"
#include "optimizer/cost_formulas_core.h"

namespace scrpqo::bundle_kernel {

/// SIMD lane width of one block (plans evaluated per vector op).
inline constexpr int kBundleLanes = 4;

/// Maximum 4-lane blocks per group. Groups are per-shape: all plans with
/// one op-kind sequence share a group of up to kMaxBundleBlocks blocks, so
/// a single step loop (one switch dispatch, one mode load per step) drives
/// up to 16 plans, and the blocks' independent dependency chains overlap
/// in the out-of-order core.
inline constexpr int kMaxBundleBlocks = 4;

/// Maximum packed steps per group — matches RecostProgram::kInlineSlots
/// (static_assert in recost_bundle.cc); longer programs stay on the
/// scalar path.
inline constexpr int kMaxBundleSteps = 64;

/// Numeric mirror of PhysicalOpKind (values pinned by static_asserts in
/// recost_bundle.cc, which sees both enums).
enum class KernelOpKind : uint8_t {
  kTableScan = 0,
  kIndexSeek = 1,
  kIndexScanOrdered = 2,
  kSort = 3,
  kHashJoin = 4,
  kMergeJoin = 5,
  kIndexedNestedLoopsJoin = 6,
  kNaiveNestedLoopsJoin = 7,
  kHashAggregate = 8,
  kStreamAggregate = 9,
};

/// Field-name mirror of CostParams (the formula templates only access
/// fields by name), extended with the derived products the hoisted (HT)
/// formula forms consume — see cost_formulas_core.h for the identities.
/// RecostBundle converts once per sweep, not per plan.
struct RecostKernelParams {
  double cpu_per_row;
  double io_per_page;
  int64_t rows_per_page;
  double seek_base;
  double index_row_cpu;
  double rid_lookup;
  double hash_build_per_row;
  double hash_probe_per_row;
  double merge_per_row;
  double sort_per_row_log;
  double memory_rows;
  double spill_io_factor;
  // Derived (ToKernelParams): parameter-only subexpressions folded once
  // per sweep so the kernel broadcasts one scalar instead of recomputing
  // the product per step per block.
  double scan_cost_per_row;  // io_per_page / rows_per_page + cpu_per_row
  double per_match;          // index_row_cpu + rid_lookup + cpu_per_row
  double half_seek_base;     // 0.5 * seek_base
  double spill_per_row;      // spill_io_factor * io_per_page / rows_per_page
};

/// Per-step selectivity fast-path classes (GroupView::sel_mode). Bundles
/// classify each step at pack time; the kernel dispatches on the class so
/// the overwhelmingly common shapes skip the per-lane range loop. Lanes
/// hold plans of one template, so a step's leaf usually binds the SAME
/// sVector slots in every lane — kSelUniform turns those gathers into one
/// scalar product and a broadcast, the cheapest possible form.
inline constexpr uint8_t kSelGeneral = 0;     // per-lane range loop
inline constexpr uint8_t kSelOneSlot = 1;     // every lane binds one slot
inline constexpr uint8_t kSelAllLiteral = 2;  // no lane binds any slot
inline constexpr uint8_t kSelUniform = 3;     // identical slot list all lanes

/// Per-step seek-value classes (GroupView::seek_mode), same idea for
/// IndexSeek's sargable-predicate operand.
inline constexpr uint8_t kSeekMixed = 0;        // per-lane slot-or-constant
inline constexpr uint8_t kSeekAllConst = 1;     // every lane folded constant
inline constexpr uint8_t kSeekUniformSlot = 2;  // one shared sVector slot

/// Read-only SoA view of one packed group of `num_blocks` 4-lane blocks.
/// A (step, block) pair is a "cell": cell = step * num_blocks + block.
/// Coefficient rows are lane-major per cell — element [cell*4 + lane] —
/// and a/b/c/sel_lit rows are kSimdAlign-aligned, so one aligned vector
/// load feeds a whole block's step. Fast-path classes (sel_mode,
/// seek_mode) are classified per cell: a block's four lanes usually bind
/// identical slots even when its sibling blocks differ.
struct GroupView {
  int num_steps;
  int num_blocks;            // 1..kMaxBundleBlocks
  const uint8_t* kinds;      // [step]
  const double* a;           // [cell*4 + lane]
  const double* b;           // [cell*4 + lane]
  const double* c;           // [cell*4 + lane]
  const double* sel_lit;     // [cell*4 + lane]
  const uint32_t* sel_begin; // [cell*4 + lane] — range into `slots`
  const uint32_t* sel_end;   // [cell*4 + lane]
  const int32_t* seek_slot;  // [cell*4 + lane] — -1 = constant (in c)
  const int32_t* slots;      // shared slot pool (sVector indices)
  const uint8_t* sel_mode;   // [cell] — kSel* class
  const int32_t* sel_slot1;  // [cell*4 + lane] — slot when kSelOneSlot
  const uint8_t* seek_mode;  // [cell] — kSeek* class (IndexSeek steps)
  // Step-level hoists (classified at pack time): when EVERY cell of a
  // step is kSelUniform with the identical slot list — the dominant case
  // once lanes are binding-clustered — the kernel computes the shared
  // slot product once per STEP instead of once per block, the single
  // biggest uop saving in a multi-block pass.
  const uint8_t* step_sel_shared;   // [step] — 1 = shared uniform slot list
  const uint32_t* step_sel_begin;   // [step] — shared range into `slots`
  const uint32_t* step_sel_end;     // [step]
};

/// Per-lane leaf selectivity for one cell: folded literal product times
/// the bound sVector slots. The sel_mode classes keep the common one-slot
/// and literal-only cells branch- and loop-free — one-slot uses the
/// tier's Gather (hardware vgatherdpd on AVX2; a staging buffer's scalar
/// stores followed by a vector load would defeat store-to-load
/// forwarding). Only the rare multi-slot general class walks the ranges.
/// Products run in slot order starting from the literal, so every mode is
/// IEEE-identical to RecostProgram::Run's accumulation.
template <typename V>
SCRPQO_VEC_INLINE V LaneSel(const GroupView& g, int cell, const double* s) {
  const int base = cell * kBundleLanes;
  if (g.sel_mode[cell] == kSelAllLiteral) {
    return V::Load(g.sel_lit + base);
  }
  if (g.sel_mode[cell] == kSelUniform) {
    // Every lane binds the same slot list: form the shared slot product
    // once in scalar and broadcast it. With one slot this is exactly
    // flat Run's sel_lit * s[slot]; with more, the shared product is
    // grouped first (a <= 1 ulp reordering inside the 1e-9 bound).
    const uint32_t b0 = g.sel_begin[base];
    const uint32_t e0 = g.sel_end[base];
    double m = s[g.slots[b0]];
    for (uint32_t k = b0 + 1; k != e0; ++k) m *= s[g.slots[k]];
    return V::Load(g.sel_lit + base) * V(m);
  }
  if (g.sel_mode[cell] == kSelOneSlot) {
    return V::Load(g.sel_lit + base) * V::Gather(s, g.sel_slot1 + base);
  }
  alignas(kSimdAlign) double buf[kBundleLanes];
  for (int l = 0; l < kBundleLanes; ++l) {
    const int idx = base + l;
    double sel = g.sel_lit[idx];
    for (uint32_t k = g.sel_begin[idx]; k != g.sel_end[idx]; ++k) {
      sel *= s[g.slots[k]];
    }
    buf[l] = sel;
  }
  return V::Load(buf);
}

/// Shared slot product of a step_sel_shared step: every lane of every
/// block binds this one list, so one scalar product serves the whole
/// step. Association matches LaneSel's kSelUniform path exactly.
SCRPQO_VEC_INLINE double StepSelProduct(const GroupView& g, int step,
                                        const double* s) {
  const uint32_t b0 = g.step_sel_begin[step];
  const uint32_t e0 = g.step_sel_end[step];
  double m = s[g.slots[b0]];
  for (uint32_t k = b0 + 1; k != e0; ++k) m *= s[g.slots[k]];
  return m;
}

/// Evaluates every block of `g` against sVector data `s` and stores each
/// lane's cumulative root cost into out_cost[0 .. num_blocks*4). One step
/// loop drives all blocks: the switch dispatch and kind load are paid
/// once per step per SHAPE, and the blocks' disjoint dependency chains
/// overlap in the out-of-order core. Per-lane results are identical to
/// the corresponding RecostProgram::Run up to the value type's arithmetic
/// and the hoisted-form reassociations (exact association for Vec4dScalar
/// modulo the HT folds; FMA contraction adds ~1 ulp in the AVX2 tier —
/// all absorbed by the 1e-9 equivalence bound).
/// NBT is the group's total block count (the cell-index stride) and B0 the
/// first block this pass covers — both default to a full-group pass. The
/// AVX-512 dispatcher uses a partial pass (NBT=3, B0=2, NB=1) for the odd
/// trailing block of a three-block group.
template <typename V, int NB, int NBT = NB, int B0 = 0>
SCRPQO_VEC_INLINE void EvalGroupNbT(const GroupView& g, const double* s,
                                    const RecostKernelParams& p,
                                    double* out_cost) {
  namespace cf = scrpqo::cost_formulas;
  // Compile-time block count: the per-case block loops below fully unroll
  // and every stk index folds to a constant, so a single-block group pays
  // no loop or indexing overhead at all.
  constexpr int nb = NB;
  // Value stack, one slot per (depth, block): stk[depth*nb + blk].
  // Trivially-constructible on purpose (no zero-init): value-initializing
  // this array would memset kilobytes per pass — more than the arithmetic.
  cf::DerivedT<V> stk[kMaxBundleSteps * NB];
  int sp = 0;
  for (int step = 0; step < g.num_steps; ++step) {
    const int cell0 = step * NBT + B0;
    switch (static_cast<KernelOpKind>(g.kinds[step])) {
      case KernelOpKind::kTableScan: {
        // Step-shared hoist (multi-block only; for one block LaneSel's
        // kSelUniform path is already this): one scalar product for the
        // whole step instead of one per block.
        const bool shd = NB > 1 && g.step_sel_shared[step] != 0;
        const V sm = shd ? V(StepSelProduct(g, step, s)) : V(0.0);
        for (int blk = 0; blk < nb; ++blk) {
          const int base = (cell0 + blk) * kBundleLanes;
          const V sel = shd ? V::Load(g.sel_lit + base) * sm
                            : LaneSel<V>(g, cell0 + blk, s);
          stk[sp * nb + blk] =
              cf::TableScanHT<V>(p, V::Load(g.a + base), sel);
        }
        ++sp;
        break;
      }
      case KernelOpKind::kIndexSeek: {
        const bool shd = NB > 1 && g.step_sel_shared[step] != 0;
        const V sm = shd ? V(StepSelProduct(g, step, s)) : V(0.0);
        for (int blk = 0; blk < nb; ++blk) {
          const int cell = cell0 + blk;
          const int base = cell * kBundleLanes;
          V sel = shd ? V::Load(g.sel_lit + base) * sm
                      : LaneSel<V>(g, cell, s);
          // Seek operand by pack-time class: all-constant lanes load the
          // folded c row, one shared slot broadcasts, and only mixed
          // blocks pay the masked gather.
          V seek;
          if (g.seek_mode[cell] == kSeekAllConst) {
            seek = V::Load(g.c + base);
          } else if (g.seek_mode[cell] == kSeekUniformSlot) {
            seek = V(s[g.seek_slot[base]]);
          } else {
            seek = V::GatherOrDefault(s, g.seek_slot + base, g.c + base);
          }
          stk[sp * nb + blk] =
              cf::IndexSeekHT<V>(p, V::Load(g.a + base), sel, seek);
        }
        ++sp;
        break;
      }
      case KernelOpKind::kIndexScanOrdered: {
        const bool shd = NB > 1 && g.step_sel_shared[step] != 0;
        const V sm = shd ? V(StepSelProduct(g, step, s)) : V(0.0);
        for (int blk = 0; blk < nb; ++blk) {
          const int base = (cell0 + blk) * kBundleLanes;
          const V sel = shd ? V::Load(g.sel_lit + base) * sm
                            : LaneSel<V>(g, cell0 + blk, s);
          stk[sp * nb + blk] =
              cf::IndexScanOrderedHT<V>(p, V::Load(g.a + base), sel);
        }
        ++sp;
        break;
      }
      case KernelOpKind::kSort:
        for (int blk = 0; blk < nb; ++blk) {
          cf::DerivedT<V>& top = stk[(sp - 1) * nb + blk];
          top = cf::SortHT<V>(p, top);
        }
        break;
      case KernelOpKind::kHashJoin:
        --sp;
        for (int blk = 0; blk < nb; ++blk) {
          const int base = (cell0 + blk) * kBundleLanes;
          stk[(sp - 1) * nb + blk] =
              cf::HashJoinHT<V>(p, V::Load(g.a + base),
                                stk[(sp - 1) * nb + blk], stk[sp * nb + blk]);
        }
        break;
      case KernelOpKind::kMergeJoin:
        --sp;
        for (int blk = 0; blk < nb; ++blk) {
          const int base = (cell0 + blk) * kBundleLanes;
          stk[(sp - 1) * nb + blk] =
              cf::MergeJoinT<V>(p, V::Load(g.a + base),
                                stk[(sp - 1) * nb + blk], stk[sp * nb + blk]);
        }
        break;
      case KernelOpKind::kIndexedNestedLoopsJoin: {
        // Unary: the inner leaf was elided at compile time; this op
        // carries the inner's binding (sel range) and coefficients.
        const bool shd = NB > 1 && g.step_sel_shared[step] != 0;
        const V sm = shd ? V(StepSelProduct(g, step, s)) : V(0.0);
        for (int blk = 0; blk < nb; ++blk) {
          const int cell = cell0 + blk;
          const int base = cell * kBundleLanes;
          const V sel = shd ? V::Load(g.sel_lit + base) * sm
                            : LaneSel<V>(g, cell, s);
          cf::DerivedT<V>& top = stk[(sp - 1) * nb + blk];
          top = cf::IndexedNljHT<V>(p, V::Load(g.a + base),
                                    V::Load(g.b + base), V::Load(g.c + base),
                                    sel, top);
        }
        break;
      }
      case KernelOpKind::kNaiveNestedLoopsJoin:
        --sp;
        for (int blk = 0; blk < nb; ++blk) {
          const int base = (cell0 + blk) * kBundleLanes;
          stk[(sp - 1) * nb + blk] =
              cf::NaiveNljT<V>(p, V::Load(g.a + base),
                               stk[(sp - 1) * nb + blk], stk[sp * nb + blk]);
        }
        break;
      case KernelOpKind::kHashAggregate:
        for (int blk = 0; blk < nb; ++blk) {
          const int base = (cell0 + blk) * kBundleLanes;
          cf::DerivedT<V>& top = stk[(sp - 1) * nb + blk];
          top = cf::HashAggregateHT<V>(p, V::Load(g.a + base), top);
        }
        break;
      case KernelOpKind::kStreamAggregate:
        for (int blk = 0; blk < nb; ++blk) {
          const int base = (cell0 + blk) * kBundleLanes;
          cf::DerivedT<V>& top = stk[(sp - 1) * nb + blk];
          top = cf::StreamAggregateT<V>(p, V::Load(g.a + base), top);
        }
        break;
    }
  }
  for (int blk = 0; blk < nb; ++blk) {
    stk[blk].cost.Store(out_cost + (B0 + blk) * kBundleLanes);
  }
}

/// Width dispatch: one branch on the group's block count selects the
/// fully-unrolled instantiation.
template <typename V>
SCRPQO_VEC_INLINE void EvalGroupT(const GroupView& g, const double* s,
                                  const RecostKernelParams& p,
                                  double* out_cost) {
  static_assert(kMaxBundleBlocks == 4);
  switch (g.num_blocks) {
    case 1:
      EvalGroupNbT<V, 1>(g, s, p, out_cost);
      return;
    case 2:
      EvalGroupNbT<V, 2>(g, s, p, out_cost);
      return;
    case 3:
      EvalGroupNbT<V, 3>(g, s, p, out_cost);
      return;
    default:
      EvalGroupNbT<V, 4>(g, s, p, out_cost);
      return;
  }
}

/// Per-PAIR leaf selectivity: one 8-lane vector covering two adjacent
/// blocks (cells cellA and cellA+1, whose lane rows are contiguous).
/// Modes are still classified per cell, so a fast path applies only when
/// BOTH cells agree — the common case, because the bundle clusters lanes
/// by binding hash and block-aligns the clusters on growth. Disagreeing
/// pairs take the general per-lane loop, which matches flat Run's
/// product association exactly for every mode.
template <typename V8>
SCRPQO_VEC_INLINE V8 PairSel(const GroupView& g, int cellA, const double* s) {
  const int base = cellA * kBundleLanes;
  const uint8_t ma = g.sel_mode[cellA];
  const uint8_t mb = g.sel_mode[cellA + 1];
  if (ma == kSelAllLiteral && mb == kSelAllLiteral) {
    return V8::Load(g.sel_lit + base);
  }
  if (ma == kSelUniform && mb == kSelUniform) {
    // Each block's shared slot product in scalar, then one two-way
    // broadcast — the pair analogue of LaneSel's kSelUniform path.
    const uint32_t ba = g.sel_begin[base];
    const uint32_t ea = g.sel_end[base];
    double pa = s[g.slots[ba]];
    for (uint32_t k = ba + 1; k != ea; ++k) pa *= s[g.slots[k]];
    const uint32_t bb = g.sel_begin[base + kBundleLanes];
    const uint32_t eb = g.sel_end[base + kBundleLanes];
    double pb = s[g.slots[bb]];
    for (uint32_t k = bb + 1; k != eb; ++k) pb *= s[g.slots[k]];
    return V8::Load(g.sel_lit + base) * V8::BroadcastPair(pa, pb);
  }
  if (ma == kSelOneSlot && mb == kSelOneSlot) {
    return V8::Load(g.sel_lit + base) * V8::Gather(s, g.sel_slot1 + base);
  }
  alignas(kSimdAlign) double buf[2 * kBundleLanes];
  for (int l = 0; l < 2 * kBundleLanes; ++l) {
    const int idx = base + l;
    double sel = g.sel_lit[idx];
    for (uint32_t k = g.sel_begin[idx]; k != g.sel_end[idx]; ++k) {
      sel *= s[g.slots[k]];
    }
    buf[l] = sel;
  }
  return V8::Load(buf);
}

/// Paired-block kernel: each vector op spans TWO adjacent blocks (eight
/// lanes), halving the per-step op count relative to EvalGroupNbT on the
/// identical pack layout — pair pr covers blocks B0+2pr and B0+2pr+1.
/// V8 must expose the Vec4d interface widened to eight lanes plus
/// BroadcastPair (Vec8dAvx512). An odd trailing block is NOT handled
/// here; the dispatcher runs it as a one-block EvalGroupNbT pass.
template <typename V8, int NP, int NBT, int B0 = 0>
SCRPQO_VEC_INLINE void EvalGroupPairedT(const GroupView& g, const double* s,
                                        const RecostKernelParams& p,
                                        double* out_cost) {
  namespace cf = scrpqo::cost_formulas;
  constexpr int np = NP;
  cf::DerivedT<V8> stk[kMaxBundleSteps * NP];
  int sp = 0;
  for (int step = 0; step < g.num_steps; ++step) {
    const int cell0 = step * NBT + B0;
    switch (static_cast<KernelOpKind>(g.kinds[step])) {
      case KernelOpKind::kTableScan: {
        // Step-shared hoist: one scalar product + one broadcast for the
        // whole step (PairSel's per-pair path would redo it per pair).
        const bool shd = g.step_sel_shared[step] != 0;
        const V8 sm = shd ? V8(StepSelProduct(g, step, s)) : V8(0.0);
        for (int pr = 0; pr < np; ++pr) {
          const int cell = cell0 + 2 * pr;
          const int base = cell * kBundleLanes;
          const V8 sel = shd ? V8::Load(g.sel_lit + base) * sm
                             : PairSel<V8>(g, cell, s);
          stk[sp * np + pr] =
              cf::TableScanHT<V8>(p, V8::Load(g.a + base), sel);
        }
        ++sp;
        break;
      }
      case KernelOpKind::kIndexSeek: {
        const bool shd = g.step_sel_shared[step] != 0;
        const V8 sm = shd ? V8(StepSelProduct(g, step, s)) : V8(0.0);
        for (int pr = 0; pr < np; ++pr) {
          const int cell = cell0 + 2 * pr;
          const int base = cell * kBundleLanes;
          const V8 sel = shd ? V8::Load(g.sel_lit + base) * sm
                             : PairSel<V8>(g, cell, s);
          // Seek operand: fast paths only when both cells agree; the
          // masked gather covers every mixed combination exactly (the
          // per-lane seek_slot rows are always packed, whatever the
          // cell's classification).
          const uint8_t sa = g.seek_mode[cell];
          const uint8_t sb = g.seek_mode[cell + 1];
          V8 seek;
          if (sa == kSeekAllConst && sb == kSeekAllConst) {
            seek = V8::Load(g.c + base);
          } else if (sa == kSeekUniformSlot && sb == kSeekUniformSlot) {
            seek = V8::BroadcastPair(s[g.seek_slot[base]],
                                     s[g.seek_slot[base + kBundleLanes]]);
          } else {
            seek = V8::GatherOrDefault(s, g.seek_slot + base, g.c + base);
          }
          stk[sp * np + pr] =
              cf::IndexSeekHT<V8>(p, V8::Load(g.a + base), sel, seek);
        }
        ++sp;
        break;
      }
      case KernelOpKind::kIndexScanOrdered: {
        const bool shd = g.step_sel_shared[step] != 0;
        const V8 sm = shd ? V8(StepSelProduct(g, step, s)) : V8(0.0);
        for (int pr = 0; pr < np; ++pr) {
          const int cell = cell0 + 2 * pr;
          const int base = cell * kBundleLanes;
          const V8 sel = shd ? V8::Load(g.sel_lit + base) * sm
                             : PairSel<V8>(g, cell, s);
          stk[sp * np + pr] =
              cf::IndexScanOrderedHT<V8>(p, V8::Load(g.a + base), sel);
        }
        ++sp;
        break;
      }
      case KernelOpKind::kSort:
        for (int pr = 0; pr < np; ++pr) {
          cf::DerivedT<V8>& top = stk[(sp - 1) * np + pr];
          top = cf::SortHT<V8>(p, top);
        }
        break;
      case KernelOpKind::kHashJoin:
        --sp;
        for (int pr = 0; pr < np; ++pr) {
          const int base = (cell0 + 2 * pr) * kBundleLanes;
          stk[(sp - 1) * np + pr] =
              cf::HashJoinHT<V8>(p, V8::Load(g.a + base),
                                 stk[(sp - 1) * np + pr], stk[sp * np + pr]);
        }
        break;
      case KernelOpKind::kMergeJoin:
        --sp;
        for (int pr = 0; pr < np; ++pr) {
          const int base = (cell0 + 2 * pr) * kBundleLanes;
          stk[(sp - 1) * np + pr] =
              cf::MergeJoinT<V8>(p, V8::Load(g.a + base),
                                 stk[(sp - 1) * np + pr], stk[sp * np + pr]);
        }
        break;
      case KernelOpKind::kIndexedNestedLoopsJoin: {
        const bool shd = g.step_sel_shared[step] != 0;
        const V8 sm = shd ? V8(StepSelProduct(g, step, s)) : V8(0.0);
        for (int pr = 0; pr < np; ++pr) {
          const int cell = cell0 + 2 * pr;
          const int base = cell * kBundleLanes;
          const V8 sel = shd ? V8::Load(g.sel_lit + base) * sm
                             : PairSel<V8>(g, cell, s);
          cf::DerivedT<V8>& top = stk[(sp - 1) * np + pr];
          top = cf::IndexedNljHT<V8>(p, V8::Load(g.a + base),
                                     V8::Load(g.b + base),
                                     V8::Load(g.c + base), sel, top);
        }
        break;
      }
      case KernelOpKind::kNaiveNestedLoopsJoin:
        --sp;
        for (int pr = 0; pr < np; ++pr) {
          const int base = (cell0 + 2 * pr) * kBundleLanes;
          stk[(sp - 1) * np + pr] =
              cf::NaiveNljT<V8>(p, V8::Load(g.a + base),
                                stk[(sp - 1) * np + pr], stk[sp * np + pr]);
        }
        break;
      case KernelOpKind::kHashAggregate:
        for (int pr = 0; pr < np; ++pr) {
          const int base = (cell0 + 2 * pr) * kBundleLanes;
          cf::DerivedT<V8>& top = stk[(sp - 1) * np + pr];
          top = cf::HashAggregateHT<V8>(p, V8::Load(g.a + base), top);
        }
        break;
      case KernelOpKind::kStreamAggregate:
        for (int pr = 0; pr < np; ++pr) {
          const int base = (cell0 + 2 * pr) * kBundleLanes;
          cf::DerivedT<V8>& top = stk[(sp - 1) * np + pr];
          top = cf::StreamAggregateT<V8>(p, V8::Load(g.a + base), top);
        }
        break;
    }
  }
  for (int pr = 0; pr < np; ++pr) {
    stk[pr].cost.Store(out_cost + (B0 + 2 * pr) * kBundleLanes);
  }
}

/// Signature of a tier's group-evaluation entry point.
using EvalGroupFn = void (*)(const GroupView&, const double*,
                             const RecostKernelParams&, double*);

/// AVX2 tier, exported by recost_bundle_avx2.cc. HaveAvx2Kernel() reports
/// whether that TU was compiled with the kernel (x86-64 + supported
/// flags); EvalGroupAvx2 must only be called when it returns true AND
/// CpuSupportsAvx2Fma() — it is a safe no-kernel stub otherwise.
bool HaveAvx2Kernel();
void EvalGroupAvx2(const GroupView& g, const double* s,
                   const RecostKernelParams& p, double* out_cost);

/// AVX-512 tier, exported by recost_bundle_avx512.cc: multi-block groups
/// run the paired kernel (two blocks per 512-bit op); single blocks fall
/// back to the 256-bit kernel inside the same TU. Same contract as the
/// AVX2 pair: call only when HaveAvx512Kernel() AND CpuSupportsAvx512().
bool HaveAvx512Kernel();
void EvalGroupAvx512(const GroupView& g, const double* s,
                     const RecostKernelParams& p, double* out_cost);

}  // namespace scrpqo::bundle_kernel

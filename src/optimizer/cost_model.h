// Cost model shared between optimization-time costing and the Recost API.
//
// Costs follow the classic CPU + IO decomposition with asymptotic shapes
// matching the operators the paper analyzes in Section 5.4:
//   - scans: linear in input selectivity,
//   - nested loops join: proportional to s_outer * s_inner,
//   - hash join: proportional to s_outer + s_inner,
//   - sort-based operators: n log n, plus spill discontinuities when inputs
//     exceed the memory grant.
// The model is deliberately NOT rigged to satisfy the paper's Bounded Cost
// Growth assumption: sort's superlinearity and spill thresholds are exactly
// the "rare violation" sources Section 7.2 reports.
#pragma once

#include <cstdint>

#include "optimizer/physical_plan.h"
#include "query/query_instance.h"

namespace scrpqo {

/// Tunable constants (optimizer cost units; absolute scale is arbitrary,
/// only ratios matter for PQO metrics).
struct CostParams {
  double cpu_per_row = 0.0005;
  double io_per_page = 1.0;
  int64_t rows_per_page = 128;
  /// B-tree descent cost for one seek.
  double seek_base = 2.0;
  /// Per-row CPU when walking index entries.
  double index_row_cpu = 0.0002;
  /// Random-IO cost of fetching a base row from a secondary index match.
  double rid_lookup = 0.05;
  double hash_build_per_row = 0.0012;
  double hash_probe_per_row = 0.0006;
  double merge_per_row = 0.0004;
  double sort_per_row_log = 0.00012;
  /// Rows that fit in the per-operator memory grant; sorts/hashes larger
  /// than this pay spill IO (a BCG discontinuity source).
  double memory_rows = 60000.0;
  /// Spill IO multiplier (write + read one pass).
  double spill_io_factor = 2.0;
};

/// \brief Derives output cardinality and cost for a plan (sub)tree given a
/// selectivity vector. Used both by the optimizer's search (costing
/// candidate operators whose children are already derived) and by
/// ShrunkenMemo::Recost (re-deriving a cached tree bottom-up for a new
/// instance).
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Selectivity of a leaf's full predicate set under `sv`.
  double LeafSelectivity(const LeafInfo& leaf, const SVector& sv) const;

  /// Selectivity of one predicate under `sv`.
  double PredSelectivity(const PredSpec& pred, const SVector& sv) const;

  /// Fills node->est_rows / est_local_cost / est_cost assuming children are
  /// already derived. Non-const node variant used during plan construction.
  void DeriveNode(PhysicalPlanNode* node, const SVector& sv) const;

  /// Re-derives an entire tree bottom-up for a new selectivity vector,
  /// returning the root's cumulative cost. The tree itself is immutable;
  /// results are computed into a scratch recursion (this is the Recost hot
  /// path and does not allocate plan nodes).
  double RecostTree(const PhysicalPlanNode& root, const SVector& sv) const;

 private:
  struct Derived {
    double rows = 0.0;
    double cost = 0.0;  // cumulative
  };

  Derived DeriveRec(const PhysicalPlanNode& node, const SVector& sv) const;

  /// Dispatches to the shared per-operator formulas (cost_formulas.h):
  /// given the node and derived children, compute output rows and
  /// cumulative cost.
  Derived Combine(const PhysicalPlanNode& node, const SVector& sv,
                  const Derived* child0, const Derived* child1) const;

  CostParams params_;
};

}  // namespace scrpqo

// Flattened re-costing programs: the compiled, cache-friendly form of a
// CachedPlan's cost derivation.
//
// CostModel::RecostTree re-derives a cached plan by recursing over
// shared_ptr-linked PhysicalPlanNodes — a pointer chase per node, string
// and vector fields dragged through cache, and call-stack overhead on the
// hottest path in the system (every redundancy sweep re-costs every live
// plan; every cost check re-costs up to max_cost_check_candidates plans).
//
// RecostProgram::Compile walks the tree ONCE (at MakeCachedPlan time) and
// emits a postorder micro-op stream — one contiguous array of fixed-size
// Ops. Each op carries its operator kind plus the instance-independent
// constants its formula needs:
//
//   a / b / c      per-op coefficients
//                  (base_rows | join_sel | group_distinct | ...)
//   sel_lit        product of the leaf's literal-pred selectivities
//   sel_begin/end  range into slots() of the leaf's parameterized binding
//                  slots (sVector indices)
//   seek_slot      IndexSeek: sVector slot of the sargable seek predicate
//                  (-1 = constant, stored in c)
//
// Because the stream is postorder, Run needs no child indices at all: it
// evaluates the program like RPN on a tiny value stack (leaves push,
// unary ops rewrite the top, joins pop). IndexedNLJ is the exception: its
// inner leaf is elided at compile time — the formula ignores the inner's
// standalone derivation and this op carries the inner's base rows,
// per-probe matches, and binding slots itself — so it executes as a unary
// rewrite of the outer's slot. One linear scan over one
// allocation, values live at the stack top (registers, in practice), no
// recursion, no pointer chasing, and no heap traffic (plans up to
// kInlineSlots nodes use stack scratch; a thread-local spill buffer covers
// the rest). The arithmetic itself is the shared cost_formulas.h, so the
// program is equivalent to RecostTree up to multiplication reordering in
// leaf-selectivity products (~1 ulp; the property test bounds it at 1e-9
// relative).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// The two value stacks (and the sVector) never alias; telling the
/// compiler removes store-forwarding stalls in the scan.
#if defined(__GNUC__) || defined(__clang__)
#define SCRPQO_RESTRICT __restrict__
#else
#define SCRPQO_RESTRICT
#endif

#include "common/effects.h"
#include "optimizer/cost_model.h"
#include "optimizer/physical_plan.h"
#include "query/query_instance.h"

namespace scrpqo {

class RecostProgram {
 public:
  /// Plans at or below this node count run entirely on stack scratch.
  static constexpr int kInlineSlots = 64;

  RecostProgram() = default;

  /// Flattens `root` into a postorder micro-op stream. Instance-independent
  /// metadata is folded into per-op coefficients; CostParams stay a
  /// Run-time input so one compiled program serves any cost model (and
  /// compilation needs no CostModel handle at MakeCachedPlan time).
  static RecostProgram Compile(const PhysicalPlanNode& root);

  /// One postorder micro-op. Doubles first so the struct packs to 48 bytes
  /// with no interior padding — the whole stream is a dense sequential
  /// read. Public (read-only via ops()) so the batched kernels —
  /// RecostBundle's SoA packer and the 4-way pipelined block interpreter
  /// in recost_program_run.h — can consume the stream without a second
  /// compile path.
  struct Op {
    // Meaning by kind:            a                b                  c
    //   TableScan/IndexScanOrd    base_rows        -                  -
    //   IndexSeek                 base_rows        -                  const seek_sel
    //   HashJoin/MergeJoin/NNLJ   join_sel         -                  -
    //   IndexedNLJ                join_sel         per_probe_matches  inner base_rows
    //   Hash/StreamAggregate      group_distinct   -                  -
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
    double sel_lit = 1.0;
    uint32_t sel_begin = 0;
    uint32_t sel_end = 0;
    int32_t seek_slot = -1;
    uint8_t kind = 0;
  };

  /// True for a default-constructed (never compiled) program — callers
  /// fall back to the tree walker.
  bool empty() const { return ops_.empty(); }

  /// Op count. At most the plan's node count — INLJ inner leaves are
  /// elided at compile time.
  int num_nodes() const { return static_cast<int>(ops_.size()); }

  /// Highest sVector slot the program binds; -1 when fully literal.
  int max_binding_slot() const { return max_slot_; }

  /// Binding-slot table length (entries referenced by the ops' sel
  /// ranges).
  int num_binding_slots() const { return static_cast<int>(slots_.size()); }

  /// Heap bytes held by the compiled op stream + binding-slot table (for
  /// cache-memory budgeting; see Scr::EstimatedMemoryBytes). Compile
  /// shrinks both buffers to fit, so capacity here equals size and the
  /// figure is exact, not a growth-policy overshoot that would inflate
  /// PqoManager's global_memory_bytes eviction pressure.
  int64_t memory_bytes() const {
    return static_cast<int64_t>(ops_.capacity() * sizeof(Op)) +
           static_cast<int64_t>(slots_.capacity() * sizeof(int32_t));
  }

  static constexpr std::size_t kOpBytes = sizeof(Op);

  /// Read-only view of the compiled stream, for the batched kernels.
  const Op* ops() const { return ops_.data(); }
  const int32_t* slots() const { return slots_.data(); }

  /// Cost(P, q) for selectivity vector `sv` — one linear scan. Defined
  /// inline below so RecostService and the benches inline the whole
  /// kernel into their call sites. noexcept: proved non-throwing by the
  /// effect analyzer (SCRPQO_NOTHROW on the definition); a failed
  /// SCRPQO_CHECK aborts, it does not throw.
  double Run(const SVector& sv, const CostParams& params) const noexcept;

 private:
  double RunOps(const SVector& sv, const CostParams& params,
                double* SCRPQO_RESTRICT rows_stk,
                double* SCRPQO_RESTRICT cost_stk) const noexcept;

  void Emit(const PhysicalPlanNode& node);

  std::vector<Op> ops_;
  std::vector<int32_t> slots_;
  int max_slot_ = -1;
};

}  // namespace scrpqo

// Run/RunOps live in the header so callers inline the full kernel: the
// whole point of the flat form is a branch-light scan, and a call barrier
// at every Recost would forfeit a measurable slice of the win on the
// 5-10 node plans the paper's templates produce.
#include "optimizer/recost_program_run.h"

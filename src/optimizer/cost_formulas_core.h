// Width-generic per-operator cost arithmetic — the single source of truth
// behind every re-costing path in the system:
//
//   V = double        CostModel's tree walk and RecostProgram's scalar scan
//                     (bit-identical to the historical branching scalar
//                     code: the double overloads of VecMax/VecSelectGt are
//                     plain ternaries, and the conditional spill terms add
//                     a literal +0.0 on the untaken branch).
//   V = Vec4d*        RecostBundle's 4-plans-per-pass kernels (scalar,
//                     NEON, AVX2 tiers), instantiated from
//                     recost_bundle_kernel.h.
//
// Deliberately self-contained: no cost_model.h / physical_plan.h include,
// because the AVX2 kernel translation unit (compiled with -mavx2 -mfma)
// must not instantiate inline functions from shared heavy headers — a
// linker picking that TU's COMDAT copy would leak AVX2 code into generic
// builds. `P` is any struct with CostParams' field names (CostParams
// itself, or the kernel's mirrored RecostKernelParams POD).
//
// Formula shapes follow paper Section 5.4; see cost_formulas.h for the
// operator-by-operator commentary.
#pragma once

#include "common/simd.h"

namespace scrpqo::cost_formulas {

/// Minimum cardinality used when clamping intermediate row counts.
constexpr double kMinRows = 1.0;

/// Deliberately trivially-constructible: the bundle kernel keeps a
/// kMaxBundleSteps-deep array of these on the stack, and NSDMIs would
/// make the compiler memset 4 KB per group pass — measurably more than
/// the pass's own arithmetic. Formulas assign both fields before use.
template <typename V>
struct DerivedT {
  V rows;
  V cost;  // cumulative
};

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> TableScanT(const P& p, V base_rows, V sel) {
  // Multiply by the reciprocal: the scalar divide is off the dependency
  // chain (and CSE-able), where a per-lane divide would serialize on the
  // divider — the single slowest unit in every tier.
  V pages = base_rows * V(1.0 / static_cast<double>(p.rows_per_page));
  return {base_rows * sel,
          pages * V(p.io_per_page) + base_rows * V(p.cpu_per_row)};
}

/// `seek_sel` is the selectivity of the sargable predicate driving the
/// seek (1.0 for a parent-driven INLJ inner, which ignores this cost).
template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> IndexSeekT(const P& p, V base_rows, V sel,
                                         V seek_sel) {
  V matching = VecMax(base_rows * seek_sel, V(0.0));
  const double per_match =
      p.index_row_cpu + p.rid_lookup + p.cpu_per_row;
  return {base_rows * sel, V(p.seek_base) + matching * V(per_match)};
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> IndexScanOrderedT(const P& p, V base_rows,
                                                V sel) {
  const double per_row = p.index_row_cpu + p.rid_lookup + p.cpu_per_row;
  return {base_rows * sel, V(p.seek_base) + base_rows * V(per_row)};
}

template <typename V, typename P>
SCRPQO_VEC_INLINE V SortCostT(const P& p, V rows) {
  rows = VecMax(rows, V(kMinRows));
  V cost = V(p.sort_per_row_log) * rows * VecLog2(rows + V(2.0));
  V pages = rows * V(1.0 / static_cast<double>(p.rows_per_page));
  V spill = V(p.spill_io_factor) * pages * V(p.io_per_page);
  return cost + VecSelectGt(rows, V(p.memory_rows), spill, V(0.0));
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> SortT(const P& p, const DerivedT<V>& c0) {
  return {c0.rows, c0.cost + SortCostT<V>(p, c0.rows)};
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> HashJoinT(const P& p, V join_sel,
                                        const DerivedT<V>& c0,
                                        const DerivedT<V>& c1) {
  V probe = VecMax(c0.rows, V(0.0));
  V build = VecMax(c1.rows, V(0.0));
  DerivedT<V> out;
  out.rows = probe * build * join_sel;
  V local = build * V(p.hash_build_per_row) +
            probe * V(p.hash_probe_per_row) + out.rows * V(p.cpu_per_row);
  V pages = (build + probe) * V(1.0 / static_cast<double>(p.rows_per_page));
  V spill = V(p.spill_io_factor) * pages * V(p.io_per_page);
  local = local + VecSelectGt(build, V(p.memory_rows), spill, V(0.0));
  out.cost = c0.cost + c1.cost + local;
  return out;
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> MergeJoinT(const P& p, V join_sel,
                                         const DerivedT<V>& c0,
                                         const DerivedT<V>& c1) {
  DerivedT<V> out;
  out.rows = c0.rows * c1.rows * join_sel;
  V local = (c0.rows + c1.rows) * V(p.merge_per_row) +
            out.rows * V(p.cpu_per_row);
  out.cost = c0.cost + c1.cost + local;
  return out;
}

/// IndexedNLJ: the inner is a single-table leaf accessed via its index, so
/// only the outer child's cumulative cost is charged; the inner's
/// standalone derivation is ignored. `per_probe_matches` is
/// inner.base_rows * per_probe_sel (instance-independent); `inner_sel` is
/// the inner leaf's full predicate selectivity under the current sVector.
template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> IndexedNljT(const P& p, V join_sel,
                                          V per_probe_matches,
                                          V inner_base_rows, V inner_sel,
                                          const DerivedT<V>& c0) {
  V outer_rows = VecMax(c0.rows, V(0.0));
  const double per_match =
      p.index_row_cpu + p.rid_lookup + p.cpu_per_row;
  V probe_cost =
      V(0.5 * p.seek_base) + per_probe_matches * V(per_match);
  DerivedT<V> out;
  out.rows = outer_rows * inner_base_rows * inner_sel * join_sel;
  V local = outer_rows * probe_cost + out.rows * V(p.cpu_per_row);
  out.cost = c0.cost + local;
  return out;
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> NaiveNljT(const P& p, V join_sel,
                                        const DerivedT<V>& c0,
                                        const DerivedT<V>& c1) {
  V outer_rows = VecMax(c0.rows, V(kMinRows));
  DerivedT<V> out;
  out.rows = c0.rows * c1.rows * join_sel;
  V local = outer_rows * c1.cost + out.rows * V(p.cpu_per_row);
  out.cost = c0.cost + c1.cost + local;
  return out;
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> HashAggregateT(const P& p, V group_distinct,
                                             const DerivedT<V>& c0) {
  DerivedT<V> out;
  out.rows = VecMin(group_distinct, VecMax(c0.rows, V(kMinRows)));
  V local = c0.rows * V(p.hash_build_per_row) + out.rows * V(p.cpu_per_row);
  V pages = c0.rows * V(1.0 / static_cast<double>(p.rows_per_page));
  V spill = V(p.spill_io_factor) * pages * V(p.io_per_page);
  local = local + VecSelectGt(out.rows, V(p.memory_rows), spill, V(0.0));
  out.cost = c0.cost + local;
  return out;
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> StreamAggregateT(const P& p, V group_distinct,
                                               const DerivedT<V>& c0) {
  DerivedT<V> out;
  out.rows = VecMin(group_distinct, VecMax(c0.rows, V(kMinRows)));
  out.cost = c0.cost + c0.rows * V(p.cpu_per_row);
  return out;
}

// ---------------------------------------------------------------------------
// Hoisted forms ("HT"): the same formulas with every parameter-only
// subexpression folded into a derived field, computed ONCE per sweep
// instead of once per step per lane. `P` must additionally carry
//
//   scan_cost_per_row = io_per_page / rows_per_page + cpu_per_row
//   per_match         = index_row_cpu + rid_lookup + cpu_per_row
//   half_seek_base    = 0.5 * seek_base
//   spill_per_row     = spill_io_factor * io_per_page / rows_per_page
//
// (RecostKernelParams does; see RecostBundle::ToKernelParams). Each HT
// body equals its T counterpart up to reassociation of those products —
// a few ulp, bounded by the bundle property suite's 1e-9 relative check.
// Operators with nothing to hoist (MergeJoin, NaiveNlj, StreamAggregate)
// have no HT form; the kernel uses the T original.
// ---------------------------------------------------------------------------

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> TableScanHT(const P& p, V base_rows, V sel) {
  // (base_rows/rpp)*io + base_rows*cpu == base_rows * scan_cost_per_row.
  return {base_rows * sel, base_rows * V(p.scan_cost_per_row)};
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> IndexSeekHT(const P& p, V base_rows, V sel,
                                          V seek_sel) {
  V matching = VecMax(base_rows * seek_sel, V(0.0));
  return {base_rows * sel, V(p.seek_base) + matching * V(p.per_match)};
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> IndexScanOrderedHT(const P& p, V base_rows,
                                                 V sel) {
  return {base_rows * sel, V(p.seek_base) + base_rows * V(p.per_match)};
}

template <typename V, typename P>
SCRPQO_VEC_INLINE V SortCostHT(const P& p, V rows) {
  rows = VecMax(rows, V(kMinRows));
  V cost = V(p.sort_per_row_log) * rows * VecLog2(rows + V(2.0));
  V spill = rows * V(p.spill_per_row);
  return cost + VecSelectGt(rows, V(p.memory_rows), spill, V(0.0));
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> SortHT(const P& p, const DerivedT<V>& c0) {
  return {c0.rows, c0.cost + SortCostHT<V>(p, c0.rows)};
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> HashJoinHT(const P& p, V join_sel,
                                         const DerivedT<V>& c0,
                                         const DerivedT<V>& c1) {
  V probe = VecMax(c0.rows, V(0.0));
  V build = VecMax(c1.rows, V(0.0));
  DerivedT<V> out;
  out.rows = probe * build * join_sel;
  V local = build * V(p.hash_build_per_row) +
            probe * V(p.hash_probe_per_row) + out.rows * V(p.cpu_per_row);
  V spill = (build + probe) * V(p.spill_per_row);
  local = local + VecSelectGt(build, V(p.memory_rows), spill, V(0.0));
  out.cost = c0.cost + c1.cost + local;
  return out;
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> IndexedNljHT(const P& p, V join_sel,
                                           V per_probe_matches,
                                           V inner_base_rows, V inner_sel,
                                           const DerivedT<V>& c0) {
  V outer_rows = VecMax(c0.rows, V(0.0));
  V probe_cost =
      V(p.half_seek_base) + per_probe_matches * V(p.per_match);
  DerivedT<V> out;
  out.rows = outer_rows * inner_base_rows * inner_sel * join_sel;
  V local = outer_rows * probe_cost + out.rows * V(p.cpu_per_row);
  out.cost = c0.cost + local;
  return out;
}

template <typename V, typename P>
SCRPQO_VEC_INLINE DerivedT<V> HashAggregateHT(const P& p, V group_distinct,
                                              const DerivedT<V>& c0) {
  DerivedT<V> out;
  out.rows = VecMin(group_distinct, VecMax(c0.rows, V(kMinRows)));
  V local = c0.rows * V(p.hash_build_per_row) + out.rows * V(p.cpu_per_row);
  V spill = c0.rows * V(p.spill_per_row);
  local = local + VecSelectGt(out.rows, V(p.memory_rows), spill, V(0.0));
  out.cost = c0.cost + local;
  return out;
}

}  // namespace scrpqo::cost_formulas

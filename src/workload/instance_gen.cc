#include "workload/instance_gen.h"

#include <cmath>

#include "common/rng.h"
#include "query/query_instance.h"

namespace scrpqo {

namespace {

double SampleSmall(Pcg32* rng, const InstanceGenOptions& o) {
  // Log-uniform: small selectivities span orders of magnitude.
  double lo = std::log(o.small_lo), hi = std::log(o.small_hi);
  return std::exp(rng->UniformDouble(lo, hi));
}

double SampleLarge(Pcg32* rng, const InstanceGenOptions& o) {
  return rng->UniformDouble(o.large_lo, o.large_hi);
}

}  // namespace

std::vector<WorkloadInstance> GenerateInstances(
    const BoundTemplate& bt, const InstanceGenOptions& options) {
  const QueryTemplate& tmpl = *bt.tmpl;
  const Database& db = bt.db->db;
  int d = tmpl.dimensions();
  Pcg32 rng(options.seed ^ (static_cast<uint64_t>(d) << 32));

  // d+2 regions: 0 = all small, 1 = all large, 2+i = large only in dim i.
  int num_regions = d + 2;
  std::vector<SVector> targets;
  targets.reserve(static_cast<size_t>(options.m));
  for (int k = 0; k < options.m; ++k) {
    int region = k % num_regions;
    SVector t(static_cast<size_t>(d));
    for (int i = 0; i < d; ++i) {
      bool large;
      if (region == 0) {
        large = false;
      } else if (region == 1) {
        large = true;
      } else {
        large = (i == region - 2);
      }
      t[static_cast<size_t>(i)] =
          large ? SampleLarge(&rng, options) : SampleSmall(&rng, options);
    }
    targets.push_back(std::move(t));
  }
  rng.Shuffle(&targets);

  std::vector<WorkloadInstance> out;
  out.reserve(targets.size());
  for (size_t k = 0; k < targets.size(); ++k) {
    WorkloadInstance wi;
    wi.id = static_cast<int>(k);
    wi.instance = InstanceForSelectivities(db, tmpl, targets[k]);
    // The sVector the techniques see is the engine's own estimate for the
    // realized parameter values (not the sampling target).
    wi.svector = ComputeSelectivityVector(db, wi.instance);
    out.push_back(std::move(wi));
  }
  return out;
}

}  // namespace scrpqo

// The four evaluation databases (paper Section 7.1): a skewed TPC-H-like
// schema, a TPC-DS-like star schema, and two "real-world-like" databases
// RD1 and RD2 (RD2 is wide enough to support high-dimensional templates,
// d >= 5 up to 10). Row counts are laptop-scale; selectivity geometry, skew
// and index structure — the drivers of PQO behaviour — are preserved.
#pragma once

#include <string>
#include <vector>

#include "storage/database.h"

namespace scrpqo {

/// \brief A foreign-key relationship usable as a join edge by templates.
struct FkEdge {
  std::string child_table;
  std::string child_column;
  std::string parent_table;
  std::string parent_column;
};

/// \brief One evaluation database: data + the join graph templates draw on.
struct BenchmarkDb {
  std::string name;
  Database db;
  std::vector<FkEdge> fks;
};

/// Scale factor multiplies all row counts (1.0 = default laptop scale).
struct SchemaScale {
  double factor = 1.0;
  bool materialize_rows = false;
  uint64_t seed = 20170514;  // SIGMOD'17 opening day
};

BenchmarkDb BuildTpchSkewed(const SchemaScale& scale);
BenchmarkDb BuildDsLike(const SchemaScale& scale);
BenchmarkDb BuildRd1(const SchemaScale& scale);
BenchmarkDb BuildRd2(const SchemaScale& scale);

/// All four databases in evaluation order.
std::vector<BenchmarkDb> BuildAllDatabases(const SchemaScale& scale);

}  // namespace scrpqo

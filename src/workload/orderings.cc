#include "workload/orderings.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/math_util.h"
#include "common/rng.h"

namespace scrpqo {

std::string OrderingName(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kRandom:
      return "random";
    case OrderingKind::kDecreasingCost:
      return "dec-cost";
    case OrderingKind::kRoundRobinByPlan:
      return "round-robin";
    case OrderingKind::kInsideOut:
      return "inside-out";
    case OrderingKind::kOutsideIn:
      return "outside-in";
  }
  return "unknown";
}

std::vector<OrderingKind> AllOrderings() {
  return {OrderingKind::kRandom, OrderingKind::kDecreasingCost,
          OrderingKind::kRoundRobinByPlan, OrderingKind::kInsideOut,
          OrderingKind::kOutsideIn};
}

std::vector<int> MakeOrdering(OrderingKind kind,
                              const std::vector<InstanceOracleInfo>& info,
                              uint64_t seed) {
  int n = static_cast<int>(info.size());
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);

  switch (kind) {
    case OrderingKind::kRandom: {
      Pcg32 rng(seed);
      rng.Shuffle(&perm);
      break;
    }
    case OrderingKind::kDecreasingCost: {
      std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
        return info[static_cast<size_t>(a)].opt_cost >
               info[static_cast<size_t>(b)].opt_cost;
      });
      break;
    }
    case OrderingKind::kRoundRobinByPlan: {
      // Group by optimal plan, then emit one instance per group per round.
      std::map<uint64_t, std::vector<int>> by_plan;
      for (int i = 0; i < n; ++i) {
        by_plan[info[static_cast<size_t>(i)].plan_signature].push_back(i);
      }
      perm.clear();
      bool emitted = true;
      size_t round = 0;
      while (emitted) {
        emitted = false;
        for (auto& [sig, members] : by_plan) {
          if (round < members.size()) {
            perm.push_back(members[round]);
            emitted = true;
          }
        }
        ++round;
      }
      break;
    }
    case OrderingKind::kInsideOut:
    case OrderingKind::kOutsideIn: {
      std::vector<double> costs;
      costs.reserve(static_cast<size_t>(n));
      for (const auto& ii : info) costs.push_back(ii.opt_cost);
      double median = Percentile(costs, 50.0);
      std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
        double da = std::fabs(info[static_cast<size_t>(a)].opt_cost - median);
        double db = std::fabs(info[static_cast<size_t>(b)].opt_cost - median);
        return kind == OrderingKind::kInsideOut ? da < db : da > db;
      });
      break;
    }
  }
  return perm;
}

}  // namespace scrpqo

// Evaluation harness: builds the per-template optimizer oracle (each
// distinct instance optimized exactly once and memoized — techniques are
// still charged their calls), runs a technique over an ordered sequence and
// computes the paper's metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "pqo/engine_context.h"
#include "pqo/metrics.h"
#include "pqo/technique.h"
#include "workload/orderings.h"
#include "workload/templates.h"

namespace scrpqo {

/// \brief Memoized optimizer results for one instance set.
class Oracle {
 public:
  Oracle() = default;

  /// Optimizes every instance once (timed).
  static Oracle Build(const Optimizer& optimizer,
                      const std::vector<WorkloadInstance>& instances);

  std::shared_ptr<const OptimizationResult> result(int id) const {
    return results_[static_cast<size_t>(id)];
  }
  const CachedPlan& cached_plan(int id) const {
    return *plans_[static_cast<size_t>(id)];
  }
  double opt_cost(int id) const {
    return results_[static_cast<size_t>(id)]->cost;
  }

  /// Measured mean wall-clock of one optimizer call (for Table 3 style
  /// accounting).
  double avg_optimize_seconds() const { return avg_optimize_seconds_; }

  std::vector<InstanceOracleInfo> OrderingInfo() const;

  int size() const { return static_cast<int>(results_.size()); }

 private:
  std::vector<std::shared_ptr<const OptimizationResult>> results_;
  std::vector<std::shared_ptr<const CachedPlan>> plans_;
  double avg_optimize_seconds_ = 0.0;
};

struct RunSequenceOptions {
  /// Bound used to count SO-bound violations (<= 0 disables counting).
  double lambda_for_violations = 0.0;
  std::string ordering_name;
  /// Optional decision tracer: attached to the technique so every instance
  /// produces one decision event (plus cache events). Must outlive the run.
  Tracer* tracer = nullptr;
  /// Optional metrics registry: attached to technique and engine; each
  /// OnInstance is additionally timed into "get_plan_micros", and the
  /// registry snapshot lands in SequenceMetrics::obs. Must outlive the run.
  MetricsRegistry* metrics = nullptr;
};

/// Runs `technique` over the instances in permutation order, computing SO
/// per instance against the oracle. The oracle short-circuits the engine's
/// optimizer call (results are identical), so suites run fast while call
/// counts stay exact.
SequenceMetrics RunSequence(const Optimizer& optimizer,
                            const std::vector<WorkloadInstance>& instances,
                            const std::vector<int>& permutation,
                            const Oracle& oracle, PqoTechnique* technique,
                            const RunSequenceOptions& options);

}  // namespace scrpqo

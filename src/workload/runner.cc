#include "workload/runner.h"

#include <algorithm>
#include <chrono>

#include "common/status.h"
#include "obs/scoped_timer.h"
#include "optimizer/plan_signature.h"

namespace scrpqo {

Oracle Oracle::Build(const Optimizer& optimizer,
                     const std::vector<WorkloadInstance>& instances) {
  Oracle oracle;
  oracle.results_.reserve(instances.size());
  oracle.plans_.reserve(instances.size());
  auto start = std::chrono::steady_clock::now();
  for (const auto& wi : instances) {
    auto result = std::make_shared<OptimizationResult>(
        optimizer.OptimizeWithSVector(wi.instance, wi.svector));
    oracle.plans_.push_back(
        std::make_shared<CachedPlan>(MakeCachedPlan(*result)));
    oracle.results_.push_back(std::move(result));
  }
  auto end = std::chrono::steady_clock::now();
  if (!instances.empty()) {
    oracle.avg_optimize_seconds_ =
        std::chrono::duration<double>(end - start).count() /
        static_cast<double>(instances.size());
  }
  return oracle;
}

std::vector<InstanceOracleInfo> Oracle::OrderingInfo() const {
  std::vector<InstanceOracleInfo> info;
  info.reserve(results_.size());
  for (size_t i = 0; i < results_.size(); ++i) {
    InstanceOracleInfo ii;
    ii.opt_cost = results_[i]->cost;
    ii.plan_signature = plans_[i]->signature;
    info.push_back(ii);
  }
  return info;
}

SequenceMetrics RunSequence(const Optimizer& optimizer,
                            const std::vector<WorkloadInstance>& instances,
                            const std::vector<int>& permutation,
                            const Oracle& oracle, PqoTechnique* technique,
                            const RunSequenceOptions& options) {
  SCRPQO_CHECK(permutation.size() <= instances.size(),
               "permutation longer than instance set");
  EngineContext engine(&optimizer.db(), &optimizer);
  engine.SetOracle([&oracle](const WorkloadInstance& wi) {
    return oracle.result(wi.id);
  });
  engine.SetObs(options.metrics);
  if (options.tracer != nullptr || options.metrics != nullptr) {
    technique->SetObs(ObsHooks{options.tracer, options.metrics});
  }
  LogHistogram* get_plan_micros =
      options.metrics != nullptr
          ? options.metrics->histogram("get_plan_micros")
          : nullptr;

  SequenceMetrics metrics;
  metrics.technique = technique->name();
  metrics.ordering = options.ordering_name;
  metrics.m = static_cast<int64_t>(permutation.size());

  auto start = std::chrono::steady_clock::now();
  for (int idx : permutation) {
    const WorkloadInstance& wi = instances[static_cast<size_t>(idx)];
    PlanChoice choice;
    {
      ScopedTimer timer(get_plan_micros);
      choice = technique->OnInstance(wi, &engine);
    }
    SCRPQO_CHECK(choice.plan != nullptr, "technique returned no plan");

    double opt_cost = oracle.opt_cost(wi.id);
    double chosen_cost;
    if (choice.plan->signature == oracle.cached_plan(wi.id).signature) {
      chosen_cost = opt_cost;  // exactly the optimal plan
    } else {
      chosen_cost = engine.RecostUncharged(*choice.plan, wi.svector);
    }
    double so = opt_cost > 0.0 ? chosen_cost / opt_cost : 1.0;
    // Guard against cost-model degeneracies: SO is >= 1 by definition of
    // optimality; tiny dips below 1 are tie-costs of equivalent plans.
    so = std::max(so, 1.0);
    metrics.so_per_instance.push_back(so);
    metrics.mso = std::max(metrics.mso, so);
    metrics.total_chosen_cost += chosen_cost;
    metrics.total_optimal_cost += opt_cost;
    if (options.lambda_for_violations > 0.0 &&
        so > options.lambda_for_violations * 1.0000001) {
      ++metrics.bound_violations;
    }
    metrics.max_recost_per_get_plan = std::max(
        metrics.max_recost_per_get_plan, choice.recost_calls_in_get_plan);
  }
  auto end = std::chrono::steady_clock::now();
  // Drain deferred manageCache work (AsyncScr) so plan counts, counters
  // and the trace cover every instance of the sequence.
  technique->FlushBackgroundWork();

  metrics.technique_seconds =
      std::chrono::duration<double>(end - start).count();
  metrics.num_opt = engine.num_optimizer_calls();
  metrics.num_recost_calls = engine.num_recost_calls();
  metrics.num_plans = technique->PeakPlansCached();
  metrics.total_cost_ratio =
      metrics.total_optimal_cost > 0.0
          ? metrics.total_chosen_cost / metrics.total_optimal_cost
          : 1.0;
  if (options.metrics != nullptr) {
    metrics.obs = options.metrics->Snapshot();
  }
  return metrics;
}

}  // namespace scrpqo

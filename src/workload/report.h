// Text-table reporting helpers shared by the figure/table benchmarks:
// distribution summaries (avg / p50 / p90 / p95 / max) and decile curves of
// sequences sorted by a metric (the paper's "sorted by TotalCostRatio"
// figure style).
#pragma once

#include <string>
#include <vector>

#include "pqo/metrics.h"

namespace scrpqo {

/// Summary of one scalar across sequences.
struct DistSummary {
  double avg = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

DistSummary Summarize(const std::vector<double>& values);

/// Extracts one scalar per sequence.
std::vector<double> ExtractMso(const std::vector<SequenceMetrics>& seqs);
std::vector<double> ExtractTcr(const std::vector<SequenceMetrics>& seqs);
std::vector<double> ExtractNumOptPct(const std::vector<SequenceMetrics>& seqs);
std::vector<double> ExtractNumPlans(const std::vector<SequenceMetrics>& seqs);

/// Prints "metric: avg=... p50=... p90=... p95=... max=..." with a label.
void PrintSummaryRow(const std::string& label, const DistSummary& s);

/// Prints the decile curve of `values` sorted ascending (the shape of the
/// paper's per-sequence distribution figures).
void PrintSortedCurve(const std::string& label, std::vector<double> values);

/// Prints a fixed-width table header / row.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

std::string FormatDouble(double v, int precision = 2);

}  // namespace scrpqo

#include "workload/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/math_util.h"

namespace scrpqo {

DistSummary Summarize(const std::vector<double>& values) {
  DistSummary s;
  s.avg = Mean(values);
  s.p50 = Percentile(values, 50.0);
  s.p90 = Percentile(values, 90.0);
  s.p95 = Percentile(values, 95.0);
  s.max = Max(values);
  return s;
}

std::vector<double> ExtractMso(const std::vector<SequenceMetrics>& seqs) {
  std::vector<double> v;
  v.reserve(seqs.size());
  for (const auto& s : seqs) v.push_back(s.mso);
  return v;
}

std::vector<double> ExtractTcr(const std::vector<SequenceMetrics>& seqs) {
  std::vector<double> v;
  v.reserve(seqs.size());
  for (const auto& s : seqs) v.push_back(s.total_cost_ratio);
  return v;
}

std::vector<double> ExtractNumOptPct(
    const std::vector<SequenceMetrics>& seqs) {
  std::vector<double> v;
  v.reserve(seqs.size());
  for (const auto& s : seqs) v.push_back(s.NumOptPercent());
  return v;
}

std::vector<double> ExtractNumPlans(const std::vector<SequenceMetrics>& seqs) {
  std::vector<double> v;
  v.reserve(seqs.size());
  for (const auto& s : seqs) v.push_back(static_cast<double>(s.num_plans));
  return v;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintSummaryRow(const std::string& label, const DistSummary& s) {
  std::printf("%-28s avg=%-8s p50=%-8s p90=%-8s p95=%-8s max=%s\n",
              label.c_str(), FormatDouble(s.avg).c_str(),
              FormatDouble(s.p50).c_str(), FormatDouble(s.p90).c_str(),
              FormatDouble(s.p95).c_str(), FormatDouble(s.max).c_str());
}

void PrintSortedCurve(const std::string& label, std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::printf("%-28s", label.c_str());
  for (int decile = 10; decile <= 100; decile += 10) {
    double p = Percentile(values, static_cast<double>(decile));
    std::printf(" %8s", FormatDouble(p).c_str());
  }
  std::printf("\n");
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%-*s", i == 0 ? 30 : 14, columns[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%-*s", i == 0 ? 30 : 14, "------");
  }
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", i == 0 ? 30 : 14, cells[i].c_str());
  }
  std::printf("\n");
}

}  // namespace scrpqo

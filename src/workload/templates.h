// Programmatic construction of the evaluation's 90 parameterized query
// templates (paper Section 7.1): joins of 2-6 tables along foreign-key
// edges, with 1-10 parameterized one-sided range predicates (about a third
// of templates have d >= 4; RD2 supplies the d >= 5 templates), occasional
// literal predicates, and occasional aggregation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "query/query_template.h"
#include "workload/schemas.h"

namespace scrpqo {

/// \brief A template bound to the database it queries.
struct BoundTemplate {
  const BenchmarkDb* db = nullptr;
  std::shared_ptr<QueryTemplate> tmpl;
};

struct TemplateGenOptions {
  int num_templates = 90;
  uint64_t seed = 7;
  int max_tables = 6;
  int max_dimensions = 10;
};

/// Generates templates deterministically across the given databases.
/// Templates are distributed round-robin over databases, except that all
/// templates with d >= 5 are placed on RD2 (mirroring the paper, where only
/// RD2 supported high-dimensional templates).
std::vector<BoundTemplate> BuildTemplates(
    const std::vector<BenchmarkDb>& dbs, const TemplateGenOptions& options);

/// A specific 2-d template over the TPC-H-like database used by the
/// Figure 1 walk-through and several unit tests.
BoundTemplate BuildExample2dTemplate(const BenchmarkDb& tpch);

/// A d-dimensional template over RD2 (d in [1, 10]) for the dimensionality
/// sweeps (Figures 11, 12, 18).
BoundTemplate BuildRd2TemplateWithDimensions(const BenchmarkDb& rd2, int d);

}  // namespace scrpqo

#include "workload/schemas.h"

#include <cmath>

namespace scrpqo {

namespace {

int64_t Scaled(double base, const SchemaScale& scale) {
  return std::max<int64_t>(16, static_cast<int64_t>(base * scale.factor));
}

ColumnDef Pk(const std::string& name) {
  ColumnDef c;
  c.name = name;
  c.type = DataType::kInt64;
  c.distribution = ColumnDistribution::kSequential;
  return c;
}

ColumnDef Fk(const std::string& name, const std::string& ref,
             double zipf = 0.0) {
  ColumnDef c;
  c.name = name;
  c.type = DataType::kInt64;
  c.distribution = ColumnDistribution::kForeignKey;
  c.ref_table = ref;
  c.zipf_theta = zipf;
  return c;
}

ColumnDef Num(const std::string& name, double lo, double hi,
              ColumnDistribution dist = ColumnDistribution::kUniform,
              double zipf = 0.0, DataType type = DataType::kInt64) {
  ColumnDef c;
  c.name = name;
  c.type = type;
  c.distribution = dist;
  c.min_value = lo;
  c.max_value = hi;
  c.zipf_theta = zipf;
  return c;
}

IndexDef Idx(const std::string& column) {
  IndexDef i;
  i.name = "ix_" + column;
  i.column = column;
  return i;
}

Database Gen(std::vector<TableDef> defs, const SchemaScale& scale,
             uint64_t seed_offset) {
  GeneratorOptions opts;
  opts.seed = scale.seed + seed_offset;
  opts.materialize_rows = scale.materialize_rows;
  return GenerateDatabase(std::move(defs), opts);
}

}  // namespace

BenchmarkDb BuildTpchSkewed(const SchemaScale& scale) {
  std::vector<TableDef> defs;

  {
    TableDef t;
    t.name = "nation";
    t.row_count = 25;
    t.columns = {Pk("n_key"), Num("n_region", 0, 4)};
    t.indexes = {Idx("n_key")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "supplier";
    t.row_count = Scaled(1000, scale);
    t.columns = {Pk("s_key"), Fk("s_nation", "nation"),
                 Num("s_acctbal", -999, 9999,
                     ColumnDistribution::kUniform, 0.0, DataType::kDouble)};
    t.indexes = {Idx("s_key"), Idx("s_nation")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "customer";
    t.row_count = Scaled(15000, scale);
    t.columns = {Pk("c_key"), Fk("c_nation", "nation"),
                 Num("c_acctbal", -999, 9999,
                     ColumnDistribution::kZipf, 0.8, DataType::kDouble),
                 Num("c_mktsegment", 0, 4)};
    t.indexes = {Idx("c_key"), Idx("c_acctbal")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "part";
    t.row_count = Scaled(20000, scale);
    t.columns = {Pk("p_key"),
                 Num("p_size", 1, 50, ColumnDistribution::kZipf, 1.0),
                 Num("p_retailprice", 900, 2100,
                     ColumnDistribution::kNormal, 0.0, DataType::kDouble)};
    t.indexes = {Idx("p_key"), Idx("p_size")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "orders";
    t.row_count = Scaled(60000, scale);
    t.columns = {Pk("o_key"), Fk("o_custkey", "customer", 0.6),
                 Num("o_orderdate", 0, 2500,
                     ColumnDistribution::kZipf, 0.5),
                 Num("o_totalprice", 800, 500000,
                     ColumnDistribution::kZipf, 1.0, DataType::kDouble)};
    t.indexes = {Idx("o_key"), Idx("o_custkey"), Idx("o_orderdate")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "lineitem";
    t.row_count = Scaled(120000, scale);
    t.columns = {Pk("l_key"), Fk("l_orderkey", "orders", 0.4),
                 Fk("l_partkey", "part"), Fk("l_suppkey", "supplier"),
                 Num("l_quantity", 1, 50),
                 Num("l_extendedprice", 900, 105000,
                     ColumnDistribution::kZipf, 0.9, DataType::kDouble),
                 Num("l_shipdate", 0, 2500, ColumnDistribution::kUniform),
                 Num("l_discount", 0, 10)};
    t.indexes = {Idx("l_orderkey"), Idx("l_partkey"), Idx("l_suppkey"),
                 Idx("l_shipdate")};
    defs.push_back(t);
  }

  BenchmarkDb b;
  b.name = "TPCH";
  b.db = Gen(std::move(defs), scale, 1);
  b.fks = {
      {"supplier", "s_nation", "nation", "n_key"},
      {"customer", "c_nation", "nation", "n_key"},
      {"orders", "o_custkey", "customer", "c_key"},
      {"lineitem", "l_orderkey", "orders", "o_key"},
      {"lineitem", "l_partkey", "part", "p_key"},
      {"lineitem", "l_suppkey", "supplier", "s_key"},
  };
  return b;
}

BenchmarkDb BuildDsLike(const SchemaScale& scale) {
  std::vector<TableDef> defs;

  {
    TableDef t;
    t.name = "date_dim";
    t.row_count = Scaled(2000, scale);
    t.columns = {Pk("d_key"), Num("d_year", 1998, 2003),
                 Num("d_moy", 1, 12), Num("d_dom", 1, 31)};
    t.indexes = {Idx("d_key"), Idx("d_year")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "item";
    t.row_count = Scaled(9000, scale);
    t.columns = {Pk("i_key"),
                 Num("i_price", 1, 300, ColumnDistribution::kZipf, 0.9,
                     DataType::kDouble),
                 Num("i_category", 0, 9),
                 Num("i_brand", 0, 400, ColumnDistribution::kZipf, 1.1)};
    t.indexes = {Idx("i_key"), Idx("i_price")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "store";
    t.row_count = Scaled(120, scale);
    t.columns = {Pk("st_key"), Num("st_sqft", 5000, 90000),
                 Num("st_county", 0, 30)};
    t.indexes = {Idx("st_key")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "customer_ds";
    t.row_count = Scaled(25000, scale);
    t.columns = {Pk("cd_key"), Num("cd_income", 1000, 200000,
                                   ColumnDistribution::kZipf, 0.7),
                 Num("cd_dep_count", 0, 9),
                 Num("cd_birth_year", 1930, 2000)};
    t.indexes = {Idx("cd_key"), Idx("cd_income")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "store_sales";
    t.row_count = Scaled(140000, scale);
    t.columns = {Fk("ss_date", "date_dim", 0.5),
                 Fk("ss_item", "item", 0.9),
                 Fk("ss_store", "store"),
                 Fk("ss_customer", "customer_ds", 0.4),
                 Num("ss_quantity", 1, 100),
                 Num("ss_sales_price", 1, 300,
                     ColumnDistribution::kZipf, 0.8, DataType::kDouble),
                 Num("ss_net_profit", -5000, 10000,
                     ColumnDistribution::kNormal, 0.0, DataType::kDouble)};
    t.indexes = {Idx("ss_date"), Idx("ss_item"), Idx("ss_store"),
                 Idx("ss_customer"), Idx("ss_sales_price")};
    defs.push_back(t);
  }

  BenchmarkDb b;
  b.name = "TPCDS";
  b.db = Gen(std::move(defs), scale, 2);
  b.fks = {
      {"store_sales", "ss_date", "date_dim", "d_key"},
      {"store_sales", "ss_item", "item", "i_key"},
      {"store_sales", "ss_store", "store", "st_key"},
      {"store_sales", "ss_customer", "customer_ds", "cd_key"},
  };
  return b;
}

BenchmarkDb BuildRd1(const SchemaScale& scale) {
  // An operational-style schema: accounts -> users -> events chain with a
  // lookup dimension. Mixed distributions, some unindexed predicate columns.
  std::vector<TableDef> defs;

  {
    TableDef t;
    t.name = "account";
    t.row_count = Scaled(4000, scale);
    t.columns = {Pk("a_key"), Num("a_plan", 0, 5),
                 Num("a_mrr", 0, 100000, ColumnDistribution::kZipf, 1.2,
                     DataType::kDouble),
                 Num("a_created", 0, 3650)};
    t.indexes = {Idx("a_key"), Idx("a_created")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "app_user";
    t.row_count = Scaled(30000, scale);
    t.columns = {Pk("u_key"), Fk("u_account", "account", 0.9),
                 Num("u_age_days", 0, 3650, ColumnDistribution::kZipf, 0.6),
                 Num("u_score", 0, 1000, ColumnDistribution::kNormal, 0.0,
                     DataType::kDouble)};
    t.indexes = {Idx("u_key"), Idx("u_account"), Idx("u_score")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "event";
    t.row_count = Scaled(150000, scale);
    t.columns = {Fk("e_user", "app_user", 0.8),
                 Num("e_type", 0, 40, ColumnDistribution::kZipf, 1.3),
                 Num("e_latency_ms", 1, 30000, ColumnDistribution::kZipf,
                     1.0, DataType::kDouble),
                 Num("e_day", 0, 365)};
    t.indexes = {Idx("e_user"), Idx("e_day")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "event_type_dim";
    t.row_count = 64;
    t.columns = {Pk("et_key"), Num("et_severity", 0, 4)};
    t.indexes = {Idx("et_key")};
    defs.push_back(t);
  }

  BenchmarkDb b;
  b.name = "RD1";
  b.db = Gen(std::move(defs), scale, 3);
  b.fks = {
      {"app_user", "u_account", "account", "a_key"},
      {"event", "e_user", "app_user", "u_key"},
      {"event", "e_type", "event_type_dim", "et_key"},
  };
  return b;
}

BenchmarkDb BuildRd2(const SchemaScale& scale) {
  // A wide analytics schema supporting high-dimensional templates
  // (many filterable numeric measures per table; d up to 10).
  std::vector<TableDef> defs;

  {
    TableDef t;
    t.name = "device";
    t.row_count = Scaled(12000, scale);
    t.columns = {Pk("dv_key"), Num("dv_model", 0, 200),
                 Num("dv_fw", 0, 50, ColumnDistribution::kZipf, 0.8),
                 Num("dv_age", 0, 2000),
                 Num("dv_health", 0, 100, ColumnDistribution::kNormal, 0.0,
                     DataType::kDouble)};
    t.indexes = {Idx("dv_key"), Idx("dv_age")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "site";
    t.row_count = Scaled(800, scale);
    t.columns = {Pk("si_key"), Num("si_region", 0, 20),
                 Num("si_capacity", 10, 5000, ColumnDistribution::kZipf, 0.7),
                 Num("si_uptime", 0, 100, ColumnDistribution::kNormal, 0.0,
                     DataType::kDouble)};
    t.indexes = {Idx("si_key")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "reading";
    t.row_count = Scaled(160000, scale);
    t.columns = {Fk("r_device", "device", 0.7), Fk("r_site", "site", 0.5),
                 Num("r_hour", 0, 8760),
                 Num("r_temp", -40, 120, ColumnDistribution::kNormal, 0.0,
                     DataType::kDouble),
                 Num("r_power", 0, 10000, ColumnDistribution::kZipf, 0.9,
                     DataType::kDouble),
                 Num("r_voltage", 100, 260, ColumnDistribution::kNormal,
                     0.0, DataType::kDouble),
                 Num("r_errors", 0, 500, ColumnDistribution::kZipf, 1.4),
                 Num("r_signal", 0, 100)};
    t.indexes = {Idx("r_device"), Idx("r_site"), Idx("r_hour"),
                 Idx("r_power")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "alert";
    t.row_count = Scaled(40000, scale);
    t.columns = {Fk("al_device", "device", 1.0),
                 Num("al_severity", 0, 10, ColumnDistribution::kZipf, 1.1),
                 Num("al_duration", 1, 86400, ColumnDistribution::kZipf,
                     0.9),
                 Num("al_day", 0, 365)};
    t.indexes = {Idx("al_device"), Idx("al_day")};
    defs.push_back(t);
  }
  {
    TableDef t;
    t.name = "maintenance";
    t.row_count = Scaled(8000, scale);
    t.columns = {Fk("m_site", "site"), Num("m_cost", 10, 100000,
                                           ColumnDistribution::kZipf, 1.0,
                                           DataType::kDouble),
                 Num("m_day", 0, 365), Num("m_crew", 1, 20)};
    t.indexes = {Idx("m_site")};
    defs.push_back(t);
  }

  BenchmarkDb b;
  b.name = "RD2";
  b.db = Gen(std::move(defs), scale, 4);
  b.fks = {
      {"reading", "r_device", "device", "dv_key"},
      {"reading", "r_site", "site", "si_key"},
      {"alert", "al_device", "device", "dv_key"},
      {"maintenance", "m_site", "site", "si_key"},
  };
  return b;
}

std::vector<BenchmarkDb> BuildAllDatabases(const SchemaScale& scale) {
  std::vector<BenchmarkDb> dbs;
  dbs.push_back(BuildTpchSkewed(scale));
  dbs.push_back(BuildDsLike(scale));
  dbs.push_back(BuildRd1(scale));
  dbs.push_back(BuildRd2(scale));
  return dbs;
}

}  // namespace scrpqo

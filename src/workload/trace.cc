#include "workload/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "query/query_instance.h"

namespace scrpqo {

std::string SerializeTrace(const std::vector<WorkloadInstance>& instances) {
  std::ostringstream os;
  for (const auto& wi : instances) {
    os << wi.id;
    for (const auto& p : wi.instance.params()) {
      char buf[40];
      if (p.is_int64()) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(p.int64()));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", p.AsDouble());
      }
      os << "," << buf;
    }
    os << "\n";
  }
  return os.str();
}

Result<std::vector<WorkloadInstance>> ParseTrace(const BoundTemplate& bt,
                                                 const std::string& csv) {
  const QueryTemplate& tmpl = *bt.tmpl;
  std::vector<WorkloadInstance> out;
  std::istringstream is(csv);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    if (static_cast<int>(cells.size()) != 1 + tmpl.dimensions()) {
      return Status::InvalidArgument(
          "trace line " + std::to_string(lineno) + ": expected " +
          std::to_string(1 + tmpl.dimensions()) + " fields, got " +
          std::to_string(cells.size()));
    }
    WorkloadInstance wi;
    char* end = nullptr;
    wi.id = static_cast<int>(std::strtol(cells[0].c_str(), &end, 10));
    if (end == cells[0].c_str()) {
      return Status::InvalidArgument("trace line " + std::to_string(lineno) +
                                     ": bad id");
    }
    std::vector<Value> params;
    for (int slot = 0; slot < tmpl.dimensions(); ++slot) {
      const std::string& c = cells[static_cast<size_t>(slot) + 1];
      const PredicateTemplate& pred = tmpl.PredicateForSlot(slot);
      const std::string& table =
          tmpl.tables()[static_cast<size_t>(pred.table_index)];
      const TableDef& def = bt.db->db.catalog().GetTable(table);
      int ci = def.ColumnIndex(pred.column);
      if (ci < 0) {
        return Status::InvalidArgument("trace references unknown column " +
                                       pred.column);
      }
      end = nullptr;
      double v = std::strtod(c.c_str(), &end);
      if (end == c.c_str()) {
        return Status::InvalidArgument("trace line " +
                                       std::to_string(lineno) +
                                       ": bad parameter value '" + c + "'");
      }
      if (def.columns[static_cast<size_t>(ci)].type == DataType::kInt64) {
        params.emplace_back(static_cast<int64_t>(v));
      } else {
        params.emplace_back(v);
      }
    }
    wi.instance = QueryInstance(bt.tmpl.get(), std::move(params));
    wi.svector = ComputeSelectivityVector(bt.db->db, wi.instance);
    out.push_back(std::move(wi));
  }
  return out;
}

Status SaveTrace(const std::vector<WorkloadInstance>& instances,
                 const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  f << SerializeTrace(instances);
  return f.good() ? Status::OK()
                  : Status::Internal("write failed: " + path);
}

Result<std::vector<WorkloadInstance>> LoadTrace(const BoundTemplate& bt,
                                                const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::NotFound("trace file not found: " + path);
  }
  std::stringstream buf;
  buf << f.rdbuf();
  return ParseTrace(bt, buf.str());
}

}  // namespace scrpqo

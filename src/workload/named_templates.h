// Hand-written named query templates, analogous to the benchmark queries
// the paper calls out by name (TPC-DS Q18 and Q25 appear in Sections 7.3
// and Appendices D/E; TPC-H-style join pipelines drive the overview
// examples). Unlike the generated suite these have fixed, documented
// shapes, so experiments quoting "Q18" are reproducible statements about a
// specific query.
#pragma once

#include <string>
#include <vector>

#include "workload/templates.h"

namespace scrpqo {

/// A named template plus the database it belongs to ("TPCH", "TPCDS",
/// "RD1", "RD2").
struct NamedTemplate {
  std::string name;
  std::string database;
  std::string description;
};

/// Catalog of available named templates.
std::vector<NamedTemplate> ListNamedTemplates();

/// Builds a named template against the matching database from `dbs`
/// (as returned by BuildAllDatabases). Aborts on unknown name.
BoundTemplate BuildNamedTemplate(const std::vector<BenchmarkDb>& dbs,
                                 const std::string& name);

}  // namespace scrpqo

#include "workload/suite.h"

#include <cstdio>

#include <atomic>
#include <thread>

#include "common/env.h"

namespace scrpqo {

SuiteConfig SuiteConfig::FromEnv() {
  SuiteConfig c;
  c.num_templates =
      static_cast<int>(EnvInt64("SCRPQO_TEMPLATES", c.num_templates));
  c.m = static_cast<int>(EnvInt64("SCRPQO_M", c.m));
  c.scale = EnvDouble("SCRPQO_SCALE", c.scale);
  c.seed = static_cast<uint64_t>(EnvInt64("SCRPQO_SEED",
                                          static_cast<int64_t>(c.seed)));
  return c;
}

EvaluationSuite::EvaluationSuite(SuiteConfig config)
    : config_(std::move(config)) {
  SchemaScale scale;
  scale.factor = config_.scale;
  scale.materialize_rows = config_.materialize_rows;
  scale.seed = config_.seed;
  dbs_ = BuildAllDatabases(scale);

  TemplateGenOptions topts;
  topts.num_templates = config_.num_templates;
  topts.seed = config_.seed + 1;
  std::vector<BoundTemplate> templates = BuildTemplates(dbs_, topts);

  for (auto& bt : templates) {
    TemplateWorkload tw;
    tw.bound = bt;
    tw.optimizer = std::make_unique<Optimizer>(&bt.db->db);
    InstanceGenOptions iopts;
    // Paper: 1000 instances, 2000 for d > 3.
    iopts.m = bt.tmpl->dimensions() > 3 ? config_.m * 2 : config_.m;
    iopts.seed = config_.seed + 1000 + workloads_.size();
    tw.instances = GenerateInstances(tw.bound, iopts);
    tw.oracle = Oracle::Build(*tw.optimizer, tw.instances);
    workloads_.push_back(std::move(tw));
  }
}

std::vector<SequenceMetrics> EvaluationSuite::RunTemplate(
    const TemplateWorkload& tw, const TechniqueFactory& factory,
    double lambda_for_violations) const {
  std::vector<OrderingKind> orderings =
      config_.orderings.empty() ? AllOrderings() : config_.orderings;
  std::vector<InstanceOracleInfo> info = tw.oracle.OrderingInfo();

  std::vector<SequenceMetrics> out;
  for (OrderingKind kind : orderings) {
    std::vector<int> perm = MakeOrdering(kind, info, config_.seed + 77);
    std::unique_ptr<PqoTechnique> technique = factory();
    RunSequenceOptions ropts;
    ropts.lambda_for_violations = lambda_for_violations;
    ropts.ordering_name = OrderingName(kind);
    SequenceMetrics metrics =
        RunSequence(*tw.optimizer, tw.instances, perm, tw.oracle,
                    technique.get(), ropts);
    metrics.template_name = tw.bound.tmpl->name();
    out.push_back(std::move(metrics));
  }
  return out;
}

std::vector<SequenceMetrics> EvaluationSuite::RunAll(
    const TechniqueFactory& factory, double lambda_for_violations,
    bool progress) const {
  int threads = static_cast<int>(
      EnvInt64("SCRPQO_THREADS",
               std::min<int64_t>(
                   4, static_cast<int64_t>(
                          std::max(1u, std::thread::hardware_concurrency())))));
  threads = std::max(1, std::min<int>(threads,
                                      static_cast<int>(workloads_.size())));

  // Each template's sequences land in a fixed slot, so the output order is
  // identical to the serial run no matter how workers interleave.
  std::vector<std::vector<SequenceMetrics>> per_template(workloads_.size());
  std::atomic<size_t> next{0};
  std::atomic<int> done{0};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= workloads_.size()) return;
      per_template[i] =
          RunTemplate(workloads_[i], factory, lambda_for_violations);
      int d = done.fetch_add(1) + 1;
      if (progress && d % 20 == 0) {
        std::fprintf(stderr, "  ... %d/%zu templates\n", d,
                     workloads_.size());
      }
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  std::vector<SequenceMetrics> all;
  for (auto& seqs : per_template) {
    for (auto& s : seqs) all.push_back(std::move(s));
  }
  return all;
}

}  // namespace scrpqo

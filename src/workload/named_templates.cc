#include "workload/named_templates.h"

#include <functional>
#include <map>

#include "common/status.h"

namespace scrpqo {

namespace {

struct Builder {
  std::string database;
  std::string description;
  std::function<std::shared_ptr<QueryTemplate>()> make;
};

void AddJoin(QueryTemplate* tmpl, int lt, const char* lc, int rt,
             const char* rc) {
  JoinEdge e;
  e.left_table = lt;
  e.left_column = lc;
  e.right_table = rt;
  e.right_column = rc;
  tmpl->AddJoin(e);
}

void AddParam(QueryTemplate* tmpl, int t, const char* col, CompareOp op,
              int slot) {
  PredicateTemplate p;
  p.table_index = t;
  p.column = col;
  p.op = op;
  p.param_slot = slot;
  Status st = tmpl->AddPredicate(std::move(p));
  SCRPQO_CHECK(st.ok(), st.ToString());
}

void AddLiteral(QueryTemplate* tmpl, int t, const char* col, CompareOp op,
                Value v) {
  PredicateTemplate p;
  p.table_index = t;
  p.column = col;
  p.op = op;
  p.literal = std::move(v);
  Status st = tmpl->AddPredicate(std::move(p));
  SCRPQO_CHECK(st.ok(), st.ToString());
}

void SetAgg(QueryTemplate* tmpl, int t, const char* col) {
  AggregateSpec agg;
  agg.enabled = true;
  agg.group_table = t;
  agg.group_column = col;
  tmpl->SetAggregate(agg);
}

const std::map<std::string, Builder>& Registry() {
  static const std::map<std::string, Builder>* registry = [] {
    auto* r = new std::map<std::string, Builder>();

    (*r)["TPCH_PRICING"] = {
        "TPCH",
        "lineitem pricing scan: 2-d range filter on a single fact table",
        [] {
          auto t = std::make_shared<QueryTemplate>(
              "TPCH_PRICING", std::vector<std::string>{"lineitem"});
          AddParam(t.get(), 0, "l_shipdate", CompareOp::kLe, 0);
          AddParam(t.get(), 0, "l_discount", CompareOp::kGe, 1);
          return t;
        }};

    (*r)["TPCH_SHIPPING"] = {
        "TPCH",
        "3-way pipeline lineitem-orders-customer with date and price params",
        [] {
          auto t = std::make_shared<QueryTemplate>(
              "TPCH_SHIPPING",
              std::vector<std::string>{"lineitem", "orders", "customer"});
          AddJoin(t.get(), 0, "l_orderkey", 1, "o_key");
          AddJoin(t.get(), 1, "o_custkey", 2, "c_key");
          AddParam(t.get(), 0, "l_shipdate", CompareOp::kLe, 0);
          AddParam(t.get(), 1, "o_orderdate", CompareOp::kGe, 1);
          AddLiteral(t.get(), 2, "c_mktsegment", CompareOp::kLe,
                     Value(int64_t{2}));
          return t;
        }};

    (*r)["TPCH_PARTS"] = {
        "TPCH",
        "4-way bushy shape: lineitem joins part and supplier, grouped by "
        "part size",
        [] {
          auto t = std::make_shared<QueryTemplate>(
              "TPCH_PARTS", std::vector<std::string>{"lineitem", "part",
                                                     "supplier", "orders"});
          AddJoin(t.get(), 0, "l_partkey", 1, "p_key");
          AddJoin(t.get(), 0, "l_suppkey", 2, "s_key");
          AddJoin(t.get(), 0, "l_orderkey", 3, "o_key");
          AddParam(t.get(), 1, "p_size", CompareOp::kLe, 0);
          AddParam(t.get(), 0, "l_quantity", CompareOp::kGe, 1);
          AddParam(t.get(), 3, "o_totalprice", CompareOp::kLe, 2);
          SetAgg(t.get(), 1, "p_size");
          return t;
        }};

    (*r)["TPCDS_Q18A"] = {
        "TPCDS",
        "analog of the paper's Q18 experiments: star join over store_sales "
        "with customer demographics and date filters, grouped by item "
        "category",
        [] {
          auto t = std::make_shared<QueryTemplate>(
              "TPCDS_Q18A",
              std::vector<std::string>{"store_sales", "customer_ds", "item",
                                       "date_dim"});
          AddJoin(t.get(), 0, "ss_customer", 1, "cd_key");
          AddJoin(t.get(), 0, "ss_item", 2, "i_key");
          AddJoin(t.get(), 0, "ss_date", 3, "d_key");
          AddParam(t.get(), 1, "cd_dep_count", CompareOp::kLe, 0);
          AddParam(t.get(), 3, "d_year", CompareOp::kLe, 1);
          AddParam(t.get(), 1, "cd_birth_year", CompareOp::kGe, 2);
          SetAgg(t.get(), 2, "i_category");
          return t;
        }};

    (*r)["TPCDS_Q25A"] = {
        "TPCDS",
        "analog of the paper's Q25 dynamic-lambda experiment: sales by "
        "store with price and profit parameters",
        [] {
          auto t = std::make_shared<QueryTemplate>(
              "TPCDS_Q25A",
              std::vector<std::string>{"store_sales", "store", "item"});
          AddJoin(t.get(), 0, "ss_store", 1, "st_key");
          AddJoin(t.get(), 0, "ss_item", 2, "i_key");
          AddParam(t.get(), 0, "ss_sales_price", CompareOp::kLe, 0);
          AddParam(t.get(), 0, "ss_net_profit", CompareOp::kGe, 1);
          AddParam(t.get(), 2, "i_price", CompareOp::kLe, 2);
          return t;
        }};

    (*r)["RD1_FUNNEL"] = {
        "RD1",
        "operational funnel: events by user and account with score and "
        "latency parameters",
        [] {
          auto t = std::make_shared<QueryTemplate>(
              "RD1_FUNNEL",
              std::vector<std::string>{"event", "app_user", "account"});
          AddJoin(t.get(), 0, "e_user", 1, "u_key");
          AddJoin(t.get(), 1, "u_account", 2, "a_key");
          AddParam(t.get(), 0, "e_latency_ms", CompareOp::kGe, 0);
          AddParam(t.get(), 1, "u_score", CompareOp::kLe, 1);
          AddParam(t.get(), 2, "a_mrr", CompareOp::kGe, 2);
          return t;
        }};

    (*r)["RD2_FLEET"] = {
        "RD2",
        "high-dimensional fleet health: readings and alerts per device "
        "with six parameters (d = 6)",
        [] {
          auto t = std::make_shared<QueryTemplate>(
              "RD2_FLEET", std::vector<std::string>{"reading", "device",
                                                    "site", "alert"});
          AddJoin(t.get(), 0, "r_device", 1, "dv_key");
          AddJoin(t.get(), 0, "r_site", 2, "si_key");
          AddJoin(t.get(), 3, "al_device", 1, "dv_key");
          AddParam(t.get(), 0, "r_power", CompareOp::kGe, 0);
          AddParam(t.get(), 0, "r_errors", CompareOp::kGe, 1);
          AddParam(t.get(), 1, "dv_age", CompareOp::kLe, 2);
          AddParam(t.get(), 2, "si_capacity", CompareOp::kGe, 3);
          AddParam(t.get(), 3, "al_severity", CompareOp::kGe, 4);
          AddParam(t.get(), 3, "al_duration", CompareOp::kLe, 5);
          return t;
        }};

    return r;
  }();
  return *registry;
}

}  // namespace

std::vector<NamedTemplate> ListNamedTemplates() {
  std::vector<NamedTemplate> out;
  for (const auto& [name, builder] : Registry()) {
    out.push_back(NamedTemplate{name, builder.database,
                                builder.description});
  }
  return out;
}

BoundTemplate BuildNamedTemplate(const std::vector<BenchmarkDb>& dbs,
                                 const std::string& name) {
  auto it = Registry().find(name);
  SCRPQO_CHECK(it != Registry().end(),
               ("unknown named template: " + name).c_str());
  const BenchmarkDb* db = nullptr;
  for (const auto& candidate : dbs) {
    if (candidate.name == it->second.database) db = &candidate;
  }
  SCRPQO_CHECK(db != nullptr, "database for named template not provided");
  BoundTemplate bt;
  bt.db = db;
  bt.tmpl = it->second.make();
  return bt;
}

}  // namespace scrpqo

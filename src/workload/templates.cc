#include "workload/templates.h"

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "common/status.h"

namespace scrpqo {

namespace {

/// Columns usable as predicate targets: generated numeric measures (not
/// keys, not foreign keys).
std::vector<std::string> PredicateColumns(const TableDef& def) {
  std::vector<std::string> out;
  for (const auto& c : def.columns) {
    if (c.distribution == ColumnDistribution::kUniform ||
        c.distribution == ColumnDistribution::kZipf ||
        c.distribution == ColumnDistribution::kNormal) {
      out.push_back(c.name);
    }
  }
  return out;
}

/// Builds one template by walking the database's FK graph.
std::shared_ptr<QueryTemplate> MakeTemplate(const BenchmarkDb& db,
                                            const std::string& name,
                                            int num_tables, int dimensions,
                                            Pcg32* rng) {
  // Pick a connected set of tables by randomly growing along FK edges.
  std::vector<std::string> chosen;
  std::vector<const FkEdge*> used_edges;
  {
    // Start from the child side of a random edge so growth is possible.
    const FkEdge& e0 = db.fks[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(db.fks.size()) - 1))];
    chosen.push_back(e0.child_table);
    for (int guard = 0;
         static_cast<int>(chosen.size()) < num_tables && guard < 200;
         ++guard) {
      // Edges with exactly one endpoint inside the chosen set.
      std::vector<const FkEdge*> frontier;
      for (const auto& e : db.fks) {
        bool child_in = std::find(chosen.begin(), chosen.end(),
                                  e.child_table) != chosen.end();
        bool parent_in = std::find(chosen.begin(), chosen.end(),
                                   e.parent_table) != chosen.end();
        if (child_in != parent_in) frontier.push_back(&e);
      }
      if (frontier.empty()) break;
      const FkEdge* pick = frontier[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(frontier.size()) - 1))];
      bool child_in = std::find(chosen.begin(), chosen.end(),
                                pick->child_table) != chosen.end();
      chosen.push_back(child_in ? pick->parent_table : pick->child_table);
      used_edges.push_back(pick);
    }
  }

  auto tmpl = std::make_shared<QueryTemplate>(name, chosen);
  auto table_index = [&chosen](const std::string& t) {
    auto it = std::find(chosen.begin(), chosen.end(), t);
    return static_cast<int>(it - chosen.begin());
  };
  for (const FkEdge* e : used_edges) {
    JoinEdge je;
    je.left_table = table_index(e->child_table);
    je.left_column = e->child_column;
    je.right_table = table_index(e->parent_table);
    je.right_column = e->parent_column;
    tmpl->AddJoin(je);
  }

  // Collect (table, column) slots eligible for parameterized predicates.
  std::vector<std::pair<int, std::string>> slots;
  for (size_t ti = 0; ti < chosen.size(); ++ti) {
    for (const auto& col :
         PredicateColumns(db.db.catalog().GetTable(chosen[ti]))) {
      slots.emplace_back(static_cast<int>(ti), col);
    }
  }
  rng->Shuffle(&slots);
  int d = std::min<int>(dimensions, static_cast<int>(slots.size()));
  SCRPQO_CHECK(d >= 1, "template has no eligible predicate columns");
  for (int slot = 0; slot < d; ++slot) {
    PredicateTemplate p;
    p.table_index = slots[static_cast<size_t>(slot)].first;
    p.column = slots[static_cast<size_t>(slot)].second;
    // One-sided range predicates (paper Section 7.1).
    p.op = rng->UniformDouble() < 0.5 ? CompareOp::kLe : CompareOp::kGe;
    p.param_slot = slot;
    Status st = tmpl->AddPredicate(std::move(p));
    SCRPQO_CHECK(st.ok(), st.ToString());
  }

  // Occasionally a fixed literal predicate on a leftover column.
  if (static_cast<int>(slots.size()) > d && rng->UniformDouble() < 0.35) {
    const auto& [ti, col] = slots[static_cast<size_t>(d)];
    const ColumnStats& stats =
        db.db.catalog().GetColumnStats(chosen[static_cast<size_t>(ti)], col);
    PredicateTemplate p;
    p.table_index = ti;
    p.column = col;
    p.op = CompareOp::kLe;
    // Literal at roughly the 60th percentile of the column.
    double v = stats.histogram.QuantileForSelectivity(CompareOp::kLe, 0.6);
    p.literal = Value(v);
    Status st = tmpl->AddPredicate(std::move(p));
    SCRPQO_CHECK(st.ok(), st.ToString());
  }

  // Occasionally aggregate.
  if (rng->UniformDouble() < 0.3) {
    // Group by a low-cardinality column when available.
    for (size_t ti = 0; ti < chosen.size(); ++ti) {
      auto cols = PredicateColumns(db.db.catalog().GetTable(chosen[ti]));
      if (cols.empty()) continue;
      AggregateSpec agg;
      agg.enabled = true;
      agg.group_table = static_cast<int>(ti);
      agg.group_column = cols.front();
      tmpl->SetAggregate(agg);
      break;
    }
  }
  return tmpl;
}

}  // namespace

std::vector<BoundTemplate> BuildTemplates(const std::vector<BenchmarkDb>& dbs,
                                          const TemplateGenOptions& options) {
  Pcg32 rng(options.seed);
  std::vector<BoundTemplate> out;

  // Locate RD2 for high-dimensional templates.
  const BenchmarkDb* rd2 = nullptr;
  for (const auto& db : dbs) {
    if (db.name == "RD2") rd2 = &db;
  }

  for (int i = 0; i < options.num_templates; ++i) {
    // Dimension schedule: roughly one third with d >= 4 (paper Sec 7.1).
    int d;
    double u = rng.UniformDouble();
    if (u < 0.25) {
      d = 1 + static_cast<int>(rng.UniformInt(0, 1));  // 1-2
    } else if (u < 0.67) {
      d = 2 + static_cast<int>(rng.UniformInt(0, 1));  // 2-3
    } else if (u < 0.88) {
      d = 4 + static_cast<int>(rng.UniformInt(0, 1));  // 4-5
    } else {
      d = 5 + static_cast<int>(
                  rng.UniformInt(0, options.max_dimensions - 5));  // 5-10
    }
    const BenchmarkDb* db;
    if (d >= 5 && rd2 != nullptr) {
      db = rd2;
    } else {
      db = &dbs[static_cast<size_t>(i) % dbs.size()];
    }
    int num_tables =
        2 + static_cast<int>(rng.UniformInt(0, options.max_tables - 2));
    std::string name =
        db->name + "_Q" + std::to_string(i) + "_d" + std::to_string(d);
    BoundTemplate bt;
    bt.db = db;
    bt.tmpl = MakeTemplate(*db, name, num_tables, d, &rng);
    out.push_back(std::move(bt));
  }
  return out;
}

BoundTemplate BuildExample2dTemplate(const BenchmarkDb& tpch) {
  auto tmpl = std::make_shared<QueryTemplate>(
      "TPCH_example_2d",
      std::vector<std::string>{"lineitem", "orders", "customer"});
  {
    JoinEdge e;
    e.left_table = 0;
    e.left_column = "l_orderkey";
    e.right_table = 1;
    e.right_column = "o_key";
    tmpl->AddJoin(e);
  }
  {
    JoinEdge e;
    e.left_table = 1;
    e.left_column = "o_custkey";
    e.right_table = 2;
    e.right_column = "c_key";
    tmpl->AddJoin(e);
  }
  {
    PredicateTemplate p;
    p.table_index = 0;
    p.column = "l_shipdate";
    p.op = CompareOp::kLe;
    p.param_slot = 0;
    Status st = tmpl->AddPredicate(std::move(p));
    SCRPQO_CHECK(st.ok(), st.ToString());
  }
  {
    PredicateTemplate p;
    p.table_index = 1;
    p.column = "o_totalprice";
    p.op = CompareOp::kLe;
    p.param_slot = 1;
    Status st = tmpl->AddPredicate(std::move(p));
    SCRPQO_CHECK(st.ok(), st.ToString());
  }
  BoundTemplate bt;
  bt.db = &tpch;
  bt.tmpl = tmpl;
  return bt;
}

BoundTemplate BuildRd2TemplateWithDimensions(const BenchmarkDb& rd2, int d) {
  SCRPQO_CHECK(d >= 1 && d <= 10, "d must be in [1, 10]");
  auto tmpl = std::make_shared<QueryTemplate>(
      "RD2_sweep_d" + std::to_string(d),
      std::vector<std::string>{"reading", "device", "site", "alert"});
  {
    JoinEdge e;
    e.left_table = 0;
    e.left_column = "r_device";
    e.right_table = 1;
    e.right_column = "dv_key";
    tmpl->AddJoin(e);
  }
  {
    JoinEdge e;
    e.left_table = 0;
    e.left_column = "r_site";
    e.right_table = 2;
    e.right_column = "si_key";
    tmpl->AddJoin(e);
  }
  {
    JoinEdge e;
    e.left_table = 3;
    e.left_column = "al_device";
    e.right_table = 1;
    e.right_column = "dv_key";
    tmpl->AddJoin(e);
  }
  // A fixed priority order of predicate slots spanning all four tables.
  const std::vector<std::pair<int, std::string>> slots = {
      {0, "r_power"},   {1, "dv_age"},     {3, "al_severity"},
      {0, "r_temp"},    {2, "si_capacity"}, {3, "al_duration"},
      {0, "r_errors"},  {1, "dv_health"},  {2, "si_uptime"},
      {0, "r_signal"},
  };
  for (int i = 0; i < d; ++i) {
    PredicateTemplate p;
    p.table_index = slots[static_cast<size_t>(i)].first;
    p.column = slots[static_cast<size_t>(i)].second;
    p.op = i % 2 == 0 ? CompareOp::kLe : CompareOp::kGe;
    p.param_slot = i;
    Status st = tmpl->AddPredicate(std::move(p));
    SCRPQO_CHECK(st.ok(), st.ToString());
  }
  BoundTemplate bt;
  bt.db = &rd2;
  bt.tmpl = tmpl;
  return bt;
}

}  // namespace scrpqo

// Multi-template serving harness: drives a PqoManager from several worker
// threads over a fleet of query templates, the deployment shape the paper's
// Section 2 abstracts away (it fixes ONE template Q; a real service serves
// many concurrently). Used by tests/pqo_manager_concurrent_test.cc and
// bench/bench_throughput_multitemplate.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pqo/pqo_manager.h"
#include "workload/templates.h"

namespace scrpqo {

/// One template as the runner sees it. Non-owning: the engine and instance
/// list must outlive the run (TemplateFleet bundles the ownership).
struct ServedTemplate {
  std::string key;
  EngineContext* engine = nullptr;
  const std::vector<WorkloadInstance>* instances = nullptr;
};

struct MultiTemplateRunOptions {
  /// Worker threads submitting instances concurrently.
  int threads = 1;
  /// Fixed-work mode: every thread serves each of its templates' instance
  /// lists `rounds` times, then exits. Used by tests (deterministic totals).
  int rounds = 1;
  /// Timed mode (when > 0, overrides `rounds`): threads serve round-robin
  /// until the window closes. Used by benchmarks.
  int duration_ms = 0;
};

struct MultiTemplateRunResult {
  int64_t instances_served = 0;
  /// Instances for which the manager invoked the optimizer.
  int64_t optimized = 0;
  /// Choices that came back without a plan — always 0 unless an instance
  /// was lost (the concurrent stress test asserts on this).
  int64_t lost = 0;
  double seconds = 0.0;
  double qps = 0.0;
  /// Post-run state, read after FlushAll() quiesces deferred work.
  int64_t plans_cached = 0;
  int64_t global_evictions = 0;
};

/// Runs the fleet through `manager`. Thread t serves templates
/// t, t+threads, t+2*threads, ... (each template has one submitting thread
/// in fixed-work mode, so per-template instance order stays deterministic);
/// in timed mode all threads rotate over every template to maximize
/// cross-template contention. Calls manager.FlushAll() before reading the
/// final cache totals.
MultiTemplateRunResult RunMultiTemplate(
    PqoManager* manager, const std::vector<ServedTemplate>& templates,
    const MultiTemplateRunOptions& options);

/// A self-owning fleet of RD2 templates for tests and benches: one shared
/// database/optimizer/engine (EngineContext::Optimize is thread-safe), a
/// few distinct join shapes cycled across `num_templates` keys, and one
/// instance stream per key (distinct seeds, so caches fill independently).
class TemplateFleet {
 public:
  /// `dims` cycles over the fleet, e.g. {2, 3} gives alternating 2-d and
  /// 3-d join templates named "rd2_t<NUM>_d<D>".
  TemplateFleet(int num_templates, int instances_per_template,
                uint64_t seed = 99, std::vector<int> dims = {2, 3});

  TemplateFleet(const TemplateFleet&) = delete;
  TemplateFleet& operator=(const TemplateFleet&) = delete;

  const std::vector<ServedTemplate>& served() const { return served_; }
  EngineContext* engine() { return engine_.get(); }

 private:
  std::unique_ptr<BenchmarkDb> db_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<EngineContext> engine_;
  std::vector<BoundTemplate> shapes_;
  std::vector<std::unique_ptr<std::vector<WorkloadInstance>>> instances_;
  std::vector<std::string> keys_;
  std::vector<ServedTemplate> served_;
};

}  // namespace scrpqo

// Workload trace persistence: save an instance sequence to CSV and replay
// it later (or against a different technique/build). Traces store parameter
// values, not selectivities — on load, sVectors are recomputed against the
// current catalog statistics, exactly as a replayed production trace would
// be.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "pqo/engine_context.h"
#include "workload/templates.h"

namespace scrpqo {

/// Serializes the instances (id + parameter values) as CSV text:
///   id,param0,param1,...
/// Doubles are printed round-trippably; string parameters are not supported
/// (the engine's parameterized predicates are numeric).
std::string SerializeTrace(const std::vector<WorkloadInstance>& instances);

/// Parses CSV text into instances of `bt.tmpl`, recomputing sVectors
/// against `bt.db`'s statistics.
Result<std::vector<WorkloadInstance>> ParseTrace(const BoundTemplate& bt,
                                                 const std::string& csv);

/// File convenience wrappers.
Status SaveTrace(const std::vector<WorkloadInstance>& instances,
                 const std::string& path);
Result<std::vector<WorkloadInstance>> LoadTrace(const BoundTemplate& bt,
                                                const std::string& path);

}  // namespace scrpqo

// Sequence orderings (paper Appendix H.1): from one instance set, build
// permutations stressing different technique weaknesses — random,
// decreasing optimal cost, round-robin across optimal-plan regions,
// inside-out (near-average costs first) and outside-in (extremes first).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "pqo/engine_context.h"

namespace scrpqo {

enum class OrderingKind {
  kRandom,
  kDecreasingCost,
  kRoundRobinByPlan,
  kInsideOut,
  kOutsideIn,
};

std::string OrderingName(OrderingKind kind);

/// All five evaluation orderings.
std::vector<OrderingKind> AllOrderings();

/// Per-instance information orderings depend on: the optimal cost and a
/// plan-region identifier (the optimal plan's signature).
struct InstanceOracleInfo {
  double opt_cost = 0.0;
  uint64_t plan_signature = 0;
};

/// Returns a permutation of [0, n): position -> instance-set index.
std::vector<int> MakeOrdering(OrderingKind kind,
                              const std::vector<InstanceOracleInfo>& info,
                              uint64_t seed);

}  // namespace scrpqo

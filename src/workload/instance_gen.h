// Workload instance generation (paper Section 7.1): the selectivity space
// is bucketized into d+2 regions — Region0 (all predicates selective),
// Region1 (all predicates non-selective) and Region_di (only predicate i
// non-selective) — and m/(d+2) instances are sampled per region, then
// shuffled. This yields widely varying selectivities, many distinct optimal
// plans, and genuine reuse opportunities.
#pragma once

#include <cstdint>
#include <vector>

#include "pqo/engine_context.h"
#include "workload/templates.h"

namespace scrpqo {

struct InstanceGenOptions {
  int m = 1000;
  uint64_t seed = 99;
  /// "Small" selectivities are log-uniform in [small_lo, small_hi]. The
  /// width of this band governs how conservative SCR's L factor gets at
  /// high dimensionality (see EXPERIMENTS.md calibration note): one decade
  /// keeps d = 10 workloads in the paper's reuse regime.
  double small_lo = 0.005;
  double small_hi = 0.05;
  /// "Large" selectivities are uniform in [large_lo, large_hi].
  double large_lo = 0.15;
  double large_hi = 0.95;
};

/// Generates the instance *set* for a template (ids 0..m-1). The set is
/// region-bucketized and shuffled; specific evaluation orderings are
/// produced separately (orderings.h).
std::vector<WorkloadInstance> GenerateInstances(
    const BoundTemplate& bt, const InstanceGenOptions& options);

}  // namespace scrpqo

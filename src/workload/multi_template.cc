#include "workload/multi_template.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "workload/instance_gen.h"
#include "workload/schemas.h"

namespace scrpqo {

namespace {

struct WorkerTotals {
  int64_t served = 0;
  int64_t optimized = 0;
  int64_t lost = 0;
};

void ServeOne(PqoManager* manager, const ServedTemplate& st,
              const WorkloadInstance& wi, WorkerTotals* totals) {
  PlanChoice choice = manager->OnInstance(st.key, wi, st.engine);
  ++totals->served;
  if (choice.optimized) ++totals->optimized;
  if (choice.plan == nullptr) ++totals->lost;
}

}  // namespace

MultiTemplateRunResult RunMultiTemplate(
    PqoManager* manager, const std::vector<ServedTemplate>& templates,
    const MultiTemplateRunOptions& options) {
  MultiTemplateRunResult result;
  if (templates.empty()) return result;
  const int threads = options.threads < 1 ? 1 : options.threads;
  const bool timed = options.duration_ms > 0;

  std::vector<WorkerTotals> totals(static_cast<size_t>(threads));
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      WorkerTotals& mine = totals[static_cast<size_t>(t)];
      if (timed) {
        // Every thread rotates over every template (staggered start) so
        // shard locks and the global evictor see maximal contention.
        size_t ti = static_cast<size_t>(t) % templates.size();
        size_t ii = static_cast<size_t>(t) * 7;
        while (!stop.load(std::memory_order_relaxed)) {
          const ServedTemplate& st = templates[ti];
          ti = (ti + 1) % templates.size();
          if (st.instances->empty()) continue;
          ServeOne(manager, st,
                   (*st.instances)[ii++ % st.instances->size()], &mine);
        }
      } else {
        // Fixed work: thread t owns templates t, t+threads, ... and plays
        // each instance list `rounds` times in order, so per-template
        // streams are deterministic and totals are exact.
        for (int round = 0; round < options.rounds; ++round) {
          for (size_t i = static_cast<size_t>(t); i < templates.size();
               i += static_cast<size_t>(threads)) {
            const ServedTemplate& st = templates[i];
            for (const WorkloadInstance& wi : *st.instances) {
              ServeOne(manager, st, wi, &mine);
            }
          }
        }
      }
    });
  }
  if (timed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
    stop.store(true, std::memory_order_relaxed);
  }
  for (std::thread& th : pool) th.join();
  auto t1 = std::chrono::steady_clock::now();

  for (const WorkerTotals& wt : totals) {
    result.instances_served += wt.served;
    result.optimized += wt.optimized;
    result.lost += wt.lost;
  }
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.instances_served) /
                         result.seconds
                   : 0.0;

  manager->FlushAll();
  result.plans_cached = manager->TotalPlansCached();
  result.global_evictions = manager->global_evictions();
  return result;
}

TemplateFleet::TemplateFleet(int num_templates, int instances_per_template,
                             uint64_t seed, std::vector<int> dims) {
  SchemaScale scale;
  db_ = std::make_unique<BenchmarkDb>(BuildRd2(scale));
  optimizer_ = std::make_unique<Optimizer>(&db_->db);
  engine_ = std::make_unique<EngineContext>(&db_->db, optimizer_.get());
  if (dims.empty()) dims.push_back(2);
  for (int d : dims) {
    shapes_.push_back(BuildRd2TemplateWithDimensions(*db_, d));
  }
  keys_.reserve(static_cast<size_t>(num_templates));
  for (int i = 0; i < num_templates; ++i) {
    const size_t shape = static_cast<size_t>(i) % shapes_.size();
    const int d = dims[shape];
    keys_.push_back("rd2_t" + std::to_string(i) + "_d" + std::to_string(d));
    InstanceGenOptions gen;
    gen.m = instances_per_template;
    gen.seed = seed + static_cast<uint64_t>(i) * 131;
    instances_.push_back(std::make_unique<std::vector<WorkloadInstance>>(
        GenerateInstances(shapes_[shape], gen)));
  }
  // Build the views last: `keys_`/`instances_` no longer reallocate.
  for (int i = 0; i < num_templates; ++i) {
    ServedTemplate st;
    st.key = keys_[static_cast<size_t>(i)];
    st.engine = engine_.get();
    st.instances = instances_[static_cast<size_t>(i)].get();
    served_.push_back(st);
  }
}

}  // namespace scrpqo

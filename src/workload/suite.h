// The full evaluation suite: N templates x 5 orderings (paper Section 7.1's
// 90 x 5 = 450 sequences). Benchmarks scale it via environment variables:
//   SCRPQO_TEMPLATES  number of templates (default 90)
//   SCRPQO_M          instances per sequence (default 400; paper used
//                     1000/2000 — shapes are stable from a few hundred)
//   SCRPQO_SCALE      database row-count scale factor (default 1.0)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "pqo/metrics.h"
#include "pqo/technique.h"
#include "workload/instance_gen.h"
#include "workload/runner.h"
#include "workload/schemas.h"
#include "workload/templates.h"

namespace scrpqo {

struct SuiteConfig {
  int num_templates = 90;
  int m = 400;
  double scale = 1.0;
  uint64_t seed = 20170514;
  bool materialize_rows = false;
  /// Restrict to a subset of orderings (empty = all five).
  std::vector<OrderingKind> orderings;

  /// Reads SCRPQO_* environment overrides.
  static SuiteConfig FromEnv();
};

/// \brief Owns the databases, templates, instance sets and oracles, and
/// runs technique factories over every (template, ordering) sequence.
class EvaluationSuite {
 public:
  explicit EvaluationSuite(SuiteConfig config);

  /// One entry per template.
  struct TemplateWorkload {
    BoundTemplate bound;
    std::unique_ptr<Optimizer> optimizer;
    std::vector<WorkloadInstance> instances;
    Oracle oracle;
  };

  const std::vector<BenchmarkDb>& databases() const { return dbs_; }
  const std::vector<TemplateWorkload>& workloads() const {
    return workloads_;
  }
  const SuiteConfig& config() const { return config_; }

  /// Runs `factory` (fresh technique per sequence) over every template and
  /// every configured ordering; returns one SequenceMetrics per sequence,
  /// in deterministic (template, ordering) order regardless of parallelism.
  /// Templates are independent (own optimizer, oracle and technique
  /// instances), so they run on `SCRPQO_THREADS` workers (default: up to 4
  /// hardware threads).
  std::vector<SequenceMetrics> RunAll(const TechniqueFactory& factory,
                                      double lambda_for_violations = 0.0,
                                      bool progress = false) const;

  /// Runs over a single template (all configured orderings).
  std::vector<SequenceMetrics> RunTemplate(
      const TemplateWorkload& tw, const TechniqueFactory& factory,
      double lambda_for_violations = 0.0) const;

 private:
  SuiteConfig config_;
  std::vector<BenchmarkDb> dbs_;
  std::vector<TemplateWorkload> workloads_;
};

}  // namespace scrpqo

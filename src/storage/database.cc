#include "storage/database.h"

#include <cmath>

namespace scrpqo {

const TableData& Database::GetTableData(const std::string& table) const {
  auto it = data_.find(table);
  SCRPQO_CHECK(it != data_.end(), "no data for table: " + table);
  return *it->second;
}

void Database::AddTableData(const std::string& table,
                            std::unique_ptr<TableData> data) {
  data_[table] = std::move(data);
}

namespace {

// Generates the numeric values of one column according to its definition.
std::vector<double> GenerateColumnValues(const ColumnDef& col,
                                         int64_t row_count,
                                         const Catalog& catalog,
                                         Pcg32* rng) {
  std::vector<double> values;
  values.reserve(static_cast<size_t>(row_count));
  switch (col.distribution) {
    case ColumnDistribution::kSequential: {
      for (int64_t i = 0; i < row_count; ++i) {
        values.push_back(static_cast<double>(i));
      }
      break;
    }
    case ColumnDistribution::kUniform: {
      for (int64_t i = 0; i < row_count; ++i) {
        values.push_back(rng->UniformDouble(col.min_value, col.max_value));
      }
      break;
    }
    case ColumnDistribution::kZipf: {
      // Zipfian ranks spread over the value domain; heavy skew toward
      // min_value. Rank count capped to keep the sampler cheap.
      int64_t domain = static_cast<int64_t>(col.max_value - col.min_value) + 1;
      int64_t ranks = std::min<int64_t>(domain, 100000);
      ZipfSampler zipf(std::max<int64_t>(ranks, 1), col.zipf_theta);
      double step = ranks <= 1 ? 0.0
                               : (col.max_value - col.min_value) /
                                     static_cast<double>(ranks - 1);
      for (int64_t i = 0; i < row_count; ++i) {
        int64_t r = zipf.Sample(rng);
        values.push_back(col.min_value + static_cast<double>(r) * step);
      }
      break;
    }
    case ColumnDistribution::kNormal: {
      double mean = (col.min_value + col.max_value) / 2.0;
      double stddev = (col.max_value - col.min_value) / 6.0;
      for (int64_t i = 0; i < row_count; ++i) {
        double v = rng->Normal(mean, stddev);
        v = std::min(std::max(v, col.min_value), col.max_value);
        values.push_back(v);
      }
      break;
    }
    case ColumnDistribution::kForeignKey: {
      const TableDef* ref = catalog.FindTable(col.ref_table);
      SCRPQO_CHECK(ref != nullptr, "foreign key references unknown table");
      int64_t ref_rows = ref->row_count;
      if (col.zipf_theta > 0.0) {
        ZipfSampler zipf(ref_rows, col.zipf_theta);
        for (int64_t i = 0; i < row_count; ++i) {
          values.push_back(static_cast<double>(zipf.Sample(rng)));
        }
      } else {
        for (int64_t i = 0; i < row_count; ++i) {
          values.push_back(
              static_cast<double>(rng->UniformInt(0, ref_rows - 1)));
        }
      }
      break;
    }
  }
  return values;
}

ColumnData MaterializeColumn(const ColumnDef& col,
                             const std::vector<double>& values) {
  ColumnData data(col.type);
  for (double v : values) {
    switch (col.type) {
      case DataType::kInt64:
        data.AppendInt64(static_cast<int64_t>(std::llround(v)));
        break;
      case DataType::kDouble:
        data.AppendDouble(v);
        break;
      case DataType::kString:
        // Payload strings keyed by the numeric value so ordering survives.
        data.AppendString("s" + std::to_string(
                                     static_cast<int64_t>(std::llround(v))));
        break;
    }
  }
  return data;
}

std::vector<double> RoundForType(const ColumnDef& col,
                                 std::vector<double> values) {
  if (col.type == DataType::kInt64) {
    for (auto& v : values) v = static_cast<double>(std::llround(v));
  }
  return values;
}

}  // namespace

Database GenerateDatabase(std::vector<TableDef> table_defs,
                          const GeneratorOptions& options) {
  Database db;
  Pcg32 rng(options.seed);
  for (auto& def : table_defs) {
    Status st = db.catalog().AddTable(def);
    SCRPQO_CHECK(st.ok(), st.ToString());
  }
  for (const auto& def : table_defs) {
    std::vector<ColumnData> columns;
    for (const auto& col : def.columns) {
      std::vector<double> values = RoundForType(
          col, GenerateColumnValues(col, def.row_count, db.catalog(), &rng));
      // Statistics mirror what the engine would compute from the data.
      ColumnStats stats;
      stats.row_count = def.row_count;
      stats.histogram =
          EquiDepthHistogram::Build(values, options.histogram_buckets);
      stats.distinct_count = stats.histogram.distinct_count();
      stats.min_value = stats.histogram.min_value();
      stats.max_value = stats.histogram.max_value();
      db.catalog().SetColumnStats(def.name, col.name, std::move(stats));
      if (options.materialize_rows) {
        columns.push_back(MaterializeColumn(col, values));
      }
    }
    if (options.materialize_rows) {
      auto data = std::make_unique<TableData>(
          db.catalog().FindTable(def.name), std::move(columns));
      for (const auto& idx : def.indexes) {
        data->BuildIndex(idx.column);
      }
      db.AddTableData(def.name, std::move(data));
    }
  }
  return db;
}

}  // namespace scrpqo

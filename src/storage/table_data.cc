#include "storage/table_data.h"

#include <algorithm>
#include <numeric>

namespace scrpqo {

int64_t ColumnData::size() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<int64_t>(ints_.size());
    case DataType::kDouble:
      return static_cast<int64_t>(dbls_.size());
    case DataType::kString:
      return static_cast<int64_t>(strs_.size());
  }
  return 0;
}

Value ColumnData::GetValue(int64_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[static_cast<size_t>(row)]);
    case DataType::kDouble:
      return Value(dbls_[static_cast<size_t>(row)]);
    case DataType::kString:
      return Value(strs_[static_cast<size_t>(row)]);
  }
  return Value();
}

double ColumnData::GetDouble(int64_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[static_cast<size_t>(row)]);
    case DataType::kDouble:
      return dbls_[static_cast<size_t>(row)];
    case DataType::kString:
      return GetValue(row).AsDouble();
  }
  return 0.0;
}

std::vector<double> ColumnData::ToDoubles() const {
  std::vector<double> out;
  int64_t n = size();
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(GetDouble(i));
  return out;
}

SortedIndex SortedIndex::Build(const ColumnData& column) {
  SortedIndex idx;
  int64_t n = column.size();
  idx.rows_.resize(static_cast<size_t>(n));
  std::iota(idx.rows_.begin(), idx.rows_.end(), int64_t{0});
  std::vector<double> keys(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) keys[static_cast<size_t>(i)] = column.GetDouble(i);
  std::sort(idx.rows_.begin(), idx.rows_.end(), [&](int64_t a, int64_t b) {
    double ka = keys[static_cast<size_t>(a)], kb = keys[static_cast<size_t>(b)];
    if (ka != kb) return ka < kb;
    return a < b;
  });
  idx.keys_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    idx.keys_[static_cast<size_t>(i)] =
        keys[static_cast<size_t>(idx.rows_[static_cast<size_t>(i)])];
  }
  return idx;
}

std::vector<int64_t> SortedIndex::RangeLookup(CompareOp op,
                                              double value) const {
  auto lo = keys_.begin();
  auto hi = keys_.end();
  switch (op) {
    case CompareOp::kLt:
      hi = std::lower_bound(keys_.begin(), keys_.end(), value);
      break;
    case CompareOp::kLe:
      hi = std::upper_bound(keys_.begin(), keys_.end(), value);
      break;
    case CompareOp::kGt:
      lo = std::upper_bound(keys_.begin(), keys_.end(), value);
      break;
    case CompareOp::kGe:
      lo = std::lower_bound(keys_.begin(), keys_.end(), value);
      break;
    case CompareOp::kEq:
      lo = std::lower_bound(keys_.begin(), keys_.end(), value);
      hi = std::upper_bound(keys_.begin(), keys_.end(), value);
      break;
  }
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) {
    out.push_back(rows_[static_cast<size_t>(it - keys_.begin())]);
  }
  return out;
}

TableData::TableData(const TableDef* def, std::vector<ColumnData> columns)
    : def_(def), columns_(std::move(columns)) {
  row_count_ = columns_.empty() ? 0 : columns_[0].size();
  for (const auto& c : columns_) {
    SCRPQO_CHECK(c.size() == row_count_, "ragged columns in TableData");
  }
}

const ColumnData& TableData::column(const std::string& name) const {
  int idx = def_->ColumnIndex(name);
  SCRPQO_CHECK(idx >= 0, "unknown column: " + name);
  return columns_[static_cast<size_t>(idx)];
}

void TableData::BuildIndex(const std::string& column) {
  indexes_[column] = SortedIndex::Build(this->column(column));
}

const SortedIndex* TableData::FindIndex(const std::string& column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : &it->second;
}

}  // namespace scrpqo

// Database: a catalog plus generated in-memory data and statistics. This is
// the "engine instance" that the optimizer, executor and PQO layers run
// against.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/table_data.h"

namespace scrpqo {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  const TableData& GetTableData(const std::string& table) const;
  bool HasTableData(const std::string& table) const {
    return data_.count(table) > 0;
  }

  void AddTableData(const std::string& table, std::unique_ptr<TableData> data);

  /// \brief Page size in rows, used by the cost model for IO estimates.
  static constexpr int64_t kRowsPerPage = 128;

 private:
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<TableData>> data_;
};

/// \brief Options for generating a database from table definitions.
struct GeneratorOptions {
  uint64_t seed = 42;
  int histogram_buckets = 64;
  /// When true (default) TableData is populated; when false only statistics
  /// are generated (enough for optimization-only experiments, much faster).
  bool materialize_rows = true;
};

/// \brief Generates data, statistics and indexes for every table in
/// `table_defs` (in order, so foreign keys can reference earlier tables).
///
/// Statistics are computed from the generated values, exactly as an engine's
/// UPDATE STATISTICS would, so estimation error behaves realistically.
/// With `materialize_rows == false` values are still generated to build
/// histograms but are not retained.
Database GenerateDatabase(std::vector<TableDef> table_defs,
                          const GeneratorOptions& options);

}  // namespace scrpqo

// In-memory columnar table storage plus single-column sorted indexes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "expr/predicate.h"
#include "expr/value.h"

namespace scrpqo {

/// \brief One column's values in typed storage.
class ColumnData {
 public:
  explicit ColumnData(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  int64_t size() const;

  void AppendInt64(int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { dbls_.push_back(v); }
  void AppendString(std::string v) { strs_.push_back(std::move(v)); }

  Value GetValue(int64_t row) const;
  /// Numeric view used by predicates / histograms (strings get the stable
  /// prefix encoding from Value::AsDouble).
  double GetDouble(int64_t row) const;

  /// All values as doubles (for histogram construction).
  std::vector<double> ToDoubles() const;

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> dbls_;
  std::vector<std::string> strs_;
};

/// \brief A single-column index: row ids sorted by key value. Supports
/// range lookups returning qualifying row ids in key order.
class SortedIndex {
 public:
  SortedIndex() = default;
  static SortedIndex Build(const ColumnData& column);

  /// Row ids whose key satisfies `op value`, in ascending key order.
  std::vector<int64_t> RangeLookup(CompareOp op, double value) const;

  int64_t size() const { return static_cast<int64_t>(keys_.size()); }

 private:
  std::vector<double> keys_;     // sorted
  std::vector<int64_t> rows_;    // row id for keys_[i]
};

/// \brief All data for one table.
class TableData {
 public:
  TableData() = default;
  TableData(const TableDef* def, std::vector<ColumnData> columns);

  const TableDef& def() const { return *def_; }
  int64_t row_count() const { return row_count_; }
  const ColumnData& column(int index) const { return columns_[index]; }
  const ColumnData& column(const std::string& name) const;

  void BuildIndex(const std::string& column);
  const SortedIndex* FindIndex(const std::string& column) const;

 private:
  const TableDef* def_ = nullptr;
  int64_t row_count_ = 0;
  std::vector<ColumnData> columns_;
  std::map<std::string, SortedIndex> indexes_;
};

}  // namespace scrpqo

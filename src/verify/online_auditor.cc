#include "verify/online_auditor.h"

#include <limits>
#include <utility>

#include "obs/emit.h"

namespace scrpqo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool Present(double field) { return field >= 0.0; }

/// Relative compliance margin (rhs - lhs) / rhs for one lhs <= rhs
/// inequality; returns +inf when the inequality does not apply.
double Margin(double lhs, double rhs) {
  if (rhs <= 0.0) return kInf;
  return (rhs - lhs) / rhs;
}

/// The margin of the guarantee inequality `e` claims to satisfy, mirroring
/// the rule selection in the offline AuditEvent: sel checks carry G/L/S,
/// SCR cost checks carry R/L/S, PCM inference only R, redundancy Smin.
double EventMargin(const DecisionEvent& e) {
  if (!Present(e.lambda)) return kInf;
  switch (e.outcome) {
    case DecisionOutcome::kSelCheckHit:
      if (Present(e.g) && Present(e.l) && Present(e.subopt) &&
          e.subopt > 0.0) {
        return Margin(e.g * e.l, e.lambda / e.subopt);
      }
      return kInf;
    case DecisionOutcome::kCostCheckHit:
      if (!Present(e.r)) return kInf;
      if (Present(e.l) && Present(e.subopt) && e.subopt > 0.0) {
        return Margin(e.r * e.l, e.lambda / e.subopt);
      }
      return Margin(e.r, e.lambda);
    case DecisionOutcome::kRedundantDiscard:
      if (!Present(e.r)) return kInf;
      return Margin(e.r, e.lambda);
    case DecisionOutcome::kOptimized:
    case DecisionOutcome::kEvicted:
    case DecisionOutcome::kAuditAlert:
    case DecisionOutcome::kRingDropped:
    case DecisionOutcome::kDegraded:
    case DecisionOutcome::kFaultInjected:
      // kDegraded explicitly claims NO bound (lambda unset), so there is
      // no inequality to monitor; fault-injected is a meta event.
      return kInf;
  }
  return kInf;
}

}  // namespace

OnlineAuditor::OnlineAuditor(OnlineAuditorOptions options)
    : options_(std::move(options)), worst_margin_(kInf) {
  if (options_.metrics != nullptr) {
    checked_counter_ = options_.metrics->counter("verify.online.checked");
    violations_counter_ =
        options_.metrics->counter("verify.online.violations");
    worst_margin_gauge_ = options_.metrics->gauge("verify.online.worst_margin");
  }
}

void OnlineAuditor::Consume(const std::vector<DecisionEvent>& events) {
  // Filter to genuine getPlan decisions: meta events (alerts we emitted
  // ourselves, ring-drop records) must not be re-audited or the auditor
  // feeding its own tracer would alert on its alerts forever.
  std::vector<DecisionEvent> decisions;
  decisions.reserve(events.size());
  for (const DecisionEvent& e : events) {
    if (IsDecisionOutcome(e.outcome)) decisions.push_back(e);
  }
  if (decisions.empty()) return;

  // Same rules as the offline audit, applied to the in-flight batch.
  AuditReport report = AuditTrace(decisions, options_.config);

  // Alerts need the offending event's fields; violations reference it by
  // trace seq.
  std::map<int64_t, const DecisionEvent*> by_seq;
  for (const DecisionEvent& e : decisions) by_seq[e.seq] = &e;

  if (checked_counter_ != nullptr) {
    checked_counter_->Increment(static_cast<int64_t>(decisions.size()));
  }
  if (violations_counter_ != nullptr && !report.violations.empty()) {
    violations_counter_->Increment(
        static_cast<int64_t>(report.violations.size()));
  }

  std::vector<DecisionEvent> alerts;
  {
    MutexLock lock(mu_);
    checked_ += static_cast<int64_t>(decisions.size());
    violations_ += static_cast<int64_t>(report.violations.size());
    for (const DecisionEvent& e : decisions) {
      TemplateStats& ts = per_template_
                              .try_emplace(e.template_key, TemplateStats{
                                                               0, 0, kInf})
                              .first->second;
      ++ts.checked;
      double m = EventMargin(e);
      if (m < ts.worst_margin) ts.worst_margin = m;
      if (m < worst_margin_) worst_margin_ = m;
    }
    for (const AuditViolation& v : report.violations) {
      auto it = by_seq.find(v.seq);
      const DecisionEvent* src = it == by_seq.end() ? nullptr : it->second;
      const std::string& key = src != nullptr ? src->template_key : v.template_key;
      ++per_template_.try_emplace(key, TemplateStats{0, 0, kInf})
            .first->second.violations;
      if (options_.alert_tracer != nullptr && src != nullptr) {
        // The alert carries the offending decision's identity and factors
        // so `trace_summarize` / the admin surface can show what broke
        // without joining back to the original event.
        DecisionEvent alert;
        alert.outcome = DecisionOutcome::kAuditAlert;
        alert.technique = "online-auditor";
        alert.template_key = src->template_key;
        alert.instance_id = src->instance_id;
        alert.matched_entry = src->matched_entry;
        alert.g = src->g;
        alert.l = src->l;
        alert.r = src->r;
        alert.subopt = src->subopt;
        alert.lambda = src->lambda;
        alerts.push_back(std::move(alert));
      }
    }
    PublishLocked();
  }
  // Emit outside mu_: Record may re-enter tracer machinery.
  for (DecisionEvent& alert : alerts) {
    EmitDecisionEvent(options_.alert_tracer, std::move(alert));
  }
}

void OnlineAuditor::PublishLocked() {
  if (worst_margin_gauge_ != nullptr && worst_margin_ < kInf) {
    worst_margin_gauge_->Set(worst_margin_);
  }
}

int64_t OnlineAuditor::checked() const {
  MutexLock lock(mu_);
  return checked_;
}

int64_t OnlineAuditor::violations() const {
  MutexLock lock(mu_);
  return violations_;
}

double OnlineAuditor::worst_margin() const {
  MutexLock lock(mu_);
  return worst_margin_;
}

std::map<std::string, OnlineAuditor::TemplateStats>
OnlineAuditor::PerTemplate() const {
  MutexLock lock(mu_);
  return per_template_;
}

}  // namespace scrpqo

// Streaming lambda-compliance monitor: the online counterpart of the
// offline guarantee auditor (verify/guarantee_audit.h).
//
// OnlineAuditor is a TraceSink. Attach it to a RingTracer and every
// decision event the exporter drains is re-derived against the paper's
// guarantee inequalities as it streams past — the same rules the offline
// audit applies to a finished JSONL trace:
//
//   selectivity check   G * L <= lambda / S      (Theorem 2)
//   cost check          R * L <= lambda / S      (Theorem 1)
//   PCM inference       R     <= lambda          (Section 3)
//   redundancy check    Smin  <= lambda_r        (Appendix E)
//
// so an implementation bug that breaks the within-lambda-of-optimal
// contract is caught while the process is serving, not in a post-mortem.
//
// On a violation the auditor emits a kAuditAlert event back through the
// alert tracer (carrying the offending event's template, instance id and
// guarantee factors) and bumps "verify.online.violations". Meta events
// (kAuditAlert, kRingDropped) are never audited, so an auditor feeding
// the tracer it listens to cannot loop.
//
// Metrics (when a registry is attached):
//   verify.online.checked      events audited so far (counter)
//   verify.online.violations   guarantee violations found (counter)
//   verify.online.worst_margin smallest relative compliance margin seen
//                              (gauge; (rhs-lhs)/rhs per inequality, so
//                              0 = at the bound, < 0 = violated)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics_registry.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "verify/guarantee_audit.h"

namespace scrpqo {

struct OnlineAuditorOptions {
  /// Bounds the streaming audit checks against (same semantics as the
  /// offline auditor: fields < 1 mean "trust the per-event lambda").
  AuditConfig config;
  /// Where kAuditAlert events are emitted. May be the very tracer this
  /// sink is attached to (the alert then shows up in the next drain
  /// cycle); null disables alert emission.
  Tracer* alert_tracer = nullptr;
  /// Publishes the verify.online.* metrics; null disables them.
  MetricsRegistry* metrics = nullptr;
};

class OnlineAuditor : public TraceSink {
 public:
  explicit OnlineAuditor(OnlineAuditorOptions options);

  /// Audits one exporter batch. Thread-safe (the exporter serializes
  /// batches, but tests may drive this directly from several threads).
  void Consume(const std::vector<DecisionEvent>& events) override
      EXCLUDES(mu_);

  /// Streaming rollup for one template ("" = events without a key).
  struct TemplateStats {
    int64_t checked = 0;
    int64_t violations = 0;
    /// Smallest (rhs - lhs) / rhs seen across this template's audited
    /// inequalities; +inf until one is evaluated.
    double worst_margin;
  };

  int64_t checked() const EXCLUDES(mu_);
  int64_t violations() const EXCLUDES(mu_);
  /// Process-wide worst margin (+inf until any inequality is evaluated).
  double worst_margin() const EXCLUDES(mu_);
  std::map<std::string, TemplateStats> PerTemplate() const EXCLUDES(mu_);

 private:
  void PublishLocked() REQUIRES(mu_);

  /// Immutable after construction (alert emission reads the tracer
  /// pointer lock-free outside mu_).
  const OnlineAuditorOptions options_;

  mutable Mutex mu_;
  int64_t checked_ GUARDED_BY(mu_) = 0;
  int64_t violations_ GUARDED_BY(mu_) = 0;
  double worst_margin_ GUARDED_BY(mu_);
  std::map<std::string, TemplateStats> per_template_ GUARDED_BY(mu_);

  // Cached metric handles (resolved once in the constructor — the
  // registry's string-keyed lookup never runs on the consume path).
  Counter* checked_counter_ = nullptr;
  Counter* violations_counter_ = nullptr;
  Gauge* worst_margin_gauge_ = nullptr;
};

}  // namespace scrpqo

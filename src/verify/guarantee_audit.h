// Offline lambda-compliance auditor: statically re-derives every decision
// recorded in a JSONL decision trace (obs/trace.h) and every entry of a
// persisted plan cache (pqo/cache_persistence.h) from the recorded G, L,
// R, S and lambda values, and flags any decision whose arithmetic violates
// the paper's guarantee inequalities:
//
//   selectivity check   G * L <= lambda / S        (Section 5.3, Theorem 2)
//   cost check          R * L <= lambda / S        (Section 5.2, Theorem 1)
//   PCM inference       R     <= lambda            (Section 3)
//   redundancy check    Smin  <= lambda_r          (Section 6.3, Appendix E)
//   cache entry         1 <= S <= lambda_r, C > 0  (Section 6.1 invariants)
//
// With Appendix D's dynamic lambda the per-decision bound is data
// dependent, so techniques record the effective lambda in each event and
// the auditor checks it stays inside [lambda_min, lambda_max].
//
// The auditor is the trust anchor for SCR's value proposition: a clean
// audit proves the implementation honored the within-lambda-of-optimal
// contract for every decision in the trace, independent of the code that
// made those decisions. Exposed as tools/guarantee_audit and
// `scrpqo_cli --audit`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"
#include "pqo/scr.h"

namespace scrpqo {

/// Bounds the auditor checks decisions against. Fields < 1 mean "not
/// configured": the per-event recorded lambda is then trusted (still
/// required to be >= 1), which audits mixed-technique traces.
struct AuditConfig {
  /// Configured sub-optimality bound; events from static-lambda runs must
  /// record exactly this value.
  double lambda = -1.0;
  /// Configured redundancy threshold; redundancy decisions must record
  /// exactly this value. (SCR's default is sqrt(lambda), Appendix E.)
  double lambda_r = -1.0;
  /// Appendix D: per-event lambda must lie in [lambda_min, lambda_max]
  /// instead of matching `lambda` exactly.
  bool dynamic_lambda = false;
  double lambda_min = 1.1;
  double lambda_max = 10.0;
  /// Relative slack when comparing re-derived arithmetic against recorded
  /// bounds. Serde round-trips doubles exactly (%.17g), so this only
  /// needs to absorb reassociation noise.
  double rel_tolerance = 1e-9;
};

/// One guarantee violation found by the audit.
struct AuditViolation {
  /// Trace sequence number of the offending event; -1 for cache findings.
  int64_t seq = -1;
  /// Cache instance-entry ordinal; -1 for trace findings.
  int64_t entry = -1;
  /// Template key recorded on the offending event (empty when the trace
  /// came from a single-template run).
  std::string template_key;
  /// The violated inequality with its recorded values filled in.
  std::string detail;
};

/// Per-template audit rollup for traces produced by a PqoManager (events
/// carry the "template" field; see obs/trace.h).
struct TemplateAuditSummary {
  int64_t events = 0;
  int64_t violations = 0;
  /// Distinct effective lambdas seen on this template's reuse/optimize
  /// decisions (redundancy events record lambda_r and are excluded), so an
  /// operator can confirm each template audited under one bound.
  std::vector<double> lambdas;
};

struct AuditReport {
  int64_t events_checked = 0;
  int64_t entries_checked = 0;
  int64_t plans_checked = 0;
  std::vector<AuditViolation> violations;
  /// Events / violations / lambdas rolled up by the template field of each
  /// event. Key "" collects events without one; empty map for cache audits.
  std::map<std::string, TemplateAuditSummary> by_template;

  bool ok() const { return violations.empty(); }

  /// Per-decision report: one line per violation (capped at `max_lines`),
  /// plus a summary line.
  std::string ToString(int max_lines = 50) const;

  /// One line per template: events checked, violations, lambdas in force.
  /// Empty string when no event carried a template key.
  std::string PerTemplateString() const;

  /// Folds `other` into this report (counts add, violations append,
  /// template rollups merge).
  void Merge(const AuditReport& other);
};

/// Re-derives every decision in `events`. Events from any technique are
/// accepted; the rule applied is selected by the fields the event carries
/// (SCR cost checks record L and S, PCM's record neither).
AuditReport AuditTrace(const std::vector<DecisionEvent>& events,
                       const AuditConfig& config);

/// Reads a JSONL trace file and audits it. Fails (Status) only when the
/// file itself is unreadable or malformed; guarantee violations are
/// reported through the returned AuditReport.
Result<AuditReport> AuditTraceFile(const std::string& path,
                                   const AuditConfig& config);

/// Audits a plan-cache snapshot: referential integrity (every instance
/// entry points at a live plan), positive finite optimal costs, and
/// 1 <= S <= lambda_r for every stored sub-optimality.
AuditReport AuditCacheSnapshot(const std::vector<PlanPtr>& plans,
                               const std::vector<Scr::SnapshotEntry>& entries,
                               const AuditConfig& config);

/// Reads a persisted cache file (cache_persistence.h format) and audits it.
Result<AuditReport> AuditCacheFile(const std::string& path,
                                   const AuditConfig& config);

}  // namespace scrpqo

#include "verify/guarantee_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "pqo/cache_persistence.h"

namespace scrpqo {

namespace {

std::string Fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Collects violations for one event or cache entry.
class Finder {
 public:
  Finder(const AuditConfig& config, AuditReport* report, int64_t seq,
         int64_t entry)
      : config_(config), report_(report), seq_(seq), entry_(entry) {}

  void Flag(const std::string& detail) {
    AuditViolation v;
    v.seq = seq_;
    v.entry = entry_;
    v.detail = detail;
    report_->violations.push_back(std::move(v));
  }

  /// lhs <= rhs within the configured relative tolerance.
  bool Holds(double lhs, double rhs) const {
    return lhs <= rhs * (1.0 + config_.rel_tolerance) +
                      config_.rel_tolerance;
  }

 private:
  const AuditConfig& config_;
  AuditReport* report_;
  int64_t seq_;
  int64_t entry_;
};

bool Present(double field) { return field >= 0.0; }

/// Cross-checks the event's recorded effective lambda against the
/// configured bounds. Returns the recorded lambda (or -1 when absent).
void CheckLambdaField(const DecisionEvent& e, const AuditConfig& config,
                      Finder* f) {
  if (!Present(e.lambda)) {
    f->Flag("event lacks an effective-lambda record (outcome " +
            std::string(DecisionOutcomeName(e.outcome)) + ")");
    return;
  }
  if (e.lambda < 1.0) {
    f->Flag("effective lambda " + Fmt(e.lambda) + " < 1");
    return;
  }
  const bool redundancy = e.outcome == DecisionOutcome::kRedundantDiscard;
  if (redundancy) {
    if (config.lambda_r >= 1.0 &&
        std::abs(e.lambda - config.lambda_r) >
            config.rel_tolerance * config.lambda_r) {
      f->Flag("redundancy decision used lambda_r " + Fmt(e.lambda) +
              ", configured " + Fmt(config.lambda_r));
    }
    return;
  }
  if (config.dynamic_lambda) {
    if (e.lambda < config.lambda_min * (1.0 - config.rel_tolerance) ||
        e.lambda > config.lambda_max * (1.0 + config.rel_tolerance)) {
      f->Flag("dynamic lambda " + Fmt(e.lambda) + " outside [" +
              Fmt(config.lambda_min) + ", " + Fmt(config.lambda_max) + "]");
    }
  } else if (config.lambda >= 1.0 &&
             std::abs(e.lambda - config.lambda) >
                 config.rel_tolerance * config.lambda) {
    f->Flag("decision used lambda " + Fmt(e.lambda) + ", configured " +
            Fmt(config.lambda));
  }
}

void AuditEvent(const DecisionEvent& e, const AuditConfig& config,
                AuditReport* report) {
  Finder f(config, report, e.seq, /*entry=*/-1);
  switch (e.outcome) {
    case DecisionOutcome::kSelCheckHit: {
      // Theorem 2: reusing entry qe's plan at qc is lambda-optimal when
      // G * L <= lambda / S.
      CheckLambdaField(e, config, &f);
      if (!Present(e.g) || !Present(e.l) || !Present(e.subopt)) {
        f.Flag("sel-check-hit lacks g/l/s factors (g=" + Fmt(e.g) +
               " l=" + Fmt(e.l) + " s=" + Fmt(e.subopt) + ")");
        break;
      }
      if (e.g < 1.0 || e.l < 1.0) {
        f.Flag("selectivity factors below 1 (g=" + Fmt(e.g) +
               " l=" + Fmt(e.l) + "); G and L are products of ratios > 1");
      }
      if (e.subopt < 1.0) {
        f.Flag("matched entry has sub-optimality S=" + Fmt(e.subopt) +
               " < 1");
      }
      if (Present(e.lambda) &&
          !f.Holds(e.g * e.l, e.lambda / e.subopt)) {
        f.Flag("sel check violated: G*L = " + Fmt(e.g) + " * " + Fmt(e.l) +
               " = " + Fmt(e.g * e.l) + " > lambda/S = " + Fmt(e.lambda) +
               "/" + Fmt(e.subopt) + " = " + Fmt(e.lambda / e.subopt));
      }
      break;
    }
    case DecisionOutcome::kCostCheckHit: {
      CheckLambdaField(e, config, &f);
      if (!Present(e.r)) {
        f.Flag("cost-check-hit lacks the recost ratio R");
        break;
      }
      if (!Present(e.lambda)) break;
      if (Present(e.l) && Present(e.subopt)) {
        // Theorem 1 (SCR): R * L <= lambda / S.
        if (e.subopt < 1.0) {
          f.Flag("matched entry has sub-optimality S=" + Fmt(e.subopt) +
                 " < 1");
        }
        if (!f.Holds(e.r * e.l, e.lambda / e.subopt)) {
          f.Flag("cost check violated: R*L = " + Fmt(e.r) + " * " +
                 Fmt(e.l) + " = " + Fmt(e.r * e.l) + " > lambda/S = " +
                 Fmt(e.lambda) + "/" + Fmt(e.subopt) + " = " +
                 Fmt(e.lambda / e.subopt));
        }
      } else if (!f.Holds(e.r, e.lambda)) {
        // PCM-style inference: the upper/lower cost ratio bounds SO.
        f.Flag("PCM inference violated: R = " + Fmt(e.r) +
               " > lambda = " + Fmt(e.lambda));
      }
      break;
    }
    case DecisionOutcome::kRedundantDiscard: {
      // Algorithm 2 / Appendix E: the new plan is discarded only when an
      // existing plan is within lambda_r of optimal, Smin <= lambda_r.
      CheckLambdaField(e, config, &f);
      if (!Present(e.r)) {
        f.Flag("redundant-discard lacks the stored sub-optimality Smin");
        break;
      }
      if (e.r < 1.0) {
        f.Flag("stored sub-optimality Smin=" + Fmt(e.r) + " < 1");
      }
      if (Present(e.lambda) && !f.Holds(e.r, e.lambda)) {
        f.Flag("redundancy check violated: Smin = " + Fmt(e.r) +
               " > lambda_r = " + Fmt(e.lambda));
      }
      break;
    }
    case DecisionOutcome::kDegraded:
      // Degraded servings claim no bound (lambda unset by contract), so
      // there is no inequality to re-derive — but a degraded event that
      // DOES claim a lambda is itself a contract violation worth flagging:
      // audits must never fold these decisions into the guaranteed set.
      if (Present(e.lambda)) {
        f.Flag("degraded decision claims a lambda bound (" + Fmt(e.lambda) +
               "); degraded servings are excluded from the guarantee");
      }
      break;
    case DecisionOutcome::kOptimized:
    case DecisionOutcome::kEvicted:
    case DecisionOutcome::kAuditAlert:
    case DecisionOutcome::kRingDropped:
    case DecisionOutcome::kFaultInjected:
      // No guarantee arithmetic: optimizing is always lambda-optimal,
      // eviction drops the instance entries with the plan (Section 6.3.1),
      // and audit-alert / ring-dropped / fault-injected are meta events
      // synthesized about the stream rather than decisions in it.
      break;
  }
}

}  // namespace

std::string AuditReport::ToString(int max_lines) const {
  std::ostringstream os;
  int shown = 0;
  for (const AuditViolation& v : violations) {
    if (shown++ >= max_lines) {
      os << "  ... (" << (violations.size() - static_cast<size_t>(max_lines))
         << " more)\n";
      break;
    }
    os << "  ";
    if (v.seq >= 0) os << "event #" << v.seq << ": ";
    if (v.entry >= 0) os << "cache entry #" << v.entry << ": ";
    if (!v.template_key.empty()) os << "[" << v.template_key << "] ";
    os << v.detail << "\n";
  }
  os << "audit: " << events_checked << " events, " << entries_checked
     << " cache entries, " << plans_checked << " plans checked; "
     << violations.size() << " violation"
     << (violations.size() == 1 ? "" : "s");
  return os.str();
}

std::string AuditReport::PerTemplateString() const {
  // Single-template traces roll everything under "" — nothing to break out.
  if (by_template.empty() ||
      (by_template.size() == 1 && by_template.begin()->first.empty())) {
    return "";
  }
  std::ostringstream os;
  for (const auto& [key, s] : by_template) {
    os << "  template " << (key.empty() ? "(unscoped)" : key) << ": "
       << s.events << " events, " << s.violations << " violation"
       << (s.violations == 1 ? "" : "s") << ", lambda";
    if (s.lambdas.empty()) {
      os << " n/a";
    } else {
      for (size_t i = 0; i < s.lambdas.size(); ++i) {
        os << (i == 0 ? " " : ", ") << Fmt(s.lambdas[i]);
      }
    }
    os << "\n";
  }
  os << "per-template: " << by_template.size() << " templates";
  return os.str();
}

void AuditReport::Merge(const AuditReport& other) {
  events_checked += other.events_checked;
  entries_checked += other.entries_checked;
  plans_checked += other.plans_checked;
  violations.insert(violations.end(), other.violations.begin(),
                    other.violations.end());
  for (const auto& [key, s] : other.by_template) {
    TemplateAuditSummary& mine = by_template[key];
    mine.events += s.events;
    mine.violations += s.violations;
    for (double l : s.lambdas) {
      if (std::find(mine.lambdas.begin(), mine.lambdas.end(), l) ==
          mine.lambdas.end()) {
        mine.lambdas.push_back(l);
      }
    }
  }
}

AuditReport AuditTrace(const std::vector<DecisionEvent>& events,
                       const AuditConfig& config) {
  AuditReport report;
  for (const DecisionEvent& e : events) {
    ++report.events_checked;
    size_t before = report.violations.size();
    AuditEvent(e, config, &report);
    // Stamp this event's template onto the violations it produced and fold
    // it into the per-template rollup.
    for (size_t i = before; i < report.violations.size(); ++i) {
      report.violations[i].template_key = e.template_key;
    }
    TemplateAuditSummary& s = report.by_template[e.template_key];
    ++s.events;
    s.violations += static_cast<int64_t>(report.violations.size() - before);
    // Rollup of the sub-optimality bound in force: redundancy decisions
    // record lambda_r and evictions record nothing, so only reuse/optimize
    // outcomes contribute (a healthy static-lambda template shows one).
    const bool bound_event = e.outcome == DecisionOutcome::kSelCheckHit ||
                             e.outcome == DecisionOutcome::kCostCheckHit ||
                             e.outcome == DecisionOutcome::kOptimized;
    if (bound_event && e.lambda >= 1.0 &&
        std::find(s.lambdas.begin(), s.lambdas.end(), e.lambda) ==
            s.lambdas.end()) {
      s.lambdas.push_back(e.lambda);
    }
  }
  return report;
}

Result<AuditReport> AuditTraceFile(const std::string& path,
                                   const AuditConfig& config) {
  Result<std::vector<DecisionEvent>> events = ReadJsonlTraceFile(path);
  if (!events.ok()) return events.status();
  return AuditTrace(events.ValueOrDie(), config);
}

AuditReport AuditCacheSnapshot(const std::vector<PlanPtr>& plans,
                               const std::vector<Scr::SnapshotEntry>& entries,
                               const AuditConfig& config) {
  AuditReport report;
  for (size_t i = 0; i < plans.size(); ++i) {
    ++report.plans_checked;
    if (plans[i] == nullptr) {
      Finder f(config, &report, /*seq=*/-1, static_cast<int64_t>(i));
      f.Flag("null plan at ordinal " + std::to_string(i));
    }
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    const Scr::SnapshotEntry& e = entries[i];
    ++report.entries_checked;
    Finder f(config, &report, /*seq=*/-1, static_cast<int64_t>(i));
    if (e.plan_ordinal < 0 ||
        e.plan_ordinal >= static_cast<int>(plans.size())) {
      f.Flag("dangling plan ordinal " + std::to_string(e.plan_ordinal) +
             " (cache holds " + std::to_string(plans.size()) + " plans)");
    }
    if (!std::isfinite(e.opt_cost) || e.opt_cost <= 0.0) {
      f.Flag("optimal cost C=" + Fmt(e.opt_cost) +
             " is not positive finite");
    }
    if (!std::isfinite(e.subopt) || e.subopt < 1.0) {
      f.Flag("stored sub-optimality S=" + Fmt(e.subopt) + " < 1");
    } else if (config.lambda_r >= 1.0 && !f.Holds(e.subopt, config.lambda_r)) {
      f.Flag("stored sub-optimality S=" + Fmt(e.subopt) +
             " exceeds lambda_r=" + Fmt(config.lambda_r) +
             "; the redundancy check cannot have admitted this entry");
    }
    if (e.usage < 0) {
      f.Flag("negative usage count " + std::to_string(e.usage));
    }
    for (size_t d = 0; d < e.v.size(); ++d) {
      if (!std::isfinite(e.v[d]) || e.v[d] <= 0.0 || e.v[d] > 1.0) {
        f.Flag("selectivity v[" + std::to_string(d) + "]=" + Fmt(e.v[d]) +
               " outside (0, 1]");
      }
    }
  }
  return report;
}

Result<AuditReport> AuditCacheFile(const std::string& path,
                                   const AuditConfig& config) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open cache file: " + path);
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::vector<PlanPtr> plans;
  std::vector<Scr::SnapshotEntry> entries;
  SCRPQO_RETURN_NOT_OK(ParseScrCacheSnapshot(buf.str(), &plans, &entries));
  return AuditCacheSnapshot(plans, entries, config);
}

}  // namespace scrpqo

// Named monotonic counters and log-scaled histograms for the PQO engine.
// Counters are lock-free atomics; histograms use atomic log-scaled buckets
// (~9% relative resolution) so AsyncScr's worker thread and the critical
// path can record concurrently without contention. Lookup by name happens
// once (create-on-first-use under a mutex); hot paths hold the returned
// pointer, which stays valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace scrpqo {

class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. the online auditor's worst
/// observed compliance margin, cache occupancy). Stored as a bit-cast
/// double so Set/value are single relaxed atomic ops.
class Gauge {
 public:
  void Set(double value);
  double value() const;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Pointer-free exported state of one counter / gauge / histogram,
/// embeddable in SequenceMetrics.
struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

/// Histogram over non-negative values with log-scaled buckets: bucket 0
/// holds [0, 1); bucket i >= 1 holds [2^((i-1)/8), 2^(i/8)), i.e. eight
/// buckets per octave (~9% relative error), covering values up to ~2^31
/// before the overflow bucket. Suited to latencies in microseconds and
/// cost ratios alike.
class LogHistogram {
 public:
  static constexpr int kNumBuckets = 256;

  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Percentile `p` in [0, 100] as the geometric midpoint of the bucket
  /// holding the target rank; ranks landing in the highest non-empty
  /// bucket report the exact tracked max (so p100 — and every percentile
  /// of a single-value histogram — is exact). 0 when empty.
  double Percentile(double p) const;

  /// Largest recorded value, tracked exactly. 0 when empty.
  double max_value() const;

  double mean() const;

  HistogramSnapshot Snapshot(const std::string& name) const;

 private:
  static int BucketFor(double value);
  static double BucketMid(int bucket);

  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  /// Sum and max as bit-cast doubles updated via CAS (portable pre-C++20
  /// fetch_add-for-double replacement).
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> max_bits_{0};
};

/// Full pointer-free registry export.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; `def` when absent.
  int64_t CounterValue(const std::string& name, int64_t def = 0) const;

  /// Gauge value by name; `def` when absent.
  double GaugeValue(const std::string& name, double def = 0.0) const;

  /// Histogram snapshot by name; nullptr when absent. The pointer is into
  /// this snapshot — it lives exactly as long as the RegistrySnapshot.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  /// Create-on-first-use; returned pointer is stable for the registry's
  /// lifetime. Thread-safe.
  Counter* counter(const std::string& name) EXCLUDES(mu_);
  Gauge* gauge(const std::string& name) EXCLUDES(mu_);
  LogHistogram* histogram(const std::string& name) EXCLUDES(mu_);

  RegistrySnapshot Snapshot() const EXCLUDES(mu_);

  /// Writes the snapshot as a single JSON object:
  /// {"counters": {...}, "histograms": {name: {...}, ...}}.
  void WriteJson(std::ostream& os) const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  /// Guards the name->object maps only; the objects themselves are
  /// internally atomic and deliberately NOT guarded (hot paths hold raw
  /// pointers to them with no lock).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace scrpqo

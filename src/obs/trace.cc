#include "obs/trace.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

namespace scrpqo {

namespace {

constexpr const char* kOutcomeNames[] = {
    "sel-check-hit", "cost-check-hit", "optimized",
    "redundant-discard", "evicted",    "audit-alert",
    "ring-dropped",  "degraded",      "fault-injected"};
constexpr int kNumOutcomes = 9;

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendDouble(double v, std::string* out) {
  char buf[48];
  // %.17g round-trips doubles exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

/// Locates `"key":` in `line` and returns the character offset just past
/// the colon (skipping spaces), or npos. Keys we emit never appear inside
/// string values other than `technique`, which is searched last.
size_t FindValue(const std::string& line, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  return pos;
}

enum class NumField { kAbsent, kOk, kBad };

NumField ParseNumberField(const std::string& line, const char* key,
                          double* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos) return NumField::kAbsent;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(start, &end);
  if (end == start || errno == ERANGE) return NumField::kBad;
  *out = v;
  return NumField::kOk;
}

bool ParseNumber(const std::string& line, const char* key, double* out) {
  return ParseNumberField(line, key, out) == NumField::kOk;
}

bool ParseString(const std::string& line, const char* key,
                 std::string* out) {
  size_t pos = FindValue(line, key);
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"') {
    return false;
  }
  ++pos;
  std::string s;
  while (pos < line.size() && line[pos] != '"') {
    char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      char e = line[pos + 1];
      pos += 2;
      switch (e) {
        case 'n':
          s += '\n';
          break;
        case 't':
          s += '\t';
          break;
        case 'u': {
          if (pos + 4 > line.size()) return false;
          char hex[5] = {line[pos], line[pos + 1], line[pos + 2],
                         line[pos + 3], '\0'};
          s += static_cast<char>(std::strtol(hex, nullptr, 16));
          pos += 4;
          break;
        }
        default:
          s += e;
      }
    } else {
      s += c;
      ++pos;
    }
  }
  if (pos >= line.size()) return false;  // unterminated string
  *out = std::move(s);
  return true;
}

}  // namespace

const char* DecisionOutcomeName(DecisionOutcome outcome) {
  int i = static_cast<int>(outcome);
  if (i < 0 || i >= kNumOutcomes) return "unknown";
  return kOutcomeNames[i];
}

bool ParseDecisionOutcome(const std::string& name, DecisionOutcome* out) {
  for (int i = 0; i < kNumOutcomes; ++i) {
    if (name == kOutcomeNames[i]) {
      *out = static_cast<DecisionOutcome>(i);
      return true;
    }
  }
  return false;
}

bool IsDecisionOutcome(DecisionOutcome outcome) {
  switch (outcome) {
    case DecisionOutcome::kSelCheckHit:
    case DecisionOutcome::kCostCheckHit:
    case DecisionOutcome::kOptimized:
    case DecisionOutcome::kRedundantDiscard:
    case DecisionOutcome::kDegraded:
      return true;
    case DecisionOutcome::kEvicted:
    case DecisionOutcome::kAuditAlert:
    case DecisionOutcome::kRingDropped:
    case DecisionOutcome::kFaultInjected:
      return false;
  }
  return false;
}

std::string DecisionEventToJsonl(const DecisionEvent& e) {
  std::string out;
  out.reserve(192);
  out += "{\"seq\":";
  out += std::to_string(e.seq);
  out += ",\"instance\":";
  out += std::to_string(e.instance_id);
  out += ",\"technique\":\"";
  AppendEscaped(e.technique, &out);
  if (!e.template_key.empty()) {
    out += "\",\"template\":\"";
    AppendEscaped(e.template_key, &out);
  }
  out += "\",\"outcome\":\"";
  out += DecisionOutcomeName(e.outcome);
  out += "\",\"matched\":";
  out += std::to_string(e.matched_entry);
  out += ",\"g\":";
  AppendDouble(e.g, &out);
  out += ",\"l\":";
  AppendDouble(e.l, &out);
  out += ",\"r\":";
  AppendDouble(e.r, &out);
  out += ",\"s\":";
  AppendDouble(e.subopt, &out);
  out += ",\"lambda\":";
  AppendDouble(e.lambda, &out);
  out += ",\"candidates\":";
  out += std::to_string(e.candidates_scanned);
  out += ",\"recosts\":";
  out += std::to_string(e.recost_calls);
  out += ",\"wall_us\":";
  out += std::to_string(e.wall_micros);
  // Optional trailing fields, emitted only when set so that events from
  // span-free emitters serialize byte-identically to the legacy format
  // (same contract as the optional "template" field above).
  if (e.dropped != 0) {
    out += ",\"dropped\":";
    out += std::to_string(e.dropped);
  }
  if (e.stages.any()) {
    out += ",\"stages\":{";
    bool first = true;
    for (int i = 0; i < kNumStages; ++i) {
      if (e.stages.micros[i] < 0) continue;
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += StageName(static_cast<Stage>(i));
      out += "\":";
      out += std::to_string(e.stages.micros[i]);
    }
    out += "}";
  }
  out += "}";
  return out;
}

Result<DecisionEvent> DecisionEventFromJsonl(const std::string& line) {
  DecisionEvent e;
  double v = 0.0;
  if (!ParseNumber(line, "seq", &v) || !std::isfinite(v)) {
    return Status::InvalidArgument("trace line missing \"seq\": " + line);
  }
  e.seq = static_cast<int64_t>(v);
  if (!ParseNumber(line, "instance", &v) || !std::isfinite(v)) {
    return Status::InvalidArgument("trace line missing \"instance\"");
  }
  e.instance_id = static_cast<int32_t>(v);
  std::string outcome;
  if (!ParseString(line, "outcome", &outcome) ||
      !ParseDecisionOutcome(outcome, &e.outcome)) {
    return Status::InvalidArgument("trace line has bad \"outcome\": " + line);
  }
  // Optional fields keep their defaults when absent.
  ParseString(line, "technique", &e.technique);
  ParseString(line, "template", &e.template_key);
  if (ParseNumber(line, "matched", &v)) {
    e.matched_entry = static_cast<int32_t>(v);
  }
  struct OptField {
    const char* key;
    double* slot;
  };
  double candidates = 0.0, recosts = 0.0, wall = 0.0, dropped = 0.0;
  for (const OptField& f :
       {OptField{"g", &e.g}, OptField{"l", &e.l}, OptField{"r", &e.r},
        OptField{"s", &e.subopt}, OptField{"lambda", &e.lambda},
        OptField{"candidates", &candidates}, OptField{"recosts", &recosts},
        OptField{"wall_us", &wall}, OptField{"dropped", &dropped}}) {
    if (ParseNumberField(line, f.key, f.slot) == NumField::kBad) {
      return Status::InvalidArgument(std::string("trace line has bad \"") +
                                     f.key + "\": " + line);
    }
  }
  // Stage sub-keys are globally unique in the line (no event key shares a
  // stage name), so the flat key scan handles the nested object too.
  if (FindValue(line, "stages") != std::string::npos) {
    for (int i = 0; i < kNumStages; ++i) {
      double us = 0.0;
      NumField got = ParseNumberField(line, StageName(static_cast<Stage>(i)),
                                      &us);
      if (got == NumField::kBad || (got == NumField::kOk && !std::isfinite(us))) {
        return Status::InvalidArgument(
            std::string("trace line has bad stage \"") +
            StageName(static_cast<Stage>(i)) + "\": " + line);
      }
      if (got == NumField::kOk) {
        e.stages.micros[i] = static_cast<int64_t>(us);
      }
    }
  }
  // Finite-values policy (matches EnvDouble): a NaN/inf cost factor means
  // the trace is corrupt, and must not be silently carried into audits.
  // Checked before the integer casts below, which would be UB on inf.
  for (double field : {e.g, e.l, e.r, e.subopt, e.lambda, candidates,
                       recosts, wall, dropped}) {
    if (!std::isfinite(field)) {
      return Status::InvalidArgument(
          "trace line has non-finite numeric field: " + line);
    }
  }
  e.candidates_scanned = static_cast<int32_t>(candidates);
  e.recost_calls = static_cast<int32_t>(recosts);
  e.wall_micros = static_cast<int64_t>(wall);
  e.dropped = static_cast<int64_t>(dropped);
  return e;
}

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::Record(DecisionEvent event) {
  MutexLock lock(mu_);
  event.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[static_cast<size_t>(event.seq) % capacity_] = std::move(event);
  }
}

int64_t Tracer::total_recorded() const {
  MutexLock lock(mu_);
  return next_seq_;
}

std::vector<DecisionEvent> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<DecisionEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    size_t head = static_cast<size_t>(next_seq_) % capacity_;
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

void Tracer::WriteJsonl(std::ostream& os) const {
  for (const DecisionEvent& e : Snapshot()) {
    os << DecisionEventToJsonl(e) << '\n';
  }
}

Status Tracer::WriteJsonlFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  WriteJsonl(out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

Result<std::vector<DecisionEvent>> ReadJsonlTraceFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::vector<DecisionEvent> events;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Result<DecisionEvent> parsed = DecisionEventFromJsonl(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": " + parsed.status().message());
    }
    events.push_back(parsed.MoveValueOrDie());
  }
  return events;
}

}  // namespace scrpqo

#include "obs/ring_tracer.h"

#include <chrono>
#include <utility>

namespace scrpqo {

namespace {

/// Process-unique tracer ids. Ids, not addresses, key the thread-local
/// handles: a destroyed tracer's storage can be reused by a new one, and
/// an address-keyed handle would then push onto the wrong rings.
std::atomic<uint64_t> g_next_tracer_id{1};

/// A thread's registered rings, one handle per live tracer it has
/// recorded against (almost always exactly one, so Record's lookup is a
/// one-element scan). Shared ownership keeps the ring storage valid even
/// if the tracer is destroyed while this thread still holds a handle.
struct RingHandle {
  uint64_t tracer_id;
  std::shared_ptr<void> ring_owner;
  SpscEventRing* ring;
  std::shared_ptr<std::atomic<bool>> retired;
};

thread_local std::vector<RingHandle> t_ring_handles;

}  // namespace

RingTracer::RingTracer() : RingTracer(Options()) {}

RingTracer::RingTracer(Options options)
    : Tracer(options.window_capacity),
      options_(options),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      retired_(std::make_shared<std::atomic<bool>>(false)),
      window_(std::make_shared<InMemorySink>(
          options.window_capacity == 0 ? 1 : options.window_capacity)) {
  {
    // Not yet shared, but locking keeps the guarded sinks_ write provable
    // without an analysis escape.
    MutexLock lock(export_mu_);
    sinks_.push_back(window_);
  }
  exporter_ = std::thread([this] { ExporterLoop(); });
}

RingTracer::~RingTracer() {
  {
    MutexLock lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  if (exporter_.joinable()) exporter_.join();
  // Final drain: producers must be quiesced by now (standard tracer
  // lifetime contract — techniques are detached before the tracer dies).
  {
    MutexLock lock(export_mu_);
    DrainLocked();
  }
  retired_->store(true, std::memory_order_release);
}

std::shared_ptr<RingTracer::ThreadRing> RingTracer::RegisterThisThread() {
  auto ring = std::make_shared<ThreadRing>(options_.ring_capacity);
  {
    MutexLock lock(rings_mu_);
    rings_.push_back(ring);
  }
  // Prune handles of retired tracers while we're here so long-lived
  // worker threads don't accumulate dead entries.
  for (size_t i = 0; i < t_ring_handles.size();) {
    if (t_ring_handles[i].retired->load(std::memory_order_acquire)) {
      t_ring_handles[i] = std::move(t_ring_handles.back());
      t_ring_handles.pop_back();
    } else {
      ++i;
    }
  }
  t_ring_handles.push_back(
      RingHandle{tracer_id_, ring, &ring->ring, retired_});
  return ring;
}

void RingTracer::Record(DecisionEvent event) {
  for (const RingHandle& h : t_ring_handles) {
    if (h.tracer_id == tracer_id_) {
      h.ring->TryPush(std::move(event));
      return;
    }
  }
  RegisterThisThread()->ring.TryPush(std::move(event));
}

void RingTracer::DrainLocked() {
  {
    MutexLock lock(rings_mu_);
    rings_scratch_ = rings_;
  }
  std::vector<DecisionEvent>& batch = batch_scratch_;
  batch.clear();
  int64_t new_drops = 0;
  for (const std::shared_ptr<ThreadRing>& tr : rings_scratch_) {
    tr->ring.DrainInto(&batch);
    // Read drops only after the drain: a drop observed here happened
    // before events we just pulled at the latest, so the synthesized
    // loss event never claims events that are still buffered.
    int64_t drops = tr->ring.dropped();
    if (drops > tr->drops_seen) {
      new_drops += drops - tr->drops_seen;
      tr->drops_seen = drops;
    }
  }
  if (new_drops > 0) {
    DecisionEvent loss;
    loss.outcome = DecisionOutcome::kRingDropped;
    loss.technique = "ring-tracer";
    loss.dropped = new_drops;
    batch.push_back(std::move(loss));
    dropped_total_.fetch_add(new_drops, std::memory_order_relaxed);
  }
  if (batch.empty()) return;
  for (DecisionEvent& e : batch) {
    e.seq = next_seq_++;
  }
  exported_total_.fetch_add(static_cast<int64_t>(batch.size()),
                            std::memory_order_relaxed);
  for (const std::shared_ptr<TraceSink>& sink : sinks_) {
    // The retained window is always last in the fan-out and takes the
    // batch by move — the exporter's dominant per-event cost is otherwise
    // copying two strings per event into the window.
    if (sink == window_) continue;
    sink->Consume(batch);
    if (new_drops > 0) sink->ObserveDrop(new_drops);
  }
  if (new_drops > 0) window_->ObserveDrop(new_drops);
  window_->ConsumeOwned(std::move(batch));
}

void RingTracer::ExporterLoop() {
  // Hand-over-hand on stop_mu_: held only across the stop check and the
  // timed wait, dropped for the drain so ~RingTracer's stop request never
  // waits behind an in-flight drain round.
  stop_mu_.Lock();
  while (!stopping_) {
    stop_cv_.WaitFor(
        stop_mu_, std::chrono::microseconds(options_.drain_interval_micros));
    stop_mu_.Unlock();
    {
      MutexLock lock(export_mu_);
      DrainLocked();
    }
    stop_mu_.Lock();
  }
  stop_mu_.Unlock();
}

int64_t RingTracer::total_recorded() const {
  return exported_total_.load(std::memory_order_relaxed);
}

int64_t RingTracer::dropped() const {
  return dropped_total_.load(std::memory_order_relaxed);
}

std::vector<DecisionEvent> RingTracer::Snapshot() const {
  return window_->Snapshot();
}

void RingTracer::AddSink(std::shared_ptr<TraceSink> sink) {
  MutexLock lock(export_mu_);
  sinks_.push_back(std::move(sink));
}

Status RingTracer::Flush() {
  MutexLock lock(export_mu_);
  DrainLocked();
  for (const std::shared_ptr<TraceSink>& sink : sinks_) {
    Status s = sink->Flush();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace scrpqo

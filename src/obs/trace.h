// Decision-event tracing for the PQO engine: every getPlan/manageCache
// decision is recorded as a DecisionEvent and can be exported as JSONL
// (one event per line). Techniques emit events only when a Tracer is
// attached, so the disabled-path cost is a null pointer check.
//
// Two capture implementations share the Tracer interface:
//  - Tracer (this file): a single fixed-capacity ring guarded by a mutex.
//    Simple, exact, and the wire-format reference; emitters serialize on
//    the lock, so it is the fallback, not the serving default.
//  - RingTracer (obs/ring_tracer.h): per-thread lock-free SPSC rings
//    drained by a background exporter that merges, stamps sequence
//    numbers, and fans out to pluggable sinks. The serving default.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/span.h"

namespace scrpqo {

/// What the technique concluded for one event.
///
/// The first four plus `kDegraded` are per-instance *decisions* — every
/// instance produces exactly one of them (`kOptimized` and
/// `kRedundantDiscard` both imply an optimizer call; the latter means the
/// redundancy check then discarded the fresh plan in favor of a cached
/// one). `kDegraded` is the failure-handling decision: the optimizer was
/// unavailable (failure, deadline overrun, exhausted retries) and the
/// technique served the best plan it could WITHOUT the lambda guarantee —
/// audits must exclude it from the guaranteed set and report it
/// separately. The rest are meta events emitted on top of the
/// per-instance stream: `kEvicted` per evicted plan, `kAuditAlert` by the
/// online lambda-compliance monitor when a traced decision violates its
/// bound (verify/online_auditor.h), `kRingDropped` by the RingTracer
/// exporter to account for events lost to a full SPSC ring (the `dropped`
/// field carries the count), and `kFaultInjected` recorded once per fired
/// fault-injection point (common/fault_injection.h; the `technique` field
/// carries the point name) so chaos runs are auditable from the JSONL
/// alone.
enum class DecisionOutcome : int {
  kSelCheckHit = 0,
  kCostCheckHit = 1,
  kOptimized = 2,
  kRedundantDiscard = 3,
  kEvicted = 4,
  kAuditAlert = 5,
  kRingDropped = 6,
  kDegraded = 7,
  kFaultInjected = 8,
};

/// Stable wire name ("sel-check-hit", ...).
const char* DecisionOutcomeName(DecisionOutcome outcome);

/// Inverse of DecisionOutcomeName; false when `name` is unknown.
bool ParseDecisionOutcome(const std::string& name, DecisionOutcome* out);

/// True for the per-instance decision outcomes (everything but the meta
/// events kEvicted / kAuditAlert / kRingDropped / kFaultInjected).
bool IsDecisionOutcome(DecisionOutcome outcome);

/// One traced decision. Fields that do not apply to an outcome stay at
/// their defaults (-1 for ids and G/L/R, 0 for counts).
struct DecisionEvent {
  /// Monotonic event number, assigned by the Tracer on Record (RingTracer
  /// assigns it at export time, preserving per-thread emission order).
  int64_t seq = -1;
  /// Workload-instance id the event belongs to.
  int32_t instance_id = -1;
  /// Technique name (Scr::name() style).
  std::string technique;
  /// Template the deciding cache serves (PqoManager's template_key; empty
  /// for single-template runs). Lets one merged trace from a multi-template
  /// manager be audited per template (guarantee_audit --per-template).
  std::string template_key;
  DecisionOutcome outcome = DecisionOutcome::kOptimized;
  /// Cache-entry id that matched (instance-list index for SCR check hits,
  /// plan id for optimized/discard/evict events); -1 when n/a.
  int32_t matched_entry = -1;
  /// Selectivity-check factors at the matched entry (-1 when n/a).
  double g = -1.0;
  double l = -1.0;
  /// Cost ratio observed by the cost / redundancy check (-1 when n/a).
  double r = -1.0;
  /// Sub-optimality S of the matched instance entry at decision time
  /// (-1 when n/a). With g/l/r and lambda this makes every check's
  /// arithmetic statically re-derivable (see verify/guarantee_audit.h).
  double subopt = -1.0;
  /// Effective bound the decision was checked against: lambda for
  /// selectivity/cost-check hits (the Appendix D per-entry value when
  /// dynamic lambda is enabled), lambda_r for redundancy decisions
  /// (-1 when n/a).
  double lambda = -1.0;
  /// Cost-check candidates considered by this getPlan.
  int32_t candidates_scanned = 0;
  /// Recost calls issued by this getPlan.
  int32_t recost_calls = 0;
  /// Wall-clock of the traced section, microseconds.
  int64_t wall_micros = 0;
  /// Events lost to a full SPSC ring since the previous kRingDropped
  /// event; 0 (and absent on the wire) for every other outcome.
  int64_t dropped = 0;
  /// Per-stage latency attribution of the traced getPlan (obs/span.h).
  /// Serialized as an optional "stages" object only when any stage was
  /// timed, so traces from span-free emitters are byte-identical to the
  /// pre-span wire format.
  StageBreakdown stages;
};

/// Serializes one event as a single JSON line (no trailing newline).
std::string DecisionEventToJsonl(const DecisionEvent& event);

/// Parses a line produced by DecisionEventToJsonl. Numeric fields must be
/// finite: NaN/inf cost factors are rejected (same policy as EnvDouble),
/// so a corrupted trace cannot silently pass a guarantee audit.
Result<DecisionEvent> DecisionEventFromJsonl(const std::string& line);

/// Fixed-capacity ring buffer of DecisionEvents guarded by one mutex.
/// Oldest events are overwritten once `capacity` is exceeded;
/// `total_recorded()` keeps the all-time count so overflow is detectable.
/// Also the polymorphic base of RingTracer: ObsHooks carries a Tracer*,
/// and every emitter works against this interface.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 1 << 16);
  virtual ~Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records an event (assigns `seq`). Thread-safe.
  virtual void Record(DecisionEvent event) EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }

  /// All-time number of events captured (>= Snapshot().size()). For the
  /// RingTracer this counts exported events; add dropped() for attempts.
  virtual int64_t total_recorded() const EXCLUDES(mu_);

  /// Events lost to backpressure; always 0 for the mutexed ring (it
  /// overwrites instead of dropping).
  virtual int64_t dropped() const { return 0; }

  /// Live window, oldest first.
  virtual std::vector<DecisionEvent> Snapshot() const EXCLUDES(mu_);

  /// Writes the live window as JSONL, oldest first.
  void WriteJsonl(std::ostream& os) const;

  /// Writes the live window to `path` (overwrite).
  Status WriteJsonlFile(const std::string& path) const;

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<DecisionEvent> ring_ GUARDED_BY(mu_);
  int64_t next_seq_ GUARDED_BY(mu_) = 0;
};

/// Reads a JSONL trace file; fails on the first malformed line.
Result<std::vector<DecisionEvent>> ReadJsonlTraceFile(
    const std::string& path);

}  // namespace scrpqo

// Pluggable consumers of the exported decision-event stream.
//
// The RingTracer exporter calls Consume with ordered batches (seq already
// assigned) from a single thread, so sinks only need internal locking when
// they are *read* concurrently (InMemorySink::Snapshot). ObserveDrop is
// invoked alongside the synthesized kRingDropped event whenever the
// exporter detects producer-side loss.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace scrpqo {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Ordered batch of exported events. Called from the exporter thread
  /// only; never concurrently with itself.
  virtual void Consume(const std::vector<DecisionEvent>& batch) = 0;

  /// Producer-side loss notification (`n` newly dropped events). The
  /// corresponding kRingDropped event is also part of a Consume batch;
  /// this hook exists for sinks that track loss without scanning.
  virtual void ObserveDrop(int64_t n) { (void)n; }

  /// Barrier: all events consumed so far must be durable/visible when
  /// this returns (file sinks flush here).
  virtual Status Flush() { return Status::OK(); }
};

/// Keeps the most recent `capacity` events in memory; the RingTracer's
/// default sink, backing Snapshot() with the same oldest-first window
/// semantics as the mutexed Tracer.
class InMemorySink : public TraceSink {
 public:
  explicit InMemorySink(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Consume(const std::vector<DecisionEvent>& batch) override
      EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (const DecisionEvent& e : batch) StoreLocked(e);
  }

  /// Ownership-taking variant for the exporter's terminal sink: the batch
  /// is dead after the fan-out, so moving events into the window saves a
  /// per-event copy (two strings) on the exporter thread — which on a
  /// small machine time-slices against the serving threads.
  void ConsumeOwned(std::vector<DecisionEvent>&& batch) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (DecisionEvent& e : batch) StoreLocked(std::move(e));
  }

  /// Retained window, oldest first. Any thread.
  std::vector<DecisionEvent> Snapshot() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    std::vector<DecisionEvent> out;
    out.reserve(window_.size());
    if (window_.size() < capacity_) {
      out = window_;
    } else {
      for (size_t i = 0; i < capacity_; ++i) {
        out.push_back(window_[(next_slot_ + i) % capacity_]);
      }
    }
    return out;
  }

 private:
  template <typename Event>
  void StoreLocked(Event&& e) REQUIRES(mu_) {
    if (window_.size() < capacity_) {
      window_.push_back(std::forward<Event>(e));
    } else {
      window_[next_slot_] = std::forward<Event>(e);
    }
    next_slot_ = (next_slot_ + 1) % capacity_;
  }

  const size_t capacity_;
  mutable Mutex mu_;
  std::vector<DecisionEvent> window_ GUARDED_BY(mu_);
  size_t next_slot_ GUARDED_BY(mu_) = 0;
};

/// Streams every exported event to a JSONL file as it arrives — same wire
/// format as Tracer::WriteJsonlFile, but without needing the whole trace
/// to fit in the retained window.
class JsonlFileSink : public TraceSink {
 public:
  /// Check ok() before attaching; a sink that failed to open consumes
  /// events into the void and reports the error on Flush.
  explicit JsonlFileSink(const std::string& path)
      : path_(path), out_(path, std::ios::trunc) {}

  bool ok() const { return out_.is_open() && out_.good(); }

  void Consume(const std::vector<DecisionEvent>& batch) override {
    if (!out_.is_open()) return;
    for (const DecisionEvent& e : batch) {
      out_ << DecisionEventToJsonl(e) << '\n';
    }
  }

  Status Flush() override {
    if (!out_.is_open()) {
      return Status::InvalidArgument("cannot open trace file: " + path_);
    }
    out_.flush();
    if (!out_.good()) {
      return Status::Internal("short write to trace file: " + path_);
    }
    return Status::OK();
  }

 private:
  const std::string path_;
  std::ofstream out_;
};

}  // namespace scrpqo

// Lock-free decision-event capture: each emitting thread gets its own
// SPSC ring (obs/event_ring.h), registered lazily through a thread-local
// handle on first Record; a background exporter thread drains every ring
// a few thousand times a second, assigns global sequence numbers in drain
// order, and fans the merged stream out to pluggable TraceSinks
// (obs/sink.h). Producers therefore never contend on a lock or with each
// other — a Record is one TLS scan plus one SPSC push.
//
// Loss policy: a full ring drops (never blocks the serving path). The
// exporter notices the ring's drop counter advancing and (a) adds it to
// dropped(), (b) synthesizes a kRingDropped event carrying the delta in
// its `dropped` field, so the loss is recorded in-band in the trace.
//
// Thread-handle lifetime: handles are keyed by a process-unique tracer
// id (not the tracer's address, which the allocator can reuse), and hold
// shared ownership of their ring, so a thread that outlives the tracer
// can still touch its handle safely; retired handles are pruned the next
// time the thread registers with a new tracer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/event_ring.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace scrpqo {

class RingTracer : public Tracer {
 public:
  struct Options {
    /// Per-producer-thread ring capacity (rounded up to a power of two).
    size_t ring_capacity = 1 << 12;
    /// Retained in-memory window backing Snapshot(), same role as the
    /// mutexed Tracer's ring.
    size_t window_capacity = 1 << 16;
    /// Exporter wake-up period between drains, microseconds.
    int64_t drain_interval_micros = 200;
  };

  RingTracer();
  explicit RingTracer(Options options);
  ~RingTracer() override;

  /// Lock-free enqueue onto the calling thread's ring (registers the
  /// ring on this thread's first Record against this tracer).
  void Record(DecisionEvent event) override;

  /// Events exported so far (drained, seq-stamped, and fanned out).
  /// Record attempts = total_recorded() + dropped() + still-buffered.
  int64_t total_recorded() const override;

  /// All-time events lost to full rings.
  int64_t dropped() const override;

  /// Retained window (from the built-in InMemorySink), oldest first.
  /// Does NOT force a drain; call Flush() first for an exact view.
  std::vector<DecisionEvent> Snapshot() const override;

  /// Attaches a sink to the fan-out. Safe at any time; the sink starts
  /// receiving batches at the next drain.
  void AddSink(std::shared_ptr<TraceSink> sink) EXCLUDES(export_mu_);

  /// Drains every ring now and flushes all sinks. On return, every event
  /// recorded-before-Flush by *quiesced* producers is exported; a push
  /// racing with the drain may land in the next round.
  Status Flush() EXCLUDES(export_mu_);

 private:
  struct ThreadRing {
    explicit ThreadRing(size_t capacity) : ring(capacity) {}
    SpscEventRing ring;
    /// Drop count already accounted for by the exporter.
    int64_t drops_seen = 0;
  };

  std::shared_ptr<ThreadRing> RegisterThisThread() EXCLUDES(rings_mu_);
  /// One drain round over all rings. Takes rings_mu_ briefly for the ring
  /// snapshot — the exporter-side lock order is export_mu_ before
  /// rings_mu_, and neither is ever held while touching a serving-path
  /// lock (producers are lock-free by construction).
  void DrainLocked() REQUIRES(export_mu_) EXCLUDES(rings_mu_);
  void ExporterLoop();

  const Options options_;
  const uint64_t tracer_id_;
  /// Set by the destructor; threads use it to prune dead TLS handles.
  const std::shared_ptr<std::atomic<bool>> retired_;

  /// Guards the ring registry only (producers registering vs. the
  /// exporter snapshotting); each ring's contents are SPSC-synchronized
  /// by the ring itself.
  Mutex rings_mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_ GUARDED_BY(rings_mu_);

  /// Serializes drain rounds (exporter loop vs. explicit Flush) and
  /// guards the exporter-side state: sink list, sequence counter, and the
  /// ThreadRing::drops_seen bookkeeping DrainLocked updates. Lock order:
  /// a drain round snapshots the registry under rings_mu_ while holding
  /// export_mu_, never the reverse (checked by -Wthread-safety-beta).
  mutable Mutex export_mu_ ACQUIRED_BEFORE(rings_mu_);
  std::vector<std::shared_ptr<TraceSink>> sinks_ GUARDED_BY(export_mu_);
  /// Built-in retained window. The pointer is immutable after
  /// construction (Snapshot reads it lock-free); InMemorySink locks
  /// itself internally.
  const std::shared_ptr<InMemorySink> window_;
  int64_t next_seq_ GUARDED_BY(export_mu_) = 0;
  /// Drain-round scratch (guarded by export_mu_): reused across rounds so
  /// the exporter's steady state allocates nothing.
  std::vector<std::shared_ptr<ThreadRing>> rings_scratch_
      GUARDED_BY(export_mu_);
  std::vector<DecisionEvent> batch_scratch_ GUARDED_BY(export_mu_);

  std::atomic<int64_t> exported_total_{0};
  std::atomic<int64_t> dropped_total_{0};

  Mutex stop_mu_;
  CondVar stop_cv_;
  bool stopping_ GUARDED_BY(stop_mu_) = false;
  std::thread exporter_;
};

}  // namespace scrpqo

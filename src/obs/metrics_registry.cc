#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace scrpqo {

namespace {

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  for (;;) {
    double next = std::bit_cast<double>(old_bits) + delta;
    if (bits->compare_exchange_weak(old_bits, std::bit_cast<uint64_t>(next),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMaxDouble(std::atomic<uint64_t>* bits, double value) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  for (;;) {
    if (std::bit_cast<double>(old_bits) >= value) return;
    if (bits->compare_exchange_weak(old_bits, std::bit_cast<uint64_t>(value),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AppendJsonDouble(double v, std::ostream& os) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

int LogHistogram::BucketFor(double value) {
  if (!(value >= 1.0)) return 0;  // [0,1) plus NaN/negatives
  int b = 1 + static_cast<int>(std::floor(8.0 * std::log2(value)));
  return std::min(b, kNumBuckets - 1);
}

double LogHistogram::BucketMid(int bucket) {
  if (bucket <= 0) return 0.5;
  // Geometric midpoint of [2^((b-1)/8), 2^(b/8)).
  return std::exp2((static_cast<double>(bucket) - 0.5) / 8.0);
}

void LogHistogram::Record(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, value);
  AtomicMaxDouble(&max_bits_, value);
}

double LogHistogram::Percentile(double p) const {
  int64_t n = count();
  if (n <= 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Target rank in [1, n]; walk cumulative bucket counts.
  int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(p / 100.0 *
                                                 static_cast<double>(n))));
  int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      // When the rank lands in the bucket holding the largest recorded
      // value (cumulative already covers all n records), the exact tracked
      // max is strictly better information than the bucket midpoint. This
      // also makes single-value histograms and p100 exact.
      if (cumulative >= n || b == kNumBuckets - 1) return max_value();
      return std::min(BucketMid(b), max_value());
    }
  }
  return max_value();
}

double LogHistogram::max_value() const {
  uint64_t bits = max_bits_.load(std::memory_order_relaxed);
  return std::bit_cast<double>(bits);
}

double LogHistogram::mean() const {
  int64_t n = count();
  if (n <= 0) return 0.0;
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

HistogramSnapshot LogHistogram::Snapshot(const std::string& name) const {
  HistogramSnapshot s;
  s.name = name;
  s.count = count();
  s.p50 = Percentile(50.0);
  s.p90 = Percentile(90.0);
  s.p99 = Percentile(99.0);
  s.mean = mean();
  s.max = max_value();
  return s;
}

int64_t RegistrySnapshot::CounterValue(const std::string& name,
                                       int64_t def) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return def;
}

double RegistrySnapshot::GaugeValue(const std::string& name,
                                    double def) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return g.value;
  }
  return def;
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LogHistogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LogHistogram>();
  return slot.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterSnapshot{name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->Snapshot(name));
  }
  return snap;
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  RegistrySnapshot snap = Snapshot();
  os << "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& c : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << c.name << "\":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << g.name << "\":";
    AppendJsonDouble(g.value, os);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << h.name << "\":{\"count\":" << h.count << ",\"p50\":";
    AppendJsonDouble(h.p50, os);
    os << ",\"p90\":";
    AppendJsonDouble(h.p90, os);
    os << ",\"p99\":";
    AppendJsonDouble(h.p99, os);
    os << ",\"mean\":";
    AppendJsonDouble(h.mean, os);
    os << ",\"max\":";
    AppendJsonDouble(h.max, os);
    os << "}";
  }
  os << "}}\n";
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open metrics file: " + path);
  }
  WriteJson(out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("short write to metrics file: " + path);
  }
  return Status::OK();
}

}  // namespace scrpqo

// RAII section timer: on destruction, records the elapsed microseconds
// into a LogHistogram. Constructed with a null histogram it does nothing —
// hot paths pay a branch, not a clock read, when metrics are disabled.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics_registry.h"

namespace scrpqo {

class ScopedTimer {
 public:
  explicit ScopedTimer(LogHistogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Records now instead of at scope exit; idempotent.
  void Stop() {
    if (histogram_ == nullptr) return;
    histogram_->Record(static_cast<double>(ElapsedMicros(start_)));
    histogram_ = nullptr;
  }

  /// Microseconds elapsed since `start` (shared helper for call sites that
  /// time sections by hand, e.g. to stamp DecisionEvents).
  static int64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

 private:
  LogHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scrpqo

// Minimal embedded admin HTTP server — POSIX sockets only, no
// third-party dependencies. One dedicated thread runs a blocking accept
// loop and serves each connection synchronously (one request per
// connection, `Connection: close`), which is all an operator's curl or a
// Prometheus scraper needs.
//
// Endpoints:
//   /metrics   Prometheus text exposition of the attached MetricsRegistry
//   /healthz   "ok" (liveness)
//   /statusz   JSON from the attached provider (per-template lambda,
//              cache occupancy vs. budgets, warm-up state, ring drops)
//
// The server binds 127.0.0.1 only: this is an operator surface, not a
// public API. Port 0 picks an ephemeral port (see port()), which the
// tests and the CI smoke step rely on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics_registry.h"

namespace scrpqo {

class AdminServer {
 public:
  struct Options {
    /// Port to bind on 127.0.0.1; 0 = ephemeral.
    int port = 0;
    /// Registry backing /metrics; may be nullptr (serves an empty page).
    MetricsRegistry* metrics = nullptr;
    /// Produces the /statusz JSON body; empty = "{}" served.
    std::function<std::string()> statusz;
  };

  explicit AdminServer(Options options) : options_(std::move(options)) {}
  ~AdminServer() { Stop(); }

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, and starts the accept thread. Fails if the port is
  /// taken. Not restartable after Stop.
  Status Start();

  /// Bound port (resolves ephemeral binds); 0 before Start.
  int port() const { return port_; }

  /// Shuts the listener down and joins the accept thread. Idempotent.
  void Stop();

  /// Request dispatch, exposed for direct testing without a socket:
  /// returns the response body and sets `content_type` and `status` for
  /// the given request path.
  std::string Handle(const std::string& path, std::string* content_type,
                     int* status) const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd) const;

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

}  // namespace scrpqo

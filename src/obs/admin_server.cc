#include "obs/admin_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/prometheus.h"

namespace scrpqo {

namespace {

const char* StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 404:
      return "404 Not Found";
    default:
      return "500 Internal Server Error";
  }
}

/// Writes all of `data`, retrying on EINTR / short writes.
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

Status AdminServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("admin: socket() failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status s = Status::Internal(
        std::string("admin: cannot bind 127.0.0.1:") +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status s = Status::Internal(std::string("admin: listen() failed: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes the blocking accept() with an error; close alone is
  // not guaranteed to on all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener shut down (or broken beyond repair): exit the loop.
      return;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void AdminServer::ServeConnection(int fd) const {
  // Read until the end of the request head. Bodies are ignored — every
  // endpoint is a GET.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  // Request line: METHOD SP PATH SP VERSION.
  std::string path = "/";
  size_t sp1 = request.find(' ');
  if (sp1 != std::string::npos) {
    size_t sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      path = request.substr(sp1 + 1, sp2 - sp1 - 1);
    }
  }
  size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string content_type;
  int status = 200;
  std::string body = Handle(path, &content_type, &status);

  std::string response = "HTTP/1.1 ";
  response += StatusLine(status);
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  WriteAll(fd, response);
}

std::string AdminServer::Handle(const std::string& path,
                                std::string* content_type,
                                int* status) const {
  *status = 200;
  if (path == "/metrics") {
    // The exposition-format content type, version pinned per spec.
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (options_.metrics == nullptr) return "";
    return RenderPrometheusText(options_.metrics->Snapshot());
  }
  if (path == "/healthz") {
    *content_type = "text/plain; charset=utf-8";
    return "ok\n";
  }
  if (path == "/statusz") {
    *content_type = "application/json; charset=utf-8";
    if (!options_.statusz) return "{}\n";
    return options_.statusz();
  }
  *status = 404;
  *content_type = "text/plain; charset=utf-8";
  return "not found: " + path + "\n";
}

}  // namespace scrpqo

// Single-producer single-consumer ring buffer of DecisionEvents.
//
// The producer is the one thread that owns the ring (RingTracer hands
// each emitting thread its own ring via TLS); the consumer is the
// exporter thread. Coordination is two monotonic cursors: `tail_` is
// written only by the producer, `head_` only by the consumer, so each
// side needs a single release store and the opposite acquire load per
// operation — no CAS, no locks, no allocation after construction.
//
// When the ring is full the producer DROPS the new event (never blocks,
// never overwrites in-flight slots) and bumps `dropped_`; the exporter
// surfaces the count as a synthesized kRingDropped event so loss is
// visible in the trace itself, not just in a side-channel metric.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/effects.h"
#include "obs/trace.h"

namespace scrpqo {

class SpscEventRing {
 public:
  /// `capacity` is rounded up to a power of two (masking beats modulo on
  /// the hot path) with a floor of 8.
  explicit SpscEventRing(size_t capacity) {
    size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscEventRing(const SpscEventRing&) = delete;
  SpscEventRing& operator=(const SpscEventRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false (and counts a drop) when full.
  /// Wait-free: two atomic loads, one slot move, one release store —
  /// proved alloc-free and non-blocking by the effect analyzer; noexcept
  /// because DecisionEvent's members are all nothrow-movable.
  SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING SCRPQO_NOTHROW
  SCRPQO_LOCK_BOUNDED()
  bool TryPush(DecisionEvent event) noexcept {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[tail & mask_] = std::move(event);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every currently-visible event to `out` in
  /// push order and frees the slots. Returns the number drained.
  size_t DrainInto(std::vector<DecisionEvent>* out) {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    uint64_t head = head_.load(std::memory_order_relaxed);
    const size_t n = static_cast<size_t>(tail - head);
    for (; head != tail; ++head) {
      out->push_back(std::move(slots_[head & mask_]));
    }
    head_.store(head, std::memory_order_release);
    return n;
  }

  /// All-time events rejected because the ring was full. Any thread.
  int64_t dropped() const {
    return static_cast<int64_t>(dropped_.load(std::memory_order_relaxed));
  }

  /// Consumer-side estimate of buffered events (racy by nature).
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<DecisionEvent> slots_;
  size_t mask_ = 0;
  // The cursors live on separate cache lines so the producer's tail
  // stores never invalidate the consumer's head line and vice versa.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> dropped_{0};
};

}  // namespace scrpqo

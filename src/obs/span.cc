#include "obs/span.h"

#include <string>

namespace scrpqo {

thread_local StageBreakdown* SpanContext::current_ = nullptr;

namespace {
constexpr const char* kStageNames[kNumStages] = {
    "shard_wait", "svector",  "index_probe",  "sel_check",
    "recost",     "optimize", "manage_cache", "batch_recost"};
}  // namespace

const char* StageName(Stage stage) {
  int i = static_cast<int>(stage);
  if (i < 0 || i >= kNumStages) return "unknown";
  return kStageNames[i];
}

StageHistograms StageHistograms::FromRegistry(MetricsRegistry* metrics) {
  StageHistograms out;
  if (metrics == nullptr) return out;
  for (int i = 0; i < kNumStages; ++i) {
    out.h[i] = metrics->histogram(
        std::string("stage.") + kStageNames[i] + "_micros");
  }
  return out;
}

}  // namespace scrpqo

// Stage-span attribution for getPlan: a GetPlanSpan opens an ambient
// per-thread StageBreakdown for the in-flight decision, StageTimers add
// elapsed microseconds to one stage slot (and, when given one, to a
// per-stage LogHistogram), and the technique's EmitEvent copies the
// ambient breakdown onto the DecisionEvent it records. The disabled path
// (no span open, no histogram attached) costs one thread-local read and a
// null check — no clock read.
//
// Stage taxonomy (the phases a PqoManager-routed getPlan passes through):
//   shard_wait    PqoManager shard-lock acquisition wait
//   svector       selectivity-vector computation (harness/engine side)
//   index_probe   spatial-index range query / nearest-by-GL sweep
//   sel_check     instance-list selectivity-check scan
//   recost        scalar Recost calls (tree walks, one-off programs)
//   optimize      full optimizer call on a miss
//   manage_cache  Algorithm 2 bookkeeping (store-or-reuse, eviction)
//   batch_recost  batched recost sweeps (RecostMany blocks and the
//                 SIMD bundle's EvalMany passes)
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics_registry.h"

namespace scrpqo {

enum class Stage : int {
  kShardWait = 0,
  kSVector = 1,
  kIndexProbe = 2,
  kSelCheck = 3,
  kRecost = 4,
  kOptimize = 5,
  kManageCache = 6,
  kBatchRecost = 7,
};
inline constexpr int kNumStages = 8;

/// Stable wire name ("shard_wait", "svector", ...), used both as the JSONL
/// sub-key of the event's "stages" object and as the metric-name fragment
/// of the per-stage histograms ("stage.<name>_micros").
const char* StageName(Stage stage);

/// Per-decision stage latency breakdown; -1 marks a stage that never ran.
struct StageBreakdown {
  int64_t micros[kNumStages] = {-1, -1, -1, -1, -1, -1, -1, -1};

  bool any() const {
    for (int64_t v : micros) {
      if (v >= 0) return true;
    }
    return false;
  }

  /// Accumulates (a stage may run more than once per decision, e.g. the
  /// recost sweep of a failed reuse attempt plus the redundancy check).
  void Add(Stage stage, int64_t us) {
    int64_t& slot = micros[static_cast<int>(stage)];
    slot = slot < 0 ? us : slot + us;
  }

  int64_t get(Stage stage) const {
    return micros[static_cast<int>(stage)];
  }
};

/// Ambient per-thread breakdown of the in-flight getPlan. Deliberately a
/// raw pointer into the opening GetPlanSpan's frame: spans never outlive
/// the call that opened them.
class SpanContext {
 public:
  static StageBreakdown* Current() { return current_; }

 private:
  friend class GetPlanSpan;
  static thread_local StageBreakdown* current_;
};

/// Opens an ambient StageBreakdown for the current thread. Nested opens
/// are no-ops (the outermost span owns the breakdown), so PqoManager can
/// open one around the whole routing path while Scr::TryReuse opens its
/// own when called standalone.
class GetPlanSpan {
 public:
  explicit GetPlanSpan(bool enabled) {
    if (!enabled || SpanContext::current_ != nullptr) return;
    active_ = true;
    SpanContext::current_ = &local_;
  }

  GetPlanSpan(const GetPlanSpan&) = delete;
  GetPlanSpan& operator=(const GetPlanSpan&) = delete;

  ~GetPlanSpan() {
    if (active_) SpanContext::current_ = nullptr;
  }

  /// The breakdown collected so far (valid only while this span is the
  /// active one). Used to forward a failed reuse attempt's stages to a
  /// deferred (worker-thread) manageCache event.
  const StageBreakdown& breakdown() const { return local_; }

  /// Pre-seeds stages measured elsewhere (e.g. the critical-path optimize
  /// time forwarded into AsyncScr's worker-side event).
  void Seed(const StageBreakdown& from) {
    if (!active_) return;
    for (int i = 0; i < kNumStages; ++i) {
      if (from.micros[i] >= 0) {
        local_.Add(static_cast<Stage>(i), from.micros[i]);
      }
    }
  }

 private:
  StageBreakdown local_;
  bool active_ = false;
};

/// RAII stage timer: on Stop (or destruction) adds the elapsed micros to
/// the ambient breakdown slot and to `histogram` (either may be absent).
/// With neither attached, no clock is read.
class StageTimer {
 public:
  StageTimer(Stage stage, LogHistogram* histogram)
      : stage_(stage),
        histogram_(histogram),
        breakdown_(SpanContext::Current()) {
    if (armed()) start_ = std::chrono::steady_clock::now();
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { Stop(); }

  /// Records now instead of at scope exit; idempotent.
  void Stop() {
    if (!armed()) return;
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
    if (breakdown_ != nullptr) breakdown_->Add(stage_, us);
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<double>(us));
    }
    breakdown_ = nullptr;
    histogram_ = nullptr;
  }

 private:
  bool armed() const {
    return breakdown_ != nullptr || histogram_ != nullptr;
  }

  Stage stage_;
  LogHistogram* histogram_;
  StageBreakdown* breakdown_;
  std::chrono::steady_clock::time_point start_;
};

/// Cached per-stage histogram pointers ("stage.<name>_micros"), resolved
/// once at SetObs time so hot paths never do a string-keyed lookup.
struct StageHistograms {
  LogHistogram* h[kNumStages] = {};

  static StageHistograms FromRegistry(MetricsRegistry* metrics);

  LogHistogram* operator[](Stage stage) const {
    return h[static_cast<int>(stage)];
  }

  void Reset() {
    for (LogHistogram*& hist : h) hist = nullptr;
  }
};

}  // namespace scrpqo

#include "obs/prometheus.h"

#include <cctype>
#include <cstdio>

namespace scrpqo {

namespace {

void AppendDouble(double v, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendFamilyHeader(const std::string& name, const char* type,
                        const std::string& raw_name, std::string* out) {
  *out += "# HELP ";
  *out += name;
  *out += " scrpqo metric ";
  *out += raw_name;
  *out += "\n# TYPE ";
  *out += name;
  *out += " ";
  *out += type;
  *out += "\n";
}

void AppendQuantile(const std::string& name, const char* q, double v,
                    std::string* out) {
  *out += name;
  *out += "{quantile=\"";
  *out += q;
  *out += "\"} ";
  AppendDouble(v, out);
  *out += "\n";
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string RenderPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  for (const CounterSnapshot& c : snapshot.counters) {
    std::string name = PrometheusMetricName(c.name);
    AppendFamilyHeader(name, "counter", c.name, &out);
    out += name;
    out += " ";
    out += std::to_string(c.value);
    out += "\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    std::string name = PrometheusMetricName(g.name);
    AppendFamilyHeader(name, "gauge", g.name, &out);
    out += name;
    out += " ";
    AppendDouble(g.value, &out);
    out += "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    std::string name = PrometheusMetricName(h.name);
    AppendFamilyHeader(name, "summary", h.name, &out);
    AppendQuantile(name, "0.5", h.p50, &out);
    AppendQuantile(name, "0.9", h.p90, &out);
    AppendQuantile(name, "0.99", h.p99, &out);
    AppendQuantile(name, "1", h.max, &out);
    // The registry keeps mean and count, not the raw sum; reconstruct.
    out += name;
    out += "_sum ";
    AppendDouble(h.mean * static_cast<double>(h.count), &out);
    out += "\n";
    out += name;
    out += "_count ";
    out += std::to_string(h.count);
    out += "\n";
  }
  return out;
}

}  // namespace scrpqo

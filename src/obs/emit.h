// The one sanctioned way to hand a DecisionEvent to a tracer from outside
// the obs layer.
//
// Emitters (Scr, Pcm, PqoManager, the online auditor) must not call
// Tracer::Record directly: the project lint rule `tracer-record-outside-obs`
// (tools/lint/scrpqo_lint.py) flags direct Record calls anywhere under
// src/ except src/obs/, so capture-path policy — null-tracer handling
// today; sampling, rate-limiting, or event validation tomorrow — has
// exactly one place to live instead of being re-implemented per emitter.
#pragma once

#include <utility>

#include "obs/trace.h"

namespace scrpqo {

/// Records `event` against `tracer`; a null tracer drops the event (the
/// standard "tracing disabled" fast path, one branch).
inline void EmitDecisionEvent(Tracer* tracer, DecisionEvent event) {
  if (tracer == nullptr) return;
  tracer->Record(std::move(event));
}

}  // namespace scrpqo

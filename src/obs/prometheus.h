// Prometheus text-exposition (version 0.0.4) rendering of a
// RegistrySnapshot, served by the admin server's /metrics endpoint.
//
// Metric names in the registry use dots ("pqo.manager.evictions"); the
// exposition format only allows [a-zA-Z_:][a-zA-Z0-9_:]*, so names are
// sanitized by mapping every illegal character to '_' and prefixing
// names that start with a digit with '_'. Counters render as `counter`,
// gauges as `gauge`, and LogHistograms as `summary` (quantile series from
// the log-bucket percentiles plus _sum and _count), which matches what
// the registry can actually answer — it keeps percentile sketches, not
// cumulative native-histogram buckets.
#pragma once

#include <string>

#include "obs/metrics_registry.h"

namespace scrpqo {

/// Sanitized exposition metric name for a registry metric name.
std::string PrometheusMetricName(const std::string& name);

/// Full exposition page for the snapshot (each family preceded by
/// # HELP / # TYPE lines, terminated by a trailing newline).
std::string RenderPrometheusText(const RegistrySnapshot& snapshot);

}  // namespace scrpqo

#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace scrpqo {

std::string Token::ToString() const {
  switch (type) {
    case TokenType::kIdentifier:
      return text;
    case TokenType::kNumber:
      return std::to_string(number);
    case TokenType::kString:
      return "'" + text + "'";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kStar:
      return "*";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kEq:
      return "=";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    case TokenType::kQuestion:
      return "?";
    case TokenType::kDollarParam:
      return "$" + std::to_string(param_index);
    case TokenType::kEnd:
      return "<end>";
  }
  return "<?>";
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto make = [&i](TokenType t) {
    Token tok;
    tok.type = t;
    tok.position = i;
    return tok;
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        ++i;
      }
      Token tok;
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      tok.position = start;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_int = true;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') is_int = false;
        ++i;
      }
      Token tok;
      tok.type = TokenType::kNumber;
      tok.number = std::strtod(sql.c_str() + start, nullptr);
      tok.number_is_int = is_int;
      tok.position = start;
      tokens.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '\'': {
        size_t start = ++i;
        while (i < sql.size() && sql[i] != '\'') ++i;
        if (i >= sql.size()) {
          return Status::InvalidArgument(
              "unterminated string literal at offset " +
              std::to_string(start - 1));
        }
        Token tok;
        tok.type = TokenType::kString;
        tok.text = sql.substr(start, i - start);
        tok.position = start - 1;
        tokens.push_back(std::move(tok));
        ++i;  // closing quote
        break;
      }
      case ',':
        tokens.push_back(make(TokenType::kComma));
        ++i;
        break;
      case '.':
        tokens.push_back(make(TokenType::kDot));
        ++i;
        break;
      case '*':
        tokens.push_back(make(TokenType::kStar));
        ++i;
        break;
      case '(':
        tokens.push_back(make(TokenType::kLParen));
        ++i;
        break;
      case ')':
        tokens.push_back(make(TokenType::kRParen));
        ++i;
        break;
      case '=':
        tokens.push_back(make(TokenType::kEq));
        ++i;
        break;
      case '<':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          tokens.push_back(make(TokenType::kLe));
          i += 2;
        } else {
          tokens.push_back(make(TokenType::kLt));
          ++i;
        }
        break;
      case '>':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          tokens.push_back(make(TokenType::kGe));
          i += 2;
        } else {
          tokens.push_back(make(TokenType::kGt));
          ++i;
        }
        break;
      case '?':
        tokens.push_back(make(TokenType::kQuestion));
        ++i;
        break;
      case '$': {
        size_t start = ++i;
        while (i < sql.size() &&
               std::isdigit(static_cast<unsigned char>(sql[i]))) {
          ++i;
        }
        if (i == start) {
          return Status::InvalidArgument("expected digits after $ at offset " +
                                         std::to_string(start - 1));
        }
        Token tok;
        tok.type = TokenType::kDollarParam;
        tok.param_index = std::atoi(sql.substr(start, i - start).c_str());
        tok.position = start - 1;
        tokens.push_back(std::move(tok));
        break;
      }
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(i));
    }
  }
  tokens.push_back(make(TokenType::kEnd));
  return tokens;
}

}  // namespace scrpqo

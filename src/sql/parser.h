// SQL template front end: parses a parameterized SQL statement into a
// QueryTemplate validated against a catalog.
//
// Accepted grammar (case-insensitive keywords):
//
//   SELECT ( '*' | COUNT '(' '*' ')' | select_columns )
//   FROM table [alias] ( ',' table [alias] )*
//   WHERE condition ( AND condition )*
//   [ GROUP BY qualified_column ]
//
//   condition      := qualified_column '=' qualified_column     -- join edge
//                   | qualified_column cmp rhs                  -- filter
//   cmp            := '=' | '<' | '<=' | '>' | '>='
//   rhs            := number | 'string' | '?' | '$' digits
//   qualified_column := name '.' column | column   (unambiguous bare names
//                       are resolved against the FROM tables)
//
// '?' parameters take slots in order of appearance; '$N' names slot N
// explicitly (the two styles cannot be mixed). The select list does not
// affect planning (the engine's plans are row-id based) but is validated.
#pragma once

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query_template.h"

namespace scrpqo {

/// Parses `sql` into a QueryTemplate. Every table and column is validated
/// against `catalog`; join conditions become edges, parameterized
/// comparisons become the template's dimensions (numbered by slot), and
/// literal comparisons become fixed predicates.
Result<std::shared_ptr<QueryTemplate>> ParseQueryTemplate(
    const Catalog& catalog, const std::string& sql,
    const std::string& template_name = "sql_template");

}  // namespace scrpqo

#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <vector>

#include "sql/lexer.h"

namespace scrpqo {

namespace {

bool IsKeyword(const Token& tok, const char* kw) {
  if (tok.type != TokenType::kIdentifier) return false;
  const std::string& s = tok.text;
  size_t n = 0;
  while (kw[n] != '\0') ++n;
  if (s.size() != n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return true;
}

// Propagate a Status error out of a Result-returning method.
#define SCRPQO_RETURN_NOT_OK_RESULT(expr)     \
  do {                                        \
    ::scrpqo::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(const Catalog& catalog, std::vector<Token> tokens, std::string name)
      : catalog_(catalog), tokens_(std::move(tokens)), name_(std::move(name)) {}

  Result<std::shared_ptr<QueryTemplate>> Parse() {
    SCRPQO_RETURN_NOT_OK_RESULT(ExpectKeyword("SELECT"));
    SCRPQO_RETURN_NOT_OK_RESULT(ParseSelectList());
    SCRPQO_RETURN_NOT_OK_RESULT(ExpectKeyword("FROM"));
    SCRPQO_RETURN_NOT_OK_RESULT(ParseFromList());

    tmpl_ = std::make_shared<QueryTemplate>(name_, table_names_);

    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      SCRPQO_RETURN_NOT_OK_RESULT(ParseConditions());
    }
    if (IsKeyword(Peek(), "GROUP")) {
      Advance();
      SCRPQO_RETURN_NOT_OK_RESULT(ExpectKeyword("BY"));
      SCRPQO_RETURN_NOT_OK_RESULT(ParseGroupBy());
    }
    if (Peek().type != TokenType::kEnd) {
      return Fail("unexpected trailing input: " + Peek().ToString());
    }
    // Resolve deferred validation: selected columns.
    for (const auto& [tbl, col] : selected_columns_) {
      Status st = CheckColumn(tbl, col);
      if (!st.ok()) return st;
    }
    if (!tmpl_->IsJoinGraphConnected()) {
      return Fail("join graph is not connected (missing join conditions)");
    }
    // Normalize '?' parameters: assign slots in encounter order.
    Status st = AttachPredicates();
    if (!st.ok()) return st;
    return tmpl_;
  }

 private:
  struct PendingPredicate {
    int table_index;
    std::string column;
    CompareOp op;
    bool parameterized;
    int explicit_slot;  // -1 for '?'
    Value literal;
    size_t order;  // encounter order for '?' slot numbering
  };

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument(msg + " (near offset " +
                                   std::to_string(Peek().position) + ")");
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw)) {
      return Fail(std::string("expected ") + kw + ", got " +
                  Peek().ToString());
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenType type, const char* what) {
    if (Peek().type != type) {
      return Fail(std::string("expected ") + what + ", got " +
                  Peek().ToString());
    }
    Advance();
    return Status::OK();
  }

  Status ParseSelectList() {
    if (Peek().type == TokenType::kStar) {
      Advance();
      return Status::OK();
    }
    if (IsKeyword(Peek(), "COUNT")) {
      Advance();
      SCRPQO_RETURN_NOT_OK_RESULT(Expect(TokenType::kLParen, "("));
      SCRPQO_RETURN_NOT_OK_RESULT(Expect(TokenType::kStar, "*"));
      SCRPQO_RETURN_NOT_OK_RESULT(Expect(TokenType::kRParen, ")"));
      return Status::OK();
    }
    // Column list: qualified or bare names, validated after FROM is known.
    for (;;) {
      if (Peek().type != TokenType::kIdentifier) {
        return Fail("expected column name in select list");
      }
      std::string first = Advance().text;
      if (Peek().type == TokenType::kDot) {
        Advance();
        if (Peek().type != TokenType::kIdentifier) {
          return Fail("expected column after '.'");
        }
        selected_columns_.emplace_back(first, Advance().text);
      } else {
        selected_columns_.emplace_back("", first);
      }
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList() {
    for (;;) {
      if (Peek().type != TokenType::kIdentifier) {
        return Fail("expected table name in FROM");
      }
      std::string table = Advance().text;
      if (catalog_.FindTable(table) == nullptr) {
        return Status::InvalidArgument("unknown table: " + table);
      }
      std::string alias = table;
      // Optional alias (an identifier that is not a clause keyword).
      if (Peek().type == TokenType::kIdentifier && !IsKeyword(Peek(), "WHERE") &&
          !IsKeyword(Peek(), "GROUP")) {
        alias = Advance().text;
      }
      if (alias_to_index_.count(alias) > 0) {
        return Status::InvalidArgument("duplicate table alias: " + alias);
      }
      alias_to_index_[alias] = static_cast<int>(table_names_.size());
      table_names_.push_back(table);
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  /// Resolves "alias.column" or a bare "column" against the FROM tables.
  Status ResolveColumn(std::string qualifier, std::string column,
                       int* table_index) {
    if (!qualifier.empty()) {
      auto it = alias_to_index_.find(qualifier);
      if (it == alias_to_index_.end()) {
        return Status::InvalidArgument("unknown table alias: " + qualifier);
      }
      *table_index = it->second;
      return CheckColumn(qualifier, column);
    }
    // Bare column: must be unambiguous across FROM tables.
    int found = -1;
    for (size_t i = 0; i < table_names_.size(); ++i) {
      if (catalog_.GetTable(table_names_[i]).HasColumn(column)) {
        if (found >= 0) {
          return Status::InvalidArgument("ambiguous column: " + column);
        }
        found = static_cast<int>(i);
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("unknown column: " + column);
    }
    *table_index = found;
    return Status::OK();
  }

  Status CheckColumn(const std::string& alias, const std::string& column) {
    if (alias.empty()) {
      int ignored;
      return ResolveColumn("", column, &ignored);
    }
    auto it = alias_to_index_.find(alias);
    if (it == alias_to_index_.end()) {
      return Status::InvalidArgument("unknown table alias: " + alias);
    }
    const std::string& table =
        table_names_[static_cast<size_t>(it->second)];
    if (!catalog_.GetTable(table).HasColumn(column)) {
      return Status::InvalidArgument("unknown column: " + table + "." +
                                     column);
    }
    return Status::OK();
  }

  /// Parses one side of a condition: returns (table_index, column).
  Status ParseColumnRef(int* table_index, std::string* column) {
    if (Peek().type != TokenType::kIdentifier) {
      return Fail("expected column reference");
    }
    std::string first = Advance().text;
    if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Fail("expected column after '.'");
      }
      *column = Advance().text;
      return ResolveColumn(first, *column, table_index);
    }
    *column = first;
    return ResolveColumn("", *column, table_index);
  }

  static CompareOp OpFromToken(TokenType t) {
    switch (t) {
      case TokenType::kLt:
        return CompareOp::kLt;
      case TokenType::kLe:
        return CompareOp::kLe;
      case TokenType::kGt:
        return CompareOp::kGt;
      case TokenType::kGe:
        return CompareOp::kGe;
      default:
        return CompareOp::kEq;
    }
  }

  Status ParseConditions() {
    for (;;) {
      int lt;
      std::string lcol;
      SCRPQO_RETURN_NOT_OK_RESULT(ParseColumnRef(&lt, &lcol));

      TokenType op_type = Peek().type;
      if (op_type != TokenType::kEq && op_type != TokenType::kLt &&
          op_type != TokenType::kLe && op_type != TokenType::kGt &&
          op_type != TokenType::kGe) {
        return Fail("expected comparison operator");
      }
      Advance();

      const Token& rhs = Peek();
      if (rhs.type == TokenType::kIdentifier) {
        // Join condition: column = column.
        if (op_type != TokenType::kEq) {
          return Fail("join conditions must use '='");
        }
        int rt;
        std::string rcol;
        SCRPQO_RETURN_NOT_OK_RESULT(ParseColumnRef(&rt, &rcol));
        if (lt == rt) {
          return Fail("self-join conditions are not supported");
        }
        JoinEdge e;
        e.left_table = lt;
        e.left_column = lcol;
        e.right_table = rt;
        e.right_column = rcol;
        tmpl_->AddJoin(e);
      } else if (rhs.type == TokenType::kQuestion ||
                 rhs.type == TokenType::kDollarParam) {
        Advance();
        if (rhs.type == TokenType::kQuestion) {
          if (uses_dollar_) return Fail("cannot mix '?' and '$N' parameters");
          uses_question_ = true;
        } else {
          if (uses_question_) {
            return Fail("cannot mix '?' and '$N' parameters");
          }
          uses_dollar_ = true;
        }
        PendingPredicate p;
        p.table_index = lt;
        p.column = lcol;
        p.op = OpFromToken(op_type);
        p.parameterized = true;
        p.explicit_slot =
            rhs.type == TokenType::kDollarParam ? rhs.param_index : -1;
        p.order = pending_.size();
        pending_.push_back(std::move(p));
      } else if (rhs.type == TokenType::kNumber ||
                 rhs.type == TokenType::kString) {
        Advance();
        PendingPredicate p;
        p.table_index = lt;
        p.column = lcol;
        p.op = OpFromToken(op_type);
        p.parameterized = false;
        p.explicit_slot = -1;
        if (rhs.type == TokenType::kString) {
          p.literal = Value(rhs.text);
        } else if (rhs.number_is_int) {
          p.literal = Value(static_cast<int64_t>(rhs.number));
        } else {
          p.literal = Value(rhs.number);
        }
        p.order = pending_.size();
        pending_.push_back(std::move(p));
      } else {
        return Fail("expected column, literal or parameter after operator");
      }

      if (!IsKeyword(Peek(), "AND")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseGroupBy() {
    int t;
    std::string col;
    SCRPQO_RETURN_NOT_OK_RESULT(ParseColumnRef(&t, &col));
    AggregateSpec agg;
    agg.enabled = true;
    agg.group_table = t;
    agg.group_column = col;
    tmpl_->SetAggregate(agg);
    return Status::OK();
  }

  Status AttachPredicates() {
    // Determine slot numbering: '?' by encounter order; '$N' must form a
    // dense range starting at 0.
    std::vector<const PendingPredicate*> params;
    for (const auto& p : pending_) {
      if (p.parameterized) params.push_back(&p);
    }
    std::vector<const PendingPredicate*> by_slot(params.size(), nullptr);
    if (uses_dollar_) {
      for (const auto* p : params) {
        if (p->explicit_slot < 0 ||
            p->explicit_slot >= static_cast<int>(params.size())) {
          return Status::InvalidArgument(
              "$N parameters must be dense starting at $0");
        }
        if (by_slot[static_cast<size_t>(p->explicit_slot)] != nullptr) {
          return Status::InvalidArgument(
              "duplicate parameter slot $" +
              std::to_string(p->explicit_slot));
        }
        by_slot[static_cast<size_t>(p->explicit_slot)] = p;
      }
    } else {
      for (size_t i = 0; i < params.size(); ++i) by_slot[i] = params[i];
    }
    // Parameterized predicates first (slot order), then literals.
    for (size_t slot = 0; slot < by_slot.size(); ++slot) {
      const PendingPredicate* p = by_slot[slot];
      PredicateTemplate pt;
      pt.table_index = p->table_index;
      pt.column = p->column;
      pt.op = p->op;
      pt.param_slot = static_cast<int>(slot);
      Status st = tmpl_->AddPredicate(std::move(pt));
      if (!st.ok()) return st;
    }
    for (const auto& p : pending_) {
      if (p.parameterized) continue;
      PredicateTemplate pt;
      pt.table_index = p.table_index;
      pt.column = p.column;
      pt.op = p.op;
      pt.literal = p.literal;
      Status st = tmpl_->AddPredicate(std::move(pt));
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

#undef SCRPQO_RETURN_NOT_OK_RESULT

  const Catalog& catalog_;
  std::vector<Token> tokens_;
  std::string name_;
  size_t pos_ = 0;

  std::vector<std::string> table_names_;
  std::map<std::string, int> alias_to_index_;
  std::vector<std::pair<std::string, std::string>> selected_columns_;
  std::vector<PendingPredicate> pending_;
  std::shared_ptr<QueryTemplate> tmpl_;
  bool uses_question_ = false;
  bool uses_dollar_ = false;
};

}  // namespace

Result<std::shared_ptr<QueryTemplate>> ParseQueryTemplate(
    const Catalog& catalog, const std::string& sql,
    const std::string& template_name) {
  Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(catalog, tokens.MoveValueOrDie(), template_name);
  return parser.Parse();
}

}  // namespace scrpqo

// Minimal SQL lexer for the template front end (see parser.h for the
// accepted grammar).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace scrpqo {

enum class TokenType {
  kIdentifier,   // table, column, keyword (keywords resolved by parser)
  kNumber,       // integer or decimal literal
  kString,       // 'quoted'
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kEq,           // =
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kQuestion,     // ? positional parameter
  kDollarParam,  // $N explicit parameter
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // identifier / string body
  double number = 0.0;   // kNumber value
  bool number_is_int = false;
  int param_index = -1;  // kDollarParam slot
  size_t position = 0;   // byte offset, for error messages

  std::string ToString() const;
};

/// Tokenizes `sql`. Identifiers are case-preserved (the parser compares
/// keywords case-insensitively). Returns InvalidArgument on stray
/// characters or unterminated strings.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace scrpqo

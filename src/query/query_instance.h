// Query instances and the selectivity-vector (sVector) API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "expr/value.h"
#include "query/query_template.h"
#include "storage/database.h"

namespace scrpqo {

/// Selectivity vector: one entry per parameterized predicate, paper
/// Section 2's sVector.
using SVector = std::vector<double>;

/// \brief A query template with all parameter slots bound.
class QueryInstance {
 public:
  QueryInstance() = default;
  QueryInstance(const QueryTemplate* tmpl, std::vector<Value> params)
      : template_(tmpl), params_(std::move(params)) {
    SCRPQO_CHECK(static_cast<int>(params_.size()) == tmpl->dimensions(),
                 "parameter count must equal template dimensionality");
  }

  const QueryTemplate& query_template() const { return *template_; }
  const std::vector<Value>& params() const { return params_; }
  const Value& param(int slot) const {
    return params_[static_cast<size_t>(slot)];
  }

  /// All predicates on `table_index` with parameters substituted.
  std::vector<BoundPredicate> BoundPredicatesOnTable(int table_index) const;

  std::string ToString() const;

 private:
  const QueryTemplate* template_ = nullptr;
  std::vector<Value> params_;
};

/// \brief Engine API #1 (paper Appendix B): computes the selectivities of
/// the instance's parameterized predicates from catalog statistics,
/// short-circuiting any plan search.
SVector ComputeSelectivityVector(const Database& db,
                                 const QueryInstance& instance);

/// Combined selectivity (parameterized and literal predicates, independence
/// assumed) of all predicates on one of the instance's tables.
double TableSelectivity(const Database& db, const QueryInstance& instance,
                        int table_index);

/// \brief Inverts estimation: builds an instance whose estimated sVector is
/// (approximately) `targets`, using histogram quantiles. The workhorse of
/// workload generation (paper Section 7.1).
QueryInstance InstanceForSelectivities(const Database& db,
                                       const QueryTemplate& tmpl,
                                       const SVector& targets);

}  // namespace scrpqo

// Parameterized query templates: the unit of PQO. A template is a
// select-project-join block over catalog tables with equi-join edges and
// single-column filter predicates, `d` of which are parameterized (paper
// Section 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/predicate.h"

namespace scrpqo {

/// \brief Equi-join between two of the template's tables.
struct JoinEdge {
  int left_table = 0;
  std::string left_column;
  int right_table = 0;
  std::string right_column;

  std::string ToString() const;
};

/// \brief Optional aggregation on top of the join (GROUP BY + COUNT).
struct AggregateSpec {
  bool enabled = false;
  int group_table = 0;
  std::string group_column;
};

class QueryTemplate {
 public:
  QueryTemplate() = default;
  QueryTemplate(std::string name, std::vector<std::string> tables)
      : name_(std::move(name)), tables_(std::move(tables)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& tables() const { return tables_; }
  int num_tables() const { return static_cast<int>(tables_.size()); }

  void AddJoin(JoinEdge edge) { joins_.push_back(std::move(edge)); }
  const std::vector<JoinEdge>& joins() const { return joins_; }

  /// Adds a predicate; parameterized predicates must be added in slot order
  /// (slot ids 0, 1, 2, ... without gaps).
  Status AddPredicate(PredicateTemplate pred);
  const std::vector<PredicateTemplate>& predicates() const {
    return predicates_;
  }

  void SetAggregate(AggregateSpec agg) { aggregate_ = std::move(agg); }
  const AggregateSpec& aggregate() const { return aggregate_; }

  /// Number of parameterized predicates ("dimensions", paper Section 2).
  int dimensions() const { return dimensions_; }

  /// The predicate feeding selectivity dimension `slot`.
  const PredicateTemplate& PredicateForSlot(int slot) const;

  /// Indices of predicates (parameterized and literal) on table
  /// `table_index`.
  std::vector<int> PredicatesOnTable(int table_index) const;

  /// True if the join graph connects all tables (required for optimization
  /// without cross products).
  bool IsJoinGraphConnected() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> tables_;
  std::vector<JoinEdge> joins_;
  std::vector<PredicateTemplate> predicates_;
  AggregateSpec aggregate_;
  int dimensions_ = 0;
};

}  // namespace scrpqo

#include "query/query_instance.h"

#include <cmath>
#include <sstream>

namespace scrpqo {

std::vector<BoundPredicate> QueryInstance::BoundPredicatesOnTable(
    int table_index) const {
  std::vector<BoundPredicate> out;
  for (const auto& p : template_->predicates()) {
    if (p.table_index != table_index) continue;
    BoundPredicate bp;
    bp.column = p.column;
    bp.op = p.op;
    bp.param_slot = p.param_slot;
    bp.value = p.parameterized() ? param(p.param_slot) : p.literal;
    out.push_back(std::move(bp));
  }
  return out;
}

std::string QueryInstance::ToString() const {
  std::ostringstream os;
  os << template_->name() << "(";
  for (size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "$" << i << "=" << params_[i].ToString();
  }
  os << ")";
  return os.str();
}

SVector ComputeSelectivityVector(const Database& db,
                                 const QueryInstance& instance) {
  const QueryTemplate& tmpl = instance.query_template();
  SVector sv(static_cast<size_t>(tmpl.dimensions()), 0.0);
  for (int slot = 0; slot < tmpl.dimensions(); ++slot) {
    const PredicateTemplate& p = tmpl.PredicateForSlot(slot);
    const std::string& table = tmpl.tables()[static_cast<size_t>(
        p.table_index)];
    const ColumnStats& stats = db.catalog().GetColumnStats(table, p.column);
    sv[static_cast<size_t>(slot)] =
        stats.Selectivity(p.op, instance.param(slot));
  }
  return sv;
}

double TableSelectivity(const Database& db, const QueryInstance& instance,
                        int table_index) {
  const QueryTemplate& tmpl = instance.query_template();
  const std::string& table =
      tmpl.tables()[static_cast<size_t>(table_index)];
  double sel = 1.0;
  for (const auto& bp : instance.BoundPredicatesOnTable(table_index)) {
    const ColumnStats& stats = db.catalog().GetColumnStats(table, bp.column);
    sel *= stats.Selectivity(bp.op, bp.value);
  }
  return sel;
}

QueryInstance InstanceForSelectivities(const Database& db,
                                       const QueryTemplate& tmpl,
                                       const SVector& targets) {
  SCRPQO_CHECK(static_cast<int>(targets.size()) == tmpl.dimensions(),
               "target vector dimensionality mismatch");
  std::vector<Value> params;
  params.reserve(targets.size());
  for (int slot = 0; slot < tmpl.dimensions(); ++slot) {
    const PredicateTemplate& p = tmpl.PredicateForSlot(slot);
    const std::string& table =
        tmpl.tables()[static_cast<size_t>(p.table_index)];
    const ColumnStats& stats = db.catalog().GetColumnStats(table, p.column);
    double c = stats.histogram.QuantileForSelectivity(
        p.op, targets[static_cast<size_t>(slot)]);
    const TableDef& def = db.catalog().GetTable(table);
    int col_idx = def.ColumnIndex(p.column);
    SCRPQO_CHECK(col_idx >= 0, "predicate on unknown column");
    if (def.columns[static_cast<size_t>(col_idx)].type == DataType::kInt64) {
      params.emplace_back(static_cast<int64_t>(std::llround(c)));
    } else {
      params.emplace_back(c);
    }
  }
  return QueryInstance(&tmpl, std::move(params));
}

}  // namespace scrpqo

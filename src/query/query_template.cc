#include "query/query_template.h"

#include <sstream>

namespace scrpqo {

std::string JoinEdge::ToString() const {
  return "t" + std::to_string(left_table) + "." + left_column + " = t" +
         std::to_string(right_table) + "." + right_column;
}

Status QueryTemplate::AddPredicate(PredicateTemplate pred) {
  if (pred.table_index < 0 || pred.table_index >= num_tables()) {
    return Status::InvalidArgument("predicate references invalid table index");
  }
  if (pred.parameterized()) {
    if (pred.param_slot != dimensions_) {
      return Status::InvalidArgument(
          "parameter slots must be added in order without gaps; expected "
          "slot " +
          std::to_string(dimensions_) + " got " +
          std::to_string(pred.param_slot));
    }
    ++dimensions_;
  }
  predicates_.push_back(std::move(pred));
  return Status::OK();
}

const PredicateTemplate& QueryTemplate::PredicateForSlot(int slot) const {
  for (const auto& p : predicates_) {
    if (p.param_slot == slot) return p;
  }
  SCRPQO_CHECK(false, "no predicate for requested parameter slot");
  return predicates_.front();  // unreachable
}

std::vector<int> QueryTemplate::PredicatesOnTable(int table_index) const {
  std::vector<int> out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (predicates_[i].table_index == table_index) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

bool QueryTemplate::IsJoinGraphConnected() const {
  int n = num_tables();
  if (n <= 1) return true;
  std::vector<int> comp(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) comp[static_cast<size_t>(i)] = i;
  // Union-find without rank; n is tiny.
  auto find = [&](int x) {
    while (comp[static_cast<size_t>(x)] != x) x = comp[static_cast<size_t>(x)];
    return x;
  };
  for (const auto& j : joins_) {
    int a = find(j.left_table), b = find(j.right_table);
    comp[static_cast<size_t>(a)] = b;
  }
  int root = find(0);
  for (int i = 1; i < n; ++i) {
    if (find(i) != root) return false;
  }
  return true;
}

std::string QueryTemplate::ToString() const {
  std::ostringstream os;
  os << "QueryTemplate(" << name_ << ", tables=[";
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (i > 0) os << ", ";
    os << tables_[i];
  }
  os << "], joins=[";
  for (size_t i = 0; i < joins_.size(); ++i) {
    if (i > 0) os << ", ";
    os << joins_[i].ToString();
  }
  os << "], predicates=[";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) os << ", ";
    os << predicates_[i].ToString();
  }
  os << "], d=" << dimensions_ << ")";
  return os.str();
}

}  // namespace scrpqo

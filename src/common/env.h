// Environment-variable helpers for scaling benchmark workloads.
#pragma once

#include <cstdint>
#include <string>

namespace scrpqo {

/// Reads an integer from the environment, falling back to `def` when the
/// variable is unset or unparsable. Used to scale benchmark sizes
/// (e.g. SCRPQO_M for workload length) without recompiling.
int64_t EnvInt64(const std::string& name, int64_t def);

/// Reads a double from the environment with fallback.
double EnvDouble(const std::string& name, double def);

}  // namespace scrpqo

#include "common/fault_injection.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace scrpqo {
namespace {

/// FNV-1a over the point name: mixes the global seed with the point so
/// every point gets an independent, reproducible stream.
uint64_t HashPointName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool ParseDoubleClause(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseInt64Clause(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

/// Parses one `TRIGGER[@PARAM]` clause into `spec`.
Status ParseTriggerClause(std::string_view point, std::string_view clause,
                          FaultSpec* spec) {
  std::string_view trigger = clause;
  if (size_t at = clause.find('@'); at != std::string_view::npos) {
    trigger = clause.substr(0, at);
    std::string_view param = clause.substr(at + 1);
    if (!ParseDoubleClause(param, &spec->param)) {
      return Status::InvalidArgument("fault point '" + std::string(point) +
                                     "': bad param '" + std::string(param) +
                                     "'");
    }
  }
  if (trigger == "once") {
    spec->trigger = FaultTrigger::kOneShot;
    return Status::OK();
  }
  if (trigger.size() >= 2 && trigger[0] == 'p') {
    double p = 0.0;
    if (!ParseDoubleClause(trigger.substr(1), &p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "fault point '" + std::string(point) +
          "': probability must be in [0,1], got '" + std::string(trigger) +
          "'");
    }
    spec->trigger = FaultTrigger::kProbability;
    spec->probability = p;
    return Status::OK();
  }
  if (trigger.size() >= 2 && trigger[0] == 'n') {
    int64_t n = 0;
    if (!ParseInt64Clause(trigger.substr(1), &n) || n < 1) {
      return Status::InvalidArgument(
          "fault point '" + std::string(point) +
          "': every-Nth period must be >= 1, got '" + std::string(trigger) +
          "'");
    }
    spec->trigger = FaultTrigger::kEveryNth;
    spec->nth = n;
    return Status::OK();
  }
  return Status::InvalidArgument(
      "fault point '" + std::string(point) + "': unknown trigger '" +
      std::string(trigger) + "' (want p<float>, n<int>, or once)");
}

}  // namespace

FaultRegistry& FaultRegistry::Global()
    SCRPQO_EFFECT_ALLOW(alloc, "one-time leaked singleton construction on first use (intentionally leaked so chaos hooks survive exit); every later call is a guarded static-local load") {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(std::string_view point, FaultSpec spec) {
  MutexLock lock(mu_);
  PointState state;
  state.spec = spec;
  state.rng = Pcg32(seed_ ^ HashPointName(point), HashPointName(point) | 1);
  auto [it, inserted] = points_.insert_or_assign(std::string(point), state);
  (void)it;
  if (inserted) {
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool FaultRegistry::Disarm(std::string_view point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  points_.erase(it);
  armed_points_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(mu_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
  on_fire_ = nullptr;
}

void FaultRegistry::SetSeed(uint64_t seed) {
  MutexLock lock(mu_);
  seed_ = seed;
  ReseedLocked();
}

void FaultRegistry::ReseedLocked() {
  for (auto& [name, state] : points_) {
    state.rng = Pcg32(seed_ ^ HashPointName(name), HashPointName(name) | 1);
    state.evaluations = 0;
    state.fires = 0;
    state.exhausted = false;
  }
}

Status FaultRegistry::ConfigureFromString(std::string_view config) {
  // Parse everything before arming anything so a bad clause rejects the
  // whole schedule instead of leaving it half-applied.
  std::vector<std::pair<std::string, FaultSpec>> parsed;
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t semi = config.find(';', pos);
    std::string_view clause = config.substr(
        pos, semi == std::string_view::npos ? std::string_view::npos
                                            : semi - pos);
    pos = (semi == std::string_view::npos) ? config.size() + 1 : semi + 1;
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault clause '" + std::string(clause) +
                                     "': want point=trigger");
    }
    std::string_view point = clause.substr(0, eq);
    FaultSpec spec;
    SCRPQO_RETURN_NOT_OK(
        ParseTriggerClause(point, clause.substr(eq + 1), &spec));
    parsed.emplace_back(std::string(point), spec);
  }
  for (auto& [point, spec] : parsed) {
    Arm(point, spec);
  }
  return Status::OK();
}

Status FaultRegistry::ConfigureFromEnv() {
  if (const char* seed = std::getenv("SCRPQO_FAULT_SEED");
      seed != nullptr && *seed != '\0') {
    int64_t v = 0;
    if (ParseInt64Clause(seed, &v)) SetSeed(static_cast<uint64_t>(v));
  }
  const char* faults = std::getenv("SCRPQO_FAULTS");
  if (faults == nullptr || *faults == '\0') return Status::OK();
  return ConfigureFromString(faults);
}

bool FaultRegistry::ShouldFire(std::string_view point, double* param) {
  std::function<void(std::string_view, double)> hook;
  double fired_param = 0.0;
  {
    MutexLock lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return false;
    PointState& state = it->second;
    state.evaluations++;
    bool fire = false;
    switch (state.spec.trigger) {
      case FaultTrigger::kProbability:
        fire = state.rng.UniformDouble() < state.spec.probability;
        break;
      case FaultTrigger::kEveryNth:
        fire = ((state.evaluations - 1) % state.spec.nth) == 0;
        break;
      case FaultTrigger::kOneShot:
        fire = !state.exhausted;
        state.exhausted = true;
        break;
    }
    if (!fire) return false;
    state.fires++;
    fired_param = state.spec.param;
    hook = on_fire_;  // copied so it runs outside the lock
  }
  if (param != nullptr) *param = fired_param;
  if (hook) hook(point, fired_param);
  return true;
}

FaultPointStats FaultRegistry::StatsFor(std::string_view point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return {};
  return {it->second.evaluations, it->second.fires};
}

int64_t FaultRegistry::TotalFires() const {
  MutexLock lock(mu_);
  int64_t total = 0;
  for (const auto& [name, state] : points_) total += state.fires;
  return total;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) names.push_back(name);
  return names;
}

void FaultRegistry::SetOnFire(
    std::function<void(std::string_view point, double param)> hook) {
  MutexLock lock(mu_);
  on_fire_ = std::move(hook);
}

}  // namespace scrpqo

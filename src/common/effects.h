// Effect-contract annotations for the whole-program analyzer
// (tools/analyze/scrpqo_effects.py). See DESIGN.md §4j.
//
// The macros declare *transitive* contracts on a function: the analyzer
// extracts the project call graph, computes an effect lattice per function
// (ALLOCATES / LOCKS / BLOCKS / THROWS / FP_NONDET), and proves that no
// effect forbidden by a contract is reachable from the annotated
// definition through any callee chain. Violations fail CI with a
// shortest-path call-chain witness.
//
// Placement: annotate the *definition* (the analyzer indexes bodies), in
// leading position — GNU attributes are valid there for definitions on
// both GCC and Clang:
//
//   SCRPQO_HOT SCRPQO_NOALLOC SCRPQO_NONBLOCKING
//   bool TryReuseFast(const WorkloadInstance& wi, ...) { ... }
//
// Under Clang the macros expand to __attribute__((annotate(...))) so the
// contracts survive into the AST for the optional libclang refinement;
// under other compilers they expand to nothing. The lexical engine (the
// one that gates CI) greps for the macro tokens, so the contracts are
// enforced regardless of toolchain.
#pragma once

#if defined(__clang__)
#define SCRPQO_EFFECTS_ATTRIBUTE__(x) __attribute__((annotate(x)))
#else
#define SCRPQO_EFFECTS_ATTRIBUTE__(x)
#endif

/// Marks a function as part of the warmed getPlan serving path. Purely a
/// registry/reporting tag: the analyzer lists SCRPQO_HOT roots in its
/// findings JSON and warns when one carries no effect contract at all.
#define SCRPQO_HOT SCRPQO_EFFECTS_ATTRIBUTE__("scrpqo_hot")

/// No heap allocation is reachable: no new/malloc/make_unique, no
/// std-container growth, transitively through every callee. Arena bumps
/// are fine — ScratchArena::Allocate carries the one sanctioned
/// SCRPQO_EFFECT_ALLOW(alloc) for its amortized chunk growth.
#define SCRPQO_NOALLOC SCRPQO_EFFECTS_ATTRIBUTE__("scrpqo_noalloc")

/// No unbounded wait is reachable: no sleep, condvar wait, thread join,
/// or blocking I/O syscall. Bounded-critical-section mutex acquisition is
/// governed separately by SCRPQO_LOCK_BOUNDED.
#define SCRPQO_NONBLOCKING SCRPQO_EFFECTS_ATTRIBUTE__("scrpqo_nonblocking")

/// Every reachable floating-point operation is reproducible across the
/// runtime dispatch tiers (scalar / AVX2 / AVX-512): no fenv access, no
/// randomness, no raw SIMD intrinsics outside the sanctioned TUs, and no
/// raw libm transcendentals outside src/common/simd.h's Vec* wrappers
/// (the single definition every tier funnels through).
#define SCRPQO_FP_DETERMINISTIC SCRPQO_EFFECTS_ATTRIBUTE__("scrpqo_fp_deterministic")

/// No throw is reachable (SCRPQO_CHECK aborts, it does not throw, so
/// [[noreturn]] abort paths are excluded). Functions proved SCRPQO_NOTHROW
/// are the ones allowed to carry `noexcept` on the hot path; the analyzer
/// keeps the proof honest as callees evolve.
#define SCRPQO_NOTHROW SCRPQO_EFFECTS_ATTRIBUTE__("scrpqo_nothrow")

/// The transitive set of lock capabilities this function may acquire is
/// limited to the named ones (scrpqo::Mutex / SharedMutex members, by
/// field name — cross-checked against the Clang TSA CAPABILITY
/// annotations and the DESIGN §4g lock-order DAG). An empty list means
/// the function acquires no locks at all.
#define SCRPQO_LOCK_BOUNDED(...) \
  SCRPQO_EFFECTS_ATTRIBUTE__("scrpqo_lock_bounded:" #__VA_ARGS__)

/// Sanctioned escape hatch. `rule` is one of alloc/lock/block/throw/fp;
/// `justification` must be a non-empty string literal naming *why* the
/// effect is acceptable — the analyzer hard-fails on an empty one, so an
/// escape can never be silent. Placement decides scope:
///   - on a function's signature (between the declarator and `{`, or on a
///     leading line): sanctions that rule for the whole function and
///     stops traversal into its callees for that rule;
///   - on its own line inside a body: sanctions that rule on the next
///     non-blank line only;
///   - trailing a statement: sanctions that rule on that line only.
/// Expands to nothing on every compiler; the analyzer parses the source.
#define SCRPQO_EFFECT_ALLOW(rule, justification)

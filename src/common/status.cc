#include "common/status.h"

namespace scrpqo {
namespace internal {

void CheckFailed(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line,
               msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace scrpqo

// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every source of randomness in the repository flows through Pcg32 seeded
// explicitly, so that data generation, workload generation and benchmark
// results are identical across runs and platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace scrpqo {

/// \brief PCG32 generator (O'Neill, 2014): small state, good statistical
/// quality, fully deterministic across platforms.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Next raw 32-bit value.
  uint32_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Zipfian sampler over ranks {0, ..., n-1} with parameter theta.
///
/// theta = 0 degenerates to uniform; larger theta means heavier skew. Uses
/// precomputed cumulative probabilities with binary search, so sampling is
/// O(log n) and exact.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double theta);

  int64_t Sample(Pcg32* rng) const;
  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace scrpqo

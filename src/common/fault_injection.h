// Deterministic, seed-driven fault injection for hardening tests.
//
// A FaultRegistry holds named fault points ("optimizer.fail",
// "snapshot.truncate", ...). Production code asks `FaultShouldFire(point)`
// at each instrumented site; tests and the chaos CI job arm points with a
// trigger (per-point probability, every-Nth invocation, or one-shot) either
// programmatically or through the SCRPQO_FAULTS environment variable.
//
// Determinism: every point owns a private Pcg32 seeded from the global
// fault seed hashed with the point name, plus an invocation counter, so a
// given (seed, schedule, call sequence) fires the exact same faults on
// every run and platform — chaos failures reproduce from the seed alone.
//
// Zero overhead when disabled: the fast path is one relaxed atomic load of
// `armed_points_` (0 for every production process that never arms a
// fault); no lock, no map lookup, no branch history pollution beyond a
// never-taken conditional. The perf-smoke gate relies on this.
//
// This lives in src/common and therefore cannot depend on src/obs; the
// "trace every fired fault" requirement is met by an on-fire callback that
// the embedding layer (scrpqo_cli, tests) wires to its Tracer/metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/effects.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace scrpqo {

/// Canonical fault-point names. Sites pass these constants so the set of
/// instrumented points is greppable from one place; the registry itself
/// accepts any name (tests may invent private points).
namespace faults {
/// EngineContext::Optimize returns null (optimizer failure).
inline constexpr const char kOptimizeFail[] = "optimizer.fail";
/// EngineContext::Optimize sleeps `param` microseconds before returning
/// (models a slow optimizer; triggers the deadline fallback when an
/// optimize deadline is configured).
inline constexpr const char kOptimizeLatency[] = "optimizer.latency";
/// Recost/RecostMany/RecostBundled replace the result with NaN.
inline constexpr const char kRecostNonFinite[] = "recost.nonfinite";
/// Recost results are multiplied by `param` (default 10x) — models a
/// mis-costing engine without leaving the finite domain.
inline constexpr const char kRecostPerturb[] = "recost.perturb";
/// AsyncScr worker drops the manageCache task instead of applying it.
inline constexpr const char kAsyncTaskFail[] = "async_scr.task_fail";
/// Snapshot load sees the file truncated to `param` fraction (default
/// half) of its bytes.
inline constexpr const char kSnapshotTruncate[] = "snapshot.truncate";
/// Snapshot load sees one byte of the file bit-flipped.
inline constexpr const char kSnapshotBitFlip[] = "snapshot.bitflip";
/// Cold-path (manageCache) allocation fails: the fresh plan is served but
/// not cached.
inline constexpr const char kColdAllocFail[] = "scr.cold_alloc";
}  // namespace faults

/// How an armed fault point decides to fire.
enum class FaultTrigger : int {
  /// Fires on each invocation independently with probability `probability`.
  kProbability = 0,
  /// Fires on every `nth` invocation (1st, nth+1th, ... — i.e. invocation
  /// index % nth == 0).
  kEveryNth = 1,
  /// Fires exactly once, on the first invocation after arming.
  kOneShot = 2,
};

/// Arming descriptor for one fault point.
struct FaultSpec {
  FaultTrigger trigger = FaultTrigger::kProbability;
  /// For kProbability: chance in [0, 1] that an invocation fires.
  double probability = 1.0;
  /// For kEveryNth: period (>= 1).
  int64_t nth = 1;
  /// Free-form payload delivered to the firing site: latency micros for
  /// kOptimizeLatency, cost multiplier for kRecostPerturb, truncation
  /// fraction for kSnapshotTruncate. 0 means "site default".
  double param = 0.0;
};

/// Observed counters for one fault point.
struct FaultPointStats {
  int64_t evaluations = 0;  ///< times the site asked ShouldFire
  int64_t fires = 0;        ///< times it fired
};

/// Process-global registry of armed fault points. All methods are
/// thread-safe; ShouldFire on an un-armed registry is a single relaxed
/// atomic load.
class FaultRegistry {
 public:
  /// The process singleton every instrumented site consults.
  static FaultRegistry& Global();

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Arms (or re-arms, resetting counters) a fault point.
  void Arm(std::string_view point, FaultSpec spec) EXCLUDES(mu_);

  /// Disarms one point; returns false if it was not armed.
  bool Disarm(std::string_view point) EXCLUDES(mu_);

  /// Disarms everything and clears the on-fire hook — the state a test
  /// must restore before returning (chaos fixtures do this in TearDown).
  void DisarmAll() EXCLUDES(mu_);

  /// Sets the global seed and deterministically re-seeds every armed
  /// point's generator. Defaults to 0.
  void SetSeed(uint64_t seed) EXCLUDES(mu_);

  /// Parses a schedule of the form
  ///   point=TRIGGER[@PARAM][;point=TRIGGER[@PARAM]]...
  /// where TRIGGER is `p<float>` (probability), `n<int>` (every Nth) or
  /// `once`, and PARAM is the FaultSpec::param payload. Example:
  ///   "optimizer.fail=p0.1;optimizer.latency=n5@20000;snapshot.bitflip=once"
  /// Rejects the whole string (arming nothing) on any malformed clause.
  Status ConfigureFromString(std::string_view config) EXCLUDES(mu_);

  /// Reads SCRPQO_FAULT_SEED (default 0) and SCRPQO_FAULTS; unset or empty
  /// SCRPQO_FAULTS arms nothing. Returns the ConfigureFromString status.
  Status ConfigureFromEnv() EXCLUDES(mu_);

  /// True when at least one point is armed. Relaxed load; the inline
  /// fast path for every instrumented site.
  bool enabled() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

  /// Decides whether `point` fires this invocation. When it fires,
  /// `*param` (if non-null) receives the armed FaultSpec::param and the
  /// on-fire hook (if any) runs. Un-armed points never fire.
  bool ShouldFire(std::string_view point, double* param = nullptr)
      EXCLUDES(mu_);

  /// Counters for one point (zeros when never armed).
  FaultPointStats StatsFor(std::string_view point) const EXCLUDES(mu_);

  /// Total fires across all points since the last DisarmAll/SetSeed.
  int64_t TotalFires() const EXCLUDES(mu_);

  /// Names of currently armed points (sorted).
  std::vector<std::string> ArmedPoints() const EXCLUDES(mu_);

  /// Installs a hook invoked (outside the registry lock) after every
  /// fired fault — the embedding layer forwards it to tracing/metrics.
  /// Pass nullptr to clear.
  void SetOnFire(
      std::function<void(std::string_view point, double param)> hook)
      EXCLUDES(mu_);

 private:
  struct PointState {
    FaultSpec spec;
    Pcg32 rng;
    int64_t evaluations = 0;
    int64_t fires = 0;
    bool exhausted = false;  ///< kOneShot already fired
  };

  void ReseedLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  /// Number of armed points, mirrored outside the lock for the fast path.
  std::atomic<int64_t> armed_points_{0};
  uint64_t seed_ GUARDED_BY(mu_) = 0;
  std::map<std::string, PointState, std::less<>> points_ GUARDED_BY(mu_);
  std::function<void(std::string_view, double)> on_fire_ GUARDED_BY(mu_);
};

/// Fast-path helper every instrumented site calls: one relaxed atomic load
/// when no fault is armed anywhere in the process.
inline bool FaultShouldFire(std::string_view point,
                            double* param = nullptr)
    SCRPQO_EFFECT_ALLOW(lock, "armed-faults slow path only: the registry mutex and point map are touched when a chaos test has armed a fault; the production fast path is one relaxed atomic load")
    SCRPQO_EFFECT_ALLOW(alloc, "same armed-only slow path: point-state map lookups never run with zero armed faults")
    SCRPQO_EFFECT_ALLOW(block, "the on-fire hook may log in chaos harnesses; unarmed serving never enters ShouldFire") {
  FaultRegistry& reg = FaultRegistry::Global();
  if (!reg.enabled()) [[likely]] {
    return false;
  }
  return reg.ShouldFire(point, param);
}

}  // namespace scrpqo

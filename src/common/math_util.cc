#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace scrpqo {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double ComputeG(const std::vector<double>& ratios) {
  double g = 1.0;
  for (double r : ratios) {
    if (r > 1.0) g *= r;
  }
  return g;
}

double ComputeL(const std::vector<double>& ratios) {
  double l = 1.0;
  for (double r : ratios) {
    if (r < 1.0) l /= r;
  }
  return l;
}

std::vector<double> SelectivityRatios(const std::vector<double>& from,
                                      const std::vector<double>& to) {
  SCRPQO_CHECK(from.size() == to.size(),
               "selectivity vectors must have equal dimensionality");
  std::vector<double> ratios(from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    double f = std::max(from[i], kSelectivityFloor);
    double t = std::max(to[i], kSelectivityFloor);
    ratios[i] = t / f;
  }
  return ratios;
}

GlFactors ComputeGl(const std::vector<double>& from,
                    const std::vector<double>& to) {
  SCRPQO_CHECK(from.size() == to.size(),
               "selectivity vectors must have equal dimensionality");
  GlFactors out;
  for (size_t i = 0; i < from.size(); ++i) {
    double f = std::max(from[i], kSelectivityFloor);
    double t = std::max(to[i], kSelectivityFloor);
    double r = t / f;
    if (r > 1.0) out.g *= r;
    if (r < 1.0) out.l /= r;
  }
  return out;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  SCRPQO_CHECK(a.size() == b.size(),
               "selectivity vectors must have equal dimensionality");
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace scrpqo

// Copyable relaxed atomics for statistics counters that are bumped from
// const hot paths (Recost call counts, usage counters, kd-tree visit
// counters). Plain `mutable int64_t` members race the moment two threads
// share the object — exactly what the concurrent getPlan read path does —
// so every such counter goes through RelaxedCounter instead.
//
// Copy/assignment transfer the current value non-atomically (relaxed
// load + store). That is only safe while no other thread touches either
// side, which holds for every use here: containers of entries grow only
// under the cache's exclusive lock, and snapshots run single-threaded.
#pragma once

#include <atomic>
#include <cstdint>

namespace scrpqo {

template <typename T>
class RelaxedCounter {
 public:
  constexpr RelaxedCounter() noexcept = default;
  constexpr RelaxedCounter(T v) noexcept : v_(v) {}  // NOLINT(runtime/explicit)

  RelaxedCounter(const RelaxedCounter& other) noexcept : v_(other.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    Store(other.value());
    return *this;
  }
  RelaxedCounter& operator=(T v) noexcept {
    Store(v);
    return *this;
  }

  T value() const noexcept { return v_.load(std::memory_order_relaxed); }
  operator T() const noexcept { return value(); }  // NOLINT(runtime/explicit)

  /// Named Store (not std::atomic's `store`) so the project lint rule
  /// `atomic-order` can tell a blessed relaxed wrapper from a raw
  /// default-seq_cst atomic store by spelling alone.
  void Store(T v) noexcept { v_.store(v, std::memory_order_relaxed); }

  void Add(T delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Monotone max update (CAS loop; contention is negligible for stats).
  void UpdateMax(T candidate) noexcept {
    T cur = v_.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !v_.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<T> v_{};
};

}  // namespace scrpqo

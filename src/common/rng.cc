#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace scrpqo {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  state_ = 0u;
  inc_ = (stream << 1u) | 1u;
  Next();
  state_ += seed;
  Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

int64_t Pcg32::UniformInt(int64_t lo, int64_t hi) {
  SCRPQO_CHECK(lo <= hi, "UniformInt requires lo <= hi");
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested; combine two draws.
    uint64_t v = (static_cast<uint64_t>(Next()) << 32) | Next();
    return static_cast<int64_t>(v);
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~range + 1) % range;  // == (2^64 - range) % range
  for (;;) {
    uint64_t v = (static_cast<uint64_t>(Next()) << 32) | Next();
    if (v >= threshold) return lo + static_cast<int64_t>(v % range);
  }
}

double Pcg32::UniformDouble() {
  // 53 random bits into [0, 1).
  uint64_t v = (static_cast<uint64_t>(Next()) << 32) | Next();
  return static_cast<double>(v >> 11) * (1.0 / 9007199254740992.0);
}

double Pcg32::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Pcg32::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

ZipfSampler::ZipfSampler(int64_t n, double theta) : n_(n), theta_(theta) {
  SCRPQO_CHECK(n > 0, "ZipfSampler requires n > 0");
  SCRPQO_CHECK(theta >= 0.0, "ZipfSampler requires theta >= 0");
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[static_cast<size_t>(i)] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

int64_t ZipfSampler::Sample(Pcg32* rng) const {
  double u = rng->UniformDouble();
  // First index with cdf >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int64_t>(lo);
}

}  // namespace scrpqo

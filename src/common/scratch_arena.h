// Per-thread bump arena backing the allocation-free getPlan hot path.
//
// Scr::TryReuse (and the kd-tree queries and batch-recost lane scratch it
// drives) needs a handful of short-lived growable buffers per call —
// candidate lists, plan-pointer spans, cost outputs. std::vector pays a
// heap round-trip per buffer per call on the hottest path in the system.
// ScratchArena replaces that with chunked bump allocation:
//
//   - ScratchArena::Tls() hands each thread its own arena; no locking.
//   - A Scope marks the arena on entry and rewinds it on exit. Chunks are
//     RETAINED across rewinds, so after the first few calls have grown the
//     arena to the workload's high-water mark, the steady state performs
//     zero heap allocations — allocation is a pointer bump, release is a
//     pointer store.
//   - watermark() returns the total heap bytes the arena has ever
//     reserved. It is monotone; a test that records it after warm-up and
//     asserts it unchanged after N more getPlans has proven the warmed
//     reuse path allocation-free (recost_bundle_test.cc does exactly
//     that, alongside a global operator-new counter).
//   - ArenaVec<T> is the growable-span veneer: push_back grows by
//     doubling into a fresh arena span (the old span is abandoned until
//     the enclosing Scope rewinds — bounded by the doubling sum). T must
//     be trivially copyable; contents die with the Scope, so no
//     destructors run.
//
// Scopes nest (inner Scope rewinds first); an ArenaVec must not outlive
// the Scope that was active when it grew. Not thread-safe across threads —
// an arena reference must never escape its owning thread.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/effects.h"

namespace scrpqo {

class ScratchArena {
 public:
  /// Default chunk size; single allocations larger than this get a
  /// dedicated chunk of exactly their size.
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena (created on first use).
  static ScratchArena& Tls() {
    thread_local ScratchArena arena;
    return arena;
  }

  /// Marks the arena position on construction and rewinds to it on
  /// destruction, retaining chunks for reuse.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(arena),
          chunk_(arena.current_),
          used_(arena.chunks_.empty() ? 0
                                      : arena.chunks_[arena.current_].used) {}

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    ~Scope() {
      for (std::size_t i = chunk_ + 1; i < arena_.chunks_.size(); ++i) {
        arena_.chunks_[i].used = 0;
      }
      if (!arena_.chunks_.empty()) arena_.chunks_[chunk_].used = used_;
      arena_.current_ = chunk_;
    }

   private:
    ScratchArena& arena_;
    std::size_t chunk_;
    std::size_t used_;
  };

  /// Bump-allocates `bytes` aligned to `align` (a power of two). The
  /// memory is uninitialized and valid until the innermost enclosing
  /// Scope rewinds past it.
  void* Allocate(std::size_t bytes, std::size_t align = alignof(double))
      SCRPQO_EFFECT_ALLOW(alloc, "chunk growth is the arena's whole purpose: a warmed arena bump-allocates from retained chunks and only grows on a new high-water mark, so steady-state callers see zero heap traffic") {
    assert((align & (align - 1)) == 0);
    // Offsets are aligned relative to the chunk base, which new char[]
    // guarantees to alignof(std::max_align_t) only.
    assert(align <= alignof(std::max_align_t));
    if (bytes == 0) bytes = 1;
    while (current_ < chunks_.size()) {
      Chunk& c = chunks_[current_];
      std::size_t off = (c.used + align - 1) & ~(align - 1);
      if (off + bytes <= c.size) {
        c.used = off + bytes;
        return c.data.get() + off;
      }
      // Current chunk exhausted; move to the next retained chunk (its
      // used offset was reset by the Scope that released it) or fall
      // through to grow.
      if (current_ + 1 == chunks_.size()) break;
      ++current_;
    }
    std::size_t chunk_size = bytes + align > kChunkBytes
                                 ? bytes + align
                                 : kChunkBytes;
    chunks_.push_back(Chunk{std::make_unique<char[]>(chunk_size),
                            chunk_size, 0});
    watermark_ += static_cast<int64_t>(chunk_size);
    current_ = chunks_.size() - 1;
    // A fresh chunk base is max_align_t-aligned, which covers every align
    // this arena accepts, so the first allocation starts at offset 0.
    Chunk& c = chunks_.back();
    c.used = bytes;
    return c.data.get();
  }

  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena arrays never run constructors or destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Total heap bytes ever reserved by this arena. Monotone: stable across
  /// a window of calls <=> those calls allocated nothing new.
  int64_t watermark() const { return watermark_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  int64_t watermark_ = 0;
};

/// Growable span of trivially-copyable T backed by a ScratchArena. The
/// std::vector operations the hot path uses, minus the heap: push_back
/// amortized O(1) via doubling into fresh arena spans, raw-pointer
/// iterators (std::sort-compatible), no element destruction.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec elements must be trivially copyable");

 public:
  explicit ArenaVec(ScratchArena& arena, std::size_t initial_capacity = 0)
      : arena_(&arena) {
    if (initial_capacity > 0) {
      data_ = arena_->AllocateArray<T>(initial_capacity);
      capacity_ = initial_capacity;
    }
  }

  ArenaVec(const ArenaVec&) = delete;
  ArenaVec& operator=(const ArenaVec&) = delete;

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  /// Grows (new elements uninitialized) or shrinks the logical size.
  void resize(std::size_t n) {
    if (n > capacity_) Grow(n);
    size_ = n;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) Grow(n);
  }

  void clear() { size_ = 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }

  void pop_back() { --size_; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Grow(std::size_t need) {
    std::size_t cap = capacity_ == 0 ? 8 : capacity_ * 2;
    if (cap < need) cap = need;
    T* fresh = arena_->AllocateArray<T>(cap);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;  // old span is reclaimed when the Scope rewinds
    capacity_ = cap;
  }

  ScratchArena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace scrpqo

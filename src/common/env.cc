#include "common/env.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace scrpqo {

int64_t EnvInt64(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(v, &end, 10);
  // Reject unparsable and out-of-range values (strtoll silently saturates
  // at LLONG_MIN/MAX on overflow) instead of using a truncated number.
  if (end == v || errno == ERANGE) return def;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  errno = 0;
  double parsed = std::strtod(v, &end);
  // Reject unparsable values, overflow/underflow (ERANGE) and explicit
  // inf/nan spellings: every SCRPQO_* knob expects a finite number.
  if (end == v || errno == ERANGE || !std::isfinite(parsed)) return def;
  return parsed;
}

}  // namespace scrpqo

#include "common/env.h"

#include <cstdlib>

namespace scrpqo {

int64_t EnvInt64(const std::string& name, int64_t def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const std::string& name, double def) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

}  // namespace scrpqo

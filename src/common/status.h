// Status and Result<T>: lightweight error propagation without exceptions,
// modelled after the Arrow/Abseil conventions used across database codebases.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace scrpqo {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kInternal,
  kNotImplemented,
};

/// \brief Outcome of an operation that can fail.
///
/// A Status either represents success (`ok()` is true) or carries an error
/// code and a human-readable message. Statuses are cheap to copy in the OK
/// case and must not be silently dropped on error paths; the class is
/// [[nodiscard]] so the compiler rejects a dropped Status outright.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kAlreadyExists:
        return "AlreadyExists";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kNotImplemented:
        return "NotImplemented";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return *value_;
  }
  T& ValueOrDie() {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return *value_;
  }
  T MoveValueOrDie() {
    if (!ok()) {
      std::fprintf(stderr, "Result::MoveValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

#define SCRPQO_RETURN_NOT_OK(expr)         \
  do {                                     \
    ::scrpqo::Status _st = (expr);         \
    if (!_st.ok()) return _st;             \
  } while (0)

namespace internal {
/// Out-of-line failure path for SCRPQO_CHECK: prints the message and
/// aborts. Deliberately independent of <cassert> so the check fires
/// identically in NDEBUG/Release builds (see CheckAbortsInRelease test).
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& msg);
}  // namespace internal

// Fatal invariant check used for programming errors (not data errors).
// The message argument is evaluated lazily — only on the failure path —
// so call sites may pass expressions that build a std::string (e.g.
// "unknown table: " + name) without paying for them on every check.
#define SCRPQO_CHECK(cond, msg)                                    \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::scrpqo::internal::CheckFailed(__FILE__, __LINE__, (msg));  \
    }                                                              \
  } while (0)

}  // namespace scrpqo

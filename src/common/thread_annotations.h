// Clang Thread Safety Analysis for the whole concurrency surface.
//
// Two layers live here:
//
//  1. Capability-annotation macros (GUARDED_BY, REQUIRES, ACQUIRE, ...)
//     that expand to Clang's thread-safety attributes under Clang and to
//     nothing elsewhere, so GCC builds are unaffected. Build with
//     -DSCRPQO_THREAD_SAFETY=ON (Clang only) to compile the tree under
//     `-Wthread-safety -Wthread-safety-beta -Werror`: every "this lock
//     protects that field" comment in the codebase is then a machine-
//     checked proof obligation instead of documentation.
//
//  2. Annotated synchronization primitives — Mutex, SharedMutex, CondVar
//     and the scoped lock types MutexLock / ReaderMutexLock /
//     WriterMutexLock — thin wrappers over the std primitives that carry
//     the CAPABILITY / SCOPED_CAPABILITY attributes the analysis needs.
//     Raw std::mutex / std::shared_mutex / std::condition_variable are
//     banned outside this header (enforced by tools/lint/scrpqo_lint.py
//     rule `raw-mutex` and by the thread-safety CI job), because a raw
//     mutex is invisible to the analysis and silently exempts every field
//     it guards.
//
// The wrapper API mirrors abseil's Mutex/MutexLock shape (the canonical
// battle-tested user of these attributes) rather than the std lock
// adapters: std::unique_lock's movable/unlockable protocol is largely
// opaque to the analysis, while scoped-capability RAII types and explicit
// Lock()/Unlock() pairs are fully tracked.
//
// Lock-ordering note: the DAG of lock acquisition order is documented in
// DESIGN.md ("Capability map & lock order") and asserted with
// ACQUIRED_BEFORE / EXCLUDES where the annotation language can express it
// (same-object member mutexes; cross-object orders stay prose).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros (clang.llvm.org/docs/ThreadSafetyAnalysis.html).
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define SCRPQO_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define SCRPQO_TS_ATTRIBUTE__(x)  // no-op on GCC/MSVC
#endif

/// Class is a lockable capability ("mutex", "shared_mutex", ...).
#define CAPABILITY(x) SCRPQO_TS_ATTRIBUTE__(capability(x))

/// RAII class that acquires a capability in its constructor and releases
/// it in its destructor.
#define SCOPED_CAPABILITY SCRPQO_TS_ATTRIBUTE__(scoped_lockable)

/// Field is protected by the given capability: reads require at least a
/// shared hold, writes an exclusive one.
#define GUARDED_BY(x) SCRPQO_TS_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) SCRPQO_TS_ATTRIBUTE__(pt_guarded_by(x))

/// Declared lock-ordering edges, checked under -Wthread-safety-beta.
#define ACQUIRED_BEFORE(...) SCRPQO_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SCRPQO_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively (REQUIRES) or at least
/// shared (REQUIRES_SHARED) when calling.
#define REQUIRES(...) \
  SCRPQO_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SCRPQO_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires (and does not release) the capability.
#define ACQUIRE(...) SCRPQO_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SCRPQO_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive / shared / either).
#define RELEASE(...) SCRPQO_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SCRPQO_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  SCRPQO_TS_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  SCRPQO_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  SCRPQO_TS_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for self-locking
/// public entry points).
#define EXCLUDES(...) SCRPQO_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no acquire/release).
#define ASSERT_CAPABILITY(x) SCRPQO_TS_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  SCRPQO_TS_ATTRIBUTE__(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SCRPQO_TS_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Serving-path
/// code must not use this (CI greps for it outside tests/benches); every
/// remaining use carries a comment justifying why the analysis cannot see
/// the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  SCRPQO_TS_ATTRIBUTE__(no_thread_safety_analysis)

namespace scrpqo {

// ---------------------------------------------------------------------------
// Annotated primitives.
// ---------------------------------------------------------------------------

class CondVar;

/// Annotated exclusive mutex. Prefer the scoped MutexLock; use explicit
/// Lock()/Unlock() only for hand-over-hand patterns (worker loops that
/// drop the lock around the work item).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated reader/writer mutex (AsyncScr's cache lock).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Condition variable bound to Mutex. Waits are annotated REQUIRES(mu):
/// the analysis models the wait as "holds mu across the call" (the
/// transient unlock/relock inside is invisible, which is exactly the
/// invariant guarded predicates rely on). Use explicit
/// `while (!pred) cv.Wait(mu);` loops rather than predicate lambdas —
/// the analysis checks lambda bodies as separate functions and cannot see
/// that the enclosing wait holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu,
               const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait_for(adopted, timeout);
    adopted.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// RAII exclusive hold of a Mutex for the enclosing scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) hold of a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace scrpqo
